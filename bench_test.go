// Benchmarks regenerating every table and figure of the paper, plus
// micro-benchmarks of the pipeline stages and ablations of the design
// choices called out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// The corpus benchmarks use the full 795-loop synthetic corpus plus the
// curated kernels, exactly like the cmd/ncdrf runners, so one benchmark
// iteration is one full regeneration of the corresponding exhibit.
package ncdrf

import (
	"context"
	"io"
	"sync"
	"testing"

	"ncdrf/internal/codegen"
	"ncdrf/internal/core"
	"ncdrf/internal/ddg"
	"ncdrf/internal/experiment"
	"ncdrf/internal/lifetime"
	"ncdrf/internal/loopgen"
	"ncdrf/internal/loops"
	"ncdrf/internal/machine"
	"ncdrf/internal/pipeline"
	"ncdrf/internal/regalloc"
	"ncdrf/internal/regfile"
	"ncdrf/internal/sched"
	"ncdrf/internal/spill"
	"ncdrf/internal/sweep"
	"ncdrf/internal/vm"
)

var (
	corpusOnce sync.Once
	corpusFull []*ddg.Graph
)

func benchCorpus() []*ddg.Graph {
	corpusOnce.Do(func() {
		corpusFull = experiment.Corpus(loopgen.Defaults())
	})
	return corpusFull
}

// BenchmarkTable1 regenerates Table 1 (four PxLy configurations).
func BenchmarkTable1(b *testing.B) {
	corpus := benchCorpus()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh engine per iteration keeps the cache cold, so the
		// benchmark measures a from-scratch regeneration.
		res, err := experiment.Table1(context.Background(), sweep.New(0), corpus)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Example regenerates Table 2: the schedule and lifetimes
// of the worked example loop.
func BenchmarkTable2Example(b *testing.B) {
	g := loops.PaperExample()
	m := machine.Example()
	for i := 0; i < b.N; i++ {
		s, err := sched.Run(g, m, sched.Options{})
		if err != nil {
			b.Fatal(err)
		}
		lts := lifetime.Compute(s)
		if lifetime.SumLen(lts) != 42 {
			b.Fatal("lifetime sum drifted from the paper's 42")
		}
	}
}

// BenchmarkTable3Classification regenerates Table 3: classification and
// dual allocation before swapping.
func BenchmarkTable3Classification(b *testing.B) {
	g := loops.PaperExample()
	m := machine.Example()
	s, err := sched.Run(g, m, sched.Options{})
	if err != nil {
		b.Fatal(err)
	}
	lts := lifetime.Compute(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		da, err := core.AllocateDual(core.Classify(s, lts))
		if err != nil {
			b.Fatal(err)
		}
		if da.Requirement != 29 {
			b.Fatal("partitioned requirement drifted from the paper's 29")
		}
	}
}

// BenchmarkTable4Swap regenerates Table 4: the greedy swap pass plus the
// post-swap dual allocation.
func BenchmarkTable4Swap(b *testing.B) {
	g := loops.PaperExample()
	m := machine.Example()
	s, err := sched.Run(g, m, sched.Options{})
	if err != nil {
		b.Fatal(err)
	}
	lts := lifetime.Compute(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		swapped, _ := core.Swap(s, core.SwapOptions{})
		da, err := core.AllocateDual(core.Classify(swapped, lts))
		if err != nil {
			b.Fatal(err)
		}
		if da.Requirement != 23 {
			b.Fatal("swapped requirement drifted from the paper's 23")
		}
	}
}

// BenchmarkFigure6 regenerates Figure 6 (static CDFs) for both latencies.
func BenchmarkFigure6(b *testing.B) {
	corpus := benchCorpus()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, lat := range []int{3, 6} {
			res, err := experiment.Fig6(context.Background(), sweep.New(0), corpus, lat)
			if err != nil {
				b.Fatal(err)
			}
			if err := res.Render(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFigure7 regenerates Figure 7 (dynamic CDFs) for both latencies.
func BenchmarkFigure7(b *testing.B) {
	corpus := benchCorpus()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, lat := range []int{3, 6} {
			res, err := experiment.Fig7(context.Background(), sweep.New(0), corpus, lat)
			if err != nil {
				b.Fatal(err)
			}
			if err := res.Render(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFigure8And9 regenerates Figures 8 and 9: the limited-register
// pipeline (with spilling) over all four configurations and models.
func BenchmarkFigure8And9(b *testing.B) {
	corpus := benchCorpus()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiment.Fig8and9(context.Background(), sweep.New(0), corpus, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.RenderFig8(io.Discard); err != nil {
			b.Fatal(err)
		}
		if err := res.RenderFig9(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPaperPipelineSharedCache regenerates Table 1 plus Figures 6-9
// on ONE shared engine, the way `ncdrf all` runs: the schedule cache
// shares identical scheduling work across the exhibits. Compare against
// the sum of the cold-cache benchmarks above to see the saving.
func BenchmarkPaperPipelineSharedCache(b *testing.B) {
	corpus := benchCorpus()
	ctx := context.Background()
	var st sweep.CacheStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := sweep.New(0)
		if _, err := experiment.Table1(ctx, eng, corpus); err != nil {
			b.Fatal(err)
		}
		for _, lat := range []int{3, 6} {
			if _, err := experiment.Fig6(ctx, eng, corpus, lat); err != nil {
				b.Fatal(err)
			}
			if _, err := experiment.Fig7(ctx, eng, corpus, lat); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := experiment.Fig8and9(ctx, eng, corpus, nil); err != nil {
			b.Fatal(err)
		}
		st = eng.Cache().Stats()
	}
	b.ReportMetric(float64(st.Hits), "hits/op")
	b.ReportMetric(float64(st.Misses), "misses/op")
}

// BenchmarkRegfileModel evaluates the section 3.2 area/access-time model
// comparison (unified vs consistent dual vs NCDRF vs doubled unified).
func BenchmarkRegfileModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		orgs := []regfile.Organization{
			regfile.Unified(64, 64, 6),
			regfile.ConsistentDual(64, 64, 6),
			regfile.NonConsistentDual(64, 64, 6),
			regfile.Unified(128, 64, 6),
		}
		var areaSum, timeSum float64
		for _, o := range orgs {
			areaSum += o.TotalArea()
			timeSum += o.AccessTime()
		}
		if areaSum <= 0 || timeSum <= 0 {
			b.Fatal("degenerate model outputs")
		}
	}
}

// BenchmarkCompileAllVsPerModel measures the staged pipeline's headline
// saving: "compile-all" evaluates the four register-file models over ONE
// shared base stage (schedule + lifetimes computed once per loop), while
// "per-model" rebuilds the base for every model, the way the monolithic
// Compile path did. Both run the curated kernels at latency 6 with a
// 32-register file, so the spilling work is identical and the delta is
// pure base-stage sharing.
func BenchmarkCompileAllVsPerModel(b *testing.B) {
	ks := loops.Kernels()
	m := machine.Eval(6)
	const regs = 32
	ctx := context.Background()
	b.Run("per-model", func(b *testing.B) {
		sc := &schedCounter{}
		for i := 0; i < b.N; i++ {
			sc.calls = 0
			for _, g := range ks {
				for _, model := range core.Models {
					base, err := pipeline.NewBaseWith(sc, g, m, sched.Options{})
					if err != nil {
						b.Fatal(err)
					}
					if _, err := pipeline.Evaluate(ctx, sc, base, model, regs); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		b.ReportMetric(float64(sc.calls), "scheds/op")
	})
	b.Run("compile-all", func(b *testing.B) {
		sc := &schedCounter{}
		for i := 0; i < b.N; i++ {
			sc.calls = 0
			for _, g := range ks {
				if _, err := pipeline.CompileAll(ctx, sc, g, m, regs); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(sc.calls), "scheds/op")
	})
}

// schedCounter counts scheduler invocations for the staged-vs-per-model
// comparison; it does no caching, so every call is a real sched.Run.
type schedCounter struct{ calls int }

func (c *schedCounter) Schedule(g *ddg.Graph, m *machine.Config, opts sched.Options) (*sched.Schedule, error) {
	c.calls++
	return sched.Run(g, m, opts)
}

// --- micro-benchmarks of the pipeline stages ---

// BenchmarkModuloSchedule schedules the whole curated kernel corpus.
func BenchmarkModuloSchedule(b *testing.B) {
	ks := loops.Kernels()
	m := machine.Eval(6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range ks {
			if _, err := sched.Run(g, m, sched.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFirstFitAllocation allocates the kernel corpus's lifetimes.
func BenchmarkFirstFitAllocation(b *testing.B) {
	m := machine.Eval(6)
	type job struct {
		lts []lifetime.Lifetime
		ii  int
	}
	var jobs []job
	for _, g := range loops.Kernels() {
		s, err := sched.Run(g, m, sched.Options{})
		if err != nil {
			b.Fatal(err)
		}
		jobs = append(jobs, job{lifetime.Compute(s), s.II})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, j := range jobs {
			if _, err := regalloc.FirstFit(j.lts, j.ii); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSwapPass runs the greedy swap over the kernel corpus.
func BenchmarkSwapPass(b *testing.B) {
	m := machine.Eval(6)
	var scheds []*sched.Schedule
	for _, g := range loops.Kernels() {
		s, err := sched.Run(g, m, sched.Options{})
		if err != nil {
			b.Fatal(err)
		}
		scheds = append(scheds, s)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range scheds {
			core.Swap(s, core.SwapOptions{})
		}
	}
}

// BenchmarkSpillPipeline runs the naive spiller on the highest-pressure
// kernel at a tight register file.
func BenchmarkSpillPipeline(b *testing.B) {
	g, ok := loops.KernelByName("lfk7-eos")
	if !ok {
		b.Fatal("missing kernel")
	}
	m := machine.Eval(6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := spill.Run(g, m, 24, core.Fit(core.Unified), sched.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res.SpilledValues == 0 {
			b.Fatal("expected spilling")
		}
	}
}

// --- ablation benchmarks (design choices from DESIGN.md) ---

// BenchmarkAblationSwapMoves compares the paper's pair-only swap against
// the AllowMoves extension: the custom metrics report the average
// per-loop register estimate each variant reaches on the kernel corpus.
func BenchmarkAblationSwapMoves(b *testing.B) {
	m := machine.Eval(6)
	type prep struct {
		s   *sched.Schedule
		lts []lifetime.Lifetime
	}
	var ps []prep
	for _, g := range loops.Kernels() {
		s, err := sched.Run(g, m, sched.Options{})
		if err != nil {
			b.Fatal(err)
		}
		ps = append(ps, prep{s, lifetime.Compute(s)})
	}
	variants := []struct {
		name string
		opts core.SwapOptions
	}{
		{"pairs", core.SwapOptions{}},
		{"pairs+moves", core.SwapOptions{AllowMoves: true}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			total := 0
			for i := 0; i < b.N; i++ {
				total = 0
				for _, p := range ps {
					swapped, _ := core.Swap(p.s, v.opts)
					total += core.Classify(swapped, p.lts).MaxLiveEstimate()
				}
			}
			b.ReportMetric(float64(total)/float64(len(ps)), "regs/loop")
		})
	}
}

// BenchmarkAblationSchedulerBudget compares the IMS eviction budget: a
// small budget forces more II bumps (worse schedules, faster compile).
func BenchmarkAblationSchedulerBudget(b *testing.B) {
	ks := loops.Kernels()
	m := machine.Eval(6)
	for _, ratio := range []int{1, 4, 8} {
		b.Run(map[int]string{1: "budget1", 4: "budget4", 8: "budget8"}[ratio], func(b *testing.B) {
			totalII := 0
			for i := 0; i < b.N; i++ {
				totalII = 0
				for _, g := range ks {
					s, err := sched.Run(g, m, sched.Options{BudgetRatio: ratio})
					if err != nil {
						b.Fatal(err)
					}
					totalII += s.II
				}
			}
			b.ReportMetric(float64(totalII)/float64(len(ks)), "II/loop")
		})
	}
}

// BenchmarkAblationAllocator compares the wands-only allocation
// heuristics of Rau et al. (the paper picks First Fit for simplicity and
// reports all perform similarly); the metric is registers per loop over
// the curated kernels.
func BenchmarkAblationAllocator(b *testing.B) {
	m := machine.Eval(6)
	type job struct {
		lts []lifetime.Lifetime
		ii  int
	}
	var jobs []job
	for _, g := range loops.Kernels() {
		s, err := sched.Run(g, m, sched.Options{})
		if err != nil {
			b.Fatal(err)
		}
		jobs = append(jobs, job{lifetime.Compute(s), s.II})
	}
	for _, strat := range regalloc.Strategies {
		b.Run(strat.String(), func(b *testing.B) {
			total := 0
			for i := 0; i < b.N; i++ {
				total = 0
				for _, j := range jobs {
					a, err := regalloc.Allocate(j.lts, j.ii, strat)
					if err != nil {
						b.Fatal(err)
					}
					total += a.Registers
				}
			}
			b.ReportMetric(float64(total)/float64(len(jobs)), "regs/loop")
		})
	}
}

// BenchmarkPipelinedSimulation executes the paper's worked example on the
// simulated dual rotating register file and verifies it against the
// sequential reference.
func BenchmarkPipelinedSimulation(b *testing.B) {
	g := loops.PaperExample()
	m := machine.Example()
	for i := 0; i < b.N; i++ {
		if err := vm.VerifyModel(g, m, core.Swapped, 0, 20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredicatedExecution runs the predicated-kernel machine model
// (codegen) on the worked example and checks it against the reference.
func BenchmarkPredicatedExecution(b *testing.B) {
	g := loops.PaperExample()
	m := machine.Example()
	s, err := sched.Run(g, m, sched.Options{})
	if err != nil {
		b.Fatal(err)
	}
	lts := lifetime.Compute(s)
	dm, err := vm.NewDualMap(s, lts)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := codegen.Generate(s, dm)
	if err != nil {
		b.Fatal(err)
	}
	want, err := vm.RunReference(g, 20)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := codegen.Execute(prog, 20)
		if err != nil {
			b.Fatal(err)
		}
		if err := vm.CompareStreams(want, got); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnifiedVsDualRequirement reports the aggregate register needs
// of the three organizations over the kernel corpus, making the paper's
// headline effect visible in benchmark output.
func BenchmarkUnifiedVsDualRequirement(b *testing.B) {
	m := machine.Eval(6)
	type prep struct {
		s   *sched.Schedule
		lts []lifetime.Lifetime
	}
	var ps []prep
	for _, g := range loops.Kernels() {
		s, err := sched.Run(g, m, sched.Options{})
		if err != nil {
			b.Fatal(err)
		}
		ps = append(ps, prep{s, lifetime.Compute(s)})
	}
	for _, model := range []core.Model{core.Unified, core.Partitioned, core.Swapped} {
		b.Run(model.String(), func(b *testing.B) {
			total := 0
			for i := 0; i < b.N; i++ {
				total = 0
				for _, p := range ps {
					req, _, err := core.Requirement(model, p.s, p.lts)
					if err != nil {
						b.Fatal(err)
					}
					total += req
				}
			}
			b.ReportMetric(float64(total)/float64(len(ps)), "regs/loop")
		})
	}
}
