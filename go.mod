module ncdrf

go 1.24
