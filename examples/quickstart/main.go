// Quickstart: compile a daxpy-like loop for the paper's two-cluster VLIW
// and compare the register requirements of the four register-file models.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ncdrf"
)

const src = `
loop daxpy trips 1000
invariant a
x1 = load x
m1 = fmul a, x1
y1 = load y
s1 = fadd m1, y1
store y, s1
`

func main() {
	loop, err := ncdrf.ParseLoop(src)
	if err != nil {
		log.Fatal(err)
	}

	for _, latency := range []int{3, 6} {
		m := ncdrf.EvalMachine(latency)
		reqs, ii, err := ncdrf.Requirements(loop, m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s on %s\n", loop.Name(), m)
		fmt.Printf("  II = %d cycles/iteration\n", ii)
		for _, model := range ncdrf.Models[1:] {
			fmt.Printf("  %-12s needs %2d registers\n", model, reqs[model])
		}
		fmt.Println()
	}

	// Compile with a tight register file and watch the pipeline spill.
	res, err := ncdrf.Compile(loop, ncdrf.EvalMachine(6), ncdrf.Unified, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unified file with only 8 registers: II=%d, %d values spilled, %d memory ops/iter\n",
		res.II, res.SpilledValues, res.MemOps)
	res2, err := ncdrf.Compile(loop, ncdrf.EvalMachine(6), ncdrf.Swapped, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NCDRF (swapped) with 8 per subfile:  II=%d, %d values spilled, %d memory ops/iter\n",
		res2.II, res2.SpilledValues, res2.MemOps)
}
