// Corpus runs a reduced version of the paper's evaluation: Table 1 and
// the Figure 6/7 cumulative distributions over the curated kernels plus a
// small synthetic corpus, printed as tables.
//
//	go run ./examples/corpus
package main

import (
	"fmt"
	"log"
	"os"

	"ncdrf"
)

func main() {
	opts := ncdrf.CorpusOptions{Loops: 120, Seed: 7}

	fmt.Println("== Table 1 ==")
	if err := ncdrf.RenderTable1(opts, os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== Figure 6 (static) ==")
	if err := ncdrf.RenderFig6(opts, os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Figure 7 (dynamic) ==")
	if err := ncdrf.RenderFig7(opts, os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Figures 8 and 9 ==")
	if err := ncdrf.RenderFig8And9(opts, os.Stdout); err != nil {
		log.Fatal(err)
	}
}
