// Regfile evaluates the section 3.2 hardware argument: the dual
// implementations keep the access time of a half-ported file while the
// non-consistent variant holds up to twice the values, and doubling a
// unified file instead costs twice the area and a slower cycle.
//
// It also shows the interaction with the software side: for each
// capacity, which curated kernels fit without spilling under each
// organization.
//
//	go run ./examples/regfile
package main

import (
	"fmt"
	"log"

	"ncdrf"
)

func main() {
	m := ncdrf.EvalMachine(6)
	fmt.Printf("machine: %s\n\n", m)

	names := ncdrf.KernelNames()
	fmt.Printf("%-8s %-12s %-12s %-12s\n", "regs", "unified", "partitioned", "swapped")
	fmt.Println("kernels (out of", len(names), ") fitting without spill:")
	for _, regs := range []int{16, 24, 32, 48, 64} {
		counts := map[ncdrf.Model]int{}
		for _, name := range names {
			loop, err := ncdrf.KernelLoop(name)
			if err != nil {
				log.Fatal(err)
			}
			reqs, _, err := ncdrf.Requirements(loop, m)
			if err != nil {
				log.Fatal(err)
			}
			for _, model := range []ncdrf.Model{ncdrf.Unified, ncdrf.Partitioned, ncdrf.Swapped} {
				if reqs[model] <= regs {
					counts[model]++
				}
			}
		}
		fmt.Printf("%-8d %-12d %-12d %-12d\n", regs,
			counts[ncdrf.Unified], counts[ncdrf.Partitioned], counts[ncdrf.Swapped])
	}

	fmt.Println("\nhardware models (normalized units, 6 FUs, 64-bit registers):")
	fmt.Println("see 'ncdrf regfile' for the full table; key ratios:")
	fmt.Println("  - consistent and non-consistent duals: identical area and access time")
	fmt.Println("  - NCDRF holds up to 2x the distinct values of the consistent dual")
	fmt.Println("  - doubling a unified file instead: 2x area, slower access (log2 growth)")
}
