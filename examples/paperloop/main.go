// Paperloop walks through section 4 of the paper end to end on the worked
// example y(i) = (x(i)*t + y(i))*r + x(i): the modulo schedule of Figure
// 3, the lifetimes of Table 2, the value classification of Table 3, the
// operation swap of Table 4 and the resulting register requirements
// (42 unified / 29 partitioned / 23 swapped).
//
//	go run ./examples/paperloop
package main

import (
	"context"
	"fmt"
	"log"

	"ncdrf"
)

func main() {
	loop := ncdrf.PaperExample()
	m := ncdrf.ExampleMachine()
	fmt.Printf("machine: %s\n", m)
	fmt.Printf("loop:    %s (%d operations, %d trips)\n\n", loop.Name(), loop.Ops(), loop.Trips())

	reqs, ii, err := ncdrf.Requirements(loop, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initiation interval: %d cycle (a new iteration starts every cycle)\n\n", ii)

	fmt.Println("register requirements (paper: 42 / 29 / 23):")
	for _, model := range ncdrf.Models[1:] {
		fmt.Printf("  %-12s %2d registers\n", model, reqs[model])
	}

	// CompileAll evaluates every model over one shared base schedule:
	// the scheduler and lifetime analysis run once, not per model.
	at64, err := ncdrf.CompileAll(context.Background(), loop, m, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsteady-state kernel under each model:")
	for _, model := range []ncdrf.Model{ncdrf.Unified, ncdrf.Swapped} {
		res := at64[model]
		fmt.Printf("\n%s (%d registers):\n%s", model, res.Registers, res.Kernel())
	}

	at32, err := ncdrf.CompileAll(context.Background(), loop, m, 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwith a 32-register file the unified organization must spill, the NCDRF does not:")
	for _, model := range []ncdrf.Model{ncdrf.Unified, ncdrf.Partitioned, ncdrf.Swapped} {
		res := at32[model]
		fmt.Printf("  %-12s II=%d spilled=%d memops/iter=%d\n",
			model, res.II, res.SpilledValues, res.MemOps)
	}
}
