// Spillstudy sweeps the register-file size for a high-pressure kernel
// (the Livermore equation-of-state fragment) and shows how the naive
// spiller degrades the initiation interval and inflates memory traffic as
// the file shrinks — and how the non-consistent dual file postpones that
// cliff, the effect behind Figures 8 and 9 of the paper.
//
//	go run ./examples/spillstudy
package main

import (
	"context"
	"fmt"
	"log"

	"ncdrf"
)

func main() {
	loop, err := ncdrf.KernelLoop("lfk7-eos")
	if err != nil {
		log.Fatal(err)
	}
	m := ncdrf.EvalMachine(6)
	fmt.Printf("loop %s (%d ops) on %s\n\n", loop.Name(), loop.Ops(), m)

	reqs, ii, err := ncdrf.Requirements(loop, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unconstrained: II=%d, unified needs %d, partitioned %d, swapped %d\n\n",
		ii, reqs[ncdrf.Unified], reqs[ncdrf.Partitioned], reqs[ncdrf.Swapped])

	fmt.Printf("%-6s | %-28s | %-28s\n", "", "unified", "NCDRF+swap")
	fmt.Printf("%-6s | %-4s %-7s %-11s | %-4s %-7s %-11s\n",
		"regs", "II", "spilled", "memops/iter", "II", "spilled", "memops/iter")
	fmt.Println("-------+------------------------------+-----------------------------")
	for _, regs := range []int{64, 48, 40, 32, 24, 16} {
		// One staged compile per file size: all four models share a
		// single base schedule (the table prints two of them).
		all, err := ncdrf.CompileAll(context.Background(), loop, m, regs)
		if err != nil {
			log.Fatal(err)
		}
		uni, dual := all[ncdrf.Unified], all[ncdrf.Swapped]
		fmt.Printf("%-6d | %-4d %-7d %-11d | %-4d %-7d %-11d\n",
			regs, uni.II, uni.SpilledValues, uni.MemOps,
			dual.II, dual.SpilledValues, dual.MemOps)
	}
	fmt.Println("\nThe dual file needs roughly half the per-subfile capacity before")
	fmt.Println("spilling starts, so its II and traffic stay flat far longer.")
}
