package main_test

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"testing"
)

// buildLint compiles the checker once per test binary into a temp dir
// and returns its path.
func buildLint(t *testing.T) string {
	t.Helper()
	exe := filepath.Join(t.TempDir(), "ncdrf-lint")
	if runtime.GOOS == "windows" {
		exe += ".exe"
	}
	cmd := exec.Command("go", "build", "-o", exe, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/ncdrf-lint: %v\n%s", err, out)
	}
	return exe
}

// writeModule lays out a throwaway single-package module and returns
// its directory.
func writeModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module lintsmoke\n\ngo 1.24\n",
		"a.go":   src,
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// vet runs `go vet -vettool=<exe> .` in dir, hermetically (no module
// downloads), and returns combined output and the error, if any.
func vet(t *testing.T, exe, dir string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", "vet", "-vettool="+exe, ".")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOPROXY=off", "GOFLAGS=-mod=mod")
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestVettoolFlagsSeededViolation(t *testing.T) {
	exe := buildLint(t)
	out, err := vet(t, exe, writeModule(t, `package a

import "time"

func Stamp() time.Time { return time.Now() }
`))
	if err == nil {
		t.Fatalf("go vet exited 0 on a seeded time.Now violation\n%s", out)
	}
	if !strings.Contains(out, "time.Now reads the wall clock") {
		t.Errorf("missing wallclock diagnostic in output:\n%s", out)
	}
	if !strings.Contains(out, "[wallclock]") {
		t.Errorf("diagnostic is not attributed to its analyzer:\n%s", out)
	}
}

func TestVettoolCleanPackage(t *testing.T) {
	exe := buildLint(t)
	out, err := vet(t, exe, writeModule(t, `package a

func Add(a, b int) int { return a + b }
`))
	if err != nil {
		t.Fatalf("go vet failed on a clean package: %v\n%s", err, out)
	}
}

func TestVettoolAllowDirective(t *testing.T) {
	exe := buildLint(t)
	out, err := vet(t, exe, writeModule(t, `package a

import "time"

func Stamp() time.Time {
	//lint:allow wallclock -- smoke test
	return time.Now()
}
`))
	if err != nil {
		t.Fatalf("go vet flagged an allowlisted line: %v\n%s", err, out)
	}
}

// writeTree lays out a throwaway module from a file map and returns
// its directory.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// standalone runs the checker's own driver (`ncdrf-lint [args] ./...`)
// in dir and returns stdout, stderr and the exit code.
func standalone(t *testing.T, exe, dir string, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(exe, append(args, "./...")...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOPROXY=off", "GOFLAGS=-mod=mod")
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("ncdrf-lint did not run: %v", err)
		}
		code = ee.ExitCode()
	}
	return stdout.String(), stderr.String(), code
}

// factsModule is a two-package module in which the only way the outer
// package earns a diagnostic is through a fact exported by inner:
// inner.Spawn's own finding is allowlisted, so its SpawnsUnjoined fact
// must cross the package boundary for a.go's call site to be flagged.
func factsModule(t *testing.T) string {
	return writeTree(t, map[string]string{
		"go.mod": "module lintsmoke\n\ngo 1.24\n",
		"inner/inner.go": `package inner

// Spawn fires and forgets; joining is the caller's problem.
func Spawn() {
	//lint:allow goleak -- smoke test: the fact must still reach importers
	go func() {}()
}
`,
		"a.go": `package a

import "lintsmoke/inner"

func Use() {
	inner.Spawn()
}
`,
	})
}

func TestVettoolCrossPackageFacts(t *testing.T) {
	exe := buildLint(t)
	dir := factsModule(t)
	cmd := exec.Command("go", "vet", "-vettool="+exe, "./...")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOPROXY=off", "GOFLAGS=-mod=mod")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet exited 0; inner's fact did not reach package a\n%s", out)
	}
	if !strings.Contains(string(out), "call to Spawn spawns an unjoined goroutine") {
		t.Errorf("missing cross-package goleak diagnostic:\n%s", out)
	}
	if !strings.Contains(string(out), "a.go") {
		t.Errorf("diagnostic not attributed to the importing package:\n%s", out)
	}
}

func TestStandaloneCrossPackageFacts(t *testing.T) {
	exe := buildLint(t)
	_, stderr, code := standalone(t, exe, factsModule(t))
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; inner's fact did not reach package a\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "call to Spawn spawns an unjoined goroutine") {
		t.Errorf("missing cross-package goleak diagnostic:\n%s", stderr)
	}
	if !strings.Contains(stderr, "[goleak]") {
		t.Errorf("diagnostic is not attributed to its analyzer:\n%s", stderr)
	}
}

// TestStandaloneJSON pins the -json schema: a flat array of objects
// with exactly the keys file/line/column/analyzer/message/suppressed,
// including suppressed findings (flagged), with only unsuppressed ones
// driving the exit status.
func TestStandaloneJSON(t *testing.T) {
	exe := buildLint(t)
	dir := writeModule(t, `package a

import "time"

func Stamp() time.Time { return time.Now() }

func Stamp2() time.Time {
	//lint:allow wallclock -- smoke test
	return time.Now()
}
`)
	stdout, stderr, code := standalone(t, exe, dir, "-json")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, stderr)
	}
	var got []struct {
		File       string `json:"file"`
		Line       int    `json:"line"`
		Column     int    `json:"column"`
		Analyzer   string `json:"analyzer"`
		Message    string `json:"message"`
		Suppressed bool   `json:"suppressed"`
	}
	dec := json.NewDecoder(strings.NewReader(stdout))
	dec.DisallowUnknownFields() // any new key is a schema change; repin deliberately
	if err := dec.Decode(&got); err != nil {
		t.Fatalf("-json output does not match the pinned schema: %v\n%s", err, stdout)
	}
	if len(got) != 2 {
		t.Fatalf("got %d findings, want 2 (one live, one suppressed):\n%s", len(got), stdout)
	}
	for _, f := range got {
		if f.Analyzer != "wallclock" || !strings.HasSuffix(f.File, "a.go") || f.Line == 0 || f.Column == 0 {
			t.Errorf("malformed finding: %+v", f)
		}
		if !strings.Contains(f.Message, "time.Now reads the wall clock") {
			t.Errorf("unexpected message: %q", f.Message)
		}
	}
	if got[0].Suppressed || !got[1].Suppressed {
		t.Errorf("suppression status wrong: first=%v second=%v, want false/true", got[0].Suppressed, got[1].Suppressed)
	}
}

func TestStandaloneJSONClean(t *testing.T) {
	exe := buildLint(t)
	dir := writeModule(t, `package a

func Add(a, b int) int { return a + b }
`)
	stdout, stderr, code := standalone(t, exe, dir, "-json")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr:\n%s", code, stderr)
	}
	if strings.TrimSpace(stdout) != "[]" {
		t.Errorf("clean -json output = %q, want []", stdout)
	}
}

// TestAllowExpiry: a //lint:allow directive naming an analyzer that
// does not exist is itself a diagnostic, in both drivers.
func TestAllowExpiry(t *testing.T) {
	exe := buildLint(t)
	src := `package a

func Add(a, b int) int {
	//lint:allow nosuchcheck -- directive rotted after a rename
	return a + b
}
`
	t.Run("standalone", func(t *testing.T) {
		_, stderr, code := standalone(t, exe, writeModule(t, src))
		if code != 1 {
			t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, stderr)
		}
		if !strings.Contains(stderr, `unknown analyzer "nosuchcheck"`) || !strings.Contains(stderr, "[allow]") {
			t.Errorf("missing allow-expiry diagnostic:\n%s", stderr)
		}
	})
	t.Run("vettool", func(t *testing.T) {
		out, err := vet(t, exe, writeModule(t, src))
		if err == nil {
			t.Fatalf("go vet exited 0 on a rotted //lint:allow directive\n%s", out)
		}
		if !strings.Contains(out, `unknown analyzer "nosuchcheck"`) {
			t.Errorf("missing allow-expiry diagnostic:\n%s", out)
		}
	})
}

// TestVersionFlag checks the -V=full contract go vet's toolID probe
// depends on: a single line ending in a hex buildID field.
func TestVersionFlag(t *testing.T) {
	exe := buildLint(t)
	out, err := exec.Command(exe, "-V=full").CombinedOutput()
	if err != nil {
		t.Fatalf("-V=full: %v\n%s", err, out)
	}
	want := regexp.MustCompile(fmt.Sprintf(`(?m)^%s version devel comments-go-here buildID=[0-9a-f]{64}$`,
		regexp.QuoteMeta(exe)))
	if !want.Match(out) {
		t.Errorf("-V=full output does not match the toolID contract:\n%s", out)
	}
}
