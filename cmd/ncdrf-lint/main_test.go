package main_test

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"testing"
)

// buildLint compiles the checker once per test binary into a temp dir
// and returns its path.
func buildLint(t *testing.T) string {
	t.Helper()
	exe := filepath.Join(t.TempDir(), "ncdrf-lint")
	if runtime.GOOS == "windows" {
		exe += ".exe"
	}
	cmd := exec.Command("go", "build", "-o", exe, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/ncdrf-lint: %v\n%s", err, out)
	}
	return exe
}

// writeModule lays out a throwaway single-package module and returns
// its directory.
func writeModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module lintsmoke\n\ngo 1.24\n",
		"a.go":   src,
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// vet runs `go vet -vettool=<exe> .` in dir, hermetically (no module
// downloads), and returns combined output and the error, if any.
func vet(t *testing.T, exe, dir string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", "vet", "-vettool="+exe, ".")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOPROXY=off", "GOFLAGS=-mod=mod")
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestVettoolFlagsSeededViolation(t *testing.T) {
	exe := buildLint(t)
	out, err := vet(t, exe, writeModule(t, `package a

import "time"

func Stamp() time.Time { return time.Now() }
`))
	if err == nil {
		t.Fatalf("go vet exited 0 on a seeded time.Now violation\n%s", out)
	}
	if !strings.Contains(out, "time.Now reads the wall clock") {
		t.Errorf("missing wallclock diagnostic in output:\n%s", out)
	}
	if !strings.Contains(out, "[wallclock]") {
		t.Errorf("diagnostic is not attributed to its analyzer:\n%s", out)
	}
}

func TestVettoolCleanPackage(t *testing.T) {
	exe := buildLint(t)
	out, err := vet(t, exe, writeModule(t, `package a

func Add(a, b int) int { return a + b }
`))
	if err != nil {
		t.Fatalf("go vet failed on a clean package: %v\n%s", err, out)
	}
}

func TestVettoolAllowDirective(t *testing.T) {
	exe := buildLint(t)
	out, err := vet(t, exe, writeModule(t, `package a

import "time"

func Stamp() time.Time {
	//lint:allow wallclock -- smoke test
	return time.Now()
}
`))
	if err != nil {
		t.Fatalf("go vet flagged an allowlisted line: %v\n%s", err, out)
	}
}

// TestVersionFlag checks the -V=full contract go vet's toolID probe
// depends on: a single line ending in a hex buildID field.
func TestVersionFlag(t *testing.T) {
	exe := buildLint(t)
	out, err := exec.Command(exe, "-V=full").CombinedOutput()
	if err != nil {
		t.Fatalf("-V=full: %v\n%s", err, out)
	}
	want := regexp.MustCompile(fmt.Sprintf(`(?m)^%s version devel comments-go-here buildID=[0-9a-f]{64}$`,
		regexp.QuoteMeta(exe)))
	if !want.Match(out) {
		t.Errorf("-V=full output does not match the toolID contract:\n%s", out)
	}
}
