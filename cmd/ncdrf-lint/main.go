// Command ncdrf-lint is the repository's invariant checker: a vet-
// compatible driver for the analyzers in internal/analysis that
// machine-enforce the rules the sweep/curve/store stack rests on —
// byte-identical plan-order streams (detrange), immutable pipeline
// stage artifacts (stagemut), threaded cancellation (ctxflow),
// clock/randomness-free deterministic paths (wallclock), joined
// goroutines (goleak), pool hygiene (poolescape), lock discipline
// (lockdisc) and guarded shared mutation (sharedmut).
//
// Two equivalent invocations:
//
//	go build -o ncdrf-lint ./cmd/ncdrf-lint
//	go vet -vettool=$PWD/ncdrf-lint ./...
//
// or standalone (an in-process driver that loads packages with
// `go list`, analyzes them in dependency order and threads analyzer
// facts across package boundaries):
//
//	go run ./cmd/ncdrf-lint ./...
//
// The standalone form accepts -json, which emits findings — including
// suppressed ones, marked as such — as a JSON array on stdout.
//
// Exceptions carry a `//lint:allow <analyzer> -- rationale` directive
// on or directly above the offending line; a directive naming an
// analyzer that does not exist is itself reported. DESIGN.md
// ("Enforced invariants") documents each analyzer's rule.
package main

import (
	"ncdrf/internal/analysis/ctxflow"
	"ncdrf/internal/analysis/detrange"
	"ncdrf/internal/analysis/goleak"
	"ncdrf/internal/analysis/lockdisc"
	"ncdrf/internal/analysis/poolescape"
	"ncdrf/internal/analysis/sharedmut"
	"ncdrf/internal/analysis/stagemut"
	"ncdrf/internal/analysis/unitchecker"
	"ncdrf/internal/analysis/wallclock"
)

func main() {
	unitchecker.Main(
		detrange.Analyzer,
		stagemut.Analyzer,
		ctxflow.Analyzer,
		wallclock.Analyzer,
		goleak.Analyzer,
		poolescape.Analyzer,
		lockdisc.Analyzer,
		sharedmut.Analyzer,
	)
}
