// Command ncdrf-lint is the repository's invariant checker: a vet-
// compatible driver for the analyzers in internal/analysis that
// machine-enforce the rules the sweep/curve/store stack rests on —
// byte-identical plan-order streams (detrange), immutable pipeline
// stage artifacts (stagemut), threaded cancellation (ctxflow) and
// clock/randomness-free deterministic paths (wallclock).
//
// Two equivalent invocations:
//
//	go build -o ncdrf-lint ./cmd/ncdrf-lint
//	go vet -vettool=$PWD/ncdrf-lint ./...
//
// or standalone (re-executes go vet -vettool on itself):
//
//	go run ./cmd/ncdrf-lint ./...
//
// Exceptions carry a `//lint:allow <analyzer> -- rationale` directive
// on or directly above the offending line; DESIGN.md ("Enforced
// invariants") documents each analyzer's rule.
package main

import (
	"ncdrf/internal/analysis/ctxflow"
	"ncdrf/internal/analysis/detrange"
	"ncdrf/internal/analysis/stagemut"
	"ncdrf/internal/analysis/unitchecker"
	"ncdrf/internal/analysis/wallclock"
)

func main() {
	unitchecker.Main(
		detrange.Analyzer,
		stagemut.Analyzer,
		ctxflow.Analyzer,
		wallclock.Analyzer,
	)
}
