package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"ncdrf/internal/bench"
)

// cmdBench runs the in-process benchmark suites and emits one
// schema-versioned BENCH_<n>.json trajectory point (see internal/bench
// and README "Benchmarks"). With -against it additionally gates on a
// committed baseline: more than -max-regress percent throughput loss or
// allocation growth in any shared suite fails the command — the CI
// bench job runs exactly that against the latest committed
// trajectory point.
func cmdBench(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	quick := fs.Bool("quick", false, "reduced benchtime and counters grid (CI smoke)")
	benchtime := fs.Duration("benchtime", time.Second, "minimum measured duration per suite")
	outPath := fs.String("o", "", "output file; '-' = stdout (default: next free BENCH_<n>.json)")
	against := fs.String("against", "", "baseline BENCH_*.json to compare against")
	maxRegress := fs.Float64("max-regress", 20, "with -against: max tolerated regression, percent")
	if err := fs.Parse(args); err != nil {
		return err
	}
	bt := *benchtime
	if *quick && bt > 100*time.Millisecond {
		bt = 100 * time.Millisecond
	}

	suites, err := bench.Suites(ctx)
	if err != nil {
		return err
	}
	results, err := bench.RunSuites(suites, bt, func(r bench.SuiteResult) {
		fmt.Fprintf(os.Stderr, "bench %-16s %10d iters  %12.0f ns/op  %8.0f allocs/op  %12.0f %s/sec\n",
			r.Name, r.Iterations, r.NsPerOp, r.AllocsPerOp, r.UnitsPerSec, r.Unit)
	})
	if err != nil {
		return err
	}
	counters, err := bench.Counters(ctx, *quick)
	if err != nil {
		return err
	}
	report := bench.NewReport(results, counters, *quick)

	path := *outPath
	if path == "" {
		if path, err = bench.NextPath("."); err != nil {
			return err
		}
	}
	if path == "-" {
		if err := report.Write(os.Stdout); err != nil {
			return err
		}
	} else {
		if err := writeFileAtomic(path, func(w io.Writer) error {
			return report.Write(w)
		}); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "bench: wrote %s\n", path)
	}

	if *against != "" {
		base, err := bench.Load(*against)
		if err != nil {
			return err
		}
		if err := bench.Compare(report, base, *maxRegress); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "bench: within %.0f%% of %s\n", *maxRegress, *against)
	}
	return nil
}
