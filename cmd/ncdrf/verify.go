package main

import (
	"flag"
	"fmt"

	"ncdrf/internal/codegen"
	"ncdrf/internal/core"
	"ncdrf/internal/loopgen"
	"ncdrf/internal/loops"
	"ncdrf/internal/machine"
	"ncdrf/internal/pipeline"
	"ncdrf/internal/sched"
	"ncdrf/internal/vm"
)

// cmdVerify runs the functional simulator: it executes the compiled loop
// (including any spill code) on simulated rotating register files and
// compares every stored value bit-for-bit against a sequential reference
// execution.
func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	name := fs.String("loop", "", "kernel name; empty verifies the whole curated corpus")
	lat := fs.Int("lat", 6, "floating-point latency (3 or 6)")
	regs := fs.Int("regs", 0, "registers per (sub)file; 0 = unlimited")
	iters := fs.Int("iters", 16, "iterations to execute")
	modelName := fs.String("model", "", "model to verify; empty verifies all")
	synth := fs.Int("synthetic", 0, "also verify N synthetic loops")
	if err := fs.Parse(args); err != nil {
		return err
	}

	models := []core.Model{core.Unified, core.Partitioned, core.Swapped}
	if *modelName != "" {
		m, err := core.ParseModel(*modelName)
		if err != nil {
			return err
		}
		models = []core.Model{m}
	}

	corpus := loops.Kernels()
	corpus = append(corpus, loops.PaperExample())
	if *name != "" {
		g, err := findLoop(*name)
		if err != nil {
			return err
		}
		corpus = corpus[:0]
		corpus = append(corpus, g)
	}
	if *synth > 0 {
		p := loopgen.Defaults()
		p.Loops = *synth
		corpus = append(corpus, loopgen.Generate(p)...)
	}

	m := machine.Eval(*lat)
	checked := 0
	for _, g := range corpus {
		for _, model := range models {
			if err := vm.VerifyModel(g, m, model, *regs, *iters); err != nil {
				return fmt.Errorf("%s under %v: %w", g.LoopName, model, err)
			}
			checked++
		}
	}
	fmt.Printf("verified %d loop/model combinations on %s (regs=%d, %d iterations): all stores bit-identical to the sequential reference\n",
		checked, m.Name(), *regs, *iters)
	return nil
}

// buildRegMap runs the base stage for a loop and constructs the register
// mapping for the requested model (swapping first for the swapped model).
func buildRegMap(name string, m *machine.Config, modelName string) (*sched.Schedule, vm.RegMap, error) {
	g, err := findLoop(name)
	if err != nil {
		return nil, nil, err
	}
	model, err := core.ParseModel(modelName)
	if err != nil {
		return nil, nil, err
	}
	b, err := pipeline.NewBase(g, m, sched.Options{})
	if err != nil {
		return nil, nil, err
	}
	s, lts := b.Sched, b.Lifetimes
	if model == core.Swapped {
		s, _ = core.Swap(s, core.SwapOptions{})
	}
	if model == core.Unified || model == core.Ideal {
		u, err := vm.NewUnifiedMap(lts, s.II)
		if err != nil {
			return nil, nil, err
		}
		return s, u, nil
	}
	d, err := vm.NewDualMap(s, lts)
	if err != nil {
		return nil, nil, err
	}
	return s, d, nil
}

// cmdListing prints an assembly-like kernel listing of a scheduled,
// allocated loop.
func cmdListing(args []string) error {
	fs := flag.NewFlagSet("listing", flag.ExitOnError)
	name := fs.String("loop", "paper-example", "kernel name")
	lat := fs.Int("lat", 3, "floating-point latency (3 or 6)")
	example := fs.Bool("example-machine", false, "use the section 4 example machine")
	modelName := fs.String("model", "partitioned", "unified or partitioned/swapped")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m := machine.Eval(*lat)
	if *example {
		m = machine.Example()
	}
	s, rm, err := buildRegMap(*name, m, *modelName)
	if err != nil {
		return err
	}
	fmt.Print(vm.Listing(s, rm))
	return nil
}

// cmdObject emits predicated kernel-only code (stage predicates, encoded
// rotating specifiers, brtop) for a scheduled, allocated loop.
func cmdObject(args []string) error {
	fs := flag.NewFlagSet("object", flag.ExitOnError)
	name := fs.String("loop", "paper-example", "kernel name")
	lat := fs.Int("lat", 3, "floating-point latency (3 or 6)")
	example := fs.Bool("example-machine", false, "use the section 4 example machine")
	modelName := fs.String("model", "partitioned", "unified or partitioned/swapped")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m := machine.Eval(*lat)
	if *example {
		m = machine.Example()
	}
	s, rm, err := buildRegMap(*name, m, *modelName)
	if err != nil {
		return err
	}
	p, err := codegen.Generate(s, rm)
	if err != nil {
		return err
	}
	fmt.Print(codegen.Format(p))
	return nil
}
