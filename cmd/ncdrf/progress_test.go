package main

import (
	"bytes"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"ncdrf/internal/sweep"
)

// lockedBuffer makes the reporter's writer safe to read from the test
// while the ticker goroutine may still write to it.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestProgressReporterJoins is the regression test for the -progress
// audit: close() must join the ticker goroutine (no leak past close)
// and always print the final summary line, even for a run far shorter
// than the reporting interval.
func TestProgressReporterJoins(t *testing.T) {
	before := runtime.NumGoroutine()
	var buf lockedBuffer
	p := startProgress(true, &buf, sweep.New(1), 7)
	for i := 0; i < 3; i++ {
		p.incDone()
	}
	p.incEmitted()
	p.close()

	out := buf.String()
	if !strings.Contains(out, "3/7 units done") {
		t.Errorf("final line missing done/total counts:\n%s", out)
	}
	if !strings.Contains(out, "1 emitted") {
		t.Errorf("final line missing emitted count:\n%s", out)
	}
	// The ticker goroutine must be gone; poll briefly because exiting
	// goroutines are not instantaneous from the counter's view.
	for attempt := 0; runtime.NumGoroutine() > before; attempt++ {
		if attempt > 400 {
			t.Fatalf("goroutine count %d did not return to %d after close; reporter leaked",
				runtime.NumGoroutine(), before)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestProgressNilReceiver: a disabled reporter is a nil pointer and
// every method must be a no-op on it — the call sites stay unconditional.
func TestProgressNilReceiver(t *testing.T) {
	p := startProgress(false, nil, nil, 0)
	if p != nil {
		t.Fatal("disabled reporter is not nil")
	}
	p.incDone()
	p.incEmitted()
	p.close()
}
