package main

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"ncdrf/internal/sweep"
)

// progressInterval is how often a live -progress run reports.
const progressInterval = 2 * time.Second

// progress is the -progress reporter of the sweep/curve commands: a
// periodic stderr line with done/total units, per-stage cache hit rates
// and elapsed time, so a long (possibly sharded) grid is observable
// without polluting the result stream on stdout. A nil *progress is a
// valid no-op receiver, which keeps the call sites unconditional.
type progress struct {
	w     io.Writer
	eng   *sweep.Engine
	total int
	// done counts computed units (the executor's completion hook);
	// emitted counts rows released in plan order. The two diverge by the
	// reorder buffer's depth under base-major execution, so the line
	// reports both.
	done    atomic.Int64
	emitted atomic.Int64
	start   time.Time
	stop    chan struct{}
	wg      sync.WaitGroup
}

// startProgress launches the reporter when enabled; the caller must
// close() it. The final summary line is always printed on close, so
// even a run shorter than the reporting interval shows its totals.
func startProgress(enabled bool, w io.Writer, eng *sweep.Engine, total int) *progress {
	if !enabled {
		return nil
	}
	//lint:allow wallclock -- the reporter's whole job is real elapsed time
	p := &progress{w: w, eng: eng, total: total, start: time.Now(), stop: make(chan struct{})}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		tick := time.NewTicker(progressInterval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				p.line()
			case <-p.stop:
				return
			}
		}
	}()
	return p
}

// incDone records one computed unit; it is the executor's completion
// hook, safe for concurrent use and on a nil reporter.
func (p *progress) incDone() {
	if p != nil {
		p.done.Add(1)
	}
}

// incEmitted records one emitted result row.
func (p *progress) incEmitted() {
	if p != nil {
		p.emitted.Add(1)
	}
}

// close stops the ticker and prints the final line.
func (p *progress) close() {
	if p == nil {
		return
	}
	close(p.stop)
	p.wg.Wait()
	p.line()
}

func (p *progress) line() {
	done := p.done.Load()
	pct := 0.0
	if p.total > 0 {
		pct = 100 * float64(done) / float64(p.total)
	}
	st := p.eng.StageStats()
	rate := func(cs sweep.CacheStats) string {
		req := cs.Requests()
		if req == 0 {
			return "-"
		}
		return fmt.Sprintf("%.0f%%", 100*float64(cs.Hits+cs.DiskHits)/float64(req))
	}
	// Rows by provenance: a frontier run's "done" count stops short of
	// the total by exactly the implied rows, so the line names them.
	rows := fmt.Sprintf("%d computed", st.RowsComputed)
	if st.RowsImplied > 0 {
		rows = fmt.Sprintf("%s + %d implied", rows, st.RowsImplied)
	}
	fmt.Fprintf(p.w, "progress: %d/%d units done (%.1f%%), %d emitted, rows %s, elapsed %s, hit rates: schedule %s, base %s, eval %s\n",
		done, p.total, pct, p.emitted.Load(), rows,
		//lint:allow wallclock -- elapsed time on stderr, never in artifacts
		time.Since(p.start).Round(time.Second/10),
		rate(st.Schedule), rate(st.Base), rate(st.Eval))
}
