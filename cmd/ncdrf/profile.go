package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// profileFlags attaches the pprof flags the long-running commands
// (sweep, curve, all) share, so hot-path work starts from a profile
// instead of a guess — see README "Profiling a run".
type profileFlags struct {
	cpu *string
	mem *string
}

func addProfileFlags(fs *flag.FlagSet) profileFlags {
	return profileFlags{
		cpu: fs.String("cpuprofile", "", "write a CPU profile to this file"),
		mem: fs.String("memprofile", "", "write an allocation profile to this file on exit"),
	}
}

// start begins CPU profiling if requested and returns a stop function
// that finishes both profiles; call it exactly once, after the command's
// real work (defer works: profiles of a failed run are still useful).
func (p profileFlags) start() (stop func() error, err error) {
	var cpuFile *os.File
	if *p.cpu != "" {
		cpuFile, err = os.Create(*p.cpu)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if *p.mem != "" {
			f, err := os.Create(*p.mem)
			if err != nil {
				return fmt.Errorf("-memprofile: %w", err)
			}
			defer f.Close()
			// An up-to-date heap profile, like `go test -memprofile`.
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				return fmt.Errorf("-memprofile: %w", err)
			}
		}
		return nil
	}, nil
}
