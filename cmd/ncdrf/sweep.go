package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"ncdrf/internal/core"
	"ncdrf/internal/experiment"
	"ncdrf/internal/machine"
	"ncdrf/internal/sweep"
)

// cmdSweep runs an arbitrary (corpus x latency x model x register-size)
// grid on the sweep engine and streams one JSON object per work unit to
// stdout, making the tool usable for workloads beyond the paper's fixed
// figures (e.g. `-regs 8,16,24,...,128 -models swapped` for a register
// sensitivity curve, or `-clusters 4` for a wider machine).
func cmdSweep(ctx context.Context, eng *sweep.Engine, args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	o := corpusFlags(fs)
	// Latencies are whole cycles: machine presets take integer latencies,
	// and parseIntList enforces it (pinned by TestCmdSweepLatsAreIntegers).
	lats := fs.String("lats", "3,6", "comma-separated latencies of the floating-point units, in whole cycles")
	models := fs.String("models", "ideal,unified,partitioned,swapped", "comma-separated models")
	regs := fs.String("regs", "32,64", "comma-separated register-file sizes (0 = unlimited)")
	clusters := fs.Int("clusters", 2, "clusters per machine (2 = the paper's evaluation machine)")
	stats := fs.Bool("stats", false, "append a cache-stats JSON object")
	cacheDir := cacheDirFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := attachCacheDir(eng, *cacheDir); err != nil {
		return err
	}

	latList, err := parseIntList(*lats)
	if err != nil {
		return fmt.Errorf("-lats: %w", err)
	}
	if len(latList) == 0 {
		return fmt.Errorf("-lats: no latencies given")
	}
	for _, lat := range latList {
		if lat < 1 {
			return fmt.Errorf("-lats: latency must be >= 1, got %d", lat)
		}
	}
	if *clusters < 1 {
		return fmt.Errorf("-clusters: must be >= 1, got %d", *clusters)
	}
	regList, err := parseIntList(*regs)
	if err != nil {
		return fmt.Errorf("-regs: %w", err)
	}
	if len(regList) == 0 {
		return fmt.Errorf("-regs: no sizes given (use 0 for an unlimited file)")
	}
	for _, r := range regList {
		if r < 0 {
			return fmt.Errorf("-regs: sizes must be >= 0 (0 = unlimited), got %d", r)
		}
	}
	var modelList []core.Model
	for _, name := range splitList(*models) {
		m, err := core.ParseModel(name)
		if err != nil {
			return err
		}
		modelList = append(modelList, m)
	}
	if len(modelList) == 0 {
		return fmt.Errorf("-models: no models given")
	}
	var machines []*machine.Config
	for _, lat := range latList {
		machines = append(machines, experiment.EvalN(*clusters, lat))
	}

	grid := sweep.Grid{
		Corpus:   buildCorpus(o),
		Machines: machines,
		Models:   modelList,
		Regs:     regList,
	}
	if err := runSweep(ctx, eng, grid, os.Stdout, *stats); err != nil {
		return err
	}
	return nil
}

// runSweep streams the grid's results as JSON lines; split out from
// cmdSweep so tests can capture the stream. A dead output (e.g. a
// closed pipe) cancels the sweep instead of burning CPU on results
// nobody will see.
func runSweep(ctx context.Context, eng *sweep.Engine, grid sweep.Grid, w io.Writer, stats bool) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	enc := json.NewEncoder(w)
	var encErr error // only written under Sweep's serialized emit
	err := eng.Sweep(ctx, grid, func(r sweep.Result) {
		if encErr != nil {
			return
		}
		if e := enc.Encode(r); e != nil {
			encErr = e
			cancel()
		}
	})
	if encErr != nil {
		return fmt.Errorf("writing results: %w", encErr)
	}
	if err != nil {
		return err
	}
	if stats {
		// The legacy cache_* keys describe the schedule stage; the
		// stage_* keys add the full per-stage picture (computed vs
		// memory vs disk tier) and the retained entry counts.
		st := eng.Cache().StageStats()
		lens := eng.Cache().Lens()
		obj := map[string]uint64{
			"cache_requests": st.Schedule.Requests(),
			"cache_hits":     st.Schedule.Hits,
			"cache_misses":   st.Schedule.Misses,
		}
		for name, cs := range map[string]sweep.CacheStats{
			"schedule": st.Schedule, "base": st.Base, "eval": st.Eval,
		} {
			obj["stage_"+name+"_requests"] = cs.Requests()
			obj["stage_"+name+"_computed"] = cs.Misses
			obj["stage_"+name+"_memory_hits"] = cs.Hits
			obj["stage_"+name+"_disk_hits"] = cs.DiskHits
		}
		obj["entries_schedule"] = uint64(lens.Schedule)
		obj["entries_base"] = uint64(lens.Base)
		obj["entries_eval"] = uint64(lens.Eval)
		return enc.Encode(obj)
	}
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func parseIntList(s string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}
