package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"ncdrf/internal/core"
	"ncdrf/internal/experiment"
	"ncdrf/internal/machine"
	"ncdrf/internal/pipeline"
	"ncdrf/internal/sweep"
)

// gridFlags bundles the grid-axis flags the sweep and curve commands
// share (-lats, -models, -clusters); the register axis stays per
// command because its spec differs (comma list vs. dense range).
type gridFlags struct {
	lats     *string
	models   *string
	clusters *int
}

func addGridFlags(fs *flag.FlagSet, defaultModels string) gridFlags {
	return gridFlags{
		// Latencies are whole cycles: machine presets take integer latencies,
		// and parseIntList enforces it (pinned by TestCmdSweepLatsAreIntegers).
		lats:     fs.String("lats", "3,6", "comma-separated latencies of the floating-point units, in whole cycles"),
		models:   fs.String("models", defaultModels, "comma-separated models"),
		clusters: fs.Int("clusters", 2, "clusters per machine (2 = the paper's evaluation machine)"),
	}
}

// buildGrid validates the axis flags and assembles the sweep grid; regs
// is pre-parsed by the caller. Every empty or out-of-range axis errors
// out here — a silently empty grid is the failure mode Grid.Validate
// exists for, and the CLI names the flag on top of the axis.
func (f gridFlags) buildGrid(o corpusOpts, regs []int) (sweep.Grid, error) {
	var grid sweep.Grid
	latList, err := parseIntList(*f.lats)
	if err != nil {
		return grid, fmt.Errorf("-lats: %w", err)
	}
	if len(latList) == 0 {
		return grid, fmt.Errorf("-lats: no latencies given")
	}
	for _, lat := range latList {
		if lat < 1 {
			return grid, fmt.Errorf("-lats: latency must be >= 1, got %d", lat)
		}
	}
	if *f.clusters < 1 {
		return grid, fmt.Errorf("-clusters: must be >= 1, got %d", *f.clusters)
	}
	var modelList []core.Model
	for _, name := range splitList(*f.models) {
		m, err := core.ParseModel(name)
		if err != nil {
			return grid, err
		}
		modelList = append(modelList, m)
	}
	if len(modelList) == 0 {
		return grid, fmt.Errorf("-models: no models given")
	}
	var machines []*machine.Config
	for _, lat := range latList {
		machines = append(machines, experiment.EvalN(*f.clusters, lat))
	}
	grid = sweep.Grid{
		Corpus:   buildCorpus(o),
		Machines: machines,
		Models:   modelList,
		Regs:     regs,
	}
	return grid, grid.Validate()
}

// planShard expands the grid once and applies an optional -shard spec:
// the full plan feeds both the shard slice and the header digest, so a
// large grid is never re-expanded per consumer (Plan, PlanDigest and
// Shard used to each expand it again).
func planShard(grid sweep.Grid, shardSpec string) (units []sweep.Unit, header *sweep.ShardHeader, err error) {
	plan := grid.Plan()
	if shardSpec == "" {
		return plan, nil, nil
	}
	i, n, err := parseShardSpec(shardSpec)
	if err != nil {
		return nil, nil, fmt.Errorf("-shard: %w", err)
	}
	units, err = sweep.ShardOf(plan, i, n)
	if err != nil {
		return nil, nil, fmt.Errorf("-shard: %w", err)
	}
	header = &sweep.ShardHeader{
		Shard: i, Of: n, Units: len(units),
		Grid: grid.PlanDigestOf(plan), Format: sweep.ShardFormatVersion,
	}
	return units, header, nil
}

// cmdSweep runs an arbitrary (corpus x latency x model x register-size)
// grid on the sweep engine and streams one JSON object per work unit in
// plan order, making the tool usable for workloads beyond the paper's
// fixed figures (e.g. `-regs 8,16,24,...,128 -models swapped` for a
// register sensitivity curve, or `-clusters 4` for a wider machine).
// With -shard i/n it runs one contiguous slice of the grid and prefixes
// the stream with a shard header, so n processes — ideally sharing one
// -cache-dir — can split the grid and `ncdrf merge` can reassemble the
// byte-identical unsharded stream.
func cmdSweep(ctx context.Context, eng *sweep.Engine, args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	o := corpusFlags(fs)
	gf := addGridFlags(fs, "ideal,unified,partitioned,swapped")
	regs := fs.String("regs", "32,64", "comma-separated register-file sizes (0 = unlimited)")
	stats := fs.Bool("stats", false, "append a cache-stats JSON object (with -o, printed to stdout instead)")
	shardSpec := fs.String("shard", "", "run only shard I of N of the grid, as I/N (e.g. 2/3); prefixes the output with a header for 'ncdrf merge'")
	outPath := fs.String("o", "", "write the result stream to this file instead of stdout")
	progressFlag := fs.Bool("progress", false, "report done/total units, per-stage hit rates and elapsed time on stderr")
	pf := addProfileFlags(fs)
	cacheDir := cacheDirFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := attachCacheDir(eng, *cacheDir); err != nil {
		return err
	}
	regList, err := parseIntList(*regs)
	if err != nil {
		return fmt.Errorf("-regs: %w", err)
	}
	if len(regList) == 0 {
		return fmt.Errorf("-regs: no sizes given (use 0 for an unlimited file)")
	}
	for _, r := range regList {
		if r < 0 {
			return fmt.Errorf("-regs: sizes must be >= 0 (0 = unlimited), got %d", r)
		}
	}
	grid, err := gf.buildGrid(o, regList)
	if err != nil {
		return err
	}
	units, header, err := planShard(grid, *shardSpec)
	if err != nil {
		return err
	}

	stopProf, err := pf.start()
	if err != nil {
		return err
	}
	prog := startProgress(*progressFlag, os.Stderr, eng, len(units))
	defer prog.close()
	// The stats trailer shares the row stream by default (back-compat),
	// but with -o it goes to stdout: a shard file must hold exactly a
	// header plus rows, or merge would reject it.
	if *outPath != "" {
		err = writeFileAtomic(*outPath, func(w io.Writer) error {
			return runSweep(ctx, eng, grid, units, header, w, *stats, os.Stdout, prog)
		})
	} else {
		err = runSweep(ctx, eng, grid, units, header, os.Stdout, *stats, os.Stdout, prog)
	}
	if perr := stopProf(); err == nil {
		err = perr
	}
	return err
}

// writeFileAtomic streams fn's output to a temp file next to path and
// renames it into place only when fn succeeds — same discipline as the
// artifact store's Put — so an interrupted or failed rerun never
// truncates a previously complete output file.
func writeFileAtomic(path string, fn func(w io.Writer) error) error {
	f, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	err = fn(f)
	if err == nil {
		// CreateTemp's private 0600 would make the shard file unreadable
		// to the account collecting shards centrally; match what a shell
		// redirect would have produced (0644 modulo umask is close enough
		// and never widens beyond it in practice).
		err = f.Chmod(0o644)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(f.Name(), path)
	}
	if err != nil {
		os.Remove(f.Name())
		return err
	}
	return nil
}

// parseShardSpec parses the I/N form of -shard.
func parseShardSpec(s string) (i, n int, err error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return 0, 0, fmt.Errorf("want I/N (e.g. 2/3), got %q", s)
	}
	if i, err = strconv.Atoi(s[:slash]); err != nil {
		return 0, 0, fmt.Errorf("bad shard index %q", s[:slash])
	}
	if n, err = strconv.Atoi(s[slash+1:]); err != nil {
		return 0, 0, fmt.Errorf("bad shard count %q", s[slash+1:])
	}
	return i, n, nil
}

// runSweep streams the units' results as JSON lines — preceded by the
// shard header when sharded — in plan order; split out from cmdSweep so
// tests can capture the stream. A dead output (e.g. a closed pipe)
// cancels the sweep instead of burning CPU on results nobody will see.
func runSweep(ctx context.Context, eng *sweep.Engine, grid sweep.Grid, units []sweep.Unit, header *sweep.ShardHeader, w io.Writer, stats bool, statsW io.Writer, prog *progress) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if header != nil {
		if err := sweep.WriteShardHeader(w, *header); err != nil {
			return fmt.Errorf("writing shard header: %w", err)
		}
	}
	var encErr error // only written under Sweep's serialized emit
	err := eng.SweepUnitsObserved(ctx, grid, units, func(r sweep.Result) {
		if encErr != nil {
			return
		}
		// The pooled row encoder (internal/pipeline) produces the same
		// bytes json.Encoder would, without a fresh encoder per row.
		if e := pipeline.EncodeRow(w, r); e != nil {
			encErr = e
			cancel()
			return
		}
		prog.incEmitted()
	}, prog.incDone)
	if encErr != nil {
		return fmt.Errorf("writing results: %w", encErr)
	}
	if err != nil {
		return err
	}
	if stats {
		return writeStatsJSON(eng, statsW)
	}
	return nil
}

// writeStatsJSON emits the -stats object: the legacy cache_* keys
// describe the schedule stage; the stage_* keys add the full per-stage
// picture (computed vs memory vs disk tier), the rows_* keys the row
// provenance (computed vs dominance-implied), and the entries_* keys
// the retained entry counts.
func writeStatsJSON(eng *sweep.Engine, w io.Writer) error {
	st := eng.StageStats()
	lens := eng.Cache().Lens()
	obj := map[string]uint64{
		"cache_requests": st.Schedule.Requests(),
		"cache_hits":     st.Schedule.Hits,
		"cache_misses":   st.Schedule.Misses,
	}
	// An ordered slice, not a map: the stage keys are built (and, were
	// obj ever streamed directly, emitted) in one fixed order.
	stages := []struct {
		name string
		cs   sweep.CacheStats
	}{{"schedule", st.Schedule}, {"base", st.Base}, {"eval", st.Eval}}
	for _, s := range stages {
		obj["stage_"+s.name+"_requests"] = s.cs.Requests()
		obj["stage_"+s.name+"_computed"] = s.cs.Misses
		obj["stage_"+s.name+"_memory_hits"] = s.cs.Hits
		obj["stage_"+s.name+"_disk_hits"] = s.cs.DiskHits
	}
	obj["rows_computed"] = st.RowsComputed
	obj["rows_implied"] = st.RowsImplied
	obj["entries_schedule"] = uint64(lens.Schedule)
	obj["entries_base"] = uint64(lens.Base)
	obj["entries_eval"] = uint64(lens.Eval)
	return json.NewEncoder(w).Encode(obj)
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func parseIntList(s string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}
