package main

import (
	"flag"
	"fmt"
	"os"

	"ncdrf/internal/report"
	"ncdrf/internal/store"
)

// cmdCache inspects and garbage-collects a persistent artifact
// directory (the -cache-dir of `ncdrf all|sweep`): per-version,
// per-stage entry counts and sizes, damaged-file detection, and — with
// -gc — removal of everything the current binary can never serve
// (stale format versions, damaged files, leftover temp files, and
// optionally entries older than -max-age), without disturbing live
// entries.
func cmdCache(args []string) error {
	fs := flag.NewFlagSet("cache", flag.ExitOnError)
	dir := fs.String("dir", "", "artifact directory (as given to -cache-dir)")
	gc := fs.Bool("gc", false, "remove stale-version, damaged and leftover-temp files (and expired ones with -max-age)")
	maxAge := fs.Duration("max-age", 0, "with -gc, also remove intact artifacts older than this (e.g. 720h; 0 keeps all ages)")
	dryRun := fs.Bool("dry-run", false, "with -gc, report what would be removed without removing anything")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("-dir is required (the directory previously passed to -cache-dir)")
	}
	if *maxAge < 0 {
		return fmt.Errorf("-max-age: must be >= 0, got %v", *maxAge)
	}
	// Refuse GC modifiers without -gc: silently inspecting would let an
	// operator believe the pruning they asked for actually ran.
	if !*gc && (*maxAge > 0 || *dryRun) {
		return fmt.Errorf("-max-age and -dry-run require -gc")
	}
	sum, err := store.Scan(*dir)
	if err != nil {
		return err
	}

	type agg struct {
		entries, damaged int
		bytes            int64
	}
	perStage := map[[2]string]*agg{}
	var order [][2]string
	for _, e := range sum.Entries {
		k := [2]string{fmt.Sprintf("v%d", e.Version), e.Stage}
		a := perStage[k]
		if a == nil {
			a = &agg{}
			perStage[k] = a
			order = append(order, k)
		}
		a.entries++
		a.bytes += e.Size
		if e.Damaged {
			a.damaged++
		}
	}
	fmt.Printf("artifact store %s (current format v%d)\n\n", *dir, store.FormatVersion)
	tb := &report.Table{Headers: []string{"version", "stage", "entries", "bytes", "damaged"}}
	for _, k := range order {
		a := perStage[k]
		note := fmt.Sprintf("%d", a.damaged)
		if k[0] != fmt.Sprintf("v%d", store.FormatVersion) {
			note = "stale version"
		}
		tb.Add(k[0], k[1], fmt.Sprintf("%d", a.entries), fmt.Sprintf("%d", a.bytes), note)
	}
	if len(order) == 0 {
		fmt.Println("no artifacts")
	} else if err := tb.Render(os.Stdout); err != nil {
		return err
	}
	if sum.Temps > 0 {
		fmt.Printf("leftover temp files: %d (%d bytes)\n", sum.Temps, sum.TempBytes)
	}
	if sum.Foreign > 0 {
		fmt.Printf("foreign entries (not touched by -gc): %d\n", sum.Foreign)
	}

	if !*gc {
		return nil
	}
	res, err := sum.GC(store.GCOptions{MaxAge: *maxAge, DryRun: *dryRun})
	if err != nil {
		return err
	}
	verb := "removed"
	if *dryRun {
		verb = "would remove"
	}
	fmt.Printf("\ngc: %s %d files (%d bytes): %d stale-version, %d damaged, %d expired, %d temps; kept %d live entries\n",
		verb, res.Removed(), res.Bytes, res.StaleVersions, res.Damaged, res.Expired, res.Temps, res.Kept)
	return nil
}
