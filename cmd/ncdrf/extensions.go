package main

import (
	"context"
	"flag"
	"os"

	"ncdrf/internal/experiment"
	"ncdrf/internal/sweep"
)

// cmdStats prints workload statistics, including the section 3.3
// single-use fraction the whole proposal rests on.
func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	o := corpusFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	return experiment.Stats(buildCorpus(o)).Render(os.Stdout)
}

// cmdClusters runs the cluster-scaling extension study (1, 2 and 4
// clusters).
func cmdClusters(ctx context.Context, eng *sweep.Engine, args []string) error {
	fs := flag.NewFlagSet("clusters", flag.ExitOnError)
	o := corpusFlags(fs)
	lat := fs.Int("lat", 6, "floating-point latency (3 or 6)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := experiment.ClusterScaling(ctx, eng, buildCorpus(o), *lat, nil)
	if err != nil {
		return err
	}
	return res.Render(os.Stdout)
}
