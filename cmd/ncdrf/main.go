// Command ncdrf reproduces the tables and figures of "Non-Consistent Dual
// Register Files to Reduce Register Pressure" (Llosa, Valero, Ayguadé,
// HPCA 1995) and exposes the underlying pipeline (modulo scheduling,
// lifetime analysis, rotating register allocation, swapping, spilling)
// for individual loops.
//
// Usage:
//
//	ncdrf example                     worked example of section 4 (Tables 2-4)
//	ncdrf table1 [flags]              Table 1
//	ncdrf fig6 [flags]                Figure 6 (static CDFs, latency 3 and 6)
//	ncdrf fig7 [flags]                Figure 7 (dynamic CDFs)
//	ncdrf fig8 [flags]                Figure 8 (relative performance)
//	ncdrf fig9 [flags]                Figure 9 (memory traffic density)
//	ncdrf all [flags]                 every table and figure
//	ncdrf sweep [flags]               arbitrary evaluation grid, JSON output
//	ncdrf curve [flags]               register-sensitivity curves (-regs lo:hi[:step])
//	ncdrf bench [flags]               benchmark suites -> BENCH_<n>.json
//	ncdrf merge s1 s2 ...             merge 'sweep -shard' outputs into one stream
//	ncdrf cache -dir <dir> [flags]    inspect/GC a -cache-dir artifact directory
//	ncdrf schedule -loop <name>       schedule one kernel and print it
//	ncdrf alloc -loop <name>          allocate one kernel under all models
//	ncdrf kernels                     list curated kernels
//	ncdrf gen -n <count> -seed <s>    emit the synthetic corpus (DDG text)
//	ncdrf dot -loop <name>            DOT dependence graph of a kernel
//	ncdrf regfile                     register-file area/access-time models
//
// Corpus flags (table1/fig6..9/all): -loops N -seed S -kernels-only
//
// Persistent cache (all/sweep): -cache-dir DIR stores stage artifacts on
// disk, so a rerun over the same corpus recomputes nothing.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"ncdrf/internal/sweep"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// One engine per process: every experiment command shares the same
	// schedule cache and worker pool, and an interrupt cancels the sweep.
	// After the first interrupt the handler unregisters, so a second
	// Ctrl-C kills the process the default way instead of being
	// swallowed while in-flight work drains.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	context.AfterFunc(ctx, stop)
	eng := sweep.New(0)

	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "example":
		err = cmdExample(args)
	case "table1":
		err = cmdTable1(ctx, eng, args)
	case "fig6":
		err = cmdFigCDF(ctx, eng, args, false)
	case "fig7":
		err = cmdFigCDF(ctx, eng, args, true)
	case "fig8":
		err = cmdFigPerf(ctx, eng, args, true, false)
	case "fig9":
		err = cmdFigPerf(ctx, eng, args, false, true)
	case "all":
		err = cmdAll(ctx, eng, args)
	case "sweep":
		err = cmdSweep(ctx, eng, args)
	case "curve":
		err = cmdCurve(ctx, eng, args)
	case "bench":
		err = cmdBench(ctx, args)
	case "merge":
		err = cmdMerge(args)
	case "cache":
		err = cmdCache(args)
	case "schedule":
		err = cmdSchedule(args)
	case "alloc":
		err = cmdAlloc(args)
	case "kernels":
		err = cmdKernels(args)
	case "gen":
		err = cmdGen(args)
	case "dot":
		err = cmdDot(args)
	case "regfile":
		err = cmdRegfile(args)
	case "verify":
		err = cmdVerify(args)
	case "listing":
		err = cmdListing(args)
	case "object":
		err = cmdObject(args)
	case "stats":
		err = cmdStats(args)
	case "clusters":
		err = cmdClusters(ctx, eng, args)
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "ncdrf: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ncdrf %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `ncdrf - Non-Consistent Dual Register Files (HPCA'95) reproduction

commands:
  example    worked example of section 4 (Tables 2, 3 and 4)
  table1     Table 1: loops allocatable without spilling per configuration
  fig6       Figure 6: static cumulative distribution of register needs
  fig7       Figure 7: dynamic (cycle-weighted) cumulative distribution
  fig8       Figure 8: performance with 32/64 registers
  fig9       Figure 9: density of memory traffic
  all        all of the above (-cache-dir makes reruns incremental)
  sweep      arbitrary corpus x latency x model x register-size grid,
             streamed as JSON lines in plan order (-lats, -models, -regs,
             -clusters, -cache-dir, -progress; -shard i/n -o file runs
             one slice of the grid for 'ncdrf merge')
  curve      register-sensitivity curves over a dense register axis
             (-regs lo:hi[:step]): per-model fit %, spill ops and
             performance relative to ideal vs. file size, one base
             schedule per (loop, machine) group (-csv, -chart, -ndjson,
             -shard, -from, -stats, -strict, -progress, -cache-dir)
  bench      run the in-process benchmark suites and write a
             schema-versioned BENCH_<n>.json trajectory point (-quick,
             -benchtime, -o, -against FILE -max-regress PCT)
  merge      splice 'sweep'/'curve' -shard output files back into the
             byte-identical unsharded stream
  cache      inspect or garbage-collect a -cache-dir artifact directory
             (-dir, -gc, -max-age, -dry-run)
  schedule   modulo-schedule one kernel (-loop name, -lat 3|6)
  alloc      register requirements of one kernel under every model
  kernels    list the curated kernel corpus
  gen        emit the synthetic corpus as DDG text (-n, -seed)
  dot        DOT dependence graph of a kernel (-loop name)
  regfile    register-file area and access-time model comparison
  verify     execute compiled loops on simulated rotating register files
             and check them bit-for-bit against a sequential reference
  listing    assembly-like kernel listing with allocated register specifiers
  object     predicated kernel-only code (stage predicates, encoded rotating
             specifiers, brtop), as the Cydra-5-style hardware executes it
  stats      corpus statistics, incl. the section 3.3 single-use fraction
  clusters   extension study: 1/2/4-cluster machines
`)
}

// corpusFlags attaches the shared corpus options to a FlagSet.
type corpusOpts struct {
	loops       *int
	seed        *int64
	kernelsOnly *bool
}

func corpusFlags(fs *flag.FlagSet) corpusOpts {
	return corpusOpts{
		loops:       fs.Int("loops", 795, "synthetic corpus size"),
		seed:        fs.Int64("seed", 1995, "synthetic corpus seed"),
		kernelsOnly: fs.Bool("kernels-only", false, "use only the curated kernels"),
	}
}
