package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ncdrf/internal/sweep"
)

// cmdMerge splices the output files of `sweep -shard i/n -o file` back
// into the single-run stream: it validates that the files form one
// complete shard set of one grid (any argument order), then emits the
// rows in plan order — byte-identical to what the unsharded `ncdrf
// sweep` would have printed.
func cmdMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	outPath := fs.String("o", "", "write the merged stream to this file instead of stdout")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ncdrf merge [-o out.ndjson] shard1.ndjson shard2.ndjson ...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if len(paths) == 0 {
		return fmt.Errorf("no shard files given (run 'ncdrf sweep -shard i/n -o file' to produce them)")
	}
	var shards []sweep.ShardFile
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		sf, err := sweep.ReadShardFile(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		shards = append(shards, sf)
	}
	if *outPath != "" {
		return writeFileAtomic(*outPath, func(w io.Writer) error {
			return sweep.MergeShards(w, shards)
		})
	}
	return sweep.MergeShards(os.Stdout, shards)
}
