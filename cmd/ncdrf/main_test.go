package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ncdrf/internal/store"
	"ncdrf/internal/sweep"
)

var ctx0 = context.Background()

func testEng() *sweep.Engine { return sweep.New(0) }

// capture runs fn with os.Stdout redirected to a pipe and returns what it
// printed; the command must succeed.
func capture(t *testing.T, fn func() error) string {
	t.Helper()
	out, errRun := captureAny(t, fn)
	if errRun != nil {
		t.Fatalf("command failed: %v\noutput:\n%s", errRun, out)
	}
	return out
}

// captureAny is capture for commands that are allowed to fail: it
// returns the captured stdout alongside the command's error.
func captureAny(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(r)
		done <- buf.String()
	}()
	errRun := fn()
	w.Close()
	os.Stdout = old
	return <-done, errRun
}

func TestCmdExample(t *testing.T) {
	out := capture(t, func() error { return cmdExample(nil) })
	for _, want := range []string{"Table 2", "Table 3", "Table 4", "42", "29", "23", "II=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("example output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdTable1KernelsOnly(t *testing.T) {
	out := capture(t, func() error { return cmdTable1(ctx0, testEng(), []string{"-kernels-only"}) })
	if !strings.Contains(out, "P2L6") {
		t.Fatalf("table1 output missing P2L6:\n%s", out)
	}
	csv := capture(t, func() error { return cmdTable1(ctx0, testEng(), []string{"-kernels-only", "-csv"}) })
	if !strings.HasPrefix(csv, "config,") {
		t.Fatalf("csv output malformed:\n%s", csv)
	}
}

func TestCmdFigsSmall(t *testing.T) {
	out := capture(t, func() error { return cmdFigCDF(ctx0, testEng(), []string{"-loops", "15", "-seed", "3"}, false) })
	if !strings.Contains(out, "Figure 6 (latency 3)") || !strings.Contains(out, "Figure 6 (latency 6)") {
		t.Fatalf("fig6 incomplete:\n%s", out)
	}
	chart := capture(t, func() error {
		return cmdFigCDF(ctx0, testEng(), []string{"-loops", "15", "-seed", "3", "-chart"}, true)
	})
	if !strings.Contains(chart, "legend:") {
		t.Fatalf("chart missing legend:\n%s", chart)
	}
}

func TestCmdScheduleAndAlloc(t *testing.T) {
	out := capture(t, func() error { return cmdSchedule([]string{"-loop", "daxpy", "-lat", "6"}) })
	if !strings.Contains(out, "ResMII") || !strings.Contains(out, "row 0:") {
		t.Fatalf("schedule output wrong:\n%s", out)
	}
	out = capture(t, func() error { return cmdSchedule([]string{"-example-machine"}) })
	if !strings.Contains(out, "II=1") {
		t.Fatalf("example-machine schedule wrong:\n%s", out)
	}
	out = capture(t, func() error { return cmdAlloc([]string{"-loop", "lfk7-eos", "-lat", "6"}) })
	if !strings.Contains(out, "unified") || !strings.Contains(out, "swapped") {
		t.Fatalf("alloc output wrong:\n%s", out)
	}
}

func TestCmdKernelsGenDot(t *testing.T) {
	out := capture(t, func() error { return cmdKernels(nil) })
	if !strings.Contains(out, "daxpy") || !strings.Contains(out, "paper-example") {
		t.Fatalf("kernels listing wrong:\n%s", out)
	}
	out = capture(t, func() error { return cmdGen([]string{"-n", "3", "-seed", "9"}) })
	if strings.Count(out, "loop syn") != 3 {
		t.Fatalf("gen output wrong:\n%s", out)
	}
	out = capture(t, func() error { return cmdDot([]string{"-loop", "daxpy"}) })
	if !strings.Contains(out, "digraph") {
		t.Fatalf("dot output wrong:\n%s", out)
	}
}

func TestCmdRegfileStatsListing(t *testing.T) {
	out := capture(t, func() error { return cmdRegfile(nil) })
	if !strings.Contains(out, "non-consistent-dual") {
		t.Fatalf("regfile output wrong:\n%s", out)
	}
	out = capture(t, func() error { return cmdStats([]string{"-kernels-only"}) })
	if !strings.Contains(out, "read exactly once") {
		t.Fatalf("stats output wrong:\n%s", out)
	}
	out = capture(t, func() error { return cmdListing([]string{"-example-machine", "-model", "swapped"}) })
	if !strings.Contains(out, "rotating registers") {
		t.Fatalf("listing output wrong:\n%s", out)
	}
	out = capture(t, func() error { return cmdListing([]string{"-model", "unified", "-loop", "daxpy"}) })
	if !strings.Contains(out, "file 0:") {
		t.Fatalf("unified listing wrong:\n%s", out)
	}
}

func TestCmdObject(t *testing.T) {
	out := capture(t, func() error {
		return cmdObject([]string{"-example-machine", "-model", "swapped"})
	})
	for _, want := range []string{"brtop", "p[", "kernel of paper-example"} {
		if !strings.Contains(out, want) {
			t.Fatalf("object output missing %q:\n%s", want, out)
		}
	}
	if err := cmdObject([]string{"-model", "bogus"}); err == nil {
		t.Fatal("unknown model must error")
	}
}

func TestCmdVerifySingleLoop(t *testing.T) {
	out := capture(t, func() error {
		return cmdVerify([]string{"-loop", "daxpy", "-model", "swapped", "-iters", "6"})
	})
	if !strings.Contains(out, "bit-identical") {
		t.Fatalf("verify output wrong:\n%s", out)
	}
}

func TestCmdClustersSmall(t *testing.T) {
	out := capture(t, func() error { return cmdClusters(ctx0, testEng(), []string{"-kernels-only", "-lat", "3"}) })
	if !strings.Contains(out, "cluster scaling") {
		t.Fatalf("clusters output wrong:\n%s", out)
	}
}

func TestCmdSweepJSON(t *testing.T) {
	out := capture(t, func() error {
		return cmdSweep(ctx0, testEng(), []string{
			"-kernels-only", "-lats", "6", "-models", "unified,swapped", "-regs", "24,48", "-stats"})
	})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// 22 kernels x 1 machine x 2 models x 2 sizes, plus the stats object.
	nKernels := strings.Count(capture(t, func() error { return cmdKernels(nil) }), "\n") - 1
	want := nKernels*2*2 + 1
	if len(lines) != want {
		t.Fatalf("emitted %d JSON lines, want %d:\n%s", len(lines), want, out)
	}
	var r struct {
		Loop    string `json:"loop"`
		Machine string `json:"machine"`
		Model   string `json:"model"`
		Regs    int    `json:"regs"`
		II      int    `json:"ii"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &r); err != nil {
		t.Fatalf("first line is not JSON: %v\n%s", err, lines[0])
	}
	if r.Loop == "" || r.Machine != "eval-L6" || r.II < 1 {
		t.Fatalf("malformed result: %+v", r)
	}
	var st map[string]uint64
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &st); err != nil {
		t.Fatalf("stats line is not JSON: %v", err)
	}
	// Iteration-0 schedules are shared across the two models and sizes,
	// so both counters must be live.
	if st["cache_misses"] == 0 || st["cache_hits"] == 0 {
		t.Fatalf("degenerate cache stats: %v", st)
	}
}

func TestCmdSweepEmptyLists(t *testing.T) {
	for _, args := range [][]string{
		{"-lats", ""},
		{"-models", " "},
		{"-regs", ","},
	} {
		if err := cmdSweep(ctx0, testEng(), args); err == nil {
			t.Fatalf("empty list %v must error", args)
		}
	}
}

// TestCmdSweepLatsAreIntegers pins the -lats contract the help text
// documents: latencies are whole cycles, so fractional values are
// rejected up front instead of being silently mangled.
func TestCmdSweepLatsAreIntegers(t *testing.T) {
	for _, bad := range []string{"3.5", "3,6.0", "1e1"} {
		if err := cmdSweep(ctx0, testEng(), []string{"-lats", bad}); err == nil {
			t.Fatalf("fractional latency list %q must error", bad)
		}
	}
	out := capture(t, func() error {
		return cmdSweep(ctx0, testEng(), []string{
			"-kernels-only", "-lats", "3", "-models", "ideal", "-regs", "0"})
	})
	if !strings.Contains(out, `"machine":"eval-L3"`) {
		t.Fatalf("integer latency rejected:\n%s", out)
	}
}

// TestCmdSweepStatsEntries checks the -stats object surfaces the
// per-stage entry counts (Cache.Lens) and the per-stage tier counters.
func TestCmdSweepStatsEntries(t *testing.T) {
	out := capture(t, func() error {
		return cmdSweep(ctx0, testEng(), []string{
			"-kernels-only", "-lats", "6", "-models", "unified", "-regs", "32", "-stats"})
	})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var st map[string]uint64
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &st); err != nil {
		t.Fatalf("stats line is not JSON: %v", err)
	}
	for _, key := range []string{
		"entries_schedule", "entries_base", "entries_eval",
		"stage_eval_requests", "stage_eval_computed", "stage_base_memory_hits",
	} {
		if _, ok := st[key]; !ok {
			t.Fatalf("stats object missing %q: %v", key, st)
		}
	}
	if st["entries_schedule"] == 0 || st["entries_base"] == 0 || st["entries_eval"] == 0 {
		t.Fatalf("degenerate entry counts: %v", st)
	}
	if st["stage_schedule_disk_hits"] != 0 {
		t.Fatalf("disk hits without a store: %v", st)
	}
}

// TestCmdAllCacheDirIncremental is the CLI acceptance scenario: a second
// `ncdrf all -cache-dir` run over the same corpus reports 0 computed at
// the schedule and eval stages and emits byte-identical tables/figures
// (everything but the run-dependent stats trailer).
func TestCmdAllCacheDirIncremental(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-kernels-only", "-cache-dir", dir}
	first := capture(t, func() error { return cmdAll(ctx0, testEng(), args) })
	second := capture(t, func() error { return cmdAll(ctx0, testEng(), args) })

	stripTrailer := func(out string) (body string, trailer []string) {
		for _, line := range strings.SplitAfter(out, "\n") {
			if strings.HasPrefix(line, "stage ") {
				trailer = append(trailer, strings.TrimSuffix(line, "\n"))
			} else {
				body += line
			}
		}
		return body, trailer
	}
	body1, trailer1 := stripTrailer(first)
	body2, trailer2 := stripTrailer(second)
	if len(trailer1) != 4 || len(trailer2) != 4 {
		t.Fatalf("trailer shape wrong:\n%v\n%v", trailer1, trailer2)
	}
	if body1 != body2 {
		t.Fatalf("second run not byte-identical:\nfirst:\n%s\nsecond:\n%s", body1, body2)
	}
	for _, line := range trailer2 {
		if strings.HasPrefix(line, "stage schedule:") || strings.HasPrefix(line, "stage eval:") {
			if !strings.Contains(line, " 0 computed,") {
				t.Fatalf("warm run recomputed: %q", line)
			}
			if strings.Contains(line, " 0 from disk") {
				t.Fatalf("warm run not served from disk: %q", line)
			}
		}
	}
	// The cold run must already advertise the disk tier in its trailer
	// (the rows line is provenance, not a cache stage, so it has none).
	for _, line := range trailer1 {
		if strings.HasPrefix(line, "stage rows:") {
			continue
		}
		if !strings.Contains(line, "from disk") {
			t.Fatalf("cold run trailer missing disk tier: %q", line)
		}
	}
}

func TestCmdSweepBadFlags(t *testing.T) {
	if err := cmdSweep(ctx0, testEng(), []string{"-models", "bogus"}); err == nil {
		t.Fatal("unknown model must error")
	}
	if err := cmdSweep(ctx0, testEng(), []string{"-lats", "x"}); err == nil {
		t.Fatal("bad latency list must error")
	}
}

func TestFindLoopErrors(t *testing.T) {
	if _, err := findLoop("definitely-missing"); err == nil {
		t.Fatal("unknown loop must error")
	}
	g, err := findLoop("")
	if err != nil || g.LoopName != "paper-example" {
		t.Fatalf("default loop wrong: %v %v", g, err)
	}
}

func TestCmdVerifyUnknownModel(t *testing.T) {
	if err := cmdVerify([]string{"-model", "bogus"}); err == nil {
		t.Fatal("unknown model must error")
	}
}

// TestCmdSweepShardMerge is the CLI acceptance scenario of the shard
// workflow: three `sweep -shard i/3 -o file` runs merge into the
// byte-identical stream of the unsharded run, in any argument order.
func TestCmdSweepShardMerge(t *testing.T) {
	args := []string{"-kernels-only", "-lats", "6", "-models", "unified,swapped", "-regs", "24,48"}
	single := capture(t, func() error { return cmdSweep(ctx0, testEng(), args) })

	dir := t.TempDir()
	var files []string
	for i := 1; i <= 3; i++ {
		p := filepath.Join(dir, fmt.Sprintf("s%d.ndjson", i))
		files = append(files, p)
		shardArgs := append(append([]string{}, args...),
			"-shard", fmt.Sprintf("%d/3", i), "-o", p)
		if out := capture(t, func() error { return cmdSweep(ctx0, testEng(), shardArgs) }); out != "" {
			t.Fatalf("sharded sweep with -o wrote to stdout: %q", out)
		}
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(data), `{"ncdrf_shard":`) {
			t.Fatalf("shard file %d missing header: %.60q", i, data)
		}
	}
	merged := capture(t, func() error { return cmdMerge([]string{files[2], files[0], files[1]}) })
	if merged != single {
		t.Fatalf("merged stream differs from unsharded run:\nmerged:\n%s\nsingle:\n%s", merged, single)
	}
	// -o on merge writes the same bytes to a file.
	out := filepath.Join(dir, "merged.ndjson")
	capture(t, func() error { return cmdMerge([]string{"-o", out, files[0], files[1], files[2]}) })
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != single {
		t.Fatal("merge -o differs from merge to stdout")
	}
}

// TestCmdSweepShardStatsToStdout checks that with -o the stats object
// goes to stdout, keeping the shard file exactly header + rows.
func TestCmdSweepShardStatsToStdout(t *testing.T) {
	p := filepath.Join(t.TempDir(), "s.ndjson")
	out := capture(t, func() error {
		return cmdSweep(ctx0, testEng(), []string{
			"-kernels-only", "-lats", "3", "-models", "ideal", "-regs", "0",
			"-shard", "1/2", "-o", p, "-stats"})
	})
	var st map[string]uint64
	if err := json.Unmarshal([]byte(strings.TrimSpace(out)), &st); err != nil {
		t.Fatalf("stdout is not the stats object: %v\n%s", err, out)
	}
	if _, ok := st["stage_eval_requests"]; !ok {
		t.Fatalf("stats object incomplete: %v", st)
	}
	if strings.Contains(readFileT(t, p), "stage_eval_requests") {
		t.Fatal("stats leaked into the shard file")
	}
}

func readFileT(t *testing.T, p string) string {
	t.Helper()
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// captureStderr runs fn with os.Stderr redirected and returns what it
// printed there (stdout is captured and discarded via capture).
func captureStderr(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(r)
		done <- buf.String()
	}()
	errRun := fn()
	w.Close()
	os.Stderr = old
	out := <-done
	if errRun != nil {
		t.Fatalf("command failed: %v\nstderr:\n%s", errRun, out)
	}
	return out
}

// TestCmdCurveTables drives the default curve rendering and the -stats
// trailer: the acceptance property is visible in the counters — the
// base stage is requested and computed exactly once per (loop, machine)
// group however dense the register axis is.
func TestCmdCurveTables(t *testing.T) {
	out := capture(t, func() error {
		return cmdCurve(ctx0, testEng(), []string{
			"-kernels-only", "-lats", "6", "-regs", "16:48:16", "-stats"})
	})
	for _, want := range []string{
		"register sensitivity (eval-L6, 44 loops): % of loops allocatable without spilling",
		"spill memory ops per iteration",
		"performance relative to ideal",
		"regs  ideal  unified  partitioned  swapped",
		"stage base: 44 requests, 44 computed, 0 served from memory",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("curve output missing %q:\n%s", want, out)
		}
	}
	csv := capture(t, func() error {
		return cmdCurve(ctx0, testEng(), []string{
			"-kernels-only", "-lats", "6", "-regs", "16,32", "-csv"})
	})
	if !strings.HasPrefix(csv, "machine,model,regs,") {
		t.Fatalf("curve csv malformed:\n%s", csv)
	}
	chart := capture(t, func() error {
		return cmdCurve(ctx0, testEng(), []string{
			"-kernels-only", "-lats", "6", "-regs", "16:48:16", "-chart"})
	})
	if !strings.Contains(chart, "legend:") {
		t.Fatalf("curve chart missing legend:\n%s", chart)
	}
}

// TestCmdCurveShardMergeFrom is the curve acceptance scenario: a
// 3-shard curve run merges byte-identically into the unsharded -ndjson
// stream, and -from renders the merged stream without recomputing.
func TestCmdCurveShardMergeFrom(t *testing.T) {
	// 16+ registers so every cell converges: the rendering runs below
	// exit non-zero on failed cells by design (see
	// TestCmdCurveFailedCellsExitNonZero).
	args := []string{"-kernels-only", "-lats", "6", "-models", "unified,swapped", "-regs", "16:40:8"}
	single := capture(t, func() error {
		return cmdCurve(ctx0, testEng(), append(append([]string{}, args...), "-ndjson"))
	})
	sweepOut := capture(t, func() error { return cmdSweep(ctx0, testEng(), append(append([]string{}, args...), "-regs", "16,24,32,40")) })
	if single != sweepOut {
		t.Fatalf("curve -ndjson differs from the equivalent sweep stream:\ncurve:\n%s\nsweep:\n%s", single, sweepOut)
	}

	dir := t.TempDir()
	var files []string
	for i := 1; i <= 3; i++ {
		p := filepath.Join(dir, fmt.Sprintf("cs%d.ndjson", i))
		files = append(files, p)
		shardArgs := append(append([]string{}, args...), "-shard", fmt.Sprintf("%d/3", i), "-o", p)
		if out := capture(t, func() error { return cmdCurve(ctx0, testEng(), shardArgs) }); out != "" {
			t.Fatalf("sharded curve with -o wrote to stdout: %q", out)
		}
	}
	merged := filepath.Join(dir, "merged.ndjson")
	capture(t, func() error { return cmdMerge([]string{"-o", merged, files[1], files[2], files[0]}) })
	if got := readFileT(t, merged); got != single {
		t.Fatalf("3-shard curve merge differs from the unsharded run:\nmerged:\n%s\nsingle:\n%s", got, single)
	}

	direct := capture(t, func() error { return cmdCurve(ctx0, testEng(), args) })
	fromOut := capture(t, func() error { return cmdCurve(ctx0, testEng(), []string{"-from", merged}) })
	if fromOut != direct {
		t.Fatalf("-from render differs from the direct run:\nfrom:\n%s\ndirect:\n%s", fromOut, direct)
	}
	// A lone shard file must be refused with a pointer at merge.
	if err := cmdCurve(ctx0, testEng(), []string{"-from", files[0]}); err == nil || !strings.Contains(err.Error(), "merge") {
		t.Fatalf("-from of a shard file: %v", err)
	}
}

// TestCmdCurveFailedCells pins the degraded-curve contract: cells that
// fail to compile are data (the failed column), so the default run
// still succeeds with the tables rendered — but -strict turns the
// condition into the exit status, so a scripted `curve -strict &&
// publish` cannot treat a degraded curve as clean.
func TestCmdCurveFailedCells(t *testing.T) {
	failArgs := []string{"-kernels-only", "-lats", "6", "-models", "ideal,swapped", "-regs", "2"}
	// One engine for all three invocations: the non-converging spill
	// loops are deterministic failures, cached by the eval stage, so
	// only the first run pays for the 400-round divergences.
	eng := testEng()
	var out string
	warn := captureStderr(t, func() error {
		out = capture(t, func() error { return cmdCurve(ctx0, eng, failArgs) })
		return nil
	})
	if !strings.Contains(out, "register sensitivity") {
		t.Fatalf("default run must render the tables:\n%s", out)
	}
	if !strings.Contains(warn, "-strict makes this fatal") {
		t.Fatalf("default run must warn about failed cells on stderr:\n%s", warn)
	}
	_, err := captureAny(t, func() error {
		return cmdCurve(ctx0, eng, append(append([]string{}, failArgs...), "-strict"))
	})
	if err == nil || !strings.Contains(err.Error(), "failed to compile") {
		t.Fatalf("-strict with failing cells must error, got: %v", err)
	}
	// Matched-population baseline: even with most of the corpus failing
	// at 2 registers, relative performance must never exceed 1 (a model
	// cannot beat the ideal baseline over the same loops).
	csv := capture(t, func() error {
		return cmdCurve(ctx0, eng, append(append([]string{}, failArgs...), "-csv"))
	})
	for _, line := range strings.Split(strings.TrimSpace(csv), "\n")[1:] {
		cells := strings.Split(line, ",")
		rel, spill := cells[len(cells)-1], cells[8]
		if rel != "" {
			var v float64
			if _, err := fmt.Sscanf(rel, "%f", &v); err != nil || v > 1.0+1e-9 {
				t.Fatalf("rel_perf %q exceeds ideal on a failing cell:\n%s", rel, line)
			}
		}
		if strings.HasPrefix(spill, "-") {
			t.Fatalf("negative spill ops %q on a failing cell:\n%s", spill, line)
		}
	}
}

// TestCmdCurveBadRegsSpecs pins the -regs axis validation.
func TestCmdCurveBadRegsSpecs(t *testing.T) {
	for _, bad := range []string{"", "x", "8:", ":8", "8:4", "-8:16", "8:16:0", "8:16:-2", "1:2:3:4", "0:99999999",
		"8,16,16,32", "32,16", "8,32,16"} {
		if err := cmdCurve(ctx0, testEng(), []string{"-kernels-only", "-regs", bad}); err == nil {
			t.Fatalf("-regs %q accepted", bad)
		}
	}
	got, err := parseRegsAxis("8:33:8")
	if err != nil || fmt.Sprint(got) != "[8 16 24 32]" {
		t.Fatalf("8:33:8 = %v, %v", got, err)
	}
	got, err = parseRegsAxis("8:16")
	if err != nil || len(got) != 9 {
		t.Fatalf("8:16 (default step 1) = %v, %v", got, err)
	}
	// Comma lists must be strictly ascending — a duplicate would
	// double-count its loops in the curve cell, a descending list is a
	// typo'd range — and each rejection names its own cause.
	if _, err := parseRegsAxis("8,16,16,32"); err == nil || !strings.Contains(err.Error(), "duplicate size 16") {
		t.Fatalf("duplicate comma entry: %v", err)
	}
	if _, err := parseRegsAxis("32,16"); err == nil || !strings.Contains(err.Error(), "ascending") {
		t.Fatalf("descending comma entry: %v", err)
	}
}

// TestCmdCurveFrontier is the CLI acceptance scenario of the frontier
// executor: -frontier -ndjson is byte-identical to the dense stream
// over the kernels corpus, the stats trailer separates implied from
// computed rows, and the dense-only flags are refused with pointers at
// why.
func TestCmdCurveFrontier(t *testing.T) {
	args := []string{"-kernels-only", "-lats", "3,6", "-regs", "8:128:8"}
	dense := capture(t, func() error {
		return cmdCurve(ctx0, testEng(), append(append([]string{}, args...), "-ndjson"))
	})
	pruned := capture(t, func() error {
		return cmdCurve(ctx0, testEng(), append(append([]string{}, args...), "-ndjson", "-frontier"))
	})
	if dense != pruned {
		t.Fatalf("-frontier -ndjson differs from the dense stream:\ndense:\n%s\nfrontier:\n%s", dense, pruned)
	}

	// Tables with -stats: the trailer must show implied rows and fewer
	// computed evals than the plan has cells.
	out := capture(t, func() error {
		return cmdCurve(ctx0, testEng(), append(append([]string{}, args...), "-frontier", "-stats"))
	})
	denseOut := capture(t, func() error { return cmdCurve(ctx0, testEng(), args) })
	stripStage := func(s string) string {
		var body string
		for _, line := range strings.SplitAfter(s, "\n") {
			if !strings.HasPrefix(line, "stage ") && strings.TrimSpace(line) != "" {
				body += line
			}
		}
		return body
	}
	if stripStage(out) != stripStage(denseOut) {
		t.Fatalf("-frontier tables differ from dense tables:\ndense:\n%s\nfrontier:\n%s", denseOut, out)
	}
	var rowsLine string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "stage rows:") {
			rowsLine = line
		}
	}
	var computed, implied int
	if _, err := fmt.Sscanf(rowsLine, "stage rows: %d computed, %d implied", &computed, &implied); err != nil {
		t.Fatalf("rows trailer line unparseable: %q (%v)", rowsLine, err)
	}
	// kernels x 2 machines x 4 models x 16 axis points.
	if total := 44 * 2 * 4 * 16; computed+implied != total {
		t.Fatalf("rows %d computed + %d implied != %d plan cells", computed, implied, total)
	}
	if implied == 0 || computed >= implied {
		t.Fatalf("no meaningful pruning: %d computed, %d implied", computed, implied)
	}

	// Dense-only flags are refused up front, naming the reason.
	err := cmdCurve(ctx0, testEng(), append(append([]string{}, args...), "-frontier", "-shard", "1/2"))
	if err == nil || !strings.Contains(err.Error(), "dense-only") {
		t.Fatalf("-frontier -shard: %v", err)
	}
	f := filepath.Join(t.TempDir(), "rows.ndjson")
	if err := os.WriteFile(f, []byte(dense), 0o644); err != nil {
		t.Fatal(err)
	}
	err = cmdCurve(ctx0, testEng(), []string{"-from", f, "-frontier"})
	if err == nil || !strings.Contains(err.Error(), "-frontier") {
		t.Fatalf("-from -frontier: %v", err)
	}
	// An axis without dominance structure (0 = unlimited) is refused.
	err = cmdCurve(ctx0, testEng(), []string{"-kernels-only", "-regs", "0,32", "-frontier"})
	if err == nil || !strings.Contains(err.Error(), "run dense") {
		t.Fatalf("-frontier with an unlimited size: %v", err)
	}
}

// TestCmdSweepProgress checks the -progress reporter: a final summary
// line with unit totals and per-stage hit rates lands on stderr, and
// none of it leaks into the result stream.
func TestCmdSweepProgress(t *testing.T) {
	var stdout string
	stderr := captureStderr(t, func() error {
		var err error
		stdout = capture(t, func() error {
			return cmdSweep(ctx0, testEng(), []string{
				"-kernels-only", "-lats", "6", "-models", "swapped", "-regs", "16,32", "-progress"})
		})
		return err
	})
	if !strings.Contains(stderr, "progress: 88/88 units done (100.0%), 88 emitted") {
		t.Fatalf("progress summary missing from stderr:\n%s", stderr)
	}
	if !strings.Contains(stderr, "hit rates: schedule ") || !strings.Contains(stderr, "elapsed ") {
		t.Fatalf("progress line incomplete:\n%s", stderr)
	}
	if strings.Contains(stdout, "progress:") {
		t.Fatal("progress leaked into the result stream")
	}
	// curve shares the reporter.
	curveErr := captureStderr(t, func() error {
		capture(t, func() error {
			return cmdCurve(ctx0, testEng(), []string{
				"-kernels-only", "-lats", "6", "-models", "swapped", "-regs", "16,32", "-progress"})
		})
		return nil
	})
	if !strings.Contains(curveErr, "progress: 88/88 units done") {
		t.Fatalf("curve -progress summary missing:\n%s", curveErr)
	}
}

// TestCmdSweepBadShardSpecs checks -shard validation up front.
func TestCmdSweepBadShardSpecs(t *testing.T) {
	for _, bad := range []string{"0/3", "4/3", "x", "1-3", "1/x", "/3", "1/"} {
		err := cmdSweep(ctx0, testEng(), []string{"-kernels-only", "-shard", bad})
		if err == nil {
			t.Fatalf("-shard %q accepted", bad)
		}
	}
}

// TestCmdMergeErrors covers the CLI-level refusal paths.
func TestCmdMergeErrors(t *testing.T) {
	if err := cmdMerge(nil); err == nil {
		t.Fatal("merge with no files must error")
	}
	if err := cmdMerge([]string{filepath.Join(t.TempDir(), "missing.ndjson")}); err == nil {
		t.Fatal("merge of missing file must error")
	}
	p := filepath.Join(t.TempDir(), "rows.ndjson")
	if err := os.WriteFile(p, []byte(`{"loop":"a","machine":"m","model":"ideal","regs":0}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdMerge([]string{p}); err == nil || !strings.Contains(err.Error(), "header") {
		t.Fatalf("headerless stream accepted: %v", err)
	}
}

// TestCmdCacheInspectAndGC drives `ncdrf cache` over a real artifact
// directory: inspect reports the stages, GC removes a planted damaged
// file and a stale version directory, and the live entries keep serving
// (the warm rerun still produces the byte-identical stream).
func TestCmdCacheInspectAndGC(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-kernels-only", "-lats", "6", "-models", "unified", "-regs", "32", "-cache-dir", dir}
	first := capture(t, func() error { return cmdSweep(ctx0, testEng(), args) })

	// Plant damage: one corrupted artifact and one stale version dir.
	vdir := filepath.Join(dir, fmt.Sprintf("v%d", store.FormatVersion))
	scheds, err := os.ReadDir(filepath.Join(vdir, "sched"))
	if err != nil || len(scheds) == 0 {
		t.Fatalf("no sched artifacts: %v", err)
	}
	victim := filepath.Join(vdir, "sched", scheds[0].Name())
	if err := os.WriteFile(victim, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	staleDir := filepath.Join(dir, fmt.Sprintf("v%d", store.FormatVersion+9), "sched")
	if err := os.MkdirAll(staleDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(staleDir, "old"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	inspect := capture(t, func() error { return cmdCache([]string{"-dir", dir}) })
	for _, want := range []string{"sched", "eval", "stale version"} {
		if !strings.Contains(inspect, want) {
			t.Fatalf("inspect output missing %q:\n%s", want, inspect)
		}
	}
	gcOut := capture(t, func() error { return cmdCache([]string{"-dir", dir, "-gc"}) })
	if !strings.Contains(gcOut, "1 stale-version, 1 damaged") {
		t.Fatalf("gc did not remove the planted files:\n%s", gcOut)
	}
	if _, err := os.Stat(staleDir); !os.IsNotExist(err) {
		t.Fatalf("stale version dir survived gc: %v", err)
	}

	second := capture(t, func() error { return cmdSweep(ctx0, testEng(), args) })
	if second != first {
		t.Fatalf("warm rerun after gc differs:\nfirst:\n%s\nsecond:\n%s", first, second)
	}

	if err := cmdCache(nil); err == nil {
		t.Fatal("cache without -dir must error")
	}
	if err := cmdCache([]string{"-dir", filepath.Join(dir, "no-such")}); err == nil {
		t.Fatal("cache of missing dir must error")
	}
}

// TestCmdCacheGCModifiersRequireGC pins that -max-age/-dry-run without
// -gc are refused instead of silently inspecting.
func TestCmdCacheGCModifiersRequireGC(t *testing.T) {
	dir := t.TempDir()
	for _, args := range [][]string{
		{"-dir", dir, "-max-age", "24h"},
		{"-dir", dir, "-dry-run"},
	} {
		if err := cmdCache(args); err == nil || !strings.Contains(err.Error(), "require -gc") {
			t.Fatalf("cache %v accepted without -gc: %v", args, err)
		}
	}
}

// TestCmdSweepOutputAtomic pins the -o write discipline: an interrupted
// (cancelled) rerun must leave a previously complete output file
// untouched — the new stream only replaces it on success, and no temp
// litter survives the failure.
func TestCmdSweepOutputAtomic(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "s.ndjson")
	if err := os.WriteFile(p, []byte("precious complete shard\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(ctx0)
	cancel()
	err := cmdSweep(ctx, testEng(), []string{"-kernels-only", "-shard", "1/2", "-o", p})
	if err == nil {
		t.Fatal("cancelled sweep must error")
	}
	if got := readFileT(t, p); got != "precious complete shard\n" {
		t.Fatalf("interrupted run clobbered the output file: %q", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp litter left behind: %d entries", len(entries))
	}
	// A successful rerun replaces the file with the real stream.
	if out := capture(t, func() error {
		return cmdSweep(ctx0, testEng(), []string{"-kernels-only", "-shard", "1/2", "-o", p})
	}); out != "" {
		t.Fatalf("unexpected stdout: %q", out)
	}
	if !strings.HasPrefix(readFileT(t, p), `{"ncdrf_shard":`) {
		t.Fatal("successful rerun did not install the new stream")
	}
}
