package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"ncdrf/internal/sweep"
)

var ctx0 = context.Background()

func testEng() *sweep.Engine { return sweep.New(0) }

// capture runs fn with os.Stdout redirected to a pipe and returns what it
// printed.
func capture(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(r)
		done <- buf.String()
	}()
	errRun := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	if errRun != nil {
		t.Fatalf("command failed: %v\noutput:\n%s", errRun, out)
	}
	return out
}

func TestCmdExample(t *testing.T) {
	out := capture(t, func() error { return cmdExample(nil) })
	for _, want := range []string{"Table 2", "Table 3", "Table 4", "42", "29", "23", "II=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("example output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdTable1KernelsOnly(t *testing.T) {
	out := capture(t, func() error { return cmdTable1(ctx0, testEng(), []string{"-kernels-only"}) })
	if !strings.Contains(out, "P2L6") {
		t.Fatalf("table1 output missing P2L6:\n%s", out)
	}
	csv := capture(t, func() error { return cmdTable1(ctx0, testEng(), []string{"-kernels-only", "-csv"}) })
	if !strings.HasPrefix(csv, "config,") {
		t.Fatalf("csv output malformed:\n%s", csv)
	}
}

func TestCmdFigsSmall(t *testing.T) {
	out := capture(t, func() error { return cmdFigCDF(ctx0, testEng(), []string{"-loops", "15", "-seed", "3"}, false) })
	if !strings.Contains(out, "Figure 6 (latency 3)") || !strings.Contains(out, "Figure 6 (latency 6)") {
		t.Fatalf("fig6 incomplete:\n%s", out)
	}
	chart := capture(t, func() error {
		return cmdFigCDF(ctx0, testEng(), []string{"-loops", "15", "-seed", "3", "-chart"}, true)
	})
	if !strings.Contains(chart, "legend:") {
		t.Fatalf("chart missing legend:\n%s", chart)
	}
}

func TestCmdScheduleAndAlloc(t *testing.T) {
	out := capture(t, func() error { return cmdSchedule([]string{"-loop", "daxpy", "-lat", "6"}) })
	if !strings.Contains(out, "ResMII") || !strings.Contains(out, "row 0:") {
		t.Fatalf("schedule output wrong:\n%s", out)
	}
	out = capture(t, func() error { return cmdSchedule([]string{"-example-machine"}) })
	if !strings.Contains(out, "II=1") {
		t.Fatalf("example-machine schedule wrong:\n%s", out)
	}
	out = capture(t, func() error { return cmdAlloc([]string{"-loop", "lfk7-eos", "-lat", "6"}) })
	if !strings.Contains(out, "unified") || !strings.Contains(out, "swapped") {
		t.Fatalf("alloc output wrong:\n%s", out)
	}
}

func TestCmdKernelsGenDot(t *testing.T) {
	out := capture(t, func() error { return cmdKernels(nil) })
	if !strings.Contains(out, "daxpy") || !strings.Contains(out, "paper-example") {
		t.Fatalf("kernels listing wrong:\n%s", out)
	}
	out = capture(t, func() error { return cmdGen([]string{"-n", "3", "-seed", "9"}) })
	if strings.Count(out, "loop syn") != 3 {
		t.Fatalf("gen output wrong:\n%s", out)
	}
	out = capture(t, func() error { return cmdDot([]string{"-loop", "daxpy"}) })
	if !strings.Contains(out, "digraph") {
		t.Fatalf("dot output wrong:\n%s", out)
	}
}

func TestCmdRegfileStatsListing(t *testing.T) {
	out := capture(t, func() error { return cmdRegfile(nil) })
	if !strings.Contains(out, "non-consistent-dual") {
		t.Fatalf("regfile output wrong:\n%s", out)
	}
	out = capture(t, func() error { return cmdStats([]string{"-kernels-only"}) })
	if !strings.Contains(out, "read exactly once") {
		t.Fatalf("stats output wrong:\n%s", out)
	}
	out = capture(t, func() error { return cmdListing([]string{"-example-machine", "-model", "swapped"}) })
	if !strings.Contains(out, "rotating registers") {
		t.Fatalf("listing output wrong:\n%s", out)
	}
	out = capture(t, func() error { return cmdListing([]string{"-model", "unified", "-loop", "daxpy"}) })
	if !strings.Contains(out, "file 0:") {
		t.Fatalf("unified listing wrong:\n%s", out)
	}
}

func TestCmdObject(t *testing.T) {
	out := capture(t, func() error {
		return cmdObject([]string{"-example-machine", "-model", "swapped"})
	})
	for _, want := range []string{"brtop", "p[", "kernel of paper-example"} {
		if !strings.Contains(out, want) {
			t.Fatalf("object output missing %q:\n%s", want, out)
		}
	}
	if err := cmdObject([]string{"-model", "bogus"}); err == nil {
		t.Fatal("unknown model must error")
	}
}

func TestCmdVerifySingleLoop(t *testing.T) {
	out := capture(t, func() error {
		return cmdVerify([]string{"-loop", "daxpy", "-model", "swapped", "-iters", "6"})
	})
	if !strings.Contains(out, "bit-identical") {
		t.Fatalf("verify output wrong:\n%s", out)
	}
}

func TestCmdClustersSmall(t *testing.T) {
	out := capture(t, func() error { return cmdClusters(ctx0, testEng(), []string{"-kernels-only", "-lat", "3"}) })
	if !strings.Contains(out, "cluster scaling") {
		t.Fatalf("clusters output wrong:\n%s", out)
	}
}

func TestCmdSweepJSON(t *testing.T) {
	out := capture(t, func() error {
		return cmdSweep(ctx0, testEng(), []string{
			"-kernels-only", "-lats", "6", "-models", "unified,swapped", "-regs", "24,48", "-stats"})
	})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// 22 kernels x 1 machine x 2 models x 2 sizes, plus the stats object.
	nKernels := strings.Count(capture(t, func() error { return cmdKernels(nil) }), "\n") - 1
	want := nKernels*2*2 + 1
	if len(lines) != want {
		t.Fatalf("emitted %d JSON lines, want %d:\n%s", len(lines), want, out)
	}
	var r struct {
		Loop    string `json:"loop"`
		Machine string `json:"machine"`
		Model   string `json:"model"`
		Regs    int    `json:"regs"`
		II      int    `json:"ii"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &r); err != nil {
		t.Fatalf("first line is not JSON: %v\n%s", err, lines[0])
	}
	if r.Loop == "" || r.Machine != "eval-L6" || r.II < 1 {
		t.Fatalf("malformed result: %+v", r)
	}
	var st map[string]uint64
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &st); err != nil {
		t.Fatalf("stats line is not JSON: %v", err)
	}
	// Iteration-0 schedules are shared across the two models and sizes,
	// so both counters must be live.
	if st["cache_misses"] == 0 || st["cache_hits"] == 0 {
		t.Fatalf("degenerate cache stats: %v", st)
	}
}

func TestCmdSweepEmptyLists(t *testing.T) {
	for _, args := range [][]string{
		{"-lats", ""},
		{"-models", " "},
		{"-regs", ","},
	} {
		if err := cmdSweep(ctx0, testEng(), args); err == nil {
			t.Fatalf("empty list %v must error", args)
		}
	}
}

// TestCmdSweepLatsAreIntegers pins the -lats contract the help text
// documents: latencies are whole cycles, so fractional values are
// rejected up front instead of being silently mangled.
func TestCmdSweepLatsAreIntegers(t *testing.T) {
	for _, bad := range []string{"3.5", "3,6.0", "1e1"} {
		if err := cmdSweep(ctx0, testEng(), []string{"-lats", bad}); err == nil {
			t.Fatalf("fractional latency list %q must error", bad)
		}
	}
	out := capture(t, func() error {
		return cmdSweep(ctx0, testEng(), []string{
			"-kernels-only", "-lats", "3", "-models", "ideal", "-regs", "0"})
	})
	if !strings.Contains(out, `"machine":"eval-L3"`) {
		t.Fatalf("integer latency rejected:\n%s", out)
	}
}

// TestCmdSweepStatsEntries checks the -stats object surfaces the
// per-stage entry counts (Cache.Lens) and the per-stage tier counters.
func TestCmdSweepStatsEntries(t *testing.T) {
	out := capture(t, func() error {
		return cmdSweep(ctx0, testEng(), []string{
			"-kernels-only", "-lats", "6", "-models", "unified", "-regs", "32", "-stats"})
	})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var st map[string]uint64
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &st); err != nil {
		t.Fatalf("stats line is not JSON: %v", err)
	}
	for _, key := range []string{
		"entries_schedule", "entries_base", "entries_eval",
		"stage_eval_requests", "stage_eval_computed", "stage_base_memory_hits",
	} {
		if _, ok := st[key]; !ok {
			t.Fatalf("stats object missing %q: %v", key, st)
		}
	}
	if st["entries_schedule"] == 0 || st["entries_base"] == 0 || st["entries_eval"] == 0 {
		t.Fatalf("degenerate entry counts: %v", st)
	}
	if st["stage_schedule_disk_hits"] != 0 {
		t.Fatalf("disk hits without a store: %v", st)
	}
}

// TestCmdAllCacheDirIncremental is the CLI acceptance scenario: a second
// `ncdrf all -cache-dir` run over the same corpus reports 0 computed at
// the schedule and eval stages and emits byte-identical tables/figures
// (everything but the run-dependent stats trailer).
func TestCmdAllCacheDirIncremental(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-kernels-only", "-cache-dir", dir}
	first := capture(t, func() error { return cmdAll(ctx0, testEng(), args) })
	second := capture(t, func() error { return cmdAll(ctx0, testEng(), args) })

	stripTrailer := func(out string) (body string, trailer []string) {
		for _, line := range strings.SplitAfter(out, "\n") {
			if strings.HasPrefix(line, "stage ") {
				trailer = append(trailer, strings.TrimSuffix(line, "\n"))
			} else {
				body += line
			}
		}
		return body, trailer
	}
	body1, trailer1 := stripTrailer(first)
	body2, trailer2 := stripTrailer(second)
	if len(trailer1) != 3 || len(trailer2) != 3 {
		t.Fatalf("trailer shape wrong:\n%v\n%v", trailer1, trailer2)
	}
	if body1 != body2 {
		t.Fatalf("second run not byte-identical:\nfirst:\n%s\nsecond:\n%s", body1, body2)
	}
	for _, line := range trailer2 {
		if strings.HasPrefix(line, "stage schedule:") || strings.HasPrefix(line, "stage eval:") {
			if !strings.Contains(line, " 0 computed,") {
				t.Fatalf("warm run recomputed: %q", line)
			}
			if strings.Contains(line, " 0 from disk") {
				t.Fatalf("warm run not served from disk: %q", line)
			}
		}
	}
	// The cold run must already advertise the disk tier in its trailer.
	for _, line := range trailer1 {
		if !strings.Contains(line, "from disk") {
			t.Fatalf("cold run trailer missing disk tier: %q", line)
		}
	}
}

func TestCmdSweepBadFlags(t *testing.T) {
	if err := cmdSweep(ctx0, testEng(), []string{"-models", "bogus"}); err == nil {
		t.Fatal("unknown model must error")
	}
	if err := cmdSweep(ctx0, testEng(), []string{"-lats", "x"}); err == nil {
		t.Fatal("bad latency list must error")
	}
}

func TestFindLoopErrors(t *testing.T) {
	if _, err := findLoop("definitely-missing"); err == nil {
		t.Fatal("unknown loop must error")
	}
	g, err := findLoop("")
	if err != nil || g.LoopName != "paper-example" {
		t.Fatalf("default loop wrong: %v %v", g, err)
	}
}

func TestCmdVerifyUnknownModel(t *testing.T) {
	if err := cmdVerify([]string{"-model", "bogus"}); err == nil {
		t.Fatal("unknown model must error")
	}
}
