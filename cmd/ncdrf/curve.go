package main

import (
	"bufio"
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"ncdrf/internal/experiment"
	"ncdrf/internal/pipeline"
	"ncdrf/internal/sweep"
)

// maxRegsAxisPoints bounds a dense -regs range: beyond this the axis is
// almost certainly a typo (0:1000000) and would plan a grid nobody
// wants to wait for.
const maxRegsAxisPoints = 1 << 16

// parseRegsAxis accepts the curve's register axis in either form: the
// sweep-style comma list (8,16,32) or a dense range lo:hi[:step]
// (8:128:8 = 8,16,...,128; hi is included whenever the step lands on
// it; step defaults to 1). A comma list must be strictly ascending: a
// duplicated size would double-count every loop in its curve cell, and
// a descending list almost certainly means a typo'd range — both are
// rejected instead of producing a silently wrong curve.
func parseRegsAxis(s string) ([]int, error) {
	if !strings.Contains(s, ":") {
		list, err := parseIntList(s)
		if err != nil {
			return nil, err
		}
		for i, r := range list {
			if r < 0 {
				return nil, fmt.Errorf("sizes must be >= 0 (0 = unlimited), got %d", r)
			}
			if i > 0 && r == list[i-1] {
				return nil, fmt.Errorf("duplicate size %d: each register size may appear once (a repeated size would double-count its loops)", r)
			}
			if i > 0 && r < list[i-1] {
				return nil, fmt.Errorf("sizes must be ascending, got %d after %d", r, list[i-1])
			}
		}
		return list, nil
	}
	parts := strings.Split(s, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return nil, fmt.Errorf("want lo:hi[:step] or a comma list, got %q", s)
	}
	lo, err := strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil {
		return nil, fmt.Errorf("bad range start %q", parts[0])
	}
	hi, err := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err != nil {
		return nil, fmt.Errorf("bad range end %q", parts[1])
	}
	step := 1
	if len(parts) == 3 {
		if step, err = strconv.Atoi(strings.TrimSpace(parts[2])); err != nil {
			return nil, fmt.Errorf("bad range step %q", parts[2])
		}
	}
	switch {
	case lo < 0:
		return nil, fmt.Errorf("range start must be >= 0, got %d", lo)
	case hi < lo:
		return nil, fmt.Errorf("range end %d below start %d", hi, lo)
	case step < 1:
		return nil, fmt.Errorf("range step must be >= 1, got %d", step)
	case (hi-lo)/step >= maxRegsAxisPoints: // count-1; avoids the +1 overflow at MaxInt
		return nil, fmt.Errorf("range %s has more than %d points", s, maxRegsAxisPoints)
	}
	// Iterate by count, not by value: `for r := lo; r <= hi; r += step`
	// wraps past MaxInt when hi sits near it and loops forever.
	n := (hi-lo)/step + 1
	out := make([]int, n)
	for i := range out {
		out[i] = lo + i*step
	}
	return out, nil
}

// readRowStream parses a plain NDJSON result-row stream (an unsharded
// `sweep`/`curve -ndjson` capture or `ncdrf merge` output). Shard files
// are refused with a pointer at merge: a single shard is a partial
// grid, and aggregating it silently would produce a wrong curve.
func readRowStream(r io.Reader) ([]pipeline.Row, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var rows []pipeline.Row
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		if bytes.Contains(line, []byte(`"ncdrf_shard"`)) {
			return nil, fmt.Errorf("shard file, not a row stream: run 'ncdrf merge' over the complete shard set first")
		}
		row, err := pipeline.DecodeRow(line)
		if err != nil {
			return nil, fmt.Errorf("row %d: %w", len(rows)+1, err)
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("empty row stream")
	}
	return rows, nil
}

// cmdCurve runs the register-sensitivity curve study: the corpus ×
// machines × models grid over a dense register axis, executed
// base-major (the scheduler runs once per (loop, machine) group no
// matter how dense the axis is), aggregated into per-model curves of
// fit %, spill ops and performance relative to ideal — the generalized
// form of the paper's Figures 8/9.
//
// Output modes:
//   - default: curve tables (one per machine and metric); -csv and
//     -chart switch the rendering.
//   - -ndjson: the raw result-row stream, byte-identical to `ncdrf
//     sweep` over the same grid.
//   - -shard i/n -o file: one shard of the row stream with a header,
//     for `ncdrf merge`; render the merged stream later with -from.
//   - -from file: skip the computation and render curves from a
//     previously captured (merged) row stream.
func cmdCurve(ctx context.Context, eng *sweep.Engine, args []string) error {
	fs := flag.NewFlagSet("curve", flag.ExitOnError)
	o := corpusFlags(fs)
	gf := addGridFlags(fs, "ideal,unified,partitioned,swapped")
	regs := fs.String("regs", "8:128:8", "register axis: lo:hi[:step] (dense range) or a comma list; 0 = unlimited")
	csv := fs.Bool("csv", false, "emit one flat CSV over every (machine, model, regs) cell")
	chart := fs.Bool("chart", false, "render ASCII charts instead of tables")
	ndjson := fs.Bool("ndjson", false, "emit the raw result-row stream instead of curves")
	frontier := fs.Bool("frontier", false, "prune the register axis by dominance: binary-search each series' fit boundary and imply the cells above it (needs a strictly ascending finite axis)")
	shardSpec := fs.String("shard", "", "run only shard I of N of the grid, as I/N; emits a headered row stream for 'ncdrf merge'")
	outPath := fs.String("o", "", "write the output to this file instead of stdout")
	from := fs.String("from", "", "render curves from this NDJSON row stream (e.g. 'ncdrf merge' output) instead of sweeping")
	stats := fs.Bool("stats", false, "append the per-stage cache counters (tables: trailer; -ndjson/-shard: JSON object on stdout)")
	strict := fs.Bool("strict", false, "exit non-zero when any grid cell failed to compile (default: render the failed column and warn on stderr)")
	progressFlag := fs.Bool("progress", false, "report done/total units, per-stage hit rates and elapsed time on stderr")
	pf := addProfileFlags(fs)
	cacheDir := cacheDirFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	render := func(curve *experiment.Curve, w io.Writer) error {
		switch {
		case *csv:
			return curve.RenderCSV(w)
		case *chart:
			return curve.RenderChart(w)
		default:
			return curve.Render(w)
		}
	}
	withOut := func(fn func(w io.Writer) error) error {
		if *outPath != "" {
			return writeFileAtomic(*outPath, fn)
		}
		return fn(os.Stdout)
	}

	if *from != "" {
		// -from only renders: every flag that shapes or observes the
		// computation is rejected instead of being silently ignored. The
		// conflicts are an ordered slice, not a map, so the error always
		// names the same flag for the same command line.
		conflicts := []struct {
			name string
			set  bool
		}{
			{"-shard", *shardSpec != ""},
			{"-frontier", *frontier},
			{"-ndjson", *ndjson},
			{"-stats", *stats},
			{"-progress", *progressFlag},
			{"-cache-dir", *cacheDir != ""},
		}
		for _, c := range conflicts {
			if c.set {
				return fmt.Errorf("-from renders an existing stream; it cannot be combined with %s", c.name)
			}
		}
		f, err := os.Open(*from)
		if err != nil {
			return err
		}
		rows, err := readRowStream(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", *from, err)
		}
		curve := experiment.BuildCurve(rows)
		if err := withOut(func(w io.Writer) error { return render(curve, w) }); err != nil {
			return err
		}
		return curveErr(curve, *strict)
	}

	if err := attachCacheDir(eng, *cacheDir); err != nil {
		return err
	}
	regList, err := parseRegsAxis(*regs)
	if err != nil {
		return fmt.Errorf("-regs: %w", err)
	}
	if len(regList) == 0 {
		return fmt.Errorf("-regs: no sizes given (use 0 for an unlimited file)")
	}
	grid, err := gf.buildGrid(o, regList)
	if err != nil {
		return err
	}
	if *frontier && *shardSpec != "" {
		// A shard slices the plan mid-series; the frontier search needs
		// every cell of a (loop, machine, model) series to pick its probes,
		// so a partial series cannot be searched.
		return fmt.Errorf("-frontier searches whole register-axis series and cannot run on a shard of the plan; drop -shard (sharded runs are dense-only)")
	}
	units, header, err := planShard(grid, *shardSpec)
	if err != nil {
		return err
	}

	stopProf, err := pf.start()
	if err != nil {
		return err
	}
	prog := startProgress(*progressFlag, os.Stderr, eng, len(units))
	defer prog.close()

	err = func() error {
		if *frontier {
			return runFrontier(ctx, eng, grid, frontierOut{
				render: render, withOut: withOut,
				ndjson: *ndjson, stats: *stats, strict: *strict,
			}, prog)
		}

		// Streaming modes share the sweep command's writer: a sharded curve
		// file is a sweep shard file, which is exactly what lets `ncdrf
		// merge` splice curve shards back into the unsharded -ndjson stream.
		if header != nil || *ndjson {
			return withOut(func(w io.Writer) error {
				return runSweep(ctx, eng, grid, units, header, w, *stats, os.Stdout, prog)
			})
		}

		var rows []pipeline.Row
		if err := eng.SweepUnitsObserved(ctx, grid, units, func(r sweep.Result) {
			rows = append(rows, r)
			prog.incEmitted()
		}, prog.incDone); err != nil {
			return err
		}
		curve := experiment.BuildCurve(rows)
		if err := withOut(func(w io.Writer) error { return render(curve, w) }); err != nil {
			return err
		}
		if *stats {
			// Same renderer as the `ncdrf all` trailer, so the CI contract
			// (one base schedule per (loop, machine) group) greps one format.
			fmt.Printf("\n%s\n", eng.StageStats())
		}
		return curveErr(curve, *strict)
	}()
	if perr := stopProf(); err == nil {
		err = perr
	}
	return err
}

// frontierOut bundles the output shape of one frontier run: the
// renderer and sink cmdCurve assembled from its flags.
type frontierOut struct {
	render  func(*experiment.Curve, io.Writer) error
	withOut func(func(io.Writer) error) error
	ndjson  bool
	stats   bool
	strict  bool
}

// runFrontier executes the grid with the dominance-pruned frontier
// executor and renders exactly what the dense path would have — the
// emitted stream is byte-identical by the executor's contract. Each
// series whose observed results contradict the dominance assumptions is
// reported on stderr as it falls back to dense evaluation; -strict
// turns any such fallback into the exit status (the rows are still
// correct — they were recomputed densely — but a violation means the
// monotonicity the pruning relies on did not hold, which scripted runs
// may want to treat as a red flag rather than a warning).
func runFrontier(ctx context.Context, eng *sweep.Engine, grid sweep.Grid, out frontierOut, prog *progress) error {
	violations := 0
	opts := sweep.FrontierOptions{
		Done: prog.incDone,
		// Serialized by the engine, so the counter needs no lock.
		OnViolation: func(v sweep.FrontierViolation) {
			violations++
			fmt.Fprintf(os.Stderr, "curve: frontier fell back to dense for %s/%s (%s): %s\n",
				v.Loop, v.Model, v.Machine, v.Detail)
		},
	}
	violationsErr := func() error {
		if out.strict && violations > 0 {
			return fmt.Errorf("%d series violated the dominance assumptions and fell back to dense evaluation (rows are correct; -strict makes the violation fatal)", violations)
		}
		return nil
	}

	if out.ndjson {
		err := out.withOut(func(w io.Writer) error {
			// Like runSweep: a dead output cancels the sweep instead of
			// burning CPU on results nobody will see.
			ctx, cancel := context.WithCancel(ctx)
			defer cancel()
			var encErr error // only written under the serialized emit
			err := eng.SweepFrontier(ctx, grid, func(r sweep.Result) {
				if encErr != nil {
					return
				}
				if e := pipeline.EncodeRow(w, r); e != nil {
					encErr = e
					cancel()
					return
				}
				prog.incEmitted()
			}, opts)
			if encErr != nil {
				return fmt.Errorf("writing results: %w", encErr)
			}
			return err
		})
		if err != nil {
			return err
		}
		if out.stats {
			if err := writeStatsJSON(eng, os.Stdout); err != nil {
				return err
			}
		}
		return violationsErr()
	}

	var rows []pipeline.Row
	if err := eng.SweepFrontier(ctx, grid, func(r sweep.Result) {
		rows = append(rows, r)
		prog.incEmitted()
	}, opts); err != nil {
		return err
	}
	curve := experiment.BuildCurve(rows)
	if err := out.withOut(func(w io.Writer) error { return out.render(curve, w) }); err != nil {
		return err
	}
	if out.stats {
		fmt.Printf("\n%s\n", eng.StageStats())
	}
	if err := curveErr(curve, out.strict); err != nil {
		return err
	}
	return violationsErr()
}

// curveErr reports a curve's absorbed compile failures. A cell that
// fails at a tight register budget is an expected outcome in exactly
// the region the curve probes, and it is fully represented in the
// output (the failed column; baseline metrics restricted to surviving
// loops) — so by default the command warns on stderr and succeeds.
// -strict turns the condition into the exit status for scripted
// `curve && publish` pipelines that must not treat a degraded curve as
// a clean run (Fig8and9 always fails on it: the figure tables have no
// failure column).
func curveErr(c *experiment.Curve, strict bool) error {
	err := c.Err()
	if err == nil {
		return nil
	}
	if strict {
		return fmt.Errorf("some cells failed to compile (see the failed column):\n%w", err)
	}
	fmt.Fprintf(os.Stderr, "curve: some cells failed to compile (see the failed column; -strict makes this fatal):\n%v\n", err)
	return nil
}
