package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"ncdrf/internal/core"
	"ncdrf/internal/ddg"
	"ncdrf/internal/experiment"
	"ncdrf/internal/lifetime"
	"ncdrf/internal/loopgen"
	"ncdrf/internal/loops"
	"ncdrf/internal/machine"
	"ncdrf/internal/pipeline"
	"ncdrf/internal/regfile"
	"ncdrf/internal/report"
	"ncdrf/internal/sched"
	"ncdrf/internal/store"
	"ncdrf/internal/sweep"
)

func buildCorpus(o corpusOpts) []*ddg.Graph {
	if *o.kernelsOnly {
		return loops.Kernels()
	}
	p := loopgen.Defaults()
	p.Loops = *o.loops
	p.Seed = *o.seed
	return experiment.Corpus(p)
}

func cmdExample(args []string) error {
	fs := flag.NewFlagSet("example", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	g := loops.PaperExample()
	m := machine.Example()
	b, err := pipeline.NewBase(g, m, sched.Options{})
	if err != nil {
		return err
	}
	s, lts := b.Sched, b.Lifetimes
	fmt.Printf("machine: %s\n", m)
	fmt.Printf("loop: %s, II=%d, stages=%d\n\n", g.LoopName, s.II, s.Stages())
	fmt.Println("kernel (Figure 4):")
	fmt.Println(s.Kernel())

	tb := &report.Table{
		Title:   "Table 2: lifetimes of loop variants",
		Headers: []string{"value", "start", "end", "lifetime"},
	}
	for _, l := range lts {
		tb.Add(s.Graph.Node(l.Node).Name,
			fmt.Sprintf("%d", l.Start), fmt.Sprintf("%d", l.End), fmt.Sprintf("%d", l.Len()))
	}
	tb.Add("sum", "", "", fmt.Sprintf("%d", lifetime.SumLen(lts)))
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}

	printClasses := func(title string, sc *sched.Schedule) error {
		cl := core.Classify(sc, lts)
		tb := &report.Table{Title: title, Headers: []string{"value", "class", "registers"}}
		for _, l := range lts {
			tb.Add(sc.Graph.Node(l.Node).Name, cl.ByValue[l.Node].String(), fmt.Sprintf("%d", l.Len()))
		}
		gl, local := cl.SumByClass()
		tb.Add("GL total", "", fmt.Sprintf("%d", gl))
		for ci, v := range local {
			tb.Add(fmt.Sprintf("C%d total", ci), "", fmt.Sprintf("%d", v))
		}
		fmt.Println()
		return tb.Render(os.Stdout)
	}
	if err := printClasses("Table 3: allocation before swapping", s); err != nil {
		return err
	}
	swapped, n := core.Swap(s, core.SwapOptions{})
	if err := printClasses(fmt.Sprintf("Table 4: allocation after swapping (%d swaps)", n), swapped); err != nil {
		return err
	}

	fmt.Println()
	tb = &report.Table{Title: "register requirements", Headers: []string{"model", "registers"}}
	for _, model := range core.Models {
		req, _, err := b.Requirement(model)
		if err != nil {
			return err
		}
		label := fmt.Sprintf("%d", req)
		if model == core.Ideal {
			label = "unbounded"
		}
		tb.Add(model.String(), label)
	}
	return tb.Render(os.Stdout)
}

func cmdTable1(ctx context.Context, eng *sweep.Engine, args []string) error {
	fs := flag.NewFlagSet("table1", flag.ExitOnError)
	o := corpusFlags(fs)
	csv := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := experiment.Table1(ctx, eng, buildCorpus(o))
	if err != nil {
		return err
	}
	if *csv {
		return res.RenderCSV(os.Stdout)
	}
	return res.Render(os.Stdout)
}

func cmdFigCDF(ctx context.Context, eng *sweep.Engine, args []string, dynamic bool) error {
	fs := flag.NewFlagSet("figcdf", flag.ExitOnError)
	o := corpusFlags(fs)
	chart := fs.Bool("chart", false, "render as an ASCII line chart instead of a table")
	csv := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	corpus := buildCorpus(o)
	for _, lat := range []int{3, 6} {
		var res *experiment.CDFResult
		var err error
		if dynamic {
			res, err = experiment.Fig7(ctx, eng, corpus, lat)
		} else {
			res, err = experiment.Fig6(ctx, eng, corpus, lat)
		}
		if err != nil {
			return err
		}
		switch {
		case *chart:
			err = res.RenderChart(os.Stdout)
		case *csv:
			err = res.RenderCSV(os.Stdout)
		default:
			err = res.Render(os.Stdout)
		}
		if err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func cmdFigPerf(ctx context.Context, eng *sweep.Engine, args []string, wantPerf, wantDensity bool) error {
	fs := flag.NewFlagSet("figperf", flag.ExitOnError)
	o := corpusFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := experiment.Fig8and9(ctx, eng, buildCorpus(o), nil)
	if err != nil {
		return err
	}
	if wantPerf {
		if err := res.RenderFig8(os.Stdout); err != nil {
			return err
		}
	}
	if wantDensity {
		if err := res.RenderFig9(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

func cmdAll(ctx context.Context, eng *sweep.Engine, args []string) error {
	fs := flag.NewFlagSet("all", flag.ExitOnError)
	o := corpusFlags(fs)
	pf := addProfileFlags(fs)
	cacheDir := cacheDirFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := attachCacheDir(eng, *cacheDir); err != nil {
		return err
	}
	stopProf, err := pf.start()
	if err != nil {
		return err
	}
	err = runAll(ctx, eng, o)
	if perr := stopProf(); err == nil {
		err = perr
	}
	return err
}

// runAll is cmdAll's body, split out so the profile stop function
// brackets exactly the measured work.
func runAll(ctx context.Context, eng *sweep.Engine, o corpusOpts) error {
	corpus := buildCorpus(o)
	fmt.Printf("corpus: %d loops\n\n", len(corpus))

	if err := experiment.Stats(corpus).Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	t1, err := experiment.Table1(ctx, eng, corpus)
	if err != nil {
		return err
	}
	if err := t1.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	for _, dynamic := range []bool{false, true} {
		for _, lat := range []int{3, 6} {
			var res *experiment.CDFResult
			if dynamic {
				res, err = experiment.Fig7(ctx, eng, corpus, lat)
			} else {
				res, err = experiment.Fig6(ctx, eng, corpus, lat)
			}
			if err != nil {
				return err
			}
			if err := res.Render(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
	}
	p, err := experiment.Fig8and9(ctx, eng, corpus, nil)
	if err != nil {
		return err
	}
	if err := p.RenderFig8(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	if err := p.RenderFig9(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	cs, err := experiment.ClusterScaling(ctx, eng, corpus, 6, nil)
	if err != nil {
		return err
	}
	if err := cs.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	if err := cmdRegfile(nil); err != nil {
		return err
	}
	fmt.Println()
	n, err := experiment.VerifySample(ctx, eng, corpus, machine.Eval(6), 0, 10, 25)
	if err != nil {
		return err
	}
	fmt.Printf("functional verification: %d loop/model combinations executed on the simulated\n", n)
	fmt.Printf("rotating register files, all bit-identical to the sequential reference\n")
	// The trailer is rendered by StageStats.String — the one formatter
	// for the cache counters — so `all`, `sweep -stats` and the stage
	// tests cannot drift apart.
	fmt.Printf("\n%s\n", eng.StageStats())
	return nil
}

// cacheDirFlag attaches the shared -cache-dir option to a FlagSet.
func cacheDirFlag(fs *flag.FlagSet) *string {
	return fs.String("cache-dir", "", "persist stage artifacts under this directory; a rerun with the same corpus recomputes nothing")
}

// attachCacheDir opens the persistent artifact store rooted at dir (when
// non-empty) and attaches it below the engine's in-memory caches.
func attachCacheDir(eng *sweep.Engine, dir string) error {
	if dir == "" {
		return nil
	}
	st, err := store.Open(dir)
	if err != nil {
		return err
	}
	eng.SetStore(st)
	return nil
}

func findLoop(name string) (*ddg.Graph, error) {
	if name == "paper-example" || name == "" {
		return loops.PaperExample(), nil
	}
	if g, ok := loops.KernelByName(name); ok {
		return g, nil
	}
	return nil, fmt.Errorf("unknown loop %q (see 'ncdrf kernels')", name)
}

func cmdSchedule(args []string) error {
	fs := flag.NewFlagSet("schedule", flag.ExitOnError)
	name := fs.String("loop", "paper-example", "kernel name")
	lat := fs.Int("lat", 3, "floating-point latency (3 or 6)")
	example := fs.Bool("example-machine", false, "use the section 4 example machine")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := findLoop(*name)
	if err != nil {
		return err
	}
	m := machine.Eval(*lat)
	if *example {
		m = machine.Example()
	}
	b, err := pipeline.NewBase(g, m, sched.Options{})
	if err != nil {
		return err
	}
	mii, res, rec, err := sched.MII(g, m)
	if err != nil {
		return err
	}
	fmt.Printf("loop %s on %s\n", g.LoopName, m)
	fmt.Printf("ResMII=%d RecMII=%d MII=%d achieved II=%d stages=%d\n\n", res, rec, mii, b.Sched.II, b.Sched.Stages())
	fmt.Println(b.Sched.Kernel())
	return nil
}

func cmdAlloc(args []string) error {
	fs := flag.NewFlagSet("alloc", flag.ExitOnError)
	name := fs.String("loop", "paper-example", "kernel name")
	lat := fs.Int("lat", 3, "floating-point latency (3 or 6)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := findLoop(*name)
	if err != nil {
		return err
	}
	m := machine.Eval(*lat)
	b, err := pipeline.NewBase(g, m, sched.Options{})
	if err != nil {
		return err
	}
	s, lts := b.Sched, b.Lifetimes
	fmt.Printf("loop %s on %s: II=%d, %d values, MaxLive=%d\n",
		g.LoopName, m.Name(), s.II, len(lts), lifetime.MaxLive(lts, s.II))
	tb := &report.Table{Headers: []string{"model", "registers"}}
	for _, model := range core.Models[1:] {
		req, _, err := b.Requirement(model)
		if err != nil {
			return err
		}
		tb.Add(model.String(), fmt.Sprintf("%d", req))
	}
	return tb.Render(os.Stdout)
}

func cmdKernels(args []string) error {
	names := loops.KernelNames()
	sort.Strings(names)
	for _, n := range names {
		g, _ := loops.KernelByName(n)
		fmt.Printf("%-24s %2d ops, %d trips\n", n, g.NumNodes(), g.TripsOrOne())
	}
	fmt.Printf("%-24s %2d ops, %d trips\n", "paper-example", loops.PaperExample().NumNodes(),
		loops.PaperExample().TripsOrOne())
	return nil
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	n := fs.Int("n", 795, "number of loops")
	seed := fs.Int64("seed", 1995, "generator seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p := loopgen.Defaults()
	p.Loops = *n
	p.Seed = *seed
	for _, g := range loopgen.Generate(p) {
		if err := g.Encode(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func cmdDot(args []string) error {
	fs := flag.NewFlagSet("dot", flag.ExitOnError)
	name := fs.String("loop", "paper-example", "kernel name")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := findLoop(*name)
	if err != nil {
		return err
	}
	return g.DOT(os.Stdout)
}

func cmdRegfile(args []string) error {
	fs := flag.NewFlagSet("regfile", flag.ExitOnError)
	regs := fs.Int("regs", 64, "registers per (sub)file")
	bits := fs.Int("bits", 64, "bits per register")
	units := fs.Int("units", 6, "functional units")
	if err := fs.Parse(args); err != nil {
		return err
	}
	orgs := []regfile.Organization{
		regfile.Unified(*regs, *bits, *units),
		regfile.ConsistentDual(*regs, *bits, *units),
		regfile.NonConsistentDual(*regs, *bits, *units),
		regfile.Unified(2**regs, *bits, *units),
	}
	orgs[3].Name = "unified-doubled"
	tb := &report.Table{
		Title:   "Register-file implementation models (section 3.2, normalized units)",
		Headers: []string{"organization", "capacity", "area", "access time"},
	}
	for _, o := range orgs {
		tb.Add(o.Name, fmt.Sprintf("%d", o.Capacity),
			fmt.Sprintf("%.0f", o.TotalArea()), report.F2(o.AccessTime()))
	}
	return tb.Render(os.Stdout)
}
