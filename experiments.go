package ncdrf

import (
	"context"
	"io"

	"ncdrf/internal/ddg"
	"ncdrf/internal/experiment"
	"ncdrf/internal/loopgen"
	"ncdrf/internal/loops"
	"ncdrf/internal/sweep"
)

// CorpusOptions selects the evaluation workload for the experiment
// runners: the curated kernels plus a synthetic Perfect-Club-shaped
// corpus (see internal/loopgen for the calibration rationale).
type CorpusOptions struct {
	// Loops is the synthetic corpus size; 0 means the paper's 795.
	Loops int
	// Seed makes the synthetic corpus reproducible; 0 means the default.
	Seed int64
	// KernelsOnly drops the synthetic corpus entirely.
	KernelsOnly bool
}

func (o CorpusOptions) build() []*ddg.Graph {
	if o.KernelsOnly {
		return loops.Kernels()
	}
	p := loopgen.Defaults()
	if o.Loops > 0 {
		p.Loops = o.Loops
	}
	if o.Seed != 0 {
		p.Seed = o.Seed
	}
	return experiment.Corpus(p)
}

// RenderTable1 regenerates Table 1 of the paper (percentage of loops and
// of cycles allocatable without spilling in 16/32/64 registers, for the
// four PxLy configurations) and writes it to w.
func RenderTable1(opts CorpusOptions, w io.Writer) error {
	//lint:allow ctxflow -- ctx-free public facade: the render call is the root of its call tree
	res, err := experiment.Table1(context.Background(), sweep.New(0), opts.build())
	if err != nil {
		return err
	}
	return res.Render(w)
}

// RenderFig6 regenerates Figure 6 (static cumulative distribution of
// loops over register requirements) for both latencies.
func RenderFig6(opts CorpusOptions, w io.Writer) error {
	return renderCDF(opts, w, false)
}

// RenderFig7 regenerates Figure 7 (execution-time-weighted cumulative
// distribution) for both latencies.
func RenderFig7(opts CorpusOptions, w io.Writer) error {
	return renderCDF(opts, w, true)
}

func renderCDF(opts CorpusOptions, w io.Writer, dynamic bool) error {
	corpus := opts.build()
	//lint:allow ctxflow -- ctx-free public facade: the render call is the root of its call tree
	ctx, eng := context.Background(), sweep.New(0)
	for _, lat := range []int{3, 6} {
		var res *experiment.CDFResult
		var err error
		if dynamic {
			res, err = experiment.Fig7(ctx, eng, corpus, lat)
		} else {
			res, err = experiment.Fig6(ctx, eng, corpus, lat)
		}
		if err != nil {
			return err
		}
		if err := res.Render(w); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// RenderFig8And9 regenerates Figures 8 (relative performance with 32 and
// 64 registers) and 9 (density of memory traffic) in one pass, since
// they share all the computation.
func RenderFig8And9(opts CorpusOptions, w io.Writer) error {
	//lint:allow ctxflow -- ctx-free public facade: the render call is the root of its call tree
	res, err := experiment.Fig8and9(context.Background(), sweep.New(0), opts.build(), nil)
	if err != nil {
		return err
	}
	if err := res.RenderFig8(w); err != nil {
		return err
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	return res.RenderFig9(w)
}
