package ncdrf

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

func TestPaperExampleThroughFacade(t *testing.T) {
	l := PaperExample()
	if l.Name() != "paper-example" || l.Ops() != 7 {
		t.Fatalf("loop = %s/%d ops", l.Name(), l.Ops())
	}
	reqs, ii, err := Requirements(l, ExampleMachine())
	if err != nil {
		t.Fatal(err)
	}
	if ii != 1 {
		t.Fatalf("II = %d", ii)
	}
	want := map[Model]int{Ideal: 0, Unified: 42, Partitioned: 29, Swapped: 23}
	for model, w := range want {
		if reqs[model] != w {
			t.Errorf("%v = %d, want %d", model, reqs[model], w)
		}
	}
}

func TestParseLoopAndCompile(t *testing.T) {
	l, err := ParseLoop(`
loop demo trips 500
invariant a
x1 = load x
m1 = fmul a, x1
y1 = load y
s1 = fadd m1, y1
store y, s1
`)
	if err != nil {
		t.Fatal(err)
	}
	if l.Trips() != 500 {
		t.Fatalf("trips = %d", l.Trips())
	}
	res, err := Compile(l, EvalMachine(3), Unified, 64)
	if err != nil {
		t.Fatal(err)
	}
	if res.II < 2 {
		t.Fatalf("II = %d (3 mem ops on 2 ports need >= 2)", res.II)
	}
	if res.SpilledValues != 0 {
		t.Fatal("no spill expected at 64 registers")
	}
	if res.Cycles != int64(res.II)*500 {
		t.Fatalf("cycles = %d", res.Cycles)
	}
	if !strings.Contains(res.Kernel(), "row 0:") {
		t.Fatalf("kernel rendering missing:\n%s", res.Kernel())
	}
}

func TestParseLoopRejectsGarbage(t *testing.T) {
	if _, err := ParseLoop("not a loop"); err == nil {
		t.Fatal("want parse error")
	}
}

func TestCompileSpillsWhenTight(t *testing.T) {
	l := PaperExample()
	res, err := Compile(l, ExampleMachine(), Unified, 32)
	if err != nil {
		t.Fatal(err)
	}
	if res.SpilledValues == 0 {
		t.Fatal("expected spilling at 32 unified registers")
	}
	if res.Registers > 32 {
		t.Fatalf("final requirement %d > 32", res.Registers)
	}
	dual, err := Compile(l, ExampleMachine(), Swapped, 32)
	if err != nil {
		t.Fatal(err)
	}
	if dual.SpilledValues != 0 {
		t.Fatal("swapped must fit in 32 without spilling")
	}
	if dual.Registers != 23 {
		t.Fatalf("swapped requirement = %d, want 23", dual.Registers)
	}
}

// TestCompileAllMatchesCompilePerKernel is the pipeline-equivalence
// gate: for every curated kernel at both paper latencies, CompileAll
// (one shared base stage) must produce results identical to four
// independent Compile calls (each re-running the whole pipeline).
func TestCompileAllMatchesCompilePerKernel(t *testing.T) {
	const regs = 32
	for _, lat := range []int{3, 6} {
		m := EvalMachine(lat)
		for _, name := range KernelNames() {
			l, err := KernelLoop(name)
			if err != nil {
				t.Fatal(err)
			}
			all, err := CompileAll(context.Background(), l, m, regs)
			if err != nil {
				t.Fatalf("%s lat=%d: CompileAll: %v", name, lat, err)
			}
			for _, model := range Models {
				one, err := Compile(l, m, model, regs)
				if err != nil {
					t.Fatalf("%s lat=%d %v: Compile: %v", name, lat, model, err)
				}
				got := all[model]
				if got.Model != one.Model || got.II != one.II ||
					got.Registers != one.Registers ||
					got.SpilledValues != one.SpilledValues ||
					got.MemOps != one.MemOps || got.Cycles != one.Cycles {
					t.Fatalf("%s lat=%d %v: CompileAll %+v != Compile %+v",
						name, lat, model, got, one)
				}
				if got.Kernel() != one.Kernel() {
					t.Fatalf("%s lat=%d %v: kernels differ", name, lat, model)
				}
			}
		}
	}
}

// TestCompileAllCancellation checks the context threads through every
// stage: a cancelled context aborts before any compilation work.
func TestCompileAllCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CompileAll(ctx, PaperExample(), ExampleMachine(), 16); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestInvalidModelReturnsError locks in the fix for the old facade
// panic: an out-of-range Model must surface as a descriptive error from
// every entry point that accepts one.
func TestInvalidModelReturnsError(t *testing.T) {
	l := PaperExample()
	m := ExampleMachine()
	for _, bad := range []Model{Model(-1), Model(NumModels), Model(99)} {
		if _, err := Compile(l, m, bad, 0); err == nil || !strings.Contains(err.Error(), "invalid model") {
			t.Fatalf("Compile(%d) err = %v, want invalid-model error", int(bad), err)
		}
		if err := Verify(l, m, bad, 0, 4); err == nil || !strings.Contains(err.Error(), "invalid model") {
			t.Fatalf("Verify(%d) err = %v, want invalid-model error", int(bad), err)
		}
		if got := bad.String(); !strings.Contains(got, "Model(") {
			t.Fatalf("String(%d) = %q", int(bad), got)
		}
	}
}

func TestKernelLoopLookup(t *testing.T) {
	names := KernelNames()
	if len(names) < 40 {
		t.Fatalf("only %d kernels", len(names))
	}
	l, err := KernelLoop("daxpy")
	if err != nil || l.Name() != "daxpy" {
		t.Fatalf("KernelLoop: %v", err)
	}
	if _, err := KernelLoop("missing"); err == nil {
		t.Fatal("want error for unknown kernel")
	}
}

func TestNewMachineValidation(t *testing.T) {
	m, err := NewMachine("custom", [][3]int{{1, 1, 1}, {1, 1, 1}}, 4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m.String(), "custom") {
		t.Fatal("machine name lost")
	}
	if _, err := NewMachine("bad", nil, 3, 3, 1); err == nil {
		t.Fatal("want error for empty machine")
	}
}

func TestModelStrings(t *testing.T) {
	want := map[Model]string{Ideal: "ideal", Unified: "unified", Partitioned: "partitioned", Swapped: "swapped"}
	for m, s := range want {
		if m.String() != s {
			t.Fatalf("%d.String() = %q", int(m), m.String())
		}
	}
}

func TestVerifyThroughFacade(t *testing.T) {
	l := PaperExample()
	m := ExampleMachine()
	for _, model := range []Model{Unified, Partitioned, Swapped} {
		if err := Verify(l, m, model, 0, 20); err != nil {
			t.Fatalf("%v: %v", model, err)
		}
	}
	// With spilling.
	if err := Verify(l, m, Unified, 32, 20); err != nil {
		t.Fatalf("spilled verify: %v", err)
	}
}

func TestLoopDOT(t *testing.T) {
	var buf bytes.Buffer
	if err := PaperExample().DOT(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "digraph") {
		t.Fatal("DOT output malformed")
	}
}

func TestRenderTable1KernelsOnly(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderTable1(CorpusOptions{KernelsOnly: true}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "P1L3", "P2L6"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderFiguresSmallCorpus(t *testing.T) {
	opts := CorpusOptions{Loops: 25, Seed: 42}
	var buf bytes.Buffer
	if err := RenderFig6(opts, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 6 (latency 3)") ||
		!strings.Contains(buf.String(), "Figure 6 (latency 6)") {
		t.Fatalf("fig6 output incomplete:\n%s", buf.String())
	}
	buf.Reset()
	if err := RenderFig7(opts, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 7") {
		t.Fatal("fig7 missing")
	}
	buf.Reset()
	if err := RenderFig8And9(opts, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 8") || !strings.Contains(buf.String(), "Figure 9") {
		t.Fatal("fig8/9 missing")
	}
}
