package ncdrf

import (
	"bytes"
	"strings"
	"testing"
)

func TestPaperExampleThroughFacade(t *testing.T) {
	l := PaperExample()
	if l.Name() != "paper-example" || l.Ops() != 7 {
		t.Fatalf("loop = %s/%d ops", l.Name(), l.Ops())
	}
	reqs, ii, err := Requirements(l, ExampleMachine())
	if err != nil {
		t.Fatal(err)
	}
	if ii != 1 {
		t.Fatalf("II = %d", ii)
	}
	want := map[Model]int{Ideal: 0, Unified: 42, Partitioned: 29, Swapped: 23}
	for model, w := range want {
		if reqs[model] != w {
			t.Errorf("%v = %d, want %d", model, reqs[model], w)
		}
	}
}

func TestParseLoopAndCompile(t *testing.T) {
	l, err := ParseLoop(`
loop demo trips 500
invariant a
x1 = load x
m1 = fmul a, x1
y1 = load y
s1 = fadd m1, y1
store y, s1
`)
	if err != nil {
		t.Fatal(err)
	}
	if l.Trips() != 500 {
		t.Fatalf("trips = %d", l.Trips())
	}
	res, err := Compile(l, EvalMachine(3), Unified, 64)
	if err != nil {
		t.Fatal(err)
	}
	if res.II < 2 {
		t.Fatalf("II = %d (3 mem ops on 2 ports need >= 2)", res.II)
	}
	if res.SpilledValues != 0 {
		t.Fatal("no spill expected at 64 registers")
	}
	if res.Cycles != int64(res.II)*500 {
		t.Fatalf("cycles = %d", res.Cycles)
	}
	if !strings.Contains(res.Kernel, "row 0:") {
		t.Fatalf("kernel rendering missing:\n%s", res.Kernel)
	}
}

func TestParseLoopRejectsGarbage(t *testing.T) {
	if _, err := ParseLoop("not a loop"); err == nil {
		t.Fatal("want parse error")
	}
}

func TestCompileSpillsWhenTight(t *testing.T) {
	l := PaperExample()
	res, err := Compile(l, ExampleMachine(), Unified, 32)
	if err != nil {
		t.Fatal(err)
	}
	if res.SpilledValues == 0 {
		t.Fatal("expected spilling at 32 unified registers")
	}
	if res.Registers > 32 {
		t.Fatalf("final requirement %d > 32", res.Registers)
	}
	dual, err := Compile(l, ExampleMachine(), Swapped, 32)
	if err != nil {
		t.Fatal(err)
	}
	if dual.SpilledValues != 0 {
		t.Fatal("swapped must fit in 32 without spilling")
	}
	if dual.Registers != 23 {
		t.Fatalf("swapped requirement = %d, want 23", dual.Registers)
	}
}

func TestKernelLoopLookup(t *testing.T) {
	names := KernelNames()
	if len(names) < 40 {
		t.Fatalf("only %d kernels", len(names))
	}
	l, err := KernelLoop("daxpy")
	if err != nil || l.Name() != "daxpy" {
		t.Fatalf("KernelLoop: %v", err)
	}
	if _, err := KernelLoop("missing"); err == nil {
		t.Fatal("want error for unknown kernel")
	}
}

func TestNewMachineValidation(t *testing.T) {
	m, err := NewMachine("custom", [][3]int{{1, 1, 1}, {1, 1, 1}}, 4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m.String(), "custom") {
		t.Fatal("machine name lost")
	}
	if _, err := NewMachine("bad", nil, 3, 3, 1); err == nil {
		t.Fatal("want error for empty machine")
	}
}

func TestModelStrings(t *testing.T) {
	want := map[Model]string{Ideal: "ideal", Unified: "unified", Partitioned: "partitioned", Swapped: "swapped"}
	for m, s := range want {
		if m.String() != s {
			t.Fatalf("%d.String() = %q", int(m), m.String())
		}
	}
}

func TestVerifyThroughFacade(t *testing.T) {
	l := PaperExample()
	m := ExampleMachine()
	for _, model := range []Model{Unified, Partitioned, Swapped} {
		if err := Verify(l, m, model, 0, 20); err != nil {
			t.Fatalf("%v: %v", model, err)
		}
	}
	// With spilling.
	if err := Verify(l, m, Unified, 32, 20); err != nil {
		t.Fatalf("spilled verify: %v", err)
	}
}

func TestLoopDOT(t *testing.T) {
	var buf bytes.Buffer
	if err := PaperExample().DOT(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "digraph") {
		t.Fatal("DOT output malformed")
	}
}

func TestRenderTable1KernelsOnly(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderTable1(CorpusOptions{KernelsOnly: true}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "P1L3", "P2L6"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderFiguresSmallCorpus(t *testing.T) {
	opts := CorpusOptions{Loops: 25, Seed: 42}
	var buf bytes.Buffer
	if err := RenderFig6(opts, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 6 (latency 3)") ||
		!strings.Contains(buf.String(), "Figure 6 (latency 6)") {
		t.Fatalf("fig6 output incomplete:\n%s", buf.String())
	}
	buf.Reset()
	if err := RenderFig7(opts, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 7") {
		t.Fatal("fig7 missing")
	}
	buf.Reset()
	if err := RenderFig8And9(opts, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 8") || !strings.Contains(buf.String(), "Figure 9") {
		t.Fatal("fig8/9 missing")
	}
}
