package ncdrf_test

import (
	"fmt"
	"log"

	"ncdrf"
)

// The worked example of section 4 of the paper: the unified file needs 42
// registers, the non-consistent dual file 29, and 23 after swapping.
func ExampleRequirements() {
	loop := ncdrf.PaperExample()
	reqs, ii, err := ncdrf.Requirements(loop, ncdrf.ExampleMachine())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("II=%d unified=%d partitioned=%d swapped=%d\n",
		ii, reqs[ncdrf.Unified], reqs[ncdrf.Partitioned], reqs[ncdrf.Swapped])
	// Output:
	// II=1 unified=42 partitioned=29 swapped=23
}

// Compiling with a register file too small forces the naive spiller to
// push the longest-lived value through memory.
func ExampleCompile() {
	loop := ncdrf.PaperExample()
	res, err := ncdrf.Compile(loop, ncdrf.ExampleMachine(), ncdrf.Unified, 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("II=%d spilled=%d memops=%d fits=%v\n",
		res.II, res.SpilledValues, res.MemOps, res.Registers <= 32)
	// Output:
	// II=2 spilled=1 memops=5 fits=true
}

// ParseLoop accepts the textual loop IR; invariants live in the
// non-rotating file and create no dependences.
func ExampleParseLoop() {
	loop, err := ncdrf.ParseLoop(`
loop axpy trips 100
invariant a
x1 = load x
m1 = fmul a, x1
y1 = load y
s1 = fadd m1, y1
store y, s1
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d ops, %d trips\n", loop.Name(), loop.Ops(), loop.Trips())
	// Output:
	// axpy: 5 ops, 100 trips
}

// Verify executes the compiled loop on the simulated rotating register
// files and checks it bit-for-bit against a sequential reference.
func ExampleVerify() {
	loop := ncdrf.PaperExample()
	err := ncdrf.Verify(loop, ncdrf.ExampleMachine(), ncdrf.Swapped, 23, 20)
	fmt.Println(err)
	// Output:
	// <nil>
}
