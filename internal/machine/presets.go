package machine

// Presets for every machine configuration that appears in the paper.
//
// Table 1 uses configurations named PxLy: x adders of latency y, x
// multipliers of latency y, one store port and two load ports. The paper
// treats the three memory ports as a single kind with three units; loads
// and stores compete for them uniformly in our model, which preserves the
// resource bound ResMII(mem) = ceil(memops/3).
//
// The evaluation machine of section 5.2 has two clusters, each with one
// adder, one multiplier and one load/store unit, with floating-point
// latencies of 3 or 6 and memory latency 1.
//
// The worked-example machine of section 4 has two clusters, each with one
// adder, one multiplier and two load/store units, latency 3/3/1.

// PxLy returns the Table 1 configuration with x adders and x multipliers
// of latency y, plus three memory ports (one store + two loads in the
// paper), as a single-cluster (unified register file) machine.
func PxLy(x, y int) *Config {
	name := "P" + itoa(x) + "L" + itoa(y)
	return MustNew(name, []ClusterSpec{{Adders: x, Multipliers: x, MemPorts: 3}}, y, y, 1)
}

// Table1Configs returns the four configurations reported in Table 1 in
// presentation order: P1L3, P1L6, P2L3, P2L6.
func Table1Configs() []*Config {
	return []*Config{PxLy(1, 3), PxLy(1, 6), PxLy(2, 3), PxLy(2, 6)}
}

// Eval returns the section 5.2 evaluation machine: two clusters of
// {1 adder, 1 multiplier, 1 load/store unit} with floating-point latency
// lat (3 or 6 in the paper) and single-cycle memory.
func Eval(lat int) *Config {
	name := "eval-L" + itoa(lat)
	return MustNew(name, []ClusterSpec{
		{Adders: 1, Multipliers: 1, MemPorts: 1},
		{Adders: 1, Multipliers: 1, MemPorts: 1},
	}, lat, lat, 1)
}

// Example returns the section 4 worked-example machine: two clusters of
// {1 adder, 1 multiplier, 2 load/store units}, latency 3 for adds and
// multiplies and 1 for memory.
func Example() *Config {
	return MustNew("example", []ClusterSpec{
		{Adders: 1, Multipliers: 1, MemPorts: 2},
		{Adders: 1, Multipliers: 1, MemPorts: 2},
	}, 3, 3, 1)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
