package machine

import (
	"strings"
	"testing"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name          string
		clusters      []ClusterSpec
		add, mul, mem int
		wantErr       bool
	}{
		{"ok", []ClusterSpec{{1, 1, 1}}, 3, 3, 1, false},
		{"empty name handled separately", []ClusterSpec{{1, 1, 1}}, 3, 3, 1, false},
		{"no clusters", nil, 3, 3, 1, true},
		{"zero latency", []ClusterSpec{{1, 1, 1}}, 0, 3, 1, true},
		{"negative latency", []ClusterSpec{{1, 1, 1}}, 3, -1, 1, true},
		{"empty cluster", []ClusterSpec{{0, 0, 0}}, 3, 3, 1, true},
		{"negative count", []ClusterSpec{{-1, 1, 1}}, 3, 3, 1, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New("m", tc.clusters, tc.add, tc.mul, tc.mem)
			if (err != nil) != tc.wantErr {
				t.Fatalf("New(%v) err=%v, wantErr=%v", tc.clusters, err, tc.wantErr)
			}
		})
	}
	if _, err := New("", []ClusterSpec{{1, 1, 1}}, 3, 3, 1); err == nil {
		t.Fatal("New with empty name should fail")
	}
}

func TestUnitLayout(t *testing.T) {
	c := MustNew("m", []ClusterSpec{{1, 2, 3}, {2, 1, 0}}, 3, 6, 1)
	if got := c.NumUnits(); got != 9 {
		t.Fatalf("NumUnits = %d, want 9", got)
	}
	if got := c.NumClusters(); got != 2 {
		t.Fatalf("NumClusters = %d, want 2", got)
	}
	if got := c.CountOfKind(Adder); got != 3 {
		t.Fatalf("CountOfKind(Adder) = %d, want 3", got)
	}
	if got := c.CountOfKind(Multiplier); got != 3 {
		t.Fatalf("CountOfKind(Multiplier) = %d, want 3", got)
	}
	if got := c.CountOfKind(MemPort); got != 3 {
		t.Fatalf("CountOfKind(MemPort) = %d, want 3", got)
	}
	// Each unit's Index must equal its position and be consistent with
	// UnitsOfKind.
	for i := 0; i < c.NumUnits(); i++ {
		if c.Unit(i).Index != i {
			t.Fatalf("Unit(%d).Index = %d", i, c.Unit(i).Index)
		}
	}
	for _, k := range Kinds {
		for _, ui := range c.UnitsOfKind(k) {
			if c.Unit(ui).Kind != k {
				t.Fatalf("unit %d listed under kind %v but has kind %v", ui, k, c.Unit(ui).Kind)
			}
		}
	}
}

func TestClusterCountOfKind(t *testing.T) {
	c := Eval(3)
	for ci := 0; ci < 2; ci++ {
		if got := c.ClusterCountOfKind(ci, Adder); got != 1 {
			t.Fatalf("cluster %d adders = %d, want 1", ci, got)
		}
		if got := c.ClusterCountOfKind(ci, Multiplier); got != 1 {
			t.Fatalf("cluster %d muls = %d, want 1", ci, got)
		}
		if got := c.ClusterCountOfKind(ci, MemPort); got != 1 {
			t.Fatalf("cluster %d mems = %d, want 1", ci, got)
		}
	}
}

func TestLatency(t *testing.T) {
	c := Eval(6)
	if c.Latency(Adder) != 6 || c.Latency(Multiplier) != 6 || c.Latency(MemPort) != 1 {
		t.Fatalf("Eval(6) latencies = %d/%d/%d", c.Latency(Adder), c.Latency(Multiplier), c.Latency(MemPort))
	}
}

func TestUnify(t *testing.T) {
	c := Eval(3)
	u := c.Unify()
	if u.Clustered() {
		t.Fatal("Unify result should have one cluster")
	}
	if u.NumUnits() != c.NumUnits() {
		t.Fatalf("Unify changed unit count: %d vs %d", u.NumUnits(), c.NumUnits())
	}
	for _, k := range Kinds {
		if u.CountOfKind(k) != c.CountOfKind(k) {
			t.Fatalf("Unify changed %v count", k)
		}
		if u.Latency(k) != c.Latency(k) {
			t.Fatalf("Unify changed %v latency", k)
		}
	}
}

func TestPresets(t *testing.T) {
	p := PxLy(2, 6)
	if p.Name() != "P2L6" {
		t.Fatalf("PxLy name = %q", p.Name())
	}
	if p.CountOfKind(Adder) != 2 || p.CountOfKind(Multiplier) != 2 || p.CountOfKind(MemPort) != 3 {
		t.Fatalf("P2L6 unit counts wrong: %v", p.KindPressure())
	}
	if p.Latency(Adder) != 6 || p.Latency(MemPort) != 1 {
		t.Fatal("P2L6 latencies wrong")
	}
	if p.Clustered() {
		t.Fatal("Table 1 machines are unified (single cluster)")
	}

	cfgs := Table1Configs()
	wantNames := []string{"P1L3", "P1L6", "P2L3", "P2L6"}
	if len(cfgs) != len(wantNames) {
		t.Fatalf("Table1Configs len = %d", len(cfgs))
	}
	for i, c := range cfgs {
		if c.Name() != wantNames[i] {
			t.Fatalf("Table1Configs[%d] = %q, want %q", i, c.Name(), wantNames[i])
		}
	}

	ex := Example()
	if !ex.Clustered() || ex.NumClusters() != 2 {
		t.Fatal("Example machine must have 2 clusters")
	}
	if ex.CountOfKind(MemPort) != 4 {
		t.Fatalf("Example machine mem ports = %d, want 4", ex.CountOfKind(MemPort))
	}
}

func TestStringAndKinds(t *testing.T) {
	c := Eval(3)
	s := c.String()
	for _, want := range []string{"eval-L3", "2 cluster", "1add", "1mul", "1mem"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	if Adder.String() != "add" || Multiplier.String() != "mul" || MemPort.String() != "mem" {
		t.Fatal("FUKind.String wrong")
	}
	if FUKind(99).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}

func TestSortedUnitIndices(t *testing.T) {
	c := MustNew("m", []ClusterSpec{{2, 1, 1}, {1, 2, 1}}, 3, 3, 1)
	idx := c.SortedUnitIndices()
	if len(idx) != c.NumUnits() {
		t.Fatalf("len = %d", len(idx))
	}
	for i := 1; i < len(idx); i++ {
		a, b := c.Unit(idx[i-1]), c.Unit(idx[i])
		if a.Kind > b.Kind || (a.Kind == b.Kind && a.Cluster > b.Cluster) {
			t.Fatalf("not sorted at %d: %+v then %+v", i, a, b)
		}
	}
}

func TestItoa(t *testing.T) {
	cases := map[int]string{0: "0", 1: "1", 42: "42", -7: "-7", 128: "128"}
	for v, want := range cases {
		if got := itoa(v); got != want {
			t.Fatalf("itoa(%d) = %q, want %q", v, got, want)
		}
	}
}
