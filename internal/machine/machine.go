// Package machine describes the VLIW target machines used throughout the
// reproduction: clustered collections of fully pipelined functional units
// with per-kind latencies, following the machine models of Llosa, Valero
// and Ayguadé (HPCA'95).
//
// A Config is immutable after construction. The zero Config is not useful;
// build one with New or use one of the presets.
package machine

import (
	"fmt"
	"sort"
	"strings"
)

// FUKind identifies a class of functional unit. The paper's machines have
// floating-point adders (which also execute subtractions and int<->float
// conversions), floating-point multipliers (which also execute divisions)
// and load/store units.
type FUKind int

const (
	// Adder executes FADD, FSUB and CONV operations.
	Adder FUKind = iota
	// Multiplier executes FMUL and FDIV operations.
	Multiplier
	// MemPort executes LOAD and STORE operations.
	MemPort

	numKinds
)

// Kinds lists every functional-unit kind in a fixed order.
var Kinds = [...]FUKind{Adder, Multiplier, MemPort}

// String returns the conventional short name of the kind.
func (k FUKind) String() string {
	switch k {
	case Adder:
		return "add"
	case Multiplier:
		return "mul"
	case MemPort:
		return "mem"
	default:
		return fmt.Sprintf("FUKind(%d)", int(k))
	}
}

// FU is a single functional-unit instance of a Config.
type FU struct {
	// Index is the global index of the unit within the machine, unique
	// across clusters and kinds.
	Index int
	// Kind is the unit's class.
	Kind FUKind
	// Cluster is the cluster the unit belongs to (0-based).
	Cluster int
}

// ClusterSpec gives the per-cluster unit counts used to build a Config.
type ClusterSpec struct {
	Adders      int
	Multipliers int
	MemPorts    int
}

// Config is a fully pipelined VLIW machine description.
type Config struct {
	name     string
	clusters []ClusterSpec
	latency  [numKinds]int
	units    []FU
	byKind   [numKinds][]int // unit indices per kind, ascending
}

// New builds a machine from per-cluster unit counts and per-kind latencies.
// Every cluster must contain at least one unit in total and all latencies
// must be at least one cycle.
func New(name string, clusters []ClusterSpec, addLat, mulLat, memLat int) (*Config, error) {
	if name == "" {
		return nil, fmt.Errorf("machine: empty name")
	}
	if len(clusters) == 0 {
		return nil, fmt.Errorf("machine %s: no clusters", name)
	}
	if addLat < 1 || mulLat < 1 || memLat < 1 {
		return nil, fmt.Errorf("machine %s: latencies must be >= 1 (add=%d mul=%d mem=%d)",
			name, addLat, mulLat, memLat)
	}
	c := &Config{
		name:     name,
		clusters: append([]ClusterSpec(nil), clusters...),
	}
	c.latency[Adder] = addLat
	c.latency[Multiplier] = mulLat
	c.latency[MemPort] = memLat
	for ci, spec := range clusters {
		if spec.Adders < 0 || spec.Multipliers < 0 || spec.MemPorts < 0 {
			return nil, fmt.Errorf("machine %s: cluster %d has negative unit count", name, ci)
		}
		if spec.Adders+spec.Multipliers+spec.MemPorts == 0 {
			return nil, fmt.Errorf("machine %s: cluster %d is empty", name, ci)
		}
		for i := 0; i < spec.Adders; i++ {
			c.addUnit(Adder, ci)
		}
		for i := 0; i < spec.Multipliers; i++ {
			c.addUnit(Multiplier, ci)
		}
		for i := 0; i < spec.MemPorts; i++ {
			c.addUnit(MemPort, ci)
		}
	}
	return c, nil
}

// MustNew is New but panics on error; intended for presets and tests.
func MustNew(name string, clusters []ClusterSpec, addLat, mulLat, memLat int) *Config {
	c, err := New(name, clusters, addLat, mulLat, memLat)
	if err != nil {
		panic(err)
	}
	return c
}

func (c *Config) addUnit(k FUKind, cluster int) {
	idx := len(c.units)
	c.units = append(c.units, FU{Index: idx, Kind: k, Cluster: cluster})
	c.byKind[k] = append(c.byKind[k], idx)
}

// Name returns the configuration's name (e.g. "P2L6").
func (c *Config) Name() string { return c.name }

// NumClusters returns the number of clusters.
func (c *Config) NumClusters() int { return len(c.clusters) }

// NumUnits returns the total number of functional units.
func (c *Config) NumUnits() int { return len(c.units) }

// Unit returns the unit with the given global index.
func (c *Config) Unit(i int) FU { return c.units[i] }

// Units returns a copy of all functional units in index order.
func (c *Config) Units() []FU { return append([]FU(nil), c.units...) }

// UnitsOfKind returns the global indices of all units of kind k, ascending.
func (c *Config) UnitsOfKind(k FUKind) []int {
	return append([]int(nil), c.byKind[k]...)
}

// CountOfKind returns the machine-wide number of units of kind k.
func (c *Config) CountOfKind(k FUKind) int { return len(c.byKind[k]) }

// ClusterCountOfKind returns the number of units of kind k in cluster ci.
func (c *Config) ClusterCountOfKind(ci int, k FUKind) int {
	n := 0
	for _, u := range c.byKind[k] {
		if c.units[u].Cluster == ci {
			n++
		}
	}
	return n
}

// Latency returns the execution latency in cycles for units of kind k.
func (c *Config) Latency(k FUKind) int { return c.latency[k] }

// Clustered reports whether the machine has more than one cluster.
func (c *Config) Clustered() bool { return len(c.clusters) > 1 }

// Unify returns an equivalent single-cluster machine: the same total unit
// counts and latencies collapsed into one cluster. It models the unified /
// consistent register-file organizations, where every unit can reach every
// register.
func (c *Config) Unify() *Config {
	var total ClusterSpec
	for _, s := range c.clusters {
		total.Adders += s.Adders
		total.Multipliers += s.Multipliers
		total.MemPorts += s.MemPorts
	}
	u := MustNew(c.name+"-unified", []ClusterSpec{total},
		c.latency[Adder], c.latency[Multiplier], c.latency[MemPort])
	return u
}

// String renders a compact human-readable description.
func (c *Config) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d cluster(s)", c.name, len(c.clusters))
	for ci, s := range c.clusters {
		fmt.Fprintf(&b, " [c%d: %dadd %dmul %dmem]", ci, s.Adders, s.Multipliers, s.MemPorts)
	}
	fmt.Fprintf(&b, " lat add=%d mul=%d mem=%d",
		c.latency[Adder], c.latency[Multiplier], c.latency[MemPort])
	return b.String()
}

// KindPressure returns, for every kind, the number of units of that kind;
// kinds with zero units are included. The result is sorted by kind.
func (c *Config) KindPressure() map[FUKind]int {
	m := make(map[FUKind]int, numKinds)
	for _, k := range Kinds {
		m[k] = len(c.byKind[k])
	}
	return m
}

// SortedUnitIndices returns all unit indices sorted first by kind then by
// cluster; used by deterministic schedulers.
func (c *Config) SortedUnitIndices() []int {
	idx := make([]int, len(c.units))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ua, ub := c.units[idx[a]], c.units[idx[b]]
		if ua.Kind != ub.Kind {
			return ua.Kind < ub.Kind
		}
		if ua.Cluster != ub.Cluster {
			return ua.Cluster < ub.Cluster
		}
		return ua.Index < ub.Index
	})
	return idx
}
