package report

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "demo", Headers: []string{"name", "value"}}
	tb.Add("alpha", "1")
	tb.Add("b", "22222")
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "demo" {
		t.Fatalf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") || !strings.Contains(lines[1], "value") {
		t.Fatalf("header = %q", lines[1])
	}
	if !strings.Contains(lines[2], "-----") {
		t.Fatalf("separator = %q", lines[2])
	}
	// Column alignment: "value" column must start at the same offset.
	off := strings.Index(lines[1], "value")
	if lines[3][off:off+1] != "1" && !strings.HasPrefix(lines[3][off:], "1") {
		t.Fatalf("misaligned row: %q", lines[3])
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Headers: []string{"a", "b"}}
	tb.Add("plain", "with,comma")
	tb.Add("quote\"inside", "x")
	var buf bytes.Buffer
	if err := tb.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "\"with,comma\"") {
		t.Fatalf("comma not quoted: %s", out)
	}
	if !strings.Contains(out, "\"quote\"\"inside\"") {
		t.Fatalf("quote not escaped: %s", out)
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Fatalf("missing header: %s", out)
	}
}

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]Sample{{Value: 10, Weight: 1}, {Value: 20, Weight: 1}, {Value: 30, Weight: 2}})
	if c.Total() != 4 {
		t.Fatalf("total = %v", c.Total())
	}
	cases := []struct {
		x    int
		want float64
	}{
		{5, 0}, {10, 0.25}, {19, 0.25}, {20, 0.5}, {30, 1}, {100, 1},
	}
	for _, tc := range cases {
		if got := c.AtMost(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("AtMost(%d) = %v, want %v", tc.x, got, tc.want)
		}
	}
	series := c.Series([]int{10, 20, 30})
	if series[0] != 25 || series[1] != 50 || series[2] != 100 {
		t.Fatalf("Series = %v", series)
	}
}

func TestCDFPercentile(t *testing.T) {
	c := NewCDF([]Sample{{Value: 1, Weight: 1}, {Value: 5, Weight: 1}, {Value: 9, Weight: 2}})
	if got := c.Percentile(0.25); got != 1 {
		t.Fatalf("P25 = %d", got)
	}
	if got := c.Percentile(0.5); got != 5 {
		t.Fatalf("P50 = %d", got)
	}
	if got := c.Percentile(1.0); got != 9 {
		t.Fatalf("P100 = %d", got)
	}
	empty := NewCDF(nil)
	if empty.Percentile(0.5) != -1 {
		t.Fatal("empty percentile must be -1")
	}
	if empty.AtMost(10) != 0 {
		t.Fatal("empty AtMost must be 0")
	}
}

func TestCDFIgnoresNonPositiveWeights(t *testing.T) {
	c := NewCDF([]Sample{{Value: 3, Weight: 0}, {Value: 4, Weight: -1}, {Value: 5, Weight: 2}})
	if c.Total() != 2 {
		t.Fatalf("total = %v", c.Total())
	}
	if c.AtMost(4) != 0 {
		t.Fatal("zero/negative weights must not count")
	}
}

func TestPropertyCDFMonotone(t *testing.T) {
	f := func(vals []uint8) bool {
		samples := make([]Sample, len(vals))
		for i, v := range vals {
			samples[i] = Sample{Value: int(v), Weight: 1}
		}
		c := NewCDF(samples)
		prev := -0.001
		for x := 0; x <= 260; x += 5 {
			cur := c.AtMost(x)
			if cur < prev-1e-12 {
				return false
			}
			prev = cur
		}
		if len(vals) > 0 && c.AtMost(256) != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatters(t *testing.T) {
	if Pct(12.34) != "12.3%" {
		t.Fatalf("Pct = %q", Pct(12.34))
	}
	if F2(1.005) == "" {
		t.Fatal("F2 empty")
	}
}
