// Package report renders experiment results as aligned ASCII tables,
// cumulative distributions and CSV, mirroring the tables and figures of
// the paper.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// Add appends a row. The cell count should match the headers.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for pad := len(c); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		_, err := fmt.Fprintf(w, "%s\n", strings.TrimRight(b.String(), " "))
		return err
	}
	if err := line(t.Headers); err != nil {
		return err
	}
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// CSV writes the table as comma-separated values (headers first).
func (t *Table) CSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		escaped := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			escaped[i] = c
		}
		_, err := fmt.Fprintf(w, "%s\n", strings.Join(escaped, ","))
		return err
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// Sample is one weighted observation for a cumulative distribution
// (value = registers required, weight = 1 for static counts or executed
// cycles for dynamic counts).
type Sample struct {
	Value  int
	Weight float64
}

// CDF is a weighted cumulative distribution over integer values.
type CDF struct {
	total  float64
	sorted []Sample // ascending by Value, weights merged
}

// NewCDF builds a distribution from samples; zero- or negative-weight
// samples are ignored.
func NewCDF(samples []Sample) *CDF {
	agg := map[int]float64{}
	total := 0.0
	for _, s := range samples {
		if s.Weight <= 0 {
			continue
		}
		agg[s.Value] += s.Weight
		total += s.Weight
	}
	values := make([]int, 0, len(agg))
	for v := range agg {
		values = append(values, v)
	}
	sort.Ints(values)
	merged := make([]Sample, 0, len(values))
	for _, v := range values {
		merged = append(merged, Sample{Value: v, Weight: agg[v]})
	}
	return &CDF{total: total, sorted: merged}
}

// Total returns the total weight.
func (c *CDF) Total() float64 { return c.total }

// AtMost returns the fraction of weight with value <= x, in [0,1].
func (c *CDF) AtMost(x int) float64 {
	if c.total <= 0 {
		return 0
	}
	sum := 0.0
	for _, s := range c.sorted {
		if s.Value > x {
			break
		}
		sum += s.Weight
	}
	return sum / c.total
}

// Series evaluates AtMost at each x, as percentages (0..100).
func (c *CDF) Series(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = 100 * c.AtMost(x)
	}
	return out
}

// Percentile returns the smallest value v such that AtMost(v) >= p
// (p in [0,1]); -1 for an empty distribution.
func (c *CDF) Percentile(p float64) int {
	if c.total <= 0 {
		return -1
	}
	target := p * c.total
	sum := 0.0
	for _, s := range c.sorted {
		sum += s.Weight
		if sum >= target-1e-12 {
			return s.Value
		}
	}
	return c.sorted[len(c.sorted)-1].Value
}

// Pct formats a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// F2 formats a float with two decimals.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }
