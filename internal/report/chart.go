package report

import (
	"fmt"
	"io"
	"strings"
)

// Chart renders one or more percentage series against a shared integer
// X axis as an ASCII line chart — enough to eyeball the cumulative
// distribution figures in a terminal.
type Chart struct {
	Title  string
	XLabel string
	// Height is the number of plot rows; 0 means 20.
	Height int
	series []chartSeries
}

type chartSeries struct {
	name   string
	marker byte
	xs     []int
	ys     []float64
}

// AddSeries appends a named series with its plotting marker. All series
// should share the same x values for a readable plot.
func (c *Chart) AddSeries(name string, marker byte, xs []int, ys []float64) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("report: series %q has %d xs but %d ys", name, len(xs), len(ys))
	}
	if len(xs) == 0 {
		return fmt.Errorf("report: series %q is empty", name)
	}
	c.series = append(c.series, chartSeries{name: name, marker: marker, xs: xs, ys: ys})
	return nil
}

// Render draws the chart: the Y axis is 0..100%, each series marker is
// placed at its row; later series overwrite earlier ones on collisions.
func (c *Chart) Render(w io.Writer) error {
	if len(c.series) == 0 {
		return fmt.Errorf("report: chart with no series")
	}
	height := c.Height
	if height <= 0 {
		height = 20
	}
	width := len(c.series[0].xs)
	// Each x value gets a 4-column cell for readability.
	const cell = 4
	grid := make([][]byte, height+1)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width*cell))
	}
	for _, s := range c.series {
		for i, y := range s.ys {
			if i >= width {
				break
			}
			row := height - int(y/100*float64(height)+0.5)
			if row < 0 {
				row = 0
			}
			if row > height {
				row = height
			}
			grid[row][i*cell] = s.marker
		}
	}
	if c.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", c.Title); err != nil {
			return err
		}
	}
	for r := 0; r <= height; r++ {
		pct := 100 * (height - r) / height
		label := "    "
		if r == 0 || r == height || r == height/2 {
			label = fmt.Sprintf("%3d%%", pct)
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, strings.TrimRight(string(grid[r]), " ")); err != nil {
			return err
		}
	}
	// X axis with tick labels.
	axis := strings.Repeat("-", width*cell)
	if _, err := fmt.Fprintf(w, "     +%s\n", axis); err != nil {
		return err
	}
	var ticks strings.Builder
	for i, x := range c.series[0].xs {
		lbl := fmt.Sprintf("%-4d", x)
		if len(lbl) > cell {
			lbl = lbl[:cell]
		}
		_ = i
		ticks.WriteString(lbl)
	}
	if _, err := fmt.Fprintf(w, "      %s %s\n", ticks.String(), c.XLabel); err != nil {
		return err
	}
	var legend []string
	for _, s := range c.series {
		legend = append(legend, fmt.Sprintf("%c=%s", s.marker, s.name))
	}
	_, err := fmt.Fprintf(w, "      legend: %s\n", strings.Join(legend, "  "))
	return err
}
