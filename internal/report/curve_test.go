package report

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func testCurve() *Curve {
	return &Curve{
		Title:   "fit vs regs",
		XHeader: "regs",
		Xs:      []int{8, 16, 32},
		Format:  Pct,
		Series: []CurveSeries{
			{Name: "unified", Marker: 'u', Values: []float64{25, 50, 100}},
			{Name: "swapped", Values: []float64{50, math.NaN(), 100}},
		},
	}
}

func TestCurveTableAndCSV(t *testing.T) {
	c := testCurve()
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fit vs regs", "regs  unified  swapped", "8     25.0%    50.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	// NaN cells render as "-" regardless of the formatter.
	if !strings.Contains(out, "16    50.0%    -") {
		t.Fatalf("NaN cell not dashed:\n%s", out)
	}
	buf.Reset()
	if err := c.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "regs,unified,swapped\n8,25.0%,50.0%\n") {
		t.Fatalf("csv wrong:\n%s", buf.String())
	}
}

func TestCurveChart(t *testing.T) {
	c := testCurve()
	var buf bytes.Buffer
	if err := c.RenderChart(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// The default marker is the series' first letter; explicit markers win.
	if !strings.Contains(out, "u=unified") || !strings.Contains(out, "s=swapped") {
		t.Fatalf("chart legend wrong:\n%s", out)
	}
	if !strings.Contains(out, "regs") {
		t.Fatalf("chart missing x label:\n%s", out)
	}
}

func TestCurveValidation(t *testing.T) {
	bad := testCurve()
	bad.Series[0].Values = bad.Series[0].Values[:2]
	if err := bad.Render(&bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "3 axis points") {
		t.Fatalf("length mismatch not rejected: %v", err)
	}
	if err := (&Curve{Title: "t", Xs: []int{1}}).Render(&bytes.Buffer{}); err == nil {
		t.Fatal("curve with no series accepted")
	}
	if err := (&Curve{Title: "t", Series: []CurveSeries{{Name: "s"}}}).Render(&bytes.Buffer{}); err == nil {
		t.Fatal("curve with empty axis accepted")
	}
}
