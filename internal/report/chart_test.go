package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestChartRender(t *testing.T) {
	c := &Chart{Title: "demo", XLabel: "registers", Height: 10}
	xs := []int{8, 16, 32, 64}
	if err := c.AddSeries("unified", 'u', xs, []float64{10, 40, 80, 100}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddSeries("ncdrf", 'n', xs, []float64{20, 60, 99, 100}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "100%", "  0%", "u=unified", "n=ncdrf", "registers", "+----"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	// The 100% row must contain markers for the last points.
	lines := strings.Split(out, "\n")
	top := lines[1]
	if !strings.Contains(top, "u") && !strings.Contains(top, "n") {
		t.Fatalf("no marker reached the top row:\n%s", out)
	}
}

func TestChartErrors(t *testing.T) {
	c := &Chart{}
	if err := c.Render(&bytes.Buffer{}); err == nil {
		t.Fatal("empty chart must fail")
	}
	if err := c.AddSeries("bad", 'b', []int{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch must fail")
	}
	if err := c.AddSeries("empty", 'e', nil, nil); err == nil {
		t.Fatal("empty series must fail")
	}
}

func TestChartDefaultHeight(t *testing.T) {
	c := &Chart{}
	if err := c.AddSeries("s", 's', []int{1}, []float64{50}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines < 20 {
		t.Fatalf("default height too small: %d lines", lines)
	}
}
