package report

import (
	"fmt"
	"io"
	"math"
)

// Curve renders named series over a shared integer axis — the
// register-sensitivity shape: one row per axis value, one column per
// series — as an aligned table, CSV, or ASCII chart. It is the generic
// renderer behind `ncdrf curve`; the experiment layer decides what the
// series mean (fit %, spill ops, relative performance).
type Curve struct {
	Title   string
	XHeader string // axis column header, e.g. "regs"
	Xs      []int
	Series  []CurveSeries
	// Format renders one cell; F2 when nil. NaN values render as "-"
	// regardless (a missing point, e.g. an all-failed cell).
	Format func(float64) string
}

// CurveSeries is one named column/line of a Curve.
type CurveSeries struct {
	Name string
	// Marker is the chart glyph; the first byte of Name when 0.
	Marker byte
	// Values holds one value per Curve.Xs entry.
	Values []float64
}

func (c *Curve) check() error {
	if len(c.Xs) == 0 {
		return fmt.Errorf("report: curve %q has an empty axis", c.Title)
	}
	if len(c.Series) == 0 {
		return fmt.Errorf("report: curve %q has no series", c.Title)
	}
	for _, s := range c.Series {
		if len(s.Values) != len(c.Xs) {
			return fmt.Errorf("report: curve %q series %q has %d values for %d axis points",
				c.Title, s.Name, len(s.Values), len(c.Xs))
		}
	}
	return nil
}

func (c *Curve) cell(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	if c.Format != nil {
		return c.Format(v)
	}
	return F2(v)
}

// Table lays the curve out with the axis as the first column.
func (c *Curve) Table() (*Table, error) {
	if err := c.check(); err != nil {
		return nil, err
	}
	xh := c.XHeader
	if xh == "" {
		xh = "x"
	}
	tb := &Table{Title: c.Title, Headers: []string{xh}}
	for _, s := range c.Series {
		tb.Headers = append(tb.Headers, s.Name)
	}
	for i, x := range c.Xs {
		row := []string{fmt.Sprintf("%d", x)}
		for _, s := range c.Series {
			row = append(row, c.cell(s.Values[i]))
		}
		tb.Add(row...)
	}
	return tb, nil
}

// Render writes the aligned-table form.
func (c *Curve) Render(w io.Writer) error {
	tb, err := c.Table()
	if err != nil {
		return err
	}
	return tb.Render(w)
}

// CSV writes the table form as CSV.
func (c *Curve) CSV(w io.Writer) error {
	tb, err := c.Table()
	if err != nil {
		return err
	}
	return tb.CSV(w)
}

// RenderChart draws the curve as an ASCII line chart. The chart's Y
// axis is 0..100, so values should be percentages. The plot is
// positional (all series share the curve's axis), so a NaN point is
// drawn at the floor rather than shifting the series.
func (c *Curve) RenderChart(w io.Writer) error {
	if err := c.check(); err != nil {
		return err
	}
	chart := &Chart{Title: c.Title, XLabel: c.XHeader}
	for _, s := range c.Series {
		marker := s.Marker
		if marker == 0 && s.Name != "" {
			marker = s.Name[0]
		}
		ys := make([]float64, len(s.Values))
		for i, v := range s.Values {
			if math.IsNaN(v) {
				v = 0
			}
			ys[i] = v
		}
		if err := chart.AddSeries(s.Name, marker, c.Xs, ys); err != nil {
			return err
		}
	}
	return chart.Render(w)
}

// Pct1 formats a ratio in [0,1] as a percentage with one decimal.
func Pct1(v float64) string { return Pct(100 * v) }

// Int formats a float that carries an integer count.
func Int(v float64) string { return fmt.Sprintf("%.0f", v) }
