//go:build !race

package sweep

// digestGuard is off in normal builds; see guard_race.go.
const digestGuard = false
