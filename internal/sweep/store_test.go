package sweep

import (
	"context"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"ncdrf/internal/core"
	"ncdrf/internal/loops"
	"ncdrf/internal/machine"
	"ncdrf/internal/pipeline"
	"ncdrf/internal/store"
)

// storeEng returns an engine with a persistent tier rooted at dir.
func storeEng(t *testing.T, workers int, dir string) *Engine {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(workers)
	eng.SetStore(st)
	return eng
}

// compileCorpusErr runs CompileAll for every kernel on m and returns the
// results by loop name; the error form is safe to call off the test
// goroutine (t.Fatal is not).
func compileCorpusErr(eng *Engine, m *machine.Config, regs int) (map[string][core.NumModels]*pipeline.ModelResult, error) {
	out := map[string][core.NumModels]*pipeline.ModelResult{}
	for _, g := range loops.Kernels() {
		res, err := eng.CompileAll(context.Background(), g, m, regs)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", g.LoopName, err)
		}
		out[g.LoopName] = res
	}
	return out, nil
}

// compileCorpus is compileCorpusErr with failures reported on t.
func compileCorpus(t *testing.T, eng *Engine, m *machine.Config, regs int) map[string][core.NumModels]*pipeline.ModelResult {
	t.Helper()
	out, err := compileCorpusErr(eng, m, regs)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// mustEqualResults asserts content equivalence of two per-model result
// sets: same schedules, counters and register requirements.
func mustEqualResults(t *testing.T, want, got map[string][core.NumModels]*pipeline.ModelResult) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("result sets differ in size: %d vs %d", len(want), len(got))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Fatalf("%s missing from second run", name)
		}
		for _, model := range core.Models {
			a, b := w[model], g[model]
			if a.Sched.II != b.Sched.II ||
				a.SpilledValues != b.SpilledValues ||
				a.SpillStores != b.SpillStores ||
				a.SpillLoads != b.SpillLoads ||
				a.IIBumps != b.IIBumps ||
				a.Iterations != b.Iterations ||
				a.MemOps() != b.MemOps() {
				t.Fatalf("%s/%v: results differ: %+v vs %+v", name, model, a, b)
			}
			ra, _, err1 := a.Requirement()
			rb, _, err2 := b.Requirement()
			if err1 != nil || err2 != nil || ra != rb {
				t.Fatalf("%s/%v: requirement %d,%v vs %d,%v", name, model, ra, err1, rb, err2)
			}
		}
	}
}

// TestStoreTierIncremental is the acceptance scenario at engine level: a
// second engine sharing the first one's artifact directory computes zero
// schedules and zero evals while producing equivalent results.
func TestStoreTierIncremental(t *testing.T) {
	dir := t.TempDir()
	m := machine.Eval(6)

	eng1 := storeEng(t, 2, dir)
	first := compileCorpus(t, eng1, m, 24) // 24 regs force spilling on part of the corpus
	st1 := eng1.Cache().StageStats()
	if st1.Schedule.Misses == 0 || st1.Eval.Misses == 0 {
		t.Fatalf("cold run computed nothing: %+v", st1)
	}
	if st1.Schedule.DiskHits != 0 || st1.Eval.DiskHits != 0 {
		t.Fatalf("cold run hit a fresh store: %+v", st1)
	}
	if w := eng1.Store().Stats().Writes; w == 0 {
		t.Fatal("cold run persisted nothing")
	}

	eng2 := storeEng(t, 2, dir)
	second := compileCorpus(t, eng2, m, 24)
	st2 := eng2.Cache().StageStats()
	if st2.Schedule.Misses != 0 {
		t.Fatalf("warm run computed %d schedules, want 0: %+v", st2.Schedule.Misses, st2)
	}
	if st2.Eval.Misses != 0 {
		t.Fatalf("warm run computed %d evals, want 0: %+v", st2.Eval.Misses, st2)
	}
	if st2.Eval.DiskHits == 0 {
		t.Fatalf("warm run served no evals from disk: %+v", st2)
	}
	mustEqualResults(t, first, second)
}

// TestStoreTierCorruptionRecovery damages every persisted artifact and
// checks a fresh engine recomputes everything correctly instead of
// crashing or serving garbage.
func TestStoreTierCorruptionRecovery(t *testing.T) {
	dir := t.TempDir()
	m := machine.Eval(6)
	want := compileCorpus(t, storeEng(t, 2, dir), m, 24)

	// Corrupt every artifact: flip a payload byte in the first half,
	// truncate the second half.
	n := 0
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if n++; n%2 == 0 {
			return os.WriteFile(path, data[:len(data)/3], 0o644)
		}
		data[len(data)-1] ^= 0x42
		return os.WriteFile(path, data, 0o644)
	})
	if err != nil || n == 0 {
		t.Fatalf("corruption walk failed: n=%d err=%v", n, err)
	}

	eng := storeEng(t, 2, dir)
	got := compileCorpus(t, eng, m, 24)
	st := eng.Cache().StageStats()
	if st.Eval.DiskHits != 0 || st.Eval.Misses == 0 {
		t.Fatalf("corrupted store still served artifacts: %+v", st)
	}
	if eng.Store().Stats().Faults == 0 {
		t.Fatal("corruption not observed as faults")
	}
	mustEqualResults(t, want, got)

	// The recomputation rewrote the artifacts: the next engine is warm
	// again.
	eng2 := storeEng(t, 2, dir)
	_ = compileCorpus(t, eng2, m, 24)
	if st := eng2.Cache().StageStats(); st.Eval.Misses != 0 {
		t.Fatalf("store not repaired by recomputation: %+v", st)
	}
}

// TestStoreTierConcurrentEngines runs two engines over one shared
// artifact directory at the same time (run under -race in CI), the
// multi-process sharing contract exercised in-process: no torn reads, no
// errors, equivalent results.
func TestStoreTierConcurrentEngines(t *testing.T) {
	dir := t.TempDir()
	m := machine.Eval(3)
	engines := []*Engine{storeEng(t, 2, dir), storeEng(t, 2, dir)}
	var wg sync.WaitGroup
	results := make([]map[string][core.NumModels]*pipeline.ModelResult, len(engines))
	errs := make([]error, len(engines))
	for i := range engines {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = compileCorpusErr(engines[i], m, 20)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("engine %d: %v", i, err)
		}
	}
	mustEqualResults(t, results[0], results[1])

	// After both runs, the store serves a third engine completely.
	eng := storeEng(t, 2, dir)
	_ = compileCorpus(t, eng, m, 20)
	if st := eng.Cache().StageStats(); st.Schedule.Misses != 0 || st.Eval.Misses != 0 {
		t.Fatalf("store left cold by concurrent writers: %+v", st)
	}
}

// TestStoreKeyPinsMachineSpec pins the disk key's extra strictness over
// the in-memory key: two machines sharing a name but not a specification
// must not share persisted artifacts — the warm engine takes clean
// misses (no decode faults from a wrong artifact) and recomputes.
func TestStoreKeyPinsMachineSpec(t *testing.T) {
	dir := t.TempDir()
	g := loops.Kernels()[0]
	spec := []machine.ClusterSpec{{Adders: 1, Multipliers: 1, MemPorts: 1}}
	mA := machine.MustNew("mutating-preset", spec, 3, 3, 1)
	mB := machine.MustNew("mutating-preset", spec, 6, 6, 1) // same name, new latencies

	eng1 := storeEng(t, 1, dir)
	if _, err := eng1.CompileAll(context.Background(), g, mA, 32); err != nil {
		t.Fatal(err)
	}
	if eng1.Store().Stats().Writes == 0 {
		t.Fatal("nothing persisted")
	}

	eng2 := storeEng(t, 1, dir)
	if _, err := eng2.CompileAll(context.Background(), g, mB, 32); err != nil {
		t.Fatal(err)
	}
	st := eng2.Cache().StageStats()
	if st.Schedule.DiskHits != 0 || st.Eval.DiskHits != 0 {
		t.Fatalf("respecced machine served stale artifacts: %+v", st)
	}
	if f := eng2.Store().Stats().Faults; f != 0 {
		t.Fatalf("respecced machine decoded wrong artifacts (%d faults); the key must miss cleanly", f)
	}
	if st.Schedule.Misses == 0 || st.Eval.Misses == 0 {
		t.Fatalf("respecced machine computed nothing: %+v", st)
	}
}

// TestStoreTierDoesNotPersistErrors pins the negative-result policy:
// deterministic failures are cached in memory but never written to disk,
// so a fresh engine recomputes (and re-fails) them.
func TestStoreTierDoesNotPersistErrors(t *testing.T) {
	dir := t.TempDir()
	m := machine.MustNew("no-mem-store", []machine.ClusterSpec{{Adders: 1, Multipliers: 1}}, 3, 3, 1)
	g := loops.Kernels()[0] // every kernel has loads; cannot schedule

	eng1 := storeEng(t, 1, dir)
	if _, err := eng1.Compile(context.Background(), g, m, core.Unified, 16); err == nil {
		t.Fatal("expected scheduling failure")
	}
	if w := eng1.Store().Stats().Writes; w != 0 {
		t.Fatalf("failure persisted: %d writes", w)
	}

	eng2 := storeEng(t, 1, dir)
	if _, err := eng2.Compile(context.Background(), g, m, core.Unified, 16); err == nil {
		t.Fatal("expected scheduling failure on the warm engine")
	}
	if st := eng2.Cache().StageStats(); st.Eval.Misses != 1 || st.Eval.DiskHits != 0 {
		t.Fatalf("failure unexpectedly served from disk: %+v", st)
	}
}
