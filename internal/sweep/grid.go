package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"ncdrf/internal/core"
	"ncdrf/internal/ddg"
	"ncdrf/internal/machine"
	"ncdrf/internal/pipeline"
)

// Grid describes a sweep: the cross product of loops, machines, models
// and register-file sizes.
type Grid struct {
	Corpus   []*ddg.Graph
	Machines []*machine.Config
	Models   []core.Model
	Regs     []int
}

// Unit is one deduplicated work item of a planned grid: indices into the
// grid's corpus/machines plus the concrete model and register count.
type Unit struct {
	Loop    int
	Machine int
	Model   core.Model
	Regs    int
}

// unitKey identifies a requested grid cell, for deduplication: machines
// collapse onto their name (same name = same config, the cache
// contract), so repeated register sizes or same-name machines add
// nothing. Distinct cells whose computations coincide (e.g. the Ideal
// model at every register size) are kept — each requested cell gets its
// own Result row — and the schedule cache absorbs the shared work.
type unitKey struct {
	loop    int
	machine string
	model   core.Model
	regs    int
}

// Validate rejects a grid with an empty axis. Such a grid plans zero
// units, so a sweep over it would emit nothing while appearing to
// succeed — the classic silently-empty result file. The error names the
// empty axis. An empty Regs axis is deliberately not an error: Plan
// documents it as one unlimited register file.
func (g Grid) Validate() error {
	switch {
	case len(g.Corpus) == 0:
		return fmt.Errorf("sweep: empty grid axis Corpus: no loops to evaluate")
	case len(g.Machines) == 0:
		return fmt.Errorf("sweep: empty grid axis Machines: no machine configurations")
	case len(g.Models) == 0:
		return fmt.Errorf("sweep: empty grid axis Models: no register-file models")
	}
	return nil
}

// Plan expands the grid into work units, dropping duplicate cells:
// repeated register sizes and machines with the same name. Units are
// ordered machine-major, then model, then size, then loop — the order
// the paper's tables enumerate.
func (g Grid) Plan() []Unit {
	regs := g.Regs
	if len(regs) == 0 {
		regs = []int{0}
	}
	seen := map[unitKey]bool{}
	var units []Unit
	for mi, m := range g.Machines {
		for _, model := range g.Models {
			for _, r := range regs {
				for li := range g.Corpus {
					k := unitKey{loop: li, machine: m.Name(), model: model, regs: r}
					if seen[k] {
						continue
					}
					seen[k] = true
					units = append(units, Unit{Loop: li, Machine: mi, Model: model, Regs: r})
				}
			}
		}
	}
	return units
}

// Shard returns the i-th of n contiguous, balanced partitions of
// Plan(), 1-based: `-shard 2/4` means the same cells on every machine.
// Shards are disjoint, cover the plan exactly, and concatenating shards
// 1..n in order reproduces Plan() — which is why `ncdrf merge` can
// splice shard outputs back into the single-run stream byte-for-byte.
// Contiguity also makes sequential shards cooperate through a shared
// artifact store: the plan revisits each (loop, machine) pair once per
// (model, regs) combination, so shard k+1's base schedules are largely
// shard k's disk hits.
func (g Grid) Shard(i, n int) ([]Unit, error) {
	return ShardOf(g.Plan(), i, n)
}

// ShardOf is Shard over an already-expanded plan, so a caller that also
// needs the units (or the plan digest) expands the grid exactly once
// per invocation instead of once per consumer.
func ShardOf(units []Unit, i, n int) ([]Unit, error) {
	if n < 1 || i < 1 || i > n {
		return nil, fmt.Errorf("sweep: shard %d/%d out of range (want 1 <= i <= n)", i, n)
	}
	q, r := len(units)/n, len(units)%n
	lo := (i-1)*q + min(i-1, r)
	hi := lo + q
	if i <= r {
		hi++
	}
	return units[lo:hi], nil
}

// PlanDigest identifies the planned grid for shard-file validation: a
// short hex digest over every planned cell — loop content (the same
// canonical encoding the cache keys digest), machine name, model and
// register budget, in plan order. Two grids merge-compatibly iff their
// digests match; a shard produced from a different corpus, seed or flag
// set is rejected by `ncdrf merge` instead of being silently spliced in.
func (g Grid) PlanDigest() string {
	return g.PlanDigestOf(g.Plan())
}

// PlanDigestOf is PlanDigest over an already-expanded full plan; see
// ShardOf for why callers pass the units through.
func (g Grid) PlanDigestOf(units []Unit) string {
	loopSums := map[int][sha256.Size]byte{}
	h := sha256.New()
	fmt.Fprintf(h, "plan %d\n", len(units))
	for _, u := range units {
		sum, ok := loopSums[u.Loop]
		if !ok {
			sum = sha256.Sum256(appendEncoding(nil, g.Corpus[u.Loop]))
			loopSums[u.Loop] = sum
		}
		h.Write(sum[:])
		fmt.Fprintf(h, "\x00%s\x00%s\x00%d\n", g.Machines[u.Machine].Name(), u.Model, u.Regs)
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// Group is one base-major execution unit of a plan: every planned unit
// sharing one (loop, machine) pair. One pipeline.Base serves the whole
// group — the base schedule and lifetimes are computed once, and the
// group's (model × regs) fan-out starts from the shared artifact.
type Group struct {
	// Loop and Machine index the grid's Corpus and Machines.
	Loop, Machine int
	// Units holds the indices (into the grouped unit list) of the
	// group's members, in that list's order.
	Units []int
}

// Groups partitions the grid's plan into base-major groups; see
// GroupUnits for the grouping contract.
func (g Grid) Groups() []Group { return GroupUnits(g.Plan()) }

// GroupUnits partitions a unit list — a whole plan or one shard of it —
// into base-major groups keyed by (loop, machine), ordered by first
// appearance. A shard of a plan yields partial groups: only the shard's
// own units, which is exactly what keeps Grid.Shard's contract intact
// (each shard emits its slice of the plan, base sharing included).
func GroupUnits(units []Unit) []Group {
	type gkey struct{ loop, machine int }
	index := map[gkey]int{}
	var groups []Group
	for i, u := range units {
		k := gkey{u.Loop, u.Machine}
		gi, ok := index[k]
		if !ok {
			gi = len(groups)
			index[k] = gi
			groups = append(groups, Group{Loop: u.Loop, Machine: u.Machine})
		}
		groups[gi].Units = append(groups[gi].Units, i)
	}
	return groups
}

// Result is the outcome of one work unit: the NDJSON result row of
// internal/pipeline (see pipeline.Row for the codec and field
// contract). A unit that fails carries its error in Error with the
// zero metrics.
type Result = pipeline.Row
