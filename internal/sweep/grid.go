package sweep

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"ncdrf/internal/core"
	"ncdrf/internal/ddg"
	"ncdrf/internal/machine"
	"ncdrf/internal/pipeline"
)

// Grid describes a sweep: the cross product of loops, machines, models
// and register-file sizes.
type Grid struct {
	Corpus   []*ddg.Graph
	Machines []*machine.Config
	Models   []core.Model
	Regs     []int
}

// Unit is one deduplicated work item of a planned grid: indices into the
// grid's corpus/machines plus the concrete model and register count.
type Unit struct {
	Loop    int
	Machine int
	Model   core.Model
	Regs    int
}

// unitKey identifies a requested grid cell, for deduplication: machines
// collapse onto their name (same name = same config, the cache
// contract), so repeated register sizes or same-name machines add
// nothing. Distinct cells whose computations coincide (e.g. the Ideal
// model at every register size) are kept — each requested cell gets its
// own Result row — and the schedule cache absorbs the shared work.
type unitKey struct {
	loop    int
	machine string
	model   core.Model
	regs    int
}

// Plan expands the grid into work units, dropping duplicate cells:
// repeated register sizes and machines with the same name. Units are
// ordered machine-major, then model, then size, then loop — the order
// the paper's tables enumerate.
func (g Grid) Plan() []Unit {
	regs := g.Regs
	if len(regs) == 0 {
		regs = []int{0}
	}
	seen := map[unitKey]bool{}
	var units []Unit
	for mi, m := range g.Machines {
		for _, model := range g.Models {
			for _, r := range regs {
				for li := range g.Corpus {
					k := unitKey{loop: li, machine: m.Name(), model: model, regs: r}
					if seen[k] {
						continue
					}
					seen[k] = true
					units = append(units, Unit{Loop: li, Machine: mi, Model: model, Regs: r})
				}
			}
		}
	}
	return units
}

// Shard returns the i-th of n contiguous, balanced partitions of
// Plan(), 1-based: `-shard 2/4` means the same cells on every machine.
// Shards are disjoint, cover the plan exactly, and concatenating shards
// 1..n in order reproduces Plan() — which is why `ncdrf merge` can
// splice shard outputs back into the single-run stream byte-for-byte.
// Contiguity also makes sequential shards cooperate through a shared
// artifact store: the plan revisits each (loop, machine) pair once per
// (model, regs) combination, so shard k+1's base schedules are largely
// shard k's disk hits.
func (g Grid) Shard(i, n int) ([]Unit, error) {
	if n < 1 || i < 1 || i > n {
		return nil, fmt.Errorf("sweep: shard %d/%d out of range (want 1 <= i <= n)", i, n)
	}
	units := g.Plan()
	q, r := len(units)/n, len(units)%n
	lo := (i-1)*q + min(i-1, r)
	hi := lo + q
	if i <= r {
		hi++
	}
	return units[lo:hi], nil
}

// PlanDigest identifies the planned grid for shard-file validation: a
// short hex digest over every planned cell — loop content (the same
// canonical encoding the cache keys digest), machine name, model and
// register budget, in plan order. Two grids merge-compatibly iff their
// digests match; a shard produced from a different corpus, seed or flag
// set is rejected by `ncdrf merge` instead of being silently spliced in.
func (g Grid) PlanDigest() string {
	units := g.Plan()
	loopSums := map[int][sha256.Size]byte{}
	h := sha256.New()
	fmt.Fprintf(h, "plan %d\n", len(units))
	for _, u := range units {
		sum, ok := loopSums[u.Loop]
		if !ok {
			sum = sha256.Sum256(appendEncoding(nil, g.Corpus[u.Loop]))
			loopSums[u.Loop] = sum
		}
		h.Write(sum[:])
		fmt.Fprintf(h, "\x00%s\x00%s\x00%d\n", g.Machines[u.Machine].Name(), u.Model, u.Regs)
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// Result is the outcome of one work unit: the NDJSON result row of
// internal/pipeline (see pipeline.Row for the codec and field
// contract). A unit that fails carries its error in Error with the
// zero metrics.
type Result = pipeline.Row

// Sweep plans the grid and compiles every unit on the worker pool,
// calling emit once per unit. Emit calls are serialized and follow plan
// order — results are reordered as workers finish, so the output stream
// is deterministic and shard outputs merge byte-identically with an
// unsharded run. Per-unit compile failures are reported inside the
// Result, not as an error; Sweep's own error is non-nil only when ctx
// is cancelled (in which case not-yet-emittable buffered results are
// discarded with the rest of the run).
func (e *Engine) Sweep(ctx context.Context, grid Grid, emit func(Result)) error {
	return e.SweepUnits(ctx, grid, grid.Plan(), emit)
}

// SweepUnits is Sweep over an explicit unit list — a whole plan or one
// Shard of it. Units index into grid's Corpus and Machines; emit calls
// are serialized and follow the order of units. Buffering is bounded by
// completion skew: a result waits only while earlier units are still
// in flight, so memory stays near the pool width in practice.
func (e *Engine) SweepUnits(ctx context.Context, grid Grid, units []Unit, emit func(Result)) error {
	var (
		mu      sync.Mutex
		pending = map[int]Result{}
		next    int
	)
	return e.ForEach(ctx, len(units), func(i int) error {
		u := units[i]
		g, m := grid.Corpus[u.Loop], grid.Machines[u.Machine]
		r := Result{
			Loop:    g.LoopName,
			Machine: m.Name(),
			Model:   u.Model.String(),
			Regs:    u.Regs,
			Trips:   g.TripsOrOne(),
		}
		res, err := e.Compile(ctx, g, m, u.Model, u.Regs)
		if err != nil {
			// Cancellation is the sweep's error, not the unit's: don't
			// emit rows a consumer could mistake for compile failures.
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			r.Error = err.Error()
		} else {
			r.Fill(res)
		}
		mu.Lock()
		pending[i] = r
		for {
			ready, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			emit(ready)
		}
		mu.Unlock()
		return nil
	})
}
