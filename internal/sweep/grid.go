package sweep

import (
	"context"
	"sync"

	"ncdrf/internal/core"
	"ncdrf/internal/ddg"
	"ncdrf/internal/machine"
)

// Grid describes a sweep: the cross product of loops, machines, models
// and register-file sizes.
type Grid struct {
	Corpus   []*ddg.Graph
	Machines []*machine.Config
	Models   []core.Model
	Regs     []int
}

// Unit is one deduplicated work item of a planned grid: indices into the
// grid's corpus/machines plus the concrete model and register count.
type Unit struct {
	Loop    int
	Machine int
	Model   core.Model
	Regs    int
}

// unitKey identifies a requested grid cell, for deduplication: machines
// collapse onto their name (same name = same config, the cache
// contract), so repeated register sizes or same-name machines add
// nothing. Distinct cells whose computations coincide (e.g. the Ideal
// model at every register size) are kept — each requested cell gets its
// own Result row — and the schedule cache absorbs the shared work.
type unitKey struct {
	loop    int
	machine string
	model   core.Model
	regs    int
}

// Plan expands the grid into work units, dropping duplicate cells:
// repeated register sizes and machines with the same name. Units are
// ordered machine-major, then model, then size, then loop — the order
// the paper's tables enumerate.
func (g Grid) Plan() []Unit {
	regs := g.Regs
	if len(regs) == 0 {
		regs = []int{0}
	}
	seen := map[unitKey]bool{}
	var units []Unit
	for mi, m := range g.Machines {
		for _, model := range g.Models {
			for _, r := range regs {
				for li := range g.Corpus {
					k := unitKey{loop: li, machine: m.Name(), model: model, regs: r}
					if seen[k] {
						continue
					}
					seen[k] = true
					units = append(units, Unit{Loop: li, Machine: mi, Model: model, Regs: r})
				}
			}
		}
	}
	return units
}

// Result is the outcome of one work unit, shaped for JSON streaming.
// A unit that fails carries its error in Error with the zero metrics.
type Result struct {
	Loop    string `json:"loop"`
	Machine string `json:"machine"`
	Model   string `json:"model"`
	Regs    int    `json:"regs"`
	II      int    `json:"ii,omitempty"`
	Stages  int    `json:"stages,omitempty"`
	Trips   int64  `json:"trips,omitempty"`
	MemOps  int    `json:"mem_ops,omitempty"`
	Spilled int    `json:"spilled,omitempty"`
	IIBumps int    `json:"ii_bumps,omitempty"`
	Rounds  int    `json:"rounds,omitempty"`
	Error   string `json:"error,omitempty"`
}

// Sweep plans the grid and compiles every unit on the worker pool,
// calling emit once per unit as results become available (emit calls are
// serialized; their order follows completion, not plan order). Per-unit
// compile failures are reported inside the Result, not as an error;
// Sweep's own error is non-nil only when ctx is cancelled.
func (e *Engine) Sweep(ctx context.Context, grid Grid, emit func(Result)) error {
	units := grid.Plan()
	var mu sync.Mutex
	return e.ForEach(ctx, len(units), func(i int) error {
		u := units[i]
		g, m := grid.Corpus[u.Loop], grid.Machines[u.Machine]
		r := Result{
			Loop:    g.LoopName,
			Machine: m.Name(),
			Model:   u.Model.String(),
			Regs:    u.Regs,
			Trips:   g.TripsOrOne(),
		}
		res, err := e.Compile(ctx, g, m, u.Model, u.Regs)
		if err != nil {
			// Cancellation is the sweep's error, not the unit's: don't
			// emit rows a consumer could mistake for compile failures.
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			r.Error = err.Error()
		} else {
			r.II = res.Sched.II
			r.Stages = res.Sched.Stages()
			r.MemOps = res.MemOps()
			r.Spilled = res.SpilledValues
			r.IIBumps = res.IIBumps
			r.Rounds = res.Iterations
		}
		mu.Lock()
		emit(r)
		mu.Unlock()
		return nil
	})
}
