package sweep

import (
	"context"
	"sync"

	"ncdrf/internal/pipeline"
)

// This file is the sweep executor: the two-level, base-major plan the
// engine runs grids with. Execution is grouped (see Group): the unit
// list is partitioned by (loop, machine), dispatch is group-major so
// one worker — the first to reach the group — requests the group's
// shared pipeline.Base exactly once, and every (model, regs) evaluation
// of the group fans out on the pool consuming that base directly
// (Cache.EvaluateBase) instead of re-requesting the base stage per
// unit. A reorder buffer keyed by the unit's original index keeps the
// emitted stream byte-identical to the flat plan-order stream, so shard
// files, `ncdrf merge` and PlanDigest compatibility are unaffected by
// the execution shape.

// Sweep plans the grid and compiles every unit on the worker pool,
// calling emit once per unit. Emit calls are serialized and follow plan
// order — results are reordered as workers finish, so the output stream
// is deterministic and shard outputs merge byte-identically with an
// unsharded run. Per-unit compile failures are reported inside the
// Result, not as an error; Sweep's own error is non-nil when ctx is
// cancelled (in which case not-yet-emittable buffered results are
// discarded with the rest of the run) or when the grid has an empty
// axis and could only emit nothing.
func (e *Engine) Sweep(ctx context.Context, grid Grid, emit func(Result)) error {
	if err := grid.Validate(); err != nil {
		return err
	}
	return e.SweepUnits(ctx, grid, grid.Plan(), emit)
}

// groupShared is the per-group cell of one SweepUnits call: the shared
// base artifact, computed by whichever worker reaches the group first.
// Units of the group arriving while the leader computes block in the
// Once — the same wait they would have spent inside the base stage's
// single-flight — and every unit observes the same (base, err) pair.
type groupShared struct {
	once sync.Once
	base *pipeline.Base
	err  error
}

// SweepUnits is Sweep over an explicit unit list — a whole plan or one
// Shard of it. Units index into grid's Corpus and Machines; emit calls
// are serialized and follow the order of units.
//
// Execution is base-major (two-level): units are dispatched group-major
// per GroupUnits, the group's base artifact is requested once, and the
// per-unit evaluations fan out on the pool. Because plan order
// interleaves a group's units across the whole (model × regs) span, the
// reorder buffer can hold up to roughly a plan's worth of finished rows
// in the worst case — rows are small value structs, so a dense
// corpus-wide curve stays in the tens of megabytes.
func (e *Engine) SweepUnits(ctx context.Context, grid Grid, units []Unit, emit func(Result)) error {
	return e.SweepUnitsObserved(ctx, grid, units, emit, nil)
}

// SweepUnitsObserved is SweepUnits with a per-unit completion hook,
// called (concurrently) as each unit finishes computing — possibly long
// before its row is emittable, since group-major completion order runs
// ahead of plan-order emission. Progress reporters hang off this hook;
// counting emitted rows instead would underreport by the reorder
// buffer's depth. done may be nil.
func (e *Engine) SweepUnitsObserved(ctx context.Context, grid Grid, units []Unit, emit func(Result), done func()) error {
	groups := GroupUnits(units)
	order := make([]int, 0, len(units))
	shared := make([]*groupShared, len(units))
	states := make([]groupShared, len(groups))
	for gi := range groups {
		for _, ui := range groups[gi].Units {
			order = append(order, ui)
			shared[ui] = &states[gi]
		}
	}
	out := newReorder(emit)
	return e.ForEach(ctx, len(order), func(k int) error {
		ui := order[k]
		u := units[ui]
		r := rowFor(grid, u)
		gs := shared[ui]
		gs.once.Do(func() {
			gs.base, gs.err = e.Base(ctx, grid.Corpus[u.Loop], grid.Machines[u.Machine])
		})
		var res *pipeline.ModelResult
		err := gs.err
		if err == nil {
			res, err = e.EvaluateBase(ctx, gs.base, u.Model, u.Regs)
		}
		if err != nil {
			// Cancellation is the sweep's error, not the unit's: don't
			// emit rows a consumer could mistake for compile failures.
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			r.Error = err.Error()
		} else {
			r.Fill(res)
		}
		e.rowsComputed.Add(1)
		if done != nil {
			done()
		}
		out.put(ui, r)
		return nil
	})
}

// sweepUnitsFlat is the pre-grouping executor: every unit independently
// re-requests its stages through the cache, in unit order. It has no
// production callers and is kept as the reference implementation for
// the base-major equivalence property test — the two executors must
// emit byte-identical streams over any grid and any shard split.
func (e *Engine) sweepUnitsFlat(ctx context.Context, grid Grid, units []Unit, emit func(Result)) error {
	out := newReorder(emit)
	return e.ForEach(ctx, len(units), func(i int) error {
		u := units[i]
		r := rowFor(grid, u)
		res, err := e.Compile(ctx, grid.Corpus[u.Loop], grid.Machines[u.Machine], u.Model, u.Regs)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			r.Error = err.Error()
		} else {
			r.Fill(res)
		}
		e.rowsComputed.Add(1)
		out.put(i, r)
		return nil
	})
}

// rowFor starts the result row of one unit with its cell identity.
func rowFor(grid Grid, u Unit) Result {
	g, m := grid.Corpus[u.Loop], grid.Machines[u.Machine]
	return Result{
		Loop:    g.LoopName,
		Machine: m.Name(),
		Model:   u.Model.String(),
		Regs:    u.Regs,
		Trips:   g.TripsOrOne(),
	}
}

// reorder serializes out-of-order results back into index order: put
// buffers each finished row under its original index and releases the
// longest emittable prefix. Emit calls happen under the lock, so they
// are serialized exactly like the pre-buffer contract promised.
type reorder struct {
	mu      sync.Mutex
	pending map[int]Result
	next    int
	emit    func(Result)
}

func newReorder(emit func(Result)) *reorder {
	return &reorder{pending: map[int]Result{}, emit: emit}
}

func (o *reorder) put(i int, r Result) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.pending[i] = r
	for {
		ready, ok := o.pending[o.next]
		if !ok {
			return
		}
		delete(o.pending, o.next)
		o.next++
		o.emit(ready)
	}
}

// Rows runs the grid and collects the emitted stream, in plan order —
// the convenience form consumers that aggregate (rather than stream)
// use, e.g. the register-sensitivity curve builder.
func (e *Engine) Rows(ctx context.Context, grid Grid) ([]Result, error) {
	var out []Result
	if err := e.Sweep(ctx, grid, func(r Result) { out = append(out, r) }); err != nil {
		return nil, err
	}
	return out, nil
}
