package sweep

import (
	"context"
	"sync"
	"testing"

	"ncdrf/internal/core"
	"ncdrf/internal/loops"
	"ncdrf/internal/machine"
)

// TestStageStatsDuringFrontierSweep is the regression test for the
// frontier-executor counter audit: rowsComputed/rowsImplied are bumped
// from pool workers while stats consumers (the -progress reporter) read
// them mid-flight. Running a reader against a live frontier sweep pins
// the counters as race-free — `go test -race` fails here if either side
// ever regresses to plain ints.
func TestStageStatsDuringFrontierSweep(t *testing.T) {
	eng := New(4)
	grid := Grid{
		Corpus:   loops.Kernels()[:6],
		Machines: []*machine.Config{machine.Eval(3)},
		Models:   []core.Model{core.Unified},
		Regs:     []int{4, 8, 16, 32, 64, 128},
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				eng.StageStats() // concurrent read of the row counters
			}
		}
	}()

	var rows uint64
	err := eng.SweepFrontier(context.Background(), grid, func(Result) { rows++ }, FrontierOptions{})
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}

	st := eng.StageStats()
	if got := st.RowsComputed + st.RowsImplied; got != rows || rows != uint64(len(grid.Plan())) {
		t.Fatalf("counters drifted: computed %d + implied %d != emitted %d (plan %d)",
			st.RowsComputed, st.RowsImplied, rows, len(grid.Plan()))
	}
}
