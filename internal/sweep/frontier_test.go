package sweep

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"

	"ncdrf/internal/core"
	"ncdrf/internal/loops"
	"ncdrf/internal/machine"
)

// syntheticSeries builds a probe function over a synthetic series: dense
// is the row the dense run would produce at each axis index. It counts
// probe calls, so tests can pin the O(log n) contract.
func syntheticSeries(axis []int, dense []Result) (probe func(i int) (Result, error), calls *int) {
	n := 0
	return func(i int) (Result, error) {
		n++
		return dense[i], nil
	}, &n
}

// spillySeries is a well-behaved synthetic series over axis: cells below
// fitAt spill (with spill traffic shrinking as regs grow), cells at and
// above it fit with identical metrics.
func spillySeries(axis []int, fitAt int) []Result {
	rows := make([]Result, len(axis))
	for i, regs := range axis {
		r := Result{Loop: "syn", Machine: "m", Model: "unified", Regs: regs, II: 4, Trips: 10, MemOps: 2}
		if regs < fitAt {
			r.Spilled = (fitAt - regs) / 4
			r.MemOps = 2 + r.Spilled
			r.Rounds = 2
		}
		rows[i] = r
	}
	return rows
}

// TestFrontierSeriesPrunesMonotone pins the happy path: a monotone
// series is resolved with at most ceil(log2 n)+1 probes beyond its
// spill region, every cell above the boundary is implied from the
// boundary row, and the emitted rows equal the dense rows exactly.
func TestFrontierSeriesPrunesMonotone(t *testing.T) {
	axis := []int{8, 16, 24, 32, 40, 48, 56, 64, 72, 80, 88, 96, 104, 112, 120, 128}
	dense := spillySeries(axis, 24)
	probe, calls := syntheticSeries(axis, dense)

	rows, implied, violation, err := frontierSeries(axis, probe)
	if err != nil || violation != "" {
		t.Fatalf("monotone series: err=%v violation=%q", err, violation)
	}
	for i := range rows {
		if rows[i] != dense[i] {
			t.Fatalf("cell %d: frontier row %+v != dense row %+v", i, rows[i], dense[i])
		}
	}
	boundary := 2 // axis index of 24 regs, the first fit
	spillRegion := boundary
	maxProbes := spillRegion + int(math.Ceil(math.Log2(float64(len(axis))))) + 1
	if *calls > maxProbes {
		t.Fatalf("monotone series cost %d probes, want <= spill region + log2 axis + 1 = %d", *calls, maxProbes)
	}
	nimplied := 0
	for i, im := range implied {
		if im {
			nimplied++
			if i <= boundary {
				t.Fatalf("cell %d at/below the boundary marked implied", i)
			}
		}
	}
	if want := len(axis) - *calls; nimplied != want {
		t.Fatalf("implied %d rows, want every unprobed cell = %d", nimplied, want)
	}
}

// TestFrontierSeriesAllSpillComputesDense pins that a series that never
// fits degenerates gracefully: the search walks to the top, every cell
// is computed, nothing is implied, nothing is flagged.
func TestFrontierSeriesAllSpillComputesDense(t *testing.T) {
	axis := []int{8, 16, 24, 32}
	dense := spillySeries(axis, 1000)
	probe, calls := syntheticSeries(axis, dense)
	rows, implied, violation, err := frontierSeries(axis, probe)
	if err != nil || violation != "" {
		t.Fatalf("all-spill series: err=%v violation=%q", err, violation)
	}
	if *calls != len(axis) {
		t.Fatalf("all-spill series computed %d cells, want all %d", *calls, len(axis))
	}
	for i := range rows {
		if rows[i] != dense[i] || implied[i] {
			t.Fatalf("cell %d: row %+v implied=%v", i, rows[i], implied[i])
		}
	}
}

// TestFrontierSeriesNonMonotoneFitFallsBack is the constructed
// counterexample of the monotonicity theorem: a series that fits at a
// small size, spills again above it, and fits once more. The guard must
// flag the series and fall back to dense evaluation — every emitted row
// computed, byte-equal to the dense rows, none implied.
func TestFrontierSeriesNonMonotoneFitFallsBack(t *testing.T) {
	axis := []int{8, 16, 24, 32, 40, 48, 56, 64}
	dense := spillySeries(axis, 56)
	// The dip: a spurious fit at 16 regs below the true boundary.
	dense[1].Spilled = 0
	dense[1].MemOps = 2
	dense[1].Rounds = 0

	probe, _ := syntheticSeries(axis, dense)
	rows, implied, violation, err := frontierSeries(axis, probe)
	if err != nil {
		t.Fatal(err)
	}
	if violation == "" {
		t.Fatal("non-monotone fit dip not flagged")
	}
	if !strings.Contains(violation, "not monotone") {
		t.Fatalf("violation %q does not describe the non-monotone fit", violation)
	}
	for i := range rows {
		if rows[i] != dense[i] {
			t.Fatalf("fallback cell %d: row %+v != dense %+v", i, rows[i], dense[i])
		}
		if implied[i] {
			t.Fatalf("fallback cell %d still implied", i)
		}
	}
}

// TestFrontierSeriesBudgetDependentFitFallsBack is the second
// counterexample: every cell fits, but the fit rows are not
// budget-independent (metrics drift with regs). Extrapolating any one
// of them would fabricate wrong rows, so the guard must flag the series
// and the fallback must reproduce the dense rows.
func TestFrontierSeriesBudgetDependentFitFallsBack(t *testing.T) {
	axis := []int{8, 16, 24, 32, 40, 48, 56, 64}
	dense := make([]Result, len(axis))
	for i, regs := range axis {
		// Fit everywhere, but MemOps varies with the budget — violating
		// the budget-independence of fit results.
		dense[i] = Result{Loop: "syn", Machine: "m", Model: "swapped", Regs: regs,
			II: 3, Trips: 5, MemOps: 2 + i%2}
	}
	probe, _ := syntheticSeries(axis, dense)
	rows, implied, violation, err := frontierSeries(axis, probe)
	if err != nil {
		t.Fatal(err)
	}
	if violation == "" {
		t.Fatal("budget-dependent fit rows not flagged")
	}
	for i := range rows {
		if rows[i] != dense[i] {
			t.Fatalf("fallback cell %d: row %+v != dense %+v", i, rows[i], dense[i])
		}
		if implied[i] {
			t.Fatalf("fallback cell %d still implied", i)
		}
	}
}

// TestFrontierSeriesSpillTrafficIncreaseFallsBack covers the guard the
// issue names directly: spill ops increasing with more registers inside
// the spill region.
func TestFrontierSeriesSpillTrafficIncreaseFallsBack(t *testing.T) {
	axis := []int{8, 16, 24, 32, 40, 48, 56, 64}
	dense := spillySeries(axis, 56)
	dense[3].Spilled = dense[2].Spilled + 5 // spill grows 24 -> 32 regs
	dense[3].MemOps = 2 + dense[3].Spilled
	probe, _ := syntheticSeries(axis, dense)
	rows, implied, violation, err := frontierSeries(axis, probe)
	if err != nil {
		t.Fatal(err)
	}
	if violation == "" || !strings.Contains(violation, "spill traffic increases") {
		t.Fatalf("violation %q does not describe the spill-traffic increase", violation)
	}
	for i := range rows {
		if rows[i] != dense[i] || implied[i] {
			t.Fatalf("fallback cell %d: row %+v implied=%v", i, rows[i], implied[i])
		}
	}
}

// TestValidateFrontierAxis pins the axis contract: only finite,
// strictly ascending axes have the dominance structure the search uses.
func TestValidateFrontierAxis(t *testing.T) {
	for _, tc := range []struct {
		axis []int
		ok   bool
	}{
		{[]int{8, 16, 32}, true},
		{[]int{7}, true},
		{nil, false},
		{[]int{0, 8}, false},      // unlimited has no boundary
		{[]int{8, 8, 16}, false},  // duplicate
		{[]int{16, 8}, false},     // descending
		{[]int{8, 16, -1}, false}, // negative
	} {
		err := validateFrontierAxis(tc.axis)
		if (err == nil) != tc.ok {
			t.Errorf("validateFrontierAxis(%v) = %v, want ok=%v", tc.axis, err, tc.ok)
		}
	}

	eng := New(2)
	grid := Grid{
		Corpus:   loops.Kernels()[:1],
		Machines: []*machine.Config{machine.Eval(3)},
		Models:   []core.Model{core.Unified},
		Regs:     []int{32, 16},
	}
	err := eng.SweepFrontier(context.Background(), grid, func(Result) {
		t.Fatal("emitted a row from an invalid frontier axis")
	}, FrontierOptions{})
	if err == nil || !strings.Contains(err.Error(), "ascending") {
		t.Fatalf("descending axis: err = %v", err)
	}
}

// TestSweepFrontierMatchesDenseStream is the byte-level trust contract
// over real kernels: the frontier stream must be identical to the dense
// stream — including grids whose tight budgets make cells fail — while
// computing strictly fewer evaluations and implying the difference.
func TestSweepFrontierMatchesDenseStream(t *testing.T) {
	kernels := loops.Kernels()
	axis := []int{4, 8, 12, 16, 20, 24, 28, 32, 40, 48, 56, 64, 80, 96, 112, 128}
	grids := []Grid{
		{
			Corpus:   kernels[:12],
			Machines: []*machine.Config{machine.Eval(3), machine.Eval(6)},
			Models:   core.Models[:],
			Regs:     axis,
		},
		{
			// Tight budgets: some cells fail to converge, exercising error
			// rows inside the spill region.
			Corpus:   kernels[12:20],
			Machines: []*machine.Config{machine.Eval(6)},
			Models:   []core.Model{core.Unified, core.Swapped},
			Regs:     []int{2, 4, 6, 8, 12, 16, 24, 32, 48, 64},
		},
	}
	for gi, grid := range grids {
		denseEng, frontEng := New(4), New(4)
		dense := encodeStream(t, func(emit func(Result)) error {
			return denseEng.Sweep(context.Background(), grid, emit)
		})
		var violations []FrontierViolation
		frontier := encodeStream(t, func(emit func(Result)) error {
			return frontEng.SweepFrontier(context.Background(), grid, emit, FrontierOptions{
				OnViolation: func(v FrontierViolation) { violations = append(violations, v) },
			})
		})
		if !bytes.Equal(dense, frontier) {
			t.Fatalf("grid %d: frontier stream differs from dense stream\ndense:\n%s\nfrontier:\n%s",
				gi, dense, frontier)
		}
		for _, v := range violations {
			t.Errorf("grid %d: unexpected non-monotone series %s/%s (%s): %s",
				gi, v.Loop, v.Model, v.Machine, v.Detail)
		}

		dst, fst := denseEng.StageStats(), frontEng.StageStats()
		if fst.Eval.Misses >= dst.Eval.Misses {
			t.Fatalf("grid %d: frontier computed %d evals, dense %d — no pruning", gi, fst.Eval.Misses, dst.Eval.Misses)
		}
		if fst.RowsImplied == 0 {
			t.Fatalf("grid %d: frontier implied no rows", gi)
		}
		if fst.RowsComputed+fst.RowsImplied != uint64(len(grid.Plan())) {
			t.Fatalf("grid %d: computed %d + implied %d rows != plan %d",
				gi, fst.RowsComputed, fst.RowsImplied, len(grid.Plan()))
		}
		if dst.RowsImplied != 0 || dst.RowsComputed != uint64(len(grid.Plan())) {
			t.Fatalf("grid %d: dense run counted %d computed, %d implied rows",
				gi, dst.RowsComputed, dst.RowsImplied)
		}
	}
}

// TestSweepFrontierEvalBound pins the headline complexity claim: over
// the full kernels corpus, the computed-eval counter stays within
// series x (ceil(log2 axis) + C) where C bounds the corpus' spill
// regions — far below the dense series x axis.
func TestSweepFrontierEvalBound(t *testing.T) {
	kernels := loops.Kernels()
	var axis []int
	for r := 8; r <= 128; r += 4 {
		axis = append(axis, r)
	}
	grid := Grid{
		Corpus:   kernels,
		Machines: []*machine.Config{machine.Eval(3), machine.Eval(6)},
		Models:   core.Models[:],
		Regs:     axis,
	}
	eng := New(0)
	rows := 0
	if err := eng.SweepFrontier(context.Background(), grid, func(Result) { rows++ }, FrontierOptions{}); err != nil {
		t.Fatal(err)
	}
	if want := len(grid.Plan()); rows != want {
		t.Fatalf("emitted %d rows, want %d", rows, want)
	}
	series := len(kernels) * len(grid.Machines) * len(grid.Models)
	logAxis := int(math.Ceil(math.Log2(float64(len(axis)))))
	const spillC = 8 // generous bound on the corpus' per-series spill regions
	bound := uint64(series * (logAxis + spillC))
	st := eng.StageStats()
	if st.Eval.Misses > bound {
		t.Fatalf("frontier computed %d evals over %d series x %d axis points, want <= series x (log2 axis + %d) = %d",
			st.Eval.Misses, series, len(axis), spillC, bound)
	}
	denseEvals := uint64(series * len(axis))
	t.Logf("frontier: %d computed evals vs %d dense cells (%.1fx reduction), %d implied rows",
		st.Eval.Misses, denseEvals, float64(denseEvals)/float64(st.Eval.Misses), st.RowsImplied)
}

// TestFrontierSeriesPartition pins seriesOf: every planned unit lands in
// exactly one series, in plan order, keyed by (loop, machine, model).
func TestFrontierSeriesPartition(t *testing.T) {
	grid := Grid{
		Corpus:   loops.Kernels()[:3],
		Machines: []*machine.Config{machine.Eval(3), machine.Eval(6)},
		Models:   []core.Model{core.Ideal, core.Unified},
		Regs:     []int{8, 16, 32},
	}
	units := grid.Plan()
	series := seriesOf(units)
	if want := 3 * 2 * 2; len(series) != want {
		t.Fatalf("partitioned into %d series, want %d", len(series), want)
	}
	covered := 0
	for _, s := range series {
		if len(s.axis) != len(grid.Regs) {
			t.Fatalf("series (%d,%d,%v) has %d axis cells, want %d", s.loop, s.machine, s.model, len(s.axis), len(grid.Regs))
		}
		for i, pi := range s.planIdx {
			u := units[pi]
			if u.Loop != s.loop || u.Machine != s.machine || u.Model != s.model || u.Regs != s.axis[i] {
				t.Fatalf("series cell %d mismatched unit %+v", i, u)
			}
			if i > 0 && s.axis[i] <= s.axis[i-1] {
				t.Fatalf("series axis not ascending: %v", s.axis)
			}
			covered++
		}
	}
	if covered != len(units) {
		t.Fatalf("series cover %d of %d units", covered, len(units))
	}
}
