package sweep

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestFlightPanicDoesNotDeadlock is the regression test for the PR 4
// panic-path fix: a compute that panics (e.g. the stale-digest invariant
// panic in cache.go) must close the slot and publish a real error, so
// concurrent waiters and future callers for the same key never block on
// a dead slot. Run under -race (CI does) to also catch unsynchronized
// slot access on the panic path.
func TestFlightPanicDoesNotDeadlock(t *testing.T) {
	f := newFlight[string, int](nil) // retain-all, like the schedule stage
	started := make(chan struct{})
	release := make(chan struct{})

	computed := make(chan any, 1)
	go func() {
		defer func() { computed <- recover() }()
		f.do(context.Background(), "k", func() (int, error) {
			close(started)
			<-release
			panic("boom")
		})
	}()

	// A concurrent waiter joins the in-flight computation before it
	// panics.
	<-started
	waited := make(chan error, 1)
	go func() {
		_, err := f.do(context.Background(), "k", func() (int, error) {
			t.Error("waiter recomputed a retained key")
			return 0, nil
		})
		waited <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter enter its wait
	close(release)

	if r := <-computed; r == nil {
		t.Fatal("panic was swallowed instead of re-raised")
	}
	select {
	case err := <-waited:
		if err == nil || !strings.Contains(err.Error(), "panicked") {
			t.Fatalf("waiter error = %v, want panic-derived error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("concurrent waiter deadlocked on the panicked slot")
	}

	// A future caller shares the retained failure instead of blocking
	// (retain-all policy: the panic is deterministic).
	done := make(chan error, 1)
	go func() {
		_, err := f.do(context.Background(), "k", func() (int, error) { return 7, nil })
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "panicked") {
			t.Fatalf("future caller error = %v, want retained panic error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("future caller deadlocked on the panicked slot")
	}
}

// TestFlightPanicDroppedSlotRecomputes checks the panic path under a
// drop-everything retention policy: the dead slot is removed, so the
// next caller recomputes and can succeed.
func TestFlightPanicDroppedSlotRecomputes(t *testing.T) {
	f := newFlight[string, int](func(error) bool { return false })
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic not re-raised")
			}
		}()
		f.do(context.Background(), "k", func() (int, error) { panic("boom") })
	}()
	if n := f.len(); n != 0 {
		t.Fatalf("dead slot retained: %d entries", n)
	}
	v, err := f.do(context.Background(), "k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("recompute after panic = %v, %v", v, err)
	}
}

// TestFlightPanicConcurrentKeys hammers one panicking key from many
// goroutines to shake out races between settle, waiters and re-panics.
func TestFlightPanicConcurrentKeys(t *testing.T) {
	f := newFlight[string, int](retainDeterministic)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { recover() }() // the computing goroutine re-panics
			_, err := f.do(context.Background(), "k", func() (int, error) { panic("boom") })
			if err != nil && !strings.Contains(err.Error(), "panicked") && !errors.Is(err, context.Canceled) {
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("concurrent panicking callers deadlocked")
	}
}
