package sweep

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"ncdrf/internal/pipeline"
)

// Shard output files make one sweep grid executable as n cooperating
// processes: `ncdrf sweep -shard i/n -o file` writes one ShardHeader
// line followed by that shard's result rows, and `ncdrf merge` splices
// the n files back into exactly the stream an unsharded run would have
// produced. The header carries everything merge needs to refuse a wrong
// mix: the shard coordinates, the expected row count, the grid's plan
// digest, and the file-format version.

// ShardFormatVersion stamps the shard-file layout (header shape + row
// codec). Bump it when either changes; merge then rejects old files
// instead of misreading them.
const ShardFormatVersion = 1

// ShardHeader is the first line of a shard output file. The
// "ncdrf_shard" key doubles as the file-type marker: result rows never
// carry it, so a row stream and a shard file cannot be confused.
type ShardHeader struct {
	// Shard and Of are the 1-based shard coordinates: shard Shard of Of.
	Shard int `json:"ncdrf_shard"`
	Of    int `json:"of"`
	// Units is the number of result rows the file must contain.
	Units int `json:"units"`
	// Grid is the producing grid's PlanDigest.
	Grid string `json:"grid"`
	// Format is ShardFormatVersion at write time.
	Format int `json:"format"`
}

// ShardFile is one parsed shard output: its header and its rows, in
// shard (= plan-subsequence) order.
type ShardFile struct {
	Header ShardHeader
	Rows   []pipeline.Row
}

// WriteShardHeader writes the header line that opens a shard file.
func WriteShardHeader(w io.Writer, h ShardHeader) error {
	return json.NewEncoder(w).Encode(h)
}

// ReadShardFile parses one shard output file strictly: a header line,
// then exactly Header.Units result rows, then EOF. A truncated shard
// (interrupted run) or an over-long one (concatenated streams) is
// rejected here, before merge can assemble a silently incomplete grid.
func ReadShardFile(r io.Reader) (ShardFile, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return ShardFile{}, err
		}
		return ShardFile{}, fmt.Errorf("empty file (not a shard output)")
	}
	line := sc.Bytes()
	if !bytes.Contains(line, []byte(`"ncdrf_shard"`)) {
		return ShardFile{}, fmt.Errorf("missing shard header (was this written with -shard?)")
	}
	// Decode the header leniently first: a future format is allowed to
	// add fields, and the version-mismatch message must win over an
	// unknown-field error for exactly that case.
	var f ShardFile
	if err := json.Unmarshal(line, &f.Header); err != nil {
		return ShardFile{}, fmt.Errorf("bad shard header: %w", err)
	}
	h := f.Header
	if h.Format != ShardFormatVersion {
		return ShardFile{}, fmt.Errorf("shard format v%d, this binary reads v%d", h.Format, ShardFormatVersion)
	}
	// Same-version headers are held to the strict contract.
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f.Header); err != nil {
		return ShardFile{}, fmt.Errorf("bad shard header: %w", err)
	}
	if h.Of < 1 || h.Shard < 1 || h.Shard > h.Of || h.Units < 0 {
		return ShardFile{}, fmt.Errorf("implausible shard header: %+v", h)
	}
	for sc.Scan() {
		row, err := pipeline.DecodeRow(sc.Bytes())
		if err != nil {
			return ShardFile{}, fmt.Errorf("row %d: %w", len(f.Rows)+1, err)
		}
		f.Rows = append(f.Rows, row)
	}
	if err := sc.Err(); err != nil {
		return ShardFile{}, err
	}
	if len(f.Rows) != h.Units {
		return ShardFile{}, fmt.Errorf("shard %d/%d holds %d rows, header promises %d (interrupted run?)",
			h.Shard, h.Of, len(f.Rows), h.Units)
	}
	return f, nil
}

// MergeShards validates a complete shard set and writes the merged row
// stream to w: every shard of one n-way split of one grid, each exactly
// once, spliced in shard order — byte-identical to the stream an
// unsharded run of the same grid would emit (shards are contiguous
// partitions of the plan, and rows re-encode canonically). The shards
// may be given in any order.
func MergeShards(w io.Writer, shards []ShardFile) error {
	if len(shards) == 0 {
		return fmt.Errorf("sweep: no shards to merge")
	}
	first := shards[0].Header
	seen := map[int]bool{}
	for _, s := range shards {
		h := s.Header
		if h.Of != first.Of {
			return fmt.Errorf("sweep: mixed shard sets: %d-way and %d-way", first.Of, h.Of)
		}
		if h.Grid != first.Grid {
			return fmt.Errorf("sweep: shard %d/%d is from a different grid (digest %s, want %s)",
				h.Shard, h.Of, h.Grid, first.Grid)
		}
		if seen[h.Shard] {
			return fmt.Errorf("sweep: shard %d/%d given twice", h.Shard, h.Of)
		}
		seen[h.Shard] = true
	}
	if len(shards) != first.Of {
		missing := []int{}
		for i := 1; i <= first.Of; i++ {
			if !seen[i] {
				missing = append(missing, i)
			}
		}
		return fmt.Errorf("sweep: incomplete shard set: have %d of %d (missing %v)", len(shards), first.Of, missing)
	}
	ordered := append([]ShardFile(nil), shards...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Header.Shard < ordered[j].Header.Shard })
	for _, s := range ordered {
		for _, row := range s.Rows {
			if err := pipeline.EncodeRow(w, row); err != nil {
				return err
			}
		}
	}
	return nil
}
