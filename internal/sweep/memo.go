package sweep

import (
	"context"
	"crypto/sha256"
	"encoding/hex"

	"ncdrf/internal/ddg"
	"ncdrf/internal/machine"
)

// Memo returns the value for key, computing it with fn at most once per
// engine while it succeeds. It is how runners share entire result sets —
// e.g. Figures 6 and 7 consume the same register sweep, so the second
// figure's sweep is a single map lookup. Concurrent callers of the same
// key block until the first computation finishes and share its result.
//
// Memo runs on the same single-flight core as the stage caches, with
// the eval stage's retention policy: deterministic failures are retained
// and shared (re-running a whole result set to hit the identical error
// would waste a corpus-sized computation per waiter), while
// caller-dependent context-cancellation failures are dropped — a waiter
// that observes one retries while its own context is live, and later
// callers recompute.
func (e *Engine) Memo(ctx context.Context, key string, fn func() (any, error)) (any, error) {
	return e.memos.do(ctx, key, fn)
}

// CorpusKey derives a stable Memo key for a computation over (corpus,
// machine): the prefix namespaces the computation, and the corpus
// contributes the canonical digest of every graph, so two corpora with
// identical content share keys regardless of slice identity.
func (e *Engine) CorpusKey(prefix string, corpus []*ddg.Graph, m *machine.Config) string {
	h := sha256.New()
	h.Write([]byte(prefix))
	h.Write([]byte{0})
	h.Write([]byte(m.Name()))
	h.Write([]byte{0})
	for _, g := range corpus {
		d := e.cache.digestOf(g)
		h.Write(d[:])
	}
	return prefix + "/" + m.Name() + "/" + hex.EncodeToString(h.Sum(nil)[:16])
}
