package sweep

import (
	"crypto/sha256"
	"encoding/hex"

	"ncdrf/internal/ddg"
	"ncdrf/internal/machine"
)

// memoEntry is a single-flight slot for a whole result set.
type memoEntry struct {
	ready chan struct{}
	val   any
	err   error
}

// Memo returns the value for key, computing it with fn at most once per
// engine while it succeeds. It is how runners share entire result sets —
// e.g. Figures 6 and 7 consume the same register sweep, so the second
// figure's sweep is a single map lookup. Concurrent callers of the same
// key block until the first computation finishes and share its result.
//
// Unlike the schedule cache, failed computations are NOT retained: fn may
// fail for caller-dependent reasons (context cancellation), so the next
// caller recomputes. Waiters that observed the failure receive the error.
func (e *Engine) Memo(key string, fn func() (any, error)) (any, error) {
	e.memoMu.Lock()
	if e.memos == nil {
		e.memos = map[string]*memoEntry{}
	}
	if en, ok := e.memos[key]; ok {
		e.memoMu.Unlock()
		<-en.ready
		return en.val, en.err
	}
	en := &memoEntry{ready: make(chan struct{})}
	e.memos[key] = en
	e.memoMu.Unlock()

	en.val, en.err = fn()
	if en.err != nil {
		e.memoMu.Lock()
		delete(e.memos, key)
		e.memoMu.Unlock()
	}
	close(en.ready)
	return en.val, en.err
}

// CorpusKey derives a stable Memo key for a computation over (corpus,
// machine): the prefix namespaces the computation, and the corpus
// contributes the canonical digest of every graph, so two corpora with
// identical content share keys regardless of slice identity.
func (e *Engine) CorpusKey(prefix string, corpus []*ddg.Graph, m *machine.Config) string {
	h := sha256.New()
	h.Write([]byte(prefix))
	h.Write([]byte{0})
	h.Write([]byte(m.Name()))
	h.Write([]byte{0})
	for _, g := range corpus {
		d := e.cache.digestOf(g)
		h.Write(d[:])
	}
	return prefix + "/" + m.Name() + "/" + hex.EncodeToString(h.Sum(nil)[:16])
}
