package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"ncdrf/internal/core"
	"ncdrf/internal/loops"
	"ncdrf/internal/machine"
)

// encodeStream renders an emitted result stream the way cmd/ncdrf does,
// so "byte-identical" below means what it means to `ncdrf merge`.
func encodeStream(t *testing.T, run func(emit func(Result)) error) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := run(func(r Result) {
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBaseMajorMatchesFlatStream is the equivalence property of the
// two-level executor: over randomized grids and randomized shard
// splits, the base-major path emits a stream byte-identical to the flat
// unit-at-a-time reference path. Run under -race in CI, this also
// exercises the group leader / reorder-buffer synchronization.
func TestBaseMajorMatchesFlatStream(t *testing.T) {
	kernels := loops.Kernels()
	machinePool := []*machine.Config{
		machine.Eval(3), machine.Eval(6), machine.PxLy(1, 3), machine.PxLy(2, 6),
	}
	modelPool := []core.Model{core.Ideal, core.Unified, core.Partitioned, core.Swapped}
	regsPool := []int{0, 8, 12, 16, 24, 32, 64}

	rng := rand.New(rand.NewSource(1995))
	pick := func(n, max int) []int {
		out := rng.Perm(max)[:n]
		return out
	}
	ctx := context.Background()
	flatEng, groupEng := New(4), New(4)
	for trial := 0; trial < 8; trial++ {
		var grid Grid
		for _, ki := range pick(1+rng.Intn(5), len(kernels)) {
			grid.Corpus = append(grid.Corpus, kernels[ki])
		}
		for _, mi := range pick(1+rng.Intn(len(machinePool)), len(machinePool)) {
			grid.Machines = append(grid.Machines, machinePool[mi])
		}
		for _, mo := range pick(1+rng.Intn(len(modelPool)), len(modelPool)) {
			grid.Models = append(grid.Models, modelPool[mo])
		}
		for n := rng.Intn(4); n >= 0; n-- {
			grid.Regs = append(grid.Regs, regsPool[rng.Intn(len(regsPool))])
		}
		units := grid.Plan()

		flat := encodeStream(t, func(emit func(Result)) error {
			return flatEng.sweepUnitsFlat(ctx, grid, units, emit)
		})
		grouped := encodeStream(t, func(emit func(Result)) error {
			return groupEng.SweepUnits(ctx, grid, units, emit)
		})
		if !bytes.Equal(flat, grouped) {
			t.Fatalf("trial %d: base-major stream differs from flat stream\nflat:\n%s\ngrouped:\n%s",
				trial, flat, grouped)
		}

		// Any shard split of the grouped path concatenates back into the
		// same stream: shards are contiguous plan slices and each shard
		// regroups only its own units.
		n := 1 + rng.Intn(4)
		var spliced []byte
		for i := 1; i <= n; i++ {
			shard, err := ShardOf(units, i, n)
			if err != nil {
				t.Fatal(err)
			}
			spliced = append(spliced, encodeStream(t, func(emit func(Result)) error {
				return groupEng.SweepUnits(ctx, grid, shard, emit)
			})...)
		}
		if !bytes.Equal(flat, spliced) {
			t.Fatalf("trial %d: %d-shard base-major streams do not splice into the flat stream", trial, n)
		}
	}
}

// TestBaseMajorOneBasePerGroup pins the stage-counter contract of the
// two-level plan: a dense register curve requests and computes the base
// stage exactly once per (loop, machine) group, and with a model that
// never spills the scheduler itself also runs exactly once per group.
func TestBaseMajorOneBasePerGroup(t *testing.T) {
	grid := Grid{
		Corpus:   loops.Kernels()[:6],
		Machines: []*machine.Config{machine.Eval(3), machine.Eval(6)},
		Models:   []core.Model{core.Ideal, core.Unified, core.Partitioned, core.Swapped},
		Regs:     []int{8, 16, 24, 32, 40, 48, 56, 64},
	}
	groups := len(grid.Corpus) * len(grid.Machines)
	if got := len(grid.Groups()); got != groups {
		t.Fatalf("grid partitions into %d groups, want %d", got, groups)
	}

	eng := New(0)
	var rows int
	if err := eng.Sweep(context.Background(), grid, func(r Result) { rows++ }); err != nil {
		t.Fatal(err)
	}
	if want := len(grid.Plan()); rows != want {
		t.Fatalf("emitted %d rows, want %d", rows, want)
	}
	st := eng.Cache().StageStats()
	if st.Base.Requests() != uint64(groups) || st.Base.Misses != uint64(groups) {
		t.Fatalf("base stage: %d requests, %d computed; want exactly one per group = %d",
			st.Base.Requests(), st.Base.Misses, groups)
	}
	// Spill rounds request fresh schedules (rewritten graphs), so the
	// schedule stage may exceed the group count on tight budgets — but
	// never fall below it, and an ideal-only sweep hits it exactly.
	if st.Schedule.Misses < uint64(groups) {
		t.Fatalf("schedule stage computed %d, want >= one per group = %d", st.Schedule.Misses, groups)
	}

	ideal := New(0)
	idealGrid := grid
	idealGrid.Models = []core.Model{core.Ideal}
	if err := ideal.Sweep(context.Background(), idealGrid, func(Result) {}); err != nil {
		t.Fatal(err)
	}
	if st := ideal.Cache().StageStats(); st.Schedule.Misses != uint64(groups) {
		t.Fatalf("ideal-only curve computed %d schedules, want loops x machines = %d",
			st.Schedule.Misses, groups)
	}
}

// TestSweepValidatesEmptyAxes pins the empty-axis contract: a grid with
// an empty dimension errors out naming the axis instead of silently
// emitting nothing.
func TestSweepValidatesEmptyAxes(t *testing.T) {
	full := testGrid()
	eng := New(2)
	cases := []struct {
		name string
		mut  func(*Grid)
	}{
		{"Corpus", func(g *Grid) { g.Corpus = nil }},
		{"Machines", func(g *Grid) { g.Machines = nil }},
		{"Models", func(g *Grid) { g.Models = nil }},
	}
	for _, tc := range cases {
		g := full
		tc.mut(&g)
		err := eng.Sweep(context.Background(), g, func(Result) {
			t.Fatalf("%s: emitted a row from an empty grid", tc.name)
		})
		if err == nil || !strings.Contains(err.Error(), tc.name) {
			t.Fatalf("empty %s axis: error %v does not name the axis", tc.name, err)
		}
	}
	// Empty Regs stays valid: Plan documents it as one unlimited file.
	g := full
	g.Regs = nil
	if err := eng.Sweep(context.Background(), g, func(Result) {}); err != nil {
		t.Fatalf("empty Regs must remain valid: %v", err)
	}
}

// TestGroupUnitsShardPartial pins that grouping a shard only covers the
// shard's units and preserves their order.
func TestGroupUnitsShardPartial(t *testing.T) {
	units := []Unit{
		{Loop: 0, Machine: 0, Model: core.Unified, Regs: 8},
		{Loop: 1, Machine: 0, Model: core.Unified, Regs: 8},
		{Loop: 0, Machine: 0, Model: core.Unified, Regs: 16},
		{Loop: 0, Machine: 1, Model: core.Unified, Regs: 8},
		{Loop: 1, Machine: 0, Model: core.Unified, Regs: 16},
	}
	groups := GroupUnits(units)
	if len(groups) != 3 {
		t.Fatalf("grouped into %d groups, want 3", len(groups))
	}
	seen := map[int]bool{}
	total := 0
	for _, g := range groups {
		last := -1
		for _, ui := range g.Units {
			u := units[ui]
			if u.Loop != g.Loop || u.Machine != g.Machine {
				t.Fatalf("unit %d (%+v) filed under group (%d,%d)", ui, u, g.Loop, g.Machine)
			}
			if ui <= last {
				t.Fatalf("group (%d,%d) units out of order: %v", g.Loop, g.Machine, g.Units)
			}
			last = ui
			if seen[ui] {
				t.Fatalf("unit %d in two groups", ui)
			}
			seen[ui] = true
			total++
		}
	}
	if total != len(units) {
		t.Fatalf("groups cover %d of %d units", total, len(units))
	}
}
