package sweep

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// flight is the one single-flight cache implementation shared by every
// stage of the engine (schedule, base, eval, and the whole-result-set
// memo). It guarantees that a value is computed at most once per key
// while the computation succeeds, shares in-flight computations between
// concurrent callers, and counts hits and misses uniformly.
//
// Error retention is the only axis on which the stages differ, so it is
// the one policy knob: retain decides whether a failed computation stays
// in the cache (deterministic failures — retrying an unschedulable
// problem cannot succeed) or is dropped so the next caller recomputes
// (caller-dependent failures, e.g. context cancellation). A nil retain
// retains every error.
//
// Cancellation semantics: ctx is consulted before starting a computation
// and while waiting on another caller's in-flight one; a computation once
// started always runs to completion and is never abandoned by its waiters
// observing cancellation elsewhere. A waiter that observes a dropped
// (non-retained) failure retries while its own context is live, so one
// cancelled caller cannot poison a concurrent one.
type flight[K comparable, V any] struct {
	// retain reports whether a computation error should stay cached.
	// nil retains all errors.
	retain func(error) bool

	mu    sync.Mutex
	slots map[K]*slot[V]

	// hits counts calls served by another caller's computation (shared
	// results and retained errors alike); misses counts computations
	// actually started. hits+misses is the number of observed requests,
	// except for calls that return early on their own cancelled context.
	hits, misses atomic.Uint64
}

// slot is one single-flight entry: the first requester computes, later
// requesters block on ready and share the outcome.
type slot[V any] struct {
	ready chan struct{}
	val   V
	err   error
}

// newFlight returns an empty flight with the given retention policy.
func newFlight[K comparable, V any](retain func(error) bool) *flight[K, V] {
	return &flight[K, V]{retain: retain, slots: map[K]*slot[V]{}}
}

// do returns the value for key, computing it with compute at most once
// concurrently and — while compute succeeds or fails deterministically —
// at most once ever. Callers that must never abandon a wait pass
// context.Background().
func (f *flight[K, V]) do(ctx context.Context, key K, compute func() (V, error)) (V, error) {
	var zero V
	for {
		f.mu.Lock()
		s, ok := f.slots[key]
		if !ok {
			break // this caller computes; f.mu still held
		}
		f.mu.Unlock()
		// Wait for the in-flight computation, but honour our own
		// context: a waiter must not be pinned to another caller's long
		// computation after its own work is cancelled.
		select {
		case <-s.ready:
		case <-ctx.Done():
			return zero, ctx.Err()
		}
		if s.err == nil {
			f.hits.Add(1)
			return s.val, nil
		}
		// The computation failed. A retained slot means the failure is
		// deterministic — share it. A dropped slot means it was
		// caller-dependent (e.g. the computing caller's cancellation):
		// retry with our own context if it is still live.
		f.mu.Lock()
		retained := f.slots[key] == s
		f.mu.Unlock()
		if retained {
			f.hits.Add(1)
			return zero, s.err
		}
		if err := ctx.Err(); err != nil {
			return zero, err
		}
	}
	if err := ctx.Err(); err != nil {
		f.mu.Unlock()
		return zero, err
	}
	s := &slot[V]{ready: make(chan struct{})}
	f.slots[key] = s
	f.mu.Unlock()
	f.misses.Add(1)

	f.run(key, s, compute)
	return s.val, s.err
}

// run executes compute into s and settles the slot. A panicking compute
// must not strand the slot: before PR 4 the slot stayed in the map with
// ready never closed, so every concurrent and future caller for the key
// blocked forever (e.g. the stale-digest invariant panic in cache.go).
// Now the panic is converted into the slot's error — settled under the
// normal retention policy, so waiters observe a real failure — and then
// re-raised on the computing goroutine, which is the one that owns the
// broken invariant.
func (f *flight[K, V]) run(key K, s *slot[V], compute func() (V, error)) {
	defer func() {
		if r := recover(); r != nil {
			s.err = fmt.Errorf("sweep: cached computation panicked: %v", r)
			f.settle(key, s)
			panic(r)
		}
	}()
	s.val, s.err = compute()
	f.settle(key, s)
}

// settle applies the retention policy and publishes the outcome. The
// drop-from-map must happen before close(ready): waiters distinguish
// retained from dropped failures by checking whether the slot is still
// mapped after ready closes.
func (f *flight[K, V]) settle(key K, s *slot[V]) {
	if s.err != nil && f.retain != nil && !f.retain(s.err) {
		f.mu.Lock()
		if f.slots[key] == s {
			delete(f.slots, key)
		}
		f.mu.Unlock()
	}
	close(s.ready)
}

// len returns the number of retained entries.
func (f *flight[K, V]) len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.slots)
}
