package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// maxReportedErrors bounds the number of per-item errors carried in the
// aggregate; beyond it only a count is reported. A corpus-wide failure
// mode (e.g. a machine with no memory ports) would otherwise produce
// hundreds of identical lines.
const maxReportedErrors = 16

// ForEach runs fn(i) for i in [0,n) on a bounded worker pool of the given
// width (<= 0 selects one worker per item, capped at n).
//
// Unlike a fail-fast pool, ForEach keeps going after an item fails and
// returns every per-item error, joined — until maxReportedErrors have
// accumulated, at which point a systemic failure is evident and the
// pool stops dispatching new items rather than burning the rest of the
// workload on errors nobody will see (in-flight items still finish and
// are counted), and the joined error reports how many items were never
// attempted. When ctx is cancelled the pool stops handing out new
// items and returns promptly — after at most the in-flight items
// finish — with an error satisfying errors.Is(err, ctx.Err()).
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 || workers > n {
		workers = n
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		errs    []error
		dropped int
		next    int
	)
	take := func() int {
		mu.Lock()
		defer mu.Unlock()
		if next >= n || len(errs) >= maxReportedErrors {
			return -1
		}
		i := next
		next++
		return i
	}
	fail := func(e error) {
		mu.Lock()
		defer mu.Unlock()
		if len(errs) < maxReportedErrors {
			errs = append(errs, e)
		} else {
			dropped++
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := take()
				if i < 0 {
					return
				}
				if e := fn(i); e != nil {
					fail(e)
				}
			}
		}()
	}
	wg.Wait()
	if dropped > 0 {
		errs = append(errs, fmt.Errorf("... and %d more errors", dropped))
	}
	// When dispatch stopped early — error cap hit or context cancelled —
	// the remainder of the workload was never attempted. Say so: the
	// dropped-errors line above only counts items that ran and failed,
	// and silently skipping the rest reads as if they had succeeded.
	if next < n {
		errs = append(errs, fmt.Errorf("%d of %d items not attempted", n-next, n))
	}
	if err := ctx.Err(); err != nil {
		errs = append([]error{err}, errs...)
	}
	return errors.Join(errs...)
}

// ForEach runs fn(i) for i in [0,n) on the engine's worker pool, with the
// pool's cancellation and error-aggregation semantics.
func (e *Engine) ForEach(ctx context.Context, n int, fn func(i int) error) error {
	return ForEach(ctx, n, e.workers, fn)
}
