package sweep

import (
	"context"
	"fmt"
	"sync"

	"ncdrf/internal/core"
)

// This file is the frontier executor: the dominance-pruned form of the
// dense sweep for register-sensitivity curves. The curve question —
// "at how many registers does each model stop spilling?" — has monotone
// structure the dense executor ignores: a model that fits (allocates
// without spill code) at R registers fits at every R' > R, and a
// fitting cell's result is the shared base artifact itself, independent
// of the budget. So per (loop, machine, model) series the executor
// binary-searches the fit boundary on the register axis (O(log axis)
// evaluations), computes the sub-boundary spill region densely (those
// cells genuinely vary with the budget), and synthesizes every
// unprobed cell above the boundary from its evidence cell — the
// boundary row with only Regs rewritten — instead of evaluating it.
//
// Implied rows are an executor-level synthesis, not a pipeline
// artifact: they never enter the eval cache or the persistent store
// (only computed evaluations persist), so content-addressed digests
// stay sound and a warm rerun re-derives them from dominance again.
//
// Trust is guarded, not assumed: every computed cell is checked against
// the dominance relations (fit monotone in regs, fit rows identical
// modulo Regs, spill ops non-increasing, failures never above
// successes), and a series whose observed results contradict them is
// logged through FrontierOptions.OnViolation and recomputed densely —
// the stream stays byte-identical to the dense run by construction for
// fallback series, and by the guarded theorem for pruned ones.

// FrontierViolation identifies one series whose computed cells
// contradicted the dominance assumptions; the engine fell back to dense
// evaluation for it, so its emitted rows are all computed, never
// implied.
type FrontierViolation struct {
	Loop, Machine, Model string
	// Detail describes the contradiction in terms of the observed cells.
	Detail string
}

// FrontierOptions are the observation hooks of SweepFrontier.
type FrontierOptions struct {
	// OnViolation receives each series that fell back to dense
	// evaluation. Calls are serialized by the engine. May be nil.
	OnViolation func(FrontierViolation)
	// Done is the per-computed-evaluation completion hook, called
	// (concurrently) as each cell finishes computing — implied cells
	// never fire it, which is how a progress reporter tells pruned work
	// from done work. May be nil.
	Done func()
}

// SweepFrontier runs the grid's full plan with dominance pruning and
// emits the same stream Sweep would, byte-identical and in plan order,
// while evaluating only O(log axis) cells per series beyond each
// series' spill region. It requires a finite, strictly ascending
// register axis — the shape `ncdrf curve -regs lo:hi:step` produces;
// axes containing 0 (unlimited) or unordered sizes have no dominance
// structure to exploit and must run dense. Sharding is dense-only for
// the same reason: a shard slices the plan mid-series, and a partial
// series cannot be searched.
func (e *Engine) SweepFrontier(ctx context.Context, grid Grid, emit func(Result), opts FrontierOptions) error {
	if err := grid.Validate(); err != nil {
		return err
	}
	if err := validateFrontierAxis(grid.Regs); err != nil {
		return err
	}
	units := grid.Plan()
	series := seriesOf(units)

	states := make([]groupShared, len(grid.Corpus)*len(grid.Machines))
	groupIdx := map[[2]int]*groupShared{}
	next := 0
	for _, s := range series {
		k := [2]int{s.loop, s.machine}
		if _, ok := groupIdx[k]; !ok {
			groupIdx[k] = &states[next]
			next++
		}
	}

	var vmu sync.Mutex
	report := func(v FrontierViolation) {
		if opts.OnViolation == nil {
			return
		}
		vmu.Lock()
		defer vmu.Unlock()
		opts.OnViolation(v)
	}

	out := newReorder(emit)
	return e.ForEach(ctx, len(series), func(si int) error {
		s := series[si]
		gs := groupIdx[[2]int{s.loop, s.machine}]
		gs.once.Do(func() {
			gs.base, gs.err = e.Base(ctx, grid.Corpus[s.loop], grid.Machines[s.machine])
		})
		if gs.err != nil {
			// The whole group failed to schedule: every cell of the series
			// carries the base error, exactly as the dense executor emits it.
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			for _, pi := range s.planIdx {
				r := rowFor(grid, units[pi])
				r.Error = gs.err.Error()
				e.rowsComputed.Add(1)
				if opts.Done != nil {
					opts.Done()
				}
				out.put(pi, r)
			}
			return nil
		}
		probe := func(i int) (Result, error) {
			u := units[s.planIdx[i]]
			r := rowFor(grid, u)
			res, err := e.EvaluateBase(ctx, gs.base, u.Model, u.Regs)
			if err != nil {
				if cerr := ctx.Err(); cerr != nil {
					return Result{}, cerr
				}
				r.Error = err.Error()
			} else {
				r.Fill(res)
			}
			e.rowsComputed.Add(1)
			if opts.Done != nil {
				opts.Done()
			}
			return r, nil
		}
		rows, implied, violation, err := frontierSeries(s.axis, probe)
		if err != nil {
			return err
		}
		if violation != "" {
			report(FrontierViolation{
				Loop:    grid.Corpus[s.loop].LoopName,
				Machine: grid.Machines[s.machine].Name(),
				Model:   s.model.String(),
				Detail:  violation,
			})
		}
		for i, pi := range s.planIdx {
			if implied[i] {
				e.rowsImplied.Add(1)
			}
			out.put(pi, rows[i])
		}
		return nil
	})
}

// validateFrontierAxis rejects axes without dominance structure. The
// error names the failing entries and points at dense evaluation.
func validateFrontierAxis(regs []int) error {
	if len(regs) == 0 {
		return fmt.Errorf("sweep: frontier needs an explicit register axis (an empty axis means one unlimited file; run dense)")
	}
	for i, r := range regs {
		if r < 1 {
			return fmt.Errorf("sweep: frontier needs finite register sizes, got %d (0 = unlimited has no fit boundary to search; run dense)", r)
		}
		if i > 0 && r <= regs[i-1] {
			return fmt.Errorf("sweep: frontier needs a strictly ascending register axis, got %d after %d (dominance is defined along ascending sizes; run dense)", r, regs[i-1])
		}
	}
	return nil
}

// frontierUnits is one search series: every planned cell sharing a
// (loop, machine, model) triple, in ascending-regs (= plan) order.
type frontierUnits struct {
	loop, machine int
	model         core.Model
	// axis[i] is the register size of the series' i-th cell; planIdx[i]
	// its index in the expanded plan (the emission slot).
	axis    []int
	planIdx []int
}

// seriesOf partitions a full plan into frontier series, ordered by
// first appearance. Within a plan, a series' units appear in axis
// order, because Plan enumerates regs in grid order and the frontier
// axis is validated strictly ascending.
func seriesOf(units []Unit) []frontierUnits {
	type skey struct {
		loop, machine int
		model         core.Model
	}
	index := map[skey]int{}
	var series []frontierUnits
	for pi, u := range units {
		k := skey{u.Loop, u.Machine, u.Model}
		si, ok := index[k]
		if !ok {
			si = len(series)
			index[k] = si
			series = append(series, frontierUnits{loop: u.Loop, machine: u.Machine, model: u.Model})
		}
		series[si].axis = append(series[si].axis, u.Regs)
		series[si].planIdx = append(series[si].planIdx, pi)
	}
	return series
}

// fitRow reports whether a result row is a "fit" cell: compiled without
// any spill code. Fit cells are the dominance-implied region — a
// fitting evaluation returns the shared base artifact untouched, so its
// metrics are independent of the register budget.
func fitRow(r Result) bool { return r.Error == "" && r.Spilled == 0 }

// impliedFrom synthesizes the dominance-implied row of an axis cell
// from its evidence cell: the evidence row with only the register
// budget rewritten. The synthesized row never touches the eval cache or
// the persistent store.
func impliedFrom(evidence Result, regs int) Result {
	evidence.Regs = regs
	return evidence
}

// equalModuloRegs compares two rows ignoring the register budget — the
// exact relation dominance implies between fit cells of one series.
func equalModuloRegs(a, b Result) bool {
	a.Regs, b.Regs = 0, 0
	return a == b
}

// frontierSeries evaluates one series over a strictly ascending
// register axis: binary-search the smallest fit index (O(log n)
// probes), compute the spill region below it densely, imply the rest
// from the boundary row, and verify every computed cell against the
// dominance relations. probe(i) evaluates axis cell i; a probe error
// (cancellation) aborts the series. On a violation the series is
// recomputed densely — already-probed cells are cache hits — and the
// returned rows are all computed, with the violation described.
func frontierSeries(axis []int, probe func(i int) (Result, error)) (rows []Result, implied []bool, violation string, err error) {
	n := len(axis)
	rows = make([]Result, n)
	computed := make([]bool, n)
	eval := func(i int) (Result, error) {
		if !computed[i] {
			r, err := probe(i)
			if err != nil {
				return Result{}, err
			}
			rows[i] = r
			computed[i] = true
		}
		return rows[i], nil
	}

	// Binary search the smallest fit index. The loop maintains the
	// sort.Search invariant — every probe below lo was non-fit, every
	// probe at or above hi was fit — so the probes themselves can never
	// contradict each other; contradictions surface from the dense
	// region below the boundary, checked afterwards.
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		r, err := eval(mid)
		if err != nil {
			return nil, nil, "", err
		}
		if fitRow(r) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	boundary := lo

	// The spill region: every cell below the fit boundary genuinely
	// varies with the budget (spill code shrinks as registers grow), so
	// it is computed, never implied.
	for i := 0; i < boundary; i++ {
		if _, err := eval(i); err != nil {
			return nil, nil, "", err
		}
	}

	violation = seriesViolation(axis, rows, computed, boundary)
	if violation != "" {
		// Dense fallback: dominance cannot be trusted for this series, so
		// every cell is computed and nothing is implied. Cells evaluated
		// during the search are single-flight hits, not recomputations.
		for i := range rows {
			if _, err := eval(i); err != nil {
				return nil, nil, "", err
			}
		}
		return rows, make([]bool, n), violation, nil
	}

	implied = make([]bool, n)
	for i := boundary + 1; i < n; i++ {
		if !computed[i] {
			rows[i] = impliedFrom(rows[boundary], axis[i])
			implied[i] = true
		}
	}
	return rows, implied, "", nil
}

// seriesViolation checks every computed cell of a series against the
// dominance relations the implied rows rely on and describes the first
// contradiction found, or returns "".
func seriesViolation(axis []int, rows []Result, computed []bool, boundary int) string {
	n := len(axis)
	// Fit must be monotone: no computed cell below the boundary may fit,
	// and no computed cell at or above it may spill or fail.
	for i := 0; i < boundary; i++ {
		if computed[i] && fitRow(rows[i]) {
			return fmt.Sprintf("fits at %d regs but not at the larger sizes the search probed (fit is not monotone in regs)", axis[i])
		}
	}
	for i := boundary + 1; i < n; i++ {
		if computed[i] && !fitRow(rows[i]) {
			return fmt.Sprintf("does not fit at %d regs above the fit boundary %d regs", axis[i], axis[boundary])
		}
	}
	// Fit rows must be budget-independent: the boundary row is the
	// evidence every implied cell extrapolates.
	for i := boundary + 1; i < n; i++ {
		if computed[i] && !equalModuloRegs(rows[i], rows[boundary]) {
			return fmt.Sprintf("fit rows differ between %d and %d regs (fit results are not budget-independent)", axis[boundary], axis[i])
		}
	}
	// Over the computed, successfully compiled cells, spill traffic must
	// be non-increasing in regs, and a failure must never sit above a
	// success.
	prev := -1
	for i := 0; i < n; i++ {
		if !computed[i] {
			continue
		}
		if rows[i].Error != "" {
			if prev >= 0 {
				return fmt.Sprintf("fails at %d regs but compiles at %d regs (failure is not monotone in regs)", axis[i], axis[prev])
			}
			continue
		}
		if prev >= 0 && (rows[i].Spilled > rows[prev].Spilled || rows[i].MemOps > rows[prev].MemOps) {
			return fmt.Sprintf("spill traffic increases with more registers (%d spilled/%d mem ops at %d regs -> %d/%d at %d regs)",
				rows[prev].Spilled, rows[prev].MemOps, axis[prev],
				rows[i].Spilled, rows[i].MemOps, axis[i])
		}
		prev = i
	}
	return ""
}
