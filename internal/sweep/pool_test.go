package sweep

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachRunsEverything(t *testing.T) {
	var ran atomic.Int64
	if err := ForEach(context.Background(), 100, 8, func(i int) error {
		ran.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 100 {
		t.Fatalf("ran %d items", ran.Load())
	}
	if err := ForEach(context.Background(), 0, 8, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestForEachAggregatesErrors checks the pool keeps going after a
// failure and reports every per-item error, not only the first.
func TestForEachAggregatesErrors(t *testing.T) {
	var ran atomic.Int64
	err := ForEach(context.Background(), 50, 4, func(i int) error {
		ran.Add(1)
		if i%10 == 3 {
			return fmt.Errorf("item %d failed", i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected aggregated error")
	}
	if ran.Load() != 50 {
		t.Fatalf("pool stopped early: ran %d of 50", ran.Load())
	}
	var joined interface{ Unwrap() []error }
	if !errors.As(err, &joined) {
		t.Fatalf("error is not an aggregate: %v", err)
	}
	if n := len(joined.Unwrap()); n != 5 {
		t.Fatalf("aggregated %d errors, want 5: %v", n, err)
	}
}

// TestForEachBailsOnSystemicFailure checks that when every item fails,
// the pool collects the error cap and stops dispatching instead of
// running the whole workload.
func TestForEachBailsOnSystemicFailure(t *testing.T) {
	var ran atomic.Int64
	err := ForEach(context.Background(), 10000, 1, func(i int) error {
		ran.Add(1)
		return fmt.Errorf("item %d", i)
	})
	if err == nil {
		t.Fatal("expected error")
	}
	var joined interface{ Unwrap() []error }
	if !errors.As(err, &joined) {
		t.Fatalf("error is not an aggregate: %v", err)
	}
	// maxReportedErrors per-item errors plus the not-attempted notice.
	if n := len(joined.Unwrap()); n != maxReportedErrors+1 {
		t.Fatalf("aggregated %d errors, want %d", n, maxReportedErrors+1)
	}
	if ran.Load() != maxReportedErrors {
		t.Fatalf("pool ran %d items after systemic failure, want %d", ran.Load(), maxReportedErrors)
	}
	// The truncated remainder is reported, not silently skipped: before
	// PR 4 the "... and N more errors" line only counted dropped errors,
	// so never-attempted items looked like successes.
	want := fmt.Sprintf("%d of 10000 items not attempted", 10000-maxReportedErrors)
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("aggregate missing %q:\n%v", want, err)
	}
}

// TestForEachReportsNothingSpuriously checks the not-attempted notice
// stays out of fully dispatched runs: errors below the cap must not
// fabricate a truncation line.
func TestForEachReportsNothingSpuriously(t *testing.T) {
	err := ForEach(context.Background(), 20, 4, func(i int) error {
		if i == 3 {
			return fmt.Errorf("item 3 failed")
		}
		return nil
	})
	if err == nil || strings.Contains(err.Error(), "not attempted") {
		t.Fatalf("spurious truncation notice: %v", err)
	}
}

// TestForEachCancellation checks the acceptance property: a cancelled
// run returns promptly with ctx.Err() and does not start remaining items.
func TestForEachCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- ForEach(ctx, 1000, 2, func(i int) error {
			started.Add(1)
			<-release
			return nil
		})
	}()
	// Let the two workers pick up their first items, then cancel.
	for started.Load() < 2 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(release)
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled ForEach did not return promptly")
	}
	if n := started.Load(); n > 10 {
		t.Fatalf("cancellation did not stop the pool: %d items started", n)
	}
}

// TestSweepCancellation checks cancellation end-to-end through the grid
// executor: a pre-cancelled context compiles nothing.
func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := New(2)
	grid := testGrid()
	emitted := 0
	err := eng.Sweep(ctx, grid, func(Result) { emitted++ })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if emitted != 0 {
		t.Fatalf("cancelled sweep emitted %d results", emitted)
	}
}
