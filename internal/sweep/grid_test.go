package sweep

import (
	"context"
	"errors"
	"testing"

	"ncdrf/internal/core"
	"ncdrf/internal/ddg"
	"ncdrf/internal/loops"
	"ncdrf/internal/machine"
)

func testGrid() Grid {
	return Grid{
		Corpus:   loops.Kernels()[:4],
		Machines: []*machine.Config{machine.Eval(3), machine.Eval(6)},
		Models:   []core.Model{core.Ideal, core.Unified, core.Swapped},
		Regs:     []int{32, 64},
	}
}

func TestPlanDeduplicates(t *testing.T) {
	g := testGrid()
	units := g.Plan()
	// Every requested cell is kept: 4 loops x 2 machines x 3 models x
	// 2 sizes (the Ideal duplicates share their computation through the
	// cache but still get their own result rows).
	if len(units) != 48 {
		t.Fatalf("planned %d units, want 48", len(units))
	}

	// Duplicate sizes and a same-name machine add nothing.
	g.Regs = []int{32, 64, 32}
	g.Machines = append(g.Machines, machine.Eval(6))
	if n := len(g.Plan()); n != 48 {
		t.Fatalf("duplicates not dropped: %d units", n)
	}

	// Empty Regs means one unlimited-file unit per loop/machine/model.
	g2 := testGrid()
	g2.Regs = nil
	if n := len(g2.Plan()); n != 4*2*3 {
		t.Fatalf("empty regs planned %d units", n)
	}
}

func TestSweepEmitsEveryUnit(t *testing.T) {
	eng := New(4)
	grid := testGrid()
	var results []Result
	if err := eng.Sweep(context.Background(), grid, func(r Result) {
		results = append(results, r)
	}); err != nil {
		t.Fatal(err)
	}
	if len(results) != len(grid.Plan()) {
		t.Fatalf("emitted %d results, want %d", len(results), len(grid.Plan()))
	}
	for _, r := range results {
		if r.Error != "" {
			t.Fatalf("%s/%s/%s: %s", r.Loop, r.Machine, r.Model, r.Error)
		}
		if r.II < 1 || r.Trips < 1 {
			t.Fatalf("degenerate result: %+v", r)
		}
	}
	// The base stage (schedule + lifetimes) is shared structurally: the
	// base-major plan requests exactly one base per (loop, machine)
	// group — not one per unit absorbed by the cache — so requests and
	// computations both equal the group count.
	st := eng.Cache().StageStats()
	wantBases := uint64(len(grid.Corpus) * len(grid.Machines))
	if st.Base.Misses != wantBases {
		t.Fatalf("base stage computed %d artifacts, want one per loop x machine = %d",
			st.Base.Misses, wantBases)
	}
	if st.Base.Requests() != wantBases {
		t.Fatalf("base stage saw %d requests, want one per group = %d (plan-level sharing)",
			st.Base.Requests(), wantBases)
	}
}

// TestSweepReportsPerUnitErrors checks that a unit that cannot compile
// carries its error in the result instead of aborting the sweep.
func TestSweepReportsPerUnitErrors(t *testing.T) {
	bad := ddg.New("impossible", 1)
	// A loop whose only op kind is missing from the machine cannot be
	// scheduled; machine.Eval always has memory ports, so build a
	// machine without multipliers instead.
	mul := bad.AddNode(ddg.FMUL, "m")
	bad.FlowD(mul, mul, 1)
	m := machine.MustNew("add-only", []machine.ClusterSpec{{Adders: 1, MemPorts: 1}}, 3, 3, 1)
	eng := New(2)
	grid := Grid{
		Corpus:   []*ddg.Graph{loops.Kernels()[0], bad},
		Machines: []*machine.Config{m},
		Models:   []core.Model{core.Ideal},
	}
	var got []Result
	if err := eng.Sweep(context.Background(), grid, func(r Result) { got = append(got, r) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("emitted %d results", len(got))
	}
	badFailed := false
	for _, r := range got {
		if r.Loop == "impossible" && r.Error != "" {
			badFailed = true
		}
	}
	if !badFailed {
		t.Fatalf("impossible loop did not report an error: %+v", got)
	}
}

func TestEngineMemo(t *testing.T) {
	eng := New(2)
	calls := 0
	for i := 0; i < 3; i++ {
		v, err := eng.Memo(context.Background(), "k", func() (any, error) { calls++; return 42, nil })
		if err != nil || v.(int) != 42 {
			t.Fatalf("memo = %v, %v", v, err)
		}
	}
	if calls != 1 {
		t.Fatalf("computed %d times", calls)
	}
	// Cancellation failures are not retained: later callers recompute.
	fail := true
	for i := 0; i < 2; i++ {
		v, err := eng.Memo(context.Background(), "f", func() (any, error) {
			if fail {
				fail = false
				return nil, context.Canceled
			}
			return "ok", nil
		})
		if i == 0 && err == nil {
			t.Fatal("first call should fail")
		}
		if i == 1 && (err != nil || v.(string) != "ok") {
			t.Fatalf("retry after failure = %v, %v", v, err)
		}
	}
	// Deterministic failures ARE retained and shared — re-running a
	// corpus-sized result set to reproduce the identical error would
	// waste the whole computation (same policy as the eval stage).
	detErr := errors.New("spill did not converge")
	if _, err := eng.Memo(context.Background(), "det", func() (any, error) { return nil, detErr }); err != detErr {
		t.Fatalf("first deterministic failure = %v", err)
	}
	recomputed := false
	if _, err := eng.Memo(context.Background(), "det", func() (any, error) { recomputed = true; return "x", nil }); err != detErr || recomputed {
		t.Fatalf("deterministic failure not retained: err=%v recomputed=%v", err, recomputed)
	}

	// CorpusKey distinguishes machines and corpora but not slice identity.
	ks := loops.Kernels()
	a := eng.CorpusKey("p", ks[:2], machine.Eval(3))
	b := eng.CorpusKey("p", append([]*ddg.Graph(nil), ks[:2]...), machine.Eval(3))
	if a != b {
		t.Fatal("same content, different keys")
	}
	if eng.CorpusKey("p", ks[:2], machine.Eval(6)) == a {
		t.Fatal("machine not in key")
	}
	if eng.CorpusKey("p", ks[:3], machine.Eval(3)) == a {
		t.Fatal("corpus not in key")
	}
}
