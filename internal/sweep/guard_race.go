//go:build race

package sweep

// digestGuard enables the memo-consistency check in digestOf under the
// race detector (which CI runs): every memo hit recomputes the digest
// and panics on mismatch, turning a violation of the "mutators only
// add" invariant into a loud failure instead of silently wrong cached
// schedules.
const digestGuard = true
