package sweep

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"ncdrf/internal/core"
	"ncdrf/internal/ddg"
	"ncdrf/internal/loops"
	"ncdrf/internal/machine"
	"ncdrf/internal/sched"
)

// TestAppendEncodingMatchesDDGEncode pins the fast cache-key encoder to
// the canonical ddg text encoding, byte for byte, including spill-shaped
// graphs (symbols, anonymous nodes, loop-carried memory edges).
func TestAppendEncodingMatchesDDGEncode(t *testing.T) {
	graphs := loops.Kernels()
	graphs = append(graphs, loops.PaperExample())
	g := ddg.New("synthetic", 7)
	a := g.AddNode(ddg.LOAD, "")
	b := g.AddNode(ddg.FADD, "acc")
	st := g.AddNode(ddg.STORE, "")
	g.Node(st).Sym = "spill0"
	g.Flow(a, b)
	g.FlowD(b, b, 1)
	g.Flow(b, st)
	g.MustAddEdge(ddg.Edge{From: st, To: a, Kind: ddg.Mem, Distance: 2})
	graphs = append(graphs, g)

	for _, g := range graphs {
		var want bytes.Buffer
		if err := g.Encode(&want); err != nil {
			t.Fatal(err)
		}
		got := appendEncoding(nil, g)
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("%s: encodings differ\nfast:\n%s\ncanonical:\n%s", g.LoopName, got, want.Bytes())
		}
	}
}

// TestCacheSharesWork drives the cache concurrently (run under -race in
// CI) and checks that identical requests are computed exactly once while
// distinct graphs, machines and options stay separate.
func TestCacheSharesWork(t *testing.T) {
	c := NewCache()
	corpus := loops.Kernels()
	machines := []*machine.Config{machine.Eval(3), machine.Eval(6)}
	const rounds = 8

	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		for _, m := range machines {
			for _, g := range corpus {
				wg.Add(1)
				go func(g *ddg.Graph, m *machine.Config) {
					defer wg.Done()
					s, err := c.Schedule(g, m, sched.Options{})
					if err != nil {
						t.Error(err)
						return
					}
					if s.II < 1 || len(s.Start) != g.NumNodes() {
						t.Errorf("%s: bad shared schedule", g.LoopName)
					}
				}(g, m)
			}
		}
	}
	wg.Wait()

	st := c.Stats()
	distinct := uint64(len(corpus) * len(machines))
	if st.Misses != distinct {
		t.Fatalf("misses = %d, want %d (one per distinct problem)", st.Misses, distinct)
	}
	if st.Hits != distinct*(rounds-1) {
		t.Fatalf("hits = %d, want %d", st.Hits, distinct*(rounds-1))
	}
	if c.Len() != int(distinct) {
		t.Fatalf("cache holds %d entries, want %d", c.Len(), distinct)
	}

	// Different options are a different problem.
	if _, err := c.Schedule(corpus[0], machines[0], sched.Options{MinII: 9}); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Misses; got != distinct+1 {
		t.Fatalf("MinII variant not keyed separately: misses = %d", got)
	}
}

// TestCacheSurvivesCallerMutation checks the content-addressing contract
// the spiller relies on: mutating the request graph after a hit must not
// corrupt the cached schedule, and the mutated graph is a fresh key.
func TestCacheSurvivesCallerMutation(t *testing.T) {
	c := NewCache()
	m := machine.Eval(3)
	g := loops.PaperExample().Clone()

	s1, err := c.Schedule(g, m, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n1 := s1.Graph.NumNodes()

	// Grow the caller's graph the way insertSpill does.
	ld := g.AddNode(ddg.LOAD, "extra")
	g.Flow(ld, 0)

	if s1.Graph.NumNodes() != n1 {
		t.Fatal("cached schedule's graph aliased the caller's graph")
	}
	s2, err := c.Schedule(g, m, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats().Misses != 2 {
		t.Fatalf("mutated graph reused a stale entry: %+v", c.Stats())
	}
	if s2.Graph.NumNodes() != n1+1 {
		t.Fatal("second schedule lost the mutation")
	}
	if err := s1.Verify(); err != nil {
		t.Fatalf("cached schedule corrupted by caller mutation: %v", err)
	}
}

// TestCompileForgetsWorkingGraphs checks that the spill loop's private
// working graphs do not pile up in the digest memo: after a spilling
// compile, only the caller's graph remains memoized.
func TestCompileForgetsWorkingGraphs(t *testing.T) {
	eng := New(1)
	g, ok := loops.KernelByName("lfk7-eos")
	if !ok {
		t.Fatal("missing kernel")
	}
	res, err := eng.Compile(context.Background(), g, machine.Eval(6), core.Unified, 24)
	if err != nil {
		t.Fatal(err)
	}
	if res.SpilledValues == 0 {
		t.Fatal("test needs a spilling compile to exercise working-graph cleanup")
	}
	memoized := 0
	eng.cache.digests.Range(func(any, any) bool { memoized++; return true })
	// The base stage digested the caller's long-lived graph (that memo is
	// useful and stays); the spill loop's private clone must be gone.
	if memoized != 1 {
		t.Fatalf("digest memo retains %d graphs, want 1 (the caller's)", memoized)
	}
}

// TestCacheCachesErrors checks that deterministic scheduling failures
// are cached instead of recomputed.
func TestCacheCachesErrors(t *testing.T) {
	c := NewCache()
	// A machine with no memory ports cannot host any kernel with loads.
	m := machine.MustNew("no-mem", []machine.ClusterSpec{{Adders: 1, Multipliers: 1}}, 3, 3, 1)
	g := loops.Kernels()[0]
	_, err1 := c.Schedule(g, m, sched.Options{})
	if err1 == nil {
		t.Fatal("expected scheduling failure")
	}
	_, err2 := c.Schedule(g, m, sched.Options{})
	if err2 == nil || c.Stats().Misses != 1 || c.Stats().Hits != 1 {
		t.Fatalf("error result not served from cache: %+v", c.Stats())
	}
}

// TestEngineCompileAllStageSharing asserts the stage-granular caching
// contract on the engine: CompileAll for one loop computes exactly one
// base artifact (one scheduler entry for the base schedule), evaluates
// four models, and a repeated CompileAll is served entirely from the
// eval cache.
func TestEngineCompileAllStageSharing(t *testing.T) {
	eng := New(2)
	g := loops.Kernels()[0]
	m := machine.Eval(6)
	ctx := context.Background()

	first, err := eng.CompileAll(ctx, g, m, 64)
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Cache().StageStats()
	if st.Base.Misses != 1 {
		t.Fatalf("base stage computed %d artifacts, want 1", st.Base.Misses)
	}
	if st.Eval.Misses != uint64(len(core.Models)) {
		t.Fatalf("eval stage computed %d results, want %d", st.Eval.Misses, len(core.Models))
	}
	for _, model := range core.Models {
		if first[model] == nil || first[model].Model != model {
			t.Fatalf("missing or misindexed result for %v", model)
		}
	}

	again, err := eng.CompileAll(ctx, g, m, 64)
	if err != nil {
		t.Fatal(err)
	}
	st = eng.Cache().StageStats()
	if st.Eval.Misses != uint64(len(core.Models)) || st.Eval.Hits != uint64(len(core.Models)) {
		t.Fatalf("repeat CompileAll not served from eval cache: %+v", st.Eval)
	}
	for _, model := range core.Models {
		if again[model] != first[model] {
			t.Fatalf("%v: repeat CompileAll returned a different artifact", model)
		}
	}
}

// TestCacheLensPerStage pins the per-stage entry accounting: Len used to
// count only schedule entries, silently ignoring bases and evals.
func TestCacheLensPerStage(t *testing.T) {
	eng := New(1)
	g := loops.Kernels()[0]
	if _, err := eng.CompileAll(context.Background(), g, machine.Eval(6), 64); err != nil {
		t.Fatal(err)
	}
	lens := eng.Cache().Lens()
	if lens.Base != 1 {
		t.Fatalf("base entries = %d, want 1", lens.Base)
	}
	if lens.Eval != len(core.Models) {
		t.Fatalf("eval entries = %d, want %d", lens.Eval, len(core.Models))
	}
	if lens.Schedule < 1 {
		t.Fatalf("schedule entries = %d, want >= 1", lens.Schedule)
	}
	if got := eng.Cache().Len(); got != lens.Schedule+lens.Base+lens.Eval {
		t.Fatalf("Len() = %d, want the sum of all stages %+v", got, lens)
	}
}

// TestFlightWaiterRetriesDroppedFailure exercises the generic core
// directly: a waiter that observes a dropped (non-retained) failure
// recomputes with its own live context, while retained failures are
// shared as hits.
func TestFlightWaiterRetriesDroppedFailure(t *testing.T) {
	f := newFlight[string, int](func(err error) bool { return err != context.Canceled })

	// Retained failure: second caller shares the error as a hit.
	wantErr := errors.New("deterministic")
	if _, err := f.do(context.Background(), "det", func() (int, error) { return 0, wantErr }); err != wantErr {
		t.Fatalf("first call: %v", err)
	}
	calls := 0
	if _, err := f.do(context.Background(), "det", func() (int, error) { calls++; return 1, nil }); err != wantErr {
		t.Fatalf("retained error not shared: %v", err)
	}
	if calls != 0 || f.hits.Load() != 1 || f.misses.Load() != 1 {
		t.Fatalf("retained failure recomputed: calls=%d hits=%d misses=%d", calls, f.hits.Load(), f.misses.Load())
	}

	// Dropped failure: a concurrent waiter retries and succeeds.
	computing := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_, _ = f.do(context.Background(), "ctx", func() (int, error) {
			close(computing)
			<-release
			return 0, context.Canceled
		})
	}()
	<-computing
	done := make(chan struct{})
	var got int
	var gotErr error
	go func() {
		defer close(done)
		got, gotErr = f.do(context.Background(), "ctx", func() (int, error) { return 42, nil })
	}()
	close(release)
	<-done
	if gotErr != nil || got != 42 {
		t.Fatalf("waiter did not retry after dropped failure: %d, %v", got, gotErr)
	}
	// A waiter whose own context is dead propagates its cancellation
	// instead of recomputing.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.do(cancelled, "fresh", func() (int, error) { return 0, nil }); err != context.Canceled {
		t.Fatalf("dead context not honoured: %v", err)
	}
}

// TestEvaluateRetainsDeterministicErrors checks that an evaluation that
// fails for content reasons (an unschedulable problem) is cached like a
// result, while the cancellation test below shows ctx errors are not.
func TestEvaluateRetainsDeterministicErrors(t *testing.T) {
	eng := New(1)
	m := machine.MustNew("no-mem2", []machine.ClusterSpec{{Adders: 1, Multipliers: 1}}, 3, 3, 1)
	g := loops.Kernels()[0] // every kernel has loads; cannot schedule
	ctx := context.Background()
	if _, err := eng.Compile(ctx, g, m, core.Unified, 16); err == nil {
		t.Fatal("expected scheduling failure")
	}
	if _, err := eng.Compile(ctx, g, m, core.Unified, 16); err == nil {
		t.Fatal("expected cached scheduling failure")
	}
	st := eng.Cache().StageStats()
	if st.Eval.Misses != 1 || st.Eval.Hits != 1 {
		t.Fatalf("deterministic failure not retained: %+v", st.Eval)
	}
}

// TestEngineCompileAllCancellation checks that a cancelled context
// aborts the staged compile and that the failed evaluation is not
// retained (a later call with a live context succeeds).
func TestEngineCompileAllCancellation(t *testing.T) {
	eng := New(2)
	g := loops.Kernels()[0]
	m := machine.Eval(6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// 8 registers forces spilling, whose rounds check the context.
	if _, err := eng.CompileAll(ctx, g, m, 8); err == nil {
		t.Fatal("want cancellation error")
	}
	if _, err := eng.CompileAll(context.Background(), g, m, 8); err != nil {
		t.Fatalf("cancelled evaluation was retained: %v", err)
	}
}
