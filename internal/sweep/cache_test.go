package sweep

import (
	"bytes"
	"sync"
	"testing"

	"ncdrf/internal/core"
	"ncdrf/internal/ddg"
	"ncdrf/internal/loops"
	"ncdrf/internal/machine"
	"ncdrf/internal/sched"
)

// TestAppendEncodingMatchesDDGEncode pins the fast cache-key encoder to
// the canonical ddg text encoding, byte for byte, including spill-shaped
// graphs (symbols, anonymous nodes, loop-carried memory edges).
func TestAppendEncodingMatchesDDGEncode(t *testing.T) {
	graphs := loops.Kernels()
	graphs = append(graphs, loops.PaperExample())
	g := ddg.New("synthetic", 7)
	a := g.AddNode(ddg.LOAD, "")
	b := g.AddNode(ddg.FADD, "acc")
	st := g.AddNode(ddg.STORE, "")
	g.Node(st).Sym = "spill0"
	g.Flow(a, b)
	g.FlowD(b, b, 1)
	g.Flow(b, st)
	g.MustAddEdge(ddg.Edge{From: st, To: a, Kind: ddg.Mem, Distance: 2})
	graphs = append(graphs, g)

	for _, g := range graphs {
		var want bytes.Buffer
		if err := g.Encode(&want); err != nil {
			t.Fatal(err)
		}
		got := appendEncoding(nil, g)
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("%s: encodings differ\nfast:\n%s\ncanonical:\n%s", g.LoopName, got, want.Bytes())
		}
	}
}

// TestCacheSharesWork drives the cache concurrently (run under -race in
// CI) and checks that identical requests are computed exactly once while
// distinct graphs, machines and options stay separate.
func TestCacheSharesWork(t *testing.T) {
	c := NewCache()
	corpus := loops.Kernels()
	machines := []*machine.Config{machine.Eval(3), machine.Eval(6)}
	const rounds = 8

	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		for _, m := range machines {
			for _, g := range corpus {
				wg.Add(1)
				go func(g *ddg.Graph, m *machine.Config) {
					defer wg.Done()
					s, err := c.Schedule(g, m, sched.Options{})
					if err != nil {
						t.Error(err)
						return
					}
					if s.II < 1 || len(s.Start) != g.NumNodes() {
						t.Errorf("%s: bad shared schedule", g.LoopName)
					}
				}(g, m)
			}
		}
	}
	wg.Wait()

	st := c.Stats()
	distinct := uint64(len(corpus) * len(machines))
	if st.Misses != distinct {
		t.Fatalf("misses = %d, want %d (one per distinct problem)", st.Misses, distinct)
	}
	if st.Hits != distinct*(rounds-1) {
		t.Fatalf("hits = %d, want %d", st.Hits, distinct*(rounds-1))
	}
	if c.Len() != int(distinct) {
		t.Fatalf("cache holds %d entries, want %d", c.Len(), distinct)
	}

	// Different options are a different problem.
	if _, err := c.Schedule(corpus[0], machines[0], sched.Options{MinII: 9}); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Misses; got != distinct+1 {
		t.Fatalf("MinII variant not keyed separately: misses = %d", got)
	}
}

// TestCacheSurvivesCallerMutation checks the content-addressing contract
// the spiller relies on: mutating the request graph after a hit must not
// corrupt the cached schedule, and the mutated graph is a fresh key.
func TestCacheSurvivesCallerMutation(t *testing.T) {
	c := NewCache()
	m := machine.Eval(3)
	g := loops.PaperExample().Clone()

	s1, err := c.Schedule(g, m, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n1 := s1.Graph.NumNodes()

	// Grow the caller's graph the way insertSpill does.
	ld := g.AddNode(ddg.LOAD, "extra")
	g.Flow(ld, 0)

	if s1.Graph.NumNodes() != n1 {
		t.Fatal("cached schedule's graph aliased the caller's graph")
	}
	s2, err := c.Schedule(g, m, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats().Misses != 2 {
		t.Fatalf("mutated graph reused a stale entry: %+v", c.Stats())
	}
	if s2.Graph.NumNodes() != n1+1 {
		t.Fatal("second schedule lost the mutation")
	}
	if err := s1.Verify(); err != nil {
		t.Fatalf("cached schedule corrupted by caller mutation: %v", err)
	}
}

// TestCompileForgetsWorkingGraphs checks that the spill loop's private
// working graphs do not pile up in the digest memo: after a spilling
// compile, only the caller's graph remains memoized.
func TestCompileForgetsWorkingGraphs(t *testing.T) {
	eng := New(1)
	g, ok := loops.KernelByName("lfk7-eos")
	if !ok {
		t.Fatal("missing kernel")
	}
	res, err := eng.Compile(g, machine.Eval(6), core.Unified, 24)
	if err != nil {
		t.Fatal(err)
	}
	if res.SpilledValues == 0 {
		t.Fatal("test needs a spilling compile to exercise working-graph cleanup")
	}
	memoized := 0
	eng.cache.digests.Range(func(any, any) bool { memoized++; return true })
	// The spill loop only ever digested its private clone, and that
	// entry must be gone now.
	if memoized != 0 {
		t.Fatalf("digest memo retains %d graphs, want 0", memoized)
	}
}

// TestCacheCachesErrors checks that deterministic scheduling failures
// are cached instead of recomputed.
func TestCacheCachesErrors(t *testing.T) {
	c := NewCache()
	// A machine with no memory ports cannot host any kernel with loads.
	m := machine.MustNew("no-mem", []machine.ClusterSpec{{Adders: 1, Multipliers: 1}}, 3, 3, 1)
	g := loops.Kernels()[0]
	_, err1 := c.Schedule(g, m, sched.Options{})
	if err1 == nil {
		t.Fatal("expected scheduling failure")
	}
	_, err2 := c.Schedule(g, m, sched.Options{})
	if err2 == nil || c.Stats().Misses != 1 || c.Stats().Hits != 1 {
		t.Fatalf("error result not served from cache: %+v", c.Stats())
	}
}
