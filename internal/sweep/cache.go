package sweep

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"

	"ncdrf/internal/core"
	"ncdrf/internal/ddg"
	"ncdrf/internal/machine"
	"ncdrf/internal/pipeline"
	"ncdrf/internal/sched"
	"ncdrf/internal/store"
)

// Artifact-store stage names. Only the schedule and eval stages persist:
// a Base is (schedule + lifetimes) where the lifetimes are a cheap
// deterministic function of the schedule, so persisting the schedule
// stage already makes a warm-store base computation scheduler-free.
const (
	stageSched = "sched"
	stageEval  = "eval"
)

// cacheKey identifies one scheduling problem; see the package comment for
// the key scheme.
type cacheKey struct {
	graph   [sha256.Size]byte
	machine string
	opts    sched.Options
}

// evalKey identifies one per-model evaluation problem: the base-stage key
// plus the model and the register budget.
type evalKey struct {
	base  cacheKey
	model core.Model
	regs  int
}

// CacheStats is a snapshot of one stage's counters across the cache
// tiers.
type CacheStats struct {
	// Hits is the number of requests served from the in-memory tier
	// (including calls that waited on an in-flight computation).
	Hits uint64
	// DiskHits is the number of requests served from the persistent
	// artifact store; always 0 when no store is attached.
	DiskHits uint64
	// Misses is the number of results actually computed.
	Misses uint64
}

// Requests returns the total number of requests observed.
func (s CacheStats) Requests() uint64 { return s.Hits + s.DiskHits + s.Misses }

// Cache is a tiered, content-addressed, single-flight artifact cache for
// the pipeline stages (schedule, base, per-model eval). It is safe for
// concurrent use.
//
// Tier 1 is one in-memory single-flight implementation per stage (see
// flight), differing only in error-retention policy: the schedule and
// base stages retain every error (their computations are ctx-free and
// deterministic — retrying an unschedulable problem cannot succeed),
// while the eval stage drops caller-dependent context-cancellation
// errors so one cancelled sweep cannot poison a concurrent or later one.
//
// Tier 2, optional (SetStore), is a persistent content-addressed
// artifact store shared across processes: a read-through/write-behind
// layer below the flight tier. A flight miss first consults the store
// and only computes on a disk miss; computed schedule and eval artifacts
// are written back best-effort. Negative results are never persisted —
// an error is cheap to recompute and pinning one on disk risks masking
// an environment-dependent failure.
type Cache struct {
	scheds *flight[cacheKey, *sched.Schedule]
	bases  *flight[cacheKey, *pipeline.Base]
	evals  *flight[evalKey, *pipeline.ModelResult]

	// store is the optional persistent tier; nil means memory-only.
	// The per-stage counters record successful disk loads; unsuccessful
	// ones are observable through the store's own Stats (misses/faults).
	store                       *store.Store
	schedDiskHits, evalDiskHits atomic.Uint64

	// digests memoizes the canonical digest per graph pointer, keyed on
	// the graph's (node count, edge count) for invalidation: every graph
	// mutator in this repository only ever adds nodes and edges (the
	// spiller rewrites its working graph with strictly more of both), so
	// unchanged counts mean unchanged content. A future pass that edits a
	// graph in place without growing it must bypass or clear this memo.
	digests sync.Map // *ddg.Graph -> digestMemo
}

type digestMemo struct {
	nodes, edges int
	sum          [sha256.Size]byte
}

// retainDeterministic is the eval stage's error-retention policy:
// deterministic failures (unschedulable or non-converging problems) are
// cached like results, caller-dependent context errors are not.
func retainDeterministic(err error) bool {
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// NewCache returns an empty, memory-only cache.
func NewCache() *Cache {
	return &Cache{
		scheds: newFlight[cacheKey, *sched.Schedule](nil),
		bases:  newFlight[cacheKey, *pipeline.Base](nil),
		evals:  newFlight[evalKey, *pipeline.ModelResult](retainDeterministic),
	}
}

// SetStore attaches the persistent artifact tier. It must be called
// before the cache serves its first request; attachment is not
// synchronized with concurrent use.
func (c *Cache) SetStore(st *store.Store) { c.store = st }

// Store returns the attached persistent tier, or nil.
func (c *Cache) Store() *store.Store { return c.store }

// encBufs recycles the encoding buffers keyOf hashes; the cache sits on
// every scheduling request, so the key path must not allocate per call.
var encBufs = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// appendEncoding appends g's canonical text encoding — byte-identical to
// ddg.(*Graph).Encode, see TestAppendEncodingMatchesDDGEncode — without
// the fmt machinery that dominates Encode's cost.
func appendEncoding(buf []byte, g *ddg.Graph) []byte {
	buf = append(buf, "loop "...)
	buf = append(buf, g.LoopName...)
	buf = append(buf, " trips "...)
	buf = strconv.AppendInt(buf, g.TripsOrOne(), 10)
	buf = append(buf, '\n')
	for _, n := range g.Nodes() {
		buf = append(buf, "node "...)
		buf = append(buf, n.Label()...)
		buf = append(buf, ' ')
		buf = append(buf, n.Op.String()...)
		if n.Sym != "" {
			buf = append(buf, " sym "...)
			buf = append(buf, n.Sym...)
		}
		buf = append(buf, '\n')
	}
	for i, ne := 0, g.NumEdges(); i < ne; i++ {
		e := g.Edge(i)
		buf = append(buf, "edge "...)
		buf = append(buf, g.Node(e.From).Label()...)
		buf = append(buf, ' ')
		buf = append(buf, g.Node(e.To).Label()...)
		buf = append(buf, ' ')
		buf = append(buf, e.Kind.String()...)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, int64(e.Distance), 10)
		buf = append(buf, '\n')
	}
	return buf
}

// digestOf returns the canonical digest of g, memoized per pointer.
func (c *Cache) digestOf(g *ddg.Graph) [sha256.Size]byte {
	nodes, edges := g.NumNodes(), g.NumEdges()
	if v, ok := c.digests.Load(g); ok {
		if m := v.(digestMemo); m.nodes == nodes && m.edges == edges {
			if digestGuard && sha256.Sum256(appendEncoding(nil, g)) != m.sum {
				panic("sweep: graph " + g.LoopName + " mutated in place without growing; stale digest memo (see Cache.digests invariant)")
			}
			return m.sum
		}
	}
	bp := encBufs.Get().(*[]byte)
	buf := appendEncoding((*bp)[:0], g)
	sum := sha256.Sum256(buf)
	*bp = buf
	encBufs.Put(bp)
	c.digests.Store(g, digestMemo{nodes: nodes, edges: edges, sum: sum})
	return sum
}

// keyOf builds the cache key for one scheduling problem.
func (c *Cache) keyOf(g *ddg.Graph, m *machine.Config, opts sched.Options) cacheKey {
	return cacheKey{graph: c.digestOf(g), machine: m.Name(), opts: opts}
}

// diskKey derives the on-disk artifact key for one problem: the SHA-256
// over (scheduler algorithm version, graph digest, full machine
// specification, every sched.Options field, and — for the eval stage —
// model and register budget), NUL-separated.
//
// It is deliberately stricter than the in-memory cacheKey on two
// counts, because disk outlives the process. The machine contributes
// its full rendered specification (Config.String: clusters, unit
// counts, latencies), not just its name — a preset whose spec changes
// without a rename must not serve stale artifacts, even though within
// one process name-equality implies spec-equality. And
// sched.AlgorithmVersion pins the scheduler's observable behavior, so a
// binary with improved heuristics starts from a cold key space instead
// of reproducing the old binary's schedules. Hashing %#v of the options
// keeps future option fields from silently aliasing distinct problems.
func diskKey(k cacheKey, m *machine.Config, extra string) string {
	h := sha256.New()
	fmt.Fprintf(h, "alg%d", sched.AlgorithmVersion)
	h.Write([]byte{0})
	h.Write(k.graph[:])
	h.Write([]byte{0})
	io.WriteString(h, m.String())
	h.Write([]byte{0})
	fmt.Fprintf(h, "%#v", k.opts)
	if extra != "" {
		h.Write([]byte{0})
		io.WriteString(h, extra)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func (k evalKey) storeExtra() string {
	return fmt.Sprintf("%s/%d", k.model, k.regs)
}

// loadSched is the read-through path of the schedule stage: fetch and
// decode a persisted schedule, treating any damage as a recomputable
// miss.
func (c *Cache) loadSched(key cacheKey, m *machine.Config) (*sched.Schedule, bool) {
	if c.store == nil {
		return nil, false
	}
	dk := diskKey(key, m, "")
	data, ok := c.store.Get(stageSched, dk)
	if ok {
		s, err := pipeline.DecodeSchedule(bytes.NewReader(data), m)
		if err == nil {
			c.schedDiskHits.Add(1)
			return s, true
		}
		// Verified container, undecodable payload: discard the file so
		// the recompute's write-behind replaces it instead of the same
		// artifact faulting on every future run.
		c.store.Discard(stageSched, dk)
	}
	return nil, false
}

// saveSched is the write-behind path of the schedule stage: best-effort,
// a failed write only means the next process recomputes.
func (c *Cache) saveSched(key cacheKey, s *sched.Schedule) {
	if c.store == nil {
		return
	}
	var buf bytes.Buffer
	if err := pipeline.EncodeSchedule(&buf, s); err != nil {
		c.store.Fault()
		return
	}
	_ = c.store.Put(stageSched, diskKey(key, s.Mach, ""), buf.Bytes())
}

// loadEval and saveEval are the eval stage's persistent paths, mirroring
// loadSched/saveSched.
func (c *Cache) loadEval(key evalKey, m *machine.Config) (*pipeline.ModelResult, bool) {
	if c.store == nil {
		return nil, false
	}
	dk := diskKey(key.base, m, key.storeExtra())
	data, ok := c.store.Get(stageEval, dk)
	if ok {
		res, err := pipeline.DecodeModelResult(bytes.NewReader(data), m)
		if err == nil && res.Model == key.model {
			c.evalDiskHits.Add(1)
			return res, true
		}
		c.store.Discard(stageEval, dk)
	}
	return nil, false
}

func (c *Cache) saveEval(key evalKey, res *pipeline.ModelResult) {
	if c.store == nil {
		return
	}
	var buf bytes.Buffer
	if err := pipeline.EncodeModelResult(&buf, res); err != nil {
		c.store.Fault()
		return
	}
	_ = c.store.Put(stageEval, diskKey(key.base, res.Sched.Mach, key.storeExtra()), buf.Bytes())
}

// Schedule returns the (possibly shared) schedule of g on m, computing it
// at most once per distinct (graph content, machine, options) triple.
// The schedule is computed on a private clone of g, so callers may mutate
// g afterwards; the returned schedule must be treated as read-only.
// Waiters block unconditionally — scheduling is ctx-free — and negative
// results (scheduling errors) are cached too: scheduling is
// deterministic, so retrying an unschedulable problem cannot succeed.
func (c *Cache) Schedule(g *ddg.Graph, m *machine.Config, opts sched.Options) (*sched.Schedule, error) {
	key := c.keyOf(g, m, opts)
	//lint:allow ctxflow -- scheduling is deliberately ctx-free: waiters block, results are retained (see the doc comment)
	return c.scheds.do(context.Background(), key, func() (*sched.Schedule, error) {
		if s, ok := c.loadSched(key, m); ok {
			return s, nil
		}
		clone := g.Clone()
		s, err := sched.Run(clone, m, opts)
		if err == nil {
			c.saveSched(key, s)
		}
		return s, err
	})
}

// Base returns the (possibly shared) base-stage artifact of g on m: the
// modulo schedule of the unmodified loop plus its value lifetimes,
// computed at most once per distinct (graph content, machine, options)
// triple. The underlying scheduling request routes through Schedule, so
// the schedule-stage counters (and the persistent tier) still observe
// it. The returned Base is immutable and shared; treat it as read-only.
// ctx is consulted before starting a computation and while waiting on
// another caller's in-flight one; a computation once started runs to
// completion (it is ctx-free and deterministic, so its result stays
// valid for every future caller).
func (c *Cache) Base(ctx context.Context, g *ddg.Graph, m *machine.Config, opts sched.Options) (*pipeline.Base, error) {
	key := c.keyOf(g, m, opts)
	return c.bases.do(ctx, key, func() (*pipeline.Base, error) {
		return pipeline.NewBaseWith(c, g, m, opts)
	})
}

// Evaluate returns the (possibly shared) per-model stage result — the
// Classified → Allocated → Spilled chain of internal/pipeline — computed
// at most once per distinct (graph content, machine, options, model,
// register budget). All models of one loop share a single base artifact.
// Deterministic failures (unschedulable or non-converging problems) are
// cached like results; context-cancellation errors are caller-dependent
// and are not retained. A waiter that observes another caller's
// cancellation retries while its own context is live, so one cancelled
// sweep cannot poison a concurrent one.
func (c *Cache) Evaluate(ctx context.Context, g *ddg.Graph, m *machine.Config, opts sched.Options, model core.Model, regs int) (*pipeline.ModelResult, error) {
	key := c.evalKeyOf(g, m, opts, model, regs)
	return c.evalThrough(ctx, key, m, func() (*pipeline.Base, error) {
		return c.Base(ctx, g, m, opts)
	})
}

// EvaluateBase is Evaluate for a caller that already holds the shared
// base artifact — the per-unit call of the base-major sweep executor,
// which requests the base exactly once per (loop, machine) group. The
// eval stage is still served through the same single-flight and disk
// tiers; only a full miss consumes b, so a warm store never pays for
// the per-model chain twice.
func (c *Cache) EvaluateBase(ctx context.Context, b *pipeline.Base, model core.Model, regs int) (*pipeline.ModelResult, error) {
	key := c.evalKeyOf(b.Graph, b.Machine, b.Opts, model, regs)
	return c.evalThrough(ctx, key, b.Machine, func() (*pipeline.Base, error) {
		return b, nil
	})
}

// evalKeyOf normalizes the budget and builds the eval-stage key.
func (c *Cache) evalKeyOf(g *ddg.Graph, m *machine.Config, opts sched.Options, model core.Model, regs int) evalKey {
	if model == core.Ideal || regs < 0 {
		regs = 0 // Ideal ignores the budget; all negatives mean unlimited
	}
	return evalKey{base: c.keyOf(g, m, opts), model: model, regs: regs}
}

// evalThrough serves one eval-stage request through the flight and disk
// tiers; base supplies the shared base artifact only on a full miss.
func (c *Cache) evalThrough(ctx context.Context, key evalKey, m *machine.Config, base func() (*pipeline.Base, error)) (*pipeline.ModelResult, error) {
	return c.evals.do(ctx, key, func() (*pipeline.ModelResult, error) {
		if res, ok := c.loadEval(key, m); ok {
			return res, nil
		}
		b, err := base()
		if err != nil {
			return nil, err
		}
		res, err := pipeline.Evaluate(ctx, c, b, key.model, key.regs)
		if err == nil {
			c.saveEval(key, res)
		}
		return res, err
	})
}

// Forget drops the digest memo for g. The spill loop calls this (via an
// optional interface check in spill.RunSeeded) when a private working
// graph dies, so the memo doesn't pin dead graphs for the engine's
// lifetime. The schedule entries themselves are kept — they ARE the
// cache, and later identical content still hits them.
func (c *Cache) Forget(g *ddg.Graph) { c.digests.Delete(g) }

// tierStats composes one stage's flight counters with its disk counter
// into the exported shape: Misses reports what was actually computed, so
// flight misses absorbed by the persistent tier are subtracted out.
// Callers pass the disk counter as the first (hence first-evaluated)
// argument — it trails the flight's miss counter, so that order keeps
// the subtraction non-negative under concurrency.
func tierStats(diskHits, hits, misses uint64) CacheStats {
	return CacheStats{Hits: hits, DiskHits: diskHits, Misses: misses - diskHits}
}

// Stats returns a snapshot of the schedule-stage counters.
func (c *Cache) Stats() CacheStats {
	return tierStats(c.schedDiskHits.Load(), c.scheds.hits.Load(), c.scheds.misses.Load())
}

// StageStats is a per-stage snapshot of the cache counters: one
// CacheStats per cached pipeline stage.
type StageStats struct {
	// Schedule counts modulo-scheduling requests (sched.Run-shaped work).
	Schedule CacheStats
	// Base counts base-stage requests: the shared schedule + lifetime
	// artifact every model evaluation starts from. The base stage has no
	// disk tier of its own — persisting the schedule stage already makes
	// a warm-store base computation scheduler-free.
	Base CacheStats
	// Eval counts per-model stage requests (classify/allocate/spill).
	Eval CacheStats
	// Persistent reports whether a disk tier is attached; when true the
	// rendered lines include the per-stage disk hit counts.
	Persistent bool
	// RowsComputed and RowsImplied count emitted result rows by
	// provenance: computed rows went through a per-cell evaluation,
	// implied rows were synthesized from dominance by the frontier
	// executor (see internal/sweep/frontier.go) without one. The cache
	// never sees rows, so Cache.StageStats leaves both zero;
	// Engine.StageStats fills them.
	RowsComputed, RowsImplied uint64
}

// String renders the per-stage counters, one line per stage. This is the
// single renderer for the counters: the `ncdrf all` trailer prints it
// verbatim, so anything parsing the trailer (e.g. the CI persistence
// smoke job) keys off this format alone.
func (s StageStats) String() string {
	line := func(name string, cs CacheStats) string {
		out := fmt.Sprintf("stage %s: %d requests, %d computed, %d served from memory",
			name, cs.Requests(), cs.Misses, cs.Hits)
		if s.Persistent {
			out += fmt.Sprintf(", %d from disk", cs.DiskHits)
		}
		return out
	}
	return line("schedule", s.Schedule) + "\n" +
		line("base", s.Base) + "\n" +
		line("eval", s.Eval) + "\n" +
		fmt.Sprintf("stage rows: %d computed, %d implied", s.RowsComputed, s.RowsImplied)
}

// StageStats returns a snapshot of every stage's counters.
func (c *Cache) StageStats() StageStats {
	return StageStats{
		Schedule:   c.Stats(),
		Base:       tierStats(0, c.bases.hits.Load(), c.bases.misses.Load()),
		Eval:       tierStats(c.evalDiskHits.Load(), c.evals.hits.Load(), c.evals.misses.Load()),
		Persistent: c.store != nil,
	}
}

// StageLens is the number of retained entries per stage.
type StageLens struct {
	Schedule, Base, Eval int
}

// Lens returns the per-stage entry counts.
func (c *Cache) Lens() StageLens {
	return StageLens{Schedule: c.scheds.len(), Base: c.bases.len(), Eval: c.evals.len()}
}

// Len returns the total number of retained entries across all stages.
func (c *Cache) Len() int {
	l := c.Lens()
	return l.Schedule + l.Base + l.Eval
}
