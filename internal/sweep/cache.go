package sweep

import (
	"crypto/sha256"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"ncdrf/internal/ddg"
	"ncdrf/internal/machine"
	"ncdrf/internal/sched"
)

// cacheKey identifies one scheduling problem; see the package comment for
// the key scheme.
type cacheKey struct {
	graph   [sha256.Size]byte
	machine string
	opts    sched.Options
}

// cacheEntry is a single-flight slot: the first requester computes the
// schedule, later requesters block on ready and share the result.
type cacheEntry struct {
	ready chan struct{}
	sched *sched.Schedule
	err   error
}

// CacheStats is a snapshot of the cache counters.
type CacheStats struct {
	// Hits is the number of Schedule calls served from the cache
	// (including calls that waited on an in-flight computation).
	Hits uint64
	// Misses is the number of schedules actually computed.
	Misses uint64
}

// Requests returns the total number of Schedule calls observed.
func (s CacheStats) Requests() uint64 { return s.Hits + s.Misses }

// String renders the stats in the form the CLI prints.
func (s CacheStats) String() string {
	return fmt.Sprintf("%d schedule requests, %d computed, %d served from cache",
		s.Requests(), s.Misses, s.Hits)
}

// Cache is a content-addressed, single-flight schedule cache. It is safe
// for concurrent use. Negative results (scheduling errors) are cached
// too: scheduling is deterministic, so retrying an unschedulable problem
// cannot succeed.
type Cache struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
	// digests memoizes the canonical digest per graph pointer, keyed on
	// the graph's (node count, edge count) for invalidation: every graph
	// mutator in this repository only ever adds nodes and edges (the
	// spiller rewrites its working graph with strictly more of both), so
	// unchanged counts mean unchanged content. A future pass that edits a
	// graph in place without growing it must bypass or clear this memo.
	digests sync.Map // *ddg.Graph -> digestMemo
	hits    atomic.Uint64
	misses  atomic.Uint64
}

type digestMemo struct {
	nodes, edges int
	sum          [sha256.Size]byte
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: map[cacheKey]*cacheEntry{}}
}

// encBufs recycles the encoding buffers keyOf hashes; the cache sits on
// every scheduling request, so the key path must not allocate per call.
var encBufs = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// appendEncoding appends g's canonical text encoding — byte-identical to
// ddg.(*Graph).Encode, see TestAppendEncodingMatchesDDGEncode — without
// the fmt machinery that dominates Encode's cost.
func appendEncoding(buf []byte, g *ddg.Graph) []byte {
	buf = append(buf, "loop "...)
	buf = append(buf, g.LoopName...)
	buf = append(buf, " trips "...)
	buf = strconv.AppendInt(buf, g.TripsOrOne(), 10)
	buf = append(buf, '\n')
	for _, n := range g.Nodes() {
		buf = append(buf, "node "...)
		buf = append(buf, n.Label()...)
		buf = append(buf, ' ')
		buf = append(buf, n.Op.String()...)
		if n.Sym != "" {
			buf = append(buf, " sym "...)
			buf = append(buf, n.Sym...)
		}
		buf = append(buf, '\n')
	}
	for i, ne := 0, g.NumEdges(); i < ne; i++ {
		e := g.Edge(i)
		buf = append(buf, "edge "...)
		buf = append(buf, g.Node(e.From).Label()...)
		buf = append(buf, ' ')
		buf = append(buf, g.Node(e.To).Label()...)
		buf = append(buf, ' ')
		buf = append(buf, e.Kind.String()...)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, int64(e.Distance), 10)
		buf = append(buf, '\n')
	}
	return buf
}

// digestOf returns the canonical digest of g, memoized per pointer.
func (c *Cache) digestOf(g *ddg.Graph) [sha256.Size]byte {
	nodes, edges := g.NumNodes(), g.NumEdges()
	if v, ok := c.digests.Load(g); ok {
		if m := v.(digestMemo); m.nodes == nodes && m.edges == edges {
			if digestGuard && sha256.Sum256(appendEncoding(nil, g)) != m.sum {
				panic("sweep: graph " + g.LoopName + " mutated in place without growing; stale digest memo (see Cache.digests invariant)")
			}
			return m.sum
		}
	}
	bp := encBufs.Get().(*[]byte)
	buf := appendEncoding((*bp)[:0], g)
	sum := sha256.Sum256(buf)
	*bp = buf
	encBufs.Put(bp)
	c.digests.Store(g, digestMemo{nodes: nodes, edges: edges, sum: sum})
	return sum
}

// keyOf builds the cache key for one scheduling problem.
func (c *Cache) keyOf(g *ddg.Graph, m *machine.Config, opts sched.Options) cacheKey {
	return cacheKey{graph: c.digestOf(g), machine: m.Name(), opts: opts}
}

// Schedule returns the (possibly shared) schedule of g on m, computing it
// at most once per distinct (graph content, machine, options) triple.
// The schedule is computed on a private clone of g, so callers may mutate
// g afterwards; the returned schedule must be treated as read-only.
func (c *Cache) Schedule(g *ddg.Graph, m *machine.Config, opts sched.Options) (*sched.Schedule, error) {
	key := c.keyOf(g, m, opts)
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		c.mu.Unlock()
		c.hits.Add(1)
		<-e.ready
		return e.sched, e.err
	}
	e = &cacheEntry{ready: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()
	c.misses.Add(1)

	clone := g.Clone()
	e.sched, e.err = sched.Run(clone, m, opts)
	close(e.ready)
	return e.sched, e.err
}

// Forget drops the digest memo for g. The spill loop calls this (via an
// optional interface check in spill.RunWith) when a private working
// graph dies, so the memo doesn't pin dead graphs for the engine's
// lifetime. The schedule entries themselves are kept — they ARE the
// cache, and later identical content still hits them.
func (c *Cache) Forget(g *ddg.Graph) { c.digests.Delete(g) }

// Stats returns a snapshot of the hit/miss counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load()}
}

// Len returns the number of distinct scheduling problems seen.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
