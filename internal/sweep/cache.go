package sweep

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"ncdrf/internal/core"
	"ncdrf/internal/ddg"
	"ncdrf/internal/machine"
	"ncdrf/internal/pipeline"
	"ncdrf/internal/sched"
)

// cacheKey identifies one scheduling problem; see the package comment for
// the key scheme.
type cacheKey struct {
	graph   [sha256.Size]byte
	machine string
	opts    sched.Options
}

// cacheEntry is a single-flight slot: the first requester computes the
// schedule, later requesters block on ready and share the result.
type cacheEntry struct {
	ready chan struct{}
	sched *sched.Schedule
	err   error
}

// baseEntry is a single-flight slot for a base-stage artifact (schedule
// plus lifetimes of the unmodified loop).
type baseEntry struct {
	ready chan struct{}
	base  *pipeline.Base
	err   error
}

// evalKey identifies one per-model evaluation problem: the base-stage key
// plus the model and the register budget.
type evalKey struct {
	base  cacheKey
	model core.Model
	regs  int
}

// evalEntry is a single-flight slot for a per-model stage result.
type evalEntry struct {
	ready chan struct{}
	res   *pipeline.ModelResult
	err   error
}

// CacheStats is a snapshot of the cache counters.
type CacheStats struct {
	// Hits is the number of Schedule calls served from the cache
	// (including calls that waited on an in-flight computation).
	Hits uint64
	// Misses is the number of schedules actually computed.
	Misses uint64
}

// Requests returns the total number of Schedule calls observed.
func (s CacheStats) Requests() uint64 { return s.Hits + s.Misses }

// String renders the stats in the form the CLI's trailer prints.
func (s CacheStats) String() string {
	return fmt.Sprintf("%d schedule requests, %d computed, %d served from cache",
		s.Requests(), s.Misses, s.Hits)
}

// Cache is a content-addressed, single-flight schedule cache. It is safe
// for concurrent use. Negative results (scheduling errors) are cached
// too: scheduling is deterministic, so retrying an unschedulable problem
// cannot succeed.
type Cache struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
	bases   map[cacheKey]*baseEntry
	evals   map[evalKey]*evalEntry
	// digests memoizes the canonical digest per graph pointer, keyed on
	// the graph's (node count, edge count) for invalidation: every graph
	// mutator in this repository only ever adds nodes and edges (the
	// spiller rewrites its working graph with strictly more of both), so
	// unchanged counts mean unchanged content. A future pass that edits a
	// graph in place without growing it must bypass or clear this memo.
	digests    sync.Map // *ddg.Graph -> digestMemo
	hits       atomic.Uint64
	misses     atomic.Uint64
	baseHits   atomic.Uint64
	baseMisses atomic.Uint64
	evalHits   atomic.Uint64
	evalMisses atomic.Uint64
}

type digestMemo struct {
	nodes, edges int
	sum          [sha256.Size]byte
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{
		entries: map[cacheKey]*cacheEntry{},
		bases:   map[cacheKey]*baseEntry{},
		evals:   map[evalKey]*evalEntry{},
	}
}

// encBufs recycles the encoding buffers keyOf hashes; the cache sits on
// every scheduling request, so the key path must not allocate per call.
var encBufs = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// appendEncoding appends g's canonical text encoding — byte-identical to
// ddg.(*Graph).Encode, see TestAppendEncodingMatchesDDGEncode — without
// the fmt machinery that dominates Encode's cost.
func appendEncoding(buf []byte, g *ddg.Graph) []byte {
	buf = append(buf, "loop "...)
	buf = append(buf, g.LoopName...)
	buf = append(buf, " trips "...)
	buf = strconv.AppendInt(buf, g.TripsOrOne(), 10)
	buf = append(buf, '\n')
	for _, n := range g.Nodes() {
		buf = append(buf, "node "...)
		buf = append(buf, n.Label()...)
		buf = append(buf, ' ')
		buf = append(buf, n.Op.String()...)
		if n.Sym != "" {
			buf = append(buf, " sym "...)
			buf = append(buf, n.Sym...)
		}
		buf = append(buf, '\n')
	}
	for i, ne := 0, g.NumEdges(); i < ne; i++ {
		e := g.Edge(i)
		buf = append(buf, "edge "...)
		buf = append(buf, g.Node(e.From).Label()...)
		buf = append(buf, ' ')
		buf = append(buf, g.Node(e.To).Label()...)
		buf = append(buf, ' ')
		buf = append(buf, e.Kind.String()...)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, int64(e.Distance), 10)
		buf = append(buf, '\n')
	}
	return buf
}

// digestOf returns the canonical digest of g, memoized per pointer.
func (c *Cache) digestOf(g *ddg.Graph) [sha256.Size]byte {
	nodes, edges := g.NumNodes(), g.NumEdges()
	if v, ok := c.digests.Load(g); ok {
		if m := v.(digestMemo); m.nodes == nodes && m.edges == edges {
			if digestGuard && sha256.Sum256(appendEncoding(nil, g)) != m.sum {
				panic("sweep: graph " + g.LoopName + " mutated in place without growing; stale digest memo (see Cache.digests invariant)")
			}
			return m.sum
		}
	}
	bp := encBufs.Get().(*[]byte)
	buf := appendEncoding((*bp)[:0], g)
	sum := sha256.Sum256(buf)
	*bp = buf
	encBufs.Put(bp)
	c.digests.Store(g, digestMemo{nodes: nodes, edges: edges, sum: sum})
	return sum
}

// keyOf builds the cache key for one scheduling problem.
func (c *Cache) keyOf(g *ddg.Graph, m *machine.Config, opts sched.Options) cacheKey {
	return cacheKey{graph: c.digestOf(g), machine: m.Name(), opts: opts}
}

// Schedule returns the (possibly shared) schedule of g on m, computing it
// at most once per distinct (graph content, machine, options) triple.
// The schedule is computed on a private clone of g, so callers may mutate
// g afterwards; the returned schedule must be treated as read-only.
func (c *Cache) Schedule(g *ddg.Graph, m *machine.Config, opts sched.Options) (*sched.Schedule, error) {
	key := c.keyOf(g, m, opts)
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		c.mu.Unlock()
		c.hits.Add(1)
		<-e.ready
		return e.sched, e.err
	}
	e = &cacheEntry{ready: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()
	c.misses.Add(1)

	clone := g.Clone()
	e.sched, e.err = sched.Run(clone, m, opts)
	close(e.ready)
	return e.sched, e.err
}

// Base returns the (possibly shared) base-stage artifact of g on m: the
// modulo schedule of the unmodified loop plus its value lifetimes,
// computed at most once per distinct (graph content, machine, options)
// triple. The underlying scheduling request routes through Schedule, so
// the schedule-stage counters still observe it. The returned Base is
// immutable and shared; treat it as read-only. ctx is consulted before
// starting a computation and while waiting on another caller's in-flight
// one; a computation once started runs to completion (it is ctx-free and
// deterministic, so its result stays valid for every future caller).
func (c *Cache) Base(ctx context.Context, g *ddg.Graph, m *machine.Config, opts sched.Options) (*pipeline.Base, error) {
	key := c.keyOf(g, m, opts)
	c.mu.Lock()
	e, ok := c.bases[key]
	if ok {
		c.mu.Unlock()
		c.baseHits.Add(1)
		select {
		case <-e.ready:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return e.base, e.err
	}
	if err := ctx.Err(); err != nil {
		c.mu.Unlock()
		return nil, err
	}
	e = &baseEntry{ready: make(chan struct{})}
	c.bases[key] = e
	c.mu.Unlock()
	c.baseMisses.Add(1)

	e.base, e.err = pipeline.NewBaseWith(c, g, m, opts)
	close(e.ready)
	return e.base, e.err
}

// Evaluate returns the (possibly shared) per-model stage result — the
// Classified → Allocated → Spilled chain of internal/pipeline — computed
// at most once per distinct (graph content, machine, options, model,
// register budget). All models of one loop share a single base artifact.
// Deterministic failures (unschedulable or non-converging problems) are
// cached like results; context-cancellation errors are caller-dependent
// and are not retained. A waiter that observes another caller's
// cancellation retries while its own context is live, so one cancelled
// sweep cannot poison a concurrent one.
func (c *Cache) Evaluate(ctx context.Context, g *ddg.Graph, m *machine.Config, opts sched.Options, model core.Model, regs int) (*pipeline.ModelResult, error) {
	if model == core.Ideal || regs < 0 {
		regs = 0 // Ideal ignores the budget; all negatives mean unlimited
	}
	key := evalKey{base: c.keyOf(g, m, opts), model: model, regs: regs}
	for {
		c.mu.Lock()
		e, ok := c.evals[key]
		if !ok {
			break // this caller computes; c.mu still held
		}
		c.mu.Unlock()
		// Wait for the in-flight computation, but honour our own
		// context: a waiter must not be pinned to another caller's
		// long spill search after its own sweep is cancelled.
		select {
		case <-e.ready:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if e.err == nil {
			c.evalHits.Add(1)
			return e.res, nil
		}
		// The computation failed. A retained entry means the failure is
		// deterministic (still cached) — share it. A deleted entry means
		// it was caller-dependent (the computing caller's cancellation):
		// retry with our own context if it is still live.
		c.mu.Lock()
		retained := c.evals[key] == e
		c.mu.Unlock()
		if retained {
			c.evalHits.Add(1)
			return nil, e.err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		c.mu.Unlock()
		return nil, err
	}
	e := &evalEntry{ready: make(chan struct{})}
	c.evals[key] = e
	c.mu.Unlock()
	c.evalMisses.Add(1)

	b, err := c.Base(ctx, g, m, opts)
	if err != nil {
		e.err = err
	} else {
		e.res, e.err = pipeline.Evaluate(ctx, c, b, model, regs)
	}
	// Deterministic failures (e.g. spill non-convergence) are retained
	// like the schedule stage retains unschedulable problems; only
	// caller-dependent context errors are dropped so the next caller
	// recomputes.
	if e.err != nil && (errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded)) {
		c.mu.Lock()
		delete(c.evals, key)
		c.mu.Unlock()
	}
	close(e.ready)
	return e.res, e.err
}

// Forget drops the digest memo for g. The spill loop calls this (via an
// optional interface check in spill.RunSeeded) when a private working
// graph dies, so the memo doesn't pin dead graphs for the engine's
// lifetime. The schedule entries themselves are kept — they ARE the
// cache, and later identical content still hits them.
func (c *Cache) Forget(g *ddg.Graph) { c.digests.Delete(g) }

// Stats returns a snapshot of the schedule-stage hit/miss counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load()}
}

// StageStats is a per-stage snapshot of the cache counters: one
// CacheStats per cached pipeline stage.
type StageStats struct {
	// Schedule counts modulo-scheduling requests (sched.Run-shaped work).
	Schedule CacheStats
	// Base counts base-stage requests: the shared schedule + lifetime
	// artifact every model evaluation starts from.
	Base CacheStats
	// Eval counts per-model stage requests (classify/allocate/spill).
	Eval CacheStats
}

// String renders the per-stage counters, one line per stage. (The CLI's
// `ncdrf all` trailer formats the same counters itself, with the
// schedule line kept in its historical `schedule cache:` form.)
func (s StageStats) String() string {
	return fmt.Sprintf(
		"stage base: %d requests, %d computed, %d served from cache\n"+
			"stage eval: %d requests, %d computed, %d served from cache\n"+
			"stage schedule: %d requests, %d computed, %d served from cache",
		s.Base.Requests(), s.Base.Misses, s.Base.Hits,
		s.Eval.Requests(), s.Eval.Misses, s.Eval.Hits,
		s.Schedule.Requests(), s.Schedule.Misses, s.Schedule.Hits)
}

// StageStats returns a snapshot of every stage's counters.
func (c *Cache) StageStats() StageStats {
	return StageStats{
		Schedule: c.Stats(),
		Base:     CacheStats{Hits: c.baseHits.Load(), Misses: c.baseMisses.Load()},
		Eval:     CacheStats{Hits: c.evalHits.Load(), Misses: c.evalMisses.Load()},
	}
}

// Len returns the number of distinct scheduling problems seen.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
