// Package sweep is the batch evaluation engine behind every experiment
// runner: it executes (corpus × machine × model × register-size) grids on
// a bounded, cancellable worker pool and shares modulo-scheduling work
// across consumers through a content-addressed schedule cache.
//
// # Cache key scheme
//
// A schedule is fully determined by three inputs, which together form the
// cache key:
//
//   - the dependence graph, identified by the SHA-256 digest of its
//     canonical text encoding (ddg.(*Graph).Encode — loop header, nodes
//     in ID order, edges in insertion order). Content addressing makes
//     the cache correct under the spiller's in-place graph rewrites:
//     after spill code is inserted the encoding changes, so the rewritten
//     graph is a different key;
//   - the machine configuration, identified by its Name(). Configs are
//     immutable after construction and the presets give every distinct
//     configuration a distinct name; callers constructing machines by
//     hand must follow the same rule;
//   - the sched.Options value (a small comparable struct), so the
//     spiller's forced-MinII retries do not collide with the defaults.
//
// Each cached schedule is computed on a private clone of the request
// graph, so the shared *sched.Schedule stays valid even when the caller
// mutates its own graph afterwards (as the spill loop does). Cached
// schedules are shared between consumers and must be treated as
// read-only; every consumer in this repository already does (core.Swap
// copies before rebalancing).
//
// Hit/miss counters are exported through Cache.Stats for benchmarking:
// Misses is the number of schedules actually computed, Hits the number of
// sched.Run calls the in-memory tier absorbed, DiskHits the number served
// by the optional persistent tier.
//
// # Tiers
//
// Every stage cache is a stack of (up to) two tiers sharing the key
// scheme above:
//
//	flight  — one generic in-memory single-flight implementation per
//	          stage (see flight.go), parameterized only on error
//	          retention; shares in-flight work within the process.
//	store   — an optional content-addressed on-disk artifact store
//	          (internal/store, attached with Engine.SetStore): a flight
//	          miss reads through it before computing, and computed
//	          schedule/eval artifacts are written behind it, making a
//	          second process's run incremental.
package sweep

import (
	"context"
	"runtime"
	"sync/atomic"

	"ncdrf/internal/core"
	"ncdrf/internal/ddg"
	"ncdrf/internal/machine"
	"ncdrf/internal/pipeline"
	"ncdrf/internal/sched"
	"ncdrf/internal/store"
)

// Engine bundles the schedule cache with a worker-pool width. The zero
// value is not useful; construct with New. One Engine is meant to be
// shared across every runner of a process (that is where the cross-figure
// cache sharing comes from) and is safe for concurrent use.
type Engine struct {
	cache   *Cache
	workers int

	// memos shares whole result sets between runners; see Memo.
	memos *flight[string, any]

	// rowsComputed and rowsImplied count emitted result rows by
	// provenance across the engine's lifetime: computed rows went
	// through a per-cell evaluation (cache tiers included), implied rows
	// were synthesized from dominance by the frontier executor without
	// any evaluation. Surfaced through StageStats so a pruned sweep is
	// distinguishable from a computed one in stats output.
	rowsComputed, rowsImplied atomic.Uint64
}

// New returns an engine with the given worker-pool width; workers <= 0
// selects GOMAXPROCS.
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		cache:   NewCache(),
		workers: workers,
		memos:   newFlight[string, any](retainDeterministic),
	}
}

// SetStore attaches a persistent artifact store as the tier below the
// in-memory caches, making runs incremental across processes: schedule
// and eval artifacts are read through and written behind the memory
// tier. Attach before the engine serves its first request.
func (e *Engine) SetStore(st *store.Store) { e.cache.SetStore(st) }

// Store returns the attached persistent tier, or nil.
func (e *Engine) Store() *store.Store { return e.cache.Store() }

// Workers returns the pool width used by ForEach and Sweep.
func (e *Engine) Workers() int { return e.workers }

// Cache returns the engine's schedule cache (for stats reporting).
func (e *Engine) Cache() *Cache { return e.cache }

// StageStats returns the cache's per-stage counters plus the engine's
// row-provenance counters. Cache.StageStats alone leaves RowsComputed
// and RowsImplied zero — rows are an executor concept the cache never
// sees — so stats consumers that care about pruning report through the
// engine.
func (e *Engine) StageStats() StageStats {
	st := e.cache.StageStats()
	st.RowsComputed = e.rowsComputed.Load()
	st.RowsImplied = e.rowsImplied.Load()
	return st
}

// Schedule modulo-schedules g on m through the cache. It implements
// spill.Scheduler, so the engine can be plugged into the spill loop.
func (e *Engine) Schedule(g *ddg.Graph, m *machine.Config, opts sched.Options) (*sched.Schedule, error) {
	return e.cache.Schedule(g, m, opts)
}

// Forget forwards to Cache.Forget so the engine itself satisfies the
// spill loop's optional working-graph cleanup interface (VerifySample
// hands the engine, not the cache, to vm.VerifyModelWith).
func (e *Engine) Forget(g *ddg.Graph) { e.cache.Forget(g) }

// Base returns the shared base-stage artifact (schedule + lifetimes) of
// g on m with default options, served through the stage cache.
func (e *Engine) Base(ctx context.Context, g *ddg.Graph, m *machine.Config) (*pipeline.Base, error) {
	return e.cache.Base(ctx, g, m, sched.Options{})
}

// Compile runs the staged per-model pipeline for one loop — classify and
// allocate the shared base schedule, spill until the allocation fits —
// with every stage served through the cache. The Ideal model ignores
// regs (its register file is unlimited).
func (e *Engine) Compile(ctx context.Context, g *ddg.Graph, m *machine.Config, model core.Model, regs int) (*pipeline.ModelResult, error) {
	return e.cache.Evaluate(ctx, g, m, sched.Options{}, model, regs)
}

// EvaluateBase evaluates one model over an already-obtained shared base
// artifact, served through the eval cache. This is how the base-major
// sweep executor avoids re-requesting the base stage per unit: the
// group leader calls Base once, every unit of the group calls this.
func (e *Engine) EvaluateBase(ctx context.Context, b *pipeline.Base, model core.Model, regs int) (*pipeline.ModelResult, error) {
	return e.cache.EvaluateBase(ctx, b, model, regs)
}

// CompileAll evaluates every register-file model of one loop over a
// single shared base artifact: the scheduler and the lifetime analysis
// run (at most) once, and the four models reuse the result.
func (e *Engine) CompileAll(ctx context.Context, g *ddg.Graph, m *machine.Config, regs int) ([core.NumModels]*pipeline.ModelResult, error) {
	var out [core.NumModels]*pipeline.ModelResult
	for _, model := range core.Models {
		r, err := e.Compile(ctx, g, m, model, regs)
		if err != nil {
			return out, err
		}
		out[model] = r
	}
	return out, nil
}
