package sweep

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"ncdrf/internal/core"
	"ncdrf/internal/loops"
	"ncdrf/internal/machine"
	"ncdrf/internal/pipeline"
)

// TestShardPartitionsPlanExactly is the property test of the shard
// planner: for every n, the shards are disjoint, cover Plan() exactly
// and in order, are balanced to within one unit, and are stable across
// calls — `-shard 2/4` names the same cells on every machine.
func TestShardPartitionsPlanExactly(t *testing.T) {
	grid := testGrid()
	plan := grid.Plan()
	for n := 1; n <= len(plan)+1; n++ {
		var joined []Unit
		for i := 1; i <= n; i++ {
			units, err := grid.Shard(i, n)
			if err != nil {
				t.Fatalf("Shard(%d,%d): %v", i, n, err)
			}
			if len(units) < len(plan)/n || len(units) > len(plan)/n+1 {
				t.Fatalf("Shard(%d,%d) unbalanced: %d units of %d", i, n, len(units), len(plan))
			}
			again, _ := grid.Shard(i, n)
			if len(again) != len(units) {
				t.Fatalf("Shard(%d,%d) unstable across calls", i, n)
			}
			for k := range units {
				if units[k] != again[k] {
					t.Fatalf("Shard(%d,%d) unstable at %d: %+v vs %+v", i, n, k, units[k], again[k])
				}
			}
			joined = append(joined, units...)
		}
		if len(joined) != len(plan) {
			t.Fatalf("n=%d: shards join to %d units, plan has %d", n, len(joined), len(plan))
		}
		for k := range plan {
			if joined[k] != plan[k] {
				t.Fatalf("n=%d: joined[%d] = %+v, plan[%d] = %+v", n, k, joined[k], k, plan[k])
			}
		}
	}
	for _, bad := range [][2]int{{0, 3}, {4, 3}, {1, 0}, {-1, 2}} {
		if _, err := grid.Shard(bad[0], bad[1]); err == nil {
			t.Fatalf("Shard(%d,%d) accepted", bad[0], bad[1])
		}
	}
}

// TestPlanDigestDistinguishesGrids checks the merge-compatibility
// digest: identical grids agree, and changing the corpus content, the
// machine set or the cell list changes the digest.
func TestPlanDigestDistinguishesGrids(t *testing.T) {
	a, b := testGrid(), testGrid()
	if a.PlanDigest() != b.PlanDigest() {
		t.Fatal("identical grids digest differently")
	}
	b.Regs = []int{32}
	if a.PlanDigest() == b.PlanDigest() {
		t.Fatal("cell list not in digest")
	}
	c := testGrid()
	c.Machines = c.Machines[:1]
	if a.PlanDigest() == c.PlanDigest() {
		t.Fatal("machine set not in digest")
	}
	d := testGrid()
	d.Corpus = loops.Kernels()[1:5]
	if a.PlanDigest() == d.PlanDigest() {
		t.Fatal("corpus content not in digest")
	}
}

// TestSweepEmitsInPlanOrder pins the determinism contract the shard
// workflow depends on: emit follows plan order even with a concurrent
// pool, so two runs of the same grid produce byte-identical streams.
func TestSweepEmitsInPlanOrder(t *testing.T) {
	eng := New(8)
	grid := testGrid()
	plan := grid.Plan()
	var got []Result
	if err := eng.Sweep(context.Background(), grid, func(r Result) { got = append(got, r) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(plan) {
		t.Fatalf("emitted %d results, want %d", len(got), len(plan))
	}
	for k, u := range plan {
		want := Result{
			Loop:    grid.Corpus[u.Loop].LoopName,
			Machine: grid.Machines[u.Machine].Name(),
			Model:   u.Model.String(),
			Regs:    u.Regs,
		}
		r := got[k]
		if r.Loop != want.Loop || r.Machine != want.Machine || r.Model != want.Model || r.Regs != want.Regs {
			t.Fatalf("emit %d out of plan order: got %s/%s/%s/%d, want %s/%s/%s/%d",
				k, r.Loop, r.Machine, r.Model, r.Regs, want.Loop, want.Machine, want.Model, want.Regs)
		}
	}
}

// runShard produces one shard output file in memory, the way
// `ncdrf sweep -shard i/n -o file` does: header line, then rows.
func runShard(t *testing.T, eng *Engine, grid Grid, i, n int) []byte {
	t.Helper()
	units, err := grid.Shard(i, n)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	h := ShardHeader{Shard: i, Of: n, Units: len(units), Grid: grid.PlanDigest(), Format: ShardFormatVersion}
	if err := WriteShardHeader(&buf, h); err != nil {
		t.Fatal(err)
	}
	if err := eng.SweepUnits(context.Background(), grid, units, func(r Result) {
		if err := pipeline.EncodeRow(&buf, r); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestThreeShardsMergeGolden is the engine-level acceptance test: three
// shards, run on three independent engines, merge into the
// byte-identical stream of an unsharded run of the same grid — in any
// merge-argument order.
func TestThreeShardsMergeGolden(t *testing.T) {
	grid := testGrid()

	var single bytes.Buffer
	if err := New(4).Sweep(context.Background(), grid, func(r Result) {
		if err := pipeline.EncodeRow(&single, r); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}

	var files []ShardFile
	for i := 1; i <= 3; i++ {
		raw := runShard(t, New(4), grid, i, 3)
		f, err := ReadShardFile(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		files = append(files, f)
	}
	// Any argument order merges the same.
	for _, order := range [][]int{{0, 1, 2}, {2, 0, 1}} {
		var merged bytes.Buffer
		shuffled := []ShardFile{files[order[0]], files[order[1]], files[order[2]]}
		if err := MergeShards(&merged, shuffled); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(merged.Bytes(), single.Bytes()) {
			t.Fatalf("merged stream differs from unsharded run:\nmerged:\n%s\nsingle:\n%s",
				merged.String(), single.String())
		}
	}
}

// TestMergeRejectsBadShardSets covers the validation surface: missing,
// duplicated, cross-grid and truncated shards are all refused.
func TestMergeRejectsBadShardSets(t *testing.T) {
	grid := testGrid()
	eng := New(2)
	var files []ShardFile
	for i := 1; i <= 2; i++ {
		f, err := ReadShardFile(bytes.NewReader(runShard(t, eng, grid, i, 2)))
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	var sink bytes.Buffer
	if err := MergeShards(&sink, files[:1]); err == nil || !strings.Contains(err.Error(), "incomplete") {
		t.Fatalf("incomplete set accepted: %v", err)
	}
	if err := MergeShards(&sink, []ShardFile{files[0], files[0]}); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("duplicate shard accepted: %v", err)
	}
	other := files[1]
	other.Header.Grid = "deadbeef"
	if err := MergeShards(&sink, []ShardFile{files[0], other}); err == nil || !strings.Contains(err.Error(), "different grid") {
		t.Fatalf("cross-grid shard accepted: %v", err)
	}

	raw := runShard(t, eng, grid, 1, 2)
	truncated := raw[:bytes.LastIndexByte(raw[:len(raw)-1], '\n')+1]
	if _, err := ReadShardFile(bytes.NewReader(truncated)); err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("truncated shard accepted: %v", err)
	}
	if _, err := ReadShardFile(strings.NewReader("")); err == nil {
		t.Fatal("empty file accepted")
	}
	if _, err := ReadShardFile(strings.NewReader(`{"loop":"x","machine":"m","model":"ideal","regs":0}` + "\n")); err == nil {
		t.Fatal("headerless row stream accepted as shard file")
	}
	bad := ShardHeader{Shard: 1, Of: 1, Units: 0, Grid: "g", Format: ShardFormatVersion + 1}
	var hdr bytes.Buffer
	if err := WriteShardHeader(&hdr, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadShardFile(&hdr); err == nil || !strings.Contains(err.Error(), "format") {
		t.Fatalf("future-format shard accepted: %v", err)
	}
}

// TestShardsShareStoreAcrossEngines is the resumability contract: two
// shards of one grid run as separate engines (processes, in real use)
// over one artifact directory, and the second shard reads the first
// one's schedules from disk.
func TestShardsShareStoreAcrossEngines(t *testing.T) {
	grid := Grid{
		Corpus:   loops.Kernels()[:5],
		Machines: []*machine.Config{machine.Eval(3)},
		Models:   []core.Model{core.Unified, core.Swapped},
		Regs:     []int{16, 64},
	}
	dir := t.TempDir()
	for i := 1; i <= 2; i++ {
		eng := storeEng(t, 2, dir)
		units, err := grid.Shard(i, 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.SweepUnits(context.Background(), grid, units, func(Result) {}); err != nil {
			t.Fatal(err)
		}
		if i == 2 {
			if hits := eng.Cache().StageStats().Schedule.DiskHits; hits == 0 {
				t.Fatal("second shard read no schedules from the first shard's store")
			}
		}
	}
}
