package ddg

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"ncdrf/internal/machine"
)

func buildChain(t *testing.T) *Graph {
	t.Helper()
	g := New("chain", 10)
	l := g.AddNode(LOAD, "L1")
	m := g.AddNode(FMUL, "M2")
	a := g.AddNode(FADD, "A3")
	s := g.AddNode(STORE, "S4")
	g.Flow(l, m)
	g.Flow(m, a)
	g.Flow(a, s)
	return g
}

func TestAddNodeAndLookups(t *testing.T) {
	g := buildChain(t)
	if g.NumNodes() != 4 || g.NumEdges() != 3 {
		t.Fatalf("got %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if n := g.NodeByName("M2"); n == nil || n.Op != FMUL {
		t.Fatalf("NodeByName(M2) = %v", n)
	}
	if n := g.NodeByName("missing"); n != nil {
		t.Fatalf("NodeByName(missing) = %v, want nil", n)
	}
	if got := g.Node(0).String(); got != "L1:load" {
		t.Fatalf("Node(0).String() = %q", got)
	}
	if g.CountOps(LOAD) != 1 || g.CountOps(STORE) != 1 || g.CountOps(FMUL) != 1 {
		t.Fatal("CountOps wrong")
	}
	if g.MemOps() != 2 {
		t.Fatalf("MemOps = %d, want 2", g.MemOps())
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate name")
		}
	}()
	g := New("dup", 1)
	g.AddNode(FADD, "A")
	g.AddNode(FMUL, "A")
}

func TestAddEdgeValidation(t *testing.T) {
	g := New("v", 1)
	s := g.AddNode(STORE, "S")
	a := g.AddNode(FADD, "A")
	l := g.AddNode(LOAD, "L")

	if err := g.AddEdge(Edge{From: s, To: a, Kind: Flow}); err == nil {
		t.Fatal("flow edge from store must be rejected")
	}
	if err := g.AddEdge(Edge{From: a, To: s, Kind: Flow}); err != nil {
		t.Fatalf("flow into store should be fine: %v", err)
	}
	if err := g.AddEdge(Edge{From: a, To: l, Kind: Mem}); err == nil {
		t.Fatal("mem edge from non-memory op must be rejected")
	}
	if err := g.AddEdge(Edge{From: s, To: l, Kind: Mem, Distance: 1}); err != nil {
		t.Fatalf("store->load mem edge should be fine: %v", err)
	}
	if err := g.AddEdge(Edge{From: a, To: 99, Kind: Flow}); err == nil {
		t.Fatal("edge to missing node must be rejected")
	}
	if err := g.AddEdge(Edge{From: a, To: s, Kind: Flow, Distance: -1}); err == nil {
		t.Fatal("negative distance must be rejected")
	}
}

func TestConsumersDeduplicated(t *testing.T) {
	g := New("c", 1)
	a := g.AddNode(FADD, "A")
	b := g.AddNode(FMUL, "B")
	c := g.AddNode(FMUL, "C")
	g.Flow(a, b)
	g.Flow(a, b) // same consumer twice (two operands)
	g.FlowD(a, c, 1)
	got := g.Consumers(a)
	if len(got) != 2 || got[0] != b || got[1] != c {
		t.Fatalf("Consumers = %v", got)
	}
}

func TestValidateRejectsZeroDistanceCycle(t *testing.T) {
	g := New("cyc", 1)
	a := g.AddNode(FADD, "A")
	b := g.AddNode(FMUL, "B")
	g.Flow(a, b)
	g.Flow(b, a)
	if err := g.Validate(); err == nil {
		t.Fatal("zero-distance cycle must fail validation")
	}
	// With distance 1 on the back edge it becomes a legal recurrence.
	g2 := New("rec", 1)
	a2 := g2.AddNode(FADD, "A")
	b2 := g2.AddNode(FMUL, "B")
	g2.Flow(a2, b2)
	g2.FlowD(b2, a2, 1)
	if err := g2.Validate(); err != nil {
		t.Fatalf("legal recurrence rejected: %v", err)
	}
}

func TestValidateEmptyGraph(t *testing.T) {
	if err := New("empty", 1).Validate(); err == nil {
		t.Fatal("empty graph must fail validation")
	}
}

func TestTopoOrderRespectsZeroDistanceEdges(t *testing.T) {
	g := buildChain(t)
	g.FlowD(3-1, 0, 2) // loop-carried back edge must not break ordering
	order := g.TopoOrder()
	if len(order) != g.NumNodes() {
		t.Fatalf("topo order has %d nodes, want %d", len(order), g.NumNodes())
	}
	pos := make(map[int]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range g.Edges() {
		if e.Distance == 0 && pos[e.From] >= pos[e.To] {
			t.Fatalf("edge %v violated by topo order %v", e, order)
		}
	}
}

func TestSCCs(t *testing.T) {
	g := New("scc", 1)
	a := g.AddNode(FADD, "A")
	b := g.AddNode(FMUL, "B")
	c := g.AddNode(FADD, "C")
	d := g.AddNode(LOAD, "D")
	g.Flow(a, b)
	g.FlowD(b, a, 1) // {A,B} is one SCC
	g.Flow(b, c)
	g.Flow(d, a)
	comps := g.SCCs()
	if len(comps) != 3 {
		t.Fatalf("SCCs = %v, want 3 components", comps)
	}
	var sizes []int
	for _, comp := range comps {
		sizes = append(sizes, len(comp))
	}
	total := 0
	foundPair := false
	for i, comp := range comps {
		total += len(comp)
		if len(comp) == 2 {
			foundPair = true
			if comp[0] != a || comp[1] != b {
				t.Fatalf("pair component = %v, want [A B]", comp)
			}
		}
		_ = i
	}
	if total != 4 || !foundPair {
		t.Fatalf("components %v sizes %v", comps, sizes)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := buildChain(t)
	g.Node(0).Sym = "x"
	c := g.Clone()
	if c.NumNodes() != g.NumNodes() || c.NumEdges() != g.NumEdges() {
		t.Fatal("clone size mismatch")
	}
	c.AddNode(FADD, "extra")
	c.Node(0).Sym = "y"
	if g.NumNodes() != 4 || g.Node(0).Sym != "x" {
		t.Fatal("mutating clone affected original")
	}
	if c.NodeByName("L1") == nil {
		t.Fatal("clone lost name index")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	g := buildChain(t)
	g.Node(0).Sym = "x"
	g.MustAddEdge(Edge{From: 3, To: 0, Kind: Mem, Distance: 1})
	var buf bytes.Buffer
	if err := g.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v\ninput:\n%s", err, buf.String())
	}
	if back.LoopName != g.LoopName || back.Trips != g.Trips {
		t.Fatalf("header mismatch: %s/%d", back.LoopName, back.Trips)
	}
	if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
		t.Fatal("shape mismatch after round trip")
	}
	if back.Node(0).Sym != "x" {
		t.Fatal("sym lost in round trip")
	}
	for i, e := range back.Edges() {
		if e != g.Edge(i) {
			t.Fatalf("edge %d mismatch: %v vs %v", i, e, g.Edge(i))
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	bad := []string{
		"",
		"node A fadd",
		"loop x trips z",
		"loop x trips 1\nnode A bogus",
		"loop x trips 1\nnode A fadd\nnode A fadd",
		"loop x trips 1\nnode A fadd\nedge A B flow 0",
		"loop x trips 1\nnode A fadd\nnode B fmul\nedge A B weird 0",
		"loop x trips 1\nnode A fadd\nnode B fmul\nedge A B flow x",
		"loop x trips 1\nwhat A",
		"edge A B flow 0",
	}
	for i, in := range bad {
		if _, err := Decode(strings.NewReader(in)); err == nil {
			t.Fatalf("case %d: Decode(%q) succeeded, want error", i, in)
		}
	}
}

func TestDecodeSkipsCommentsAndBlanks(t *testing.T) {
	in := "# comment\n\nloop l trips 5\n# another\nnode A fadd\n\nnode B store\nedge A B flow 0\n"
	g, err := Decode(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 || g.Trips != 5 {
		t.Fatalf("decoded %v", g)
	}
}

func TestDOTOutput(t *testing.T) {
	g := buildChain(t)
	g.MustAddEdge(Edge{From: 3, To: 0, Kind: Mem, Distance: 1})
	var buf bytes.Buffer
	if err := g.DOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "\"L1\"", "style=dashed", "d=1", "style=solid"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestOpCodeProperties(t *testing.T) {
	if FADD.FUKind() != machine.Adder || FSUB.FUKind() != machine.Adder || CONV.FUKind() != machine.Adder {
		t.Fatal("adder ops misrouted")
	}
	if FMUL.FUKind() != machine.Multiplier || FDIV.FUKind() != machine.Multiplier {
		t.Fatal("multiplier ops misrouted")
	}
	if LOAD.FUKind() != machine.MemPort || STORE.FUKind() != machine.MemPort {
		t.Fatal("memory ops misrouted")
	}
	if STORE.ProducesValue() {
		t.Fatal("store must not produce a value")
	}
	if !LOAD.ProducesValue() || !FADD.ProducesValue() {
		t.Fatal("load/fadd must produce values")
	}
	for op := OpCode(0); op < numOpCodes; op++ {
		back, err := ParseOpCode(op.String())
		if err != nil || back != op {
			t.Fatalf("ParseOpCode(%q) = %v, %v", op.String(), back, err)
		}
	}
	if _, err := ParseOpCode("nope"); err == nil {
		t.Fatal("ParseOpCode must reject unknown mnemonics")
	}
	if OpCode(-1).Valid() || OpCode(99).Valid() {
		t.Fatal("Valid() wrong for out-of-range opcodes")
	}
}

// randomDAG builds a random acyclic distance-0 graph, optionally with
// loop-carried back edges, for property tests.
func randomDAG(r *rand.Rand, n int) *Graph {
	g := New("rand", 1)
	ops := []OpCode{FADD, FSUB, FMUL, FDIV, LOAD, CONV}
	for i := 0; i < n; i++ {
		g.AddNode(ops[r.Intn(len(ops))], "")
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Intn(4) == 0 {
				g.Flow(i, j) // forward edges only: acyclic at distance 0
			}
		}
	}
	// A few loop-carried back edges.
	for k := 0; k < n/3; k++ {
		from := r.Intn(n)
		to := r.Intn(n)
		g.FlowD(from, to, 1+r.Intn(2))
	}
	return g
}

func TestPropertyTopoOrderAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, 2+r.Intn(20))
		if err := g.Validate(); err != nil {
			return false
		}
		order := g.TopoOrder()
		if len(order) != g.NumNodes() {
			return false
		}
		pos := make([]int, g.NumNodes())
		for i, id := range order {
			pos[id] = i
		}
		for _, e := range g.Edges() {
			if e.Distance == 0 && pos[e.From] >= pos[e.To] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySCCPartition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, 2+r.Intn(15))
		comps := g.SCCs()
		seen := map[int]int{}
		for ci, comp := range comps {
			for _, id := range comp {
				if _, dup := seen[id]; dup {
					return false // node in two components
				}
				seen[id] = ci
			}
		}
		return len(seen) == g.NumNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEncodeDecodeIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, 2+r.Intn(12))
		var buf bytes.Buffer
		if err := g.Encode(&buf); err != nil {
			return false
		}
		back, err := Decode(&buf)
		if err != nil {
			return false
		}
		if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
			return false
		}
		for i := range g.Nodes() {
			if back.Node(i).Op != g.Node(i).Op {
				return false
			}
		}
		for i, e := range back.Edges() {
			if e != g.Edge(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestEdgeIndicesMatchEdgeCopies pins the allocation-free adjacency
// accessors to the copying ones: same edges, same order, and zero
// allocations per call.
func TestEdgeIndicesMatchEdgeCopies(t *testing.T) {
	g := buildChain(t)
	g.FlowD(g.NodeByName("A3").ID, g.NodeByName("M2").ID, 1)
	for id := 0; id < g.NumNodes(); id++ {
		outs := g.OutEdges(id)
		idx := g.OutEdgeIndices(id)
		if len(outs) != len(idx) {
			t.Fatalf("node %d: out lengths differ", id)
		}
		for i, ei := range idx {
			if g.Edge(ei) != outs[i] {
				t.Fatalf("node %d out[%d]: %+v != %+v", id, i, g.Edge(ei), outs[i])
			}
		}
		ins := g.InEdges(id)
		inIdx := g.InEdgeIndices(id)
		if len(ins) != len(inIdx) {
			t.Fatalf("node %d: in lengths differ", id)
		}
		for i, ei := range inIdx {
			if g.Edge(ei) != ins[i] {
				t.Fatalf("node %d in[%d]: %+v != %+v", id, i, g.Edge(ei), ins[i])
			}
		}
	}
	if per := testing.AllocsPerRun(100, func() {
		_ = g.OutEdgeIndices(1)
		_ = g.InEdgeIndices(1)
	}); per != 0 {
		t.Fatalf("index accessors allocate %.1f/call, want 0", per)
	}
}

// TestRewriteEdgesRebuildsAdjacency checks the batch-edit primitive: an
// in-place substitution plus appended edges must leave the graph exactly
// as if it had been constructed with the edited list via AddEdge —
// including the ascending-by-edge-index adjacency lists the scheduler
// iterates.
func TestRewriteEdgesRebuildsAdjacency(t *testing.T) {
	g := buildChain(t)
	l, m, a, s := g.NodeByName("L1").ID, g.NodeByName("M2").ID, g.NodeByName("A3").ID, g.NodeByName("S4").ID
	// Redirect M2's input to come from A3 at distance 1 (a recurrence)
	// and append a fresh L1->A3 edge.
	g.RewriteEdges(func(edges []Edge) []Edge {
		edges[0] = Edge{From: a, To: m, Kind: Flow, Distance: 1}
		return append(edges, Edge{From: l, To: a, Kind: Flow})
	})

	want := New("chain", 10)
	for _, n := range g.Nodes() {
		want.AddNode(n.Op, n.Name)
	}
	want.MustAddEdge(Edge{From: a, To: m, Kind: Flow, Distance: 1})
	want.MustAddEdge(Edge{From: m, To: a, Kind: Flow})
	want.MustAddEdge(Edge{From: a, To: s, Kind: Flow})
	want.MustAddEdge(Edge{From: l, To: a, Kind: Flow})

	if g.NumEdges() != want.NumEdges() {
		t.Fatalf("edge count %d, want %d", g.NumEdges(), want.NumEdges())
	}
	for i := 0; i < g.NumEdges(); i++ {
		if g.Edge(i) != want.Edge(i) {
			t.Fatalf("edge %d: %+v, want %+v", i, g.Edge(i), want.Edge(i))
		}
	}
	for id := 0; id < g.NumNodes(); id++ {
		gi, wi := g.OutEdgeIndices(id), want.OutEdgeIndices(id)
		if len(gi) != len(wi) {
			t.Fatalf("node %d out-degree %d, want %d", id, len(gi), len(wi))
		}
		for i := range gi {
			if gi[i] != wi[i] {
				t.Fatalf("node %d out adjacency %v, want %v", id, gi, wi)
			}
		}
		gi, wi = g.InEdgeIndices(id), want.InEdgeIndices(id)
		if len(gi) != len(wi) {
			t.Fatalf("node %d in-degree %d, want %d", id, len(gi), len(wi))
		}
		for i := range gi {
			if gi[i] != wi[i] {
				t.Fatalf("node %d in adjacency %v, want %v", id, gi, wi)
			}
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestRewriteEdgesPanicsOnInvalidEdge: the batch editor enforces the
// same rules as AddEdge, loudly.
func TestRewriteEdgesPanicsOnInvalidEdge(t *testing.T) {
	g := buildChain(t)
	s := g.NodeByName("S4").ID
	defer func() {
		if recover() == nil {
			t.Fatal("RewriteEdges accepted a flow edge from a store")
		}
	}()
	g.RewriteEdges(func(edges []Edge) []Edge {
		// Stores produce no value; a flow edge from one must panic.
		return append(edges, Edge{From: s, To: 0, Kind: Flow})
	})
}
