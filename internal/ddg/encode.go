package ddg

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The text encoding is a line-oriented format used by the CLI and the
// corpus files:
//
//	loop <name> trips <n>
//	node <name> <opcode> [sym <symbol>]
//	edge <from-name> <to-name> <flow|mem> <distance>
//
// Node names are mandatory in the encoding (anonymous nodes are written
// with their synthetic n<ID> labels).

// Encode writes the graph in the text format.
func (g *Graph) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "loop %s trips %d\n", g.LoopName, g.TripsOrOne())
	for _, n := range g.nodes {
		if n.Sym != "" {
			fmt.Fprintf(bw, "node %s %s sym %s\n", n.Label(), n.Op, n.Sym)
		} else {
			fmt.Fprintf(bw, "node %s %s\n", n.Label(), n.Op)
		}
	}
	for _, e := range g.edges {
		fmt.Fprintf(bw, "edge %s %s %s %d\n",
			g.nodes[e.From].Label(), g.nodes[e.To].Label(), e.Kind, e.Distance)
	}
	return bw.Flush()
}

// Decode parses one graph in the text format. Extra blank lines and
// #-comments are permitted.
func Decode(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var g *Graph
	ids := map[string]int{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "loop":
			if len(fields) != 4 || fields[2] != "trips" {
				return nil, fmt.Errorf("ddg decode line %d: malformed loop header %q", lineNo, line)
			}
			trips, err := strconv.ParseInt(fields[3], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("ddg decode line %d: bad trip count: %v", lineNo, err)
			}
			g = New(fields[1], trips)
		case "node":
			if g == nil {
				return nil, fmt.Errorf("ddg decode line %d: node before loop header", lineNo)
			}
			if len(fields) != 3 && !(len(fields) == 5 && fields[3] == "sym") {
				return nil, fmt.Errorf("ddg decode line %d: malformed node %q", lineNo, line)
			}
			op, err := ParseOpCode(fields[2])
			if err != nil {
				return nil, fmt.Errorf("ddg decode line %d: %v", lineNo, err)
			}
			if _, dup := ids[fields[1]]; dup {
				return nil, fmt.Errorf("ddg decode line %d: duplicate node %q", lineNo, fields[1])
			}
			id := g.AddNode(op, fields[1])
			if len(fields) == 5 {
				g.Node(id).Sym = fields[4]
			}
			ids[fields[1]] = id
		case "edge":
			if g == nil {
				return nil, fmt.Errorf("ddg decode line %d: edge before loop header", lineNo)
			}
			if len(fields) != 5 {
				return nil, fmt.Errorf("ddg decode line %d: malformed edge %q", lineNo, line)
			}
			from, ok := ids[fields[1]]
			if !ok {
				return nil, fmt.Errorf("ddg decode line %d: unknown node %q", lineNo, fields[1])
			}
			to, ok := ids[fields[2]]
			if !ok {
				return nil, fmt.Errorf("ddg decode line %d: unknown node %q", lineNo, fields[2])
			}
			var kind EdgeKind
			switch fields[3] {
			case "flow":
				kind = Flow
			case "mem":
				kind = Mem
			default:
				return nil, fmt.Errorf("ddg decode line %d: unknown edge kind %q", lineNo, fields[3])
			}
			dist, err := strconv.Atoi(fields[4])
			if err != nil {
				return nil, fmt.Errorf("ddg decode line %d: bad distance: %v", lineNo, err)
			}
			if err := g.AddEdge(Edge{From: from, To: to, Kind: kind, Distance: dist}); err != nil {
				return nil, fmt.Errorf("ddg decode line %d: %v", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("ddg decode line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("ddg decode: no loop header found")
	}
	return g, nil
}

// DOT renders the graph in Graphviz format, flow edges solid and memory
// edges dashed, loop-carried edges annotated with their distance.
func (g *Graph) DOT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n", g.LoopName)
	fmt.Fprintf(bw, "  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n")
	for _, n := range g.nodes {
		fmt.Fprintf(bw, "  %q [label=\"%s\\n%s\"];\n", n.Label(), n.Label(), n.Op)
	}
	// Sort edges for stable output.
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	for _, e := range edges {
		style := "solid"
		if e.Kind == Mem {
			style = "dashed"
		}
		if e.Distance > 0 {
			fmt.Fprintf(bw, "  %q -> %q [style=%s, label=\"d=%d\"];\n",
				g.nodes[e.From].Label(), g.nodes[e.To].Label(), style, e.Distance)
		} else {
			fmt.Fprintf(bw, "  %q -> %q [style=%s];\n",
				g.nodes[e.From].Label(), g.nodes[e.To].Label(), style)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
