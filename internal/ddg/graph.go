package ddg

import (
	"fmt"
	"sort"
)

// Graph is a loop-body data-dependence graph. The zero value is an empty
// graph ready to use.
type Graph struct {
	// LoopName identifies the source loop (benchmark/kernel name).
	LoopName string
	// Trips is the estimated number of iterations the loop executes at
	// run time; used to weight dynamic (cycle-based) statistics. Zero
	// means unknown and is treated as 1 by consumers.
	Trips int64

	nodes  []*Node
	edges  []Edge
	out    [][]int // edge indices by From
	in     [][]int // edge indices by To
	byName map[string]int
}

// New returns an empty graph with the given loop name and trip count.
func New(name string, trips int64) *Graph {
	return &Graph{LoopName: name, Trips: trips}
}

// AddNode appends an operation and returns its assigned ID. Names, when
// non-empty, must be unique; a duplicate name panics since it indicates a
// construction bug.
func (g *Graph) AddNode(op OpCode, name string) int {
	if !op.Valid() {
		panic(fmt.Sprintf("ddg: AddNode with invalid opcode %d", int(op)))
	}
	if name != "" {
		if g.byName == nil {
			g.byName = make(map[string]int)
		}
		if _, dup := g.byName[name]; dup {
			panic(fmt.Sprintf("ddg: duplicate node name %q in loop %q", name, g.LoopName))
		}
		g.byName[name] = len(g.nodes)
	}
	n := &Node{ID: len(g.nodes), Op: op, Name: name, SpillSlot: -1}
	g.nodes = append(g.nodes, n)
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return n.ID
}

// AddEdge appends a dependence edge. Node IDs must exist, the distance
// must be non-negative, and flow edges must originate at a value-producing
// operation.
func (g *Graph) AddEdge(e Edge) error {
	if err := g.checkEdge(e); err != nil {
		return err
	}
	idx := len(g.edges)
	g.edges = append(g.edges, e)
	g.out[e.From] = append(g.out[e.From], idx)
	g.in[e.To] = append(g.in[e.To], idx)
	return nil
}

// MustAddEdge is AddEdge but panics on error; for hand-built graphs.
func (g *Graph) MustAddEdge(e Edge) {
	if err := g.AddEdge(e); err != nil {
		panic(err)
	}
}

// Flow is shorthand for adding an intra-iteration flow edge from->to.
func (g *Graph) Flow(from, to int) { g.MustAddEdge(Edge{From: from, To: to, Kind: Flow}) }

// FlowD adds a flow edge with loop-carried distance d.
func (g *Graph) FlowD(from, to, d int) {
	g.MustAddEdge(Edge{From: from, To: to, Kind: Flow, Distance: d})
}

// NumNodes returns the number of operations.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the number of dependence edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Node returns the node with the given ID.
func (g *Graph) Node(id int) *Node { return g.nodes[id] }

// NodeByName returns the node with the given name, or nil.
func (g *Graph) NodeByName(name string) *Node {
	if id, ok := g.byName[name]; ok {
		return g.nodes[id]
	}
	return nil
}

// Nodes returns the nodes in ID order. The slice is shared; callers must
// not modify it.
func (g *Graph) Nodes() []*Node { return g.nodes }

// Edges returns a copy of all edges.
func (g *Graph) Edges() []Edge { return append([]Edge(nil), g.edges...) }

// Edge returns the edge with the given index.
func (g *Graph) Edge(i int) Edge { return g.edges[i] }

// OutEdges returns the edges leaving node id.
func (g *Graph) OutEdges(id int) []Edge {
	res := make([]Edge, 0, len(g.out[id]))
	for _, ei := range g.out[id] {
		res = append(res, g.edges[ei])
	}
	return res
}

// InEdges returns the edges entering node id.
func (g *Graph) InEdges(id int) []Edge {
	res := make([]Edge, 0, len(g.in[id]))
	for _, ei := range g.in[id] {
		res = append(res, g.edges[ei])
	}
	return res
}

// OutEdgeIndices returns the indices (into Edge) of the edges leaving
// node id, in ascending edge order. The slice is shared with the graph;
// callers must not modify it. It is the allocation-free form of OutEdges
// for hot loops (the modulo scheduler's inner placement loop walks
// adjacency on every eviction probe).
func (g *Graph) OutEdgeIndices(id int) []int { return g.out[id] }

// InEdgeIndices is OutEdgeIndices for the edges entering node id.
func (g *Graph) InEdgeIndices(id int) []int { return g.in[id] }

// RewriteEdges applies one batch edit to the edge list in place: edit
// receives the live edge slice and returns its replacement (it may
// modify entries in place and/or append). Afterwards every edge is
// re-validated with the AddEdge rules and the adjacency indexes are
// rebuilt, so the graph behaves exactly as if it had been reconstructed
// with the edited list in order. An invalid edited edge panics, like
// MustAddEdge: batch rewriters (the spiller) run on graphs they built
// themselves, so a bad edge is a construction bug, not an input error.
//
// This is the mutation primitive for passes that rewrite a working
// graph between rounds without paying for a full rebuild. Note the
// cache-digest contract (internal/sweep): in-repo rewriters must
// strictly grow the graph (the spiller adds a store, reloads and their
// edges every round), so content-digest memos keyed on (node count,
// edge count) stay sound.
func (g *Graph) RewriteEdges(edit func(edges []Edge) []Edge) {
	g.edges = edit(g.edges)
	for i, e := range g.edges {
		if err := g.checkEdge(e); err != nil {
			panic(fmt.Sprintf("ddg: RewriteEdges produced invalid edge %d: %v", i, err))
		}
	}
	// Rebuild the adjacency indexes, reusing their backing arrays: the
	// rebuilt lists are ascending in edge index, exactly like lists grown
	// by AddEdge (indices are assigned in insertion order).
	for i := range g.out {
		g.out[i] = g.out[i][:0]
	}
	for i := range g.in {
		g.in[i] = g.in[i][:0]
	}
	for idx, e := range g.edges {
		g.out[e.From] = append(g.out[e.From], idx)
		g.in[e.To] = append(g.in[e.To], idx)
	}
}

// checkEdge holds AddEdge's validation rules, shared with RewriteEdges.
func (g *Graph) checkEdge(e Edge) error {
	if e.From < 0 || e.From >= len(g.nodes) || e.To < 0 || e.To >= len(g.nodes) {
		return fmt.Errorf("ddg: edge %v references missing node (have %d nodes)", e, len(g.nodes))
	}
	if e.Distance < 0 {
		return fmt.Errorf("ddg: edge %v has negative distance", e)
	}
	if e.Kind == Flow && !g.nodes[e.From].Op.ProducesValue() {
		return fmt.Errorf("ddg: flow edge %v from non-producing op %s", e, g.nodes[e.From].Op)
	}
	if e.Kind == Mem && (!g.nodes[e.From].Op.IsMem() || !g.nodes[e.To].Op.IsMem()) {
		return fmt.Errorf("ddg: mem edge %v between non-memory ops", e)
	}
	return nil
}

// Consumers returns the IDs of nodes that read the value produced by id
// (flow successors, any distance), deduplicated, in ascending order.
func (g *Graph) Consumers(id int) []int {
	seen := map[int]bool{}
	var res []int
	for _, ei := range g.out[id] {
		e := g.edges[ei]
		if e.Kind == Flow && !seen[e.To] {
			seen[e.To] = true
			res = append(res, e.To)
		}
	}
	sort.Ints(res)
	return res
}

// CountOps returns the number of nodes with the given opcode.
func (g *Graph) CountOps(op OpCode) int {
	n := 0
	for _, nd := range g.nodes {
		if nd.Op == op {
			n++
		}
	}
	return n
}

// MemOps returns the number of memory operations (loads + stores).
func (g *Graph) MemOps() int {
	n := 0
	for _, nd := range g.nodes {
		if nd.Op.IsMem() {
			n++
		}
	}
	return n
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.LoopName, g.Trips)
	for _, n := range g.nodes {
		id := c.AddNode(n.Op, n.Name)
		c.nodes[id].Sym = n.Sym
		c.nodes[id].SpillSlot = n.SpillSlot
	}
	for _, e := range g.edges {
		c.MustAddEdge(e)
	}
	return c
}

// TripsOrOne returns the trip count, defaulting to 1 when unset.
func (g *Graph) TripsOrOne() int64 {
	if g.Trips <= 0 {
		return 1
	}
	return g.Trips
}

// String renders a short summary ("name: 7 nodes, 8 edges").
func (g *Graph) String() string {
	return fmt.Sprintf("%s: %d nodes, %d edges", g.LoopName, len(g.nodes), len(g.edges))
}
