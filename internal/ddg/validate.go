package ddg

import (
	"fmt"
)

// Validate checks structural invariants that every loop DDG must satisfy
// before scheduling:
//
//   - every flow edge originates at a value-producing node;
//   - the distance-0 subgraph is acyclic (a dependence cycle entirely
//     within one iteration is unsatisfiable);
//   - every value consumed is produced (guaranteed by construction) and
//     every non-store node that feeds nothing is still legal (dead values
//     are allowed: they hold a value live for just their producer's
//     execution).
func (g *Graph) Validate() error {
	if len(g.nodes) == 0 {
		return fmt.Errorf("ddg %q: empty graph", g.LoopName)
	}
	for _, e := range g.edges {
		if e.Kind == Flow && !g.nodes[e.From].Op.ProducesValue() {
			return fmt.Errorf("ddg %q: flow edge from store %s", g.LoopName, g.nodes[e.From])
		}
	}
	if cyc := g.zeroDistanceCycle(); cyc != nil {
		return fmt.Errorf("ddg %q: zero-distance dependence cycle through node %s",
			g.LoopName, g.nodes[cyc[0]])
	}
	return nil
}

// zeroDistanceCycle returns a node list on a cycle of the distance-0
// subgraph, or nil if that subgraph is acyclic.
func (g *Graph) zeroDistanceCycle() []int {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]int, len(g.nodes))
	var stack []int
	var dfs func(u int) []int
	dfs = func(u int) []int {
		color[u] = grey
		stack = append(stack, u)
		for _, ei := range g.out[u] {
			e := g.edges[ei]
			if e.Distance != 0 {
				continue
			}
			switch color[e.To] {
			case grey:
				return append([]int(nil), stack...)
			case white:
				if c := dfs(e.To); c != nil {
					return c
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[u] = black
		return nil
	}
	for u := range g.nodes {
		if color[u] == white {
			if c := dfs(u); c != nil {
				return c
			}
		}
	}
	return nil
}

// TopoOrder returns a topological order of the distance-0 subgraph. Nodes
// on loop-carried cycles are still ordered consistently because only
// distance-0 edges constrain the order. Validate must have succeeded.
func (g *Graph) TopoOrder() []int {
	indeg := make([]int, len(g.nodes))
	for _, e := range g.edges {
		if e.Distance == 0 {
			indeg[e.To]++
		}
	}
	// Deterministic Kahn: a sorted worklist keyed by node ID.
	var ready []int
	for id := range g.nodes {
		if indeg[id] == 0 {
			ready = append(ready, id)
		}
	}
	order := make([]int, 0, len(g.nodes))
	for len(ready) > 0 {
		// Pop the smallest ID for determinism.
		min := 0
		for i := 1; i < len(ready); i++ {
			if ready[i] < ready[min] {
				min = i
			}
		}
		u := ready[min]
		ready = append(ready[:min], ready[min+1:]...)
		order = append(order, u)
		for _, ei := range g.out[u] {
			e := g.edges[ei]
			if e.Distance != 0 {
				continue
			}
			indeg[e.To]--
			if indeg[e.To] == 0 {
				ready = append(ready, e.To)
			}
		}
	}
	return order
}

// SCCs returns the strongly connected components of the full graph
// (including loop-carried edges), each as a sorted list of node IDs,
// ordered by their smallest member. Components of size 1 without a
// self-edge are trivial but still returned.
func (g *Graph) SCCs() [][]int {
	n := len(g.nodes)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var comps [][]int
	counter := 0

	// Iterative Tarjan to avoid deep recursion on large synthetic loops.
	type frame struct {
		v, ei int
	}
	for start := 0; start < n; start++ {
		if index[start] != -1 {
			continue
		}
		frames := []frame{{v: start}}
		index[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, start)
		onStack[start] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(g.out[f.v]) {
				e := g.edges[g.out[f.v][f.ei]]
				f.ei++
				w := e.To
				if index[w] == -1 {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// Finished v.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sortInts(comp)
				comps = append(comps, comp)
			}
		}
	}
	// Order components by smallest member for determinism.
	sortCompsByFirst(comps)
	return comps
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}

func sortCompsByFirst(comps [][]int) {
	for i := 1; i < len(comps); i++ {
		for j := i; j > 0 && comps[j-1][0] > comps[j][0]; j-- {
			comps[j-1], comps[j] = comps[j], comps[j-1]
		}
	}
}
