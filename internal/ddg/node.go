// Package ddg implements the data-dependence graphs that drive the whole
// reproduction: typed operation nodes connected by dependence edges with
// iteration distances, as extracted from single-basic-block floating-point
// inner loops (HPCA'95, section 5.1).
package ddg

import (
	"fmt"

	"ncdrf/internal/machine"
)

// OpCode enumerates the operation repertoire of the paper's machines.
type OpCode int

const (
	// FADD is a floating-point addition (executes on an adder).
	FADD OpCode = iota
	// FSUB is a floating-point subtraction (executes on an adder).
	FSUB
	// CONV is an int<->float conversion (executes on an adder).
	CONV
	// FMUL is a floating-point multiplication (executes on a multiplier).
	FMUL
	// FDIV is a floating-point division (executes on a multiplier, same
	// latency as multiplication per section 5.2).
	FDIV
	// LOAD reads a value from memory (executes on a load/store unit).
	LOAD
	// STORE writes a value to memory (executes on a load/store unit).
	// Stores produce no register value.
	STORE

	numOpCodes
)

var opNames = [...]string{
	FADD:  "fadd",
	FSUB:  "fsub",
	CONV:  "conv",
	FMUL:  "fmul",
	FDIV:  "fdiv",
	LOAD:  "load",
	STORE: "store",
}

// String returns the lower-case mnemonic of the opcode.
func (op OpCode) String() string {
	if op < 0 || int(op) >= len(opNames) {
		return fmt.Sprintf("OpCode(%d)", int(op))
	}
	return opNames[op]
}

// ParseOpCode converts a mnemonic back to its OpCode.
func ParseOpCode(s string) (OpCode, error) {
	for op, name := range opNames {
		if name == s {
			return OpCode(op), nil
		}
	}
	return 0, fmt.Errorf("ddg: unknown opcode %q", s)
}

// FUKind returns the functional-unit kind that executes the opcode.
func (op OpCode) FUKind() machine.FUKind {
	switch op {
	case FADD, FSUB, CONV:
		return machine.Adder
	case FMUL, FDIV:
		return machine.Multiplier
	case LOAD, STORE:
		return machine.MemPort
	default:
		panic(fmt.Sprintf("ddg: invalid opcode %d", int(op)))
	}
}

// ProducesValue reports whether the opcode defines a register value.
// Stores are the only operations that do not.
func (op OpCode) ProducesValue() bool { return op != STORE }

// IsMem reports whether the opcode accesses memory.
func (op OpCode) IsMem() bool { return op == LOAD || op == STORE }

// Valid reports whether op is a defined opcode.
func (op OpCode) Valid() bool { return op >= 0 && op < numOpCodes }

// Node is one operation of a loop body.
type Node struct {
	// ID is the node's index within its Graph, assigned by AddNode.
	ID int
	// Op is the operation performed.
	Op OpCode
	// Name is an optional human-readable label ("L1", "M3", ...). Names
	// are unique within a graph when non-empty.
	Name string
	// Sym is an optional memory symbol for loads/stores (array name);
	// purely informational.
	Sym string
	// SpillSlot marks spill-generated memory operations with the slot
	// they access; -1 for ordinary nodes. Used by the spill-elimination
	// pass and by traffic accounting.
	SpillSlot int
}

// Label returns the node's name, or a synthetic "n<ID>" when unnamed.
func (n *Node) Label() string {
	if n.Name != "" {
		return n.Name
	}
	return fmt.Sprintf("n%d", n.ID)
}

// String renders the node as "name:op".
func (n *Node) String() string { return fmt.Sprintf("%s:%s", n.Label(), n.Op) }

// EdgeKind distinguishes register-flow dependences from memory/ordering
// dependences.
type EdgeKind int

const (
	// Flow is a register true dependence: To reads the value produced by
	// From. Flow edges define lifetimes and register pressure.
	Flow EdgeKind = iota
	// Mem is a memory ordering dependence between two memory operations
	// (store->load, store->store, load->store on the same location).
	Mem
)

// String returns "flow" or "mem".
func (k EdgeKind) String() string {
	switch k {
	case Flow:
		return "flow"
	case Mem:
		return "mem"
	default:
		return fmt.Sprintf("EdgeKind(%d)", int(k))
	}
}

// Edge is a dependence between two nodes.
type Edge struct {
	// From and To are node IDs.
	From, To int
	// Kind classifies the dependence.
	Kind EdgeKind
	// Distance is the iteration distance: 0 for intra-iteration
	// dependences, d>0 when To of iteration i+d depends on From of
	// iteration i (loop-carried).
	Distance int
}

// String renders the edge as "from->to kind dist".
func (e Edge) String() string {
	return fmt.Sprintf("%d->%d %s d=%d", e.From, e.To, e.Kind, e.Distance)
}
