package lifetime

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ncdrf/internal/ddg"
	"ncdrf/internal/loops"
	"ncdrf/internal/machine"
	"ncdrf/internal/sched"
)

func paperSchedule(t *testing.T) *sched.Schedule {
	t.Helper()
	s, err := sched.Run(loops.PaperExample(), machine.Example(), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestPaperTable2 checks the exact lifetimes of Table 2 of the paper.
func TestPaperTable2(t *testing.T) {
	s := paperSchedule(t)
	lts := Compute(s)
	want := map[string][3]int{ // start, end, len
		"L1": {0, 13, 13},
		"L2": {0, 7, 7},
		"M3": {1, 7, 6},
		"A4": {4, 10, 6},
		"M5": {7, 13, 6},
		"A6": {10, 14, 4},
	}
	if len(lts) != len(want) {
		t.Fatalf("got %d lifetimes, want %d", len(lts), len(want))
	}
	for _, l := range lts {
		name := s.Graph.Node(l.Node).Name
		w, ok := want[name]
		if !ok {
			t.Fatalf("unexpected lifetime for %s", name)
		}
		if l.Start != w[0] || l.End != w[1] || l.Len() != w[2] {
			t.Errorf("%s: got [%d,%d) len %d, want [%d,%d) len %d",
				name, l.Start, l.End, l.Len(), w[0], w[1], w[2])
		}
	}
	if sum := SumLen(lts); sum != 42 {
		t.Fatalf("sum of lifetimes = %d, want 42", sum)
	}
}

func TestMaxLiveMatchesSumAtIIOne(t *testing.T) {
	// With II=1 every value contributes Len() live copies at every
	// cycle, so MaxLive equals the sum of lifetimes (42 in the paper).
	s := paperSchedule(t)
	lts := Compute(s)
	if got := MaxLive(lts, s.II); got != 42 {
		t.Fatalf("MaxLive = %d, want 42", got)
	}
	if got := AvgLiveBound(lts, s.II); got != 42 {
		t.Fatalf("AvgLiveBound = %d, want 42", got)
	}
}

func TestDeadValueLifetime(t *testing.T) {
	// A value without consumers lives for its producer's latency.
	g := ddg.New("dead", 1)
	g.AddNode(ddg.FMUL, "M")
	m := machine.Eval(6)
	s, err := sched.Run(g, m, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lts := Compute(s)
	if len(lts) != 1 || lts[0].Len() != 6 {
		t.Fatalf("dead value lifetime = %v, want len 6", lts)
	}
}

func TestLoopCarriedConsumerExtendsLifetime(t *testing.T) {
	// B consumes A's value from 2 iterations earlier: the end must
	// include 2*II.
	g := ddg.New("lc", 1)
	a := g.AddNode(ddg.FADD, "A")
	b := g.AddNode(ddg.FMUL, "B")
	g.FlowD(a, b, 2)
	m := machine.Eval(3)
	s, err := sched.Run(g, m, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lts := Compute(s)
	var la Lifetime
	for _, l := range lts {
		if l.Node == a {
			la = l
		}
	}
	wantEnd := s.Start[b] + 2*s.II + 3
	if la.End != wantEnd {
		t.Fatalf("A end = %d, want %d", la.End, wantEnd)
	}
}

func TestStoreProducesNoLifetime(t *testing.T) {
	s := paperSchedule(t)
	lts := Compute(s)
	for _, l := range lts {
		if s.Graph.Node(l.Node).Op == ddg.STORE {
			t.Fatal("store must not produce a lifetime")
		}
	}
}

func TestLiveAtByHand(t *testing.T) {
	// One value [0,5) at II=2: copies at ...,-2,0,2,... Live copies at
	// t=0: k in {-2,-1,0} shifted => s+k*2 <= 0 < e+k*2 -> k in {-2,-1,0}
	// gives starts -4,-2,0 with ends 1,3,5: all live at 0 -> 3 copies.
	lts := []Lifetime{{Node: 0, Start: 0, End: 5}}
	if got := LiveAt(lts, 2, 0); got != 3 {
		t.Fatalf("LiveAt = %d, want 3", got)
	}
	if got := LiveAt(lts, 2, 1); got != 2 {
		t.Fatalf("LiveAt(1) = %d, want 2", got)
	}
	if got := MaxLive(lts, 2); got != 3 {
		t.Fatalf("MaxLive = %d, want 3", got)
	}
	if got := AvgLiveBound(lts, 2); got != 3 {
		t.Fatalf("AvgLiveBound = %d, want 3", got)
	}
}

func TestPropertyMaxLiveAtLeastAvg(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ii := 1 + r.Intn(6)
		var lts []Lifetime
		for i := 0; i < 1+r.Intn(12); i++ {
			s := r.Intn(20)
			lts = append(lts, Lifetime{Node: i, Start: s, End: s + 1 + r.Intn(15)})
		}
		return MaxLive(lts, ii) >= AvgLiveBound(lts, ii)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyLiveCountShiftInvariant(t *testing.T) {
	// Steady state is periodic: LiveAt(t) == LiveAt(t+II) for any t.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ii := 1 + r.Intn(5)
		var lts []Lifetime
		for i := 0; i < 1+r.Intn(10); i++ {
			s := r.Intn(30) - 10
			lts = append(lts, Lifetime{Node: i, Start: s, End: s + 1 + r.Intn(12)})
		}
		for t0 := -3; t0 < 8; t0++ {
			if LiveAt(lts, ii, t0) != LiveAt(lts, ii, t0+ii) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyLiveProfileMatchesLiveAt pins the difference-array
// profile against the per-cycle definition, including negative starts
// and lifetimes spanning many iterations, and MaxLive against the
// brute-force maximum.
func TestPropertyLiveProfileMatchesLiveAt(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ii := 1 + r.Intn(7)
		var lts []Lifetime
		for i := 0; i < r.Intn(14); i++ {
			s := r.Intn(40) - 15
			lts = append(lts, Lifetime{Node: i, Start: s, End: s + 1 + r.Intn(5*ii+10)})
		}
		prof := LiveProfile(lts, ii, nil)
		if len(prof) != ii {
			return false
		}
		brute := 0
		for t0 := 0; t0 < ii; t0++ {
			v := LiveAt(lts, ii, t0)
			if prof[t0] != v {
				return false
			}
			if v > brute {
				brute = v
			}
		}
		return MaxLive(lts, ii) == brute
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestLiveProfileReusesBuffer pins the zero-allocation contract: a
// buffer of sufficient capacity is reused, and stale contents are
// cleared.
func TestLiveProfileReusesBuffer(t *testing.T) {
	lts := []Lifetime{{Node: 0, Start: 0, End: 5}}
	buf := make([]int, 0, 16)
	for i := range buf[:cap(buf)] {
		_ = i
	}
	got := LiveProfile(lts, 2, buf)
	if &got[0] != &buf[:1][0] {
		t.Fatal("LiveProfile did not reuse the provided buffer")
	}
	if got[0] != 3 || got[1] != 2 {
		t.Fatalf("profile = %v, want [3 2]", got)
	}
	// A dirty, larger buffer must give the same answer.
	dirty := []int{9, 9, 9, 9, 9, 9}
	got = LiveProfile(lts, 2, dirty)
	if got[0] != 3 || got[1] != 2 {
		t.Fatalf("dirty-buffer profile = %v, want [3 2]", got)
	}
	if empty := LiveProfile(nil, 0, nil); len(empty) != 0 {
		t.Fatalf("ii<1 profile = %v, want empty", empty)
	}
}

func TestComputePreallocatesExactly(t *testing.T) {
	s := paperSchedule(t)
	lts := Compute(s)
	if cap(lts) != len(lts) {
		t.Fatalf("Compute over-allocated: len %d cap %d", len(lts), cap(lts))
	}
}

func TestFloorDiv(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{7, 2, 3}, {-7, 2, -4}, {6, 3, 2}, {-6, 3, -2}, {0, 5, 0}, {-1, 4, -1},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.want {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
