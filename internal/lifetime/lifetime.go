// Package lifetime computes value lifetimes and live-value statistics of
// modulo schedules. Following the paper (section 2), the lifetime of a
// value starts when its producer issues and ends when its last consumer
// finishes, so that issued operations can always complete across
// interrupts.
package lifetime

import (
	"fmt"

	"ncdrf/internal/ddg"
	"ncdrf/internal/sched"
)

// Lifetime is the live range of one loop-variant value in the flat
// (iteration 0) time frame of a schedule.
type Lifetime struct {
	// Node is the producing node's ID.
	Node int
	// Start is the producer's issue cycle.
	Start int
	// End is the cycle at which the last consumer completes; for values
	// with no consumer, the producer's own completion.
	End int
}

// Len returns the lifetime length in cycles.
func (l Lifetime) Len() int { return l.End - l.Start }

// String renders "node(start,end)".
func (l Lifetime) String() string { return fmt.Sprintf("v%d[%d,%d)", l.Node, l.Start, l.End) }

// Compute returns the lifetime of every value-producing operation of the
// schedule, in node-ID order. Loop-carried consumers (distance d) finish
// d iterations later, contributing Start + d*II + latency to the end.
func Compute(s *sched.Schedule) []Lifetime {
	g := s.Graph
	producers := 0
	for _, n := range g.Nodes() {
		if n.Op.ProducesValue() {
			producers++
		}
	}
	if producers == 0 {
		return nil
	}
	out := make([]Lifetime, 0, producers)
	for _, n := range g.Nodes() {
		if !n.Op.ProducesValue() {
			continue
		}
		start := s.Start[n.ID]
		end := start + s.Mach.Latency(n.Op.FUKind())
		for _, e := range g.OutEdges(n.ID) {
			if e.Kind != ddg.Flow {
				continue
			}
			finish := s.Start[e.To] + e.Distance*s.II + s.Mach.Latency(g.Node(e.To).Op.FUKind())
			if finish > end {
				end = finish
			}
		}
		out = append(out, Lifetime{Node: n.ID, Start: start, End: end})
	}
	return out
}

// SumLen returns the total length of the lifetimes.
func SumLen(lts []Lifetime) int {
	sum := 0
	for _, l := range lts {
		sum += l.Len()
	}
	return sum
}

// LiveAt returns the number of live value instances at kernel cycle t
// (0 <= t < II) in the steady state: every iteration contributes a copy
// of each value shifted by II, so value v is live floor((t-Start)/II) -
// floor((t-End)/II) times.
func LiveAt(lts []Lifetime, ii, t int) int {
	n := 0
	for _, l := range lts {
		n += floorDiv(t-l.Start, ii) - floorDiv(t-l.End, ii)
	}
	return n
}

// LiveProfile returns the live-instance count of every kernel cycle t in
// [0, II) — LiveAt(lts, ii, t) for each t — computed with a difference
// array in O(len(lts) + ii) instead of the per-cycle O(len(lts) * ii)
// sum. Each value of length L = a*II + b contributes a floor instances
// everywhere plus one more on the circular window of b cycles starting
// at Start mod II; the windows accumulate as endpoint deltas and one
// prefix sum recovers the counts. buf's backing array is reused when
// large enough, so steady-state callers allocate nothing.
func LiveProfile(lts []Lifetime, ii int, buf []int) []int {
	if ii < 1 {
		return buf[:0]
	}
	if cap(buf) < ii+1 {
		buf = make([]int, ii+1)
	}
	buf = buf[:ii+1]
	clear(buf)
	base := 0
	for _, l := range lts {
		length := l.End - l.Start
		a := floorDiv(length, ii)
		base += a
		b := length - a*ii // in [0, ii)
		if b == 0 {
			continue
		}
		w := l.Start - floorDiv(l.Start, ii)*ii // Start mod II, in [0, ii)
		if w+b <= ii {
			buf[w]++
			buf[w+b]--
		} else { // window wraps: [w, ii) and [0, w+b-ii)
			buf[0]++
			buf[w+b-ii]--
			buf[w]++
		}
	}
	run := base
	for t := 0; t < ii; t++ {
		run += buf[t]
		buf[t] = run
	}
	return buf[:ii]
}

// MaxLive returns the maximum number of simultaneously live value
// instances over a steady-state kernel iteration. It is a lower bound on
// the registers required by any allocation.
func MaxLive(lts []Lifetime, ii int) int {
	max := 0
	for _, v := range LiveProfile(lts, ii, nil) {
		if v > max {
			max = v
		}
	}
	return max
}

// AvgLiveBound returns ceil(sum of lifetimes / II), the average-live lower
// bound on rotating allocation (each value occupies a single wand).
func AvgLiveBound(lts []Lifetime, ii int) int {
	sum := SumLen(lts)
	return (sum + ii - 1) / ii
}

func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
