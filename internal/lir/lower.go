package lir

import (
	"fmt"
	"strconv"
	"strings"

	"ncdrf/internal/ddg"
)

// Lower converts a parsed program to a data-dependence graph.
//
// Rules:
//   - every statement becomes one node;
//   - a value operand "v" refers to the definition of v in the same
//     iteration and must appear textually before its use;
//   - "v@d" refers to the definition of v from d iterations earlier and
//     may reference any statement (including itself: a recurrence);
//   - invariants and literals produce no edges;
//   - explicit mem directives become memory ordering edges;
//   - symbols of the form "stackN" mark spill locations: the node's
//     SpillSlot is set to N.
func Lower(p *Program) (*ddg.Graph, error) {
	g := ddg.New(p.Name, p.Trips)
	inv := make(map[string]bool, len(p.Invariants))
	for _, name := range p.Invariants {
		inv[name] = true
	}

	defs := map[string]int{}   // value name -> node ID
	labels := map[string]int{} // node name -> node ID
	storeCount := 0

	// First pass: create nodes, record definitions and labels.
	for _, st := range p.Stmts {
		var op ddg.OpCode
		switch st.Op {
		case "fadd":
			op = ddg.FADD
		case "fsub":
			op = ddg.FSUB
		case "fmul":
			op = ddg.FMUL
		case "fdiv":
			op = ddg.FDIV
		case "conv":
			op = ddg.CONV
		case "load":
			op = ddg.LOAD
		case "store":
			op = ddg.STORE
		default:
			return nil, errf(st.Line, "internal: unvalidated op %q", st.Op)
		}
		name := st.NodeName(storeCount)
		if st.Op == "store" && st.Label == "" {
			storeCount++
		}
		if _, dup := labels[name]; dup {
			return nil, errf(st.Line, "duplicate node name %q", name)
		}
		id := g.AddNode(op, name)
		labels[name] = id
		node := g.Node(id)
		node.Sym = st.Sym
		if slot, ok := spillSlot(st.Sym); ok {
			node.SpillSlot = slot
		}
		if st.Dest != "" {
			if inv[st.Dest] {
				return nil, errf(st.Line, "cannot assign to invariant %q", st.Dest)
			}
			if _, dup := defs[st.Dest]; dup {
				return nil, errf(st.Line, "value %q defined twice", st.Dest)
			}
			defs[st.Dest] = id
		}
	}

	// Second pass: operand edges.
	for si, st := range p.Stmts {
		toID := labels[st.NodeName(-1)]
		if st.Label == "" && st.Dest == "" {
			// Recompute synthesized store names in order.
			toID = storeNodeID(g, p, si)
		}
		for _, arg := range st.Args {
			if arg.Literal {
				continue
			}
			if inv[arg.Ident] {
				if arg.Dist > 0 {
					return nil, errf(st.Line, "invariant %q cannot carry an iteration distance", arg.Ident)
				}
				continue
			}
			fromID, ok := defs[arg.Ident]
			if !ok {
				return nil, errf(st.Line, "undefined value %q (declare it invariant or define it)", arg.Ident)
			}
			if arg.Dist == 0 && fromID >= toID {
				return nil, errf(st.Line,
					"value %q used before its definition in the same iteration; use %s@1 for a loop-carried reference",
					arg.Ident, arg.Ident)
			}
			e := ddg.Edge{From: fromID, To: toID, Kind: ddg.Flow, Distance: arg.Dist}
			if err := g.AddEdge(e); err != nil {
				return nil, errf(st.Line, "%v", err)
			}
		}
	}

	// Explicit memory dependences.
	for _, m := range p.MemDeps {
		from, ok := labels[m.From]
		if !ok {
			return nil, errf(m.Line, "mem: unknown node %q", m.From)
		}
		to, ok := labels[m.To]
		if !ok {
			return nil, errf(m.Line, "mem: unknown node %q", m.To)
		}
		e := ddg.Edge{From: from, To: to, Kind: ddg.Mem, Distance: m.Distance}
		if err := g.AddEdge(e); err != nil {
			return nil, errf(m.Line, "%v", err)
		}
	}

	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("lir: lowering %q: %w", p.Name, err)
	}
	return g, nil
}

// storeNodeID finds the node for the si-th statement when it is an
// unlabeled store (whose name was synthesized in order).
func storeNodeID(g *ddg.Graph, p *Program, si int) int {
	count := 0
	for i := 0; i < si; i++ {
		if p.Stmts[i].Op == "store" && p.Stmts[i].Label == "" {
			count++
		}
	}
	return g.NodeByName(fmt.Sprintf("st%d", count)).ID
}

// spillSlot recognizes "stackN" symbols and returns the slot number.
func spillSlot(sym string) (int, bool) {
	if !strings.HasPrefix(sym, "stack") {
		return 0, false
	}
	n, err := strconv.Atoi(sym[len("stack"):])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// Compile parses and lowers in one step.
func Compile(src string) (*ddg.Graph, error) {
	p, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Lower(p)
}

// MustCompile is Compile but panics on error; for corpus construction.
func MustCompile(src string) *ddg.Graph {
	g, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return g
}
