package lir

import (
	"fmt"
	"strconv"
	"strings"
)

// opArity maps mnemonics to the number of value operands they take.
var opArity = map[string]int{
	"fadd": 2, "fsub": 2, "fmul": 2, "fdiv": 2, "conv": 1,
	"load": 0, "store": 1,
}

// ParseError is a source-position-annotated parse failure.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string { return fmt.Sprintf("lir: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...interface{}) error {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Parse reads a complete LIR program from source text.
func Parse(src string) (*Program, error) {
	p := &Program{}
	sawHeader := false
	lines := strings.Split(src, "\n")
	for i, raw := range lines {
		lineNo := i + 1
		line := stripComment(raw)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "loop":
			if sawHeader {
				return nil, errf(lineNo, "duplicate loop header")
			}
			if len(fields) != 4 || fields[2] != "trips" {
				return nil, errf(lineNo, "want 'loop <name> trips <n>', got %q", line)
			}
			trips, err := strconv.ParseInt(fields[3], 10, 64)
			if err != nil || trips < 0 {
				return nil, errf(lineNo, "bad trip count %q", fields[3])
			}
			p.Name, p.Trips = fields[1], trips
			sawHeader = true
		case "invariant":
			if !sawHeader {
				return nil, errf(lineNo, "invariant before loop header")
			}
			if len(fields) < 2 {
				return nil, errf(lineNo, "invariant needs at least one name")
			}
			p.Invariants = append(p.Invariants, fields[1:]...)
		case "mem":
			if len(fields) != 4 {
				return nil, errf(lineNo, "want 'mem <from> <to> <dist>', got %q", line)
			}
			d, err := strconv.Atoi(fields[3])
			if err != nil || d < 0 {
				return nil, errf(lineNo, "bad mem distance %q", fields[3])
			}
			p.MemDeps = append(p.MemDeps, MemDep{From: fields[1], To: fields[2], Distance: d, Line: lineNo})
		default:
			if !sawHeader {
				return nil, errf(lineNo, "statement before loop header")
			}
			st, err := parseStmt(line, lineNo)
			if err != nil {
				return nil, err
			}
			p.Stmts = append(p.Stmts, st)
		}
	}
	if !sawHeader {
		return nil, errf(0, "missing loop header")
	}
	if len(p.Stmts) == 0 {
		return nil, errf(0, "loop %q has no statements", p.Name)
	}
	return p, nil
}

func stripComment(s string) string {
	for _, marker := range []string{";", "#"} {
		if i := strings.Index(s, marker); i >= 0 {
			s = s[:i]
		}
	}
	return strings.TrimSpace(s)
}

func parseStmt(line string, lineNo int) (Stmt, error) {
	st := Stmt{Line: lineNo}
	rest := line

	// Optional "label:" prefix. A colon before any '=' is a label.
	if ci := strings.Index(rest, ":"); ci >= 0 {
		eq := strings.Index(rest, "=")
		if eq < 0 || ci < eq {
			st.Label = strings.TrimSpace(rest[:ci])
			if !isIdent(st.Label) {
				return st, errf(lineNo, "bad label %q", st.Label)
			}
			rest = strings.TrimSpace(rest[ci+1:])
		}
	}

	if strings.HasPrefix(rest, "store") {
		body := strings.TrimSpace(strings.TrimPrefix(rest, "store"))
		parts := splitArgs(body)
		if len(parts) != 2 {
			return st, errf(lineNo, "want 'store <sym>, <operand>', got %q", rest)
		}
		if !isIdent(parts[0]) {
			return st, errf(lineNo, "bad store symbol %q", parts[0])
		}
		op, err := parseOperand(parts[1], lineNo)
		if err != nil {
			return st, err
		}
		st.Op, st.Sym, st.Args = "store", parts[0], []Operand{op}
		return st, nil
	}

	eq := strings.Index(rest, "=")
	if eq < 0 {
		return st, errf(lineNo, "expected assignment or store, got %q", rest)
	}
	st.Dest = strings.TrimSpace(rest[:eq])
	if !isIdent(st.Dest) {
		return st, errf(lineNo, "bad destination %q", st.Dest)
	}
	rhs := strings.TrimSpace(rest[eq+1:])
	sp := strings.IndexAny(rhs, " \t")
	if sp < 0 {
		return st, errf(lineNo, "missing operands in %q", rest)
	}
	st.Op = rhs[:sp]
	arity, ok := opArity[st.Op]
	if !ok || st.Op == "store" {
		return st, errf(lineNo, "unknown operation %q", st.Op)
	}
	body := strings.TrimSpace(rhs[sp:])
	if st.Op == "load" {
		if !isIdent(body) {
			return st, errf(lineNo, "bad load symbol %q", body)
		}
		st.Sym = body
		return st, nil
	}
	parts := splitArgs(body)
	if len(parts) != arity {
		return st, errf(lineNo, "%s takes %d operand(s), got %d", st.Op, arity, len(parts))
	}
	for _, part := range parts {
		op, err := parseOperand(part, lineNo)
		if err != nil {
			return st, err
		}
		st.Args = append(st.Args, op)
	}
	return st, nil
}

func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseOperand(s string, lineNo int) (Operand, error) {
	if s == "" {
		return Operand{}, errf(lineNo, "empty operand")
	}
	if _, err := strconv.ParseFloat(s, 64); err == nil {
		return Operand{Literal: true, Text: s}, nil
	}
	ident, dist := s, 0
	if at := strings.Index(s, "@"); at >= 0 {
		ident = s[:at]
		d, err := strconv.Atoi(s[at+1:])
		if err != nil || d < 1 {
			return Operand{}, errf(lineNo, "bad iteration distance in %q", s)
		}
		dist = d
	}
	if !isIdent(ident) {
		return Operand{}, errf(lineNo, "bad operand %q", s)
	}
	return Operand{Ident: ident, Dist: dist}, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		case r == '.':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
