package lir

import (
	"slices"

	"ncdrf/internal/ddg"
)

// EliminateStackSpills implements the methodology pass of section 5.1: the
// input graphs were produced from compiled code that may already contain
// spill code (stores to stack slots followed by loads from the same slot).
// The pass removes each matched store/load pair and reconnects the store's
// value producer to every consumer of the load, composing iteration
// distances. Unmatched stack accesses are left untouched.
//
// It returns the rewritten graph and the number of removed operations.
func EliminateStackSpills(g *ddg.Graph) (*ddg.Graph, int) {
	type slotUse struct {
		stores []int
		loads  []int
	}
	slots := map[int]*slotUse{}
	for _, n := range g.Nodes() {
		if n.SpillSlot < 0 {
			continue
		}
		u := slots[n.SpillSlot]
		if u == nil {
			u = &slotUse{}
			slots[n.SpillSlot] = u
		}
		switch n.Op {
		case ddg.STORE:
			u.stores = append(u.stores, n.ID)
		case ddg.LOAD:
			u.loads = append(u.loads, n.ID)
		}
	}

	remove := map[int]bool{}
	// reconnect[i] holds extra flow edges to add, expressed in old IDs.
	// Slots are visited in sorted order: the reconnect edges' order flows
	// into the rebuilt graph's edge list, and a map-ordered walk here
	// would make the output graph — and everything scheduled from it —
	// differ from run to run.
	var reconnect []ddg.Edge
	slotIDs := make([]int, 0, len(slots))
	for id := range slots {
		slotIDs = append(slotIDs, id)
	}
	slices.Sort(slotIDs)
	for _, id := range slotIDs {
		u := slots[id]
		// The paper's pattern is one store with posterior loads of the
		// same slot. Only eliminate unambiguous single-store slots.
		if len(u.stores) != 1 || len(u.loads) == 0 {
			continue
		}
		store := u.stores[0]
		producer, prodDist, ok := valueInto(g, store)
		if !ok {
			continue // store of an invariant or literal: nothing to reconnect
		}
		remove[store] = true
		for _, load := range u.loads {
			remove[load] = true
			for _, e := range g.OutEdges(load) {
				if e.Kind != ddg.Flow {
					continue
				}
				reconnect = append(reconnect, ddg.Edge{
					From:     producer,
					To:       e.To,
					Kind:     ddg.Flow,
					Distance: prodDist + e.Distance,
				})
			}
		}
	}
	if len(remove) == 0 {
		return g.Clone(), 0
	}

	out := ddg.New(g.LoopName, g.Trips)
	oldToNew := make([]int, g.NumNodes())
	for i := range oldToNew {
		oldToNew[i] = -1
	}
	for _, n := range g.Nodes() {
		if remove[n.ID] {
			continue
		}
		id := out.AddNode(n.Op, n.Name)
		out.Node(id).Sym = n.Sym
		out.Node(id).SpillSlot = n.SpillSlot
		oldToNew[n.ID] = id
	}
	addEdge := func(e ddg.Edge) {
		from, to := oldToNew[e.From], oldToNew[e.To]
		if from < 0 || to < 0 {
			return
		}
		e.From, e.To = from, to
		out.MustAddEdge(e)
	}
	for _, e := range g.Edges() {
		addEdge(e)
	}
	for _, e := range reconnect {
		addEdge(e)
	}
	return out, len(remove)
}

// valueInto returns the producer feeding a store's value operand along a
// flow edge, with its distance.
func valueInto(g *ddg.Graph, store int) (producer, dist int, ok bool) {
	for _, e := range g.InEdges(store) {
		if e.Kind == ddg.Flow {
			return e.From, e.Distance, true
		}
	}
	return 0, 0, false
}
