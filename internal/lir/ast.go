// Package lir implements the textual loop intermediate representation used
// to express benchmark loop bodies, and its lowering to data-dependence
// graphs. It plays the role of the paper's R3000-assembler front end
// (section 5.1), including the stack-spill elimination pass.
//
// Grammar (line oriented, ';' and '#' start comments):
//
//	loop <name> trips <n>
//	invariant <ident> [<ident> ...]
//	[<label>:] <dest> = <op> <operand> [, <operand>]
//	[<label>:] <dest> = load <sym>
//	[<label>:] store <sym>, <operand>
//	mem <label> <label> <distance>
//
// Operands are loop values (optionally suffixed "@d" to reference the
// definition from d iterations earlier), declared invariants, or numeric
// literals. Invariants and literals create no dependence edges: the paper
// allocates loop invariants in the non-rotating general register file and
// excludes them from the study.
//
// Memory symbols beginning with "stack" denote R3000 spill locations; the
// Eliminate pass removes matched store/load pairs on them, reconnecting
// the store's producer to the load's consumers, exactly as described in
// section 5.1 of the paper.
package lir

import (
	"fmt"
	"strings"
)

// Program is a parsed LIR loop.
type Program struct {
	// Name is the loop's name from the header.
	Name string
	// Trips is the profiled iteration count from the header.
	Trips int64
	// Invariants lists declared loop-invariant identifiers.
	Invariants []string
	// Stmts are the body statements in source order.
	Stmts []Stmt
	// MemDeps are explicit memory ordering dependences.
	MemDeps []MemDep
}

// Stmt is one operation statement.
type Stmt struct {
	// Label is the optional statement label; when empty the destination
	// (or a synthesized store label) names the DDG node.
	Label string
	// Dest is the defined value name; empty for stores.
	Dest string
	// Op is the operation mnemonic, already validated.
	Op string
	// Sym is the memory symbol for loads/stores.
	Sym string
	// Args are the value operands (not the memory symbol).
	Args []Operand
	// Line is the 1-based source line, for diagnostics.
	Line int
}

// Operand is a reference appearing as a statement argument.
type Operand struct {
	// Ident is the referenced name; empty for literals.
	Ident string
	// Dist is the iteration distance from an "@d" suffix.
	Dist int
	// Literal is set when the operand is a numeric constant.
	Literal bool
	// Text preserves the literal's source spelling.
	Text string
}

// String renders the operand in source syntax.
func (o Operand) String() string {
	if o.Literal {
		return o.Text
	}
	if o.Dist > 0 {
		return fmt.Sprintf("%s@%d", o.Ident, o.Dist)
	}
	return o.Ident
}

// MemDep is an explicit memory ordering dependence between two labeled
// memory statements.
type MemDep struct {
	From, To string
	Distance int
	Line     int
}

// NodeName returns the DDG node name a statement will receive.
func (s Stmt) NodeName(storeIndex int) string {
	if s.Label != "" {
		return s.Label
	}
	if s.Dest != "" {
		return s.Dest
	}
	return fmt.Sprintf("st%d", storeIndex)
}

// Format renders the program back to LIR source.
func (p *Program) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loop %s trips %d\n", p.Name, p.Trips)
	if len(p.Invariants) > 0 {
		fmt.Fprintf(&b, "invariant %s\n", strings.Join(p.Invariants, " "))
	}
	for _, s := range p.Stmts {
		if s.Label != "" {
			fmt.Fprintf(&b, "%s: ", s.Label)
		}
		switch {
		case s.Op == "store":
			fmt.Fprintf(&b, "store %s, %s\n", s.Sym, s.Args[0])
		case s.Op == "load":
			fmt.Fprintf(&b, "%s = load %s\n", s.Dest, s.Sym)
		default:
			args := make([]string, len(s.Args))
			for i, a := range s.Args {
				args[i] = a.String()
			}
			fmt.Fprintf(&b, "%s = %s %s\n", s.Dest, s.Op, strings.Join(args, ", "))
		}
	}
	for _, m := range p.MemDeps {
		fmt.Fprintf(&b, "mem %s %s %d\n", m.From, m.To, m.Distance)
	}
	return b.String()
}
