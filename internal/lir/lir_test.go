package lir

import (
	"strings"
	"testing"

	"ncdrf/internal/ddg"
)

const daxpySrc = `
; daxpy: y(i) = y(i) + a*x(i)
loop daxpy trips 1000
invariant a
v1 = load x
v2 = fmul a, v1
v3 = load y
v4 = fadd v2, v3
store y, v4
`

func TestParseDaxpy(t *testing.T) {
	p, err := Parse(daxpySrc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "daxpy" || p.Trips != 1000 {
		t.Fatalf("header = %s/%d", p.Name, p.Trips)
	}
	if len(p.Invariants) != 1 || p.Invariants[0] != "a" {
		t.Fatalf("invariants = %v", p.Invariants)
	}
	if len(p.Stmts) != 5 {
		t.Fatalf("stmts = %d", len(p.Stmts))
	}
	if p.Stmts[1].Op != "fmul" || len(p.Stmts[1].Args) != 2 {
		t.Fatalf("stmt[1] = %+v", p.Stmts[1])
	}
	if p.Stmts[4].Op != "store" || p.Stmts[4].Sym != "y" {
		t.Fatalf("stmt[4] = %+v", p.Stmts[4])
	}
}

func TestLowerDaxpy(t *testing.T) {
	g, err := Compile(daxpySrc)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 5 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// a is invariant: fmul has exactly one incoming edge (from v1).
	mul := g.NodeByName("v2")
	if mul == nil {
		t.Fatal("no v2 node")
	}
	in := g.InEdges(mul.ID)
	if len(in) != 1 || g.Node(in[0].From).Name != "v1" {
		t.Fatalf("v2 in-edges = %v", in)
	}
	// The store consumes v4.
	st := g.NodeByName("st0")
	if st == nil || st.Op != ddg.STORE {
		t.Fatal("missing synthesized store node st0")
	}
	if in := g.InEdges(st.ID); len(in) != 1 || g.Node(in[0].From).Name != "v4" {
		t.Fatalf("store in-edges = %v", in)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRecurrenceAtDistance(t *testing.T) {
	src := `
loop acc trips 100
v1 = load x
s = fadd s@1, v1
store out, s
`
	g, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	s := g.NodeByName("s")
	found := false
	for _, e := range g.InEdges(s.ID) {
		if e.From == s.ID && e.Distance == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("self-recurrence edge missing")
	}
}

func TestLabelsAndMemDeps(t *testing.T) {
	src := `
loop mm trips 10
L1: v1 = load a
S1: store b, v1
L2: v2 = load b
store c, v2
mem S1 L2 1
`
	g, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	s1 := g.NodeByName("S1")
	l2 := g.NodeByName("L2")
	if s1 == nil || l2 == nil {
		t.Fatal("labels not applied")
	}
	found := false
	for _, e := range g.OutEdges(s1.ID) {
		if e.To == l2.ID && e.Kind == ddg.Mem && e.Distance == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("mem dependence missing")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                                   // no header
		"loop x trips z\n",                   // bad trips
		"loop x trips 1\n",                   // no statements
		"v = fadd a, b\nloop x trips 1\n",    // stmt before header
		"loop x trips 1\nloop y trips 2\n",   // duplicate header
		"loop x trips 1\nv = bogus a, b\n",   // unknown op
		"loop x trips 1\nv = fadd a\n",       // arity
		"loop x trips 1\nv = fadd a, b, c\n", // arity
		"loop x trips 1\nstore x\n",          // store arity
		"loop x trips 1\n1v = load x\n",      // bad dest
		"loop x trips 1\nv = load 9x\n",      // bad sym
		"loop x trips 1\ninvariant\n",        // empty invariant
		"loop x trips 1\nmem a b\n",          // mem arity
		"loop x trips 1\nmem a b -1\n",       // bad mem distance
		"loop x trips 1\nv = fadd a@0, b\n",  // bad @distance
		"loop x trips 1\nv = fadd a@x, b\n",  // bad @distance
		"loop x trips 1\nwhatever\n",         // not a statement
		"loop x trips 1\n:: v = fadd a, b\n", // bad label
	}
	for i, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d: Parse succeeded on %q", i, src)
		}
	}
}

func TestLowerErrors(t *testing.T) {
	cases := []string{
		"loop x trips 1\nv = fadd w, 1.0\n",                            // undefined w
		"loop x trips 1\nv = load x\nv = load y\n",                     // double def
		"loop x trips 1\ninvariant k\nk = load x\n",                    // assign to invariant
		"loop x trips 1\ninvariant k\nv = fadd k@1, 1\n",               // invariant with distance
		"loop x trips 1\nv = fadd u, 1.0\nu = load x\n",                // use before def, no @
		"loop x trips 1\nA: v1 = load x\nA: v2 = load y\n",             // duplicate label
		"loop x trips 1\nL: v = load x\nmem L Q 0\n",                   // unknown mem target
		"loop x trips 1\nL: v = load x\nmem Q L 0\n",                   // unknown mem source
		"loop x trips 1\nL: v = load x\nM: w = fadd v, 1\nmem L M 0\n", // mem edge to non-mem op
	}
	for i, src := range cases {
		if _, err := Compile(src); err == nil {
			t.Errorf("case %d: Compile succeeded on %q", i, src)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	p, err := Parse(daxpySrc)
	if err != nil {
		t.Fatal(err)
	}
	text := p.Format()
	p2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, text)
	}
	if p2.Name != p.Name || len(p2.Stmts) != len(p.Stmts) {
		t.Fatal("round trip changed program shape")
	}
	g1, _ := Lower(p)
	g2, err := Lower(p2)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumNodes() != g2.NumNodes() || g1.NumEdges() != g2.NumEdges() {
		t.Fatal("round trip changed graph shape")
	}
}

func TestFormatWithLabelsAndMem(t *testing.T) {
	src := "loop l trips 2\nL1: v = load x\nS1: store stack3, v\nw = load stack3\nstore y, w\nmem S1 L1 1\n"
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out := p.Format()
	for _, want := range []string{"L1: v = load x", "S1: store stack3, v", "mem S1 L1 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestSpillSlotRecognition(t *testing.T) {
	g := MustCompile("loop l trips 1\nv = load stack12\nstore out, v\n")
	n := g.NodeByName("v")
	if n.SpillSlot != 12 {
		t.Fatalf("SpillSlot = %d, want 12", n.SpillSlot)
	}
	g2 := MustCompile("loop l trips 1\nv = load stacky\nstore out, v\n")
	if g2.NodeByName("v").SpillSlot != -1 {
		t.Fatal("stacky must not be a spill slot")
	}
}

func TestEliminateStackSpills(t *testing.T) {
	// v1 -> (spill store) ... (reload) -> consumer. After elimination the
	// graph is v1 -> v4 directly.
	src := `
loop spilled trips 50
v1 = load x
S: store stack0, v1
R: v2 = load stack0
v4 = fadd v2, 1.0
store y, v4
`
	g := MustCompile(src)
	if g.NumNodes() != 5 {
		t.Fatalf("pre nodes = %d", g.NumNodes())
	}
	out, removed := EliminateStackSpills(g)
	if removed != 2 {
		t.Fatalf("removed = %d, want 2", removed)
	}
	if out.NumNodes() != 3 {
		t.Fatalf("post nodes = %d, want 3", out.NumNodes())
	}
	v1 := out.NodeByName("v1")
	v4 := out.NodeByName("v4")
	found := false
	for _, e := range out.OutEdges(v1.ID) {
		if e.To == v4.ID && e.Kind == ddg.Flow && e.Distance == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("reconnection edge v1->v4 missing")
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEliminateStackSpillsComposesDistance(t *testing.T) {
	// Producer feeds the spill store at distance 1 (value from previous
	// iteration is spilled), reload consumed at distance 0: reconnected
	// distance must be 1.
	src := `
loop d trips 10
v1 = load x
S: store stack1, v1@1
R: v2 = load stack1
v3 = fadd v2, 1.0
store y, v3
`
	g := MustCompile(src)
	out, removed := EliminateStackSpills(g)
	if removed != 2 {
		t.Fatalf("removed = %d", removed)
	}
	v1 := out.NodeByName("v1")
	v3 := out.NodeByName("v3")
	found := false
	for _, e := range out.OutEdges(v1.ID) {
		if e.To == v3.ID && e.Distance == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected distance-1 reconnection, edges: %v", out.Edges())
	}
}

func TestEliminateStackSpillsLeavesUnmatched(t *testing.T) {
	// Load from a slot never stored in this loop: untouched.
	src := `
loop u trips 10
v1 = load stack7
v2 = fadd v1, 1.0
store y, v2
`
	g := MustCompile(src)
	out, removed := EliminateStackSpills(g)
	if removed != 0 {
		t.Fatalf("removed = %d, want 0", removed)
	}
	if out.NumNodes() != g.NumNodes() {
		t.Fatal("unmatched spill access must be preserved")
	}
}

func TestEliminateStackSpillsMultipleLoads(t *testing.T) {
	src := `
loop m trips 10
v1 = load x
S: store stack2, v1
R1: a = load stack2
R2: b = load stack2
c = fadd a, b
store y, c
`
	g := MustCompile(src)
	out, removed := EliminateStackSpills(g)
	if removed != 3 {
		t.Fatalf("removed = %d, want 3 (1 store + 2 loads)", removed)
	}
	v1 := out.NodeByName("v1")
	c := out.NodeByName("c")
	edges := 0
	for _, e := range out.OutEdges(v1.ID) {
		if e.To == c.ID {
			edges++
		}
	}
	if edges != 2 {
		t.Fatalf("expected two reconnection edges (both operands), got %d", edges)
	}
}
