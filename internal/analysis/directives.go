package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The suite's one escape hatch: a comment of the form
//
//	//lint:allow analyzer1[,analyzer2...] [-- rationale]
//
// suppresses those analyzers' diagnostics on the directive's own line
// (trailing comment) and on the line immediately below it (comment
// above the offending statement). The directive must name each
// analyzer explicitly — there is no blanket allow — so every exception
// is greppable and carries its rationale next to the code it excuses.
const directivePrefix = "//lint:allow"

// Suppressions indexes every //lint:allow directive in a package, by
// file, line and analyzer name.
type Suppressions struct {
	// byFile: filename -> line of the directive -> analyzer names allowed.
	byFile map[string]map[int]map[string]bool

	// directives retains each parsed directive with its position, in
	// source order, so the driver can run the expiry check: a directive
	// naming an analyzer that no longer exists is itself a finding.
	directives []Directive
}

// A Directive is one parsed //lint:allow comment.
type Directive struct {
	Pos   token.Pos
	Names []string
}

// Directives returns every parsed allow directive, in scan order.
func (s *Suppressions) Directives() []Directive { return s.directives }

// CollectSuppressions scans the files' comments for allow directives.
// Files must have been parsed with parser.ParseComments.
func CollectSuppressions(fset *token.FileSet, files []*ast.File) *Suppressions {
	s := &Suppressions{byFile: make(map[string]map[int]map[string]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				s.directives = append(s.directives, Directive{Pos: c.Slash, Names: names})
				pos := fset.Position(c.Slash)
				lines := s.byFile[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					s.byFile[pos.Filename] = lines
				}
				set := lines[pos.Line]
				if set == nil {
					set = make(map[string]bool)
					lines[pos.Line] = set
				}
				for _, n := range names {
					set[n] = true
				}
			}
		}
	}
	return s
}

// Allowed reports whether a directive suppresses the named analyzer at
// pos: the directive sits on the same line or the line directly above.
func (s *Suppressions) Allowed(fset *token.FileSet, analyzer string, pos token.Pos) bool {
	if s == nil || !pos.IsValid() {
		return false
	}
	p := fset.Position(pos)
	lines := s.byFile[p.Filename]
	if lines == nil {
		return false
	}
	return lines[p.Line][analyzer] || lines[p.Line-1][analyzer]
}

// parseDirective extracts the analyzer names from one comment, if it is
// an allow directive. Anything after "--" is the human rationale.
func parseDirective(text string) ([]string, bool) {
	rest, ok := strings.CutPrefix(text, directivePrefix)
	if !ok {
		return nil, false
	}
	// Require a separator so "//lint:allowed" or similar is not a match.
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, false
	}
	if i := strings.Index(rest, "--"); i >= 0 {
		rest = rest[:i]
	}
	var names []string
	for _, f := range strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
		names = append(names, f)
	}
	return names, len(names) > 0
}

func isTestFilename(name string) bool {
	return strings.HasSuffix(name, "_test.go")
}
