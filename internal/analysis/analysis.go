// Package analysis is a minimal, self-contained core of the go/analysis
// model: an Analyzer inspects one type-checked package through a Pass
// and reports position-anchored Diagnostics.
//
// The module deliberately has no external dependencies, so the usual
// golang.org/x/tools/go/analysis machinery is not available; this
// package replicates the small subset the ncdrf-lint suite needs — the
// Analyzer/Pass/Diagnostic triple, the `//lint:allow <analyzer>`
// suppression directive (directives.go), and a driver entry point
// (run.go) shared by the `go vet -vettool` unitchecker
// (internal/analysis/unitchecker) and the fixture test harness
// (internal/analysis/analysistest).
//
// The analyzers themselves live in subpackages (detrange, stagemut,
// ctxflow, wallclock); DESIGN.md's "Enforced invariants" section maps
// each one to the repository rule it guards.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
)

// An Analyzer describes one analysis: a named, documented check over a
// single type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//lint:allow <name>` suppression directives. It must be a valid
	// Go identifier.
	Name string

	// Doc is the help text: first line is a one-sentence summary.
	Doc string

	// Run applies the analyzer to one package. Diagnostics go through
	// Pass.Report / Pass.Reportf; the error return is for analysis
	// failures (not findings).
	Run func(*Pass) error

	// FactTypes lists the concrete fact types this analyzer may export
	// or import (facts.go), one zero-valued pointer per type. An
	// analyzer that declares none is fact-free and its passes reject
	// fact calls.
	FactTypes []Fact
}

// A Pass provides one analyzer run with a single type-checked package
// and a sink for its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver owns suppression
	// (directives.go) and ordering; analyzers just report.
	Report func(Diagnostic)

	// facts is the driver-owned store backing the fact methods below:
	// imported dependency facts plus whatever this unit exports.
	facts *FactSet
}

// ExportObjectFact records fact about obj for dependent packages. obj
// must belong to the package under analysis and fact's type must be
// declared in the analyzer's FactTypes; both are programming errors,
// so they panic rather than return.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	p.checkFact(fact)
	if obj == nil || obj.Pkg() != p.Pkg {
		panic(fmt.Sprintf("analysis: %s: ExportObjectFact on object outside package %s", p.Analyzer.Name, p.Pkg.Path()))
	}
	p.facts.putObject(obj, fact)
}

// ImportObjectFact copies into fact the fact of its concrete type
// previously exported about obj — by this unit or any dependency — and
// reports whether one exists.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	p.checkFact(fact)
	if obj == nil {
		return false
	}
	return p.facts.getObject(obj, fact)
}

// ExportPackageFact records fact about the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	p.checkFact(fact)
	p.facts.putPackage(p.Pkg.Path(), fact)
}

// ImportPackageFact copies into fact the fact of its concrete type
// about pkg and reports whether one exists.
func (p *Pass) ImportPackageFact(pkg *types.Package, fact Fact) bool {
	p.checkFact(fact)
	if pkg == nil {
		return false
	}
	return p.facts.getPackage(pkg.Path(), fact)
}

// checkFact panics unless fact's concrete type is declared in the
// analyzer's FactTypes — the declaration is what lets drivers register
// the type with gob before any unit is analyzed.
func (p *Pass) checkFact(fact Fact) {
	for _, f := range p.Analyzer.FactTypes {
		if reflect.TypeOf(f) == reflect.TypeOf(fact) {
			return
		}
	}
	panic(fmt.Sprintf("analysis: %s: fact type %T not declared in FactTypes", p.Analyzer.Name, fact))
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos lies in a _test.go file. Several of
// the suite's rules (wall-clock reads, context threading) bind the
// production code paths only; tests measure time and build fixtures
// freely.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return isTestFilename(p.Fset.Position(pos).Filename)
}
