package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"
	"sync"
)

// This file is the cross-package facts layer: the mechanism by which an
// analyzer records something it proved about an object or a package
// ("this function spawns an unjoined goroutine", "this field is guarded
// by mu") so that the analysis of a *dependent* package can consume the
// conclusion without re-analyzing the dependency's source.
//
// The model is the x/tools go/analysis facts design, cut down to what
// the suite needs on the standard library alone:
//
//   - A Fact is a pointer to a gob-serializable struct with an AFact
//     marker method. Each analyzer declares its fact types up front
//     (Analyzer.FactTypes); facts are namespaced by their Go type, so
//     analyzers cannot observe each other's facts by accident.
//   - Facts attach to a types.Object (object fact) or to a package as a
//     whole (package fact) through the Pass.{Export,Import}…Fact
//     methods.
//   - Between compilation units, facts travel as a gob stream: the
//     vettool driver writes them to the unit's VetxOutput file and reads
//     its dependencies' PackageVetx files; the standalone driver pipes
//     the same bytes between its topologically ordered in-process
//     passes. A unit's encoded set re-exports every fact it imported, so
//     the flow is transitively closed without every unit reading every
//     ancestor.
//
// Objects are named across the serialization boundary by a miniature
// object path: "Name" for a package-level object, "Type.Method" for a
// method. Facts on objects this scheme cannot name (locals, struct
// fields, anonymous types) are silently confined to their own unit —
// exactly the objects no other package could reference anyway. Facts
// whose object does not resolve at decode time (e.g. an unexported
// function absent from gc export data) are dropped, not an error: a
// fact is advice, and undeliverable advice is not a failure.

// A Fact is an analyzer-defined datum attached to an object or package.
// The concrete type must be a pointer to a gob-encodable struct and
// must be declared in the producing analyzer's FactTypes.
type Fact interface {
	// AFact is a marker method; it does nothing.
	AFact()
}

// factKey identifies one stored fact: the subject (an object, or a
// package path for package facts) plus the fact's concrete type.
type factKey struct {
	obj  types.Object // nil for package facts
	path string       // package path; set for package facts only
	t    reflect.Type
}

// FactSet holds every fact known while analyzing one compilation unit:
// the facts decoded from the unit's dependencies plus the facts the
// unit's own analyzers export. The zero value is not usable; call
// NewFactSet.
//
// A FactSet is not safe for concurrent use; drivers run analyzers over
// a unit sequentially.
type FactSet struct {
	m map[factKey]Fact
}

// NewFactSet returns an empty fact set.
func NewFactSet() *FactSet {
	return &FactSet{m: make(map[factKey]Fact)}
}

// putObject records fact about obj, replacing any previous fact of the
// same concrete type.
func (s *FactSet) putObject(obj types.Object, fact Fact) {
	s.m[factKey{obj: obj, t: reflect.TypeOf(fact)}] = fact
}

// getObject copies the stored fact of fact's concrete type about obj
// into fact and reports whether one was found.
func (s *FactSet) getObject(obj types.Object, fact Fact) bool {
	stored, ok := s.m[factKey{obj: obj, t: reflect.TypeOf(fact)}]
	if !ok {
		return false
	}
	copyFact(stored, fact)
	return true
}

// putPackage and getPackage are the package-fact analogues, keyed by
// import path so identity survives re-importing.
func (s *FactSet) putPackage(path string, fact Fact) {
	s.m[factKey{path: path, t: reflect.TypeOf(fact)}] = fact
}

func (s *FactSet) getPackage(path string, fact Fact) bool {
	stored, ok := s.m[factKey{path: path, t: reflect.TypeOf(fact)}]
	if !ok {
		return false
	}
	copyFact(stored, fact)
	return true
}

// Len returns the number of stored facts (diagnostic use only).
func (s *FactSet) Len() int { return len(s.m) }

// copyFact copies the payload of src into the struct dst points at.
// Both must be pointers to the same concrete struct type.
func copyFact(src, dst Fact) {
	sv, dv := reflect.ValueOf(src), reflect.ValueOf(dst)
	if sv.Type() != dv.Type() {
		panic(fmt.Sprintf("analysis: fact type mismatch: %T vs %T", src, dst))
	}
	dv.Elem().Set(sv.Elem())
}

// wireFact is the serialized form of one fact. Object is the mini
// object path within PkgPath's package; empty means a package fact.
type wireFact struct {
	PkgPath string
	Object  string
	Fact    Fact
}

// Encode serializes the whole set — imported and locally exported facts
// alike, so the stream a dependent reads is transitively complete — in
// a deterministic order. Facts attached to objects the path scheme
// cannot name are skipped.
func (s *FactSet) Encode() ([]byte, error) {
	var wire []wireFact
	for k, f := range s.m {
		w := wireFact{PkgPath: k.path, Fact: f}
		if k.obj != nil {
			pkg := k.obj.Pkg()
			if pkg == nil {
				continue
			}
			path, ok := objectPath(k.obj)
			if !ok {
				continue
			}
			w.PkgPath, w.Object = pkg.Path(), path
		}
		wire = append(wire, w)
	}
	sort.Slice(wire, func(i, j int) bool {
		a, b := wire[i], wire[j]
		if a.PkgPath != b.PkgPath {
			return a.PkgPath < b.PkgPath
		}
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		return reflect.TypeOf(a.Fact).String() < reflect.TypeOf(b.Fact).String()
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wire); err != nil {
		return nil, fmt.Errorf("analysis: encoding facts: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode merges one encoded fact stream into the set. lookup resolves a
// package path to its type-checked package; it must return the same
// *types.Package the current unit's type information references, or
// object identity breaks. Facts about packages lookup cannot resolve,
// or about objects absent from the resolved package's scope, are
// dropped silently (see the file comment). An empty stream is a
// complete, empty fact set.
func (s *FactSet) Decode(data []byte, lookup func(path string) (*types.Package, error)) error {
	if len(data) == 0 {
		return nil
	}
	var wire []wireFact
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&wire); err != nil {
		return fmt.Errorf("analysis: decoding facts: %w", err)
	}
	for _, w := range wire {
		if w.Fact == nil {
			continue
		}
		if w.Object == "" {
			s.putPackage(w.PkgPath, w.Fact)
			continue
		}
		pkg, err := lookup(w.PkgPath)
		if err != nil || pkg == nil {
			continue
		}
		if obj := resolveObjectPath(pkg, w.Object); obj != nil {
			s.putObject(obj, w.Fact)
		}
	}
	return nil
}

// objectPath names obj relative to its package: "Name" for a
// package-level object, "Type.Method" for a method of a package-level
// named type. Everything else is unnameable (ok=false).
func objectPath(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	if fn, ok := obj.(*types.Func); ok {
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			named := NamedOf(sig.Recv().Type())
			if named == nil || named.Obj().Pkg() != fn.Pkg() {
				return "", false
			}
			return named.Obj().Name() + "." + fn.Name(), true
		}
	}
	if obj.Parent() == obj.Pkg().Scope() {
		return obj.Name(), true
	}
	return "", false
}

// resolveObjectPath is objectPath's inverse over a (possibly
// export-data-backed) package, or nil.
func resolveObjectPath(pkg *types.Package, path string) types.Object {
	name, method, isMethod := strings.Cut(path, ".")
	obj := pkg.Scope().Lookup(name)
	if obj == nil || !isMethod {
		return obj
	}
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := types.Unalias(tn.Type()).(*types.Named)
	if !ok {
		return nil
	}
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == method {
			return m
		}
	}
	return nil
}

// registeredFacts guards against double gob registration when several
// drivers (or tests) initialize the same suite in one process.
var (
	registeredMu    sync.Mutex
	registeredFacts = map[reflect.Type]bool{}
)

// RegisterFactTypes registers every declared fact type of the given
// analyzers with gob. Drivers call it once before any Decode/Encode.
func RegisterFactTypes(analyzers []*Analyzer) {
	registeredMu.Lock()
	defer registeredMu.Unlock()
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			t := reflect.TypeOf(f)
			if registeredFacts[t] {
				continue
			}
			registeredFacts[t] = true
			gob.Register(f)
		}
	}
}
