package unitchecker

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"sort"

	"ncdrf/internal/analysis"
)

// Standalone mode: `ncdrf-lint ./...` without the go command driving.
//
// The driver asks `go list -json -deps` for the packages the patterns
// name plus everything they import, topologically sorts the in-module
// subset, and analyzes each package from source in dependency order.
// Facts cross package boundaries the same way they do under `go vet`:
// each package's fact set is gob-encoded after analysis and decoded by
// its dependents, so the standalone run exercises the identical codec
// the vetx files carry — only the transport (an in-memory map instead
// of files) differs. Diagnostics are reported for the packages the
// patterns named; dependency-only packages are analyzed for their
// facts alone, the VetxOnly treatment.

// listedPkg is the subset of `go list -json` output the driver needs.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	Standard   bool
	DepOnly    bool
}

// jsonFinding is the -json output schema, one object per diagnostic.
// Suppressed findings (//lint:allow) are included and flagged so
// editor/CI integrations can surface them; only unsuppressed ones make
// the exit status nonzero. The schema is pinned by a CLI test.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Column     int    `json:"column"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// runStandalone analyzes the packages the patterns name and returns
// the process exit code: 0 clean, 1 findings, 2 driver failure.
func runStandalone(patterns []string, analyzers []*analysis.Analyzer, asJSON bool) int {
	pkgs, err := goList(patterns)
	if err != nil {
		log.Print(err)
		return 2
	}
	order, err := topoOrder(pkgs)
	if err != nil {
		log.Print(err)
		return 2
	}

	fset := token.NewFileSet()
	ld := &sourceLoader{
		fset:   fset,
		stdlib: importer.ForCompiler(fset, "source", nil),
		byPath: pkgs,
		types:  make(map[string]*types.Package),
	}
	factBlobs := make(map[string][]byte)

	var all []analysis.Finding
	for _, path := range order {
		lp := pkgs[path]
		files, pkg, info, err := ld.check(lp)
		if err != nil {
			log.Printf("%s: %v", path, err)
			return 2
		}
		// Seed the pass with the direct dependencies' encoded facts —
		// the gob round-trip is deliberate; see the file comment.
		facts := analysis.NewFactSet()
		for _, imp := range lp.Imports {
			if blob := factBlobs[imp]; len(blob) > 0 {
				if err := facts.Decode(blob, ld.lookup); err != nil {
					log.Printf("%s: facts of %s: %v", path, imp, err)
					return 2
				}
			}
		}
		findings, err := analysis.RunPackage(fset, files, pkg, info, analyzers, facts)
		if err != nil {
			log.Printf("%s: %v", path, err)
			return 2
		}
		blob, err := facts.Encode()
		if err != nil {
			log.Printf("%s: %v", path, err)
			return 2
		}
		factBlobs[path] = blob
		if !lp.DepOnly {
			all = append(all, findings...)
		}
	}

	if asJSON {
		out := []jsonFinding{} // encode [] rather than null when clean
		for _, f := range all {
			p := fset.Position(f.Pos)
			out = append(out, jsonFinding{
				File:       p.Filename,
				Line:       p.Line,
				Column:     p.Column,
				Analyzer:   f.Analyzer,
				Message:    f.Message,
				Suppressed: f.Suppressed,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(out); err != nil {
			log.Print(err)
			return 2
		}
	} else {
		for _, f := range analysis.Unsuppressed(all) {
			fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(f.Pos), f.Message, f.Analyzer)
		}
	}
	if len(analysis.Unsuppressed(all)) > 0 {
		return 1
	}
	return 0
}

// goList runs `go list -json -deps` over the patterns and returns the
// non-standard-library packages by import path. Standard packages are
// dropped here and resolved through the source importer instead:
// nothing in the suite attaches facts to the standard library.
func goList(patterns []string) (map[string]*listedPkg, error) {
	args := append([]string{"list", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	pkgs := make(map[string]*listedPkg)
	dec := json.NewDecoder(out)
	for {
		lp := new(listedPkg)
		if err := dec.Decode(lp); err != nil {
			if err == io.EOF {
				break
			}
			cmd.Wait()
			return nil, fmt.Errorf("go list: %w", err)
		}
		if !lp.Standard && lp.ImportPath != "unsafe" {
			pkgs[lp.ImportPath] = lp
		}
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list %v: %w", patterns, err)
	}
	return pkgs, nil
}

// topoOrder sorts the packages so every dependency precedes its
// importers (Kahn's algorithm, ties broken by import path so the run
// order — and with it the output — is deterministic).
func topoOrder(pkgs map[string]*listedPkg) ([]string, error) {
	paths := make([]string, 0, len(pkgs))
	for path := range pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	indeg := make(map[string]int, len(pkgs))
	importers := make(map[string][]string)
	for _, path := range paths {
		indeg[path] += 0
		for _, imp := range pkgs[path].Imports {
			if _, ok := pkgs[imp]; !ok {
				continue // standard library; not ordered here
			}
			indeg[path]++
			importers[imp] = append(importers[imp], path)
		}
	}
	var ready []string
	for path, d := range indeg {
		if d == 0 {
			ready = append(ready, path)
		}
	}
	sort.Strings(ready)
	var order []string
	for len(ready) > 0 {
		path := ready[0]
		ready = ready[1:]
		order = append(order, path)
		changed := false
		for _, dep := range importers[path] {
			if indeg[dep]--; indeg[dep] == 0 {
				ready = append(ready, dep)
				changed = true
			}
		}
		if changed {
			sort.Strings(ready)
		}
	}
	if len(order) != len(pkgs) {
		return nil, fmt.Errorf("import cycle among %d packages", len(pkgs)-len(order))
	}
	return order, nil
}

// sourceLoader parses and type-checks listed packages from source,
// resolving module-local imports to the packages it already checked
// and everything else through the toolchain's source importer. One
// instance serves the whole run, so every package sees the same
// *types.Package for each dependency — the identity facts rely on.
type sourceLoader struct {
	fset   *token.FileSet
	stdlib types.Importer
	byPath map[string]*listedPkg
	types  map[string]*types.Package
}

func (l *sourceLoader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.types[path]; ok {
		return pkg, nil
	}
	if _, ok := l.byPath[path]; ok {
		// A listed package that has not been checked yet would be a
		// topological-order bug, not a user error.
		return nil, fmt.Errorf("internal error: %s imported before it was analyzed", path)
	}
	return l.stdlib.Import(path)
}

// lookup resolves fact package paths for FactSet.Decode.
func (l *sourceLoader) lookup(path string) (*types.Package, error) {
	return l.Import(path)
}

func (l *sourceLoader) check(lp *listedPkg) ([]*ast.File, *types.Package, *types.Info, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, nil, fmt.Errorf("no Go files")
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tc := &types.Config{Importer: l}
	pkg, err := tc.Check(lp.ImportPath, l.fset, files, info)
	if err != nil {
		return nil, nil, nil, err
	}
	l.types[lp.ImportPath] = pkg
	return files, pkg, info, nil
}
