// Package unitchecker implements the command-line protocol `go vet
// -vettool=...` speaks to an analysis driver, on the standard library
// alone (the module vendors no external dependencies, so the
// golang.org/x/tools implementation is off the table):
//
//	-V=full    describe the executable for build caching
//	-flags     describe the tool's flags in JSON
//	unit.cfg   analyze the single compilation unit the JSON config
//	           file describes (files, import maps, export data)
//
// Any other invocation — `ncdrf-lint ./...` or `go run ./cmd/ncdrf-lint
// ./...` — is the standalone mode: the tool re-executes `go vet
// -vettool=<itself>` over the given package patterns, so both modes
// run the identical per-package checker and produce identical output.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"ncdrf/internal/analysis"
)

// Config mirrors the JSON the go command writes for each compilation
// unit (see cmd/go/internal/work's buildVetConfig); fields the suite
// has no use for are kept so the decoder accepts every config.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point of a vet-compatible checker binary.
func Main(analyzers ...*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	versionFlag := flag.String("V", "", "print version and exit (-V=full, for the go command)")
	printFlags := flag.Bool("flags", false, "print the tool's flags in JSON (for the go command)")
	jsonFlag := flag.Bool("json", false, "emit diagnostics as JSON")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, `%[1]s enforces the repository's determinism, immutability and
context-threading invariants (see DESIGN.md, "Enforced invariants").

Usage:
	go vet -vettool=$(command -v %[1]s) ./...
	%[1]s ./...            # standalone: re-executes go vet -vettool
	%[1]s unit.cfg         # single compilation unit (go vet protocol)

Analyzers:
`, progname)
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "	%-10s %s\n", a.Name, firstLine(a.Doc))
		}
		os.Exit(2)
	}
	flag.Parse()

	switch {
	case *versionFlag != "":
		if *versionFlag != "full" {
			log.Fatalf("unsupported flag value: -V=%s (use -V=full)", *versionFlag)
		}
		printVersion()
		return
	case *printFlags:
		printFlagDefs()
		return
	}

	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runUnit(args[0], analyzers, *jsonFlag)
		return
	}
	// Standalone mode: let the go command enumerate packages, build
	// export data and drive this binary per unit.
	os.Exit(vetSelf(args))
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// printVersion implements -V=full. The go command requires the format
// `<name> version devel ... buildID=<id>` (or a release version) and
// uses the ID for build caching, so it is the content hash of the
// executable: rebuilding the tool invalidates cached vet results.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, h.Sum(nil))
}

// printFlagDefs implements -flags: the go command queries the tool's
// flags as JSON before parsing the vet command line.
func printFlagDefs() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	defs := []jsonFlag{
		{Name: "json", Bool: true, Usage: "emit diagnostics as JSON"},
	}
	data, err := json.MarshalIndent(defs, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// vetSelf re-executes `go vet -vettool=<this binary>` over the given
// package patterns and returns the exit code to use.
func vetSelf(patterns []string) int {
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	cmdArgs := append([]string{"vet", "-vettool=" + exe}, patterns...)
	cmd := exec.Command("go", cmdArgs...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		log.Fatal(err)
	}
	return 0
}

// runUnit analyzes one compilation unit per the vet config file and
// exits: 0 when clean, 1 when findings were reported.
func runUnit(configFile string, analyzers []*analysis.Analyzer, asJSON bool) {
	cfg, err := readConfig(configFile)
	if err != nil {
		log.Fatal(err)
	}

	// The go command expects the facts output file to exist afterwards
	// and feeds it to dependents; the suite's analyzers are fact-free,
	// so an empty file is a complete fact set.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			log.Fatal(err)
		}
	}
	if cfg.VetxOnly {
		// Dependency unit: vetted only for facts, never for diagnostics.
		return
	}

	fset := token.NewFileSet()
	findings, err := analyze(fset, cfg, analyzers)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			// The compiler will report the same breakage with a better
			// message; stay silent.
			return
		}
		log.Fatal(err)
	}

	if asJSON {
		writeJSON(os.Stdout, fset, cfg.ID, analyzers, findings)
		return
	}
	for _, d := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

func readConfig(filename string) (*Config, error) {
	data, err := os.ReadFile(filename)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode JSON config file %s: %v", filename, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("package has no files: %s", cfg.ImportPath)
	}
	return cfg, nil
}

// analyze parses and type-checks the unit against the export data the
// go command prepared, then runs the suite through the shared driver.
func analyze(fset *token.FileSet, cfg *Config, analyzers []*analysis.Analyzer) ([]analysis.Finding, error) {
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path is a resolved package path, not an import path.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	tcImporter := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath] // resolve vendoring, etc.
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})

	tc := &types.Config{
		Importer:  tcImporter,
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return analysis.RunPackage(fset, files, pkg, info, analyzers)
}

// writeJSON emits the same shape the x/tools unitchecker does:
// {"pkg-id": {"analyzer": [{"posn": ..., "message": ...}, ...]}}.
func writeJSON(w io.Writer, fset *token.FileSet, id string, analyzers []*analysis.Analyzer, findings []analysis.Finding) {
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	byAnalyzer := make(map[string][]jsonDiag)
	for _, d := range findings {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiag{
			Posn:    fset.Position(d.Pos).String(),
			Message: d.Message,
		})
	}
	tree := map[string]map[string][]jsonDiag{id: byAnalyzer}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	if err := enc.Encode(tree); err != nil {
		log.Fatal(err)
	}
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
