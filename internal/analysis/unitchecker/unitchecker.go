// Package unitchecker implements the command-line protocol `go vet
// -vettool=...` speaks to an analysis driver, on the standard library
// alone (the module vendors no external dependencies, so the
// golang.org/x/tools implementation is off the table):
//
//	-V=full    describe the executable for build caching
//	-flags     describe the tool's flags in JSON
//	unit.cfg   analyze the single compilation unit the JSON config
//	           file describes (files, import maps, export data)
//
// Any other invocation — `ncdrf-lint ./...` or `go run ./cmd/ncdrf-lint
// ./...` — is the standalone mode (standalone.go): the tool asks
// `go list` for the packages, orders them topologically and analyzes
// them in-process, threading analyzer facts between packages through
// the same gob codec the vetx files use, so both modes run the
// identical per-package checker with the identical cross-package fact
// flow.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ncdrf/internal/analysis"
)

// Config mirrors the JSON the go command writes for each compilation
// unit (see cmd/go/internal/work's buildVetConfig); fields the suite
// has no use for are kept so the decoder accepts every config.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point of a vet-compatible checker binary.
func Main(analyzers ...*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")
	analysis.RegisterFactTypes(analyzers)

	versionFlag := flag.String("V", "", "print version and exit (-V=full, for the go command)")
	printFlags := flag.Bool("flags", false, "print the tool's flags in JSON (for the go command)")
	jsonFlag := flag.Bool("json", false, "emit diagnostics as JSON")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, `%[1]s enforces the repository's determinism, immutability and
context-threading invariants (see DESIGN.md, "Enforced invariants").

Usage:
	go vet -vettool=$(command -v %[1]s) ./...
	%[1]s ./...            # standalone: re-executes go vet -vettool
	%[1]s unit.cfg         # single compilation unit (go vet protocol)

Analyzers:
`, progname)
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "	%-10s %s\n", a.Name, firstLine(a.Doc))
		}
		os.Exit(2)
	}
	flag.Parse()

	switch {
	case *versionFlag != "":
		if *versionFlag != "full" {
			log.Fatalf("unsupported flag value: -V=%s (use -V=full)", *versionFlag)
		}
		printVersion()
		return
	case *printFlags:
		printFlagDefs()
		return
	}

	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runUnit(args[0], analyzers, *jsonFlag)
		return
	}
	// Standalone mode: enumerate the packages with `go list`, order
	// them topologically and analyze them in-process, threading facts
	// between packages the same way the vetx files do under go vet.
	os.Exit(runStandalone(args, analyzers, *jsonFlag))
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// inGOROOT reports whether dir lies inside the toolchain's source
// tree, i.e. the unit is a standard-library package.
func inGOROOT(dir string) bool {
	src := filepath.Join(build.Default.GOROOT, "src")
	rel, err := filepath.Rel(src, dir)
	return err == nil && rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator))
}

// printVersion implements -V=full. The go command requires the format
// `<name> version devel ... buildID=<id>` (or a release version) and
// uses the ID for build caching, so it is the content hash of the
// executable: rebuilding the tool invalidates cached vet results.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, h.Sum(nil))
}

// printFlagDefs implements -flags: the go command queries the tool's
// flags as JSON before parsing the vet command line.
func printFlagDefs() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	defs := []jsonFlag{
		{Name: "json", Bool: true, Usage: "emit diagnostics as JSON"},
	}
	data, err := json.MarshalIndent(defs, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// runUnit analyzes one compilation unit per the vet config file and
// exits: 0 when clean, 1 when findings were reported.
//
// Every unit runs the analyzers — a VetxOnly dependency unit too,
// because its exported facts are the whole point of vetting it — but
// only the target unit's diagnostics are printed.
func runUnit(configFile string, analyzers []*analysis.Analyzer, asJSON bool) {
	cfg, err := readConfig(configFile)
	if err != nil {
		log.Fatal(err)
	}

	// The go command expects the facts output file to exist afterwards
	// and feeds it to dependents; write an empty (complete, fact-free)
	// set up front so a typecheck failure below still satisfies it,
	// then overwrite with the real facts on success.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			log.Fatal(err)
		}
	}

	// The suite's invariants are about this repository's code, and its
	// analyzers do not model the runtime's internal joins and locks —
	// running them over the standard library would export facts like
	// "os.ReadFile spawns runtime.createfing" that taint every importer.
	// Standard-library units (the go command hands them over as VetxOnly
	// dependencies, recognizable by their GOROOT source directory) keep
	// the empty fact set, matching the standalone driver, which never
	// analyzes them at all.
	if inGOROOT(cfg.Dir) {
		return
	}

	fset := token.NewFileSet()
	findings, facts, err := analyze(fset, cfg, analyzers)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			// The compiler will report the same breakage with a better
			// message; stay silent.
			return
		}
		log.Fatal(err)
	}
	if cfg.VetxOutput != "" {
		data, err := facts.Encode()
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
			log.Fatal(err)
		}
	}
	if cfg.VetxOnly {
		// Dependency unit: vetted only for facts, never for diagnostics.
		return
	}

	findings = analysis.Unsuppressed(findings)
	if asJSON {
		writeJSON(os.Stdout, fset, cfg.ID, analyzers, findings)
		return
	}
	for _, d := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

func readConfig(filename string) (*Config, error) {
	data, err := os.ReadFile(filename)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode JSON config file %s: %v", filename, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("package has no files: %s", cfg.ImportPath)
	}
	return cfg, nil
}

// analyze parses and type-checks the unit against the export data the
// go command prepared, decodes the dependencies' facts from their vetx
// files, then runs the suite through the shared driver. The returned
// fact set holds the dependency facts plus whatever the unit exported.
func analyze(fset *token.FileSet, cfg *Config, analyzers []*analysis.Analyzer) ([]analysis.Finding, *analysis.FactSet, error) {
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path is a resolved package path, not an import path.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	tcImporter := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath] // resolve vendoring, etc.
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})

	tc := &types.Config{
		Importer:  tcImporter,
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}

	// Import the dependencies' facts. The lookup goes through the same
	// compilerImporter instance the type-check used, so a fact's object
	// resolves to the identical types.Object the unit's TypesInfo
	// references. Vetx files of fact-free units are empty; Decode
	// treats that as a complete empty set.
	facts := analysis.NewFactSet()
	vetxPaths := make([]string, 0, len(cfg.PackageVetx))
	for path := range cfg.PackageVetx {
		vetxPaths = append(vetxPaths, path)
	}
	sort.Strings(vetxPaths)
	for _, path := range vetxPaths {
		data, err := os.ReadFile(cfg.PackageVetx[path])
		if err != nil || len(data) == 0 {
			continue
		}
		if err := facts.Decode(data, func(p string) (*types.Package, error) {
			if p == cfg.ImportPath {
				return pkg, nil
			}
			return compilerImporter.Import(p)
		}); err != nil {
			return nil, nil, fmt.Errorf("facts of %s: %w", path, err)
		}
	}

	findings, err := analysis.RunPackage(fset, files, pkg, info, analyzers, facts)
	if err != nil {
		return nil, nil, err
	}
	return findings, facts, nil
}

// writeJSON emits the same shape the x/tools unitchecker does:
// {"pkg-id": {"analyzer": [{"posn": ..., "message": ...}, ...]}}.
func writeJSON(w io.Writer, fset *token.FileSet, id string, analyzers []*analysis.Analyzer, findings []analysis.Finding) {
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	byAnalyzer := make(map[string][]jsonDiag)
	for _, d := range findings {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiag{
			Posn:    fset.Position(d.Pos).String(),
			Message: d.Message,
		})
	}
	tree := map[string]map[string][]jsonDiag{id: byAnalyzer}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	if err := enc.Encode(tree); err != nil {
		log.Fatal(err)
	}
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
