// Package goleak machine-enforces the goroutine-ownership rule: every
// goroutine reachable from an exported entry point must have a joining
// mechanism — a sync.WaitGroup, a done/result channel, or a consulted
// context — visible at its spawn site. A long-running `ncdrf serve`
// cannot tolerate fire-and-forget goroutines: each one pins its
// closure (engines, caches, row buffers) for the process lifetime and
// escapes every cancellation the caller arranges.
//
// The check is interprocedural: a function that spawns an unjoined
// goroutine — directly or by calling one that does — carries a
// SpawnsUnjoined fact, so a thin exported wrapper around a leaky
// unexported helper is flagged at the API boundary, and a package
// calling a leaky dependency is flagged at its own call site through
// the cross-package fact flow.
package goleak

import (
	"go/ast"
	"go/types"

	"ncdrf/internal/analysis"
)

// SpawnsUnjoined marks a function that starts (transitively) a
// goroutine with no visible joining mechanism. Origin names the
// function containing the actual go statement, for the diagnostic.
type SpawnsUnjoined struct {
	Origin string
}

// AFact marks SpawnsUnjoined as a fact type.
func (*SpawnsUnjoined) AFact() {}

var Analyzer = &analysis.Analyzer{
	Name:      "goleak",
	Doc:       "flag goroutines reachable from exported entry points with no join (WaitGroup, channel) and no consulted context",
	Run:       run,
	FactTypes: []analysis.Fact{(*SpawnsUnjoined)(nil)},
}

// fnInfo is one function declaration's scan result.
type fnInfo struct {
	decl    *ast.FuncDecl
	obj     *types.Func
	spawns  []*ast.GoStmt // direct unjoined go statements
	callees []*types.Func // every resolved callee, for propagation
}

func run(pass *analysis.Pass) error {
	var fns []*fnInfo
	byObj := make(map[*types.Func]*fnInfo)
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			fi := &fnInfo{decl: fd, obj: obj}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					if !joined(pass, n) {
						fi.spawns = append(fi.spawns, n)
					}
				case *ast.CallExpr:
					if callee := analysis.Callee(pass.TypesInfo, n); callee != nil {
						fi.callees = append(fi.callees, callee)
					}
				}
				return true
			})
			fns = append(fns, fi)
			byObj[obj] = fi
		}
	}

	// Interprocedural propagation: origin[f] is set when f spawns
	// unjoined goroutines itself or calls a function that does —
	// locally (fixpoint over the package call graph) or in a
	// dependency (imported fact).
	origin := make(map[*types.Func]string)
	for _, fi := range fns {
		if len(fi.spawns) > 0 {
			origin[fi.obj] = fi.obj.FullName()
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range fns {
			if _, ok := origin[fi.obj]; ok {
				continue
			}
			for _, callee := range fi.callees {
				if o, ok := origin[callee]; ok {
					origin[fi.obj] = o
					changed = true
					break
				}
				var fact SpawnsUnjoined
				if callee.Pkg() != pass.Pkg && pass.ImportObjectFact(callee, &fact) {
					origin[fi.obj] = fact.Origin
					changed = true
					break
				}
			}
		}
	}
	for obj, o := range origin {
		pass.ExportObjectFact(obj, &SpawnsUnjoined{Origin: o})
	}

	// Diagnostics, at API boundaries only: a direct unjoined spawn in
	// an entry point, and an entry point's call into a leaky function
	// it cannot be expected to know the internals of (unexported
	// helper, or any function of another package).
	for _, fi := range fns {
		if !entryPoint(pass, fi.decl) {
			continue
		}
		for _, g := range fi.spawns {
			pass.Reportf(g.Pos(), "goroutine started by %s is never joined; use a WaitGroup or done channel, or consult a context", fi.obj.Name())
		}
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := analysis.Callee(pass.TypesInfo, call)
			if callee == nil || callee == fi.obj {
				return true
			}
			foreign := callee.Pkg() != pass.Pkg
			if !foreign && callee.Exported() {
				// Flagged at its own declaration already.
				return true
			}
			o, ok := origin[callee]
			if !ok {
				var fact SpawnsUnjoined
				if !foreign || !pass.ImportObjectFact(callee, &fact) {
					return true
				}
				o = fact.Origin
			}
			pass.Reportf(call.Pos(), "call to %s spawns an unjoined goroutine (go statement in %s); join it or consult a context", callee.Name(), o)
			return true
		})
	}
	return nil
}

// entryPoint reports whether fd is an API boundary the rule binds:
// an exported function or method, or main.main.
func entryPoint(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Name.IsExported() {
		return true
	}
	return pass.Pkg.Name() == "main" && fd.Name.Name == "main" && fd.Recv == nil
}

// joined reports whether the go statement has a visible joining or
// supervision mechanism: its subtree (function literal body included)
// calls (*sync.WaitGroup).Done/Wait, touches any channel-typed value
// (done channels, result channels, ticker/timer channels), or consults
// a context.Context. The check is deliberately a spawn-site heuristic,
// not an escape analysis; //lint:allow goleak with a rationale is the
// out for supervised exceptions it cannot see.
func joined(pass *analysis.Pass, g *ast.GoStmt) bool {
	found := false
	ast.Inspect(g, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := analysis.Callee(pass.TypesInfo, n); fn != nil {
				if recv, ok := analysis.IsMethod(fn); ok &&
					analysis.IsNamedType(recv, "sync", "WaitGroup") &&
					(fn.Name() == "Done" || fn.Name() == "Wait") {
					found = true
				}
			}
		case ast.Expr:
			if t := pass.TypesInfo.TypeOf(n); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				} else if analysis.IsContextType(t) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
