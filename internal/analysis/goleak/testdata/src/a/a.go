// Package a is the goleak fixture: spawn sites in one package.
package a

import (
	"context"
	"sync"
)

func compute() {}

func watch(ctx context.Context) {}

// LeakDirect fires and forgets at an exported boundary: flagged at the
// go statement itself.
func LeakDirect() {
	go compute() // want `goroutine started by LeakDirect is never joined`
}

// leakHelper is unexported, so its own go statement is not an API
// boundary — it only earns the SpawnsUnjoined fact.
func leakHelper() {
	go compute()
}

// Wrapped is the thin exported wrapper the interprocedural rule
// exists for: the leak surfaces at its call into the helper.
func Wrapped() {
	leakHelper() // want `call to leakHelper spawns an unjoined goroutine \(go statement in a\.leakHelper\)`
}

// JoinedWG joins through a WaitGroup: clean.
func JoinedWG() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		compute()
	}()
	wg.Wait()
}

// JoinedChan supervises through a done channel: clean.
func JoinedChan() {
	done := make(chan struct{})
	go func() {
		compute()
		close(done)
	}()
	<-done
}

// JoinedCtx hands the goroutine a context to consult: clean.
func JoinedCtx(ctx context.Context) {
	go watch(ctx)
}

// Detached documents its exception: the directive suppresses the
// finding and the line asserts silence.
func Detached() {
	//lint:allow goleak -- fixture: process-lifetime goroutine, owns nothing cancellable
	go compute()
}
