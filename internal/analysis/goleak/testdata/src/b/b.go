// Package b is the goleak cross-package fixture: the leaks live in
// package a and reach b only through SpawnsUnjoined facts.
package b

import "a"

// Calls is flagged at its own boundary: the fact imported for
// a.Wrapped carries the original spawn site.
func Calls() {
	a.Wrapped() // want `call to Wrapped spawns an unjoined goroutine \(go statement in a\.leakHelper\)`
}

// CallsDirect hits a function whose own declaration was already
// flagged in a; the call site here is still b's leak to own.
func CallsDirect() {
	a.LeakDirect() // want `call to LeakDirect spawns an unjoined goroutine \(go statement in a\.LeakDirect\)`
}

// quiet is not an API boundary, so its call stays silent.
func quiet() {
	a.Wrapped()
}

// CallsJoined uses the clean API: no diagnostic.
func CallsJoined() {
	a.JoinedWG()
}
