package goleak_test

import (
	"testing"

	"ncdrf/internal/analysis/analysistest"
	"ncdrf/internal/analysis/goleak"
)

func TestGoleak(t *testing.T) {
	// a before b: b's expectations depend on the facts a exports.
	analysistest.Run(t, "testdata", goleak.Analyzer, "a", "b")
}
