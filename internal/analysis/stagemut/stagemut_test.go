package stagemut_test

import (
	"testing"

	"ncdrf/internal/analysis/analysistest"
	"ncdrf/internal/analysis/stagemut"
)

func TestStagemut(t *testing.T) {
	// The impersonated pipeline package is both the fixture's dependency
	// and a negative fixture itself: in-package construction is exempt.
	analysistest.Run(t, "testdata", stagemut.Analyzer, "stagemut", "ncdrf/internal/pipeline")
}
