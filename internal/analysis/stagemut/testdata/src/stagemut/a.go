// Fixture for the stagemut analyzer: writes reaching stage artifacts
// from outside the constructing package (positive), and rebinding or
// non-stage writes (negative).
package a

import "ncdrf/internal/pipeline"

func mutate(b *pipeline.Base, r *pipeline.ModelResult) {
	b.IDs = nil             // want `write to field IDs of immutable pipeline stage artifact ncdrf/internal/pipeline\.Base`
	b.Times[3] = 4          // want `write to field Times`
	b.Graph.Name = "x"      // want `write to field Graph`
	b.Graph.Nodes[0].Op = 1 // want `write to field Graph`
	r.N++                   // want `write to field N`
	r.Sched.II = 2          // want `write to field Sched`
}

func rebind(b *pipeline.Base) {
	// Rebinding the variable is not a write into the artifact.
	b = &pipeline.Base{}
	_ = b
	// Schedule is not itself a stage type; a local one is fair game.
	var local pipeline.Schedule
	local.II = 3
}

func allowed(b *pipeline.Base) {
	//lint:allow stagemut -- fixture: sanctioned construction helper
	b.IDs = append(b.IDs, 1)
}
