// Fixture impersonating the real pipeline package: minimal stage
// artifact types plus in-package construction, which the rule permits
// (no diagnostics anywhere in this file).
package pipeline

type Graph struct {
	Name  string
	Nodes []Node
}

type Node struct{ Op int }

type Schedule struct{ II int }

type Base struct {
	Graph *Graph
	Sched *Schedule
	Times map[int]int
	IDs   []int
}

type ModelResult struct {
	Sched *Schedule
	N     int
}

// New constructs a Base: writes inside the constructing package are
// the construction the immutability rule is about.
func New() *Base {
	b := &Base{Graph: &Graph{}, Sched: &Schedule{}}
	b.Times = map[int]int{}
	b.IDs = append(b.IDs, 0)
	b.Sched.II = 1
	return b
}
