// Package stagemut machine-enforces DESIGN.md's artifact immutability
// rule: pipeline stage artifacts (the Base of Parsed → Base →
// Classified → Allocated → Spilled, and the per-model ModelResult that
// carries the latter three stages) are immutable after construction
// and shared — possibly concurrently — by every consumer. Until now
// the rule was convention; this analyzer flags any write that reaches
// a stage artifact's fields, or anything hanging off them (the
// embedded graph, schedule and lifetime vector), outside the
// constructing package.
package stagemut

import (
	"go/ast"
	"go/types"
	"strings"

	"ncdrf/internal/analysis"
)

// StagePackage is the constructing package: writes inside it (and its
// test variants) are the construction the rule permits.
const StagePackage = "ncdrf/internal/pipeline"

// stageTypes are the artifact types whose fields — and whose fields'
// fields, all the way down — are frozen after construction.
var stageTypes = map[string]bool{
	// The live stage types.
	"Base":        true,
	"ModelResult": true,
	// DESIGN.md stage names, so the rule keeps holding if the collapsed
	// per-model stages are ever split back out into their own types.
	"Parsed":     true,
	"Classified": true,
	"Allocated":  true,
	"Spilled":    true,
}

var Analyzer = &analysis.Analyzer{
	Name: "stagemut",
	Doc:  "flag writes to pipeline stage artifacts outside the constructing package",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// The constructing package owns its artifacts until it returns them;
	// the prefix match covers the in-package and external test units.
	if strings.HasPrefix(pass.Pkg.Path(), StagePackage) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					checkWrite(pass, lhs)
				}
			case *ast.IncDecStmt:
				checkWrite(pass, st.X)
			}
			return true
		})
	}
	return nil
}

// checkWrite walks the written expression's access chain outward-in:
// if any link — the selector roots, index bases, dereferences — has a
// stage artifact type, the write lands inside that artifact.
// Rebinding a whole variable (`b = other`) is fine; `b.Sched = s`,
// `b.Lifetimes[i].Start = c` and `r.Graph.Nodes[n].Op = op` are not.
func checkWrite(pass *analysis.Pass, lhs ast.Expr) {
	for {
		switch e := ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr:
			if t := pass.TypesInfo.TypeOf(e.X); isStageType(t) {
				pass.Reportf(lhs.Pos(), "write to field %s of immutable pipeline stage artifact %s outside %s",
					e.Sel.Name, types.TypeString(analysis.Deref(t), nil), StagePackage)
				return
			}
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.SliceExpr:
			lhs = e.X
		default:
			return
		}
	}
}

func isStageType(t types.Type) bool {
	n := analysis.NamedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == StagePackage && stageTypes[obj.Name()]
}
