// Package wallclock keeps nondeterministic inputs — wall-clock reads,
// the shared unseeded math/rand source, and map-ordered hash material —
// out of the deterministic artifact path. Cache keys, artifact codecs
// and plan digests must be pure functions of their inputs: a timestamp
// or random value that leaks into an encoded artifact or a digest
// poisons the content-addressed store silently and forever.
//
// time.Now / time.Since / time.Until and the global math/rand
// functions are flagged in every non-test package — the progress
// reporter and the store's age-based GC policy are genuine wall-clock
// consumers and carry `//lint:allow wallclock` directives.
// Explicitly seeded generators (rand.New(rand.NewSource(seed)), as in
// internal/loopgen) are fine: they are deterministic by construction.
// Additionally, inside the deterministic packages, feeding a hash
// while ranging over a map is flagged even when detrange's generic
// sink rules would excuse it.
package wallclock

import (
	"go/ast"
	"go/types"
	"strings"

	"ncdrf/internal/analysis"
)

// DeterministicPackages hold digest and key material: pipeline codecs,
// store keys, sweep digests. Prefix match covers their test units.
var DeterministicPackages = []string{
	"ncdrf/internal/pipeline",
	"ncdrf/internal/store",
	"ncdrf/internal/sweep",
}

// wallclockFuncs are the time package's ambient-clock reads.
// Deliberately not listed: time.NewTicker/After/Sleep, which schedule
// rather than observe, and the explicit-input time.Unix/Date.
var wallclockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// randConstructors are the math/rand functions that build an
// explicitly seeded generator; everything else at package level uses
// the shared global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2
	"NewPCG": true, "NewChaCha8": true,
}

var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc:  "flag wall-clock reads, the global math/rand source, and map-ordered hash material",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	deterministic := inDeterministic(pass.Pkg.Path())
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, st)
			case *ast.RangeStmt:
				if deterministic && analysis.IsMapType(pass.TypesInfo.TypeOf(st.X)) {
					if recv, found := findHashFeed(pass, st.Body); found {
						pass.Reportf(st.For, "map iteration order feeds a hash (%s); digest material must visit keys in sorted order", recv)
					}
				}
			}
			return true
		})
	}
	return nil
}

func inDeterministic(path string) bool {
	for _, p := range DeterministicPackages {
		if path == p || strings.HasPrefix(path, p+"_") || strings.HasPrefix(path, p+" ") || strings.HasPrefix(path, p+".") {
			return true
		}
	}
	return false
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallclockFuncs[fn.Name()] {
			pass.Reportf(call.Pos(), "time.%s reads the wall clock; deterministic paths must not (//lint:allow wallclock for genuine clock consumers)", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			pass.Reportf(call.Pos(), "%s.%s draws from the shared unseeded source; use an explicitly seeded rand.New(rand.NewSource(seed))", fn.Pkg().Path(), fn.Name())
		}
	}
}

// findHashFeed looks for a call that pushes bytes into a hash state
// inside a map-range body: a Write/WriteString/Sum method on a
// receiver that duck-types as hash.Hash (has both Sum and BlockSize).
func findHashFeed(pass *analysis.Pass, body *ast.BlockStmt) (string, bool) {
	var recvName string
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// The receiver expression's static type, not the method's declared
		// receiver: hash.Hash's Write is io.Writer's method, and the
		// declared receiver would hide the hash.
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selinfo, ok := pass.TypesInfo.Selections[sel]
		if !ok || selinfo.Kind() != types.MethodVal {
			return true
		}
		switch sel.Sel.Name {
		case "Write", "WriteString", "Sum":
			if recv := selinfo.Recv(); isHashType(recv) {
				recvName, found = types.TypeString(recv, nil), true
			}
		}
		return true
	})
	return recvName, found
}

// isHashType duck-types hash.Hash: the method set has both Sum and
// BlockSize. This catches sha256 et al. without constructing the
// interface type by hand.
func isHashType(t types.Type) bool {
	if t == nil {
		return false
	}
	return hasMethod(t, "Sum") && hasMethod(t, "BlockSize")
}

func hasMethod(t types.Type, name string) bool {
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
	_, ok := obj.(*types.Func)
	return ok
}
