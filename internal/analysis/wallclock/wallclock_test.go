package wallclock_test

import (
	"testing"

	"ncdrf/internal/analysis/analysistest"
	"ncdrf/internal/analysis/wallclock"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, "testdata", wallclock.Analyzer,
		"a",                    // clock/randomness rules apply everywhere
		"ncdrf/internal/store", // deterministic package: hash-feed rule too
	)
}
