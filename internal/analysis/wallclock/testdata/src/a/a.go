// Fixture for wallclock's clock and randomness rules, which apply in
// every non-test package.
package a

import (
	"math/rand"
	"time"
)

func Stamp() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func Roll() int {
	return rand.Intn(6) // want `math/rand\.Intn draws from the shared unseeded source`
}

// An explicitly seeded generator is deterministic by construction.
func SeededRoll(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

// Scheduling primitives observe no clock value. No diagnostic.
func Tick() *time.Ticker {
	return time.NewTicker(time.Second)
}

func Allowed() time.Time {
	//lint:allow wallclock -- fixture: progress reporting
	return time.Now()
}
