// Test files measure time freely.
package a

import "time"

func stampInTest() time.Time {
	return time.Now()
}
