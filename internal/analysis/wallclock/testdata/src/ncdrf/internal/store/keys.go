// Fixture impersonating a deterministic package: key material must
// not depend on map iteration order.
package store

import "crypto/sha256"

func DigestUnsorted(m map[string][]byte) [32]byte {
	h := sha256.New()
	for _, v := range m { // want `map iteration order feeds a hash`
		h.Write(v)
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// The fix: a caller-ordered key slice drives the hash. No diagnostic.
func DigestSorted(m map[string][]byte, sortedKeys []string) [32]byte {
	h := sha256.New()
	for _, k := range sortedKeys {
		h.Write(m[k])
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}
