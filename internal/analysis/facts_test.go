package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"reflect"
	"testing"
)

// The fixture facts mirror the shapes the real analyzers use: an empty
// marker, a struct with data, and a package-scoped fact.
type markFact struct{}

func (*markFact) AFact() {}

type dataFact struct{ Origin string }

func (*dataFact) AFact() {}

type pkgFact struct{ Count int }

func (*pkgFact) AFact() {}

func checkFixture(t *testing.T, src string) *types.Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "a.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := new(types.Config).Check("fact/a", fset, []*ast.File{f}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// TestFactSetRoundTrip proves the gob codec the vetx files and the
// standalone driver both ride: facts exported against one type-checked
// package survive Encode/Decode and resolve back to the same objects.
func TestFactSetRoundTrip(t *testing.T) {
	const src = `package a

type T struct{}

func (T) Method() {}

func Fn() {}

func hidden() {}
`
	RegisterFactTypes([]*Analyzer{{
		Name:      "factsfixture",
		FactTypes: []Fact{(*markFact)(nil), (*dataFact)(nil), (*pkgFact)(nil)},
	}})

	pkg := checkFixture(t, src)
	scope := pkg.Scope()
	fn := scope.Lookup("Fn")
	method, _, _ := types.LookupFieldOrMethod(scope.Lookup("T").Type(), true, pkg, "Method")

	facts := NewFactSet()
	facts.putObject(fn, &markFact{})
	facts.putObject(fn, &dataFact{Origin: "a.Fn"})
	facts.putObject(method, &dataFact{Origin: "a.T.Method"})
	facts.putObject(scope.Lookup("hidden"), &markFact{})
	facts.putPackage(pkg.Path(), &pkgFact{Count: 3})

	blob, err := facts.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) == 0 {
		t.Fatal("Encode returned an empty blob for a non-empty set")
	}

	// Decoding resolves object paths against a *fresh* type-check of
	// the same package, as a dependent's driver would.
	pkg2 := checkFixture(t, src)
	lookup := func(path string) (*types.Package, error) {
		if path != pkg2.Path() {
			t.Fatalf("lookup asked for %q, want %q", path, pkg2.Path())
		}
		return pkg2, nil
	}
	got := NewFactSet()
	if err := got.Decode(blob, lookup); err != nil {
		t.Fatal(err)
	}

	fn2 := pkg2.Scope().Lookup("Fn")
	var df dataFact
	if !got.getObject(fn2, &df) || df.Origin != "a.Fn" {
		t.Errorf("dataFact on Fn: got %+v, present=%v", df, got.getObject(fn2, &df))
	}
	var mf markFact
	if !got.getObject(fn2, &mf) {
		t.Error("markFact on Fn lost in round trip")
	}
	method2, _, _ := types.LookupFieldOrMethod(pkg2.Scope().Lookup("T").Type(), true, pkg2, "Method")
	df = dataFact{}
	if !got.getObject(method2, &df) || df.Origin != "a.T.Method" {
		t.Errorf("dataFact on T.Method: got %+v", df)
	}
	var pf pkgFact
	if !got.getPackage(pkg2.Path(), &pf) || pf.Count != 3 {
		t.Errorf("pkgFact: got %+v", pf)
	}
	// A source-checked package scope carries unexported objects, so the
	// fact on hidden resolves here; under gc export data it would be
	// dropped instead — covered by TestFactSetDecodeUnresolvable.
	if hidden2 := pkg2.Scope().Lookup("hidden"); !got.getObject(hidden2, &mf) {
		t.Error("fact on unexported object lost despite a source-level lookup")
	}
}

// TestFactSetDecodeUnresolvable: facts about objects the consumer's
// view of the package does not contain (the gc-export-data case) are
// dropped silently, not an error.
func TestFactSetDecodeUnresolvable(t *testing.T) {
	RegisterFactTypes([]*Analyzer{{
		Name:      "factsfixture",
		FactTypes: []Fact{(*dataFact)(nil)},
	}})
	pkg := checkFixture(t, "package a\n\nfunc Gone() {}\n")
	facts := NewFactSet()
	facts.putObject(pkg.Scope().Lookup("Gone"), &dataFact{Origin: "a.Gone"})
	blob, err := facts.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// The consumer resolves the same import path to a package that no
	// longer declares Gone.
	shrunk := checkFixture(t, "package a\n")
	got := NewFactSet()
	if err := got.Decode(blob, func(string) (*types.Package, error) { return shrunk, nil }); err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Errorf("unresolvable fact retained: %d facts in set", got.Len())
	}
}

// TestFactSetEncodeDeterministic: the blob is byte-identical across
// encodes — a prerequisite for go vet's action caching and for the
// repo's own reproducibility bar.
func TestFactSetEncodeDeterministic(t *testing.T) {
	const src = `package a

func A() {}
func B() {}
func C() {}
`
	RegisterFactTypes([]*Analyzer{{
		Name:      "factsfixture",
		FactTypes: []Fact{(*dataFact)(nil), (*pkgFact)(nil)},
	}})
	pkg := checkFixture(t, src)
	build := func(order []string) []byte {
		facts := NewFactSet()
		for _, name := range order {
			facts.putObject(pkg.Scope().Lookup(name), &dataFact{Origin: name})
		}
		facts.putPackage(pkg.Path(), &pkgFact{Count: len(order)})
		blob, err := facts.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	first := build([]string{"A", "B", "C"})
	for i := 0; i < 8; i++ {
		if next := build([]string{"C", "A", "B"}); !reflect.DeepEqual(first, next) {
			t.Fatalf("Encode is not deterministic across insertion orders (iteration %d)", i)
		}
	}
}

// TestFactSetDecodeEmpty: a missing or empty vetx payload is a
// complete, empty fact set — not an error.
func TestFactSetDecodeEmpty(t *testing.T) {
	facts := NewFactSet()
	if err := facts.Decode(nil, func(string) (*types.Package, error) {
		t.Fatal("lookup called for an empty payload")
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
}
