// Package lockdisc machine-enforces lock discipline on the engine's
// mutexes, in two rules:
//
//  1. A mutex must not be held across a blocking operation — a channel
//     send/receive, a range over a channel, a default-less select, or a
//     call into a function that (transitively) performs one, like
//     Cache.EvaluateBase reaching the flight cache's select. Holding a
//     lock while parked turns one slow unit into a convoy across every
//     worker that needs the same lock.
//  2. A value containing a lock (sync.Mutex, RWMutex, WaitGroup, Once,
//     Cond, Pool — directly or in a nested field) must not be copied by
//     assignment or by a range clause: the copy has its own lock state
//     and silently stops excluding anyone.
//
// The held-set tracking is lexical (source order within one function
// body, function literals excluded), which matches the repo's
// straight-line lock/unlock style; flow-sensitive cleverness gets a
// //lint:allow with its rationale. Three facts carry the discipline
// across function and package boundaries: Blocks (the function parks),
// HoldsLock (the function returns holding a lock — a lock helper), and
// ReleasesLock (an unlock helper).
package lockdisc

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"ncdrf/internal/analysis"
)

// Blocks marks a function that (transitively) performs a blocking
// operation. Op describes the operation and where it bottoms out,
// e.g. "select in ncdrf/internal/sweep.(*flight).do".
type Blocks struct {
	Op string
}

// AFact marks Blocks as a fact type.
func (*Blocks) AFact() {}

// HoldsLock marks a lock helper: the function returns with the named
// lock held. Lock is receiver-relative for methods ("mu" on a *Cache
// method means the caller's c.mu).
type HoldsLock struct {
	Lock string
}

// AFact marks HoldsLock as a fact type.
func (*HoldsLock) AFact() {}

// ReleasesLock marks an unlock helper: the function releases the named
// lock its caller holds.
type ReleasesLock struct {
	Lock string
}

// AFact marks ReleasesLock as a fact type.
func (*ReleasesLock) AFact() {}

var Analyzer = &analysis.Analyzer{
	Name:      "lockdisc",
	Doc:       "flag mutexes held across blocking operations and lock values copied by assignment or range",
	Run:       run,
	FactTypes: []analysis.Fact{(*Blocks)(nil), (*HoldsLock)(nil), (*ReleasesLock)(nil)},
}

func run(pass *analysis.Pass) error {
	var fns []*ast.FuncDecl
	objOf := make(map[*ast.FuncDecl]*types.Func)
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func); obj != nil {
					fns = append(fns, fd)
					objOf[fd] = obj
				}
			}
		}
	}

	// Round 1: a fact-computing walk of every function — no reporting,
	// no helper facts applied — yielding each function's direct
	// blocking op, call sites, and net lock effect.
	holds := make(map[*types.Func]string)    // lock helper -> lock name
	releases := make(map[*types.Func]string) // unlock helper -> lock name
	scans := make(map[*ast.FuncDecl]*walker)
	for _, fd := range fns {
		w := newWalker(pass, nil, nil, nil)
		w.walk(fd)
		scans[fd] = w
		obj := objOf[fd]
		if lock, ok := w.netHeld(); ok {
			holds[obj] = stripRecv(fd, lock)
			pass.ExportObjectFact(obj, &HoldsLock{Lock: holds[obj]})
		}
		if lock, ok := w.netReleased(); ok {
			releases[obj] = stripRecv(fd, lock)
			pass.ExportObjectFact(obj, &ReleasesLock{Lock: releases[obj]})
		}
	}

	// Blocks fixpoint over the package call graph, seeded by the direct
	// ops and the dependencies' imported facts.
	blocks := make(map[*types.Func]string)
	for _, fd := range fns {
		if w := scans[fd]; w.directOp != "" {
			blocks[objOf[fd]] = w.directOp + " in " + objOf[fd].FullName()
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fd := range fns {
			obj := objOf[fd]
			if _, ok := blocks[obj]; ok {
				continue
			}
			for _, cs := range scans[fd].calls {
				if op, ok := blocks[cs.fn]; ok {
					blocks[obj] = op
					changed = true
					break
				}
				var fact Blocks
				if cs.fn.Pkg() != pass.Pkg && pass.ImportObjectFact(cs.fn, &fact) {
					blocks[obj] = fact.Op
					changed = true
					break
				}
			}
		}
	}
	for obj, op := range blocks {
		pass.ExportObjectFact(obj, &Blocks{Op: op})
	}

	// Round 2: the reporting walk, with the helper and blocking facts
	// in hand.
	for _, fd := range fns {
		w := newWalker(pass, blocks, holds, releases)
		w.report = pass.Reportf
		w.walk(fd)
	}
	return nil
}

// stripRecv makes a held-lock key receiver-relative: "c.mu" inside a
// method with receiver c becomes "mu", so a caller can re-anchor it on
// its own receiver expression.
func stripRecv(fd *ast.FuncDecl, lock string) string {
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		if rest, ok := strings.CutPrefix(lock, fd.Recv.List[0].Names[0].Name+"."); ok {
			return rest
		}
	}
	return lock
}

// callSite is one resolved static call, in source order.
type callSite struct {
	fn  *types.Func
	pos token.Pos
}

// walker performs the lexical scan of one function body.
type walker struct {
	pass     *analysis.Pass
	blocks   map[*types.Func]string // round 2 only
	holds    map[*types.Func]string
	releases map[*types.Func]string
	report   func(token.Pos, string, ...any) // nil in round 1

	held     map[string]bool // lock expr -> currently held
	deferRel map[string]bool // released by a defer (held until return)
	released map[string]bool // net releases (unlock helper shape)
	directOp string          // first direct blocking op, for Blocks
	calls    []callSite
	deferred map[*ast.CallExpr]bool
}

func newWalker(pass *analysis.Pass, blocks, holds, releases map[*types.Func]string) *walker {
	return &walker{
		pass:     pass,
		blocks:   blocks,
		holds:    holds,
		releases: releases,
		held:     make(map[string]bool),
		deferRel: make(map[string]bool),
		released: make(map[string]bool),
		deferred: make(map[*ast.CallExpr]bool),
	}
}

// netHeld reports the lock (if exactly one) the function still holds
// at return — the lock-helper signature. Multiple net locks held is
// strange enough to stay a local matter.
func (w *walker) netHeld() (string, bool) {
	var locks []string
	for k := range w.held {
		if !w.deferRel[k] {
			locks = append(locks, k)
		}
	}
	sort.Strings(locks)
	if len(locks) != 1 {
		return "", false
	}
	return locks[0], true
}

// netReleased is the unlock-helper analogue.
func (w *walker) netReleased() (string, bool) {
	var locks []string
	for k := range w.released {
		locks = append(locks, k)
	}
	sort.Strings(locks)
	if len(locks) != 1 {
		return "", false
	}
	return locks[0], true
}

func (w *walker) walk(fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, w.visit)
}

func (w *walker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.FuncLit:
		// A literal's body runs on its own schedule (goroutine,
		// callback, defer); its ops are not this function's.
		return false
	case *ast.DeferStmt:
		w.deferred[n.Call] = true
	case *ast.CallExpr:
		w.call(n)
	case *ast.SendStmt:
		w.blocking(n.Pos(), "channel send")
	case *ast.UnaryExpr:
		if n.Op == token.ARROW {
			w.blocking(n.Pos(), "channel receive")
		}
	case *ast.SelectStmt:
		// The select as a whole is the blocking op (iff it has no
		// default); its comm statements never block on their own, so
		// walk only the clause bodies.
		if !hasDefault(n) {
			w.blocking(n.Pos(), "select")
		}
		for _, cl := range n.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				for _, stmt := range cc.Body {
					ast.Inspect(stmt, w.visit)
				}
			}
		}
		return false
	case *ast.RangeStmt:
		if t := w.pass.TypesInfo.TypeOf(n.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				w.blocking(n.Pos(), "range over channel")
			}
		}
		w.rangeCopy(n)
	case *ast.AssignStmt:
		w.assignCopy(n)
	}
	return true
}

// call classifies one call: direct mutex Lock/Unlock, a helper with a
// HoldsLock/ReleasesLock fact, or a callee that blocks.
func (w *walker) call(call *ast.CallExpr) {
	fn := analysis.Callee(w.pass.TypesInfo, call)
	if fn == nil {
		return
	}
	w.calls = append(w.calls, callSite{fn: fn, pos: call.Pos()})

	// x.mu.Lock() and friends: the lock key is the receiver expression.
	if recv, ok := analysis.IsMethod(fn); ok && isLockType(recv) {
		sel, _ := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if sel == nil {
			return
		}
		key := types.ExprString(sel.X)
		switch fn.Name() {
		case "Lock", "RLock":
			if !w.deferred[call] {
				w.held[key] = true
			}
		case "Unlock", "RUnlock":
			switch {
			case w.deferred[call]:
				w.deferRel[key] = true
			case w.held[key]:
				delete(w.held, key)
			default:
				w.released[key] = true
			}
		}
		return
	}

	// Lock/unlock helpers, via round-1 local facts or imported ones.
	if lock, ok := w.helperFact(fn, w.holds, &HoldsLock{}); ok {
		if !w.deferred[call] {
			w.held[w.anchor(call, fn, lock)] = true
		}
		return
	}
	if lock, ok := w.helperFact(fn, w.releases, &ReleasesLock{}); ok {
		key := w.anchor(call, fn, lock)
		switch {
		case w.deferred[call]:
			w.deferRel[key] = true
		case w.held[key]:
			delete(w.held, key)
		default:
			w.released[key] = true
		}
		return
	}

	// A callee that parks, called while a lock is held.
	if w.report == nil || w.deferred[call] {
		return
	}
	if heldLock := w.anyHeld(); heldLock != "" {
		if op, ok := w.blocks[fn]; ok {
			w.report(call.Pos(), "lock %s held across call to %s, which blocks (%s)", heldLock, fn.Name(), op)
			return
		}
		var fact Blocks
		if fn.Pkg() != w.pass.Pkg && w.pass.ImportObjectFact(fn, &fact) {
			w.report(call.Pos(), "lock %s held across call to %s, which blocks (%s)", heldLock, fn.Name(), fact.Op)
		}
	}
}

// helperFact resolves a helper's lock name from the local round-1 map
// or, cross-package, from the imported fact. probe must be a fresh
// fact value of the wanted type.
func (w *walker) helperFact(fn *types.Func, local map[*types.Func]string, probe analysis.Fact) (string, bool) {
	if lock, ok := local[fn]; ok {
		return lock, true
	}
	if fn.Pkg() == w.pass.Pkg || !w.pass.ImportObjectFact(fn, probe) {
		return "", false
	}
	switch f := probe.(type) {
	case *HoldsLock:
		return f.Lock, true
	case *ReleasesLock:
		return f.Lock, true
	}
	return "", false
}

// anchor rebuilds a helper's receiver-relative lock name in the
// caller's frame: c.lock() holding "mu" means c.mu here.
func (w *walker) anchor(call *ast.CallExpr, fn *types.Func, lock string) string {
	if _, ok := analysis.IsMethod(fn); ok {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return types.ExprString(sel.X) + "." + lock
		}
	}
	return lock
}

// blocking handles a direct blocking operation: remember the first one
// for the Blocks fact, and report it if a lock is held.
func (w *walker) blocking(pos token.Pos, op string) {
	if w.directOp == "" {
		w.directOp = op
	}
	if w.report == nil {
		return
	}
	if heldLock := w.anyHeld(); heldLock != "" {
		w.report(pos, "lock %s held across %s; release it before blocking", heldLock, op)
	}
}

// anyHeld returns a deterministic representative of the held set, or
// "" when empty.
func (w *walker) anyHeld() string {
	var locks []string
	for k := range w.held {
		locks = append(locks, k)
	}
	if len(locks) == 0 {
		return ""
	}
	sort.Strings(locks)
	return locks[0]
}

// assignCopy flags assignments whose right-hand side copies an
// existing value that contains a lock. Composite literals and call
// results are not "existing values": initialization is how lock-bearing
// structs are born, and a function returning one by value is the
// callee's sin to report.
func (w *walker) assignCopy(st *ast.AssignStmt) {
	if w.report == nil || len(st.Lhs) != len(st.Rhs) {
		return
	}
	for i, rhs := range st.Rhs {
		// Discarding to blank copies nothing anyone can use.
		if id, ok := st.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		rhs = ast.Unparen(rhs)
		switch rhs.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		default:
			continue
		}
		t := w.pass.TypesInfo.TypeOf(rhs)
		if lockName := containsLock(t, nil); lockName != "" {
			w.report(st.Pos(), "assignment copies %s, whose type contains %s; share it through a pointer", types.ExprString(rhs), lockName)
		}
	}
}

// rangeCopy flags `for _, v := range xs` where each iteration copies a
// lock-bearing element into v.
func (w *walker) rangeCopy(n *ast.RangeStmt) {
	if w.report == nil {
		return
	}
	id, ok := n.Value.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := w.pass.TypesInfo.Defs[id]
	if obj == nil {
		return
	}
	if lockName := containsLock(obj.Type(), nil); lockName != "" {
		w.report(n.Pos(), "range copies lock-bearing elements into %s (type contains %s); iterate by index or store pointers", id.Name, lockName)
	}
}

func hasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// lockTypes are the sync types whose values must not be copied and
// whose Lock/Unlock pairs the held tracking follows (Mutex, RWMutex).
var lockTypes = []string{"Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool"}

func isLockType(t types.Type) bool {
	return analysis.IsNamedType(t, "sync", "Mutex") || analysis.IsNamedType(t, "sync", "RWMutex")
}

// containsLock reports the first sync lock type reachable through t's
// value (struct fields and array elements recurse; pointers, slices,
// maps and channels share rather than copy), or "".
func containsLock(t types.Type, seen map[types.Type]bool) string {
	if t == nil {
		return ""
	}
	for _, name := range lockTypes {
		if analysis.IsNamedType(t, "sync", name) {
			// IsNamedType looks through a pointer; a *sync.Mutex copy
			// copies the pointer, which is fine.
			if _, isPtr := types.Unalias(t).(*types.Pointer); !isPtr {
				return "sync." + name
			}
			return ""
		}
	}
	if seen[t] {
		return ""
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name := containsLock(u.Field(i).Type(), seen); name != "" {
				return name
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return ""
}
