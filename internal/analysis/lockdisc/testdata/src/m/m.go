// Package m is the lockdisc cross-package fixture: the blocking and
// lock-helper knowledge about ld arrives only through facts.
package m

import (
	"sync"

	"ld"
)

type wrap struct {
	mu sync.Mutex
	c  *ld.Cache
}

// HeldForeignCall holds its own lock across a dependency call that
// the imported Blocks fact says parks.
func (w *wrap) HeldForeignCall() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.c.Blocker() // want `lock w\.mu held across call to Blocker, which blocks`
}

// HeldForeignHelper acquires through ld's exported helper; the
// imported HoldsLock fact anchors the lock on this caller's receiver
// expression.
func Use(c *ld.Cache, ch chan int) int {
	c.Acquire()
	v := <-ch // want `lock c\.mu held across channel receive`
	c.Release()
	return v
}

// CleanUse releases (through the imported ReleasesLock fact) before
// parking.
func CleanUse(c *ld.Cache, ch chan int) int {
	c.Acquire()
	c.Release()
	return <-ch
}
