// Package ld is the lockdisc fixture: held-across-blocking and
// lock-copy shapes in one package.
package ld

import "sync"

type Cache struct {
	mu   sync.Mutex
	vals map[string]int
	ch   chan int
}

// HeldRecv parks on a receive while holding mu.
func (c *Cache) HeldRecv() int {
	c.mu.Lock()
	v := <-c.ch // want `lock c\.mu held across channel receive`
	c.mu.Unlock()
	return v
}

// HeldSend parks on a send; the deferred unlock keeps mu held to the
// end of the function.
func (c *Cache) HeldSend(v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ch <- v // want `lock c\.mu held across channel send`
}

// HeldSelect parks on a default-less select.
func (c *Cache) HeldSelect(done chan struct{}) {
	c.mu.Lock()
	select { // want `lock c\.mu held across select`
	case <-done:
	case v := <-c.ch:
		c.vals["x"] = v
	}
	c.mu.Unlock()
}

// CleanUnlockFirst releases before parking: the blessed shape.
func (c *Cache) CleanUnlockFirst() int {
	c.mu.Lock()
	c.vals["x"]++
	c.mu.Unlock()
	return <-c.ch
}

// CleanSelectDefault never parks: a select with default polls.
func (c *Cache) CleanSelectDefault() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case v := <-c.ch:
		return v
	default:
		return 0
	}
}

// Blocker earns the Blocks fact (channel receive) with no lock in
// sight.
func (c *Cache) Blocker() int {
	return <-c.ch
}

// HeldCall reaches the park through a call: caught by the fact.
func (c *Cache) HeldCall() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.Blocker() // want `lock c\.mu held across call to Blocker, which blocks \(channel receive in .*Blocker\)`
}

// Acquire and Release are the lock/unlock helper pair: HoldsLock and
// ReleasesLock facts, no diagnostics of their own.
func (c *Cache) Acquire() { c.mu.Lock() }

func (c *Cache) Release() { c.mu.Unlock() }

// HeldViaHelper shows the held set crossing the helper boundary.
func (c *Cache) HeldViaHelper() int {
	c.Acquire()
	v := <-c.ch // want `lock c\.mu held across channel receive`
	c.Release()
	return v
}

// CleanViaHelper releases through the helper before parking.
func (c *Cache) CleanViaHelper() int {
	c.Acquire()
	c.vals["x"]++
	c.Release()
	return <-c.ch
}

// Allowed documents its exception.
func (c *Cache) Allowed() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	//lint:allow lockdisc -- fixture: ch is buffered and private to this method
	return <-c.ch
}

// Counter is the lock-copy half of the fixture.
type Counter struct {
	mu sync.Mutex
	n  int
}

func Copies(c Counter, arr [2]Counter) {
	d := c // want `assignment copies c, whose type contains sync\.Mutex`
	_ = d
	e := arr[0] // want `assignment copies arr\[0\], whose type contains sync\.Mutex`
	_ = e
}

func RangeCopy(cs []Counter) int {
	total := 0
	for _, c := range cs { // want `range copies lock-bearing elements into c`
		total += c.n
	}
	return total
}

// CleanPointers shares, not copies.
func CleanPointers(cs []*Counter) int {
	total := 0
	for _, c := range cs {
		total += c.n
	}
	return total
}
