package lockdisc_test

import (
	"testing"

	"ncdrf/internal/analysis/analysistest"
	"ncdrf/internal/analysis/lockdisc"
)

func TestLockdisc(t *testing.T) {
	// ld before m: m's expectations depend on ld's Blocks/HoldsLock/
	// ReleasesLock facts.
	analysistest.Run(t, "testdata", lockdisc.Analyzer, "ld", "m")
}
