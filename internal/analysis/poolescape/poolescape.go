// Package poolescape machine-enforces the sync.Pool ownership rule a
// pooled row encoder lives or dies by: a value taken from a pool is a
// loan. It must not be stored to a heap location that can outlive the
// Put — a package-level variable, a struct field, a map/slice element,
// a channel — and it must not be touched after the Put hands it back,
// because the pool may already have re-issued it to another goroutine
// (the corruption is silent and, worse for this repo, nondeterministic).
//
// A function that returns a pooled value instead of Putting it
// transfers the loan to its caller; that is legal and recorded as a
// ReturnsPooled fact, so callers in other packages have their stores
// of the borrowed value checked too.
//
// The check is lexical, not flow-sensitive: "after Put" means after
// the function's last Put of that value in source order, which accepts
// the early-return `if err { pool.Put(e); return err }` shape without
// a false positive. //lint:allow poolescape documents anything
// cleverer.
package poolescape

import (
	"go/ast"
	"go/token"
	"go/types"

	"ncdrf/internal/analysis"
)

// ReturnsPooled marks a function whose return value is on loan from a
// sync.Pool: the caller inherits the escape/use-after-Put obligations.
type ReturnsPooled struct{}

// AFact marks ReturnsPooled as a fact type.
func (*ReturnsPooled) AFact() {}

var Analyzer = &analysis.Analyzer{
	Name:      "poolescape",
	Doc:       "flag sync.Pool values stored to locations outliving their Put, or used after it",
	Run:       run,
	FactTypes: []analysis.Fact{(*ReturnsPooled)(nil)},
}

func run(pass *analysis.Pass) error {
	var fns []*ast.FuncDecl
	objOf := make(map[*ast.FuncDecl]*types.Func)
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func); obj != nil {
					fns = append(fns, fd)
					objOf[fd] = obj
				}
			}
		}
	}

	// Round 1, to fixpoint: which local functions return a pooled
	// value. Must settle before diagnostics so `w := wrapper()` is
	// recognized as a loan regardless of declaration order.
	returns := make(map[*types.Func]bool)
	for changed := true; changed; {
		changed = false
		for _, fd := range fns {
			obj := objOf[fd]
			if returns[obj] {
				continue
			}
			c := newChecker(pass, returns)
			c.scan(fd.Body)
			if c.returnsPooled {
				returns[obj] = true
				changed = true
			}
		}
	}
	for obj := range returns {
		pass.ExportObjectFact(obj, &ReturnsPooled{})
	}

	// Round 2: diagnostics.
	for _, fd := range fns {
		c := newChecker(pass, returns)
		c.report = pass.Reportf
		c.scan(fd.Body)
	}
	return nil
}

// checker analyzes one function body. report is nil during the
// fact-only fixpoint round.
type checker struct {
	pass    *analysis.Pass
	returns map[*types.Func]bool

	pooled map[types.Object]bool
	// lastPut maps a pooled variable to its last pool.Put(v) call in
	// source order; uses lexically after it are use-after-Put.
	lastPut map[types.Object]*ast.CallExpr

	returnsPooled bool
	report        func(token.Pos, string, ...any)
}

func newChecker(pass *analysis.Pass, returns map[*types.Func]bool) *checker {
	return &checker{
		pass:    pass,
		returns: returns,
		pooled:  make(map[types.Object]bool),
		lastPut: make(map[types.Object]*ast.CallExpr),
	}
}

// scan analyzes body; afterwards c.returnsPooled reports whether the
// function transfers a loan to its caller.
func (c *checker) scan(body *ast.BlockStmt) {
	// Pass A: find the loans — variables assigned from pool.Get, from
	// a ReturnsPooled function, or aliasing another loan — iterating
	// so chains settle independent of source order.
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			st, ok := n.(*ast.AssignStmt)
			if !ok || len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := c.objectOf(id)
				if obj == nil || c.pooled[obj] {
					continue
				}
				if c.isPooledExpr(st.Rhs[i]) {
					c.pooled[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	// No early exit on an empty loan set: a body like
	// `return pool.Get().(*T)` has no pooled *variable* but still
	// transfers a loan, which pass C's return check must see.

	// Pass B: the last Put of each loan.
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		fn := analysis.Callee(c.pass.TypesInfo, call)
		recv, isM := analysis.IsMethod(fn)
		if !isM || fn.Name() != "Put" || !analysis.IsNamedType(recv, "sync", "Pool") {
			return true
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if obj := c.objectOf(id); obj != nil && c.pooled[obj] {
				c.lastPut[obj] = call
			}
		}
		return true
	})

	// Pass C: violations.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				id, ok := ast.Unparen(rhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := c.objectOf(id)
				if obj == nil || !c.pooled[obj] {
					continue
				}
				if loc := c.heapLocation(n.Lhs[i]); loc != "" {
					c.reportf(n.Pos(), "pooled value %s stored to %s, which may outlive its Put; copy the contents instead", id.Name, loc)
				}
			}
		case *ast.SendStmt:
			if id, ok := ast.Unparen(n.Value).(*ast.Ident); ok {
				if obj := c.objectOf(id); obj != nil && c.pooled[obj] {
					c.reportf(n.Pos(), "pooled value %s sent on a channel; the receiver may outlive its Put", id.Name)
				}
			}
		case *ast.ReturnStmt:
			// `return e` and `return pool.Get().(*T)` both transfer
			// the loan.
			for _, res := range n.Results {
				if c.isPooledExpr(res) {
					c.returnsPooled = true
				}
			}
		case *ast.Ident:
			obj := c.objectOf(n)
			if obj == nil || !c.pooled[obj] {
				return true
			}
			put := c.lastPut[obj]
			if put != nil && n.Pos() > put.End() {
				c.reportf(n.Pos(), "pooled value %s used after Put; the pool may have re-issued it", n.Name)
			}
		}
		return true
	})
}

// isPooledExpr reports whether e yields a loaned pool value: a
// (*sync.Pool).Get call, a call to a ReturnsPooled function (local or
// imported fact), or an alias of an existing loan — looked through
// parens and type assertions, the `pool.Get().(*T)` idiom.
func (c *checker) isPooledExpr(e ast.Expr) bool {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok && ta.Type != nil {
		e = ast.Unparen(ta.X)
	}
	switch e := e.(type) {
	case *ast.Ident:
		obj := c.objectOf(e)
		return obj != nil && c.pooled[obj]
	case *ast.CallExpr:
		fn := analysis.Callee(c.pass.TypesInfo, e)
		if fn == nil {
			return false
		}
		if recv, ok := analysis.IsMethod(fn); ok && fn.Name() == "Get" && analysis.IsNamedType(recv, "sync", "Pool") {
			return true
		}
		if c.returns[fn] {
			return true
		}
		var fact ReturnsPooled
		return fn.Pkg() != c.pass.Pkg && c.pass.ImportObjectFact(fn, &fact)
	}
	return false
}

// heapLocation classifies an assignment target that can outlive the
// function frame; "" means a plain local and is fine.
func (c *checker) heapLocation(lhs ast.Expr) string {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		return types.ExprString(lhs)
	case *ast.IndexExpr:
		return types.ExprString(lhs)
	case *ast.StarExpr:
		return types.ExprString(lhs)
	case *ast.Ident:
		if obj := c.objectOf(lhs); obj != nil && obj.Parent() == c.pass.Pkg.Scope() {
			return lhs.Name
		}
	}
	return ""
}

func (c *checker) objectOf(id *ast.Ident) types.Object {
	if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return c.pass.TypesInfo.Uses[id]
}

func (c *checker) reportf(pos token.Pos, format string, args ...any) {
	if c.report != nil {
		c.report(pos, format, args...)
	}
}
