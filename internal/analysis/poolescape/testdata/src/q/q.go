// Package q is the poolescape cross-package fixture: the loan
// originates in pp and reaches q only through the ReturnsPooled fact
// on pp.GetEnc.
package q

import "pp"

var keep *pp.Enc

// Hold stores a borrowed value it got from another package.
func Hold() {
	e := pp.GetEnc()
	keep = e // want `pooled value e stored to keep`
}

// Copy is the blessed way to keep the bytes.
func Copy() []byte {
	e := pp.GetEnc()
	out := append([]byte(nil), e.Buf...)
	return out
}
