// Package pp is the poolescape fixture: loans inside one package.
package pp

import "sync"

// Enc stands in for the pooled row encoder.
type Enc struct{ Buf []byte }

var pool = sync.Pool{New: func() any { return new(Enc) }}

var sink *Enc

type holder struct{ e *Enc }

// UseAfterPut touches the loan after handing it back.
func UseAfterPut() int {
	e := pool.Get().(*Enc)
	pool.Put(e)
	return len(e.Buf) // want `pooled value e used after Put`
}

// EscapeGlobal parks the loan in a package-level variable.
func EscapeGlobal() {
	e := pool.Get().(*Enc)
	sink = e // want `pooled value e stored to sink, which may outlive its Put`
	pool.Put(e)
}

// EscapeField parks it in a struct field reachable by the caller.
func EscapeField(h *holder) {
	e := pool.Get().(*Enc)
	h.e = e // want `pooled value e stored to h\.e`
	pool.Put(e)
}

// EscapeChan hands it to whoever is on the other end.
func EscapeChan(ch chan *Enc) {
	e := pool.Get().(*Enc)
	ch <- e // want `pooled value e sent on a channel`
	pool.Put(e)
}

// EscapeAlias escapes through an alias of the loan.
func EscapeAlias() {
	e := pool.Get().(*Enc)
	w := e
	sink = w // want `pooled value w stored to sink`
	pool.Put(e)
}

// Clean is the blessed get/use/put shape.
func Clean() int {
	e := pool.Get().(*Enc)
	n := len(e.Buf)
	pool.Put(e)
	return n
}

// CleanEarlyReturn puts on the error path and again at the end; the
// uses between the two are not "after Put" (last-Put semantics).
func CleanEarlyReturn(fail bool) int {
	e := pool.Get().(*Enc)
	if fail {
		pool.Put(e)
		return 0
	}
	n := len(e.Buf)
	pool.Put(e)
	return n
}

// GetEnc transfers the loan to the caller: a ReturnsPooled fact, no
// diagnostic here.
func GetEnc() *Enc {
	return pool.Get().(*Enc)
}

// getWrapped chains the transfer through a local wrapper.
func getWrapped() *Enc {
	return GetEnc()
}

// EscapeViaWrapper shows the loan is tracked through the local chain.
func EscapeViaWrapper() {
	e := getWrapped()
	sink = e // want `pooled value e stored to sink`
	pool.Put(e)
}

// Allowed documents its exception.
func Allowed() {
	e := pool.Get().(*Enc)
	//lint:allow poolescape -- fixture: sink is cleared before the pool is touched again
	sink = e
	pool.Put(e)
}
