package poolescape_test

import (
	"testing"

	"ncdrf/internal/analysis/analysistest"
	"ncdrf/internal/analysis/poolescape"
)

func TestPoolescape(t *testing.T) {
	// pp before q: q's expectations depend on pp's ReturnsPooled fact.
	analysistest.Run(t, "testdata", poolescape.Analyzer, "pp", "q")
}
