package ctxflow_test

import (
	"testing"

	"ncdrf/internal/analysis/analysistest"
	"ncdrf/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer,
		"ncdrf/internal/sweep", // target package: full dispatcher rules
		"a",                    // any library package: root-context rule
		"mainpkg",              // package main: exempt
	)
}
