// Package ctxflow machine-enforces the context-threading rule:
// cancellation is threaded, not conjured. Every work-performing path —
// the sweep engine, the pipeline stages, the experiment runners, the
// spill loop — must accept the caller's context.Context and actually
// consult it, and nothing outside main (and tests) may mint a root
// context with context.Background or context.TODO: a long-running
// `ncdrf serve` can only cancel work whose context it handed out.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"ncdrf/internal/analysis"
)

// TargetPackages are the work-performing packages whose exported API
// must thread contexts. Prefix match, so test units are covered.
var TargetPackages = []string{
	"ncdrf/internal/sweep",
	"ncdrf/internal/pipeline",
	"ncdrf/internal/experiment",
	"ncdrf/internal/spill",
}

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "flag work-dispatching exported functions without a consulted context, and root contexts minted outside main",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	target := inTarget(pass.Pkg.Path())
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		// Rule 1, everywhere but package main: context roots belong to the
		// process entry point; library code uses the caller's.
		if pass.Pkg.Name() != "main" {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := analysis.Callee(pass.TypesInfo, call)
				for _, name := range [...]string{"Background", "TODO"} {
					if analysis.IsPkgFunc(fn, "context", name) {
						pass.Reportf(call.Pos(), "context.%s mints a root context outside main; accept and thread the caller's context instead", name)
					}
				}
				return true
			})
		}
		// Rule 2, target packages: exported work dispatchers thread a
		// context and consult it.
		if !target {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func inTarget(path string) bool {
	for _, p := range TargetPackages {
		if path == p || strings.HasPrefix(path, p+"_") || strings.HasPrefix(path, p+" ") || strings.HasPrefix(path, p+".") {
			return true
		}
	}
	return false
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	ctxParam, named := contextParam(pass, fd)
	if ctxParam == nil && !named {
		// No context parameter at all: only a problem if the function
		// dispatches work.
		if what := dispatchesWork(pass, fd.Body); what != "" {
			pass.Reportf(fd.Name.Pos(), "exported function %s %s but has no context.Context parameter", fd.Name.Name, what)
		}
		return
	}
	if ctxParam == nil {
		// Blank context parameter: declared for the API, discarded in fact.
		pass.Reportf(fd.Name.Pos(), "exported function %s discards its context.Context parameter (blank name); name it and consult it", fd.Name.Name)
		return
	}
	if !consults(pass, fd.Body, ctxParam) {
		pass.Reportf(fd.Name.Pos(), "exported function %s accepts a context.Context but never consults it", fd.Name.Name)
	}
}

// contextParam returns the object of the function's context.Context
// parameter. named reports whether a context parameter exists at all,
// so a blank `_ context.Context` is distinguishable from none.
func contextParam(pass *analysis.Pass, fd *ast.FuncDecl) (obj types.Object, named bool) {
	for _, field := range fd.Type.Params.List {
		if !analysis.IsContextType(pass.TypesInfo.TypeOf(field.Type)) {
			continue
		}
		named = true
		for _, id := range field.Names {
			if id.Name == "_" {
				continue
			}
			if def := pass.TypesInfo.Defs[id]; def != nil {
				return def, true
			}
		}
	}
	return nil, named
}

// dispatchesWork classifies a body that must be cancellable: it starts
// goroutines, or it loops over calls into context-aware work (a loop
// repeatedly invoking functions that themselves take a context is
// exactly the shape a stuck sweep hangs in). Plain computational loops
// are not work dispatch.
func dispatchesWork(pass *analysis.Pass, body *ast.BlockStmt) string {
	what := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if what != "" {
			return false
		}
		switch st := n.(type) {
		case *ast.GoStmt:
			what = "starts goroutines"
		case *ast.ForStmt:
			if loopCallsContextAware(pass, st.Body) {
				what = "loops over context-aware calls"
			}
		case *ast.RangeStmt:
			if loopCallsContextAware(pass, st.Body) {
				what = "loops over context-aware calls"
			}
		}
		return true
	})
	return what
}

func loopCallsContextAware(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
		if !ok {
			return true
		}
		for i := 0; i < sig.Params().Len(); i++ {
			if analysis.IsContextType(sig.Params().At(i).Type()) {
				found = true
				break
			}
		}
		return true
	})
	return found
}

// consults reports whether the body references the context parameter
// at all — checking Done/Err directly or handing it to a callee both
// count as threading it.
func consults(pass *analysis.Pass, body *ast.BlockStmt, ctxObj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == ctxObj {
			used = true
		}
		return !used
	})
	return used
}
