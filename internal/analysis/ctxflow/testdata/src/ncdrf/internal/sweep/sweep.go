// Fixture impersonating a work-performing target package: exported
// dispatchers must accept and consult a context.
package sweep

import "context"

type Unit struct{ N int }

func work(ctx context.Context, u Unit) error { return ctx.Err() }

// Looping over context-aware calls without a context parameter.
func RunAll(units []Unit) error { // want `loops over context-aware calls but has no context\.Context parameter`
	for _, u := range units {
		if err := work(context.TODO(), u); err != nil { // want `context\.TODO mints a root context`
			return err
		}
	}
	return nil
}

// Starting goroutines without a context parameter.
func Spawn(units []Unit) { // want `starts goroutines but has no context\.Context parameter`
	for _, u := range units {
		go func(u Unit) { _ = u }(u)
	}
}

// Accepting a context and ignoring it is the same lie with paperwork.
func Ignore(ctx context.Context, units []Unit) int { // want `accepts a context\.Context but never consults it`
	total := 0
	for _, u := range units {
		total += u.N
	}
	return total
}

// A blank context parameter is discarded by construction.
func Blank(_ context.Context, units []Unit) int { // want `discards its context\.Context parameter`
	return len(units)
}

// The rule satisfied: accepted and threaded. No diagnostic.
func Threaded(ctx context.Context, units []Unit) error {
	for _, u := range units {
		if err := work(ctx, u); err != nil {
			return err
		}
	}
	return nil
}

// A pure computational loop dispatches no work. No diagnostic.
func Sum(units []Unit) int {
	total := 0
	for _, u := range units {
		total += u.N
	}
	return total
}

// Unexported helpers are the exported callers' responsibility.
func spawn(units []Unit) {
	for _, u := range units {
		go func(u Unit) { _ = u }(u)
	}
}

// An explicit allowlist entry.
//
//lint:allow ctxflow -- fixture: sanctioned fire-and-forget
func Detached(units []Unit) {
	for _, u := range units {
		go func(u Unit) { _ = u }(u)
	}
}
