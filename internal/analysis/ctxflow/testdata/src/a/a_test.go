// Test files may mint root contexts freely.
package a

import "context"

func rootInTest() context.Context {
	return context.Background()
}
