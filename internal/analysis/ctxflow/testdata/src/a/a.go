// Fixture for ctxflow's root-context rule outside the target
// packages: Background/TODO are flagged in any library package.
package a

import "context"

func Root() context.Context {
	return context.Background() // want `context\.Background mints a root context`
}

func Allowed() context.Context {
	//lint:allow ctxflow -- fixture: documented ctx-free facade
	return context.Background()
}
