// Package main is the process entry point: minting the root context
// is exactly its job.
package main

import "context"

func main() {
	_ = context.Background()
}
