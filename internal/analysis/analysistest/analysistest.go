// Package analysistest runs an analyzer over GOPATH-style fixture
// packages and checks its diagnostics against `// want "regexp"`
// comments, mirroring the golang.org/x/tools harness of the same name
// on the standard library alone.
//
// Fixtures live under <analyzer>/testdata/src/<import/path>/: imports
// between fixture packages resolve inside testdata/src (so a fixture
// can impersonate ncdrf/internal/pipeline and give stagemut real stage
// types to look at), and everything else falls through to the
// toolchain's source importer. Expectations:
//
//	m := map[int]int{}
//	for k := range m { // want `map iteration order`
//		fmt.Println(k)
//	}
//
// Every diagnostic must match a want on its line and every want must
// be matched — a fixture line with no comment asserts silence, which
// is how the negative fixtures pin the analyzers' non-findings and the
// `//lint:allow` directive behavior (the harness runs the same driver
// `go vet -vettool` does, suppression included).
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"ncdrf/internal/analysis"
)

// Run loads each fixture package below testdata/src, applies the
// analyzer and matches its findings against the package's want
// comments.
//
// Packages are analyzed in the order given over one shared fact set,
// so listing a dependency before its importer exercises cross-package
// fact flow exactly as the topological drivers run it. Suppressed
// findings are excluded from matching — a line carrying an allow
// directive and no want comment asserts the suppression works.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := newLoader(filepath.Join(testdata, "src"))
	facts := analysis.NewFactSet()
	for _, path := range pkgPaths {
		t.Run(strings.ReplaceAll(path, "/", "_"), func(t *testing.T) {
			t.Helper()
			pkg, err := l.load(path)
			if err != nil {
				t.Fatalf("loading fixture package %s: %v", path, err)
			}
			findings, err := analysis.RunPackage(l.fset, pkg.files, pkg.pkg, pkg.info, []*analysis.Analyzer{a}, facts)
			if err != nil {
				t.Fatalf("running %s on %s: %v", a.Name, path, err)
			}
			check(t, l.fset, pkg.files, analysis.Unsuppressed(findings))
		})
	}
}

// check matches findings against want comments, two-way.
func check(t *testing.T, fset *token.FileSet, files []*ast.File, findings []analysis.Finding) {
	t.Helper()
	wants := collectWants(t, fset, files)
	for _, f := range findings {
		posn := fset.Position(f.Pos)
		matched := false
		for _, w := range wants {
			if w.matched || w.file != posn.Filename || w.line != posn.Line {
				continue
			}
			if w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", posn, f.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: want matching %q, got no diagnostic", w.file, w.line, w.re)
		}
	}
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// wantRE extracts the Go-quoted or backquoted expectation strings
// after the "want" marker.
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				posn := fset.Position(c.Slash)
				for _, q := range wantRE.FindAllString(rest, -1) {
					var pattern string
					if q[0] == '`' {
						pattern = q[1 : len(q)-1]
					} else {
						var err error
						if pattern, err = strconv.Unquote(q); err != nil {
							t.Fatalf("%s: bad want expectation %s: %v", posn, q, err)
						}
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", posn, pattern, err)
					}
					wants = append(wants, &want{file: posn.Filename, line: posn.Line, re: re})
				}
			}
		}
	}
	return wants
}

// loadedPkg is one type-checked fixture package.
type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// loader resolves imports from testdata/src first and the standard
// library (compiled from source, so it works without export data or a
// network) second. Fixture packages are memoized, so impersonated
// dependencies are the same *types.Package the target imports.
type loader struct {
	fset   *token.FileSet
	srcdir string
	stdlib types.Importer
	pkgs   map[string]*loadedPkg
}

func newLoader(srcdir string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:   fset,
		srcdir: srcdir,
		stdlib: importer.ForCompiler(fset, "source", nil),
		pkgs:   make(map[string]*loadedPkg),
	}
}

func (l *loader) Import(path string) (*types.Package, error) {
	if fi, err := os.Stat(filepath.Join(l.srcdir, filepath.FromSlash(path))); err == nil && fi.IsDir() {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	return l.stdlib.Import(path)
}

func (l *loader) load(path string) (*loadedPkg, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.srcdir, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tc := &types.Config{Importer: l}
	pkg, err := tc.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	p := &loadedPkg{pkg: pkg, files: files, info: info}
	l.pkgs[path] = p
	return p, nil
}
