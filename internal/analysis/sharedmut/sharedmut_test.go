package sharedmut_test

import (
	"testing"

	"ncdrf/internal/analysis/analysistest"
	"ncdrf/internal/analysis/sharedmut"
)

func TestSharedmut(t *testing.T) {
	// st before n: n's expectations depend on st's Guards fact.
	analysistest.Run(t, "testdata", sharedmut.Analyzer, "st", "n")
}
