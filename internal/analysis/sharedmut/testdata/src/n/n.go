// Package n is the sharedmut cross-package fixture: st.Shared's
// guard discipline arrives only through the Guards fact.
package n

import "st"

// Bump ignores the home package's mutex.
func Bump(s *st.Shared) {
	s.Hits++ // want `field Shared\.Hits is mu-guarded in its defining package; this write is unguarded`
}

// BumpGuarded honors it.
func BumpGuarded(s *st.Shared) {
	s.Mu.Lock()
	s.Hits++
	s.Mu.Unlock()
}
