// Package st is the sharedmut fixture: state structs written from
// mixed goroutine/synchronous contexts.
package st

import "sync"

// Exec has one unguarded counter written from both sides of a go
// statement, and one disciplined counter.
type Exec struct {
	mu   sync.Mutex
	rows int
	done int
}

// Run writes rows synchronously and spawns work, which writes it
// async: both sites are unguarded, both are flagged.
func (e *Exec) Run() {
	go e.work()
	e.rows++ // want `field Exec\.rows is written concurrently`
}

func (e *Exec) work() {
	e.rows++ // want `field Exec\.rows is written concurrently`
}

// Add and RunDone write done under the mutex from both contexts:
// clean, and the discipline becomes a Guards fact on Exec.
func (e *Exec) Add() {
	e.mu.Lock()
	e.done++
	e.mu.Unlock()
}

func (e *Exec) RunDone() {
	go e.Add()
	e.mu.Lock()
	e.done++
	e.mu.Unlock()
}

// Base leader: writes under sync.Once are single-shot by construction.
type Base struct {
	once sync.Once
	val  int
}

func (b *Base) LeadAsync(n int) { go b.set(n) }

func (b *Base) set(n int) {
	b.once.Do(func() { b.val = n })
}

func (b *Base) SetLocal(n int) {
	b.once.Do(func() { b.val = n })
}

// ForEach is the worker-pool shape: fn runs on goroutines, so ForEach
// earns an AsyncParams fact for index 1.
func ForEach(n int, fn func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn(i)
		}()
	}
	wg.Wait()
}

// Wrapper forwards its own parameter into the pool: the fact
// propagates, index 1 again.
func Wrapper(n int, fn func(int)) { ForEach(n, fn) }

// Tally is written from a pool closure and from straight-line code.
type Tally struct {
	hits  int
	hits2 int
	total int
}

func (t *Tally) Count(n int) {
	ForEach(n, func(i int) {
		t.hits++ // want `field Tally\.hits is written concurrently`
	})
	t.hits++ // want `field Tally\.hits is written concurrently`
}

func (t *Tally) CountViaWrapper(n int) {
	Wrapper(n, func(i int) {
		t.hits2++ // want `field Tally\.hits2 is written concurrently`
	})
	t.hits2++ // want `field Tally\.hits2 is written concurrently`
}

// CountLocal never leaves the synchronous world: clean.
func (t *Tally) CountLocal(n int) {
	for i := 0; i < n; i++ {
		t.total++
	}
}

// NewExec shows the constructor exemption: a value born here is not
// shared yet.
func NewExec() *Exec {
	e := &Exec{}
	e.rows = 0
	return e
}

// Shared is the cross-package half: Hits is consistently mu-guarded,
// which becomes a Guards fact for package n's writes to be judged by.
type Shared struct {
	Mu   sync.Mutex
	Hits int
}

func (s *Shared) Inc() {
	s.Mu.Lock()
	s.Hits++
	s.Mu.Unlock()
}

// Allowed documents its exception.
type Gauge struct {
	n int
}

func (g *Gauge) bump() {
	//lint:allow sharedmut -- fixture: approximate gauge, torn reads acceptable
	g.n++
}

func (g *Gauge) Watch() {
	go g.bump()
	//lint:allow sharedmut -- fixture: approximate gauge, torn reads acceptable
	g.n++
}
