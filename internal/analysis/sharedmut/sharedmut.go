// Package sharedmut machine-enforces the shared-mutation rule on the
// engine's state structs (the scheduler arena, the reorder buffer, the
// stage counters): a struct field written both from goroutine-reachable
// code and from synchronous code must be guarded — a held mutex, a
// sync.Once body, or atomics (atomic operations are calls, not
// assignments, so they never appear as raw writes at all).
//
// "Goroutine-reachable" is computed interprocedurally: a function
// called from a go statement is async, and so is everything it calls;
// a func-typed parameter invoked from a goroutine makes its function
// carry an AsyncParams fact, so a closure handed to a worker pool
// (sweep.ForEach and its wrappers) is async even when the pool lives in
// another package. A type whose fields are consistently guarded earns a
// Guards fact, and an unguarded write to such a field from a dependent
// package is flagged against the home package's discipline.
//
// The mixed-context requirement — at least one async and at least one
// synchronous write site — is deliberate: a struct whose every write is
// async is usually a per-call arena confined to one worker (the
// scheduler's imsState), which is exactly the ownership model the
// engine is built on, and not a data race the analyzer can see.
// //lint:allow sharedmut documents the cases it gets wrong.
package sharedmut

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"ncdrf/internal/analysis"
)

// AsyncParams marks a function that invokes its func-typed parameters
// at the given indices from a goroutine — a worker pool's shape.
type AsyncParams struct {
	Indices []int
}

// AFact marks AsyncParams as a fact type.
func (*AsyncParams) AFact() {}

// FieldGuard is one entry of a Guards fact: the named field's write
// sites all sit under the given guard ("mu" or "once").
type FieldGuard struct {
	Field string
	Guard string
}

// Guards marks a type whose listed fields are consistently guarded in
// the defining package, so dependent packages inherit the discipline.
type Guards struct {
	Fields []FieldGuard
}

// AFact marks Guards as a fact type.
func (*Guards) AFact() {}

var Analyzer = &analysis.Analyzer{
	Name:      "sharedmut",
	Doc:       "flag struct fields written unguarded from both goroutine-reachable and synchronous code",
	Run:       run,
	FactTypes: []analysis.Fact{(*AsyncParams)(nil), (*Guards)(nil)},
}

// site is one recorded field write.
type site struct {
	fn    *types.Func
	pos   token.Pos
	field *types.Var
	owner *types.TypeName
	guard string // "", "mu", "once"
	async bool
}

// wctx is the walk context of one function body region.
type wctx struct {
	fn    *types.Func     // enclosing declared function
	async bool            // inside goroutine-reachable code
	once  bool            // inside a (*sync.Once).Do body
	held  map[string]bool // mutexes held, lexically (per body)
	fresh map[types.Object]bool
}

type scanner struct {
	pass       *analysis.Pass
	fns        []*ast.FuncDecl
	objOf      map[*ast.FuncDecl]*types.Func
	asyncFns   map[*types.Func]bool
	asyncParam map[*types.Var]bool
	consumed   map[*ast.FuncLit]bool
	sites      []*site
	changed    bool
}

func run(pass *analysis.Pass) error {
	s := &scanner{
		pass:       pass,
		objOf:      make(map[*ast.FuncDecl]*types.Func),
		asyncFns:   make(map[*types.Func]bool),
		asyncParam: make(map[*types.Var]bool),
		consumed:   make(map[*ast.FuncLit]bool),
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func); obj != nil {
					s.fns = append(s.fns, fd)
					s.objOf[fd] = obj
				}
			}
		}
	}

	// Scan to fixpoint: the async-function and async-parameter sets
	// grow monotonically as goroutine reachability propagates through
	// the call graph; the final iteration's sites carry stable flags.
	for {
		s.sites = nil
		s.changed = false
		for _, fd := range s.fns {
			obj := s.objOf[fd]
			s.walk(fd.Body, wctx{
				fn:    obj,
				async: s.asyncFns[obj],
				held:  make(map[string]bool),
				fresh: make(map[types.Object]bool),
			})
		}
		if !s.changed {
			break
		}
	}

	// Export AsyncParams per function.
	for _, fd := range s.fns {
		obj := s.objOf[fd]
		sig := obj.Type().(*types.Signature)
		var idx []int
		for i := 0; i < sig.Params().Len(); i++ {
			if s.asyncParam[sig.Params().At(i)] {
				idx = append(idx, i)
			}
		}
		if len(idx) > 0 {
			pass.ExportObjectFact(obj, &AsyncParams{Indices: idx})
		}
	}

	// Group the write sites per field and judge.
	byField := make(map[*types.Var][]*site)
	var fields []*types.Var
	for _, st := range s.sites {
		st.async = st.async || s.asyncFns[st.fn]
		if len(byField[st.field]) == 0 {
			fields = append(fields, st.field)
		}
		byField[st.field] = append(byField[st.field], st)
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i].Pos() < fields[j].Pos() })

	guardsByType := make(map[*types.TypeName][]FieldGuard)
	for _, field := range fields {
		sites := byField[field]
		owner := sites[0].owner
		if owner.Pkg() != pass.Pkg {
			// Foreign type: the home package's Guards fact is the law.
			var fact Guards
			if !pass.ImportObjectFact(owner, &fact) {
				continue
			}
			for _, fg := range fact.Fields {
				if fg.Field != field.Name() {
					continue
				}
				for _, st := range sites {
					if st.guard == "" {
						pass.Reportf(st.pos, "field %s.%s is %s-guarded in its defining package; this write is unguarded", owner.Name(), field.Name(), fg.Guard)
					}
				}
			}
			continue
		}

		anyAsync, anySync, allGuard := false, false, sites[0].guard
		for _, st := range sites {
			if st.async {
				anyAsync = true
			} else {
				anySync = true
			}
			if st.guard == "" || (allGuard != "" && st.guard != allGuard) {
				allGuard = ""
			}
		}
		if allGuard != "" {
			guardsByType[owner] = append(guardsByType[owner], FieldGuard{Field: field.Name(), Guard: allGuard})
		}
		if !anyAsync || !anySync {
			continue
		}
		for _, st := range sites {
			if st.guard == "" {
				pass.Reportf(st.pos, "field %s.%s is written concurrently (goroutine-reachable and synchronous sites) without a guard; hold a mutex or use atomics", owner.Name(), field.Name())
			}
		}
	}
	for owner, fgs := range guardsByType {
		sort.Slice(fgs, func(i, j int) bool { return fgs[i].Field < fgs[j].Field })
		pass.ExportObjectFact(owner, &Guards{Fields: fgs})
	}
	return nil
}

// walk traverses one body region under ctx. Function literals and go
// statements switch context and are walked manually.
func (s *scanner) walk(n ast.Node, ctx wctx) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			s.goStmt(n, ctx)
			return false
		case *ast.FuncLit:
			if s.consumed[n] {
				return false
			}
			// A plain literal not consumed by a recognized construct:
			// same schedule assumption as its surroundings, own locks.
			lctx := ctx
			lctx.once = false
			lctx.held = make(map[string]bool)
			s.walk(n.Body, lctx)
			return false
		case *ast.CallExpr:
			return s.call(n, ctx)
		case *ast.AssignStmt:
			s.assign(n, ctx)
		case *ast.IncDecStmt:
			if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok {
				s.recordWrite(sel, n.Pos(), ctx)
			}
		}
		return true
	})
}

// goStmt handles `go f(...)` / `go func(){...}(...)`: the arguments
// evaluate synchronously, the invoked function runs async.
func (s *scanner) goStmt(g *ast.GoStmt, ctx wctx) {
	for _, arg := range g.Call.Args {
		s.walk(arg, ctx)
	}
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		lctx := ctx
		lctx.async = true
		lctx.once = false
		lctx.held = make(map[string]bool)
		s.walk(lit.Body, lctx)
		return
	}
	s.markAsyncCallee(g.Call, ctx)
}

// markAsyncCallee records that the call's target runs on a goroutine:
// a declared function joins asyncFns, a func parameter of the current
// function joins asyncParam (feeding the AsyncParams fact).
func (s *scanner) markAsyncCallee(call *ast.CallExpr, ctx wctx) {
	if fn := analysis.Callee(s.pass.TypesInfo, call); fn != nil {
		if fn.Pkg() == s.pass.Pkg && !s.asyncFns[fn] {
			s.asyncFns[fn] = true
			s.changed = true
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if v, ok := s.pass.TypesInfo.Uses[id].(*types.Var); ok && s.isParamOf(v, ctx.fn) && !s.asyncParam[v] {
			s.asyncParam[v] = true
			s.changed = true
		}
	}
}

func (s *scanner) isParamOf(v *types.Var, fn *types.Func) bool {
	if fn == nil {
		return false
	}
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == v {
			return true
		}
	}
	return false
}

// call classifies one call under ctx and reports whether the default
// descent should continue.
func (s *scanner) call(call *ast.CallExpr, ctx wctx) bool {
	fn := analysis.Callee(s.pass.TypesInfo, call)

	// (*sync.Once).Do(func(){...}): the body runs exactly once across
	// all goroutines — a guard in itself.
	if fn != nil && fn.Name() == "Do" {
		if recv, ok := analysis.IsMethod(fn); ok && analysis.IsNamedType(recv, "sync", "Once") && len(call.Args) == 1 {
			if lit, ok := ast.Unparen(call.Args[0]).(*ast.FuncLit); ok {
				lctx := ctx
				lctx.once = true
				lctx.held = make(map[string]bool)
				s.walk(lit.Body, lctx)
				return false
			}
		}
	}

	// Mutex acquire/release updates the lexical held set.
	if fn != nil {
		if recv, ok := analysis.IsMethod(fn); ok &&
			(analysis.IsNamedType(recv, "sync", "Mutex") || analysis.IsNamedType(recv, "sync", "RWMutex")) {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				key := types.ExprString(sel.X)
				switch fn.Name() {
				case "Lock", "RLock":
					ctx.held[key] = true
				case "Unlock", "RUnlock":
					delete(ctx.held, key)
				}
			}
			return true
		}
	}

	// An async edge in the call graph: a call from async context makes
	// the callee async.
	if fn != nil && ctx.async && fn.Pkg() == s.pass.Pkg && !s.asyncFns[fn] {
		s.asyncFns[fn] = true
		s.changed = true
	}
	// Invoking a func parameter from async context is the AsyncParams
	// seed (the worker pool calling its fn).
	if fn == nil && ctx.async {
		s.markAsyncCallee(call, ctx)
	}

	// Arguments at the callee's async indices run on goroutines.
	async := s.asyncIndices(fn)
	for i, arg := range call.Args {
		if !containsInt(async, i) {
			continue
		}
		switch a := ast.Unparen(arg).(type) {
		case *ast.FuncLit:
			lctx := ctx
			lctx.async = true
			lctx.once = false
			lctx.held = make(map[string]bool)
			s.walk(a.Body, lctx)
			// The default descent must not re-walk this literal with
			// the synchronous context.
			s.consumed[a] = true
		case *ast.Ident:
			switch obj := s.pass.TypesInfo.Uses[a].(type) {
			case *types.Var:
				if s.isParamOf(obj, ctx.fn) && !s.asyncParam[obj] {
					s.asyncParam[obj] = true
					s.changed = true
				}
			case *types.Func:
				if obj.Pkg() == s.pass.Pkg && !s.asyncFns[obj] {
					s.asyncFns[obj] = true
					s.changed = true
				}
			}
		}
	}
	return true
}

// asyncIndices resolves a callee's async parameter indices from the
// local scan state or, cross-package, its imported AsyncParams fact.
func (s *scanner) asyncIndices(fn *types.Func) []int {
	if fn == nil {
		return nil
	}
	if fn.Pkg() == s.pass.Pkg {
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return nil
		}
		var idx []int
		for i := 0; i < sig.Params().Len(); i++ {
			if s.asyncParam[sig.Params().At(i)] {
				idx = append(idx, i)
			}
		}
		return idx
	}
	var fact AsyncParams
	if s.pass.ImportObjectFact(fn, &fact) {
		return fact.Indices
	}
	return nil
}

func (s *scanner) assign(st *ast.AssignStmt, ctx wctx) {
	// Track constructor-owned locals: a variable born from a composite
	// literal or new() in this body is not shared yet; its field
	// writes are initialization, not mutation.
	if st.Tok == token.DEFINE && len(st.Lhs) == len(st.Rhs) {
		for i, lhs := range st.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if obj := s.pass.TypesInfo.Defs[id]; obj != nil && isConstruction(st.Rhs[i]) {
				ctx.fresh[obj] = true
			}
		}
	}
	for _, lhs := range st.Lhs {
		if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
			s.recordWrite(sel, st.Pos(), ctx)
		}
	}
}

// isConstruction reports whether e births a fresh value: T{...},
// &T{...} or new(T).
func isConstruction(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			return id.Name == "new"
		}
	}
	return false
}

func (s *scanner) recordWrite(sel *ast.SelectorExpr, pos token.Pos, ctx wctx) {
	selection, ok := s.pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	field, ok := selection.Obj().(*types.Var)
	if !ok {
		return
	}
	named := analysis.NamedOf(s.pass.TypesInfo.TypeOf(sel.X))
	if named == nil {
		return
	}
	if root := rootIdent(sel.X); root != nil {
		if obj := s.pass.TypesInfo.Uses[root]; obj != nil && ctx.fresh[obj] {
			return
		}
	}
	guard := ""
	switch {
	case ctx.once:
		guard = "once"
	case len(ctx.held) > 0:
		guard = "mu"
	}
	s.sites = append(s.sites, &site{
		fn:    ctx.fn,
		pos:   pos,
		field: field,
		owner: named.Obj(),
		guard: guard,
		async: ctx.async,
	})
}

// rootIdent returns the leftmost identifier of a selector chain.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
