package detrange_test

import (
	"testing"

	"ncdrf/internal/analysis/analysistest"
	"ncdrf/internal/analysis/detrange"
)

func TestDetrange(t *testing.T) {
	analysistest.Run(t, "testdata", detrange.Analyzer, "a")
}
