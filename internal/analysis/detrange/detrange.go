// Package detrange enforces the byte-identical-stream contract: no
// output may depend on Go's randomized map iteration order.
//
// The repository's result streams are deterministic by construction —
// PlanDigest, the reorder buffer and `ncdrf merge` all rely on it — so
// a `range` over a map whose body reaches an output sink (a writer or
// encoder, error construction, printing, or an append that is never
// sorted afterwards) silently breaks the contract one flaky golden
// diff at a time. The fix is always the same: collect the keys, sort
// them, iterate the slice.
package detrange

import (
	"fmt"
	"go/ast"
	"go/types"

	"ncdrf/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "detrange",
	Doc:  "flag map iteration whose body reaches an output sink without an intervening sort",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			checkScope(pass, decl)
		}
	}
	return nil
}

// checkScope inspects one top-level declaration. The declaration is
// also the scope of the "intervening sort" test: an append inside a
// map range is excused when the destination slice is passed to a
// sort.*/slices.Sort* call anywhere in the same declaration.
func checkScope(pass *analysis.Pass, decl ast.Decl) {
	sorted := sortedObjects(pass, decl)
	ast.Inspect(decl, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok || !analysis.IsMapType(pass.TypesInfo.TypeOf(rng.X)) {
			return true
		}
		if sink := findSink(pass, rng.Body, sorted); sink != "" {
			pass.Reportf(rng.For, "map iteration order reaches an output sink (%s); iterate a sorted slice of the keys instead", sink)
		}
		return true
	})
}

// sortedObjects collects every object mentioned in the arguments of a
// sort call in the declaration; an append destination found here has
// its order laundered before anything downstream can observe it.
func sortedObjects(pass *analysis.Pass, decl ast.Decl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(decl, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.Callee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "sort", "slices":
			for _, arg := range call.Args {
				analysis.ExprObjects(pass.TypesInfo, arg, out)
			}
		}
		return true
	})
	return out
}

// printFuncs are the fmt functions that turn map-ordered visits into
// observable bytes (or into an error message, which the CLI prints).
var printFuncs = map[string]bool{
	"Errorf": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
	"Sprint": true, "Sprintf": true, "Sprintln": true,
	"Appendf": true, "Append": true, "Appendln": true,
}

// findSink returns a description of the first output sink reached in
// the body of a map range, or "" if the body is order-safe.
func findSink(pass *analysis.Pass, body *ast.BlockStmt, sorted map[types.Object]bool) string {
	var sink string
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := analysis.Callee(pass.TypesInfo, call); fn != nil {
			sink = callSink(fn)
			return true
		}
		// append is a builtin: a per-key append publishes the map order
		// into the slice unless that slice is sorted before use.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && !isSorted(pass, call.Args[0], sorted) {
				sink = fmt.Sprintf("append to %s, which is never sorted", types.ExprString(call.Args[0]))
			}
		}
		return true
	})
	return sink
}

// callSink classifies one resolved call as a sink ("" if benign):
// error construction and printing by name, writers and encoders by
// method-name convention (Write*, Encode*).
func callSink(fn *types.Func) string {
	if analysis.IsPkgFunc(fn, "errors", "New") {
		return "errors.New"
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && printFuncs[fn.Name()] {
		sig, ok := fn.Type().(*types.Signature)
		if ok && sig.Recv() == nil {
			return "fmt." + fn.Name()
		}
	}
	if recv, ok := analysis.IsMethod(fn); ok {
		name := fn.Name()
		if len(name) >= 5 && name[:5] == "Write" || len(name) >= 6 && name[:6] == "Encode" {
			return fmt.Sprintf("(%s).%s", types.TypeString(recv, nil), name)
		}
	}
	return ""
}

// isSorted reports whether the append destination's order is laundered
// by a later sort: any object mentioned in the destination expression
// also appears in a sort call's arguments within the declaration.
func isSorted(pass *analysis.Pass, dst ast.Expr, sorted map[types.Object]bool) bool {
	objs := make(map[types.Object]bool)
	analysis.ExprObjects(pass.TypesInfo, dst, objs)
	for obj := range objs {
		if sorted[obj] {
			return true
		}
	}
	return false
}
