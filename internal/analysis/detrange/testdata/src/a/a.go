// Fixture for the detrange analyzer: map ranges whose bodies reach
// output sinks (positive), and the sorted-slice idioms and directives
// that are exempt (negative).
package a

import (
	"errors"
	"fmt"
	"io"
	"sort"
)

// Error construction is a sink: which key the error names would vary
// run to run.
func errSelect(conflicts map[string]bool) error {
	for name, set := range conflicts { // want `map iteration order reaches an output sink \(fmt\.Errorf\)`
		if set {
			return fmt.Errorf("conflicting flag %s", name)
		}
	}
	return nil
}

func errorsNew(m map[string]bool) error {
	for name := range m { // want `map iteration order reaches an output sink \(errors\.New\)`
		return errors.New("first: " + name)
	}
	return nil
}

// Printing to a writer is a sink.
func printAll(m map[string]int, w io.Writer) {
	for k, v := range m { // want `fmt\.Fprintf`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

type sink struct{}

func (sink) Write(p []byte) (int, error) { return len(p), nil }

// A Write* method on any receiver is a sink.
func writeMethod(m map[int]int, s sink) {
	for k := range m { // want `\(a\.sink\)\.Write`
		s.Write([]byte{byte(k)})
	}
}

// Appending per-key without a later sort publishes the map order.
func appendUnsorted(m map[string]int) []string {
	var out []string
	for k := range m { // want `append to out, which is never sorted`
		out = append(out, k)
	}
	return out
}

// The canonical fix: collect, sort, use. No diagnostic.
func appendSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Ranging a slice is ordered by construction. No diagnostic.
func sliceRange(xs []string, w io.Writer) {
	for _, x := range xs {
		fmt.Fprintln(w, x)
	}
}

// An explicit directive waives the rule on the next line.
func allowed(m map[string]int) error {
	//lint:allow detrange -- fixture: first-match semantics are fine here
	for k := range m {
		return errors.New("first " + k)
	}
	return nil
}
