// Test files are exempt: golden tests may print maps freely.
package a

import "fmt"

func rangeInTest(m map[string]int) {
	for k := range m {
		fmt.Println(k)
	}
}
