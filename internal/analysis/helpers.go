package analysis

import (
	"go/ast"
	"go/types"
)

// Callee resolves a call expression to the function or method it
// invokes, or nil for builtins, conversions and dynamic calls through
// function-typed values.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether fn is the package-level function
// pkgPath.name (not a method).
func IsPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Name() != name || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// IsMethod reports whether fn is a method, and if so returns its
// receiver type with any pointer indirection removed.
func IsMethod(fn *types.Func) (types.Type, bool) {
	if fn == nil {
		return nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, false
	}
	return Deref(sig.Recv().Type()), true
}

// Deref removes one level of pointer indirection, if any.
func Deref(t types.Type) types.Type {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// NamedOf returns the named type behind t (through aliases and one
// pointer indirection), or nil.
func NamedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	n, _ := types.Unalias(Deref(t)).(*types.Named)
	return n
}

// IsNamedType reports whether t is (a pointer to) the named type
// pkgPath.name.
func IsNamedType(t types.Type, pkgPath, name string) bool {
	n := NamedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	return IsNamedType(t, "context", "Context")
}

// IsMapType reports whether t's underlying type is a map.
func IsMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// ExprObjects appends to dst the objects of every identifier mentioned
// anywhere inside e (selectors, conversions, composite literals, ...).
func ExprObjects(info *types.Info, e ast.Expr, dst map[types.Object]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				dst[obj] = true
			}
		}
		return true
	})
}
