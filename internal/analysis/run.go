package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// A Finding is one diagnostic tagged with the analyzer that produced
// it, as delivered to drivers by RunPackage.
type Finding struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// RunPackage applies every analyzer to one type-checked package,
// filters the findings through the package's //lint:allow directives
// and returns them in file/position order. An analyzer error aborts
// the run: it is a broken analyzer, not a finding.
//
// Both drivers — the vet-protocol unitchecker and the analysistest
// harness — go through this single entry point, so a fixture exercises
// exactly the suppression and ordering behavior `go vet` will apply.
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Finding, error) {
	sup := CollectSuppressions(fset, files)
	var out []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d Diagnostic) {
				if sup.Allowed(fset, a.Name, d.Pos) {
					return
				}
				out = append(out, Finding{Analyzer: a.Name, Pos: d.Pos, Message: d.Message})
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		pi, pj := fset.Position(out[i].Pos), fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}
