package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// A Finding is one diagnostic tagged with the analyzer that produced
// it, as delivered to drivers by RunPackage. Suppressed findings — hit
// by a //lint:allow directive — are included and marked rather than
// dropped, so a driver can surface suppression status (the -json
// output does) while exiting zero on them.
type Finding struct {
	Analyzer   string
	Pos        token.Pos
	Message    string
	Suppressed bool
}

// AllowName is the pseudo-analyzer name under which RunPackage reports
// rotted //lint:allow directives (ones naming an analyzer that does not
// exist). It is a reserved name so the expiry check itself can be
// suppressed explicitly.
const AllowName = "allow"

// RunPackage applies every analyzer to one type-checked package,
// marks the findings hit by the package's //lint:allow directives as
// suppressed, appends the allow-expiry findings (directives naming
// unknown analyzers, under the AllowName pseudo-analyzer), and returns
// everything in file/position order. An analyzer error aborts the run:
// it is a broken analyzer, not a finding.
//
// facts carries the cross-package fact flow: the driver seeds it with
// the dependencies' decoded facts before the call, and the analyzers'
// exported facts accumulate into it for the driver to encode
// afterwards. Pass NewFactSet() when no dependency facts exist.
//
// All drivers — the vet-protocol unitchecker, the standalone
// topological driver and the analysistest harness — go through this
// single entry point, so a fixture exercises exactly the suppression
// and ordering behavior `go vet` will apply.
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer, facts *FactSet) ([]Finding, error) {
	if facts == nil {
		facts = NewFactSet()
	}
	sup := CollectSuppressions(fset, files)
	var out []Finding
	known := map[string]bool{AllowName: true}
	for _, a := range analyzers {
		known[a.Name] = true
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			facts:     facts,
		}
		pass.Report = func(d Diagnostic) {
			out = append(out, Finding{
				Analyzer:   a.Name,
				Pos:        d.Pos,
				Message:    d.Message,
				Suppressed: sup.Allowed(fset, a.Name, d.Pos),
			})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	// Expiry check: a directive naming an analyzer that no longer
	// exists suppresses nothing and would otherwise rot silently.
	for _, d := range sup.Directives() {
		if isTestFilename(fset.Position(d.Pos).Filename) {
			continue
		}
		for _, n := range d.Names {
			if !known[n] {
				out = append(out, Finding{
					Analyzer:   AllowName,
					Pos:        d.Pos,
					Message:    fmt.Sprintf("//lint:allow names unknown analyzer %q (renamed or removed?); delete or update the directive", n),
					Suppressed: sup.Allowed(fset, AllowName, d.Pos),
				})
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		pi, pj := fset.Position(out[i].Pos), fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// Unsuppressed filters findings down to the ones that should fail a
// build: everything not hit by an allow directive.
func Unsuppressed(findings []Finding) []Finding {
	var out []Finding
	for _, f := range findings {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}
