package perf

import (
	"math"
	"testing"
	"testing/quick"
)

func runs(iis ...int) []LoopRun {
	out := make([]LoopRun, len(iis))
	for i, ii := range iis {
		out[i] = LoopRun{Name: "l", Trips: 100, II: ii, MemOps: 3}
	}
	return out
}

func TestCycles(t *testing.T) {
	r := LoopRun{Trips: 50, II: 4, MemOps: 3}
	if r.Cycles() != 200 {
		t.Fatalf("Cycles = %d", r.Cycles())
	}
	if r.MemAccesses() != 150 {
		t.Fatalf("MemAccesses = %d", r.MemAccesses())
	}
}

func TestRelPerformance(t *testing.T) {
	ideal := runs(1, 2)
	model := runs(2, 2)
	got, err := RelPerformance(ideal, model)
	if err != nil {
		t.Fatal(err)
	}
	want := 300.0 / 400.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("RelPerformance = %v, want %v", got, want)
	}
	if _, err := RelPerformance(nil, model); err == nil {
		t.Fatal("empty baseline must error")
	}
	if _, err := RelPerformance(ideal, nil); err == nil {
		t.Fatal("empty model must error")
	}
}

func TestTrafficDensity(t *testing.T) {
	// 3 mem ops per iteration, II=2, 2 ports: density = 3/(2*2) = 0.75.
	rs := []LoopRun{{Trips: 10, II: 2, MemOps: 3}}
	got, err := TrafficDensity(rs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("density = %v, want 0.75", got)
	}
	if _, err := TrafficDensity(rs, 0); err == nil {
		t.Fatal("0 ports must error")
	}
	if _, err := TrafficDensity(nil, 2); err == nil {
		t.Fatal("no runs must error")
	}
}

func TestSpilledLoops(t *testing.T) {
	rs := []LoopRun{{Spilled: 0}, {Spilled: 2}, {Spilled: 1}}
	if got := SpilledLoops(rs); got != 2 {
		t.Fatalf("SpilledLoops = %d, want 2", got)
	}
}

func TestPropertyRelPerformanceBounds(t *testing.T) {
	// If every model II >= the corresponding ideal II, performance <= 1.
	f := func(seed uint64) bool {
		base := []LoopRun{
			{Trips: int64(10 + seed%64), II: 1 + int(seed%3), MemOps: 1},
			{Trips: 20, II: 2 + int(seed>>2%4), MemOps: 2},
		}
		model := make([]LoopRun, len(base))
		copy(model, base)
		for i := range model {
			model[i].II += int(seed >> 4 % 5)
		}
		p, err := RelPerformance(base, model)
		if err != nil {
			return false
		}
		return p <= 1.0+1e-12 && p > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDensityInUnitRangeWhenFeasible(t *testing.T) {
	// MemOps per iteration can never exceed II*ports in a valid
	// schedule; densities computed from feasible runs stay in (0, 1].
	f := func(seed uint64) bool {
		ports := 1 + int(seed%3)
		ii := 1 + int(seed>>3%4)
		mem := 1 + int(seed>>5%uint64(ii*ports))
		rs := []LoopRun{{Trips: 5, II: ii, MemOps: mem}}
		d, err := TrafficDensity(rs, ports)
		if err != nil {
			return false
		}
		return d > 0 && d <= 1.0+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
