// Package perf aggregates per-loop scheduling outcomes into the metrics
// the paper's evaluation reports: relative performance (Figure 8) and
// density of memory traffic (Figure 9).
//
// Execution time of a software-pipelined loop is dominated by its steady
// state: cycles = II * trips (the paper weights loops the same way in
// section 5.3). The density of memory traffic is the average fraction of
// the memory-port bandwidth used per cycle.
package perf

import "fmt"

// LoopRun is the outcome of compiling one loop under one register-file
// model.
type LoopRun struct {
	// Name identifies the loop.
	Name string
	// Trips is the loop's profiled iteration count.
	Trips int64
	// II is the achieved initiation interval.
	II int
	// MemOps is the number of memory operations per iteration, including
	// spill code.
	MemOps int
	// Regs is the register requirement under the model (0 for ideal).
	Regs int
	// Spilled is the number of values spilled.
	Spilled int
}

// Cycles returns the steady-state execution cycles of the run.
func (r LoopRun) Cycles() int64 { return int64(r.II) * r.Trips }

// MemAccesses returns the total dynamic memory accesses of the run.
func (r LoopRun) MemAccesses() int64 { return int64(r.MemOps) * r.Trips }

// TotalCycles sums steady-state cycles over a set of runs.
func TotalCycles(runs []LoopRun) int64 {
	var sum int64
	for _, r := range runs {
		sum += r.Cycles()
	}
	return sum
}

// TotalMemAccesses sums dynamic memory accesses over a set of runs.
func TotalMemAccesses(runs []LoopRun) int64 {
	var sum int64
	for _, r := range runs {
		sum += r.MemAccesses()
	}
	return sum
}

// RelPerformance returns the aggregate performance of a model relative
// to a baseline (usually Ideal): baseline cycles / model cycles, so 1.0
// means no loss and smaller is worse.
func RelPerformance(baseline, model []LoopRun) (float64, error) {
	bc, mc := TotalCycles(baseline), TotalCycles(model)
	if bc <= 0 || mc <= 0 {
		return 0, fmt.Errorf("perf: non-positive cycle totals (%d, %d)", bc, mc)
	}
	return float64(bc) / float64(mc), nil
}

// TrafficDensity returns the average fraction of memory-port bandwidth
// used per cycle across the runs: total accesses / (total cycles *
// ports). A value of 1.0 saturates the memory ports.
func TrafficDensity(runs []LoopRun, memPorts int) (float64, error) {
	if memPorts < 1 {
		return 0, fmt.Errorf("perf: memPorts = %d", memPorts)
	}
	cycles := TotalCycles(runs)
	if cycles <= 0 {
		return 0, fmt.Errorf("perf: no cycles")
	}
	return float64(TotalMemAccesses(runs)) / (float64(cycles) * float64(memPorts)), nil
}

// SpilledLoops counts runs that needed spill code.
func SpilledLoops(runs []LoopRun) int {
	n := 0
	for _, r := range runs {
		if r.Spilled > 0 {
			n++
		}
	}
	return n
}
