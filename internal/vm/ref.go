package vm

import (
	"fmt"

	"ncdrf/internal/ddg"
)

// StoreKey identifies one dynamic store: the store node's label and the
// iteration that executed it.
type StoreKey struct {
	Node string
	Iter int
}

// StoreStream is the observable output of a loop execution: the value
// written by every (non-spill) store in every iteration.
type StoreStream map[StoreKey]float64

// RunReference executes the loop sequentially for the given number of
// iterations: iteration by iteration, operations in dependence order,
// loop-carried operands taken from the producing iteration's value (or a
// deterministic initial value when it precedes the loop).
func RunReference(g *ddg.Graph, iters int) (StoreStream, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if iters < 1 {
		return nil, fmt.Errorf("vm: iters = %d", iters)
	}
	order := g.TopoOrder()
	hist := make([][]float64, g.NumNodes())
	for i := range hist {
		hist[i] = make([]float64, iters)
	}
	out := StoreStream{}
	// Spill slots behave as memory shared across iterations; the
	// reference supports them so that spilled graphs can also be run
	// sequentially (used in tests), keyed by slot and iteration.
	spillMem := map[int]map[int]float64{}

	for it := 0; it < iters; it++ {
		for _, id := range order {
			n := g.Node(id)
			args := operandValues(g, n, it, func(from, fromIter int) float64 {
				if fromIter < 0 {
					return initValue(g.Node(from).Label(), fromIter)
				}
				return hist[from][fromIter]
			})
			switch {
			case n.Op == ddg.LOAD && n.SpillSlot >= 0:
				v, err := readSpill(spillMem, g, n, it)
				if err != nil {
					return nil, err
				}
				hist[id][it] = v
			case n.Op == ddg.LOAD:
				hist[id][it] = loadValue(n.Label(), it)
			case n.Op == ddg.STORE && n.SpillSlot >= 0:
				slot := spillMem[n.SpillSlot]
				if slot == nil {
					slot = map[int]float64{}
					spillMem[n.SpillSlot] = slot
				}
				slot[it] = storedValue(n, args)
			case n.Op == ddg.STORE:
				out[StoreKey{Node: n.Label(), Iter: it}] = storedValue(n, args)
			default:
				hist[id][it] = compute(n, args)
			}
		}
	}
	return out, nil
}

// operandValues resolves a node's flow in-edge values in edge order,
// using fetch to obtain the value produced by (from, fromIter).
func operandValues(g *ddg.Graph, n *ddg.Node, iter int, fetch func(from, fromIter int) float64) []float64 {
	var args []float64
	for _, e := range g.InEdges(n.ID) {
		if e.Kind != ddg.Flow {
			continue
		}
		args = append(args, fetch(e.From, iter-e.Distance))
	}
	return args
}

// storedValue is the single value operand of a store, padded if the
// source stored an invariant.
func storedValue(n *ddg.Node, args []float64) float64 {
	if len(args) > 0 {
		return args[0]
	}
	return padValue(n.Label(), 0)
}

// readSpill reads the spill slot value written dist iterations earlier,
// where dist comes from the reload's memory in-edge.
func readSpill(spillMem map[int]map[int]float64, g *ddg.Graph, n *ddg.Node, iter int) (float64, error) {
	dist := 0
	found := false
	var store *ddg.Node
	for _, e := range g.InEdges(n.ID) {
		if e.Kind == ddg.Mem {
			dist = e.Distance
			store = g.Node(e.From)
			found = true
			break
		}
	}
	if !found {
		return 0, fmt.Errorf("vm: reload %s has no memory dependence", n)
	}
	src := iter - dist
	if src < 0 {
		// The paired store has not run yet: the slot holds what the
		// original (unspilled) value would have held before the loop, so
		// spilled and unspilled executions stay bit-identical.
		return initValue(spillProducerLabel(g, store), src), nil
	}
	slot, ok := spillMem[n.SpillSlot]
	if ok {
		if v, ok := slot[src]; ok {
			return v, nil
		}
	}
	return 0, fmt.Errorf("vm: reload %s reads slot %d iteration %d before its store", n, n.SpillSlot, src)
}

// spillProducerLabel resolves the label of the value feeding a spill
// store, falling back to the store's own label.
func spillProducerLabel(g *ddg.Graph, store *ddg.Node) string {
	if store == nil {
		return "spill"
	}
	for _, e := range g.InEdges(store.ID) {
		if e.Kind == ddg.Flow {
			return g.Node(e.From).Label()
		}
	}
	return store.Label()
}
