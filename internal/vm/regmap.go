package vm

import (
	"fmt"

	"ncdrf/internal/core"
	"ncdrf/internal/lifetime"
	"ncdrf/internal/regalloc"
	"ncdrf/internal/sched"
)

// Target locates a value inside a physical register file: the file index,
// the rotating region inside it (base offset and size), and the
// register specifier q the allocator assigned. At iteration i the value
// occupies physical register base + ((q - i) mod size).
type Target struct {
	File int
	Base int
	Size int
	Spec int
}

// physical returns the physical register index for iteration iter.
func (t Target) physical(iter int) int {
	m := (t.Spec - iter) % t.Size
	if m < 0 {
		m += t.Size
	}
	return t.Base + m
}

// RegMap abstracts a register-file organization for the pipelined
// executor: where each value is written and where a consumer reads it.
type RegMap interface {
	// FileSizes returns the size of each physical file.
	FileSizes() []int
	// WriteTargets returns every location the producing node's value is
	// written to (one for unified/local values, one per subfile for
	// globals). Empty for stores.
	WriteTargets(node int) []Target
	// ReadTarget returns the location a consumer in the given cluster
	// reads the producer's value from.
	ReadTarget(consumerCluster, producerNode int) (Target, error)
}

// UnifiedMap implements RegMap for a single rotating file shared by all
// clusters (the paper's unified / consistent-dual model).
type UnifiedMap struct {
	alloc *regalloc.Allocation
}

// NewUnifiedMap allocates the lifetimes into one rotating file.
func NewUnifiedMap(lts []lifetime.Lifetime, ii int) (*UnifiedMap, error) {
	a, err := regalloc.FirstFit(lts, ii)
	if err != nil {
		return nil, err
	}
	return &UnifiedMap{alloc: a}, nil
}

// Registers returns the file size.
func (u *UnifiedMap) Registers() int { return u.alloc.Registers }

// FileSizes implements RegMap.
func (u *UnifiedMap) FileSizes() []int { return []int{u.alloc.Registers} }

// WriteTargets implements RegMap.
func (u *UnifiedMap) WriteTargets(node int) []Target {
	q, ok := u.alloc.Spec[node]
	if !ok {
		return nil
	}
	return []Target{{File: 0, Base: 0, Size: u.alloc.Registers, Spec: q}}
}

// ReadTarget implements RegMap.
func (u *UnifiedMap) ReadTarget(_, producer int) (Target, error) {
	q, ok := u.alloc.Spec[producer]
	if !ok {
		return Target{}, fmt.Errorf("vm: value %d not allocated", producer)
	}
	return Target{File: 0, Base: 0, Size: u.alloc.Registers, Spec: q}, nil
}

// DualMap implements RegMap for the non-consistent dual register file:
// every subfile has a shared global region (same specifiers everywhere)
// and a private local region, each rotating within itself.
type DualMap struct {
	class *core.Classification
	da    *core.DualAllocation
	// files[i] is the physical size of subfile i: globals + that
	// cluster's locals.
	files []int
}

// NewDualMap classifies and allocates the schedule's values onto the
// dual organization.
func NewDualMap(s *sched.Schedule, lts []lifetime.Lifetime) (*DualMap, error) {
	cl := core.Classify(s, lts)
	da, err := core.AllocateDual(cl)
	if err != nil {
		return nil, err
	}
	files := make([]int, cl.Clusters)
	for c := range files {
		files[c] = da.GlobalRegs + da.LocalRegs[c]
	}
	return &DualMap{class: cl, da: da, files: files}, nil
}

// Requirement returns the largest subfile size.
func (d *DualMap) Requirement() int { return d.da.Requirement }

// FileSizes implements RegMap.
func (d *DualMap) FileSizes() []int { return append([]int(nil), d.files...) }

// WriteTargets implements RegMap: globals are broadcast to every
// subfile's global region; locals go to their cluster's local region.
func (d *DualMap) WriteTargets(node int) []Target {
	class, ok := d.class.ByValue[node]
	if !ok {
		return nil
	}
	if class == core.Global {
		q := d.da.Global.Spec[node]
		targets := make([]Target, len(d.files))
		for f := range targets {
			targets[f] = Target{File: f, Base: 0, Size: d.da.GlobalRegs, Spec: q}
		}
		return targets
	}
	c := int(class)
	q := d.da.Local[c].Spec[node]
	return []Target{{File: c, Base: d.da.GlobalRegs, Size: d.da.LocalRegs[c], Spec: q}}
}

// ReadTarget implements RegMap: consumers always read their own
// cluster's subfile. Reading a value local to another cluster is a
// classification bug and is reported as such.
func (d *DualMap) ReadTarget(consumerCluster, producer int) (Target, error) {
	class, ok := d.class.ByValue[producer]
	if !ok {
		return Target{}, fmt.Errorf("vm: value %d not classified", producer)
	}
	if class == core.Global {
		q := d.da.Global.Spec[producer]
		return Target{File: consumerCluster, Base: 0, Size: d.da.GlobalRegs, Spec: q}, nil
	}
	c := int(class)
	if c != consumerCluster {
		return Target{}, fmt.Errorf("vm: cluster %d reads value %d which is local to cluster %d",
			consumerCluster, producer, c)
	}
	q := d.da.Local[c].Spec[producer]
	return Target{File: c, Base: d.da.GlobalRegs, Size: d.da.LocalRegs[c], Spec: q}, nil
}
