package vm

import (
	"strings"
	"testing"

	"ncdrf/internal/lifetime"
	"ncdrf/internal/loops"
	"ncdrf/internal/machine"
	"ncdrf/internal/sched"
)

func TestListingUnified(t *testing.T) {
	g := loops.PaperExample()
	m := machine.Example()
	s, err := sched.Run(g, m, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lts := lifetime.Compute(s)
	u, err := NewUnifiedMap(lts, s.II)
	if err != nil {
		t.Fatal(err)
	}
	out := Listing(s, u)
	for _, want := range []string{
		"loop paper-example: II=1, stages=14",
		"file 0: 42 rotating registers",
		"row 0:",
		"L1", "fadd", "store", "@x", "@y",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("listing missing %q:\n%s", want, out)
		}
	}
	// Unified names use r<q>.
	if !strings.Contains(out, "r") {
		t.Fatalf("no register names:\n%s", out)
	}
}

func TestListingDual(t *testing.T) {
	g := loops.PaperExample()
	m := machine.Example()
	s, err := sched.Run(g, m, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lts := lifetime.Compute(s)
	d, err := NewDualMap(s, lts)
	if err != nil {
		t.Fatal(err)
	}
	out := Listing(s, d)
	// L1 is global before swapping: its destination must be a g
	// register; locals must appear as l<c>.<q>.
	if !strings.Contains(out, "g") {
		t.Fatalf("no global register names:\n%s", out)
	}
	if !strings.Contains(out, "l0.") || !strings.Contains(out, "l1.") {
		t.Fatalf("missing local register names:\n%s", out)
	}
	if !strings.Contains(out, "file 0:") || !strings.Contains(out, "file 1:") {
		t.Fatalf("missing file sizes:\n%s", out)
	}
}

func TestListingLoopCarriedAnnotation(t *testing.T) {
	g, ok := loops.KernelByName("lfk3-inner-product")
	if !ok {
		t.Fatal("missing kernel")
	}
	m := machine.Eval(3)
	s, err := sched.Run(g, m, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lts := lifetime.Compute(s)
	u, err := NewUnifiedMap(lts, s.II)
	if err != nil {
		t.Fatal(err)
	}
	out := Listing(s, u)
	if !strings.Contains(out, "[-1]") {
		t.Fatalf("loop-carried operand not annotated:\n%s", out)
	}
}
