package vm

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"ncdrf/internal/core"
	"ncdrf/internal/ddg"
	"ncdrf/internal/lifetime"
	"ncdrf/internal/lir"
	"ncdrf/internal/loops"
	"ncdrf/internal/machine"
	"ncdrf/internal/sched"
)

func TestDeterministicValues(t *testing.T) {
	if loadValue("L1", 3) != loadValue("L1", 3) {
		t.Fatal("loadValue not deterministic")
	}
	if loadValue("L1", 3) == loadValue("L1", 4) {
		t.Fatal("loadValue ignores iteration")
	}
	if loadValue("L1", 3) == loadValue("L2", 3) {
		t.Fatal("loadValue ignores label")
	}
	for i := 0; i < 50; i++ {
		v := loadValue("x", i)
		if v < 1 || v >= 2 {
			t.Fatalf("loadValue out of [1,2): %v", v)
		}
	}
	if initValue("a", -1) == loadValue("a", -1) {
		t.Fatal("init and load namespaces must differ")
	}
}

func TestComputeSemantics(t *testing.T) {
	g := ddg.New("c", 1)
	add := g.Node(g.AddNode(ddg.FADD, "a"))
	sub := g.Node(g.AddNode(ddg.FSUB, "s"))
	mul := g.Node(g.AddNode(ddg.FMUL, "m"))
	div := g.Node(g.AddNode(ddg.FDIV, "d"))
	conv := g.Node(g.AddNode(ddg.CONV, "c1"))
	if compute(add, []float64{2, 3}) != 5 {
		t.Fatal("fadd")
	}
	if compute(sub, []float64{2, 3}) != -1 {
		t.Fatal("fsub")
	}
	if compute(mul, []float64{2, 3}) != 6 {
		t.Fatal("fmul")
	}
	if compute(div, []float64{3, 2}) != 1.5 {
		t.Fatal("fdiv")
	}
	if compute(conv, []float64{2.9}) != 2 {
		t.Fatal("conv")
	}
	// Missing operands are padded deterministically.
	v1 := compute(add, []float64{2})
	v2 := compute(add, []float64{2})
	if v1 != v2 {
		t.Fatal("pad not deterministic")
	}
}

func TestReferenceSimpleDataflow(t *testing.T) {
	g := lir.MustCompile(`
loop ref trips 4
x1 = load x
y1 = load y
s1 = fadd x1, y1
store out, s1
`)
	stream, err := RunReference(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(stream) != 4 {
		t.Fatalf("stores = %d, want 4", len(stream))
	}
	for it := 0; it < 4; it++ {
		want := loadValue("x1", it) + loadValue("y1", it)
		got := stream[StoreKey{Node: "st0", Iter: it}]
		if !sameValue(want, got) {
			t.Fatalf("iter %d: got %v want %v", it, got, want)
		}
	}
}

func TestReferenceRecurrence(t *testing.T) {
	g := lir.MustCompile(`
loop acc trips 3
x1 = load x
s1 = fadd s1@1, x1
store out, s1
`)
	stream, err := RunReference(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	// s1(0) = init(s1,-1) + x(0); s1(i) = s1(i-1) + x(i).
	s := initValue("s1", -1) + loadValue("x1", 0)
	if !sameValue(stream[StoreKey{"st0", 0}], s) {
		t.Fatal("iteration 0 wrong")
	}
	for it := 1; it < 3; it++ {
		s += loadValue("x1", it)
		if !sameValue(stream[StoreKey{"st0", it}], s) {
			t.Fatalf("iteration %d wrong", it)
		}
	}
}

func pipelineFor(t *testing.T, g *ddg.Graph, m *machine.Config, dual bool, iters int) (StoreStream, error) {
	t.Helper()
	s, err := sched.Run(g, m, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lts := lifetime.Compute(s)
	var rm RegMap
	if dual {
		d, err := NewDualMap(s, lts)
		if err != nil {
			t.Fatal(err)
		}
		rm = d
	} else {
		u, err := NewUnifiedMap(lts, s.II)
		if err != nil {
			t.Fatal(err)
		}
		rm = u
	}
	return RunPipelined(s, rm, iters)
}

func TestPipelinedMatchesReferencePaperExample(t *testing.T) {
	g := loops.PaperExample()
	m := machine.Example()
	want, err := RunReference(g, 25)
	if err != nil {
		t.Fatal(err)
	}
	for _, dual := range []bool{false, true} {
		got, err := pipelineFor(t, g, m, dual, 25)
		if err != nil {
			t.Fatalf("dual=%v: %v", dual, err)
		}
		if err := CompareStreams(want, got); err != nil {
			t.Fatalf("dual=%v: %v", dual, err)
		}
	}
}

func TestVerifyModelAllKernels(t *testing.T) {
	// End-to-end validation: every curated kernel, both latencies, all
	// register-file models, unlimited registers.
	for _, lat := range []int{3, 6} {
		m := machine.Eval(lat)
		for _, g := range loops.Kernels() {
			for _, model := range []core.Model{core.Unified, core.Partitioned, core.Swapped} {
				if err := VerifyModel(g, m, model, 0, 12); err != nil {
					t.Fatalf("%s lat=%d %v: %v", g.LoopName, lat, model, err)
				}
			}
		}
	}
}

func TestVerifyModelWithSpilling(t *testing.T) {
	// Tight register files force spilling; execution must stay correct.
	cases := []struct {
		kernel string
		regs   int
	}{
		{"lfk7-eos", 24},
		{"lfk9-integrate", 16},
		{"stencil5", 12},
		{"big-expression", 16},
	}
	m := machine.Eval(6)
	for _, tc := range cases {
		g, ok := loops.KernelByName(tc.kernel)
		if !ok {
			t.Fatalf("missing kernel %s", tc.kernel)
		}
		for _, model := range []core.Model{core.Unified, core.Partitioned, core.Swapped} {
			if err := VerifyModel(g, m, model, tc.regs, 15); err != nil {
				t.Fatalf("%s@%d %v: %v", tc.kernel, tc.regs, model, err)
			}
		}
	}
}

func TestVerifyPaperExampleAt32And23(t *testing.T) {
	g := loops.PaperExample()
	m := machine.Example()
	// Unified at 32 spills; swapped at 23 fits exactly. Both must run
	// correctly.
	if err := VerifyModel(g, m, core.Unified, 32, 20); err != nil {
		t.Fatal(err)
	}
	if err := VerifyModel(g, m, core.Swapped, 23, 20); err != nil {
		t.Fatal(err)
	}
}

func TestClobberDetection(t *testing.T) {
	// Sabotage an allocation: give two overlapping values the same
	// specifier. The shadow check must catch the clobber.
	g := loops.PaperExample()
	m := machine.Example()
	s, err := sched.Run(g, m, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lts := lifetime.Compute(s)
	u, err := NewUnifiedMap(lts, s.II)
	if err != nil {
		t.Fatal(err)
	}
	l1 := g.NodeByName("L1").ID
	l2 := g.NodeByName("L2").ID
	u.alloc.Spec[l2] = u.alloc.Spec[l1] // L1 and L2 overlap in time
	_, err = RunPipelined(s, u, 10)
	if err == nil {
		t.Fatal("clobbered allocation went undetected")
	}
	if !strings.Contains(err.Error(), "clobbered") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestCrossClusterLocalReadDetection(t *testing.T) {
	// Sabotage a classification: mark a value consumed by cluster 1 as
	// local to cluster 0. The dual map must refuse the read.
	g := loops.PaperExample()
	m := machine.Example()
	s, err := sched.Run(g, m, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lts := lifetime.Compute(s)
	d, err := NewDualMap(s, lts)
	if err != nil {
		t.Fatal(err)
	}
	// A4 is consumed by M5 on cluster 1; force it local to cluster 0.
	a4 := g.NodeByName("A4").ID
	d.class.ByValue[a4] = core.Class(0)
	d.da.Local[0].Spec[a4] = 0
	_, err = RunPipelined(s, d, 5)
	if err == nil {
		t.Fatal("cross-cluster local read went undetected")
	}
}

func TestCompareStreamsErrors(t *testing.T) {
	a := StoreStream{{"s", 0}: 1.0}
	b := StoreStream{{"s", 0}: 2.0}
	if err := CompareStreams(a, b); err == nil {
		t.Fatal("value mismatch undetected")
	}
	c := StoreStream{{"t", 0}: 1.0}
	if err := CompareStreams(a, c); err == nil {
		t.Fatal("key mismatch undetected")
	}
	d := StoreStream{}
	if err := CompareStreams(a, d); err == nil {
		t.Fatal("size mismatch undetected")
	}
	if err := CompareStreams(a, StoreStream{{"s", 0}: 1.0}); err != nil {
		t.Fatal(err)
	}
}

func TestRunReferenceRejectsBadInput(t *testing.T) {
	g := loops.PaperExample()
	if _, err := RunReference(g, 0); err == nil {
		t.Fatal("iters=0 must fail")
	}
	if _, err := RunReference(ddg.New("empty", 1), 3); err == nil {
		t.Fatal("empty graph must fail")
	}
}

// Property: for random loops, the pipelined execution under every model
// is bit-identical to the sequential reference — the repository's
// strongest invariant.
func TestPropertyPipelineMatchesReference(t *testing.T) {
	ops := []ddg.OpCode{ddg.FADD, ddg.FSUB, ddg.FMUL, ddg.FDIV, ddg.LOAD, ddg.CONV, ddg.STORE}
	build := func(r *rand.Rand) *ddg.Graph {
		g := ddg.New("rand", 1)
		n := 4 + r.Intn(12)
		for i := 0; i < n; i++ {
			g.AddNode(ops[r.Intn(len(ops))], "")
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Intn(3) == 0 && g.Node(i).Op.ProducesValue() {
					g.Flow(i, j)
				}
			}
		}
		if r.Intn(3) == 0 {
			// A loop-carried self-recurrence on some arithmetic node.
			for _, nd := range g.Nodes() {
				if nd.Op != ddg.LOAD && nd.Op != ddg.STORE {
					g.FlowD(nd.ID, nd.ID, 1+r.Intn(2))
					break
				}
			}
		}
		return g
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := build(r)
		m := machine.Eval([]int{3, 6}[r.Intn(2)])
		model := []core.Model{core.Unified, core.Partitioned, core.Swapped}[r.Intn(3)]
		regs := 0
		if r.Intn(2) == 0 {
			regs = 12 + r.Intn(30) // tight enough to spill sometimes
		}
		if err := VerifyModel(g, m, model, regs, 8); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
