package vm

import (
	"context"
	"fmt"
	"sort"

	"ncdrf/internal/core"
	"ncdrf/internal/ddg"
	"ncdrf/internal/machine"
	"ncdrf/internal/pipeline"
	"ncdrf/internal/sched"
	"ncdrf/internal/spill"
)

// VerifyModel runs the complete pipeline for a loop under a register-file
// model — modulo scheduling, classification, allocation, spilling at the
// given file size (0 = unlimited) — then executes the result on the
// simulated rotating-register hardware and checks it against the
// sequential reference execution, bit for bit, over iters iterations.
//
// A nil return proves, for this loop, that the schedule respects every
// dependence, that no allocated register is ever clobbered while live,
// that every consumer finds its operand in its own cluster's subfile
// (the non-consistent-dual correctness condition), and that spill code
// preserves semantics.
func VerifyModel(g *ddg.Graph, m *machine.Config, model core.Model, regs, iters int) error {
	//lint:allow ctxflow -- VerifyModel is the documented ctx-free wrapper; VerifyModelWith is the threaded form
	return VerifyModelWith(context.Background(), nil, g, m, model, regs, iters)
}

// compiler is the optional stage-cache interface of a Scheduler: a
// sweep.Engine compiles through its stage-granular cache, so verifying
// several models of one loop shares one base artifact and memoizes every
// per-model evaluation.
type compiler interface {
	Compile(ctx context.Context, g *ddg.Graph, m *machine.Config, model core.Model, regs int) (*pipeline.ModelResult, error)
}

// VerifyModelWith is VerifyModel with every pipeline stage routed through
// sr (e.g. a shared schedule cache); a nil sr computes stages directly.
// ctx cancels the compilation between pipeline stages and spill rounds.
func VerifyModelWith(ctx context.Context, sr spill.Scheduler, g *ddg.Graph, m *machine.Config, model core.Model, regs, iters int) error {
	want, err := RunReference(g, iters)
	if err != nil {
		return fmt.Errorf("vm: reference: %w", err)
	}
	var res *pipeline.ModelResult
	if cp, ok := sr.(compiler); ok {
		res, err = cp.Compile(ctx, g, m, model, regs)
	} else {
		var b *pipeline.Base
		if b, err = pipeline.NewBaseWith(sr, g, m, sched.Options{}); err == nil {
			res, err = pipeline.Evaluate(ctx, sr, b, model, regs)
		}
	}
	if err != nil {
		return err
	}
	var rm RegMap
	switch model {
	case core.Ideal, core.Unified:
		u, err := NewUnifiedMap(res.Lifetimes, res.Sched.II)
		if err != nil {
			return err
		}
		rm = u
	case core.Partitioned, core.Swapped:
		d, err := NewDualMap(res.Sched, res.Lifetimes)
		if err != nil {
			return err
		}
		rm = d
	default:
		return fmt.Errorf("vm: unknown model %v", model)
	}
	got, err := RunPipelined(res.Sched, rm, iters)
	if err != nil {
		return fmt.Errorf("vm: pipelined execution of %s under %v: %w", g.LoopName, model, err)
	}
	return CompareStreams(want, got)
}

// CompareStreams checks that two store streams are identical: same
// dynamic stores, bit-identical values.
func CompareStreams(want, got StoreStream) error {
	if len(want) != len(got) {
		return fmt.Errorf("vm: store counts differ: reference %d, pipelined %d", len(want), len(got))
	}
	keys := make([]StoreKey, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Node != keys[j].Node {
			return keys[i].Node < keys[j].Node
		}
		return keys[i].Iter < keys[j].Iter
	})
	for _, k := range keys {
		gv, ok := got[k]
		if !ok {
			return fmt.Errorf("vm: pipelined execution missing store %s iteration %d", k.Node, k.Iter)
		}
		if !sameValue(want[k], gv) {
			return fmt.Errorf("vm: store %s iteration %d differs: reference %v, pipelined %v",
				k.Node, k.Iter, want[k], gv)
		}
	}
	return nil
}
