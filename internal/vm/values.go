// Package vm executes loops functionally, two ways: a sequential
// reference interpreter over the dependence graph, and a cycle-stepped
// pipelined executor that runs the modulo schedule on simulated rotating
// register files (unified or non-consistent dual, the Cydra-5-style
// hardware the paper assumes). Comparing the two store streams validates
// the whole pipeline end to end: dependences, register allocation
// (no wand ever clobbered), value classification (every consumer finds
// its operand in its own cluster's subfile), operation swapping and spill
// code.
package vm

import (
	"hash/fnv"
	"math"

	"ncdrf/internal/ddg"
)

// loadValue returns the deterministic synthetic value returned by a
// (non-spill) load in a given iteration: uniformly spread in [1, 2) so
// divisions stay finite and products stay scaled.
func loadValue(label string, iter int) float64 {
	return unitFloat(label, "load", iter)
}

// initValue is the pre-loop value of a loop-carried operand read before
// any producing iteration has run (iteration index < 0).
func initValue(label string, iter int) float64 {
	return unitFloat(label, "init", iter)
}

// padValue is the constant standing in for an invariant or literal
// operand of an arithmetic node (the DDG does not carry those).
func padValue(label string, k int) float64 {
	return unitFloat(label, "pad", k)
}

// unitFloat hashes its inputs into [1, 2).
func unitFloat(label, kind string, n int) float64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(kind))
	var buf [8]byte
	v := uint64(int64(n))
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	bits := h.Sum64() >> 11 // 53 significant bits
	return 1 + float64(bits)/float64(1<<53)
}

// compute evaluates one arithmetic operation. args are the values of the
// node's flow in-edges in edge order; missing operands (invariants and
// literals in the source) are padded deterministically. Both executors
// use exactly this function, so any divergence in their outputs comes
// from the machine model, not from semantics.
func compute(n *ddg.Node, args []float64) float64 {
	arg := func(k int) float64 {
		if k < len(args) {
			return args[k]
		}
		return padValue(n.Label(), k)
	}
	switch n.Op {
	case ddg.FADD:
		return arg(0) + arg(1)
	case ddg.FSUB:
		return arg(0) - arg(1)
	case ddg.FMUL:
		return arg(0) * arg(1)
	case ddg.FDIV:
		return arg(0) / arg(1)
	case ddg.CONV:
		return math.Trunc(arg(0))
	default:
		panic("vm: compute on non-arithmetic node " + n.String())
	}
}

// sameValue compares two doubles bit-exactly, treating identical NaN
// patterns as equal. Both executors perform the same operations in the
// same order, so bit equality is the right notion.
func sameValue(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// The exported helpers below let alternative machine models (package
// codegen's predicated-kernel executor) share the exact value semantics,
// so their outputs stay bit-comparable with this package's executors.

// LoadValue is the synthetic value a load returns in an iteration.
func LoadValue(label string, iter int) float64 { return loadValue(label, iter) }

// InitValue is the pre-loop value of a loop-carried operand.
func InitValue(label string, iter int) float64 { return initValue(label, iter) }

// PadValue is the constant standing in for an invariant operand.
func PadValue(label string, k int) float64 { return padValue(label, k) }

// ComputeOp evaluates an arithmetic node on its operand values.
func ComputeOp(n *ddg.Node, args []float64) float64 { return compute(n, args) }
