package vm

import (
	"fmt"
	"sort"

	"ncdrf/internal/ddg"
	"ncdrf/internal/sched"
)

// regCell is one physical register with a shadow tag identifying the
// value instance it currently holds, for precise clobber diagnostics.
type regCell struct {
	val      float64
	producer int
	iter     int
	valid    bool
}

// pendingWrite is a register write in flight (issues at the producer's
// issue cycle, lands at completion).
type pendingWrite struct {
	target Target
	cell   regCell
}

// RunPipelined executes iters overlapped iterations of the modulo
// schedule on simulated rotating register files described by rm,
// returning the (non-spill) store stream. It fails on any register
// clobber: if a consumer finds a different value instance than the
// dataflow expects, the allocation or classification is broken.
func RunPipelined(s *sched.Schedule, rm RegMap, iters int) (StoreStream, error) {
	if iters < 1 {
		return nil, fmt.Errorf("vm: iters = %d", iters)
	}
	if err := s.Verify(); err != nil {
		return nil, fmt.Errorf("vm: invalid schedule: %w", err)
	}
	g := s.Graph

	files := make([][]regCell, 0, len(rm.FileSizes()))
	for _, size := range rm.FileSizes() {
		files = append(files, make([]regCell, size))
	}

	// Event lists: issues and write completions bucketed by cycle.
	type issue struct {
		node, iter int
	}
	issuesAt := map[int][]issue{}
	maxTime := 0
	for id := range g.Nodes() {
		for it := 0; it < iters; it++ {
			t := s.Start[id] + it*s.II
			issuesAt[t] = append(issuesAt[t], issue{node: id, iter: it})
			end := t + s.Mach.Latency(g.Node(id).Op.FUKind())
			if end > maxTime {
				maxTime = end
			}
		}
	}
	writesAt := map[int][]pendingWrite{}

	out := StoreStream{}
	spillMem := map[int]map[int]float64{}

	readOperand := func(n *ddg.Node, e ddg.Edge, iter int) (float64, error) {
		fromIter := iter - e.Distance
		if fromIter < 0 {
			return initValue(g.Node(e.From).Label(), fromIter), nil
		}
		tgt, err := rm.ReadTarget(s.Cluster(n.ID), e.From)
		if err != nil {
			return 0, err
		}
		cell := files[tgt.File][tgt.physical(fromIter)]
		if !cell.valid || cell.producer != e.From || cell.iter != fromIter {
			return 0, fmt.Errorf(
				"vm: clobbered register: %s iteration %d expected value of %s iteration %d in file %d reg %d, found %s",
				n, iter, g.Node(e.From), fromIter, tgt.File, tgt.physical(fromIter), describeCell(g, cell))
		}
		return cell.val, nil
	}

	for t := 0; t <= maxTime; t++ {
		// Writes land before same-cycle reads: a dependence scheduled at
		// exactly producer-completion sees the fresh value (register
		// file write-before-read, standard in VLIW datapaths).
		for _, w := range writesAt[t] {
			files[w.target.File][w.target.physical(w.cell.iter)] = w.cell
		}
		delete(writesAt, t)

		issued := issuesAt[t]
		// Deterministic processing order inside a cycle.
		sort.Slice(issued, func(i, j int) bool {
			if issued[i].node != issued[j].node {
				return issued[i].node < issued[j].node
			}
			return issued[i].iter < issued[j].iter
		})
		for _, is := range issued {
			n := g.Node(is.node)
			var args []float64
			for _, e := range g.InEdges(n.ID) {
				if e.Kind != ddg.Flow {
					continue
				}
				v, err := readOperand(n, e, is.iter)
				if err != nil {
					return nil, err
				}
				args = append(args, v)
			}
			var result float64
			switch {
			case n.Op == ddg.LOAD && n.SpillSlot >= 0:
				v, err := readSpill(spillMem, g, n, is.iter)
				if err != nil {
					return nil, err
				}
				result = v
			case n.Op == ddg.LOAD:
				result = loadValue(n.Label(), is.iter)
			case n.Op == ddg.STORE && n.SpillSlot >= 0:
				slot := spillMem[n.SpillSlot]
				if slot == nil {
					slot = map[int]float64{}
					spillMem[n.SpillSlot] = slot
				}
				slot[is.iter] = storedValue(n, args)
				continue
			case n.Op == ddg.STORE:
				out[StoreKey{Node: n.Label(), Iter: is.iter}] = storedValue(n, args)
				continue
			default:
				result = compute(n, args)
			}
			// Schedule the register write at completion.
			done := t + s.Mach.Latency(n.Op.FUKind())
			for _, tgt := range rm.WriteTargets(n.ID) {
				writesAt[done] = append(writesAt[done], pendingWrite{
					target: tgt,
					cell:   regCell{val: result, producer: n.ID, iter: is.iter, valid: true},
				})
			}
		}
	}
	return out, nil
}

func describeCell(g *ddg.Graph, c regCell) string {
	if !c.valid {
		return "uninitialized register"
	}
	return fmt.Sprintf("%s iteration %d", g.Node(c.producer), c.iter)
}
