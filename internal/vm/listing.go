package vm

import (
	"fmt"
	"sort"
	"strings"

	"ncdrf/internal/ddg"
	"ncdrf/internal/sched"
)

// Listing renders an assembly-like kernel listing of a scheduled,
// allocated loop: one block per kernel row, one line per operation with
// its stage, functional unit, destination register specifier and source
// specifiers (with iteration-distance annotations), using the rotating
// register files described by rm.
//
// Register naming: r<q> in a unified file, g<q> in the replicated global
// region, l<c>.<q> in cluster c's local region.
func Listing(s *sched.Schedule, rm RegMap) string {
	g := s.Graph
	var b strings.Builder
	fmt.Fprintf(&b, "loop %s: II=%d, stages=%d, %d cluster(s)\n",
		g.LoopName, s.II, s.Stages(), s.Mach.NumClusters())
	sizes := rm.FileSizes()
	for f, size := range sizes {
		fmt.Fprintf(&b, "file %d: %d rotating registers\n", f, size)
	}

	type line struct {
		fu, id int
	}
	rows := make([][]line, s.II)
	for id := range g.Nodes() {
		r := s.Slot(id)
		rows[r] = append(rows[r], line{fu: s.FU[id], id: id})
	}
	for r, ops := range rows {
		fmt.Fprintf(&b, "row %d:\n", r)
		sort.Slice(ops, func(i, j int) bool { return ops[i].fu < ops[j].fu })
		for _, op := range ops {
			n := g.Node(op.id)
			unit := s.Mach.Unit(op.fu)
			dest := destName(rm, sizes, op.id)
			fmt.Fprintf(&b, "  c%d.%-3s [stage %2d] %-10s %-6s %-8s %s\n",
				unit.Cluster, unit.Kind, s.Stage(op.id), n.Label(), n.Op, dest,
				sourceList(s, rm, sizes, n))
		}
	}
	return b.String()
}

// destName renders the destination specifier(s) of a value.
func destName(rm RegMap, sizes []int, node int) string {
	targets := rm.WriteTargets(node)
	if len(targets) == 0 {
		return "-"
	}
	// Global values are written everywhere with the same specifier; one
	// name suffices.
	return regName(targets[0], sizes)
}

// sourceList renders the operand specifiers of a node in edge order.
func sourceList(s *sched.Schedule, rm RegMap, sizes []int, n *ddg.Node) string {
	var parts []string
	for _, e := range s.Graph.InEdges(n.ID) {
		if e.Kind != ddg.Flow {
			continue
		}
		tgt, err := rm.ReadTarget(s.Cluster(n.ID), e.From)
		name := "??"
		if err == nil {
			name = regName(tgt, sizes)
		}
		if e.Distance > 0 {
			name = fmt.Sprintf("%s[-%d]", name, e.Distance)
		}
		parts = append(parts, name)
	}
	if n.Sym != "" {
		parts = append(parts, "@"+n.Sym)
	}
	if len(parts) == 0 {
		return ""
	}
	return strings.Join(parts, ", ")
}

// regName names a register target.
func regName(t Target, sizes []int) string {
	if len(sizes) == 1 {
		return fmt.Sprintf("r%d", t.Spec)
	}
	if t.Base == 0 {
		return fmt.Sprintf("g%d", t.Spec)
	}
	return fmt.Sprintf("l%d.%d", t.File, t.Spec)
}
