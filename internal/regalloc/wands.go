// Package regalloc allocates loop-variant values to rotating register
// files using the exact "wand" model of Rau, Lee, Tirumalai and
// Schlansker (PLDI'92), with the Wands Only strategy and First Fit
// ordering chosen by the paper (section 2).
//
// Model. With R rotating registers and initiation interval II, a value
// allocated to specifier q is, for iteration i, held in physical register
// (q - i) mod R. Unrolling time in the rotating frame, each physical
// register sees the value occupy the arc [start + q*II, end + q*II)
// modulo the circle of circumference R*II. Two values collide exactly
// when their arcs overlap on that circle, independent of the physical
// register, so allocation reduces to placing one arc per value with the
// free parameter q in {0..R-1}.
//
// The placement engine represents the circle as an occupancy bitmap
// (fit.go); reference.go keeps the original pairwise-arc implementation
// as the executable specification the bitmap core is differentially
// tested against.
package regalloc

import (
	"fmt"
	"slices"

	"ncdrf/internal/lifetime"
)

// Allocation is a successful rotating-file assignment.
type Allocation struct {
	// Registers is the number of rotating registers used.
	Registers int
	// II is the initiation interval the allocation was computed for.
	II int
	// Spec maps each allocated value (by producing node ID) to its
	// register specifier q.
	Spec map[int]int
}

// FirstFit allocates the lifetimes into the smallest rotating file the
// First Fit heuristic can manage, searching the file size upward from the
// average-live lower bound. An error is returned only for invalid input
// (non-positive II or a non-positive lifetime).
func FirstFit(lts []lifetime.Lifetime, ii int) (*Allocation, error) {
	return allocate(lts, ii, StrategyFirstFit)
}

// allocate is the shared driver behind FirstFit and Allocate: validate,
// sort the placement order once, then search the file size upward from
// the exact lower bound, reusing one pooled fitState for every size
// tried. The specifier map is built only for the successful size.
func allocate(lts []lifetime.Lifetime, ii int, strat Strategy) (*Allocation, error) {
	if ii < 1 {
		return nil, fmt.Errorf("regalloc: II = %d", ii)
	}
	for _, l := range lts {
		if l.Len() <= 0 {
			return nil, fmt.Errorf("regalloc: value %d has non-positive lifetime [%d,%d)", l.Node, l.Start, l.End)
		}
	}
	if len(lts) == 0 {
		return &Allocation{Registers: 0, II: ii, Spec: map[int]int{}}, nil
	}
	low := lifetime.AvgLiveBound(lts, ii)
	if ml := lifetime.MaxLive(lts, ii); ml > low {
		low = ml
	}
	st := fitStates.Get().(*fitState)
	st.prepare(lts, strat)
	for r := low; ; r++ {
		if st.tryFit(ii, r, strat) {
			spec := make(map[int]int, len(st.order))
			for i := range st.order {
				spec[st.order[i].Node] = int(st.qs[i])
			}
			fitStates.Put(st)
			return &Allocation{Registers: r, II: ii, Spec: spec}, nil
		}
	}
}

// FitsIn reports whether First Fit succeeds with at most r registers.
// This is the frontier probe path: no specifier map is materialized,
// only the placement feasibility is computed.
func FitsIn(lts []lifetime.Lifetime, ii, r int) bool {
	if len(lts) == 0 {
		return true
	}
	if r < lifetime.AvgLiveBound(lts, ii) {
		return false
	}
	st := fitStates.Get().(*fitState)
	st.prepare(lts, StrategyFirstFit)
	ok := st.tryFit(ii, r, StrategyFirstFit)
	fitStates.Put(st)
	return ok
}

// Validate checks that an allocation is conflict-free for the given
// lifetimes: all arcs pairwise disjoint on the circle of circumference
// Registers*II. The check is a sweep line over the sorted arc endpoints
// (each arc contributes at most two linear segments after unwrapping),
// O(n log n) instead of the reference's O(n^2) pairwise comparison
// (equivalence pinned by fit_diff_test.go).
func (a *Allocation) Validate(lts []lifetime.Lifetime) error {
	if a.Registers == 0 {
		if len(lts) != 0 {
			return fmt.Errorf("regalloc: empty allocation for %d values", len(lts))
		}
		return nil
	}
	c := a.Registers * a.II
	type seg struct{ start, end, idx int }
	segs := make([]seg, 0, 2*len(lts))
	for i, l := range lts {
		q, ok := a.Spec[l.Node]
		if !ok {
			return fmt.Errorf("regalloc: value %d not allocated", l.Node)
		}
		if q < 0 || q >= a.Registers {
			return fmt.Errorf("regalloc: value %d has specifier %d outside [0,%d)", l.Node, q, a.Registers)
		}
		if l.Len() > c {
			return fmt.Errorf("regalloc: value %d lifetime %d exceeds circle %d", l.Node, l.Len(), c)
		}
		length := l.Len()
		if length < 1 {
			continue // an empty arc cannot collide
		}
		s := mod(l.Start+q*a.II, c)
		if s+length <= c {
			segs = append(segs, seg{s, s + length, i})
		} else {
			segs = append(segs, seg{s, c, i}, seg{0, s + length - c, i})
		}
	}
	slices.SortFunc(segs, func(x, y seg) int {
		if x.start != y.start {
			return x.start - y.start
		}
		if x.end != y.end {
			return x.end - y.end
		}
		return x.idx - y.idx
	})
	maxEnd, maxIdx := -1, -1
	for _, sg := range segs {
		if sg.start < maxEnd && sg.idx != maxIdx {
			i, j := maxIdx, sg.idx
			if i > j {
				i, j = j, i
			}
			return fmt.Errorf("regalloc: values %d and %d collide", lts[i].Node, lts[j].Node)
		}
		if sg.end > maxEnd {
			maxEnd, maxIdx = sg.end, sg.idx
		}
	}
	return nil
}
