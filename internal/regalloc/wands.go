// Package regalloc allocates loop-variant values to rotating register
// files using the exact "wand" model of Rau, Lee, Tirumalai and
// Schlansker (PLDI'92), with the Wands Only strategy and First Fit
// ordering chosen by the paper (section 2).
//
// Model. With R rotating registers and initiation interval II, a value
// allocated to specifier q is, for iteration i, held in physical register
// (q - i) mod R. Unrolling time in the rotating frame, each physical
// register sees the value occupy the arc [start + q*II, end + q*II)
// modulo the circle of circumference R*II. Two values collide exactly
// when their arcs overlap on that circle, independent of the physical
// register, so allocation reduces to placing one arc per value with the
// free parameter q in {0..R-1}.
package regalloc

import (
	"fmt"
	"sort"

	"ncdrf/internal/lifetime"
)

// Allocation is a successful rotating-file assignment.
type Allocation struct {
	// Registers is the number of rotating registers used.
	Registers int
	// II is the initiation interval the allocation was computed for.
	II int
	// Spec maps each allocated value (by producing node ID) to its
	// register specifier q.
	Spec map[int]int
}

// arc is a placed interval on the allocation circle.
type arc struct {
	start, end int // end may exceed the circumference; interpreted mod C
}

// overlaps reports whether two arcs intersect on a circle of
// circumference c. Arcs are half-open [start, end).
func (a arc) overlaps(b arc, c int) bool {
	// Compare every pair of translates within one period.
	as, ae := mod(a.start, c), a.end-a.start
	bs, be := mod(b.start, c), b.end-b.start
	// a occupies [as, as+ae), b occupies [bs, bs+be) on the line after
	// normalizing; wrapping handled by also checking the +c translate.
	return segOverlap(as, as+ae, bs, bs+be) ||
		segOverlap(as, as+ae, bs+c, bs+c+be) ||
		segOverlap(as+c, as+c+ae, bs, bs+be)
}

func segOverlap(a0, a1, b0, b1 int) bool { return a0 < b1 && b0 < a1 }

// FirstFit allocates the lifetimes into the smallest rotating file the
// First Fit heuristic can manage, searching the file size upward from the
// average-live lower bound. An error is returned only for invalid input
// (non-positive II or a non-positive lifetime).
func FirstFit(lts []lifetime.Lifetime, ii int) (*Allocation, error) {
	if ii < 1 {
		return nil, fmt.Errorf("regalloc: II = %d", ii)
	}
	for _, l := range lts {
		if l.Len() <= 0 {
			return nil, fmt.Errorf("regalloc: value %d has non-positive lifetime [%d,%d)", l.Node, l.Start, l.End)
		}
	}
	if len(lts) == 0 {
		return &Allocation{Registers: 0, II: ii, Spec: map[int]int{}}, nil
	}
	low := lifetime.AvgLiveBound(lts, ii)
	if ml := lifetime.MaxLive(lts, ii); ml > low {
		low = ml
	}
	for r := low; ; r++ {
		if spec, ok := tryFit(lts, ii, r); ok {
			return &Allocation{Registers: r, II: ii, Spec: spec}, nil
		}
	}
}

// FitsIn reports whether First Fit succeeds with at most r registers.
func FitsIn(lts []lifetime.Lifetime, ii, r int) bool {
	if len(lts) == 0 {
		return true
	}
	if r < lifetime.AvgLiveBound(lts, ii) {
		return false
	}
	_, ok := tryFit(lts, ii, r)
	return ok
}

// tryFit attempts First Fit placement with exactly r registers: values in
// increasing start-time order, each given the smallest specifier q whose
// arc avoids all previously placed arcs.
func tryFit(lts []lifetime.Lifetime, ii, r int) (map[int]int, bool) {
	c := r * ii
	order := append([]lifetime.Lifetime(nil), lts...)
	sort.Slice(order, func(i, j int) bool {
		if order[i].Start != order[j].Start {
			return order[i].Start < order[j].Start
		}
		if order[i].End != order[j].End {
			return order[i].End > order[j].End // longer lifetime first
		}
		return order[i].Node < order[j].Node
	})
	var placed []arc
	spec := make(map[int]int, len(order))
	for _, l := range order {
		if l.Len() > c {
			return nil, false // a single wand cannot exceed the circle
		}
		found := false
		for q := 0; q < r; q++ {
			cand := arc{start: l.Start + q*ii, end: l.End + q*ii}
			ok := true
			for _, p := range placed {
				if cand.overlaps(p, c) {
					ok = false
					break
				}
			}
			if ok {
				placed = append(placed, cand)
				spec[l.Node] = q
				found = true
				break
			}
		}
		if !found {
			return nil, false
		}
	}
	return spec, true
}

// Validate checks that an allocation is conflict-free for the given
// lifetimes: all arcs pairwise disjoint on the circle of circumference
// Registers*II.
func (a *Allocation) Validate(lts []lifetime.Lifetime) error {
	if a.Registers == 0 {
		if len(lts) != 0 {
			return fmt.Errorf("regalloc: empty allocation for %d values", len(lts))
		}
		return nil
	}
	c := a.Registers * a.II
	arcs := make([]arc, 0, len(lts))
	for _, l := range lts {
		q, ok := a.Spec[l.Node]
		if !ok {
			return fmt.Errorf("regalloc: value %d not allocated", l.Node)
		}
		if q < 0 || q >= a.Registers {
			return fmt.Errorf("regalloc: value %d has specifier %d outside [0,%d)", l.Node, q, a.Registers)
		}
		if l.Len() > c {
			return fmt.Errorf("regalloc: value %d lifetime %d exceeds circle %d", l.Node, l.Len(), c)
		}
		arcs = append(arcs, arc{start: l.Start + q*a.II, end: l.End + q*a.II})
	}
	for i := 0; i < len(arcs); i++ {
		for j := i + 1; j < len(arcs); j++ {
			if arcs[i].overlaps(arcs[j], c) {
				return fmt.Errorf("regalloc: values %d and %d collide", lts[i].Node, lts[j].Node)
			}
		}
	}
	return nil
}

func mod(a, m int) int {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}
