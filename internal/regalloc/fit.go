package regalloc

import (
	"math/bits"
	"slices"
	"sync"

	"ncdrf/internal/lifetime"
)

// The bitset-circle fit core. The wand model reduces allocation to
// placing one arc per value on a circle of circumference C = R*II; this
// file represents that circle as a []uint64 occupancy bitmap, so testing
// a specifier q is a masked scan of the candidate's C-modular interval
// against the bitmap instead of pairwise arc-overlap checks against
// everything placed so far. The reference implementation this replaces
// (reference.go) is O(values x R x placed) with three segment
// comparisons per placed arc; the bitmap test is O(len/64) words per
// probe, and a failed probe yields an exact jump over every later
// specifier whose interval provably covers the same occupied bit.
//
// Output is bit-for-bit identical to the reference: placement order,
// first-feasible / best-gap specifier choice and the upward register
// search are unchanged, only the conflict test's representation differs
// (pinned corpus-wide by fit_diff_test.go).

// fitState is the per-call arena: the sorted placement order, the dense
// specifier results, the occupancy bitmap and (best fit only) the
// arc-end bitmap. States are pooled and reused across calls; every
// buffer only grows. Ownership rule: a state belongs to exactly one
// allocator call between Get and Put, and nothing loaned from the pool
// escapes — the returned Allocation copies the specifiers into a fresh
// map before the state goes back.
type fitState struct {
	order []lifetime.Lifetime // placement order, sorted once per call
	qs    []int32             // chosen specifier per order index
	occ   []uint64            // circle occupancy, C = R*II bits
	ends  []uint64            // arc-end positions mod C (best fit's gap scan)
}

var fitStates = sync.Pool{New: func() any { return new(fitState) }}

// prepare copies the lifetimes and sorts the placement order for the
// strategy. The order depends only on the inputs and the strategy —
// never on R — which is what lets one sort serve every register size
// the upward search tries.
func (st *fitState) prepare(lts []lifetime.Lifetime, strat Strategy) {
	st.order = append(st.order[:0], lts...)
	if strat == StrategyEndFit {
		slices.SortFunc(st.order, func(a, b lifetime.Lifetime) int {
			if a.End != b.End {
				return a.End - b.End
			}
			if a.Start != b.Start {
				return a.Start - b.Start
			}
			return a.Node - b.Node
		})
	} else {
		slices.SortFunc(st.order, func(a, b lifetime.Lifetime) int {
			if a.Start != b.Start {
				return a.Start - b.Start
			}
			if a.End != b.End {
				return b.End - a.End // longer lifetime first
			}
			return a.Node - b.Node
		})
	}
	if cap(st.qs) < len(st.order) {
		st.qs = make([]int32, len(st.order))
	}
	st.qs = st.qs[:len(st.order)]
}

// tryFit attempts placement with exactly r registers under the
// strategy, recording specifiers in st.qs. The order must have been
// prepared and be non-empty.
func (st *fitState) tryFit(ii, r int, strat Strategy) bool {
	c := r * ii
	if c < 1 {
		return false
	}
	nw := (c + 63) >> 6
	st.occ = clearWords(st.occ, nw)
	if strat == StrategyBestFit {
		st.ends = clearWords(st.ends, nw)
	}
	for i := range st.order {
		l := &st.order[i]
		length := l.End - l.Start
		if length > c {
			return false // a single wand cannot exceed the circle
		}
		p0 := mod(l.Start, c)
		var q, p int
		if strat == StrategyBestFit {
			q, p = st.bestQ(p0, length, ii, r, c)
		} else {
			q, p = st.firstQ(p0, length, ii, r, c)
		}
		if q < 0 {
			return false
		}
		st.qs[i] = int32(q)
		st.mark(p, length, c)
		if strat == StrategyBestFit {
			e := mod(p+length, c)
			st.ends[e>>6] |= 1 << uint(e&63)
		}
	}
	return true
}

// firstQ returns the smallest specifier whose interval [p0+q*ii,
// p0+q*ii+length) mod c is entirely free, with its start position, or
// (-1, 0). A conflict at circular offset d from the candidate start
// rules out every later specifier whose start lands within (d-length,
// d] of the current one — those intervals still cover the occupied bit
// — so the scan jumps d/ii specifiers at once instead of re-probing
// each.
func (st *fitState) firstQ(p0, length, ii, r, c int) (int, int) {
	for q := 0; q < r; {
		p := p0 + q*ii
		if p >= c {
			p -= c
		}
		d := st.conflict(p, length, c)
		if d < 0 {
			return q, p
		}
		q += d/ii + 1
	}
	return -1, 0
}

// bestQ returns the feasible specifier minimizing the idle gap between
// the nearest preceding arc end and the candidate start (ties to the
// smallest q), with its start position, or (-1, 0). Infeasible
// specifiers are skipped with the same conflict jump as firstQ.
func (st *fitState) bestQ(p0, length, ii, r, c int) (int, int) {
	bestQ, bestP, bestGap := -1, 0, c+1
	for q := 0; q < r; {
		p := p0 + q*ii
		if p >= c {
			p -= c
		}
		if d := st.conflict(p, length, c); d >= 0 {
			q += d/ii + 1
			continue
		}
		if g := st.gapTo(p, c); g < bestGap {
			bestQ, bestP, bestGap = q, p, g
		}
		q++
	}
	return bestQ, bestP
}

// conflict returns the largest offset d in [0, length) such that bit
// (p+d) mod c of the occupancy bitmap is set, or -1 when the whole
// interval is free. Returning the highest conflicting offset maximizes
// firstQ/bestQ's jump.
func (st *fitState) conflict(p, length, c int) int {
	if p+length <= c {
		if hb := highestSet(st.occ, p, p+length); hb >= 0 {
			return hb - p
		}
		return -1
	}
	if hb := highestSet(st.occ, 0, p+length-c); hb >= 0 {
		return hb + c - p
	}
	if hb := highestSet(st.occ, p, c); hb >= 0 {
		return hb - p
	}
	return -1
}

// gapTo returns the circular distance from the nearest arc end at or
// before position p back to p, or c when nothing has been placed —
// exactly gapBefore over the placed arcs, read off the ends bitmap.
func (st *fitState) gapTo(p, c int) int {
	if hb := highestSet(st.ends, 0, p+1); hb >= 0 {
		return p - hb
	}
	if hb := highestSet(st.ends, p+1, c); hb >= 0 {
		return p - hb + c
	}
	return c
}

// mark sets the candidate's interval [p, p+length) mod c in the
// occupancy bitmap.
func (st *fitState) mark(p, length, c int) {
	if length < 1 {
		return
	}
	if p+length <= c {
		setRange(st.occ, p, p+length)
		return
	}
	setRange(st.occ, p, c)
	setRange(st.occ, 0, p+length-c)
}

// clearWords returns w resized to n words, all zero, reusing its
// backing array when it is large enough.
func clearWords(w []uint64, n int) []uint64 {
	if cap(w) < n {
		return make([]uint64, n)
	}
	w = w[:n]
	clear(w)
	return w
}

// setRange sets bits [a, b) of w; a < b required.
func setRange(w []uint64, a, b int) {
	aw, bw := a>>6, (b-1)>>6
	lo := ^uint64(0) << uint(a&63)
	hi := ^uint64(0) >> uint(63-(b-1)&63)
	if aw == bw {
		w[aw] |= lo & hi
		return
	}
	w[aw] |= lo
	for i := aw + 1; i < bw; i++ {
		w[i] = ^uint64(0)
	}
	w[bw] |= hi
}

// highestSet returns the index of the highest set bit in [a, b) of w,
// or -1. It scans whole words from the top, so long free runs cost one
// comparison per 64 bits.
func highestSet(w []uint64, a, b int) int {
	if a >= b {
		return -1
	}
	aw, bw := a>>6, (b-1)>>6
	lo := ^uint64(0) << uint(a&63)
	hi := ^uint64(0) >> uint(63-(b-1)&63)
	if aw == bw {
		if v := w[aw] & lo & hi; v != 0 {
			return aw<<6 + 63 - bits.LeadingZeros64(v)
		}
		return -1
	}
	if v := w[bw] & hi; v != 0 {
		return bw<<6 + 63 - bits.LeadingZeros64(v)
	}
	for i := bw - 1; i > aw; i-- {
		if v := w[i]; v != 0 {
			return i<<6 + 63 - bits.LeadingZeros64(v)
		}
	}
	if v := w[aw] & lo; v != 0 {
		return aw<<6 + 63 - bits.LeadingZeros64(v)
	}
	return -1
}

func mod(a, m int) int {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}
