package regalloc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ncdrf/internal/lifetime"
	"ncdrf/internal/loops"
	"ncdrf/internal/machine"
	"ncdrf/internal/sched"
)

func paperLifetimes(t *testing.T) ([]lifetime.Lifetime, int) {
	t.Helper()
	s, err := sched.Run(loops.PaperExample(), machine.Example(), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return lifetime.Compute(s), s.II
}

// TestPaperUnifiedAllocation checks the paper's headline number: the
// example loop needs exactly 42 registers in a unified rotating file.
func TestPaperUnifiedAllocation(t *testing.T) {
	lts, ii := paperLifetimes(t)
	a, err := FirstFit(lts, ii)
	if err != nil {
		t.Fatal(err)
	}
	if a.Registers != 42 {
		t.Fatalf("unified allocation = %d registers, want 42", a.Registers)
	}
	if err := a.Validate(lts); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyAllocation(t *testing.T) {
	a, err := FirstFit(nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Registers != 0 {
		t.Fatalf("empty allocation = %d", a.Registers)
	}
	if err := a.Validate(nil); err != nil {
		t.Fatal(err)
	}
	if !FitsIn(nil, 4, 0) {
		t.Fatal("empty set must fit in 0 registers")
	}
}

func TestFirstFitRejectsBadInput(t *testing.T) {
	if _, err := FirstFit(nil, 0); err == nil {
		t.Fatal("II=0 must fail")
	}
	bad := []lifetime.Lifetime{{Node: 0, Start: 5, End: 5}}
	if _, err := FirstFit(bad, 2); err == nil {
		t.Fatal("zero-length lifetime must fail")
	}
}

func TestSingleValue(t *testing.T) {
	lts := []lifetime.Lifetime{{Node: 7, Start: 3, End: 10}}
	for ii := 1; ii <= 8; ii++ {
		a, err := FirstFit(lts, ii)
		if err != nil {
			t.Fatal(err)
		}
		want := (7 + ii - 1) / ii // ceil(len/II)
		if a.Registers != want {
			t.Fatalf("ii=%d: registers = %d, want %d", ii, a.Registers, want)
		}
		if err := a.Validate(lts); err != nil {
			t.Fatalf("ii=%d: %v", ii, err)
		}
	}
}

func TestTwoDisjointValuesShareRegister(t *testing.T) {
	// Two short values far apart in the kernel can share one register
	// when II is large enough.
	lts := []lifetime.Lifetime{
		{Node: 0, Start: 0, End: 2},
		{Node: 1, Start: 4, End: 6},
	}
	a, err := FirstFit(lts, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Registers != 1 {
		t.Fatalf("registers = %d, want 1", a.Registers)
	}
}

func TestOverlappingValuesNeedTwo(t *testing.T) {
	lts := []lifetime.Lifetime{
		{Node: 0, Start: 0, End: 5},
		{Node: 1, Start: 2, End: 7},
	}
	a, err := FirstFit(lts, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Registers != 2 {
		t.Fatalf("registers = %d, want 2", a.Registers)
	}
}

func TestFitsInBoundary(t *testing.T) {
	lts, ii := paperLifetimes(t)
	if !FitsIn(lts, ii, 42) {
		t.Fatal("must fit in 42")
	}
	if FitsIn(lts, ii, 41) {
		t.Fatal("must not fit in 41")
	}
}

func TestValidateCatchesConflicts(t *testing.T) {
	lts := []lifetime.Lifetime{
		{Node: 0, Start: 0, End: 5},
		{Node: 1, Start: 2, End: 7},
	}
	bad := &Allocation{Registers: 2, II: 4, Spec: map[int]int{0: 0, 1: 0}}
	if err := bad.Validate(lts); err == nil {
		t.Fatal("Validate accepted colliding specifiers")
	}
	missing := &Allocation{Registers: 2, II: 4, Spec: map[int]int{0: 0}}
	if err := missing.Validate(lts); err == nil {
		t.Fatal("Validate accepted missing value")
	}
	oob := &Allocation{Registers: 2, II: 4, Spec: map[int]int{0: 0, 1: 5}}
	if err := oob.Validate(lts); err == nil {
		t.Fatal("Validate accepted out-of-range specifier")
	}
}

func TestArcOverlapWraparound(t *testing.T) {
	// [10, 14) on circle 12 wraps to [10,12)+[0,2): overlaps [0,1).
	a := arc{start: 10, end: 14}
	b := arc{start: 0, end: 1}
	if !a.overlaps(b, 12) {
		t.Fatal("wraparound overlap missed")
	}
	c := arc{start: 2, end: 10}
	if a.overlaps(c, 12) {
		t.Fatal("false overlap")
	}
	if !a.overlaps(a, 12) {
		t.Fatal("self overlap missed")
	}
}

func randomLifetimes(r *rand.Rand) ([]lifetime.Lifetime, int) {
	ii := 1 + r.Intn(6)
	n := 1 + r.Intn(14)
	lts := make([]lifetime.Lifetime, n)
	for i := range lts {
		s := r.Intn(25)
		lts[i] = lifetime.Lifetime{Node: i, Start: s, End: s + 1 + r.Intn(18)}
	}
	return lts, ii
}

// Property: First Fit allocations are always valid and never beat the
// exact lower bounds.
func TestPropertyFirstFitValidAndBounded(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		lts, ii := randomLifetimes(r)
		a, err := FirstFit(lts, ii)
		if err != nil {
			return false
		}
		if a.Validate(lts) != nil {
			return false
		}
		if a.Registers < lifetime.AvgLiveBound(lts, ii) {
			return false
		}
		return a.Registers >= lifetime.MaxLive(lts, ii)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: FitsIn is monotone in the register count and consistent with
// FirstFit's result.
func TestPropertyFitsInMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		lts, ii := randomLifetimes(r)
		a, err := FirstFit(lts, ii)
		if err != nil {
			return false
		}
		if !FitsIn(lts, ii, a.Registers) {
			return false
		}
		if FitsIn(lts, ii, a.Registers-1) {
			// First Fit found a smaller feasible size during its upward
			// search; contradiction.
			return false
		}
		return FitsIn(lts, ii, a.Registers+3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: First Fit never needs more than the linear-placement bound.
// Placing each wand just past all previous ones advances the frontier by
// at most its length plus II-1 cycles of rounding slack (arc starts move
// in II steps), so R <= ceil((maxStart + sum(L) + n*(II-1))/II) + 1 and
// the upward search must stop by then.
func TestPropertyFirstFitUpperBound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		lts, ii := randomLifetimes(r)
		a, err := FirstFit(lts, ii)
		if err != nil {
			return false
		}
		maxStart := 0
		for _, l := range lts {
			if l.Start > maxStart {
				maxStart = l.Start
			}
		}
		extent := maxStart + lifetime.SumLen(lts) + len(lts)*(ii-1)
		bound := (extent+ii-1)/ii + 1
		return a.Registers <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
