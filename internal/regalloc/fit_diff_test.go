package regalloc

import (
	"fmt"
	"math/rand"
	"testing"

	"ncdrf/internal/lifetime"
	"ncdrf/internal/loops"
	"ncdrf/internal/machine"
	"ncdrf/internal/sched"
)

// specEqual reports whether two allocations agree exactly.
func specEqual(a, b *Allocation) error {
	if a.Registers != b.Registers {
		return fmt.Errorf("Registers %d != %d", a.Registers, b.Registers)
	}
	if a.II != b.II {
		return fmt.Errorf("II %d != %d", a.II, b.II)
	}
	if len(a.Spec) != len(b.Spec) {
		return fmt.Errorf("Spec size %d != %d", len(a.Spec), len(b.Spec))
	}
	for node, q := range a.Spec {
		if bq, ok := b.Spec[node]; !ok || bq != q {
			return fmt.Errorf("Spec[%d] = %d vs %d (present %v)", node, q, bq, ok)
		}
	}
	return nil
}

// TestDifferentialCorpusAllocator pins the bitset core bit-for-bit
// against the reference implementation over the full kernels corpus —
// every strategy, both evaluation machines, on the complete lifetime
// set of each kernel's schedule. The corpus spans kernels that fit
// comfortably and kernels that spill at paper-scale budgets, so both
// the dense low-R placements and the sparse high-R ones are covered.
func TestDifferentialCorpusAllocator(t *testing.T) {
	for _, m := range []*machine.Config{machine.Eval(3), machine.Eval(6)} {
		for _, g := range loops.Kernels() {
			s, err := sched.Run(g, m, sched.Options{})
			if err != nil {
				t.Fatalf("%s on %s: %v", g.LoopName, m.Name(), err)
			}
			lts := lifetime.Compute(s)
			for _, strat := range Strategies {
				got, err := Allocate(lts, s.II, strat)
				if err != nil {
					t.Fatalf("%s on %s, %v: %v", g.LoopName, m.Name(), strat, err)
				}
				want, err := refAllocate(lts, s.II, strat)
				if err != nil {
					t.Fatalf("%s on %s, %v: reference: %v", g.LoopName, m.Name(), strat, err)
				}
				if err := specEqual(got, want); err != nil {
					t.Fatalf("%s on %s, %v: %v", g.LoopName, m.Name(), strat, err)
				}
				if err := got.Validate(lts); err != nil {
					t.Fatalf("%s on %s, %v: invalid: %v", g.LoopName, m.Name(), strat, err)
				}
			}
			// FirstFit is its own exported entry point; pin it too.
			got, err := FirstFit(lts, s.II)
			if err != nil {
				t.Fatal(err)
			}
			want, err := refFirstFit(lts, s.II)
			if err != nil {
				t.Fatal(err)
			}
			if err := specEqual(got, want); err != nil {
				t.Fatalf("%s on %s FirstFit: %v", g.LoopName, m.Name(), err)
			}
			// The frontier probe path: FitsIn must flip at the same
			// boundary, probed across the search region.
			for r := want.Registers - 3; r <= want.Registers+3; r++ {
				if FitsIn(lts, s.II, r) != refFitsIn(lts, s.II, r) {
					t.Fatalf("%s on %s: FitsIn(%d) diverges", g.LoopName, m.Name(), r)
				}
			}
		}
	}
}

// TestDifferentialRandomizedAllocator hammers the core with randomized
// lifetimes — clustered starts, long loop-carried ranges, duplicate
// intervals — under every strategy. Run under -race in CI (the pooled
// fitState arena must stay race-free across concurrent allocator
// callers; the t.Parallel subtests share the pool).
func TestDifferentialRandomizedAllocator(t *testing.T) {
	for shard := 0; shard < 4; shard++ {
		t.Run(fmt.Sprintf("shard%d", shard), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(int64(1000 + shard)))
			for trial := 0; trial < 150; trial++ {
				lts, ii := randomDiffLifetimes(r)
				for _, strat := range Strategies {
					got, err := Allocate(lts, ii, strat)
					if err != nil {
						t.Fatalf("trial %d %v: %v", trial, strat, err)
					}
					want, err := refAllocate(lts, ii, strat)
					if err != nil {
						t.Fatalf("trial %d %v: reference: %v", trial, strat, err)
					}
					if err := specEqual(got, want); err != nil {
						t.Fatalf("trial %d %v (ii=%d, %v): %v", trial, strat, ii, lts, err)
					}
				}
				boundary := mustRegs(t, lts, ii)
				for r2 := boundary - 2; r2 <= boundary+2; r2++ {
					if FitsIn(lts, ii, r2) != refFitsIn(lts, ii, r2) {
						t.Fatalf("trial %d: FitsIn(%d) diverges (ii=%d, %v)", trial, r2, ii, lts)
					}
				}
			}
		})
	}
}

func mustRegs(t *testing.T, lts []lifetime.Lifetime, ii int) int {
	t.Helper()
	a, err := FirstFit(lts, ii)
	if err != nil {
		t.Fatal(err)
	}
	return a.Registers
}

// randomDiffLifetimes draws a harsher distribution than the property
// tests' randomLifetimes: more values, wider starts, occasional
// duplicated intervals and lifetimes spanning many iterations.
func randomDiffLifetimes(r *rand.Rand) ([]lifetime.Lifetime, int) {
	ii := 1 + r.Intn(8)
	n := 1 + r.Intn(24)
	lts := make([]lifetime.Lifetime, n)
	for i := range lts {
		s := r.Intn(40)
		length := 1 + r.Intn(4*ii+20)
		if i > 0 && r.Intn(6) == 0 {
			// Duplicate a previous interval under a fresh node: exercises
			// placement-order tie-breaking.
			lts[i] = lifetime.Lifetime{Node: i, Start: lts[i-1].Start, End: lts[i-1].End}
			continue
		}
		lts[i] = lifetime.Lifetime{Node: i, Start: s, End: s + length}
	}
	return lts, ii
}

// TestValidateSweepEquivalence pins the sweep-line Validate against the
// pairwise reference: same accept/reject verdict on valid allocations,
// corrupted specifiers, and adversarial hand-built cases.
func TestValidateSweepEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		lts, ii := randomDiffLifetimes(r)
		a, err := FirstFit(lts, ii)
		if err != nil {
			t.Fatal(err)
		}
		checkValidateAgree(t, a, lts)
		// Corrupt one specifier: usually introduces a collision, and both
		// implementations must agree either way.
		if len(lts) > 1 {
			bad := &Allocation{Registers: a.Registers, II: a.II, Spec: map[int]int{}}
			for k, v := range a.Spec {
				bad.Spec[k] = v
			}
			victim := lts[r.Intn(len(lts))].Node
			bad.Spec[victim] = r.Intn(a.Registers)
			checkValidateAgree(t, bad, lts)
		}
		// Shrink the file without remapping: out-of-range specifiers and
		// over-length lifetimes must be rejected identically.
		if a.Registers > 1 {
			shrunk := &Allocation{Registers: a.Registers - 1, II: a.II, Spec: a.Spec}
			checkValidateAgree(t, shrunk, lts)
		}
	}
	// Wraparound collision: two arcs meeting only across the circle seam.
	lts := []lifetime.Lifetime{
		{Node: 0, Start: 10, End: 16}, // wraps on c=12
		{Node: 1, Start: 1, End: 3},
	}
	wrap := &Allocation{Registers: 3, II: 4, Spec: map[int]int{0: 0, 1: 0}}
	checkValidateAgree(t, wrap, lts)
	if err := wrap.Validate(lts); err == nil {
		t.Fatal("Validate missed a wraparound collision")
	}
}

func checkValidateAgree(t *testing.T, a *Allocation, lts []lifetime.Lifetime) {
	t.Helper()
	got, want := a.Validate(lts), refValidate(a, lts)
	if (got == nil) != (want == nil) {
		t.Fatalf("Validate disagrees with reference: sweep=%v pairwise=%v (alloc %+v, lts %v)",
			got, want, a, lts)
	}
}

// TestFitStateBitmapOps unit-tests the word-level primitives at the
// boundaries the fuzzing above might only graze: word seams, full
// words, single bits, wrapping intervals.
func TestFitStateBitmapOps(t *testing.T) {
	w := make([]uint64, 3)
	setRange(w, 0, 192)
	for i, v := range w {
		if v != ^uint64(0) {
			t.Fatalf("word %d = %x after full setRange", i, v)
		}
	}
	w = make([]uint64, 3)
	setRange(w, 63, 65) // straddles the first word seam
	if w[0] != 1<<63 || w[1] != 1 || w[2] != 0 {
		t.Fatalf("seam setRange: %x %x %x", w[0], w[1], w[2])
	}
	if got := highestSet(w, 0, 192); got != 64 {
		t.Fatalf("highestSet = %d, want 64", got)
	}
	if got := highestSet(w, 0, 64); got != 63 {
		t.Fatalf("highestSet below seam = %d, want 63", got)
	}
	if got := highestSet(w, 65, 192); got != -1 {
		t.Fatalf("highestSet above = %d, want -1", got)
	}
	if got := highestSet(w, 64, 64); got != -1 {
		t.Fatalf("empty range = %d, want -1", got)
	}

	// conflict over a wrapping interval: occupied bit only reachable
	// through the seam.
	st := &fitState{occ: make([]uint64, 2)}
	setRange(st.occ, 2, 4) // bits 2,3 on a circle of c=100
	if d := st.conflict(96, 10, 100); d != 7 {
		// interval [96,100)+[0,6): highest conflict is bit 3, offset 3+100-96.
		t.Fatalf("wrap conflict = %d, want 7", d)
	}
	if d := st.conflict(4, 10, 100); d != -1 {
		t.Fatalf("free interval conflict = %d, want -1", d)
	}
	if d := st.conflict(0, 3, 100); d != 2 {
		t.Fatalf("conflict = %d, want 2", d)
	}

	// gapTo against the reference gapBefore.
	st.ends = make([]uint64, 2)
	placed := []arc{{start: 10, end: 18}}
	st.ends[18>>6] |= 1 << 18
	for p := 0; p < 100; p++ {
		if got, want := st.gapTo(p, 100), gapBefore(placed, p, 100); got != want {
			t.Fatalf("gapTo(%d) = %d, want %d", p, got, want)
		}
	}
	if got := (&fitState{ends: make([]uint64, 2)}).gapTo(5, 100); got != 100 {
		t.Fatalf("empty gapTo = %d, want 100", got)
	}
}
