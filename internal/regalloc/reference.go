package regalloc

import (
	"fmt"
	"sort"

	"ncdrf/internal/lifetime"
)

// The pre-bitset allocator, kept verbatim as the executable
// specification of the fit core in fit.go. Every placement decision the
// optimized allocator makes is pinned against these functions by the
// differential tests (fit_diff_test.go): same Registers, same Spec, for
// every strategy, over the kernels corpus and randomized lifetimes.
// Nothing here is reachable from production paths.

// arc is a placed interval on the allocation circle.
type arc struct {
	start, end int // end may exceed the circumference; interpreted mod C
}

// overlaps reports whether two arcs intersect on a circle of
// circumference c. Arcs are half-open [start, end).
func (a arc) overlaps(b arc, c int) bool {
	// Compare every pair of translates within one period.
	as, ae := mod(a.start, c), a.end-a.start
	bs, be := mod(b.start, c), b.end-b.start
	// a occupies [as, as+ae), b occupies [bs, bs+be) on the line after
	// normalizing; wrapping handled by also checking the +c translate.
	return segOverlap(as, as+ae, bs, bs+be) ||
		segOverlap(as, as+ae, bs+c, bs+c+be) ||
		segOverlap(as+c, as+c+ae, bs, bs+be)
}

func segOverlap(a0, a1, b0, b1 int) bool { return a0 < b1 && b0 < a1 }

// refFirstFit is the reference FirstFit: upward register search over
// refTryFit.
func refFirstFit(lts []lifetime.Lifetime, ii int) (*Allocation, error) {
	if ii < 1 {
		return nil, fmt.Errorf("regalloc: II = %d", ii)
	}
	for _, l := range lts {
		if l.Len() <= 0 {
			return nil, fmt.Errorf("regalloc: value %d has non-positive lifetime [%d,%d)", l.Node, l.Start, l.End)
		}
	}
	if len(lts) == 0 {
		return &Allocation{Registers: 0, II: ii, Spec: map[int]int{}}, nil
	}
	low := lifetime.AvgLiveBound(lts, ii)
	if ml := lifetime.MaxLive(lts, ii); ml > low {
		low = ml
	}
	for r := low; ; r++ {
		if spec, ok := refTryFit(lts, ii, r); ok {
			return &Allocation{Registers: r, II: ii, Spec: spec}, nil
		}
	}
}

// refFitsIn is the reference FitsIn.
func refFitsIn(lts []lifetime.Lifetime, ii, r int) bool {
	if len(lts) == 0 {
		return true
	}
	if r < lifetime.AvgLiveBound(lts, ii) {
		return false
	}
	_, ok := refTryFit(lts, ii, r)
	return ok
}

// refTryFit attempts First Fit placement with exactly r registers:
// values in increasing start-time order, each given the smallest
// specifier q whose arc avoids all previously placed arcs.
func refTryFit(lts []lifetime.Lifetime, ii, r int) (map[int]int, bool) {
	c := r * ii
	order := append([]lifetime.Lifetime(nil), lts...)
	sort.Slice(order, func(i, j int) bool {
		if order[i].Start != order[j].Start {
			return order[i].Start < order[j].Start
		}
		if order[i].End != order[j].End {
			return order[i].End > order[j].End // longer lifetime first
		}
		return order[i].Node < order[j].Node
	})
	var placed []arc
	spec := make(map[int]int, len(order))
	for _, l := range order {
		if l.Len() > c {
			return nil, false // a single wand cannot exceed the circle
		}
		found := false
		for q := 0; q < r; q++ {
			cand := arc{start: l.Start + q*ii, end: l.End + q*ii}
			ok := true
			for _, p := range placed {
				if cand.overlaps(p, c) {
					ok = false
					break
				}
			}
			if ok {
				placed = append(placed, cand)
				spec[l.Node] = q
				found = true
				break
			}
		}
		if !found {
			return nil, false
		}
	}
	return spec, true
}

// refAllocate is the reference strategy allocator.
func refAllocate(lts []lifetime.Lifetime, ii int, strat Strategy) (*Allocation, error) {
	if ii < 1 {
		return nil, fmt.Errorf("regalloc: II = %d", ii)
	}
	for _, l := range lts {
		if l.Len() <= 0 {
			return nil, fmt.Errorf("regalloc: value %d has non-positive lifetime [%d,%d)", l.Node, l.Start, l.End)
		}
	}
	if len(lts) == 0 {
		return &Allocation{Registers: 0, II: ii, Spec: map[int]int{}}, nil
	}
	low := lifetime.AvgLiveBound(lts, ii)
	if ml := lifetime.MaxLive(lts, ii); ml > low {
		low = ml
	}
	for r := low; ; r++ {
		if spec, ok := refTryFitStrategy(lts, ii, r, strat); ok {
			return &Allocation{Registers: r, II: ii, Spec: spec}, nil
		}
	}
}

// refTryFitStrategy attempts placement with exactly r registers under
// the given heuristic.
func refTryFitStrategy(lts []lifetime.Lifetime, ii, r int, strat Strategy) (map[int]int, bool) {
	c := r * ii
	order := append([]lifetime.Lifetime(nil), lts...)
	switch strat {
	case StrategyEndFit:
		sort.Slice(order, func(i, j int) bool {
			if order[i].End != order[j].End {
				return order[i].End < order[j].End
			}
			if order[i].Start != order[j].Start {
				return order[i].Start < order[j].Start
			}
			return order[i].Node < order[j].Node
		})
	default:
		sort.Slice(order, func(i, j int) bool {
			if order[i].Start != order[j].Start {
				return order[i].Start < order[j].Start
			}
			if order[i].End != order[j].End {
				return order[i].End > order[j].End
			}
			return order[i].Node < order[j].Node
		})
	}
	var placed []arc
	spec := make(map[int]int, len(order))
	for _, l := range order {
		if l.Len() > c {
			return nil, false
		}
		q, ok := refPickSpec(placed, l, ii, r, c, strat)
		if !ok {
			return nil, false
		}
		placed = append(placed, arc{start: l.Start + q*ii, end: l.End + q*ii})
		spec[l.Node] = q
	}
	return spec, true
}

// refPickSpec chooses the specifier for one value under the heuristic.
func refPickSpec(placed []arc, l lifetime.Lifetime, ii, r, c int, strat Strategy) (int, bool) {
	feasible := func(q int) bool {
		cand := arc{start: l.Start + q*ii, end: l.End + q*ii}
		for _, p := range placed {
			if cand.overlaps(p, c) {
				return false
			}
		}
		return true
	}
	if strat != StrategyBestFit {
		for q := 0; q < r; q++ {
			if feasible(q) {
				return q, true
			}
		}
		return 0, false
	}
	// Best fit: among feasible specifiers, minimize the idle gap between
	// the preceding placed arc's end and this arc's start on the circle.
	bestQ, bestGap := -1, c+1
	for q := 0; q < r; q++ {
		if !feasible(q) {
			continue
		}
		gap := gapBefore(placed, mod(l.Start+q*ii, c), c)
		if gap < bestGap {
			bestQ, bestGap = q, gap
		}
	}
	if bestQ < 0 {
		return 0, false
	}
	return bestQ, true
}

// gapBefore returns the circular distance from the nearest placed arc
// end at or before position p to p; c when nothing is placed.
func gapBefore(placed []arc, p, c int) int {
	if len(placed) == 0 {
		return c
	}
	best := c
	for _, a := range placed {
		end := mod(a.end, c)
		d := p - end
		if d < 0 {
			d += c
		}
		if d < best {
			best = d
		}
	}
	return best
}

// refValidate is the reference Validate: O(n^2) pairwise arc overlap.
func refValidate(a *Allocation, lts []lifetime.Lifetime) error {
	if a.Registers == 0 {
		if len(lts) != 0 {
			return fmt.Errorf("regalloc: empty allocation for %d values", len(lts))
		}
		return nil
	}
	c := a.Registers * a.II
	arcs := make([]arc, 0, len(lts))
	for _, l := range lts {
		q, ok := a.Spec[l.Node]
		if !ok {
			return fmt.Errorf("regalloc: value %d not allocated", l.Node)
		}
		if q < 0 || q >= a.Registers {
			return fmt.Errorf("regalloc: value %d has specifier %d outside [0,%d)", l.Node, q, a.Registers)
		}
		if l.Len() > c {
			return fmt.Errorf("regalloc: value %d lifetime %d exceeds circle %d", l.Node, l.Len(), c)
		}
		arcs = append(arcs, arc{start: l.Start + q*a.II, end: l.End + q*a.II})
	}
	for i := 0; i < len(arcs); i++ {
		for j := i + 1; j < len(arcs); j++ {
			if arcs[i].overlaps(arcs[j], c) {
				return fmt.Errorf("regalloc: values %d and %d collide", lts[i].Node, lts[j].Node)
			}
		}
	}
	return nil
}
