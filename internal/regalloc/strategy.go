package regalloc

import (
	"fmt"
	"sort"

	"ncdrf/internal/lifetime"
)

// Strategy selects the allocation heuristic. The paper (after Rau et al.
// PLDI'92) evaluates several orderings and fits and picks Wands Only +
// First Fit for its simplicity, noting all perform similarly; the other
// variants are kept here for the ablation benchmarks.
type Strategy int

const (
	// StrategyFirstFit places values in start-time order at the smallest
	// feasible specifier (the paper's choice).
	StrategyFirstFit Strategy = iota
	// StrategyBestFit places values in start-time order at the feasible
	// specifier that leaves the smallest gap to the preceding arc,
	// reducing fragmentation.
	StrategyBestFit
	// StrategyEndFit places values in end-time order at the smallest
	// feasible specifier.
	StrategyEndFit
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyFirstFit:
		return "first-fit"
	case StrategyBestFit:
		return "best-fit"
	case StrategyEndFit:
		return "end-fit"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Strategies lists every implemented allocation heuristic.
var Strategies = []Strategy{StrategyFirstFit, StrategyBestFit, StrategyEndFit}

// Allocate runs the wands-only allocator with the chosen heuristic,
// searching the file size upward from the exact lower bound.
func Allocate(lts []lifetime.Lifetime, ii int, strat Strategy) (*Allocation, error) {
	if ii < 1 {
		return nil, fmt.Errorf("regalloc: II = %d", ii)
	}
	for _, l := range lts {
		if l.Len() <= 0 {
			return nil, fmt.Errorf("regalloc: value %d has non-positive lifetime [%d,%d)", l.Node, l.Start, l.End)
		}
	}
	if len(lts) == 0 {
		return &Allocation{Registers: 0, II: ii, Spec: map[int]int{}}, nil
	}
	low := lifetime.AvgLiveBound(lts, ii)
	if ml := lifetime.MaxLive(lts, ii); ml > low {
		low = ml
	}
	for r := low; ; r++ {
		if spec, ok := tryFitStrategy(lts, ii, r, strat); ok {
			return &Allocation{Registers: r, II: ii, Spec: spec}, nil
		}
	}
}

// tryFitStrategy attempts placement with exactly r registers under the
// given heuristic.
func tryFitStrategy(lts []lifetime.Lifetime, ii, r int, strat Strategy) (map[int]int, bool) {
	c := r * ii
	order := append([]lifetime.Lifetime(nil), lts...)
	switch strat {
	case StrategyEndFit:
		sort.Slice(order, func(i, j int) bool {
			if order[i].End != order[j].End {
				return order[i].End < order[j].End
			}
			if order[i].Start != order[j].Start {
				return order[i].Start < order[j].Start
			}
			return order[i].Node < order[j].Node
		})
	default:
		sort.Slice(order, func(i, j int) bool {
			if order[i].Start != order[j].Start {
				return order[i].Start < order[j].Start
			}
			if order[i].End != order[j].End {
				return order[i].End > order[j].End
			}
			return order[i].Node < order[j].Node
		})
	}
	var placed []arc
	spec := make(map[int]int, len(order))
	for _, l := range order {
		if l.Len() > c {
			return nil, false
		}
		q, ok := pickSpec(placed, l, ii, r, c, strat)
		if !ok {
			return nil, false
		}
		placed = append(placed, arc{start: l.Start + q*ii, end: l.End + q*ii})
		spec[l.Node] = q
	}
	return spec, true
}

// pickSpec chooses the specifier for one value under the heuristic.
func pickSpec(placed []arc, l lifetime.Lifetime, ii, r, c int, strat Strategy) (int, bool) {
	feasible := func(q int) bool {
		cand := arc{start: l.Start + q*ii, end: l.End + q*ii}
		for _, p := range placed {
			if cand.overlaps(p, c) {
				return false
			}
		}
		return true
	}
	if strat != StrategyBestFit {
		for q := 0; q < r; q++ {
			if feasible(q) {
				return q, true
			}
		}
		return 0, false
	}
	// Best fit: among feasible specifiers, minimize the idle gap between
	// the preceding placed arc's end and this arc's start on the circle.
	bestQ, bestGap := -1, c+1
	for q := 0; q < r; q++ {
		if !feasible(q) {
			continue
		}
		gap := gapBefore(placed, mod(l.Start+q*ii, c), c)
		if gap < bestGap {
			bestQ, bestGap = q, gap
		}
	}
	if bestQ < 0 {
		return 0, false
	}
	return bestQ, true
}

// gapBefore returns the circular distance from the nearest placed arc
// end at or before position p to p; c when nothing is placed.
func gapBefore(placed []arc, p, c int) int {
	if len(placed) == 0 {
		return c
	}
	best := c
	for _, a := range placed {
		end := mod(a.end, c)
		d := p - end
		if d < 0 {
			d += c
		}
		if d < best {
			best = d
		}
	}
	return best
}
