package regalloc

import (
	"fmt"

	"ncdrf/internal/lifetime"
)

// Strategy selects the allocation heuristic. The paper (after Rau et al.
// PLDI'92) evaluates several orderings and fits and picks Wands Only +
// First Fit for its simplicity, noting all perform similarly; the other
// variants are kept here for the ablation benchmarks.
type Strategy int

const (
	// StrategyFirstFit places values in start-time order at the smallest
	// feasible specifier (the paper's choice).
	StrategyFirstFit Strategy = iota
	// StrategyBestFit places values in start-time order at the feasible
	// specifier that leaves the smallest gap to the preceding arc,
	// reducing fragmentation.
	StrategyBestFit
	// StrategyEndFit places values in end-time order at the smallest
	// feasible specifier.
	StrategyEndFit
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyFirstFit:
		return "first-fit"
	case StrategyBestFit:
		return "best-fit"
	case StrategyEndFit:
		return "end-fit"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Strategies lists every implemented allocation heuristic.
var Strategies = []Strategy{StrategyFirstFit, StrategyBestFit, StrategyEndFit}

// Allocate runs the wands-only allocator with the chosen heuristic,
// searching the file size upward from the exact lower bound. All three
// heuristics run on the shared bitset-circle core (fit.go).
func Allocate(lts []lifetime.Lifetime, ii int, strat Strategy) (*Allocation, error) {
	return allocate(lts, ii, strat)
}
