package regalloc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ncdrf/internal/lifetime"
)

func TestStrategyNames(t *testing.T) {
	if StrategyFirstFit.String() != "first-fit" ||
		StrategyBestFit.String() != "best-fit" ||
		StrategyEndFit.String() != "end-fit" {
		t.Fatal("strategy names wrong")
	}
	if Strategy(99).String() == "" {
		t.Fatal("unknown strategy must still render")
	}
}

func TestAllocateMatchesFirstFit(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		lts, ii := randomLifetimes(r)
		a, err := FirstFit(lts, ii)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Allocate(lts, ii, StrategyFirstFit)
		if err != nil {
			t.Fatal(err)
		}
		if a.Registers != b.Registers {
			t.Fatalf("Allocate(first-fit) = %d, FirstFit = %d", b.Registers, a.Registers)
		}
	}
}

func TestAllocateEmptyAndErrors(t *testing.T) {
	for _, s := range Strategies {
		a, err := Allocate(nil, 3, s)
		if err != nil || a.Registers != 0 {
			t.Fatalf("%v: empty allocation failed: %v", s, err)
		}
		if _, err := Allocate(nil, 0, s); err == nil {
			t.Fatalf("%v: II=0 must fail", s)
		}
		bad := []lifetime.Lifetime{{Node: 0, Start: 1, End: 1}}
		if _, err := Allocate(bad, 2, s); err == nil {
			t.Fatalf("%v: empty lifetime must fail", s)
		}
	}
}

// Property: every strategy produces valid allocations no smaller than
// the exact lower bounds.
func TestPropertyAllStrategiesValid(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		lts, ii := randomLifetimes(r)
		for _, s := range Strategies {
			a, err := Allocate(lts, ii, s)
			if err != nil {
				return false
			}
			if a.Validate(lts) != nil {
				return false
			}
			if a.Registers < lifetime.MaxLive(lts, ii) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// The strategies should usually land within a register or two of each
// other (the paper's observation that all schemes perform similarly for
// Wands Only); assert a loose aggregate bound rather than pointwise
// equality.
func TestStrategiesAgreeOnAggregate(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	totals := map[Strategy]int{}
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		lts, ii := randomLifetimes(r)
		for _, s := range Strategies {
			a, err := Allocate(lts, ii, s)
			if err != nil {
				t.Fatal(err)
			}
			totals[s] += a.Registers
		}
	}
	ff := totals[StrategyFirstFit]
	for _, s := range Strategies[1:] {
		diff := totals[s] - ff
		if diff < 0 {
			diff = -diff
		}
		if float64(diff) > 0.10*float64(ff) {
			t.Fatalf("%v diverges from first-fit by %d of %d total registers", s, diff, ff)
		}
	}
}

func TestGapBefore(t *testing.T) {
	if got := gapBefore(nil, 5, 20); got != 20 {
		t.Fatalf("empty gap = %d", got)
	}
	placed := []arc{{start: 0, end: 4}}
	if got := gapBefore(placed, 6, 20); got != 2 {
		t.Fatalf("gap = %d, want 2", got)
	}
	// Wraparound: arc ends at 18, position 1 -> gap 3.
	placed = []arc{{start: 10, end: 18}}
	if got := gapBefore(placed, 1, 20); got != 3 {
		t.Fatalf("wrap gap = %d, want 3", got)
	}
}
