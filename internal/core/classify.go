// Package core implements the paper's contribution: the non-consistent
// dual register file. Values of a modulo-scheduled loop are classified by
// the clusters that consume them — values read by both clusters are
// replicated ("global"), values read by a single cluster live only in
// that cluster's subfile ("left-only"/"right-only") — and a greedy
// post-scheduling swap pass rebalances operations between clusters to
// shrink the requirement further (sections 4 and 5.2).
package core

import (
	"fmt"

	"ncdrf/internal/ddg"
	"ncdrf/internal/lifetime"
	"ncdrf/internal/sched"
)

// Class describes where a value must be stored.
type Class int

const (
	// Global values are consumed by more than one cluster and keep a
	// consistent copy in every subfile.
	Global Class = -1
	// Non-negative classes are the index of the single cluster whose
	// subfile stores the value (0 = "left-only", 1 = "right-only" in the
	// paper's two-cluster terminology).
)

// String renders "GL" for global and "C<i>" for cluster-local classes
// ("C0" corresponds to the paper's LO, "C1" to RO).
func (c Class) String() string {
	if c == Global {
		return "GL"
	}
	return fmt.Sprintf("C%d", int(c))
}

// Classification partitions a schedule's value lifetimes by storage class.
type Classification struct {
	// II is the schedule's initiation interval.
	II int
	// Clusters is the machine's cluster count.
	Clusters int
	// ByValue maps each value-producing node ID to its class.
	ByValue map[int]Class
	// GlobalLts holds lifetimes of global values.
	GlobalLts []lifetime.Lifetime
	// LocalLts holds lifetimes of cluster-local values, per cluster.
	LocalLts [][]lifetime.Lifetime
}

// Classify computes the storage class of every value of the schedule
// under the non-consistent dual register file discipline:
//
//   - a value consumed by operations of a single cluster is local to
//     that cluster;
//   - a value consumed by several clusters is global;
//   - a value with no consumers is local to its producer's cluster.
func Classify(s *sched.Schedule, lts []lifetime.Lifetime) *Classification {
	g := s.Graph
	cl := &Classification{
		II:       s.II,
		Clusters: s.Mach.NumClusters(),
		ByValue:  make(map[int]Class, len(lts)),
		LocalLts: make([][]lifetime.Lifetime, s.Mach.NumClusters()),
	}
	for _, l := range lts {
		class := classOf(s, l.Node)
		cl.ByValue[l.Node] = class
		if class == Global {
			cl.GlobalLts = append(cl.GlobalLts, l)
		} else {
			cl.LocalLts[int(class)] = append(cl.LocalLts[int(class)], l)
		}
	}
	_ = g
	return cl
}

// classOf computes the class of a single value under the current cluster
// assignment of the schedule. It walks the adjacency via OutEdgeIndices
// so the swap pass, which calls it per value per candidate, allocates
// nothing.
func classOf(s *sched.Schedule, node int) Class {
	g := s.Graph
	first := -1
	multi := false
	for _, ei := range g.OutEdgeIndices(node) {
		e := g.Edge(ei)
		if e.Kind != ddg.Flow {
			continue
		}
		c := s.Cluster(e.To)
		if first < 0 {
			first = c
		} else if c != first {
			multi = true
		}
	}
	switch {
	case multi:
		return Global
	case first >= 0:
		return Class(first)
	default:
		return Class(s.Cluster(node))
	}
}

// CountByClass returns the number of values in each class: the global
// count plus one count per cluster.
func (c *Classification) CountByClass() (global int, local []int) {
	local = make([]int, c.Clusters)
	for i := range c.LocalLts {
		local[i] = len(c.LocalLts[i])
	}
	return len(c.GlobalLts), local
}

// SumByClass returns the total lifetime length per class; with II=1 these
// are exactly the register counts of Tables 3 and 4 of the paper.
func (c *Classification) SumByClass() (global int, local []int) {
	local = make([]int, c.Clusters)
	global = lifetime.SumLen(c.GlobalLts)
	for i := range c.LocalLts {
		local[i] = lifetime.SumLen(c.LocalLts[i])
	}
	return global, local
}

// MaxLiveEstimate is the register-requirement lower bound the paper's
// swap heuristic optimizes: for each cluster, the maximum over kernel
// cycles of live globals plus live locals of that cluster; the estimate
// is the maximum over clusters. A machine with a single cluster gets the
// plain MaxLive.
func (c *Classification) MaxLiveEstimate() int {
	gprof := lifetime.LiveProfile(c.GlobalLts, c.II, nil)
	worst := 0
	var lbuf []int
	for cluster := 0; cluster < c.Clusters; cluster++ {
		lbuf = lifetime.LiveProfile(c.LocalLts[cluster], c.II, lbuf)
		for t, g := range gprof {
			if v := g + lbuf[t]; v > worst {
				worst = v
			}
		}
	}
	return worst
}
