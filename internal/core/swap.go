package core

import (
	"ncdrf/internal/lifetime"
	"ncdrf/internal/sched"
)

// SwapOptions tunes the greedy swap pass.
type SwapOptions struct {
	// AllowMoves additionally permits moving a single operation to a
	// free same-kind unit of another cluster in the same kernel row.
	// This is an extension beyond the paper's pair-swap algorithm, kept
	// for the ablation study; the paper's "swapped" model uses false.
	AllowMoves bool
	// MaxSteps bounds the number of greedy steps; 0 means 4*NumNodes.
	MaxSteps int
}

// Swap applies the paper's greedy post-scheduling swap algorithm
// (section 5.2): among all pairs of operations scheduled in the same
// kernel cycle on the same kind of functional unit in different clusters,
// repeatedly swap the pair that most reduces the MaxLive-based
// register-requirement estimate, until no pair improves it.
//
// The input schedule is not modified; the returned schedule shares the
// graph and machine but has fresh Start/FU slices. The second result is
// the number of swaps (plus moves, if enabled) applied.
func Swap(s *sched.Schedule, opts SwapOptions) (*sched.Schedule, int) {
	out := &sched.Schedule{
		Graph: s.Graph,
		Mach:  s.Mach,
		II:    s.II,
		Start: append([]int(nil), s.Start...),
		FU:    append([]int(nil), s.FU...),
	}
	if s.Mach.NumClusters() < 2 {
		return out, 0
	}
	lts := lifetime.Compute(out)
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 4 * s.Graph.NumNodes()
	}

	// One estimator serves every candidate evaluation of every step:
	// the greedy loop classifies O(steps x candidates) times, and a
	// fresh Classification (two maps plus per-class slices) per
	// candidate made that the pass's allocation hot spot.
	est := newSwapEstimator(s.Mach.NumClusters())
	steps := 0
	for ; steps < maxSteps; steps++ {
		cur := est.estimate(out, lts)
		bestGain := 0
		bestA, bestB, bestUnit := -1, -1, -1
		tryCandidate := func(a, b, unit int) {
			orig := out.FU[a]
			applyMove(out, a, b, unit)
			e := est.estimate(out, lts)
			if b >= 0 {
				out.FU[a], out.FU[b] = out.FU[b], out.FU[a]
			} else {
				out.FU[a] = orig
			}
			if gain := cur - e; gain > bestGain {
				bestGain, bestA, bestB, bestUnit = gain, a, b, unit
			}
		}
		for _, pair := range swapPairs(out) {
			tryCandidate(pair[0], pair[1], -1)
		}
		if opts.AllowMoves {
			for _, mv := range freeMoves(out) {
				tryCandidate(mv[0], -1, mv[1])
			}
		}
		if bestGain <= 0 {
			break
		}
		applyMove(out, bestA, bestB, bestUnit)
	}
	return out, steps
}

// swapEstimator computes Classify(s, lts).MaxLiveEstimate() without
// building a Classification: the per-class lifetime partitions and the
// live profiles live in buffers owned by the estimator and reused
// across calls, so a candidate evaluation allocates nothing after
// warmup. TestSwapEstimatorMatchesClassify pins the equivalence.
type swapEstimator struct {
	global []lifetime.Lifetime
	local  [][]lifetime.Lifetime
	gprof  []int
	lprof  []int
}

func newSwapEstimator(clusters int) *swapEstimator {
	return &swapEstimator{local: make([][]lifetime.Lifetime, clusters)}
}

// estimate partitions the lifetimes by storage class under the
// schedule's current cluster assignment and returns the MaxLive-based
// register-requirement estimate (see Classification.MaxLiveEstimate).
func (e *swapEstimator) estimate(s *sched.Schedule, lts []lifetime.Lifetime) int {
	e.global = e.global[:0]
	for i := range e.local {
		e.local[i] = e.local[i][:0]
	}
	for _, l := range lts {
		class := classOf(s, l.Node)
		if class == Global {
			e.global = append(e.global, l)
		} else {
			e.local[int(class)] = append(e.local[int(class)], l)
		}
	}
	e.gprof = lifetime.LiveProfile(e.global, s.II, e.gprof)
	worst := 0
	for cluster := range e.local {
		e.lprof = lifetime.LiveProfile(e.local[cluster], s.II, e.lprof)
		for t, g := range e.gprof {
			if v := g + e.lprof[t]; v > worst {
				worst = v
			}
		}
	}
	return worst
}

// applyMove swaps units of a and b (b >= 0), or moves a to the given
// unit (b < 0).
func applyMove(s *sched.Schedule, a, b, unit int) {
	if b >= 0 {
		s.FU[a], s.FU[b] = s.FU[b], s.FU[a]
	} else {
		s.FU[a] = unit
	}
}

// swapPairs enumerates candidate pairs: same kernel row, same unit kind,
// different clusters.
func swapPairs(s *sched.Schedule) [][2]int {
	n := s.Graph.NumNodes()
	var pairs [][2]int
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if s.Slot(a) != s.Slot(b) {
				continue
			}
			if s.Graph.Node(a).Op.FUKind() != s.Graph.Node(b).Op.FUKind() {
				continue
			}
			if s.Cluster(a) == s.Cluster(b) {
				continue
			}
			pairs = append(pairs, [2]int{a, b})
		}
	}
	return pairs
}

// freeMoves enumerates (node, free unit) candidates for the AllowMoves
// extension: a different-cluster unit of the node's kind that is idle in
// the node's kernel row.
func freeMoves(s *sched.Schedule) [][2]int {
	occupied := map[[2]int]bool{}
	for id := range s.FU {
		occupied[[2]int{s.FU[id], s.Slot(id)}] = true
	}
	var moves [][2]int
	for id := range s.FU {
		kind := s.Graph.Node(id).Op.FUKind()
		for _, u := range s.Mach.UnitsOfKind(kind) {
			if s.Mach.Unit(u).Cluster == s.Cluster(id) {
				continue
			}
			if !occupied[[2]int{u, s.Slot(id)}] {
				moves = append(moves, [2]int{id, u})
			}
		}
	}
	return moves
}
