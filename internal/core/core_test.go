package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"ncdrf/internal/ddg"
	"ncdrf/internal/lifetime"
	"ncdrf/internal/loops"
	"ncdrf/internal/machine"
	"ncdrf/internal/sched"
)

func paperSchedule(t *testing.T) (*sched.Schedule, []lifetime.Lifetime) {
	t.Helper()
	s, err := sched.Run(loops.PaperExample(), machine.Example(), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s, lifetime.Compute(s)
}

// TestPaperTable3 checks the exact GL/LO/RO classification of Table 3:
// before swapping, L1 is global (13 registers), {L2,M3} are left-only
// (13) and {A4,M5,A6} are right-only (16), for a requirement of 29.
func TestPaperTable3(t *testing.T) {
	s, lts := paperSchedule(t)
	cl := Classify(s, lts)
	wantClass := map[string]Class{
		"L1": Global, "L2": 0, "M3": 0, "A4": 1, "M5": 1, "A6": 1,
	}
	for name, want := range wantClass {
		id := s.Graph.NodeByName(name).ID
		if got := cl.ByValue[id]; got != want {
			t.Errorf("class(%s) = %v, want %v", name, got, want)
		}
	}
	gl, local := cl.SumByClass()
	if gl != 13 || local[0] != 13 || local[1] != 16 {
		t.Fatalf("sums = GL %d, LO %d, RO %d; want 13/13/16", gl, local[0], local[1])
	}
	da, err := AllocateDual(cl)
	if err != nil {
		t.Fatal(err)
	}
	if da.GlobalRegs != 13 || da.LocalRegs[0] != 13 || da.LocalRegs[1] != 16 {
		t.Fatalf("regions = %d/%v", da.GlobalRegs, da.LocalRegs)
	}
	if da.Requirement != 29 {
		t.Fatalf("partitioned requirement = %d, want 29", da.Requirement)
	}
}

// TestPaperTable4 applies the paper's illustrative swap (A4 <-> A6) and
// checks Table 4: no globals, 19 left-only, 23 right-only, requirement 23.
func TestPaperTable4(t *testing.T) {
	s, lts := paperSchedule(t)
	a4 := s.Graph.NodeByName("A4").ID
	a6 := s.Graph.NodeByName("A6").ID
	s.FU[a4], s.FU[a6] = s.FU[a6], s.FU[a4]
	if err := s.Verify(); err != nil {
		t.Fatalf("swap broke the schedule: %v", err)
	}
	cl := Classify(s, lts)
	wantClass := map[string]Class{
		"L1": 0, "L2": 1, "M3": 1, "A4": 1, "M5": 0, "A6": 1,
	}
	for name, want := range wantClass {
		id := s.Graph.NodeByName(name).ID
		if got := cl.ByValue[id]; got != want {
			t.Errorf("class(%s) = %v, want %v", name, got, want)
		}
	}
	gl, local := cl.SumByClass()
	if gl != 0 || local[0] != 19 || local[1] != 23 {
		t.Fatalf("sums = GL %d, LO %d, RO %d; want 0/19/23", gl, local[0], local[1])
	}
	da, err := AllocateDual(cl)
	if err != nil {
		t.Fatal(err)
	}
	if da.Requirement != 23 {
		t.Fatalf("requirement after swap = %d, want 23", da.Requirement)
	}
}

// TestGreedySwapReachesPaperResult runs the paper's greedy algorithm; it
// must reach the same requirement (23) through some sequence of swaps.
func TestGreedySwapReachesPaperResult(t *testing.T) {
	s, lts := paperSchedule(t)
	swapped, n := Swap(s, SwapOptions{})
	if n < 1 {
		t.Fatal("greedy swap found no improving pair")
	}
	if err := swapped.Verify(); err != nil {
		t.Fatalf("swap produced invalid schedule: %v", err)
	}
	req, err := PartitionedRequirement(swapped, lts)
	if err != nil {
		t.Fatal(err)
	}
	if req != 23 {
		t.Fatalf("swapped requirement = %d, want 23", req)
	}
	// The two local sums must be {19, 23} regardless of which symmetric
	// swap the greedy picked.
	_, local := Classify(swapped, lts).SumByClass()
	sort.Ints(local)
	if local[0] != 19 || local[1] != 23 {
		t.Fatalf("local sums = %v, want [19 23]", local)
	}
}

func TestModelRequirements(t *testing.T) {
	s, lts := paperSchedule(t)
	want := map[Model]int{Ideal: 0, Unified: 42, Partitioned: 29, Swapped: 23}
	for model, wantReq := range want {
		got, _, err := Requirement(model, s, lts)
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		if got != wantReq {
			t.Errorf("%v requirement = %d, want %d", model, got, wantReq)
		}
	}
}

func TestModelStringsAndParse(t *testing.T) {
	for _, m := range Models {
		back, err := ParseModel(m.String())
		if err != nil || back != m {
			t.Fatalf("ParseModel(%q) = %v, %v", m.String(), back, err)
		}
	}
	if _, err := ParseModel("nope"); err == nil {
		t.Fatal("ParseModel must reject unknown names")
	}
	if Class(Global).String() != "GL" || Class(0).String() != "C0" {
		t.Fatal("Class.String wrong")
	}
}

func TestClassifyDeadValueLocalToProducer(t *testing.T) {
	g := ddg.New("dead", 1)
	g.AddNode(ddg.FMUL, "M")
	s, err := sched.Run(g, machine.Eval(3), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lts := lifetime.Compute(s)
	cl := Classify(s, lts)
	got := cl.ByValue[0]
	if got == Global {
		t.Fatal("dead value must be local to its producer's cluster")
	}
	if int(got) != s.Cluster(0) {
		t.Fatalf("dead value class = %v, producer cluster = %d", got, s.Cluster(0))
	}
}

func TestSwapOnSingleClusterIsNoop(t *testing.T) {
	g := loops.PaperExample()
	m := machine.Example().Unify()
	s, err := sched.Run(g, m, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	swapped, n := Swap(s, SwapOptions{})
	if n != 0 {
		t.Fatalf("swaps on unified machine = %d, want 0", n)
	}
	for i := range swapped.FU {
		if swapped.FU[i] != s.FU[i] {
			t.Fatal("unified swap changed a unit binding")
		}
	}
}

func TestMaxLiveEstimateMatchesPaper(t *testing.T) {
	s, lts := paperSchedule(t)
	cl := Classify(s, lts)
	// At II=1 the estimate equals the per-cluster sums: max(13+13, 13+16).
	if got := cl.MaxLiveEstimate(); got != 29 {
		t.Fatalf("estimate = %d, want 29", got)
	}
}

func TestFitsDual(t *testing.T) {
	s, lts := paperSchedule(t)
	cl := Classify(s, lts)
	if !FitsDual(cl, 29) {
		t.Fatal("must fit in 29")
	}
	if FitsDual(cl, 28) {
		t.Fatal("must not fit in 28")
	}
}

func randomSchedule(t *testing.T, r *rand.Rand) (*sched.Schedule, []lifetime.Lifetime) {
	t.Helper()
	g := ddg.New("rand", 1)
	ops := []ddg.OpCode{ddg.FADD, ddg.FSUB, ddg.FMUL, ddg.FDIV, ddg.LOAD, ddg.CONV, ddg.STORE}
	n := 3 + r.Intn(14)
	for i := 0; i < n; i++ {
		g.AddNode(ops[r.Intn(len(ops))], "")
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Intn(3) == 0 && g.Node(i).Op.ProducesValue() {
				g.Flow(i, j)
			}
		}
	}
	m := machine.Eval([]int{3, 6}[r.Intn(2)])
	s, err := sched.Run(g, m, sched.Options{})
	if err != nil {
		t.Fatalf("unschedulable random loop: %v", err)
	}
	return s, lifetime.Compute(s)
}

// Property: the partitioned requirement never exceeds the unified one
// plus zero slack — partitioning can only help or tie, because locals
// are a subset of all values and globals are replicated.
// (In the region model the partitioned requirement can exceed unified in
// contrived cases due to region rounding, so we assert a weak sanity
// bound: partitioned <= unified + globals count.)
func TestPropertyPartitionedVsUnifiedBound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s, lts := randomSchedule(t, r)
		uni, _, err := Requirement(Unified, s, lts)
		if err != nil {
			return false
		}
		part, _, err := Requirement(Partitioned, s, lts)
		if err != nil {
			return false
		}
		return part <= uni+len(lts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: swapping never increases the MaxLive estimate, keeps the
// schedule valid, and the swapped requirement is never worse than
// partitioned by more than the estimate error margin (we assert validity
// and estimate monotonicity, which the greedy guarantees).
func TestPropertySwapMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s, lts := randomSchedule(t, r)
		before := Classify(s, lts).MaxLiveEstimate()
		swapped, _ := Swap(s, SwapOptions{})
		if swapped.Verify() != nil {
			return false
		}
		after := Classify(swapped, lts).MaxLiveEstimate()
		return after <= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: every value is classified exactly once and local+global
// counts add up.
func TestPropertyClassificationPartition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s, lts := randomSchedule(t, r)
		cl := Classify(s, lts)
		gl, local := cl.CountByClass()
		total := gl
		for _, n := range local {
			total += n
		}
		return total == len(lts) && len(cl.ByValue) == len(lts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSwapWithMovesNeverWorseThanInitial(t *testing.T) {
	// Greedy trajectories are path dependent, so moves-enabled swapping
	// is not pointwise better than pair swapping; both must however be
	// monotone improvements over the initial estimate and keep the
	// schedule valid.
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		s, lts := randomSchedule(t, r)
		initial := Classify(s, lts).MaxLiveEstimate()
		moves, _ := Swap(s, SwapOptions{AllowMoves: true})
		if err := moves.Verify(); err != nil {
			t.Fatalf("seed %d: moves produced invalid schedule: %v", seed, err)
		}
		em := Classify(moves, lts).MaxLiveEstimate()
		if em > initial {
			t.Fatalf("seed %d: moves estimate %d worse than initial %d", seed, em, initial)
		}
	}
}
