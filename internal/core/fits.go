package core

import (
	"ncdrf/internal/lifetime"
	"ncdrf/internal/regalloc"
	"ncdrf/internal/sched"
)

// Fit returns a fit predicate for the model, with the signature expected
// by the spill package: it reports whether the schedule's values can be
// allocated in regs registers (per subfile, for the dual organizations)
// and returns the schedule actually used (rebalanced for Swapped).
func Fit(model Model) func(s *sched.Schedule, lts []lifetime.Lifetime, regs int) (*sched.Schedule, bool) {
	switch model {
	case Ideal:
		return func(s *sched.Schedule, _ []lifetime.Lifetime, _ int) (*sched.Schedule, bool) {
			return s, true
		}
	case Unified:
		return func(s *sched.Schedule, lts []lifetime.Lifetime, regs int) (*sched.Schedule, bool) {
			return s, regalloc.FitsIn(lts, s.II, regs)
		}
	case Partitioned:
		return func(s *sched.Schedule, lts []lifetime.Lifetime, regs int) (*sched.Schedule, bool) {
			return s, FitsDual(Classify(s, lts), regs)
		}
	case Swapped:
		return func(s *sched.Schedule, lts []lifetime.Lifetime, regs int) (*sched.Schedule, bool) {
			// Cheap path first: if the unswapped partition fits, accept.
			if FitsDual(Classify(s, lts), regs) {
				return s, true
			}
			swapped, _ := Swap(s, SwapOptions{})
			return swapped, FitsDual(Classify(swapped, lts), regs)
		}
	default:
		panic("core: Fit on unknown model")
	}
}
