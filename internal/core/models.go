package core

import (
	"fmt"

	"ncdrf/internal/lifetime"
	"ncdrf/internal/sched"
)

// Model enumerates the four register-file organizations the paper
// evaluates (section 5.2).
type Model int

const (
	// Ideal is an infinite register file: an upper bound on performance.
	Ideal Model = iota
	// Unified is a traditional unified register file; it also models the
	// consistent dual register file, whose subfiles replicate everything.
	Unified
	// Partitioned is the non-consistent dual register file without
	// operation swapping.
	Partitioned
	// Swapped is Partitioned plus the greedy swap pass.
	Swapped

	NumModels = 4
)

// Models lists all models in presentation order.
var Models = [...]Model{Ideal, Unified, Partitioned, Swapped}

// String returns the paper's model name.
func (m Model) String() string {
	switch m {
	case Ideal:
		return "ideal"
	case Unified:
		return "unified"
	case Partitioned:
		return "partitioned"
	case Swapped:
		return "swapped"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// ParseModel converts a model name back to its Model.
func ParseModel(s string) (Model, error) {
	for _, m := range Models {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("core: unknown model %q", s)
}

// Requirement returns the number of registers the model needs for the
// schedule (per subfile for the dual organizations, which is what the
// paper plots), and the possibly rebalanced schedule (identical to the
// input except for Swapped). Ideal always requires 0.
func Requirement(model Model, s *sched.Schedule, lts []lifetime.Lifetime) (int, *sched.Schedule, error) {
	switch model {
	case Ideal:
		return 0, s, nil
	case Unified:
		r, err := UnifiedRequirement(lts, s.II)
		return r, s, err
	case Partitioned:
		r, err := PartitionedRequirement(s, lts)
		return r, s, err
	case Swapped:
		swapped, _ := Swap(s, SwapOptions{})
		r, err := PartitionedRequirement(swapped, lts)
		return r, swapped, err
	default:
		return 0, nil, fmt.Errorf("core: unknown model %d", int(model))
	}
}
