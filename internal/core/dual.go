package core

import (
	"fmt"

	"ncdrf/internal/lifetime"
	"ncdrf/internal/regalloc"
	"ncdrf/internal/sched"
)

// DualAllocation is a register allocation onto a non-consistent dual (or
// generally multi-cluster) register file. Each subfile is split into a
// global region — identical specifiers in every subfile, holding the
// consistent copies — and a private local region, mirroring the paper's
// additive accounting (e.g. 13 global + 16 right-only = 29 registers in
// the right subfile of the worked example).
type DualAllocation struct {
	// GlobalRegs is the size of the replicated global region.
	GlobalRegs int
	// LocalRegs is the size of each cluster's private region.
	LocalRegs []int
	// Requirement is the size of the largest subfile: GlobalRegs plus
	// the largest local region. This is the number the paper reports.
	Requirement int
	// Global is the allocation of global values (shared specifiers).
	Global *regalloc.Allocation
	// Local holds each cluster's local-region allocation.
	Local []*regalloc.Allocation
}

// AllocateDual performs non-consistent dual register file allocation for
// an already classified schedule: First Fit wands-only allocation of the
// global region, then of each cluster's local region.
func AllocateDual(c *Classification) (*DualAllocation, error) {
	ga, err := regalloc.FirstFit(c.GlobalLts, c.II)
	if err != nil {
		return nil, fmt.Errorf("core: global region: %w", err)
	}
	da := &DualAllocation{
		GlobalRegs: ga.Registers,
		Global:     ga,
		LocalRegs:  make([]int, c.Clusters),
		Local:      make([]*regalloc.Allocation, c.Clusters),
	}
	for cluster := 0; cluster < c.Clusters; cluster++ {
		la, err := regalloc.FirstFit(c.LocalLts[cluster], c.II)
		if err != nil {
			return nil, fmt.Errorf("core: cluster %d region: %w", cluster, err)
		}
		da.Local[cluster] = la
		da.LocalRegs[cluster] = la.Registers
		if ga.Registers+la.Registers > da.Requirement {
			da.Requirement = ga.Registers + la.Registers
		}
	}
	return da, nil
}

// UnifiedRequirement allocates every value into a single rotating file —
// the paper's "unified" model, which also covers the consistent dual
// register file (both subfiles hold all values).
func UnifiedRequirement(lts []lifetime.Lifetime, ii int) (int, error) {
	a, err := regalloc.FirstFit(lts, ii)
	if err != nil {
		return 0, err
	}
	return a.Registers, nil
}

// PartitionedRequirement computes the non-consistent dual register file
// requirement of a schedule without swapping (the paper's "partitioned"
// model).
func PartitionedRequirement(s *sched.Schedule, lts []lifetime.Lifetime) (int, error) {
	da, err := AllocateDual(Classify(s, lts))
	if err != nil {
		return 0, err
	}
	return da.Requirement, nil
}

// FitsDual reports whether the classified values fit in subfiles of r
// registers each, using First Fit in both regions.
func FitsDual(c *Classification, r int) bool {
	ga, err := regalloc.FirstFit(c.GlobalLts, c.II)
	if err != nil || ga.Registers > r {
		return false
	}
	for cluster := 0; cluster < c.Clusters; cluster++ {
		if !regalloc.FitsIn(c.LocalLts[cluster], c.II, r-ga.Registers) {
			return false
		}
	}
	return true
}
