package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestSwapEstimatorMatchesClassify pins the buffer-reusing estimator
// against the allocating path it replaces: on random schedules — and on
// the intermediate cluster assignments the greedy loop actually probes,
// simulated by random unit swaps — the estimate must equal
// Classify(s, lts).MaxLiveEstimate() exactly, including when the same
// estimator instance is reused across mutations.
func TestSwapEstimatorMatchesClassify(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s, lts := randomSchedule(t, r)
		est := newSwapEstimator(s.Mach.NumClusters())
		for mut := 0; mut < 8; mut++ {
			if est.estimate(s, lts) != Classify(s, lts).MaxLiveEstimate() {
				return false
			}
			// Random same-kind cross-cluster swap, like the greedy pass.
			pairs := swapPairs(s)
			if len(pairs) == 0 {
				break
			}
			p := pairs[r.Intn(len(pairs))]
			s.FU[p[0]], s.FU[p[1]] = s.FU[p[1]], s.FU[p[0]]
		}
		return est.estimate(s, lts) == Classify(s, lts).MaxLiveEstimate()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSwapAllocationFree pins the satellite's point: one greedy step
// over a cluster machine must not scale its allocations with the
// candidate count (the estimator owns all scratch). A loose per-step
// bound catches a regression back to a fresh Classify per candidate,
// which allocates several times per candidate pair.
func TestSwapAllocationFree(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	s, lts := randomSchedule(t, r)
	if s.Mach.NumClusters() < 2 {
		t.Skip("random machine is single-cluster")
	}
	pairs := len(swapPairs(s))
	if pairs == 0 {
		t.Skip("no swap candidates")
	}
	est := newSwapEstimator(s.Mach.NumClusters())
	est.estimate(s, lts) // warm the buffers
	avg := testing.AllocsPerRun(20, func() {
		for _, p := range swapPairs(s) {
			s.FU[p[0]], s.FU[p[1]] = s.FU[p[1]], s.FU[p[0]]
			est.estimate(s, lts)
			s.FU[p[0]], s.FU[p[1]] = s.FU[p[1]], s.FU[p[0]]
		}
	})
	// swapPairs itself allocates its result slice; the estimates must
	// add nothing per candidate.
	if avg > 8 {
		t.Fatalf("allocations per step = %v over %d candidates; estimator is allocating per candidate", avg, pairs)
	}
}
