package core
