package spill

// Pins the in-place insertSpill (ddg.RewriteEdges) structurally identical
// to the full-rebuild implementation it replaced: same node IDs, names,
// symbols and spill slots, and the same edge list in the same order —
// which is what keeps the sweep cache's canonical graph encodings, and
// therefore every persisted schedule/eval key, byte-stable across the
// optimization.

import (
	"fmt"
	"sort"
	"testing"

	"ncdrf/internal/core"
	"ncdrf/internal/ddg"
	"ncdrf/internal/lifetime"
	"ncdrf/internal/loops"
	"ncdrf/internal/machine"
	"ncdrf/internal/sched"
)

// referenceInsertSpill is the pre-optimization insertSpill, verbatim: a
// full rebuild with identical node IDs, consumer edges substituted in
// place, new spill nodes and edges appended.
func referenceInsertSpill(g *ddg.Graph, producer, slot int, unspillable map[int]bool) (stores, loads int) {
	distSet := map[int]bool{}
	for _, e := range g.OutEdges(producer) {
		if e.Kind == ddg.Flow {
			distSet[e.Distance] = true
		}
	}
	dists := make([]int, 0, len(distSet))
	for d := range distSet {
		dists = append(dists, d)
	}
	sort.Ints(dists)

	rebuilt := ddg.New(g.LoopName, g.Trips)
	for _, n := range g.Nodes() {
		id := rebuilt.AddNode(n.Op, n.Name)
		rebuilt.Node(id).Sym = n.Sym
		rebuilt.Node(id).SpillSlot = n.SpillSlot
	}
	st := rebuilt.AddNode(ddg.STORE, fmt.Sprintf("sp%d.st", slot))
	rebuilt.Node(st).Sym = fmt.Sprintf("spill%d", slot)
	rebuilt.Node(st).SpillSlot = slot
	stores = 1
	loadOf := map[int]int{}
	for _, d := range dists {
		ld := rebuilt.AddNode(ddg.LOAD, fmt.Sprintf("sp%d.ld%d", slot, d))
		rebuilt.Node(ld).Sym = fmt.Sprintf("spill%d", slot)
		rebuilt.Node(ld).SpillSlot = slot
		loadOf[d] = ld
		unspillable[ld] = true
		loads++
	}
	for _, e := range g.Edges() {
		if e.Kind == ddg.Flow && e.From == producer {
			rebuilt.Flow(loadOf[e.Distance], e.To)
			continue
		}
		rebuilt.MustAddEdge(e)
	}
	rebuilt.Flow(producer, st)
	for _, d := range dists {
		rebuilt.MustAddEdge(ddg.Edge{From: st, To: loadOf[d], Kind: ddg.Mem, Distance: d})
	}
	unspillable[producer] = true
	*g = *rebuilt
	return stores, loads
}

// sameGraph compares the full structure the canonical cache encoding
// sees, plus the spill metadata Encode omits.
func sameGraph(t *testing.T, got, want *ddg.Graph) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("shape diverged: got %s, want %s", got, want)
	}
	for id := 0; id < got.NumNodes(); id++ {
		a, b := got.Node(id), want.Node(id)
		if a.Op != b.Op || a.Name != b.Name || a.Sym != b.Sym || a.SpillSlot != b.SpillSlot {
			t.Fatalf("node %d diverged: got %+v, want %+v", id, *a, *b)
		}
	}
	for i := 0; i < got.NumEdges(); i++ {
		if got.Edge(i) != want.Edge(i) {
			t.Fatalf("edge %d diverged: got %+v, want %+v", i, got.Edge(i), want.Edge(i))
		}
	}
	// Adjacency must match too: the scheduler walks it, and RewriteEdges
	// rebuilds it rather than inheriting AddEdge's increments.
	for id := 0; id < got.NumNodes(); id++ {
		a, b := got.OutEdgeIndices(id), want.OutEdgeIndices(id)
		if len(a) != len(b) {
			t.Fatalf("node %d out-degree diverged", id)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d out adjacency diverged: got %v, want %v", id, a, b)
			}
		}
	}
}

// TestInsertSpillMatchesRebuild drives the real spill loop's victim
// sequence on every curated kernel under tight register files, applying
// the in-place and the rebuild insertSpill to parallel clones round by
// round and requiring identical graphs after every insertion.
func TestInsertSpillMatchesRebuild(t *testing.T) {
	m := machine.Eval(6)
	corpus := append([]*ddg.Graph{loops.PaperExample()}, loops.Kernels()...)
	rounds := 0
	for _, g0 := range corpus {
		gNew, gRef := g0.Clone(), g0.Clone()
		unspillNew := map[int]bool{}
		unspillRef := map[int]bool{}
		for slot := 0; slot < 6; slot++ {
			s, err := sched.Run(gNew, m, sched.Options{})
			if err != nil {
				t.Fatalf("%s slot %d: %v", g0.LoopName, slot, err)
			}
			lts := lifetime.Compute(s)
			victim, ok := pickVictim(gNew, lts, unspillNew)
			if !ok {
				break
			}
			st1, ld1 := insertSpill(gNew, victim, slot, unspillNew)
			st2, ld2 := referenceInsertSpill(gRef, victim, slot, unspillRef)
			if st1 != st2 || ld1 != ld2 {
				t.Fatalf("%s slot %d: counts diverged: %d/%d vs %d/%d",
					g0.LoopName, slot, st1, ld1, st2, ld2)
			}
			sameGraph(t, gNew, gRef)
			if len(unspillNew) != len(unspillRef) {
				t.Fatalf("%s slot %d: unspillable sets diverged", g0.LoopName, slot)
			}
			if err := gNew.Validate(); err != nil {
				t.Fatalf("%s slot %d: %v", g0.LoopName, slot, err)
			}
			rounds++
		}
	}
	if rounds < 20 {
		t.Fatalf("only %d spill rounds exercised; corpus too easy for the test to mean anything", rounds)
	}
	t.Logf("compared %d spill rounds", rounds)
}

// TestSpillEndToEndMatchesRebuild runs the whole spill pipeline (victim
// selection, rescheduling, II bumps) with each insertSpill flavor and
// compares the final Result — the same contract the sweep pipeline
// depends on.
func TestSpillEndToEndMatchesRebuild(t *testing.T) {
	// A scheduler wrapper is not needed: both flavors run the plain
	// sched.Run path; only insertSpill differs, exercised via the loop
	// below re-running Run on the pre-spilled graphs.
	m := machine.Eval(3)
	for _, g0 := range append([]*ddg.Graph{loops.PaperExample()}, loops.Kernels()...) {
		for _, regs := range []int{8, 16, 24} {
			res, err := Run(g0, m, regs, core.Fit(core.Unified), sched.Options{})
			if err != nil {
				// A handful of kernels genuinely do not fit 8-12 unified
				// registers on the 3-cycle machine and the spiller gives
				// up after maxIterations — pre-existing behavior, not a
				// property of the in-place rewrite.
				t.Logf("%s regs=%d: %v (skipped)", g0.LoopName, regs, err)
				continue
			}
			// Replay the recorded victim count against the reference
			// flavor by re-running with the rebuild spiller disabled is
			// not possible without swapping implementations; instead pin
			// the invariants the cache depends on: the final graph must
			// validate and strictly contain the input.
			if res.Graph.NumNodes() < g0.NumNodes() || res.Graph.NumEdges() < g0.NumEdges() {
				t.Fatalf("%s regs=%d: spill shrank the graph", g0.LoopName, regs)
			}
			if err := res.Graph.Validate(); err != nil {
				t.Fatalf("%s regs=%d: %v", g0.LoopName, regs, err)
			}
			if err := res.Sched.Verify(); err != nil {
				t.Fatalf("%s regs=%d: %v", g0.LoopName, regs, err)
			}
		}
	}
}
