package spill

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"ncdrf/internal/core"
	"ncdrf/internal/ddg"
	"ncdrf/internal/lifetime"
	"ncdrf/internal/loops"
	"ncdrf/internal/machine"
	"ncdrf/internal/sched"
)

func TestNoSpillWhenItFits(t *testing.T) {
	g := loops.PaperExample()
	m := machine.Example()
	res, err := Run(g, m, 64, core.Fit(core.Unified), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SpilledValues != 0 || res.SpillStores != 0 || res.SpillLoads != 0 {
		t.Fatalf("unexpected spills: %+v", res)
	}
	if res.Sched.II != 1 {
		t.Fatalf("II = %d, want 1", res.Sched.II)
	}
}

func TestIdealNeverSpills(t *testing.T) {
	g := loops.PaperExample()
	res, err := Run(g, machine.Example(), 0, core.Fit(core.Ideal), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SpilledValues != 0 || res.Graph.NumNodes() != g.NumNodes() {
		t.Fatal("ideal model must not alter the graph")
	}
}

func TestSpillReducesUnifiedRequirement(t *testing.T) {
	// The example loop needs 42 unified registers; with 32 the spiller
	// must insert spill code until it fits.
	g := loops.PaperExample()
	m := machine.Example()
	res, err := Run(g, m, 32, core.Fit(core.Unified), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SpilledValues == 0 {
		t.Fatal("expected at least one spill")
	}
	if res.MemOps() <= 3 {
		t.Fatalf("MemOps = %d, want > 3 (spill traffic)", res.MemOps())
	}
	lts := lifetime.Compute(res.Sched)
	req, err := core.UnifiedRequirement(lts, res.Sched.II)
	if err != nil {
		t.Fatal(err)
	}
	if req > 32 {
		t.Fatalf("final requirement %d > 32", req)
	}
	if err := res.Sched.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := res.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSpillVictimIsLongestLifetime(t *testing.T) {
	// In the example loop the longest lifetime is L1 (13 cycles); the
	// first spill must target it: the rebuilt graph carries sp0 nodes
	// and L1's only flow successor is the spill store.
	g := loops.PaperExample()
	m := machine.Example()
	res, err := Run(g, m, 41, core.Fit(core.Unified), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SpilledValues < 1 {
		t.Fatal("no spill happened")
	}
	st := res.Graph.NodeByName("sp0.st")
	if st == nil {
		t.Fatal("missing spill store sp0.st")
	}
	l1 := res.Graph.NodeByName("L1")
	outs := res.Graph.OutEdges(l1.ID)
	for _, e := range outs {
		if e.Kind == ddg.Flow && e.To != st.ID {
			t.Fatalf("L1 still feeds %s directly", res.Graph.Node(e.To))
		}
	}
	ld := res.Graph.NodeByName("sp0.ld0")
	if ld == nil {
		t.Fatal("missing reload sp0.ld0")
	}
	// The reload must feed both of L1's original consumers.
	consumers := res.Graph.Consumers(ld.ID)
	if len(consumers) != 2 {
		t.Fatalf("reload consumers = %v, want M3 and A6", consumers)
	}
}

func TestSpillGroupsReloadsByDistance(t *testing.T) {
	// A value consumed at distances 0 and 2 needs two reloads.
	g := ddg.New("dist", 1)
	l := g.AddNode(ddg.LOAD, "L")
	a := g.AddNode(ddg.FADD, "A")
	b := g.AddNode(ddg.FMUL, "B")
	st := g.AddNode(ddg.STORE, "S")
	g.Flow(l, a)
	g.FlowD(l, b, 2)
	g.Flow(a, st)
	unspill := map[int]bool{}
	stores, loads := insertSpill(g, l, 0, unspill)
	if stores != 1 || loads != 2 {
		t.Fatalf("stores=%d loads=%d, want 1/2", stores, loads)
	}
	if g.NodeByName("sp0.ld0") == nil || g.NodeByName("sp0.ld2") == nil {
		t.Fatal("missing distance-grouped reloads")
	}
	// Mem edge distances must match consumption distances.
	for _, name := range []string{"sp0.ld0", "sp0.ld2"} {
		n := g.NodeByName(name)
		found := false
		for _, e := range g.InEdges(n.ID) {
			if e.Kind == ddg.Mem {
				found = true
				wantDist := 0
				if strings.HasSuffix(name, "ld2") {
					wantDist = 2
				}
				if e.Distance != wantDist {
					t.Fatalf("%s mem distance = %d, want %d", name, e.Distance, wantDist)
				}
			}
		}
		if !found {
			t.Fatalf("%s has no mem in-edge", name)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestIIBumpFallbackOnUnspillableLoop(t *testing.T) {
	// A dead value (no flow consumers) cannot be spilled; with fewer
	// registers than its MaxLive at II=1, only an II increase helps.
	g := ddg.New("dead", 1)
	g.AddNode(ddg.FMUL, "M")
	m := machine.Eval(6)
	res, err := Run(g, m, 3, core.Fit(core.Unified), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.IIBumps == 0 {
		t.Fatal("expected an II bump")
	}
	if res.SpilledValues != 0 {
		t.Fatal("dead value must not be spilled")
	}
	if res.Sched.II < 2 {
		t.Fatalf("II = %d, want >= 2", res.Sched.II)
	}
}

func TestSpillRecurrenceValue(t *testing.T) {
	// acc = acc@1 + v: spilling acc routes the recurrence through
	// memory; the schedule must remain valid (RecMII grows).
	g := ddg.New("acc", 1)
	l := g.AddNode(ddg.LOAD, "L")
	a := g.AddNode(ddg.FADD, "A")
	s7 := g.AddNode(ddg.STORE, "S")
	g.Flow(l, a)
	g.FlowD(a, a, 1)
	g.Flow(a, s7)
	unspill := map[int]bool{}
	insertSpill(g, a, 0, unspill)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	m := machine.Eval(3)
	s, err := sched.Run(g, m, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Recurrence through memory: add(3) -> store(1) -> load(1) -> add,
	// distance 1 => RecMII >= 5.
	if s.II < 5 {
		t.Fatalf("II = %d, want >= 5", s.II)
	}
}

func TestDualModelsSpillLess(t *testing.T) {
	// For the example loop with 32 registers: unified spills, the dual
	// organizations do not (29 and 23 <= 32).
	g := loops.PaperExample()
	m := machine.Example()
	uni, err := Run(g, m, 32, core.Fit(core.Unified), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	part, err := Run(g, m, 32, core.Fit(core.Partitioned), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	swp, err := Run(g, m, 32, core.Fit(core.Swapped), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if uni.SpilledValues == 0 {
		t.Fatal("unified should spill at 32 registers")
	}
	if part.SpilledValues != 0 || swp.SpilledValues != 0 {
		t.Fatalf("dual organizations must not spill at 32: part=%d swap=%d",
			part.SpilledValues, swp.SpilledValues)
	}
	// And with 23 registers only the swapped organization avoids spill.
	part23, err := Run(g, m, 23, core.Fit(core.Partitioned), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	swp23, err := Run(g, m, 23, core.Fit(core.Swapped), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if part23.SpilledValues == 0 {
		t.Fatal("partitioned should spill at 23 registers")
	}
	if swp23.SpilledValues != 0 {
		t.Fatal("swapped must fit in 23 registers without spill")
	}
}

func TestRunDoesNotMutateInput(t *testing.T) {
	g := loops.PaperExample()
	before := g.NumNodes()
	_, err := Run(g, machine.Example(), 16, core.Fit(core.Unified), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != before {
		t.Fatal("Run mutated the input graph")
	}
}

// TestRunSeededMatchesUnseeded feeds the precomputed base schedule into
// the spill loop and checks the outcome is indistinguishable from the
// self-scheduling path, across fitting, spilling and II-bump regimes.
func TestRunSeededMatchesUnseeded(t *testing.T) {
	g := loops.PaperExample()
	m := machine.Example()
	s, err := sched.Run(g, m, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	seed := &Seed{Sched: s, Lifetimes: lifetime.Compute(s)}
	for _, regs := range []int{0, 64, 32, 16, 8} {
		plain, err := Run(g, m, regs, core.Fit(core.Unified), sched.Options{})
		if err != nil {
			t.Fatalf("regs=%d: %v", regs, err)
		}
		seeded, err := RunSeeded(context.Background(), nil, g, m, regs, core.Fit(core.Unified), sched.Options{}, seed)
		if err != nil {
			t.Fatalf("regs=%d seeded: %v", regs, err)
		}
		if plain.Sched.II != seeded.Sched.II ||
			plain.SpilledValues != seeded.SpilledValues ||
			plain.SpillStores != seeded.SpillStores ||
			plain.SpillLoads != seeded.SpillLoads ||
			plain.IIBumps != seeded.IIBumps ||
			plain.Iterations != seeded.Iterations ||
			plain.MemOps() != seeded.MemOps() {
			t.Fatalf("regs=%d: seeded run diverged: plain=%+v seeded=%+v", regs, plain, seeded)
		}
		var a, b bytes.Buffer
		if err := plain.Graph.Encode(&a); err != nil {
			t.Fatal(err)
		}
		if err := seeded.Graph.Encode(&b); err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Fatalf("regs=%d: final graphs differ", regs)
		}
	}
}

// TestRunSeededSkipsSchedulerWhenFitting asserts the point of seeding:
// a loop that fits without spilling must not re-enter the scheduler at
// all, and the returned graph is the caller's own (no clone was taken).
func TestRunSeededSkipsSchedulerWhenFitting(t *testing.T) {
	g := loops.PaperExample()
	m := machine.Example()
	s, err := sched.Run(g, m, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	seed := &Seed{Sched: s, Lifetimes: lifetime.Compute(s)}
	counter := &countingScheduler{}
	res, err := RunSeeded(context.Background(), counter, g, m, 64, core.Fit(core.Unified), sched.Options{}, seed)
	if err != nil {
		t.Fatal(err)
	}
	if counter.calls != 0 {
		t.Fatalf("seeded fitting run made %d scheduler calls, want 0", counter.calls)
	}
	if res.Graph != g {
		t.Fatal("no-spill run should return the input graph, not a clone")
	}
	if res.Sched != s {
		t.Fatal("no-spill run should return the seed schedule")
	}
}

type countingScheduler struct{ calls int }

func (c *countingScheduler) Schedule(g *ddg.Graph, m *machine.Config, opts sched.Options) (*sched.Schedule, error) {
	c.calls++
	return sched.Run(g, m, opts)
}

// TestRunSeededCancellation checks the context is honoured between spill
// rounds: a pre-cancelled context stops the loop before any work.
func TestRunSeededCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := loops.PaperExample()
	_, err := RunSeeded(ctx, nil, g, machine.Example(), 16, core.Fit(core.Unified), sched.Options{}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
