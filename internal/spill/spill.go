// Package spill implements the paper's "naive" spiller (section 5.4):
// when a loop's register requirement exceeds the physical file, the value
// with the longest lifetime is spilled — a store after its producer and a
// reload before its consumers — the dependence graph is rebuilt, the loop
// is modulo-scheduled again and allocation is retried, until the loop
// fits. When no spillable value remains, the initiation interval is
// increased by one (the paper's first listed alternative) so the process
// always terminates.
package spill

import (
	"context"
	"fmt"
	"sort"

	"ncdrf/internal/ddg"
	"ncdrf/internal/lifetime"
	"ncdrf/internal/machine"
	"ncdrf/internal/sched"
)

// FitFunc decides whether a schedule fits in the given number of
// registers under some register-file model. It may return a rebalanced
// schedule (e.g. after swapping); otherwise it returns its input.
type FitFunc func(s *sched.Schedule, lts []lifetime.Lifetime, regs int) (*sched.Schedule, bool)

// Result describes the outcome of the spill loop for one loop.
type Result struct {
	// Sched is the final, fitting schedule (possibly rebalanced by the
	// fit function).
	Sched *sched.Schedule
	// Graph is the final dependence graph including spill code. When
	// nothing was spilled it is the caller's input graph itself (the
	// spill loop only clones once it has to mutate), so treat it as
	// read-only.
	Graph *ddg.Graph
	// Lifetimes are the value lifetimes of the final round's schedule.
	// They also hold for a swap-rebalanced Sched: lifetimes depend only
	// on issue cycles, which swapping preserves.
	Lifetimes []lifetime.Lifetime
	// SpilledValues is the number of values spilled.
	SpilledValues int
	// SpillStores and SpillLoads count inserted memory operations.
	SpillStores, SpillLoads int
	// IIBumps counts forced initiation-interval increases.
	IIBumps int
	// Iterations is the number of schedule/allocate rounds executed.
	Iterations int
}

// MemOps returns the final number of memory operations per iteration,
// including spill code.
func (r *Result) MemOps() int { return r.Graph.MemOps() }

// maxIterations bounds the spill loop; it is far beyond anything the
// corpus needs and converts algorithmic surprises into errors.
const maxIterations = 400

// Scheduler abstracts sched.Run so the spill loop can be driven through
// a shared schedule cache (internal/sweep). Implementations must return
// a schedule that stays valid when the caller mutates g afterwards, as
// the spill loop rewrites its working graph between rounds.
type Scheduler interface {
	Schedule(g *ddg.Graph, m *machine.Config, opts sched.Options) (*sched.Schedule, error)
}

// Seed carries precomputed base-stage artifacts (see internal/pipeline)
// into the spill loop: the schedule of the unmodified input graph and its
// lifetimes. A seeded run consumes them as its first round instead of
// re-entering the scheduler for work already done.
type Seed struct {
	Sched     *sched.Schedule
	Lifetimes []lifetime.Lifetime
}

// Run executes the spill loop on g. regs <= 0 means an unlimited
// register file: the first schedule is returned untouched.
func Run(g *ddg.Graph, m *machine.Config, regs int, fit FitFunc, opts sched.Options) (*Result, error) {
	//lint:allow ctxflow -- Run is the documented ctx-free wrapper; RunSeeded is the threaded form
	return RunSeeded(context.Background(), nil, g, m, regs, fit, opts, nil)
}

// RunSeeded is the full-control spill loop: scheduling requests route
// through sr (nil = sched.Run), and a non-nil seed supplies the first
// round's schedule and lifetimes — the caller guarantees they were
// computed from exactly (g, m, opts). The input graph is never mutated:
// the loop works on g directly until it must insert spill code, and only
// then switches to a private clone. ctx is checked between rounds, so a
// cancelled context stops a long spill search promptly.
func RunSeeded(ctx context.Context, sr Scheduler, g *ddg.Graph, m *machine.Config, regs int, fit FitFunc, opts sched.Options, seed *Seed) (*Result, error) {
	schedule := sched.Run
	if sr != nil {
		schedule = sr.Schedule
	}
	work, cloned := g, false
	defer func() {
		// A clone dies with this call; let a digest-memoizing scheduler
		// drop its per-graph bookkeeping instead of pinning it forever.
		if cloned {
			if f, ok := sr.(interface{ Forget(*ddg.Graph) }); ok {
				f.Forget(work)
			}
		}
	}()
	res := &Result{}
	unspillable := make(map[int]bool) // node IDs whose values may not be spilled again
	slot := 0

	for iter := 0; iter < maxIterations; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("spill: %s: %w", g.LoopName, err)
		}
		res.Iterations = iter + 1
		var s *sched.Schedule
		var lts []lifetime.Lifetime
		if iter == 0 && seed != nil {
			s, lts = seed.Sched, seed.Lifetimes
		} else {
			var err error
			s, err = schedule(work, m, opts)
			if err != nil {
				return nil, fmt.Errorf("spill: %w", err)
			}
			lts = lifetime.Compute(s)
		}
		if regs <= 0 {
			res.Sched, res.Graph, res.Lifetimes = s, work, lts
			return res, nil
		}
		if final, ok := fit(s, lts, regs); ok {
			res.Sched, res.Graph, res.Lifetimes = final, work, lts
			return res, nil
		}
		victim, ok := pickVictim(work, lts, unspillable)
		if !ok {
			// Everything is spilled and it still does not fit: relax
			// the schedule by forcing a larger II.
			res.IIBumps++
			if opts.MinII <= s.II {
				opts.MinII = s.II + 1
			} else {
				opts.MinII++
			}
			continue
		}
		if !cloned {
			work, cloned = g.Clone(), true
		}
		stores, loads := insertSpill(work, victim, slot, unspillable)
		slot++
		res.SpilledValues++
		res.SpillStores += stores
		res.SpillLoads += loads
	}
	return nil, fmt.Errorf("spill: loop %s did not converge in %d rounds (regs=%d)",
		g.LoopName, maxIterations, regs)
}

// pickVictim selects the spillable value with the longest lifetime, as
// the paper does ("the value with the highest lifetime, which in general
// will free a higher number of registers"). Ties break on the smaller
// node ID for determinism.
func pickVictim(g *ddg.Graph, lts []lifetime.Lifetime, unspillable map[int]bool) (int, bool) {
	best, bestLen := -1, 0
	for _, l := range lts {
		if unspillable[l.Node] {
			continue
		}
		if !hasFlowConsumer(g, l.Node) {
			continue // nothing to reload; spilling gains nothing
		}
		if l.Len() > bestLen {
			best, bestLen = l.Node, l.Len()
		}
	}
	return best, best >= 0
}

func hasFlowConsumer(g *ddg.Graph, node int) bool {
	for _, e := range g.OutEdges(node) {
		if e.Kind == ddg.Flow {
			return true
		}
	}
	return false
}

// insertSpill rewrites the graph in place: it appends a spill store plus
// one reload per distinct consumption distance, and redirects the
// producer's flow out-edges through the reloads. Each consumer edge is
// replaced in place — same position in the edge list — so operand order
// (which matters for subtraction and division semantics in the
// simulator) is preserved. The graph strictly grows (one store, >=1
// load, one flow edge and one mem edge per load), which is what keeps
// the sweep cache's per-graph digest memos sound across rounds; the node
// and edge append order is byte-identical to the full rebuild this
// replaced (pinned by TestInsertSpillMatchesRebuild), so cached
// schedule/eval keys do not move.
func insertSpill(g *ddg.Graph, producer, slot int, unspillable map[int]bool) (stores, loads int) {
	// Distinct consumption distances of the producer's value.
	distSet := map[int]bool{}
	for _, e := range g.OutEdges(producer) {
		if e.Kind == ddg.Flow {
			distSet[e.Distance] = true
		}
	}
	dists := make([]int, 0, len(distSet))
	for d := range distSet {
		dists = append(dists, d)
	}
	sort.Ints(dists)

	// Spill store fed by the producer, then one reload per distance.
	st := g.AddNode(ddg.STORE, fmt.Sprintf("sp%d.st", slot))
	g.Node(st).Sym = fmt.Sprintf("spill%d", slot)
	g.Node(st).SpillSlot = slot
	stores = 1
	loadOf := map[int]int{}
	for _, d := range dists {
		ld := g.AddNode(ddg.LOAD, fmt.Sprintf("sp%d.ld%d", slot, d))
		g.Node(ld).Sym = fmt.Sprintf("spill%d", slot)
		g.Node(ld).SpillSlot = slot
		loadOf[d] = ld
		unspillable[ld] = true
		loads++
	}
	g.RewriteEdges(func(edges []ddg.Edge) []ddg.Edge {
		// Substitute consumer edges in place: the consumer now reads the
		// reload's value at distance 0.
		for i, e := range edges {
			if e.Kind == ddg.Flow && e.From == producer {
				edges[i] = ddg.Edge{From: loadOf[e.Distance], To: e.To, Kind: ddg.Flow}
			}
		}
		// New dependences: producer feeds the store; each reload of
		// iteration i reads what the store wrote d iterations earlier.
		edges = append(edges, ddg.Edge{From: producer, To: st, Kind: ddg.Flow})
		for _, d := range dists {
			edges = append(edges, ddg.Edge{From: st, To: loadOf[d], Kind: ddg.Mem, Distance: d})
		}
		return edges
	})
	unspillable[producer] = true
	return stores, loads
}
