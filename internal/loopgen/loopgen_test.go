package loopgen

import (
	"testing"

	"ncdrf/internal/ddg"
	"ncdrf/internal/machine"
	"ncdrf/internal/sched"
)

func TestDeterministicForSeed(t *testing.T) {
	a := Generate(Params{Loops: 25, Seed: 7, RecurrenceProb: 0.3, ShareProb: 0.25})
	b := Generate(Params{Loops: 25, Seed: 7, RecurrenceProb: 0.3, ShareProb: 0.25})
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if a[i].NumNodes() != b[i].NumNodes() || a[i].NumEdges() != b[i].NumEdges() || a[i].Trips != b[i].Trips {
			t.Fatalf("loop %d differs between identical seeds", i)
		}
	}
	c := Generate(Params{Loops: 25, Seed: 8, RecurrenceProb: 0.3, ShareProb: 0.25})
	same := true
	for i := range a {
		if a[i].NumNodes() != c[i].NumNodes() || a[i].Trips != c[i].Trips {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestDefaultsShape(t *testing.T) {
	p := Defaults()
	if p.Loops != 795 {
		t.Fatalf("default corpus size = %d, want 795 (as in the paper)", p.Loops)
	}
	corpus := Generate(Params{}) // zero params use defaults
	if len(corpus) != 795 {
		t.Fatalf("generated %d loops", len(corpus))
	}
}

func TestAllValidAndWellFormed(t *testing.T) {
	corpus := Generate(Params{Loops: 120, Seed: 3, RecurrenceProb: 0.3, ShareProb: 0.25})
	for _, g := range corpus {
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", g.LoopName, err)
		}
		if g.Trips < 8 {
			t.Fatalf("%s: trips = %d", g.LoopName, g.Trips)
		}
		if g.NumNodes() < 4 || g.NumNodes() > 60 {
			t.Fatalf("%s: size %d out of range", g.LoopName, g.NumNodes())
		}
		// Stores never produce flow edges.
		for _, e := range g.Edges() {
			if e.Kind == ddg.Flow && g.Node(e.From).Op == ddg.STORE {
				t.Fatalf("%s: flow from store", g.LoopName)
			}
		}
	}
}

func TestOpMixRoughlyCalibrated(t *testing.T) {
	corpus := Generate(Params{Loops: 300, Seed: 11, RecurrenceProb: 0.3, ShareProb: 0.25})
	var loads, stores, arith, total int
	for _, g := range corpus {
		for _, n := range g.Nodes() {
			total++
			switch {
			case n.Op == ddg.LOAD:
				loads++
			case n.Op == ddg.STORE:
				stores++
			default:
				arith++
			}
		}
	}
	loadFrac := float64(loads) / float64(total)
	storeFrac := float64(stores) / float64(total)
	if loadFrac < 0.20 || loadFrac > 0.45 {
		t.Fatalf("load fraction = %.2f, want ~0.3", loadFrac)
	}
	if storeFrac < 0.04 || storeFrac > 0.20 {
		t.Fatalf("store fraction = %.2f, want ~0.1", storeFrac)
	}
	if arith == 0 {
		t.Fatal("no arithmetic generated")
	}
}

func TestRecurrenceFraction(t *testing.T) {
	corpus := Generate(Params{Loops: 400, Seed: 5, RecurrenceProb: 0.3, ShareProb: 0.25})
	withRec := 0
	for _, g := range corpus {
		for _, e := range g.Edges() {
			if e.Distance > 0 {
				withRec++
				break
			}
		}
	}
	frac := float64(withRec) / float64(len(corpus))
	if frac < 0.15 || frac > 0.45 {
		t.Fatalf("recurrence fraction = %.2f, want ~0.30", frac)
	}
}

func TestAllSchedulable(t *testing.T) {
	corpus := Generate(Params{Loops: 60, Seed: 21, RecurrenceProb: 0.3, ShareProb: 0.25})
	for _, g := range corpus {
		for _, m := range []*machine.Config{machine.Eval(3), machine.Eval(6)} {
			if _, err := sched.Run(g, m, sched.Options{}); err != nil {
				t.Fatalf("%s on %s: %v", g.LoopName, m.Name(), err)
			}
		}
	}
}

func TestTripsBiasTowardLargeLoops(t *testing.T) {
	corpus := Generate(Params{Loops: 600, Seed: 9, RecurrenceProb: 0.3, ShareProb: 0.25})
	var smallSum, smallN, largeSum, largeN float64
	for _, g := range corpus {
		if g.NumNodes() <= 10 {
			smallSum += float64(g.Trips)
			smallN++
		}
		if g.NumNodes() >= 24 {
			largeSum += float64(g.Trips)
			largeN++
		}
	}
	if smallN == 0 || largeN == 0 {
		t.Fatal("size mixture degenerate")
	}
	if largeSum/largeN <= smallSum/smallN {
		t.Fatalf("large loops must average more trips: small %.0f vs large %.0f",
			smallSum/smallN, largeSum/largeN)
	}
}
