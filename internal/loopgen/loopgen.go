// Package loopgen generates a synthetic corpus of floating-point inner
// loops standing in for the paper's 795 Perfect Club loops (section 5.1).
// Everything the experiments consume from a benchmark is its
// data-dependence graph and trip count, so the generator is calibrated on
// the distributions that drive register pressure:
//
//   - loop size: a mixture of small expression loops, medium kernels and
//     large unrolled/fused bodies;
//   - operation mix: memory-heavy scientific code (roughly a third loads,
//     a tenth stores) dominated by multiply/add chains with occasional
//     divisions and conversions;
//   - single-use values: most register instances are consumed exactly
//     once (the property the paper builds on), with a minority of shared
//     operands;
//   - recurrences: a fraction of loops carry accumulator or lagged
//     recurrences, which bound the achievable II;
//   - trip counts: heavy-tailed, with larger loop bodies biased toward
//     larger trip counts so that high-pressure loops dominate dynamic
//     time, as the paper reports (Figure 7 vs Figure 6, Table 1).
//
// The generator is fully deterministic for a given seed.
package loopgen

import (
	"fmt"
	"math"
	"math/rand"

	"ncdrf/internal/ddg"
)

// Params controls corpus generation. The zero value is replaced by
// Defaults().
type Params struct {
	// Loops is the corpus size (the paper uses 795).
	Loops int
	// Seed makes the corpus reproducible.
	Seed int64
	// RecurrenceProb is the fraction of loops carrying a recurrence.
	RecurrenceProb float64
	// ShareProb is the probability that an operand reuses an older value
	// instead of the most recent single-use candidate.
	ShareProb float64
}

// Defaults returns the calibrated parameters used by the reproduction.
func Defaults() Params {
	return Params{
		Loops:          795,
		Seed:           1995, // HPCA'95
		RecurrenceProb: 0.30,
		ShareProb:      0.30,
	}
}

// Generate builds the corpus. Every graph validates and is schedulable on
// any machine with at least one unit of each kind.
func Generate(p Params) []*ddg.Graph {
	if p.Loops <= 0 {
		p = Defaults()
	}
	r := rand.New(rand.NewSource(p.Seed))
	out := make([]*ddg.Graph, 0, p.Loops)
	for i := 0; i < p.Loops; i++ {
		out = append(out, genLoop(r, p, i))
	}
	return out
}

// sizeClass draws the loop-body size. Calibrated mixture: many small
// loops, a tail of large fused/unrolled bodies that carry most of the
// register pressure.
func sizeClass(r *rand.Rand) int {
	switch x := r.Float64(); {
	case x < 0.40: // small expression loops
		return 4 + r.Intn(7) // 4..10
	case x < 0.80: // medium kernels
		return 10 + r.Intn(17) // 10..26
	default: // large unrolled bodies
		return 26 + r.Intn(31) // 26..56
	}
}

// trips draws a trip count, biased upward for large bodies so that
// high-pressure loops dominate dynamic time (the paper's Table 1 reports
// that the loops needing >64 registers on P2L6 are 10.6% of the loops
// but 49.1% of the cycles).
func trips(r *rand.Rand, size int) int64 {
	// Log-normal-ish: exp(N(mu, sigma)) with mu growing with size.
	mu := 3.3 + 3.8*math.Min(1, float64(size)/45.0)
	sigma := 1.0
	v := math.Exp(mu + sigma*r.NormFloat64())
	if v < 8 {
		v = 8
	}
	if v > 200000 {
		v = 200000
	}
	return int64(v)
}

// genLoop builds one synthetic loop.
func genLoop(r *rand.Rand, p Params, idx int) *ddg.Graph {
	size := sizeClass(r)
	g := ddg.New(fmt.Sprintf("syn%04d", idx), 1)

	// Operation budget: scientific mix, compute-leaning so that the
	// floating-point pipelines (not the memory ports) bound most loops.
	nLoads := 1 + int(float64(size)*0.26)
	nStores := int(float64(size) * 0.08)
	if nStores < 1 && r.Float64() < 0.8 {
		nStores = 1
	}
	nArith := size - nLoads - nStores
	if nArith < 1 {
		nArith = 1
	}

	// values tracks produced-but-unconsumed candidates (single-use bias);
	// all holds every producer for the sharing path.
	var fresh, all []int
	for i := 0; i < nLoads; i++ {
		id := g.AddNode(ddg.LOAD, "")
		g.Node(id).Sym = "x"
		fresh = append(fresh, id)
		all = append(all, id)
	}

	pickOperand := func() int {
		if len(fresh) > 0 && r.Float64() >= p.ShareProb {
			// Consume the oldest fresh value (expression-tree style).
			id := fresh[0]
			fresh = fresh[1:]
			return id
		}
		return all[r.Intn(len(all))]
	}

	for i := 0; i < nArith; i++ {
		op := arithOp(r)
		id := g.AddNode(op, "")
		nOperands := 1
		if op != ddg.CONV {
			// Binary ops sometimes take an invariant/literal operand,
			// modeled as a single dependence.
			nOperands = 1 + r.Intn(2)
		}
		for k := 0; k < nOperands && len(all) > 0; k++ {
			from := pickOperand()
			g.Flow(from, id)
		}
		fresh = append(fresh, id)
		all = append(all, id)
	}

	// Stores consume the freshest values (loop results).
	for i := 0; i < nStores; i++ {
		id := g.AddNode(ddg.STORE, "")
		g.Node(id).Sym = "y"
		from := pickOperand()
		g.Flow(from, id)
	}

	// Any remaining fresh arithmetic values stay dead (legal: they model
	// values consumed outside the steady state); bound their number by
	// storing a few more when the loop got very leafy.
	if len(fresh) > size/2 {
		id := g.AddNode(ddg.STORE, "")
		g.Node(id).Sym = "y"
		g.Flow(fresh[len(fresh)-1], id)
	}

	// Recurrences: turn an arithmetic value into an accumulator or a
	// lagged cross-recurrence.
	if r.Float64() < p.RecurrenceProb {
		arith := arithNodes(g)
		if len(arith) > 0 {
			u := arith[r.Intn(len(arith))]
			if r.Float64() < 0.7 {
				g.FlowD(u, u, 1) // accumulator
			} else {
				v := arith[r.Intn(len(arith))]
				lo, hi := u, v
				if lo > hi {
					lo, hi = hi, lo
				}
				if lo != hi {
					g.FlowD(hi, lo, 1+r.Intn(2)) // lagged recurrence
				} else {
					g.FlowD(u, u, 1)
				}
			}
		}
	}

	g.Trips = trips(r, size)
	if err := g.Validate(); err != nil {
		// By construction impossible; fail loudly if the generator
		// regresses.
		panic(fmt.Sprintf("loopgen: %s invalid: %v", g.LoopName, err))
	}
	return g
}

// arithOp draws an arithmetic opcode with a scientific-code mix.
func arithOp(r *rand.Rand) ddg.OpCode {
	switch x := r.Float64(); {
	case x < 0.42:
		return ddg.FADD
	case x < 0.55:
		return ddg.FSUB
	case x < 0.92:
		return ddg.FMUL
	case x < 0.97:
		return ddg.FDIV
	default:
		return ddg.CONV
	}
}

func arithNodes(g *ddg.Graph) []int {
	var out []int
	for _, n := range g.Nodes() {
		switch n.Op {
		case ddg.FADD, ddg.FSUB, ddg.FMUL, ddg.FDIV, ddg.CONV:
			out = append(out, n.ID)
		}
	}
	return out
}
