// Package store is a content-addressed, persistent artifact store: the
// disk tier below internal/sweep's in-memory single-flight caches. It
// maps (stage, key) pairs — the key being a hex digest derived from the
// same content triple the in-memory caches use — to opaque artifact
// payloads, so a second process evaluating the same problems reads the
// first one's results instead of recomputing them.
//
// # Layout and versioning
//
// Artifacts live under <dir>/v<FormatVersion>/<stage>/<key>. The format
// version appears both in the path and in every file's header, so a
// format change (container or artifact codec) invalidates the whole
// store cleanly: a new binary simply reads and writes a fresh version
// directory and never misinterprets old bytes.
//
// # Durability and concurrency
//
// Every file is self-verifying: a one-line header carries the payload
// length and its SHA-256, checked on read. Writes go to a temp file in
// the destination directory and are renamed into place, so readers —
// including concurrent processes sharing the directory — observe either
// no file or a complete one, never a torn write. Concurrent writers of
// the same key race benignly: artifacts are deterministic functions of
// their key, so whichever rename wins installs identical content.
//
// # Failure policy
//
// The store is a cache, not a system of record: every failure (missing
// file, truncation, corruption, version mismatch, unreadable directory)
// is reported as a miss or counted fault, never an error that stops the
// caller — the engine recomputes and tries to rewrite. Only Open fails
// hard, so a mistyped -cache-dir surfaces immediately.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"
)

// FormatVersion stamps the on-disk layout and the artifact codecs
// (internal/pipeline's Encode/Decode formats). Bump it whenever either
// changes shape; old artifacts are then invisible rather than
// misdecoded.
const FormatVersion = 1

// magic leads every artifact file's header line.
const magic = "ncdrf-artifact"

// Stats is a snapshot of the store's counters.
type Stats struct {
	// Hits counts Get calls that returned a verified payload.
	Hits uint64
	// Misses counts Get calls that found no artifact.
	Misses uint64
	// Writes counts artifacts successfully installed by Put.
	Writes uint64
	// Faults counts damaged or undecodable artifacts and failed writes:
	// truncation, checksum or version mismatches, I/O errors, and
	// payloads the caller reported via Fault. Faulty files are treated
	// as misses and recomputed.
	Faults uint64
}

// Store is a content-addressed artifact directory. It is safe for
// concurrent use by multiple goroutines and multiple processes sharing
// the same directory.
type Store struct {
	root string // <dir>/v<FormatVersion>

	hits, misses, writes, faults atomic.Uint64
}

// Open creates (if needed) and opens the version directory of an
// artifact store rooted at dir. It also sweeps stale temp files left
// behind by writers that were interrupted between CreateTemp and the
// final rename, so a long-lived shared directory does not accumulate
// dead .tmp-* litter.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	root := filepath.Join(dir, fmt.Sprintf("v%d", FormatVersion))
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	sweepTemps(root)
	return &Store{root: root}, nil
}

// tempMaxAge is how old a .tmp-* file must be before Open reclaims it.
// The grace period keeps the sweep from racing a live writer in another
// process; real writes last milliseconds, so an hour is conservative.
const tempMaxAge = time.Hour

// sweepTemps best-effort removes stale temp files under every stage
// directory. Failures are ignored: leftover temps cost disk space, not
// correctness.
func sweepTemps(root string) {
	stages, err := os.ReadDir(root)
	if err != nil {
		return
	}
	//lint:allow wallclock -- stale-temp cleanup is wall-clock policy; never key or artifact material
	cutoff := time.Now().Add(-tempMaxAge)
	for _, st := range stages {
		if !st.IsDir() {
			continue
		}
		stageDir := filepath.Join(root, st.Name())
		files, err := os.ReadDir(stageDir)
		if err != nil {
			continue
		}
		for _, f := range files {
			if !strings.HasPrefix(f.Name(), ".tmp-") {
				continue
			}
			if info, err := f.Info(); err == nil && info.ModTime().Before(cutoff) {
				os.Remove(filepath.Join(stageDir, f.Name()))
			}
		}
	}
}

// Dir returns the store's version directory.
func (s *Store) Dir() string { return s.root }

// path maps (stage, key) to the artifact file. Stage names are fixed
// identifiers chosen by the engine and keys are hex digests, so both are
// safe path components by construction.
func (s *Store) path(stage, key string) string {
	return filepath.Join(s.root, stage, key)
}

// headerLine renders the self-verification line (sans newline) that
// leads every artifact. It is the one formatter for the header: the
// write side (header) and the read side (verifyPayload) both call it,
// so the two can never drift apart — a drift would make every fresh
// Put fail its next Get, and Get's damage removal would then delete
// the whole cache instead of merely missing.
func headerLine(version int, stage string, payload []byte) string {
	sum := sha256.Sum256(payload)
	return fmt.Sprintf("%s v%d %s %d %s",
		magic, version, stage, len(payload), hex.EncodeToString(sum[:]))
}

// header renders the header line Put writes.
func header(stage string, payload []byte) string {
	return headerLine(FormatVersion, stage, payload) + "\n"
}

// verifyPayload checks data's header against (version, stage) and
// returns the framed payload. It is the one verification routine: Get
// uses it with the current FormatVersion, Scan with whatever version
// directory a file was found under.
func verifyPayload(data []byte, version int, stage string) ([]byte, bool) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, false
	}
	payload := data[nl+1:]
	if string(data[:nl]) != headerLine(version, stage, payload) {
		return nil, false
	}
	return payload, true
}

// Get returns the verified payload stored under (stage, key), or false
// when it is absent or damaged. Damage (truncation, corruption, version
// or stage mismatch) counts as a fault and reads as a miss: the caller
// recomputes. A verified-damaged file is best-effort removed — leaving
// it on disk would fault again on every future run, a permanent
// fault-loop — so the recompute's Put installs a clean one. The
// removal can race another process repairing the same key (its fresh
// artifact is deleted and reads as a miss next time); that is within
// the store's best-effort contract and costs one recompute.
func (s *Store) Get(stage, key string) ([]byte, bool) {
	path := s.path(stage, key)
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			s.misses.Add(1)
		} else {
			s.faults.Add(1)
		}
		return nil, false
	}
	payload, ok := verifyPayload(data, FormatVersion, stage)
	if !ok {
		os.Remove(path)
		s.faults.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return payload, true
}

// Put installs payload under (stage, key) via a temp file and an atomic
// rename. Errors are counted as faults and returned for observability,
// but callers treat the store as best-effort and keep going.
func (s *Store) Put(stage, key string, payload []byte) error {
	dir := filepath.Join(s.root, stage)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		s.faults.Add(1)
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".tmp-"+key+"-*")
	if err != nil {
		s.faults.Add(1)
		return fmt.Errorf("store: %w", err)
	}
	_, err = tmp.WriteString(header(stage, payload))
	if err == nil {
		_, err = tmp.Write(payload)
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), s.path(stage, key))
	}
	if err != nil {
		os.Remove(tmp.Name())
		s.faults.Add(1)
		return fmt.Errorf("store: %w", err)
	}
	s.writes.Add(1)
	return nil
}

// Fault records an artifact that passed container verification but
// failed the caller's decoding — e.g. an artifact written by a buggy
// build. The caller recomputes; the next Put overwrites the bad file.
func (s *Store) Fault() { s.faults.Add(1) }

// Discard is Fault plus best-effort removal of (stage, key)'s file: for
// decode-level damage, where the container verifies but the payload is
// undecodable, so without removal the artifact would fault again on
// every future run instead of letting the recompute's Put replace it.
func (s *Store) Discard(stage, key string) {
	s.faults.Add(1)
	os.Remove(s.path(stage, key))
}

// Stats returns a snapshot of the store counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:   s.hits.Load(),
		Misses: s.misses.Load(),
		Writes: s.writes.Load(),
		Faults: s.faults.Load(),
	}
}
