package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// buildDirtyStore populates dir with: two live artifacts, one damaged
// artifact, one stale-version artifact, one leftover temp file and one
// foreign file. It returns the store for follow-up reads.
func buildDirtyStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"live-a", "live-b"} {
		if err := s.Put("sched", k, []byte("payload of "+k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put("eval", "broken", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(s.Dir(), "eval", "broken"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	staleDir := filepath.Join(dir, fmt.Sprintf("v%d", FormatVersion+1), "sched")
	if err := os.MkdirAll(staleDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(staleDir, "old"), []byte("from another format"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(s.Dir(), "sched", ".tmp-dead-1"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("not ours"), 0o644); err != nil {
		t.Fatal(err)
	}
	return s
}

func countBy(entries []EntryInfo, pred func(EntryInfo) bool) int {
	n := 0
	for _, e := range entries {
		if pred(e) {
			n++
		}
	}
	return n
}

func TestScanEnumeratesEverything(t *testing.T) {
	dir := t.TempDir()
	buildDirtyStore(t, dir)
	sum, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Entries) != 4 {
		t.Fatalf("scanned %d entries, want 4: %+v", len(sum.Entries), sum.Entries)
	}
	if n := countBy(sum.Entries, func(e EntryInfo) bool { return e.Damaged }); n != 1 {
		t.Fatalf("damaged count = %d, want 1", n)
	}
	if n := countBy(sum.Entries, func(e EntryInfo) bool { return e.Version != FormatVersion }); n != 1 {
		t.Fatalf("stale-version count = %d, want 1", n)
	}
	if sum.Temps != 1 || sum.Foreign != 1 {
		t.Fatalf("temps = %d, foreign = %d, want 1, 1", sum.Temps, sum.Foreign)
	}
	for _, e := range sum.Entries {
		if e.Size <= 0 || e.ModTime.IsZero() {
			t.Fatalf("degenerate entry: %+v", e)
		}
	}
	// A missing directory is an error (a mistyped path must surface),
	// unlike the store's usual fault-tolerant reads.
	if _, err := Scan(filepath.Join(dir, "no-such")); err == nil {
		t.Fatal("scan of missing dir must error")
	}
}

func TestGCRemovesDeadKeepsLive(t *testing.T) {
	dir := t.TempDir()
	s := buildDirtyStore(t, dir)
	sum, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Dry run first: counts but does not touch the directory.
	res, err := sum.GC(GCOptions{DryRun: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.StaleVersions != 1 || res.Damaged != 1 || res.Temps != 1 || res.Expired != 0 || res.Kept != 2 {
		t.Fatalf("dry-run result wrong: %+v", res)
	}
	if again, _ := Scan(dir); len(again.Entries) != len(sum.Entries) || again.Temps != sum.Temps {
		t.Fatal("dry run modified the directory")
	}

	res, err = sum.GC(GCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Removed() != 3 || res.Kept != 2 || res.Bytes <= 0 {
		t.Fatalf("gc result wrong: %+v", res)
	}
	after, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Entries) != 2 || after.Temps != 0 {
		t.Fatalf("gc left %d entries, %d temps", len(after.Entries), after.Temps)
	}
	// The emptied stale version directory is gone; the foreign file and
	// the live artifacts are untouched.
	if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf("v%d", FormatVersion+1))); !os.IsNotExist(err) {
		t.Fatalf("stale version dir survived: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "README")); err != nil {
		t.Fatalf("foreign file touched: %v", err)
	}
	for _, k := range []string{"live-a", "live-b"} {
		if _, ok := s.Get("sched", k); !ok {
			t.Fatalf("live artifact %s lost", k)
		}
	}
}

func TestGCMaxAgeExpiresIntactEntries(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"old", "new"} {
		if err := s.Put("sched", k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	past := time.Now().Add(-48 * time.Hour)
	if err := os.Chtimes(filepath.Join(s.Dir(), "sched", "old"), past, past); err != nil {
		t.Fatal(err)
	}
	sum, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sum.GC(GCOptions{MaxAge: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if res.Expired != 1 || res.Kept != 1 {
		t.Fatalf("max-age result wrong: %+v", res)
	}
	if _, ok := s.Get("sched", "old"); ok {
		t.Fatal("expired artifact survived")
	}
	if _, ok := s.Get("sched", "new"); !ok {
		t.Fatal("fresh artifact expired")
	}
}
