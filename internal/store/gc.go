package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// This file is the maintenance surface of the artifact store: the
// enumeration and garbage-collection APIs behind `ncdrf cache`. Scan
// walks every version directory — not just the current one — so a
// long-lived shared cache directory can be inspected and pruned after
// format bumps, interrupted writers and damaged files, without
// disturbing the live entries the engine is still serving.

// EntryInfo describes one artifact file found by Scan.
type EntryInfo struct {
	// Version is the version directory the file lives under; entries with
	// Version != FormatVersion are stale — the current binary never reads
	// them.
	Version int
	// Stage and Key locate the artifact inside its version directory.
	Stage, Key string
	// Size is the file size in bytes (header + payload).
	Size int64
	// ModTime is the file's modification time (its install time: rename
	// preserves the temp file's write stamp).
	ModTime time.Time
	// Damaged reports that a current-version file failed
	// self-verification: truncation, corruption, or a header that
	// disagrees with its location. Stale-version files are never marked
	// damaged — their format may legitimately differ, and GC removes
	// them wholesale anyway.
	Damaged bool
}

// Summary is the outcome of a directory scan.
type Summary struct {
	// Dir is the scanned artifact directory (the -cache-dir root, not a
	// version directory).
	Dir string
	// Entries lists every artifact file across all version directories,
	// sorted by (version, stage, key) for stable rendering.
	Entries []EntryInfo
	// Temps counts leftover .tmp-* files from interrupted writers, and
	// TempBytes their total size.
	Temps     int
	TempBytes int64
	// Foreign counts directory entries that are not part of the store
	// layout (neither a v<N> directory, a stage directory, nor an
	// artifact or temp file). GC never touches them.
	Foreign int

	temps []string // absolute paths, for GC
}

// parseVersionDir extracts N from a "vN" directory name.
func parseVersionDir(name string) (int, bool) {
	if !strings.HasPrefix(name, "v") {
		return 0, false
	}
	v, err := strconv.Atoi(name[1:])
	if err != nil || v < 0 {
		return 0, false
	}
	return v, true
}

// Scan enumerates an artifact directory: every version, stage and
// artifact file, with each file re-verified against its header (so the
// scan reads every byte — proportional to the store size, fine for a
// maintenance command). Scan never modifies the directory.
func Scan(dir string) (*Summary, error) {
	tops, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	sum := &Summary{Dir: dir}
	for _, top := range tops {
		v, ok := parseVersionDir(top.Name())
		if !ok || !top.IsDir() {
			sum.Foreign++
			continue
		}
		vdir := filepath.Join(dir, top.Name())
		stages, err := os.ReadDir(vdir)
		if err != nil {
			// A directory that vanished mid-scan is a concurrent GC or
			// writer — skip it. Anything else (permissions) must surface:
			// reporting a populated-but-unreadable store as "no artifacts"
			// invites the operator to delete a valid cache.
			if os.IsNotExist(err) {
				continue
			}
			return nil, fmt.Errorf("store: %w", err)
		}
		for _, st := range stages {
			if !st.IsDir() {
				sum.Foreign++
				continue
			}
			stageDir := filepath.Join(vdir, st.Name())
			files, err := os.ReadDir(stageDir)
			if err != nil {
				if os.IsNotExist(err) {
					continue
				}
				return nil, fmt.Errorf("store: %w", err)
			}
			for _, f := range files {
				info, err := f.Info()
				if err != nil {
					continue // vanished mid-scan: a concurrent GC or writer
				}
				if strings.HasPrefix(f.Name(), ".tmp-") {
					sum.Temps++
					sum.TempBytes += info.Size()
					sum.temps = append(sum.temps, filepath.Join(stageDir, f.Name()))
					continue
				}
				e := EntryInfo{
					Version: v, Stage: st.Name(), Key: f.Name(),
					Size: info.Size(), ModTime: info.ModTime(),
				}
				if v == FormatVersion {
					data, err := os.ReadFile(filepath.Join(stageDir, f.Name()))
					if err != nil {
						e.Damaged = true
					} else if _, ok := verifyPayload(data, v, st.Name()); !ok {
						e.Damaged = true
					}
				}
				sum.Entries = append(sum.Entries, e)
			}
		}
	}
	sort.Slice(sum.Entries, func(i, j int) bool {
		a, b := sum.Entries[i], sum.Entries[j]
		if a.Version != b.Version {
			return a.Version < b.Version
		}
		if a.Stage != b.Stage {
			return a.Stage < b.Stage
		}
		return a.Key < b.Key
	})
	return sum, nil
}

// GCOptions selects what GC removes beyond the always-removed classes
// (stale versions, damaged files, leftover temps).
type GCOptions struct {
	// MaxAge, when positive, additionally removes intact current-version
	// artifacts older than this. Zero keeps every age.
	MaxAge time.Duration
	// DryRun reports what would be removed without removing anything.
	DryRun bool
}

// GCResult reports what GC removed (or, under DryRun, would remove),
// by reason, plus the live entries it left untouched.
type GCResult struct {
	// StaleVersions, Damaged and Expired count removed artifact files by
	// reason; Temps counts removed leftover temp files.
	StaleVersions, Damaged, Expired, Temps int
	// Bytes is the total size of everything removed.
	Bytes int64
	// Kept counts intact current-version entries left in place.
	Kept int
}

// Removed returns the total number of files removed.
func (r GCResult) Removed() int {
	return r.StaleVersions + r.Damaged + r.Expired + r.Temps
}

// GC prunes the scanned directory: artifacts under stale version
// directories (the current binary never reads them), damaged files
// (which would otherwise fault forever), leftover temp files, and —
// with MaxAge — intact entries older than the cutoff. Removal is
// best-effort and safe against concurrent engines sharing the
// directory: a removed live entry is indistinguishable from a miss and
// is simply recomputed; a file that vanished since the scan is skipped
// silently. Emptied stage and version directories are removed too.
func (s *Summary) GC(opt GCOptions) (*GCResult, error) {
	res := &GCResult{}
	cutoff := time.Time{}
	if opt.MaxAge > 0 {
		//lint:allow wallclock -- -max-age expiry is wall-clock policy; never key or artifact material
		cutoff = time.Now().Add(-opt.MaxAge)
	}
	remove := func(path string, size int64, reason *int) {
		if !opt.DryRun {
			// Count only what actually left the disk, so the summary the
			// operator reads is truthful: a file os.Remove could not
			// delete (permissions, read-only mount) is still there and
			// will be re-reported by the next scan. A file that vanished
			// on its own since the scan counts as removed — it is gone
			// either way.
			if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
				return
			}
		}
		*reason++
		res.Bytes += size
	}
	dirs := map[string]bool{}
	for _, e := range s.Entries {
		path := filepath.Join(s.Dir, fmt.Sprintf("v%d", e.Version), e.Stage, e.Key)
		dirs[filepath.Dir(path)] = true
		switch {
		case e.Version != FormatVersion:
			remove(path, e.Size, &res.StaleVersions)
		case e.Damaged:
			remove(path, e.Size, &res.Damaged)
		case !cutoff.IsZero() && e.ModTime.Before(cutoff):
			remove(path, e.Size, &res.Expired)
		default:
			res.Kept++
		}
	}
	for _, path := range s.temps {
		dirs[filepath.Dir(path)] = true
		info, err := os.Stat(path)
		if err != nil {
			continue
		}
		remove(path, info.Size(), &res.Temps)
	}
	if !opt.DryRun {
		// Drop directories the pruning emptied: stage dirs first, then
		// their version dirs. os.Remove refuses non-empty directories, so
		// live content is never at risk.
		for dir := range dirs {
			if os.Remove(dir) == nil {
				os.Remove(filepath.Dir(dir))
			}
		}
	}
	return res, nil
}
