package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func openT(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openT(t)
	payload := []byte("machine eval-L3\nloop daxpy 100\n")
	if err := s.Put("sched", "00ff", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("sched", "00ff")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("round trip failed: %q %v", got, ok)
	}
	// Stage namespaces are separate.
	if _, ok := s.Get("eval", "00ff"); ok {
		t.Fatal("artifact leaked across stages")
	}
	// Overwrite wins.
	if err := s.Put("sched", "00ff", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("sched", "00ff"); !ok || string(got) != "v2" {
		t.Fatalf("overwrite lost: %q %v", got, ok)
	}
	st := s.Stats()
	if st.Writes != 2 || st.Hits != 2 || st.Misses != 1 || st.Faults != 0 {
		t.Fatalf("unexpected stats: %+v", st)
	}
	// Empty payloads are legal artifacts (none exist today, but the
	// container must not confuse empty with missing).
	if err := s.Put("sched", "empty", nil); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("sched", "empty"); !ok || len(got) != 0 {
		t.Fatalf("empty payload mishandled: %q %v", got, ok)
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("empty dir must error")
	}
}

func TestVersionIsolation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("sched", "k", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// A future format version must not see v1 artifacts: its version
	// directory is disjoint by construction.
	future := filepath.Join(dir, fmt.Sprintf("v%d", FormatVersion+1))
	if _, err := os.Stat(future); !os.IsNotExist(err) {
		t.Fatalf("future version dir unexpectedly exists: %v", err)
	}
	if !strings.HasSuffix(s.Dir(), fmt.Sprintf("v%d", FormatVersion)) {
		t.Fatalf("store rooted at %q, want a v%d directory", s.Dir(), FormatVersion)
	}
}

// TestDamageReadsAsMiss covers the recovery contract: truncated,
// corrupted, version-mismatched and header-less files read as misses
// (with a fault counted), never as payloads and never as crashes.
func TestDamageReadsAsMiss(t *testing.T) {
	payload := []byte("some artifact payload, long enough to truncate meaningfully\n")
	damage := map[string]func(path string) error{
		"truncated": func(p string) error {
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			return os.WriteFile(p, data[:len(data)/2], 0o644)
		},
		"corrupted-payload": func(p string) error {
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			data[len(data)-2] ^= 0xff
			return os.WriteFile(p, data, 0o644)
		},
		"version-mismatch": func(p string) error {
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			bad := bytes.Replace(data, []byte(fmt.Sprintf("%s v%d ", magic, FormatVersion)),
				[]byte(fmt.Sprintf("%s v%d ", magic, FormatVersion+1)), 1)
			return os.WriteFile(p, bad, 0o644)
		},
		"stage-mismatch": func(p string) error {
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			bad := bytes.Replace(data, []byte(" sched "), []byte(" eval "), 1)
			return os.WriteFile(p, bad, 0o644)
		},
		"no-header": func(p string) error {
			return os.WriteFile(p, []byte("not an artifact at all"), 0o644)
		},
		"empty-file": func(p string) error {
			return os.WriteFile(p, nil, 0o644)
		},
	}
	for name, hurt := range damage {
		t.Run(name, func(t *testing.T) {
			s := openT(t)
			if err := s.Put("sched", "victim", payload); err != nil {
				t.Fatal(err)
			}
			if err := hurt(filepath.Join(s.Dir(), "sched", "victim")); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get("sched", "victim"); ok {
				t.Fatalf("damaged artifact served: %q", got)
			}
			if st := s.Stats(); st.Faults != 1 {
				t.Fatalf("damage not counted as fault: %+v", st)
			}
			// The slot is recoverable: a rewrite serves again.
			if err := s.Put("sched", "victim", payload); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get("sched", "victim"); !ok || !bytes.Equal(got, payload) {
				t.Fatalf("rewrite after damage failed: %q %v", got, ok)
			}
		})
	}
}

// TestOpenSweepsStaleTemps checks that Open reclaims temp files left by
// interrupted writers, while sparing recent ones (a live writer in
// another process) and real artifacts.
func TestOpenSweepsStaleTemps(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("sched", "keep", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	stageDir := filepath.Join(s.Dir(), "sched")
	stale := filepath.Join(stageDir, ".tmp-dead-123")
	fresh := filepath.Join(stageDir, ".tmp-live-456")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * tempMaxAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp survived reopen: %v", err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatalf("fresh temp reclaimed too eagerly: %v", err)
	}
	if got, ok := s2.Get("sched", "keep"); !ok || string(got) != "payload" {
		t.Fatalf("artifact lost in sweep: %q %v", got, ok)
	}
}

// TestConcurrentPutGet hammers one store from many goroutines (run under
// -race in CI): concurrent writers of the same key and readers racing
// them must only ever observe complete payloads.
func TestConcurrentPutGet(t *testing.T) {
	s := openT(t)
	payload := bytes.Repeat([]byte("deterministic artifact content\n"), 64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if err := s.Put("eval", "shared", payload); err != nil {
					t.Error(err)
					return
				}
				if got, ok := s.Get("eval", "shared"); ok && !bytes.Equal(got, payload) {
					t.Errorf("torn read: %d bytes", len(got))
					return
				}
			}
		}()
	}
	wg.Wait()
	if got, ok := s.Get("eval", "shared"); !ok || !bytes.Equal(got, payload) {
		t.Fatal("final read failed")
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(filepath.Join(s.Dir(), "eval"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries, want 1", len(entries))
	}
}

// TestDamagedArtifactRemoved pins the PR 4 fault-loop fix: a damaged
// artifact is removed by the Get that detects it, so it faults once,
// not on every future run.
func TestDamagedArtifactRemoved(t *testing.T) {
	s := openT(t)
	if err := s.Put("sched", "victim", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(s.Dir(), "sched", "victim")
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("sched", "victim"); ok {
		t.Fatal("damaged artifact served")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("damaged artifact left on disk: %v", err)
	}
	// The second read is a plain miss, not another fault.
	if _, ok := s.Get("sched", "victim"); ok {
		t.Fatal("removed artifact served")
	}
	if st := s.Stats(); st.Faults != 1 || st.Misses != 1 {
		t.Fatalf("fault loop not broken: %+v", st)
	}
}

// TestDiscardRemovesDecodeFaults covers the codec-level variant: the
// container verifies but the caller cannot decode the payload, so it
// discards the artifact and the next Put installs a clean one.
func TestDiscardRemovesDecodeFaults(t *testing.T) {
	s := openT(t)
	if err := s.Put("eval", "k", []byte("valid container, bogus payload")); err != nil {
		t.Fatal(err)
	}
	s.Discard("eval", "k")
	if _, err := os.Stat(filepath.Join(s.Dir(), "eval", "k")); !os.IsNotExist(err) {
		t.Fatalf("discarded artifact left on disk: %v", err)
	}
	if st := s.Stats(); st.Faults != 1 {
		t.Fatalf("discard not counted: %+v", st)
	}
	if err := s.Put("eval", "k", []byte("clean")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("eval", "k"); !ok || string(got) != "clean" {
		t.Fatalf("reinstall after discard failed: %q %v", got, ok)
	}
}
