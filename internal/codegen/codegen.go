// Package codegen emits executable kernel-only code for modulo-scheduled
// loops, the way the Cydra-5-style hardware the paper assumes runs them
// (section 2): a single copy of the kernel, stage predicates that switch
// iterations on during the prologue ramp and off during the epilogue
// drain, a rotating register base (RRB) decremented once per kernel pass,
// and register specifiers encoded with their producer's stage offset so
// the one static instruction addresses a different physical register on
// every pass — no code replication, no modulo variable expansion.
//
// The package also contains a predicated executor for the generated
// program. It is deliberately a *different* machine model from
// internal/vm's event-driven pipeline: the two executors plus the
// sequential reference give three independent implementations whose
// outputs must agree bit for bit.
package codegen

import (
	"fmt"

	"ncdrf/internal/ddg"
	"ncdrf/internal/sched"
	"ncdrf/internal/vm"
)

// Operand is an encoded register source of an instruction.
type Operand struct {
	// File, Base, Size locate the rotating region (see vm.Target).
	File, Base, Size int
	// Enc is the stage-adjusted specifier encoded in the instruction:
	// physical register = Base + ((Enc + RRB) mod Size), with RRB = -pass.
	Enc int
	// Producer and Distance identify the dataflow source, kept for
	// diagnostics and for pre-loop (negative iteration) reads.
	Producer int
	Distance int
}

// Dest is an encoded register destination.
type Dest struct {
	File, Base, Size int
	Enc              int
}

// Instruction is one operation of the kernel image.
type Instruction struct {
	// Node is the DDG node the instruction implements.
	Node int
	// Op is the operation.
	Op ddg.OpCode
	// Label names the instruction (the node's label).
	Label string
	// Row is the kernel row (issue cycle mod II).
	Row int
	// Stage is the pipeline stage: during kernel pass k the instruction
	// works on iteration k - Stage and is predicated off unless
	// 0 <= k-Stage < trips.
	Stage int
	// Unit is the machine unit index executing the instruction.
	Unit int
	// Dests are the register destinations (several for global values).
	Dests []Dest
	// Srcs are the register sources in operand order.
	Srcs []Operand
	// Sym is the memory symbol for loads/stores.
	Sym string
	// SpillSlot marks spill memory accesses (-1 otherwise) and MemDist
	// is a reload's distance to its paired store.
	SpillSlot int
	MemDist   int
}

// Program is a complete kernel image.
type Program struct {
	// Loop is the source graph (needed by the executor for pre-loop
	// operand values and store identity).
	Loop *ddg.Graph
	// II and Stages describe the schedule shape.
	II, Stages int
	// Rows holds the instructions by kernel row, unit-ordered.
	Rows [][]Instruction
	// Files are the physical sizes of the register files.
	Files []int
}

// Generate lowers a schedule plus a register mapping into a kernel image.
func Generate(s *sched.Schedule, rm vm.RegMap) (*Program, error) {
	if err := s.Verify(); err != nil {
		return nil, fmt.Errorf("codegen: invalid schedule: %w", err)
	}
	g := s.Graph
	p := &Program{
		Loop:   g,
		II:     s.II,
		Stages: s.Stages(),
		Rows:   make([][]Instruction, s.II),
		Files:  rm.FileSizes(),
	}
	for _, n := range g.Nodes() {
		stage := s.Stage(n.ID)
		ins := Instruction{
			Node:      n.ID,
			Op:        n.Op,
			Label:     n.Label(),
			Row:       s.Slot(n.ID),
			Stage:     stage,
			Unit:      s.FU[n.ID],
			Sym:       n.Sym,
			SpillSlot: n.SpillSlot,
			MemDist:   -1,
		}
		// Destinations: the encoded specifier addresses the value of
		// iteration k-stage at pass k, so enc = spec + stage (mod size).
		for _, tgt := range rm.WriteTargets(n.ID) {
			ins.Dests = append(ins.Dests, Dest{
				File: tgt.File, Base: tgt.Base, Size: tgt.Size,
				Enc: mod(tgt.Spec+stage, tgt.Size),
			})
		}
		// Sources: the operand of iteration (k-stage)-d lives at
		// spec + stage + d (mod size) in the consumer's cluster file.
		for _, e := range g.InEdges(n.ID) {
			switch e.Kind {
			case ddg.Flow:
				tgt, err := rm.ReadTarget(s.Cluster(n.ID), e.From)
				if err != nil {
					return nil, fmt.Errorf("codegen: %s: %w", n, err)
				}
				ins.Srcs = append(ins.Srcs, Operand{
					File: tgt.File, Base: tgt.Base, Size: tgt.Size,
					Enc:      mod(tgt.Spec+stage+e.Distance, tgt.Size),
					Producer: e.From,
					Distance: e.Distance,
				})
			case ddg.Mem:
				if n.Op == ddg.LOAD && n.SpillSlot >= 0 {
					ins.MemDist = e.Distance
				}
			}
		}
		if n.Op == ddg.LOAD && n.SpillSlot >= 0 && ins.MemDist < 0 {
			return nil, fmt.Errorf("codegen: reload %s lacks a memory dependence", n)
		}
		p.Rows[ins.Row] = append(p.Rows[ins.Row], ins)
	}
	for r := range p.Rows {
		sortByUnit(p.Rows[r])
	}
	return p, nil
}

func sortByUnit(ins []Instruction) {
	for i := 1; i < len(ins); i++ {
		for j := i; j > 0 && ins[j-1].Unit > ins[j].Unit; j-- {
			ins[j-1], ins[j] = ins[j], ins[j-1]
		}
	}
}

func mod(a, m int) int {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}
