package codegen

import (
	"fmt"

	"ncdrf/internal/ddg"
	"ncdrf/internal/vm"
)

// Execute runs the kernel image for the given trip count on the
// predicated-kernel machine model: trips + stages - 1 kernel passes, each
// decrementing the rotating register base; instruction of stage s in pass
// k works on iteration k-s and executes only when its stage predicate is
// on (0 <= k-s < trips).
//
// Values are written at issue. That is safe precisely because the
// allocator reserves each register from the producer's issue cycle: every
// reader of the previous occupant issues strictly before the new
// producer does (its own read happens at or after the producer's
// completion, which the dependence constraints order after issue). Within
// one row all operands are read before any result is written, matching
// the register file's read-then-write port discipline.
func Execute(p *Program, trips int) (vm.StoreStream, error) {
	if trips < 1 {
		return nil, fmt.Errorf("codegen: trips = %d", trips)
	}
	files := make([][]float64, len(p.Files))
	for i, size := range p.Files {
		files[i] = make([]float64, size)
	}
	out := vm.StoreStream{}
	spillMem := map[int]map[int]float64{}
	g := p.Loop

	passes := trips + p.Stages - 1
	for k := 0; k < passes; k++ {
		rrb := -k
		for row := 0; row < p.II; row++ {
			type exec struct {
				ins  *Instruction
				iter int
				args []float64
			}
			var active []exec
			// Phase 1: predicate evaluation and operand reads.
			for i := range p.Rows[row] {
				ins := &p.Rows[row][i]
				iter := k - ins.Stage
				if iter < 0 || iter >= trips {
					continue // stage predicate off
				}
				e := exec{ins: ins, iter: iter}
				for _, src := range ins.Srcs {
					if iter-src.Distance < 0 {
						// The operand predates the loop: the register
						// holds the pre-loop value of its producer.
						e.args = append(e.args,
							preLoopValue(g, src.Producer, iter-src.Distance))
						continue
					}
					phys := src.Base + mod(src.Enc+rrb, src.Size)
					e.args = append(e.args, files[src.File][phys])
				}
				active = append(active, e)
			}
			// Phase 2: compute and write.
			for _, e := range active {
				v, store, err := evaluate(g, e.ins, e.iter, e.args, spillMem)
				if err != nil {
					return nil, err
				}
				if store {
					continue
				}
				for _, d := range e.ins.Dests {
					phys := d.Base + mod(d.Enc+rrb, d.Size)
					files[d.File][phys] = v
				}
			}
			// Stores are folded into evaluate via the stream below.
			for _, e := range active {
				if e.ins.Op == ddg.STORE && e.ins.SpillSlot < 0 {
					out[vm.StoreKey{Node: e.ins.Label, Iter: e.iter}] = storeValue(e.ins, e.args)
				}
			}
		}
	}
	return out, nil
}

// evaluate computes an instruction's result value; store reports that the
// instruction produces no register value.
func evaluate(g *ddg.Graph, ins *Instruction, iter int, args []float64,
	spillMem map[int]map[int]float64) (float64, bool, error) {
	switch {
	case ins.Op == ddg.LOAD && ins.SpillSlot >= 0:
		src := iter - ins.MemDist
		if src < 0 {
			return preLoopValue(g, spillProducer(g, ins.Node), src), false, nil
		}
		slot := spillMem[ins.SpillSlot]
		if slot != nil {
			if v, ok := slot[src]; ok {
				return v, false, nil
			}
		}
		return 0, false, fmt.Errorf("codegen: reload %s reads slot %d iteration %d before its store",
			ins.Label, ins.SpillSlot, src)
	case ins.Op == ddg.LOAD:
		return vm.LoadValue(ins.Label, iter), false, nil
	case ins.Op == ddg.STORE && ins.SpillSlot >= 0:
		slot := spillMem[ins.SpillSlot]
		if slot == nil {
			slot = map[int]float64{}
			spillMem[ins.SpillSlot] = slot
		}
		slot[iter] = storeValue(ins, args)
		return 0, true, nil
	case ins.Op == ddg.STORE:
		return 0, true, nil
	default:
		return vm.ComputeOp(g.Node(ins.Node), args), false, nil
	}
}

func storeValue(ins *Instruction, args []float64) float64 {
	if len(args) > 0 {
		return args[0]
	}
	return vm.PadValue(ins.Label, 0)
}

// preLoopValue is the deterministic pre-loop content of a register read
// at a negative iteration index; it matches vm's initial values so all
// three executors agree.
func preLoopValue(g *ddg.Graph, producer, iter int) float64 {
	return vm.InitValue(g.Node(producer).Label(), iter)
}

// spillProducer resolves the value feeding a reload's paired spill store.
func spillProducer(g *ddg.Graph, reload int) int {
	for _, e := range g.InEdges(reload) {
		if e.Kind == ddg.Mem {
			store := e.From
			for _, se := range g.InEdges(store) {
				if se.Kind == ddg.Flow {
					return se.From
				}
			}
			return store
		}
	}
	return reload
}
