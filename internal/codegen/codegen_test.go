package codegen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ncdrf/internal/core"
	"ncdrf/internal/ddg"
	"ncdrf/internal/lifetime"
	"ncdrf/internal/loops"
	"ncdrf/internal/machine"
	"ncdrf/internal/sched"
	"ncdrf/internal/spill"
	"ncdrf/internal/vm"
)

func buildProgram(t *testing.T, g *ddg.Graph, m *machine.Config, dual bool) (*Program, *sched.Schedule) {
	t.Helper()
	s, err := sched.Run(g, m, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lts := lifetime.Compute(s)
	var rm vm.RegMap
	if dual {
		d, err := vm.NewDualMap(s, lts)
		if err != nil {
			t.Fatal(err)
		}
		rm = d
	} else {
		u, err := vm.NewUnifiedMap(lts, s.II)
		if err != nil {
			t.Fatal(err)
		}
		rm = u
	}
	p, err := Generate(s, rm)
	if err != nil {
		t.Fatal(err)
	}
	return p, s
}

func TestGenerateShape(t *testing.T) {
	g := loops.PaperExample()
	p, s := buildProgram(t, g, machine.Example(), true)
	if p.II != 1 || p.Stages != 14 {
		t.Fatalf("II/stages = %d/%d", p.II, p.Stages)
	}
	if len(p.Rows) != s.II {
		t.Fatalf("rows = %d", len(p.Rows))
	}
	total := 0
	for _, row := range p.Rows {
		total += len(row)
	}
	if total != g.NumNodes() {
		t.Fatalf("instructions = %d, want %d", total, g.NumNodes())
	}
	// Encoded specifiers must be stage-adjusted: L1 has spec q and stage
	// 0, so Enc == spec; its consumer A6 at stage 10 must encode
	// q + 10 mod size.
	var l1 Instruction
	var a6 Instruction
	for _, row := range p.Rows {
		for _, ins := range row {
			switch ins.Label {
			case "L1":
				l1 = ins
			case "A6":
				a6 = ins
			}
		}
	}
	if len(l1.Dests) == 0 || len(a6.Srcs) < 2 {
		t.Fatal("missing L1 dest or A6 srcs")
	}
	// A6's second operand is x (L1's value).
	src := a6.Srcs[1]
	if src.Producer != loops.PaperExample().NodeByName("L1").ID {
		// Operand order: fadd v5, x -> src[0]=M5, src[1]=L1.
		t.Fatalf("A6 operand order unexpected: %+v", a6.Srcs)
	}
	want := (l1.Dests[0].Enc + 10) % src.Size
	if src.Enc != want {
		t.Fatalf("A6 src enc = %d, want %d (stage-adjusted)", src.Enc, want)
	}
}

func TestExecuteMatchesReferencePaperExample(t *testing.T) {
	g := loops.PaperExample()
	want, err := vm.RunReference(g, 30)
	if err != nil {
		t.Fatal(err)
	}
	for _, dual := range []bool{false, true} {
		p, _ := buildProgram(t, g, machine.Example(), dual)
		got, err := Execute(p, 30)
		if err != nil {
			t.Fatalf("dual=%v: %v", dual, err)
		}
		if err := vm.CompareStreams(want, got); err != nil {
			t.Fatalf("dual=%v: %v", dual, err)
		}
	}
}

func TestExecuteAllKernelsTripleAgreement(t *testing.T) {
	// Reference, event-driven pipeline (vm) and predicated-kernel
	// machine (codegen) must agree on every curated kernel.
	m := machine.Eval(6)
	for _, g := range loops.Kernels() {
		want, err := vm.RunReference(g, 10)
		if err != nil {
			t.Fatalf("%s: %v", g.LoopName, err)
		}
		p, s := buildProgram(t, g, m, true)
		got, err := Execute(p, 10)
		if err != nil {
			t.Fatalf("%s: %v", g.LoopName, err)
		}
		if err := vm.CompareStreams(want, got); err != nil {
			t.Fatalf("%s: %v", g.LoopName, err)
		}
		_ = s
	}
}

func TestExecuteWithSpillCode(t *testing.T) {
	g, ok := loops.KernelByName("lfk7-eos")
	if !ok {
		t.Fatal("missing kernel")
	}
	m := machine.Eval(6)
	res, err := spill.Run(g, m, 24, core.Fit(core.Swapped), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lts := lifetime.Compute(res.Sched)
	d, err := vm.NewDualMap(res.Sched, lts)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Generate(res.Sched, d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Execute(p, 12)
	if err != nil {
		t.Fatal(err)
	}
	want, err := vm.RunReference(g, 12) // original, unspilled loop
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.CompareStreams(want, got); err != nil {
		t.Fatal(err)
	}
}

func TestExecuteRejectsBadTrips(t *testing.T) {
	g := loops.PaperExample()
	p, _ := buildProgram(t, g, machine.Example(), false)
	if _, err := Execute(p, 0); err == nil {
		t.Fatal("trips=0 must fail")
	}
}

func TestFormatListing(t *testing.T) {
	g := loops.PaperExample()
	p, _ := buildProgram(t, g, machine.Example(), true)
	out := Format(p)
	for _, want := range []string{"kernel", "p[", "brtop", "L1", "S7"} {
		if !contains(out, want) {
			t.Fatalf("format missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && indexOf(s, sub) >= 0
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// Property: the predicated-kernel machine agrees with the reference on
// random loops under both organizations.
func TestPropertyPredicatedAgreement(t *testing.T) {
	ops := []ddg.OpCode{ddg.FADD, ddg.FSUB, ddg.FMUL, ddg.LOAD, ddg.STORE}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := ddg.New("rand", 1)
		n := 4 + r.Intn(10)
		for i := 0; i < n; i++ {
			g.AddNode(ops[r.Intn(len(ops))], "")
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Intn(3) == 0 && g.Node(i).Op.ProducesValue() {
					g.Flow(i, j)
				}
			}
		}
		m := machine.Eval([]int{3, 6}[r.Intn(2)])
		s, err := sched.Run(g, m, sched.Options{})
		if err != nil {
			return false
		}
		lts := lifetime.Compute(s)
		var rm vm.RegMap
		if r.Intn(2) == 0 {
			d, err := vm.NewDualMap(s, lts)
			if err != nil {
				return false
			}
			rm = d
		} else {
			u, err := vm.NewUnifiedMap(lts, s.II)
			if err != nil {
				return false
			}
			rm = u
		}
		p, err := Generate(s, rm)
		if err != nil {
			return false
		}
		got, err := Execute(p, 7)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		want, err := vm.RunReference(g, 7)
		if err != nil {
			return false
		}
		return vm.CompareStreams(want, got) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
