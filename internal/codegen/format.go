package codegen

import (
	"fmt"
	"strings"
)

// Format renders the kernel image as predicated VLIW code: one bundle per
// kernel row, each instruction guarded by its stage predicate p[s], with
// encoded (stage-adjusted) rotating register specifiers and the loop-back
// brtop that rotates the register base and shifts the predicates, after
// the Cydra 5's overlapped-loop support.
func Format(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "; kernel of %s: II=%d, stages=%d; trips+%d passes drain the pipeline\n",
		p.Loop.LoopName, p.II, p.Stages, p.Stages-1)
	for f, size := range p.Files {
		fmt.Fprintf(&b, "; file %d: %d rotating registers\n", f, size)
	}
	for row := 0; row < p.II; row++ {
		fmt.Fprintf(&b, "L%d:\n", row)
		for _, ins := range p.Rows[row] {
			fmt.Fprintf(&b, "  p[%2d] %-8s %-6s %s\n",
				ins.Stage, ins.Label, ins.Op, formatOperands(&ins))
		}
	}
	fmt.Fprintf(&b, "  brtop L0        ; RRB--, shift stage predicates, loop while work remains\n")
	return b.String()
}

func formatOperands(ins *Instruction) string {
	var parts []string
	for _, d := range ins.Dests {
		parts = append(parts, fmt.Sprintf("f%d:%d", d.File, d.Enc))
	}
	if len(ins.Dests) == 0 && ins.Op.ProducesValue() {
		parts = append(parts, "-")
	}
	var srcs []string
	for _, s := range ins.Srcs {
		srcs = append(srcs, fmt.Sprintf("f%d:%d", s.File, s.Enc))
	}
	if ins.Sym != "" {
		srcs = append(srcs, "@"+ins.Sym)
	}
	if len(srcs) > 0 {
		if len(parts) > 0 {
			parts = append(parts, "<-")
		}
		parts = append(parts, strings.Join(srcs, ", "))
	}
	return strings.Join(parts, " ")
}
