package sched

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"ncdrf/internal/ddg"
	"ncdrf/internal/loops"
	"ncdrf/internal/machine"
)

func TestResMII(t *testing.T) {
	g := ddg.New("r", 1)
	for i := 0; i < 5; i++ {
		g.AddNode(ddg.FADD, "")
	}
	for i := 0; i < 3; i++ {
		g.AddNode(ddg.LOAD, "")
	}
	m := machine.MustNew("m", []machine.ClusterSpec{{Adders: 2, Multipliers: 1, MemPorts: 2}}, 3, 3, 1)
	got, err := ResMII(g, m)
	if err != nil {
		t.Fatal(err)
	}
	// 5 adds on 2 adders -> 3; 3 mems on 2 ports -> 2.
	if got != 3 {
		t.Fatalf("ResMII = %d, want 3", got)
	}
}

func TestResMIIMissingUnit(t *testing.T) {
	g := ddg.New("r", 1)
	g.AddNode(ddg.FMUL, "")
	m := machine.MustNew("m", []machine.ClusterSpec{{Adders: 1, Multipliers: 0, MemPorts: 1}}, 3, 3, 1)
	if _, err := ResMII(g, m); err == nil {
		t.Fatal("want error for machine without multipliers")
	}
}

func TestRecMIIAcyclic(t *testing.T) {
	g := loops.PaperExample()
	if got := RecMII(g, machine.Example()); got != 1 {
		t.Fatalf("RecMII(acyclic) = %d, want 1", got)
	}
}

func TestRecMIIRecurrence(t *testing.T) {
	// Self-recurrence through a latency-3 adder at distance 1: the cycle
	// needs II >= 3.
	g := ddg.New("rec", 1)
	a := g.AddNode(ddg.FADD, "A")
	g.FlowD(a, a, 1)
	m := machine.Eval(3)
	if got := RecMII(g, m); got != 3 {
		t.Fatalf("RecMII = %d, want 3", got)
	}
	// Same recurrence with latency 6.
	if got := RecMII(g, machine.Eval(6)); got != 6 {
		t.Fatalf("RecMII = %d, want 6", got)
	}
}

func TestRecMIITwoNodeCycle(t *testing.T) {
	// A -> B (latency 3) and B -> A at distance 2 (latency 3): cycle
	// delay 6 over distance 2 -> RecMII = 3.
	g := ddg.New("rec2", 1)
	a := g.AddNode(ddg.FADD, "A")
	b := g.AddNode(ddg.FMUL, "B")
	g.Flow(a, b)
	g.FlowD(b, a, 2)
	if got := RecMII(g, machine.Eval(3)); got != 3 {
		t.Fatalf("RecMII = %d, want 3", got)
	}
}

func TestPaperExampleSchedule(t *testing.T) {
	// The scheduler must reproduce Figure 3 exactly: II=1, issue cycles
	// 0,0,1,4,7,10,13, with {L1,L2,M3,A4} on cluster 0 and {M5,A6,S7} on
	// cluster 1.
	g := loops.PaperExample()
	s, err := Run(g, machine.Example(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.II != 1 {
		t.Fatalf("II = %d, want 1", s.II)
	}
	wantStart := map[string]int{"L1": 0, "L2": 0, "M3": 1, "A4": 4, "M5": 7, "A6": 10, "S7": 13}
	wantCluster := map[string]int{"L1": 0, "L2": 0, "M3": 0, "A4": 0, "M5": 1, "A6": 1, "S7": 1}
	for name, want := range wantStart {
		id := g.NodeByName(name).ID
		if s.Start[id] != want {
			t.Errorf("start(%s) = %d, want %d", name, s.Start[id], want)
		}
		if s.Cluster(id) != wantCluster[name] {
			t.Errorf("cluster(%s) = %d, want %d", name, s.Cluster(id), wantCluster[name])
		}
	}
	if s.Stages() != 14 {
		t.Errorf("Stages = %d, want 14", s.Stages())
	}
}

func TestKernelRendering(t *testing.T) {
	g := loops.PaperExample()
	s, err := Run(g, machine.Example(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := s.Kernel()
	if !strings.Contains(k, "row 0:") {
		t.Fatalf("kernel missing row header:\n%s", k)
	}
	for _, want := range []string{"[0]L1", "[1]M3", "[4]A4", "[13]S7", "|c0|", "|c1|"} {
		if !strings.Contains(k, want) {
			t.Fatalf("kernel missing %q:\n%s", want, k)
		}
	}
}

func TestMinIIOption(t *testing.T) {
	g := loops.PaperExample()
	s, err := Run(g, machine.Example(), Options{MinII: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.II < 3 {
		t.Fatalf("II = %d, want >= 3", s.II)
	}
}

func TestScheduleSaturatedResources(t *testing.T) {
	// 6 memory ops on 2 ports: II must be 3 and both ports fully busy.
	src := ddg.New("mem", 1)
	var prev int
	for i := 0; i < 6; i++ {
		id := src.AddNode(ddg.LOAD, "")
		if i > 0 {
			_ = prev
		}
		prev = id
	}
	m := machine.Eval(3)
	s, err := Run(src, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.II != 3 {
		t.Fatalf("II = %d, want 3", s.II)
	}
}

func TestRecurrenceLimitedSchedule(t *testing.T) {
	// acc = acc@1 + load: RecMII = add latency.
	g := ddg.New("acc", 1)
	l := g.AddNode(ddg.LOAD, "L")
	a := g.AddNode(ddg.FADD, "A")
	st := g.AddNode(ddg.STORE, "S")
	g.Flow(l, a)
	g.FlowD(a, a, 1)
	g.Flow(a, st)
	for _, lat := range []int{3, 6} {
		s, err := Run(g, machine.Eval(lat), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if s.II != lat {
			t.Fatalf("latency %d: II = %d, want %d", lat, s.II, lat)
		}
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	g := loops.PaperExample()
	s, err := Run(g, machine.Example(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Break a dependence.
	bad := *s
	bad.Start = append([]int(nil), s.Start...)
	bad.Start[g.NodeByName("M3").ID] = 0 // before L1 completes
	if err := bad.Verify(); err == nil {
		t.Fatal("Verify accepted dependence violation")
	}
	// Resource clash: two ops on one unit in the same row.
	bad2 := *s
	bad2.FU = append([]int(nil), s.FU...)
	bad2.Start = append([]int(nil), s.Start...)
	l1, l2 := g.NodeByName("L1").ID, g.NodeByName("L2").ID
	bad2.FU[l2] = bad2.FU[l1]
	if err := bad2.Verify(); err == nil {
		t.Fatal("Verify accepted resource clash")
	}
	// Wrong unit kind.
	bad3 := *s
	bad3.FU = append([]int(nil), s.FU...)
	adderUnit := -1
	for i := 0; i < machine.Example().NumUnits(); i++ {
		if machine.Example().Unit(i).Kind == machine.Adder {
			adderUnit = i
			break
		}
	}
	bad3.FU[l1] = adderUnit
	if err := bad3.Verify(); err == nil {
		t.Fatal("Verify accepted kind mismatch")
	}
}

// randomLoop builds a random schedulable loop graph.
func randomLoop(r *rand.Rand, n int) *ddg.Graph {
	g := ddg.New("rand", 1)
	ops := []ddg.OpCode{ddg.FADD, ddg.FSUB, ddg.FMUL, ddg.FDIV, ddg.LOAD, ddg.CONV, ddg.STORE}
	for i := 0; i < n; i++ {
		op := ops[r.Intn(len(ops))]
		g.AddNode(op, "")
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Intn(3) == 0 && g.Node(i).Op.ProducesValue() {
				g.Flow(i, j)
			}
		}
	}
	// Occasional loop-carried recurrences.
	for k := 0; k < n/4; k++ {
		from, to := r.Intn(n), r.Intn(n)
		if g.Node(from).Op.ProducesValue() {
			g.FlowD(from, to, 1+r.Intn(2))
		}
	}
	return g
}

func TestPropertyRandomLoopsScheduleAndVerify(t *testing.T) {
	machines := []*machine.Config{
		machine.Eval(3), machine.Eval(6), machine.PxLy(1, 3), machine.PxLy(2, 6), machine.Example(),
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomLoop(r, 2+r.Intn(18))
		m := machines[r.Intn(len(machines))]
		s, err := Run(g, m, Options{})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// Run already verifies; double check MII lower bound here.
		mii, _, _, err := MII(g, m)
		if err != nil {
			return false
		}
		return s.II >= mii && s.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyIIAtMostSerialLength(t *testing.T) {
	// A schedule must always exist with II no greater than what a fully
	// serial execution would need; our II search must stay sane.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomLoop(r, 2+r.Intn(12))
		m := machine.Eval(3)
		s, err := Run(g, m, Options{})
		if err != nil {
			return false
		}
		serial := 0
		for _, n := range g.Nodes() {
			serial += m.Latency(n.Op.FUKind())
		}
		return s.II <= serial+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsInvalidGraph(t *testing.T) {
	g := ddg.New("bad", 1)
	a := g.AddNode(ddg.FADD, "A")
	b := g.AddNode(ddg.FMUL, "B")
	g.Flow(a, b)
	g.Flow(b, a) // zero-distance cycle
	if _, err := Run(g, machine.Eval(3), Options{}); err == nil {
		t.Fatal("invalid graph must be rejected")
	}
	empty := ddg.New("empty", 1)
	if _, err := Run(empty, machine.Eval(3), Options{}); err == nil {
		t.Fatal("empty graph must be rejected")
	}
}

func TestRunRejectsMissingUnitKind(t *testing.T) {
	g := ddg.New("mul", 1)
	g.AddNode(ddg.FMUL, "M")
	m := machine.MustNew("nomul", []machine.ClusterSpec{{Adders: 1, Multipliers: 0, MemPorts: 1}}, 3, 3, 1)
	if _, err := Run(g, m, Options{}); err == nil {
		t.Fatal("machine without multipliers must be rejected")
	}
}

func TestOptionsExplicitValues(t *testing.T) {
	g := loops.PaperExample()
	s, err := Run(g, machine.Example(), Options{BudgetRatio: 3, MaxIISlack: 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.II != 1 {
		t.Fatalf("II = %d", s.II)
	}
	o := Options{}
	if o.budgetRatio() != 8 || o.maxIISlack() != 10 {
		t.Fatal("defaults wrong")
	}
	o2 := Options{BudgetRatio: 2, MaxIISlack: 4}
	if o2.budgetRatio() != 2 || o2.maxIISlack() != 4 {
		t.Fatal("explicit values ignored")
	}
}

func TestEvictionOnOutOfOrderRecurrence(t *testing.T) {
	// A cross-iteration cycle whose high-priority member is placed first
	// forces dependence evictions; the scheduler must still converge to
	// a valid schedule at RecMII.
	g := ddg.New("tangle", 1)
	a := g.AddNode(ddg.FADD, "A")
	b := g.AddNode(ddg.FMUL, "B")
	c := g.AddNode(ddg.FADD, "C")
	g.Flow(a, b)
	g.Flow(b, c)
	g.FlowD(c, a, 1) // 3-op cycle, delay 9, distance 1 -> RecMII 9
	s, err := Run(g, machine.Eval(3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.II != 9 {
		t.Fatalf("II = %d, want 9", s.II)
	}
}

func TestModNegative(t *testing.T) {
	if mod(-3, 5) != 2 || mod(7, 5) != 2 || mod(0, 5) != 0 {
		t.Fatal("mod wrong")
	}
}

func TestStagesAndSlots(t *testing.T) {
	g := loops.PaperExample()
	s, err := Run(g, machine.Example(), Options{MinII: 2})
	if err != nil {
		t.Fatal(err)
	}
	for id := range s.Start {
		if s.Slot(id) != s.Start[id]%s.II {
			t.Fatal("Slot inconsistent")
		}
		if s.Stage(id) != s.Start[id]/s.II {
			t.Fatal("Stage inconsistent")
		}
	}
}

func TestHeightsMonotoneAlongChain(t *testing.T) {
	g := loops.PaperExample()
	m := machine.Example()
	h := heights(g, m, 1)
	get := func(name string) int { return h[g.NodeByName(name).ID] }
	if !(get("L1") > get("M3") && get("M3") > get("A4") && get("A4") > get("M5") &&
		get("M5") > get("A6") && get("A6") > get("S7")) {
		t.Fatalf("heights not monotone along critical chain: %v", h)
	}
	if get("L1") != 13 {
		t.Fatalf("height(L1) = %d, want 13", get("L1"))
	}
}

// TestNextUnscheduledExhausted pins the PR 4 panic conversion: a fully
// placed state reports -1 (which tryII turns into a contextual error)
// instead of panicking out of the whole sweep. It also exercises the
// worklist pointer: after the exhausted scan parks ptr at n, clearing a
// placed flag alone is not visible — the eviction path must rewind ptr
// through rank, which is exactly what evict does.
func TestNextUnscheduledExhausted(t *testing.T) {
	st := &imsState{
		n:      3,
		placed: []bool{true, true, true},
		order:  []int{2, 0, 1},
		rank:   []int{1, 2, 0},
	}
	if u := st.nextUnscheduled(); u != -1 {
		t.Fatalf("nextUnscheduled on placed state = %d, want -1", u)
	}
	st.placed[1] = false
	if st.rank[1] < st.ptr {
		st.ptr = st.rank[1] // the evict-path rewind
	}
	if u := st.nextUnscheduled(); u != 1 {
		t.Fatalf("nextUnscheduled = %d, want 1", u)
	}
}
