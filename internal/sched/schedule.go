// Package sched implements modulo scheduling (software pipelining) of loop
// data-dependence graphs onto the clustered VLIW machines of the paper,
// following Rau's iterative modulo scheduling: II search upward from the
// minimum initiation interval, height-based priorities, and budget-bounded
// scheduling with eviction.
package sched

import (
	"fmt"
	"sort"
	"strings"

	"ncdrf/internal/ddg"
	"ncdrf/internal/machine"
)

// AlgorithmVersion identifies the scheduler's observable behavior for
// persistent caching (internal/store keys carry it): any change that can
// alter the schedules produced — priority functions, eviction budgets,
// II search order, tie-breaking — must bump it, so artifacts computed by
// an older binary are not mistaken for the current algorithm's output.
// Pure refactors and error-message changes do not require a bump.
const AlgorithmVersion = 1

// Schedule is a modulo schedule of a loop: an initiation interval, an
// issue cycle for every operation (in the flat, iteration-0 time frame)
// and a functional-unit binding that also determines each operation's
// cluster.
type Schedule struct {
	Graph *ddg.Graph
	Mach  *machine.Config
	// II is the initiation interval in cycles.
	II int
	// Start[id] is the issue cycle of node id for iteration 0.
	Start []int
	// FU[id] is the machine unit index executing node id.
	FU []int
}

// Cluster returns the cluster executing node id.
func (s *Schedule) Cluster(id int) int { return s.Mach.Unit(s.FU[id]).Cluster }

// Slot returns the kernel row (Start mod II) of node id.
func (s *Schedule) Slot(id int) int { return mod(s.Start[id], s.II) }

// Stage returns the pipeline stage (Start div II) of node id.
func (s *Schedule) Stage(id int) int { return s.Start[id] / s.II }

// Stages returns the number of pipeline stages of the schedule.
func (s *Schedule) Stages() int {
	max := 0
	for id := range s.Start {
		end := s.Start[id] + s.Mach.Latency(s.Graph.Node(id).Op.FUKind())
		if end > max {
			max = end
		}
	}
	return (max + s.II - 1) / s.II
}

// EdgeDelay returns the scheduling delay of a dependence edge: the
// latency of the producing operation's functional unit. It applies to
// both flow and memory edges.
func EdgeDelay(g *ddg.Graph, m *machine.Config, e ddg.Edge) int {
	return m.Latency(g.Node(e.From).Op.FUKind())
}

// Verify checks every dependence and resource constraint of the schedule
// and returns a descriptive error for the first violation found.
func (s *Schedule) Verify() error {
	if s.II < 1 {
		return fmt.Errorf("sched: II = %d", s.II)
	}
	if len(s.Start) != s.Graph.NumNodes() || len(s.FU) != s.Graph.NumNodes() {
		return fmt.Errorf("sched: incomplete schedule")
	}
	for id, fu := range s.FU {
		if fu < 0 || fu >= s.Mach.NumUnits() {
			return fmt.Errorf("sched: node %s bound to missing unit %d", s.Graph.Node(id), fu)
		}
		if s.Mach.Unit(fu).Kind != s.Graph.Node(id).Op.FUKind() {
			return fmt.Errorf("sched: node %s bound to %s unit", s.Graph.Node(id), s.Mach.Unit(fu).Kind)
		}
		if s.Start[id] < 0 {
			return fmt.Errorf("sched: node %s starts at negative cycle %d", s.Graph.Node(id), s.Start[id])
		}
	}
	// Dependences: start(to) >= start(from) + delay - II*distance.
	for _, e := range s.Graph.Edges() {
		delay := EdgeDelay(s.Graph, s.Mach, e)
		if s.Start[e.To] < s.Start[e.From]+delay-s.II*e.Distance {
			return fmt.Errorf("sched: edge %v violated: start(%s)=%d, start(%s)=%d, delay=%d, II=%d",
				e, s.Graph.Node(e.From), s.Start[e.From], s.Graph.Node(e.To), s.Start[e.To], delay, s.II)
		}
	}
	// Resources: at most one op per (unit, kernel row).
	occupied := map[[2]int]int{}
	for id := range s.Start {
		key := [2]int{s.FU[id], s.Slot(id)}
		if prev, clash := occupied[key]; clash {
			return fmt.Errorf("sched: nodes %s and %s share unit %d at kernel row %d",
				s.Graph.Node(prev), s.Graph.Node(id), key[0], key[1])
		}
		occupied[key] = id
	}
	return nil
}

// Kernel renders the steady-state kernel: one line per kernel row listing
// each operation with its stage, grouped by cluster (as in Figures 4 and
// 5 of the paper).
func (s *Schedule) Kernel() string {
	type slotOp struct {
		id, stage, cluster int
	}
	rows := make([][]slotOp, s.II)
	for id := range s.Start {
		r := s.Slot(id)
		rows[r] = append(rows[r], slotOp{id: id, stage: s.Stage(id), cluster: s.Cluster(id)})
	}
	var b strings.Builder
	for r, ops := range rows {
		sort.Slice(ops, func(i, j int) bool {
			if ops[i].cluster != ops[j].cluster {
				return ops[i].cluster < ops[j].cluster
			}
			return s.FU[ops[i].id] < s.FU[ops[j].id]
		})
		fmt.Fprintf(&b, "row %d:", r)
		cur := -1
		for _, op := range ops {
			if op.cluster != cur {
				fmt.Fprintf(&b, "  |c%d|", op.cluster)
				cur = op.cluster
			}
			fmt.Fprintf(&b, " [%d]%s", op.stage, s.Graph.Node(op.id).Label())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// label is re-exported for the kernel printer.
func mod(a, m int) int {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}
