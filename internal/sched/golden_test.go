package sched

// This file pins the optimized iterative modulo scheduler byte-identical
// to the pre-optimization implementation (PR 1-6 era, commit d191fbe):
// referenceTryII below is a verbatim copy of the old tryII/imsState/
// findSlot/mrt code, and TestOptimizedSchedulerMatchesReference runs
// both over every (loop, machine) cell of the full corpus — curated
// kernels plus the 795-loop synthetic corpus — comparing II, Start and
// FU element-wise. Any hot-path change that alters even one placement
// decision fails here, which is what lets AlgorithmVersion stay at 1.

import (
	"slices"
	"sort"
	"testing"

	"ncdrf/internal/ddg"
	"ncdrf/internal/loopgen"
	"ncdrf/internal/loops"
	"ncdrf/internal/machine"
)

// referenceRun is the old Run body: II search upward from MII, each
// attempt through referenceTryII.
func referenceRun(g *ddg.Graph, m *machine.Config, opts Options) (*Schedule, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	mii, _, _, err := MII(g, m)
	if err != nil {
		return nil, err
	}
	if opts.MinII > mii {
		mii = opts.MinII
	}
	maxII := mii + opts.maxIISlack() + g.NumNodes()
	for ii := mii; ii <= maxII; ii++ {
		s, ok, err := referenceTryII(g, m, ii, opts.budgetRatio())
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		if err := s.Verify(); err != nil {
			return nil, err
		}
		return s, nil
	}
	return nil, errRefUnschedulable
}

type refUnschedulable struct{}

func (refUnschedulable) Error() string { return "reference: unschedulable" }

var errRefUnschedulable = refUnschedulable{}

// refHeights is the old heights: per-attempt allocation of the weight
// and height arrays, relaxation in edge order.
func refHeights(g *ddg.Graph, m *machine.Config, ii int) []int {
	n := g.NumNodes()
	h := make([]int, n)
	edges := g.Edges()
	w := make([]int, len(edges))
	for i, e := range edges {
		w[i] = EdgeDelay(g, m, e) - ii*e.Distance
	}
	for round := 0; round < n+1; round++ {
		changed := false
		for i, e := range edges {
			if v := h[e.To] + w[i]; v > h[e.From] {
				h[e.From] = v
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return h
}

func referenceTryII(g *ddg.Graph, m *machine.Config, ii, budgetRatio int) (*Schedule, bool, error) {
	n := g.NumNodes()
	h := refHeights(g, m, ii)

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if h[order[a]] != h[order[b]] {
			return h[order[a]] > h[order[b]]
		}
		return order[a] < order[b]
	})

	st := &refState{
		g:        g,
		m:        m,
		ii:       ii,
		start:    make([]int, n),
		fu:       make([]int, n),
		placed:   make([]bool, n),
		mrt:      newRefMRT(ii, m.NumUnits()),
		unitLoad: make([]int, m.NumUnits()),
	}
	for i := range st.start {
		st.start[i] = -1
		st.fu[i] = -1
	}

	budget := budgetRatio * n
	if budget < 32 {
		budget = 32
	}
	unplaced := n
	for unplaced > 0 && budget > 0 {
		budget--
		u := st.nextUnscheduled(order)
		if u < 0 {
			return nil, false, errRefUnschedulable
		}
		estart := st.earliestStart(u)
		slot, fu, found := st.findSlot(u, estart)
		if !found {
			return nil, false, errRefUnschedulable
		}
		unplaced += st.place(u, slot, fu)
	}
	if unplaced > 0 {
		return nil, false, nil
	}
	return &Schedule{Graph: g, Mach: m, II: ii, Start: st.start, FU: st.fu}, true, nil
}

type refState struct {
	g        *ddg.Graph
	m        *machine.Config
	ii       int
	start    []int
	fu       []int
	placed   []bool
	mrt      *refMRT
	unitLoad []int
}

func (st *refState) nextUnscheduled(order []int) int {
	for _, id := range order {
		if !st.placed[id] {
			return id
		}
	}
	return -1
}

func (st *refState) earliestStart(u int) int {
	estart := 0
	for _, e := range st.g.InEdges(u) {
		if !st.placed[e.From] {
			continue
		}
		t := st.start[e.From] + EdgeDelay(st.g, st.m, e) - st.ii*e.Distance
		if t > estart {
			estart = t
		}
	}
	return estart
}

func (st *refState) findSlot(u, estart int) (slot, fu int, ok bool) {
	kind := st.g.Node(u).Op.FUKind()
	units := st.m.UnitsOfKind(kind)
	for t := estart; t < estart+st.ii; t++ {
		row := mod(t, st.ii)
		best := -1
		for _, ui := range units {
			if st.mrt.at(row, ui) >= 0 {
				continue
			}
			if best < 0 || st.unitLoad[ui] < st.unitLoad[best] {
				best = ui
			}
		}
		if best >= 0 {
			return t, best, true
		}
	}
	return 0, 0, false
}

func (st *refState) place(u, slot, fu int) int {
	row := mod(slot, st.ii)
	delta := 0
	st.mrt.set(row, fu, u)
	st.start[u] = slot
	st.fu[u] = fu
	st.placed[u] = true
	st.unitLoad[fu]++
	delta--

	for _, e := range st.g.OutEdges(u) {
		if e.To != u && st.placed[e.To] &&
			st.start[e.To] < slot+EdgeDelay(st.g, st.m, e)-st.ii*e.Distance {
			st.evict(e.To)
			delta++
		}
	}
	for _, e := range st.g.InEdges(u) {
		if e.From != u && st.placed[e.From] &&
			slot < st.start[e.From]+EdgeDelay(st.g, st.m, e)-st.ii*e.Distance {
			st.evict(e.From)
			delta++
		}
	}
	return delta
}

func (st *refState) evict(v int) {
	st.mrt.set(mod(st.start[v], st.ii), st.fu[v], -1)
	st.unitLoad[st.fu[v]]--
	st.placed[v] = false
	st.start[v] = -1
	st.fu[v] = -1
}

type refMRT struct {
	ii, units int
	cells     []int
}

func newRefMRT(ii, units int) *refMRT {
	m := &refMRT{ii: ii, units: units, cells: make([]int, ii*units)}
	for i := range m.cells {
		m.cells[i] = -1
	}
	return m
}

func (m *refMRT) at(row, unit int) int    { return m.cells[row*m.units+unit] }
func (m *refMRT) set(row, unit, node int) { m.cells[row*m.units+unit] = node }

// goldenCorpus is the full evaluation corpus: the curated kernels, the
// worked example, and the synthetic corpus at its default size and seed
// (the same population every figure runner sweeps).
func goldenCorpus(t *testing.T) []*ddg.Graph {
	t.Helper()
	corpus := append([]*ddg.Graph{}, loops.Kernels()...)
	corpus = append(corpus, loops.PaperExample())
	spec := loopgen.Defaults()
	if testing.Short() {
		spec.Loops = 100
	}
	return append(corpus, loopgen.Generate(spec)...)
}

// TestOptimizedSchedulerMatchesReference pins the optimized scheduler's
// output — II, every Start cycle, every FU binding — element-wise equal
// to the pre-optimization reference on every (loop, machine) cell of
// the corpus, for both paper latencies and the clustered example
// machine. Run under -race in CI.
func TestOptimizedSchedulerMatchesReference(t *testing.T) {
	machines := []*machine.Config{
		machine.Eval(3),
		machine.Eval(6),
		machine.Example(),
	}
	corpus := goldenCorpus(t)
	cells, mismatches := 0, 0
	for _, m := range machines {
		for _, g := range corpus {
			want, wantErr := referenceRun(g, m, Options{})
			got, gotErr := Run(g, m, Options{})
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("%s on %s: reference err %v, optimized err %v", g.LoopName, m.Name(), wantErr, gotErr)
			}
			if wantErr != nil {
				continue
			}
			cells++
			if !sameSchedule(want, got) {
				mismatches++
				t.Errorf("%s on %s: schedule diverged:\nref II=%d Start=%v FU=%v\ngot II=%d Start=%v FU=%v",
					g.LoopName, m.Name(), want.II, want.Start, want.FU, got.II, got.Start, got.FU)
				if mismatches > 5 {
					t.Fatal("too many divergences; stopping")
				}
			}
		}
	}
	if cells == 0 {
		t.Fatal("no schedulable cells compared")
	}
	t.Logf("compared %d (loop, machine) cells", cells)
}

// TestOptimizedSchedulerMatchesReferenceForcedMinII covers the spiller's
// II-increase fallback path: forced MinII values above the natural MII
// must reproduce the reference placements too.
func TestOptimizedSchedulerMatchesReferenceForcedMinII(t *testing.T) {
	m := machine.Eval(6)
	for _, g := range loops.Kernels() {
		base, err := Run(g, m, Options{})
		if err != nil {
			t.Fatalf("%s: %v", g.LoopName, err)
		}
		for _, bump := range []int{1, 3} {
			opts := Options{MinII: base.II + bump}
			want, wantErr := referenceRun(g, m, opts)
			got, gotErr := Run(g, m, opts)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("%s MinII=%d: reference err %v, optimized err %v", g.LoopName, opts.MinII, wantErr, gotErr)
			}
			if wantErr == nil && !sameSchedule(want, got) {
				t.Errorf("%s MinII=%d: schedule diverged", g.LoopName, opts.MinII)
			}
		}
	}
}

// TestOptimizedSchedulerMatchesReferenceBudgets covers the ablation
// budgets: a tight eviction budget exercises the eviction/worklist
// machinery far harder than the default.
func TestOptimizedSchedulerMatchesReferenceBudgets(t *testing.T) {
	m := machine.Eval(6)
	for _, ratio := range []int{1, 2, 4} {
		for _, g := range loops.Kernels() {
			want, wantErr := referenceRun(g, m, Options{BudgetRatio: ratio})
			got, gotErr := Run(g, m, Options{BudgetRatio: ratio})
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("%s budget=%d: reference err %v, optimized err %v", g.LoopName, ratio, wantErr, gotErr)
			}
			if wantErr == nil && !sameSchedule(want, got) {
				t.Errorf("%s budget=%d: schedule diverged", g.LoopName, ratio)
			}
		}
	}
}

func sameSchedule(a, b *Schedule) bool {
	if a.II != b.II || len(a.Start) != len(b.Start) || len(a.FU) != len(b.FU) {
		return false
	}
	for i := range a.Start {
		if a.Start[i] != b.Start[i] || a.FU[i] != b.FU[i] {
			return false
		}
	}
	return true
}

// TestPriorityOrderMatchesReferenceSort pins the slices.SortFunc keyed
// sort in tryII to the reference sort.Slice ordering. The comparator is
// a strict total order (height desc, node ID asc), so every correct sort
// algorithm must produce the same permutation — this test guards the
// comparator itself against drift.
func TestPriorityOrderMatchesReferenceSort(t *testing.T) {
	m := machine.Eval(6)
	for _, g := range goldenCorpus(t) {
		mii, _, _, err := MII(g, m)
		if err != nil {
			t.Fatal(err)
		}
		st := newIMSState(g, m)
		for _, ii := range []int{mii, mii + 1, mii + 7} {
			// The optimized path: heights + slices.SortFunc, as in tryII.
			st.heights(ii)
			for i := range st.order {
				st.order[i] = i
			}
			h := st.h
			slices.SortFunc(st.order, func(a, b int) int {
				switch {
				case h[a] > h[b]:
					return -1
				case h[a] < h[b]:
					return 1
				default:
					return a - b
				}
			})
			// The reference path, verbatim from the old tryII.
			refH := refHeights(g, m, ii)
			refOrder := make([]int, g.NumNodes())
			for i := range refOrder {
				refOrder[i] = i
			}
			sort.Slice(refOrder, func(a, b int) bool {
				if refH[refOrder[a]] != refH[refOrder[b]] {
					return refH[refOrder[a]] > refH[refOrder[b]]
				}
				return refOrder[a] < refOrder[b]
			})
			for i := range refOrder {
				if st.order[i] != refOrder[i] {
					t.Fatalf("%s ii=%d: priority order diverged at %d: %v vs %v",
						g.LoopName, ii, i, st.order, refOrder)
				}
			}
		}
	}
}
