package sched

import (
	"fmt"
	"sort"

	"ncdrf/internal/ddg"
	"ncdrf/internal/machine"
)

// Options tunes the iterative modulo scheduler. The zero value selects
// the defaults used throughout the reproduction.
type Options struct {
	// BudgetRatio bounds the scheduling effort per II attempt to
	// BudgetRatio * NumNodes placement operations (Rau uses small
	// constants; default 8).
	BudgetRatio int
	// MaxIISlack bounds the II search: II is tried from MII up to
	// MII + MaxIISlack + NumNodes before giving up (default 10).
	MaxIISlack int
	// MinII forces the II search to start no lower than this value;
	// used by the spiller's II-increase fallback.
	MinII int
}

func (o Options) budgetRatio() int {
	if o.BudgetRatio <= 0 {
		return 8
	}
	return o.BudgetRatio
}

func (o Options) maxIISlack() int {
	if o.MaxIISlack <= 0 {
		return 10
	}
	return o.MaxIISlack
}

// Run modulo-schedules the loop onto the machine with iterative modulo
// scheduling. The returned schedule is always verified.
func Run(g *ddg.Graph, m *machine.Config, opts Options) (*Schedule, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	mii, _, _, err := MII(g, m)
	if err != nil {
		return nil, err
	}
	if opts.MinII > mii {
		mii = opts.MinII
	}
	maxII := mii + opts.maxIISlack() + g.NumNodes()
	for ii := mii; ii <= maxII; ii++ {
		s, ok, err := tryII(g, m, ii, opts.budgetRatio())
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		if err := s.Verify(); err != nil {
			return nil, fmt.Errorf("sched: internal: produced invalid schedule for %s: %w", g.LoopName, err)
		}
		return s, nil
	}
	return nil, fmt.Errorf("sched: loop %s not schedulable up to II=%d on %s", g.LoopName, maxII, m.Name())
}

// tryII attempts to find a schedule at a fixed II with a bounded budget.
// A nil error with ok == false means the budget ran out (try a larger
// II); a non-nil error means the machine configuration itself cannot
// host the loop and no II will help.
func tryII(g *ddg.Graph, m *machine.Config, ii, budgetRatio int) (*Schedule, bool, error) {
	n := g.NumNodes()
	h := heights(g, m, ii)

	// Priority order: higher height first, then lower node ID.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if h[order[a]] != h[order[b]] {
			return h[order[a]] > h[order[b]]
		}
		return order[a] < order[b]
	})

	st := &imsState{
		g:        g,
		m:        m,
		ii:       ii,
		start:    make([]int, n),
		fu:       make([]int, n),
		placed:   make([]bool, n),
		mrt:      newMRT(ii, m.NumUnits()),
		unitLoad: make([]int, m.NumUnits()),
	}
	for i := range st.start {
		st.start[i] = -1
		st.fu[i] = -1
	}

	budget := budgetRatio * n
	if budget < 32 {
		budget = 32
	}
	unplaced := n
	for unplaced > 0 && budget > 0 {
		budget--
		u := st.nextUnscheduled(order)
		if u < 0 {
			// Cannot happen while unplaced > 0: the priority order covers
			// every node, so a placed-everything state contradicts the
			// unplaced count. A malformed order is the only way here, so
			// fail with enough context to diagnose it — through the same
			// contextual-error path as findSlot — instead of taking the
			// whole sweep down with a panic.
			return nil, false, fmt.Errorf(
				"sched: loop %s at II=%d: %d operations unplaced but none unscheduled in the priority order (inconsistent scheduler state)",
				g.LoopName, ii, unplaced)
		}
		estart := st.earliestStart(u)
		slot, fu, found := st.findSlot(u, estart)
		if !found {
			// Cannot happen with fully pipelined units occupying one
			// reservation cell each: at II >= ResMII the kind has at
			// most II*units operations, so some cell is free, and the
			// II-cycle search window visits every kernel row. A
			// malformed machine config is the only way here, so fail
			// with enough context to diagnose it instead of taking the
			// whole sweep down.
			node := g.Node(u)
			return nil, false, fmt.Errorf(
				"sched: loop %s at II=%d: no free %s reservation cell for op %s on %s (inconsistent machine config)",
				g.LoopName, ii, node.Op.FUKind(), node.Label(), m.Name())
		}
		unplaced += st.place(u, slot, fu)
	}
	if unplaced > 0 {
		return nil, false, nil
	}
	return &Schedule{Graph: g, Mach: m, II: ii, Start: st.start, FU: st.fu}, true, nil
}

type imsState struct {
	g        *ddg.Graph
	m        *machine.Config
	ii       int
	start    []int
	fu       []int
	placed   []bool
	mrt      *mrt
	unitLoad []int
}

// nextUnscheduled returns the highest-priority unscheduled node, or -1
// when every node in order is placed (which the caller reports as an
// inconsistent-state error; see the call site).
func (st *imsState) nextUnscheduled(order []int) int {
	for _, id := range order {
		if !st.placed[id] {
			return id
		}
	}
	return -1
}

// earliestStart computes the earliest legal issue cycle of u with respect
// to its currently scheduled predecessors.
func (st *imsState) earliestStart(u int) int {
	estart := 0
	for _, e := range st.g.InEdges(u) {
		if !st.placed[e.From] {
			continue
		}
		t := st.start[e.From] + EdgeDelay(st.g, st.m, e) - st.ii*e.Distance
		if t > estart {
			estart = t
		}
	}
	return estart
}

// findSlot searches cycles [estart, estart+II-1] for a free unit of the
// right kind, preferring the least-loaded unit (which spreads operations
// across clusters as a real cluster scheduler would).
func (st *imsState) findSlot(u, estart int) (slot, fu int, ok bool) {
	kind := st.g.Node(u).Op.FUKind()
	units := st.m.UnitsOfKind(kind)
	for t := estart; t < estart+st.ii; t++ {
		row := mod(t, st.ii)
		best := -1
		for _, ui := range units {
			if st.mrt.at(row, ui) >= 0 {
				continue
			}
			if best < 0 || st.unitLoad[ui] < st.unitLoad[best] {
				best = ui
			}
		}
		if best >= 0 {
			return t, best, true
		}
	}
	return 0, 0, false
}

// place schedules u at (slot, fu) — a free reservation cell by findSlot's
// contract — and evicts any scheduled neighbor whose dependence
// constraint the placement violates (which is how IMS untangles
// recurrences whose members were placed out of order). It returns the net
// change in the number of unscheduled nodes (-1 for u itself, +1 per
// eviction).
func (st *imsState) place(u, slot, fu int) int {
	row := mod(slot, st.ii)
	delta := 0
	st.mrt.set(row, fu, u)
	st.start[u] = slot
	st.fu[u] = fu
	st.placed[u] = true
	st.unitLoad[fu]++
	delta--

	// Dependence-violating neighbors.
	for _, e := range st.g.OutEdges(u) {
		if e.To != u && st.placed[e.To] &&
			st.start[e.To] < slot+EdgeDelay(st.g, st.m, e)-st.ii*e.Distance {
			st.evict(e.To)
			delta++
		}
	}
	for _, e := range st.g.InEdges(u) {
		if e.From != u && st.placed[e.From] &&
			slot < st.start[e.From]+EdgeDelay(st.g, st.m, e)-st.ii*e.Distance {
			st.evict(e.From)
			delta++
		}
	}
	return delta
}

func (st *imsState) evict(v int) {
	st.mrt.set(mod(st.start[v], st.ii), st.fu[v], -1)
	st.unitLoad[st.fu[v]]--
	st.placed[v] = false
	st.start[v] = -1
	st.fu[v] = -1
}

// mrt is the modulo reservation table: one cell per (kernel row, unit)
// holding the occupying node ID or -1.
type mrt struct {
	ii, units int
	cells     []int
}

func newMRT(ii, units int) *mrt {
	m := &mrt{ii: ii, units: units, cells: make([]int, ii*units)}
	for i := range m.cells {
		m.cells[i] = -1
	}
	return m
}

func (m *mrt) at(row, unit int) int    { return m.cells[row*m.units+unit] }
func (m *mrt) set(row, unit, node int) { m.cells[row*m.units+unit] = node }
