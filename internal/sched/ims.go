package sched

import (
	"fmt"
	"math/bits"
	"slices"

	"ncdrf/internal/ddg"
	"ncdrf/internal/machine"
)

// Options tunes the iterative modulo scheduler. The zero value selects
// the defaults used throughout the reproduction.
type Options struct {
	// BudgetRatio bounds the scheduling effort per II attempt to
	// BudgetRatio * NumNodes placement operations (Rau uses small
	// constants; default 8).
	BudgetRatio int
	// MaxIISlack bounds the II search: II is tried from MII up to
	// MII + MaxIISlack + NumNodes before giving up (default 10).
	MaxIISlack int
	// MinII forces the II search to start no lower than this value;
	// used by the spiller's II-increase fallback.
	MinII int
}

func (o Options) budgetRatio() int {
	if o.BudgetRatio <= 0 {
		return 8
	}
	return o.BudgetRatio
}

func (o Options) maxIISlack() int {
	if o.MaxIISlack <= 0 {
		return 10
	}
	return o.MaxIISlack
}

// Run modulo-schedules the loop onto the machine with iterative modulo
// scheduling. The returned schedule is always verified.
//
// The hot path is allocation-reused: one imsState is built per Run and
// every II attempt resets it in place (see DESIGN.md "Hot path"), so the
// II search never reallocates its priority order, heights, reservation
// table or free-row bitsets. Placement decisions are pinned byte-identical
// to the pre-optimization scheduler by the golden corpus test
// (TestOptimizedSchedulerMatchesReference), which is why AlgorithmVersion
// needs no bump for this layout.
func Run(g *ddg.Graph, m *machine.Config, opts Options) (*Schedule, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	mii, _, _, err := MII(g, m)
	if err != nil {
		return nil, err
	}
	if opts.MinII > mii {
		mii = opts.MinII
	}
	st := newIMSState(g, m)
	maxII := mii + opts.maxIISlack() + g.NumNodes()
	for ii := mii; ii <= maxII; ii++ {
		s, ok, err := st.tryII(ii, opts.budgetRatio())
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		if err := s.Verify(); err != nil {
			return nil, fmt.Errorf("sched: internal: produced invalid schedule for %s: %w", g.LoopName, err)
		}
		return s, nil
	}
	return nil, fmt.Errorf("sched: loop %s not schedulable up to II=%d on %s", g.LoopName, maxII, m.Name())
}

// imsState is the scheduler's working state, owned by a single Run call:
// it is built once per (graph, machine) pair and reset in place for every
// II attempt, so the II search allocates nothing per attempt. It must not
// be retained or shared after Run returns — except for the start/fu
// arrays of a successful attempt, which Run hands to the returned
// Schedule and never touches again (Run returns immediately on success,
// so no later attempt can scribble on them).
type imsState struct {
	g *ddg.Graph
	m *machine.Config
	n int

	// Per-(graph, machine) tables, computed once in newIMSState.
	nodeKind []machine.FUKind // FU kind per node
	delay    []int            // EdgeDelay of every edge leaving the node: m.Latency(nodeKind)
	units    [][]int          // unit indices per kind (machine.Kinds order), ascending
	kindOf   []int            // int(nodeKind), cached to index units/freeCnt without conversion

	// Per-attempt state, reset by reset(ii).
	ii       int
	start    []int
	fu       []int
	placed   []bool
	unitLoad []int
	mrt      []int // (row, unit) -> occupying node or -1; row-major, NumUnits stride

	// Free-row tracking per kind: freeCnt[k*ii+row] counts free units of
	// kind k in the kernel row, and freeBits holds one bitset of rows with
	// a nonzero count per kind (words64 words each, kind-major). findSlot
	// probes the bitset with find-first-set instead of scanning every
	// (cycle, unit) cell.
	freeCnt  []int
	freeBits []uint64
	words64  int

	// Priority worklist: order is the height-sorted priority order, rank
	// its inverse permutation, and ptr the lowest rank that can still be
	// unplaced — every rank below it is placed. nextUnscheduled advances
	// ptr over placed entries; evict rewinds it, preserving the invariant.
	h     []int
	w     []int // edge-weight buffer for the height relaxation
	order []int
	rank  []int
	ptr   int
}

// newIMSState builds the per-Run scheduler state: the node-kind and
// edge-delay tables (so the placement loops never re-derive latencies
// through EdgeDelay) and the per-kind unit lists (so findSlot never
// re-copies them out of the machine config).
func newIMSState(g *ddg.Graph, m *machine.Config) *imsState {
	n := g.NumNodes()
	st := &imsState{
		g:        g,
		m:        m,
		n:        n,
		nodeKind: make([]machine.FUKind, n),
		delay:    make([]int, n),
		kindOf:   make([]int, n),
		units:    make([][]int, len(machine.Kinds)),
		start:    make([]int, n),
		fu:       make([]int, n),
		placed:   make([]bool, n),
		unitLoad: make([]int, m.NumUnits()),
		h:        make([]int, n),
		w:        make([]int, g.NumEdges()),
		order:    make([]int, n),
		rank:     make([]int, n),
	}
	for id, node := range g.Nodes() {
		k := node.Op.FUKind()
		st.nodeKind[id] = k
		st.kindOf[id] = int(k)
		st.delay[id] = m.Latency(k)
	}
	for _, k := range machine.Kinds {
		st.units[k] = m.UnitsOfKind(k)
	}
	return st
}

// reset prepares the state for one II attempt, growing the ii-sized
// tables in place instead of reallocating them.
func (st *imsState) reset(ii int) {
	st.ii = ii
	for i := 0; i < st.n; i++ {
		st.start[i] = -1
		st.fu[i] = -1
		st.placed[i] = false
	}
	for i := range st.unitLoad {
		st.unitLoad[i] = 0
	}
	st.mrt = resizeInts(st.mrt, ii*st.m.NumUnits())
	for i := range st.mrt {
		st.mrt[i] = -1
	}
	kinds := len(machine.Kinds)
	st.freeCnt = resizeInts(st.freeCnt, kinds*ii)
	st.words64 = (ii + 63) / 64
	if cap(st.freeBits) < kinds*st.words64 {
		st.freeBits = make([]uint64, kinds*st.words64)
	} else {
		st.freeBits = st.freeBits[:kinds*st.words64]
	}
	for i := range st.freeBits {
		st.freeBits[i] = 0
	}
	for k := range st.units {
		cnt := len(st.units[k])
		for row := 0; row < ii; row++ {
			st.freeCnt[k*ii+row] = cnt
			if cnt > 0 {
				st.freeBits[k*st.words64+row>>6] |= 1 << (uint(row) & 63)
			}
		}
	}
	st.ptr = 0
}

// resizeInts returns buf with exactly n elements, reusing its backing
// array whenever it is large enough.
func resizeInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// heights computes the height-based priority of every node at the given
// II into st.h: height(u) = max over out-edges e=(u,v) of
// height(v) + delay(e) - II*distance(e), with sinks at 0 — the same
// Bellman-Ford-style relaxation as the standalone heights in mii.go, but
// over reused buffers and the precomputed delay table.
func (st *imsState) heights(ii int) {
	g := st.g
	ne := g.NumEdges()
	for i := 0; i < st.n; i++ {
		st.h[i] = 0
	}
	for i := 0; i < ne; i++ {
		e := g.Edge(i)
		st.w[i] = st.delay[e.From] - ii*e.Distance
	}
	for round := 0; round < st.n+1; round++ {
		changed := false
		for i := 0; i < ne; i++ {
			e := g.Edge(i)
			if v := st.h[e.To] + st.w[i]; v > st.h[e.From] {
				st.h[e.From] = v
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// tryII attempts to find a schedule at a fixed II with a bounded budget.
// A nil error with ok == false means the budget ran out (try a larger
// II); a non-nil error means the machine configuration itself cannot
// host the loop and no II will help.
//
// On success the start/fu arrays are handed to the Schedule and replaced
// with fresh ones, so a (hypothetical) later attempt could not alias the
// returned schedule; in practice Run returns immediately.
func (st *imsState) tryII(ii, budgetRatio int) (*Schedule, bool, error) {
	g, n := st.g, st.n
	st.heights(ii)

	// Priority order: higher height first, then lower node ID — a strict
	// total order, so any correct sort reproduces the reference ordering
	// (pinned by TestPriorityOrderMatchesReferenceSort). slices.SortFunc
	// sorts the reused order slice without the per-attempt comparator
	// closure and reflection-based swaps of sort.Slice.
	h := st.h
	for i := range st.order {
		st.order[i] = i
	}
	slices.SortFunc(st.order, func(a, b int) int {
		switch {
		case h[a] > h[b]:
			return -1
		case h[a] < h[b]:
			return 1
		default:
			return a - b
		}
	})
	for i, id := range st.order {
		st.rank[id] = i
	}

	st.reset(ii)

	budget := budgetRatio * n
	if budget < 32 {
		budget = 32
	}
	unplaced := n
	for unplaced > 0 && budget > 0 {
		budget--
		u := st.nextUnscheduled()
		if u < 0 {
			// Cannot happen while unplaced > 0: the priority order covers
			// every node, so a placed-everything state contradicts the
			// unplaced count. A malformed order is the only way here, so
			// fail with enough context to diagnose it — through the same
			// contextual-error path as findSlot — instead of taking the
			// whole sweep down with a panic.
			return nil, false, fmt.Errorf(
				"sched: loop %s at II=%d: %d operations unplaced but none unscheduled in the priority order (inconsistent scheduler state)",
				g.LoopName, ii, unplaced)
		}
		estart := st.earliestStart(u)
		slot, fu, found := st.findSlot(u, estart)
		if !found {
			// Cannot happen with fully pipelined units occupying one
			// reservation cell each: at II >= ResMII the kind has at
			// most II*units operations, so some cell is free, and the
			// II-cycle search window visits every kernel row. A
			// malformed machine config is the only way here, so fail
			// with enough context to diagnose it instead of taking the
			// whole sweep down.
			node := g.Node(u)
			return nil, false, fmt.Errorf(
				"sched: loop %s at II=%d: no free %s reservation cell for op %s on %s (inconsistent machine config)",
				g.LoopName, ii, node.Op.FUKind(), node.Label(), st.m.Name())
		}
		unplaced += st.place(u, slot, fu)
	}
	if unplaced > 0 {
		return nil, false, nil
	}
	s := &Schedule{Graph: g, Mach: st.m, II: ii, Start: st.start, FU: st.fu}
	st.start = make([]int, n)
	st.fu = make([]int, n)
	return s, true, nil
}

// nextUnscheduled returns the highest-priority unscheduled node, or -1
// when every node is placed (which the caller reports as an
// inconsistent-state error; see the call site). ptr is a lower bound on
// the first unplaced rank — everything below it is placed — so the scan
// resumes where the last one stopped instead of rescanning the full
// order; evictions rewind ptr to keep the invariant (see evict).
func (st *imsState) nextUnscheduled() int {
	for st.ptr < st.n && st.placed[st.order[st.ptr]] {
		st.ptr++
	}
	if st.ptr == st.n {
		return -1
	}
	return st.order[st.ptr]
}

// earliestStart computes the earliest legal issue cycle of u with respect
// to its currently scheduled predecessors.
func (st *imsState) earliestStart(u int) int {
	g := st.g
	estart := 0
	for _, ei := range g.InEdgeIndices(u) {
		e := g.Edge(ei)
		if !st.placed[e.From] {
			continue
		}
		t := st.start[e.From] + st.delay[e.From] - st.ii*e.Distance
		if t > estart {
			estart = t
		}
	}
	return estart
}

// findSlot searches cycles [estart, estart+II-1] for a free unit of the
// right kind, preferring the least-loaded unit (which spreads operations
// across clusters as a real cluster scheduler would). The cycle search
// is a find-first-set over the kind's free-row bitset — one probe per
// 64 kernel rows instead of a per-cycle per-unit scan — and only the
// single row it lands on is scanned for the least-loaded free unit,
// exactly the unit the reference scan would have picked (the bitset
// yields the first cycle in the window whose row has any free cell,
// which is precisely where the reference scan stops).
func (st *imsState) findSlot(u, estart int) (slot, fu int, ok bool) {
	k := st.kindOf[u]
	r0 := mod(estart, st.ii)
	d, found := st.firstFreeRowOffset(k, r0)
	if !found {
		return 0, 0, false
	}
	row := r0 + d
	if row >= st.ii {
		row -= st.ii
	}
	best := -1
	base := row * len(st.unitLoad)
	for _, ui := range st.units[k] {
		if st.mrt[base+ui] >= 0 {
			continue
		}
		if best < 0 || st.unitLoad[ui] < st.unitLoad[best] {
			best = ui
		}
	}
	if best < 0 {
		return 0, 0, false // free count and bitset out of sync; impossible
	}
	return estart + d, best, true
}

// firstFreeRowOffset returns the smallest offset d in [0, II) such that
// kernel row (r0 + d) mod II has a free unit of kind k, scanning the
// kind's free-row bitset circularly from r0.
func (st *imsState) firstFreeRowOffset(k, r0 int) (int, bool) {
	words := st.freeBits[k*st.words64 : (k+1)*st.words64]
	wi := r0 >> 6
	// Rows [r0, II): the first word masked below r0, then whole words.
	if b := words[wi] &^ (1<<(uint(r0)&63) - 1); b != 0 {
		return wi<<6 + bits.TrailingZeros64(b) - r0, true
	}
	for i := wi + 1; i < len(words); i++ {
		if b := words[i]; b != 0 {
			return i<<6 + bits.TrailingZeros64(b) - r0, true
		}
	}
	// Wrap: rows [0, r0), the last word masked at and above r0.
	for i := 0; i < wi; i++ {
		if b := words[i]; b != 0 {
			return i<<6 + bits.TrailingZeros64(b) + st.ii - r0, true
		}
	}
	if b := words[wi] & (1<<(uint(r0)&63) - 1); b != 0 {
		return wi<<6 + bits.TrailingZeros64(b) + st.ii - r0, true
	}
	return 0, false
}

// takeCell records that one unit of kind k in the row was occupied,
// clearing the row's free bit when the last unit fills.
func (st *imsState) takeCell(k, row int) {
	i := k*st.ii + row
	st.freeCnt[i]--
	if st.freeCnt[i] == 0 {
		st.freeBits[k*st.words64+row>>6] &^= 1 << (uint(row) & 63)
	}
}

// freeCell is takeCell's inverse, setting the row's free bit again when
// the count leaves zero.
func (st *imsState) freeCell(k, row int) {
	i := k*st.ii + row
	if st.freeCnt[i] == 0 {
		st.freeBits[k*st.words64+row>>6] |= 1 << (uint(row) & 63)
	}
	st.freeCnt[i]++
}

// place schedules u at (slot, fu) — a free reservation cell by findSlot's
// contract — and evicts any scheduled neighbor whose dependence
// constraint the placement violates (which is how IMS untangles
// recurrences whose members were placed out of order). It returns the net
// change in the number of unscheduled nodes (-1 for u itself, +1 per
// eviction).
func (st *imsState) place(u, slot, fu int) int {
	g := st.g
	row := mod(slot, st.ii)
	delta := 0
	st.mrt[row*len(st.unitLoad)+fu] = u
	st.start[u] = slot
	st.fu[u] = fu
	st.placed[u] = true
	st.unitLoad[fu]++
	st.takeCell(st.kindOf[u], row)
	delta--

	// Dependence-violating neighbors. The producing side of an out-edge
	// is u itself, so its delay is the one precomputed for u.
	du := st.delay[u]
	for _, ei := range g.OutEdgeIndices(u) {
		e := g.Edge(ei)
		if e.To != u && st.placed[e.To] &&
			st.start[e.To] < slot+du-st.ii*e.Distance {
			st.evict(e.To)
			delta++
		}
	}
	for _, ei := range g.InEdgeIndices(u) {
		e := g.Edge(ei)
		if e.From != u && st.placed[e.From] &&
			slot < st.start[e.From]+st.delay[e.From]-st.ii*e.Distance {
			st.evict(e.From)
			delta++
		}
	}
	return delta
}

func (st *imsState) evict(v int) {
	row := mod(st.start[v], st.ii)
	st.mrt[row*len(st.unitLoad)+st.fu[v]] = -1
	st.freeCell(st.kindOf[v], row)
	st.unitLoad[st.fu[v]]--
	st.placed[v] = false
	st.start[v] = -1
	st.fu[v] = -1
	if st.rank[v] < st.ptr {
		st.ptr = st.rank[v]
	}
}
