package sched

import (
	"fmt"

	"ncdrf/internal/ddg"
	"ncdrf/internal/machine"
)

// ResMII returns the resource-constrained minimum initiation interval:
// for each functional-unit kind, ceil(ops of that kind / units of that
// kind), maximized over kinds. An error is returned if the loop uses a
// kind the machine lacks.
func ResMII(g *ddg.Graph, m *machine.Config) (int, error) {
	var counts [len(machine.Kinds)]int
	for _, n := range g.Nodes() {
		counts[n.Op.FUKind()]++
	}
	// Visit the kinds in a fixed order: when a loop needs several kinds
	// the machine lacks, the error must name the same one every run.
	// machine.Kinds is ascending in FUKind, the same order the previous
	// map-and-sort implementation visited.
	mii := 1
	for _, kind := range machine.Kinds {
		ops := counts[kind]
		if ops == 0 {
			continue
		}
		units := m.CountOfKind(kind)
		if units == 0 {
			return 0, fmt.Errorf("sched: machine %s has no %s units but loop %s needs %d",
				m.Name(), kind, g.LoopName, ops)
		}
		need := (ops + units - 1) / units
		if need > mii {
			mii = need
		}
	}
	return mii, nil
}

// RecMII returns the recurrence-constrained minimum initiation interval:
// the smallest II such that the dependence-constraint graph with edge
// weights delay(e) - II*distance(e) has no positive-weight cycle. For an
// acyclic graph it is 1.
func RecMII(g *ddg.Graph, m *machine.Config) int {
	// Per-edge delays are II-independent: compute them once and share the
	// relaxation buffers across every probe of the binary search instead
	// of reallocating dist and weights per candidate II.
	ne := g.NumEdges()
	delay := make([]int, ne)
	hi := 1 // II equal to the sum of all delays kills every cycle
	for i := 0; i < ne; i++ {
		delay[i] = EdgeDelay(g, m, g.Edge(i))
		hi += delay[i]
	}
	dist := make([]int, g.NumNodes())
	lo := 1
	// Binary search on the predicate "no positive cycle at II", which is
	// monotone in II (raising II only lowers weights).
	for lo < hi {
		mid := lo + (hi-lo)/2
		if hasPositiveCycle(g, delay, dist, mid) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// hasPositiveCycle reports whether the constraint graph at the given II
// contains a positive-weight cycle, using Bellman-Ford-style relaxation:
// if longest-path distances still relax after N rounds, a positive cycle
// exists. delay holds per-edge delays indexed like g.Edge; dist is a
// caller-owned scratch buffer of NumNodes length.
func hasPositiveCycle(g *ddg.Graph, delay, dist []int, ii int) bool {
	n := g.NumNodes()
	ne := g.NumEdges()
	for i := range dist {
		dist[i] = 0 // longest path from a virtual source to each node
	}
	for round := 0; round < n; round++ {
		changed := false
		for i := 0; i < ne; i++ {
			e := g.Edge(i)
			if d := dist[e.From] + delay[i] - ii*e.Distance; d > dist[e.To] {
				dist[e.To] = d
				changed = true
			}
		}
		if !changed {
			return false
		}
	}
	// One more relaxation round: any further improvement proves a cycle.
	for i := 0; i < ne; i++ {
		e := g.Edge(i)
		if dist[e.From]+delay[i]-ii*e.Distance > dist[e.To] {
			return true
		}
	}
	return false
}

// edgeWeights precomputes the constraint-graph weight of every edge at
// the given II, delay(e) - II*distance(e), hoisting the delay lookup out
// of the O(N·E) relaxation loops in hasPositiveCycle and heights.
func edgeWeights(g *ddg.Graph, m *machine.Config, edges []ddg.Edge, ii int) []int {
	w := make([]int, len(edges))
	for i, e := range edges {
		w[i] = EdgeDelay(g, m, e) - ii*e.Distance
	}
	return w
}

// MII returns max(ResMII, RecMII) along with both components.
func MII(g *ddg.Graph, m *machine.Config) (mii, res, rec int, err error) {
	res, err = ResMII(g, m)
	if err != nil {
		return 0, 0, 0, err
	}
	rec = RecMII(g, m)
	mii = res
	if rec > mii {
		mii = rec
	}
	return mii, res, rec, nil
}

// heights computes the height-based scheduling priority of every node at
// the given II: height(u) = max over out-edges e=(u,v) of
// height(v) + delay(e) - II*distance(e), with sinks at 0. Valid whenever
// the constraint graph has no positive cycle (II >= RecMII).
func heights(g *ddg.Graph, m *machine.Config, ii int) []int {
	n := g.NumNodes()
	h := make([]int, n)
	edges := g.Edges()
	w := edgeWeights(g, m, edges, ii)
	for round := 0; round < n+1; round++ {
		changed := false
		for i, e := range edges {
			if v := h[e.To] + w[i]; v > h[e.From] {
				h[e.From] = v
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return h
}
