package regfile

import (
	"testing"
)

func TestFileValidate(t *testing.T) {
	good := File{Registers: 32, Bits: 64, ReadPorts: 4, WritePorts: 2}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []File{
		{Registers: 0, Bits: 64, ReadPorts: 4, WritePorts: 2},
		{Registers: 32, Bits: 0, ReadPorts: 4, WritePorts: 2},
		{Registers: 32, Bits: 64, ReadPorts: 0, WritePorts: 2},
		{Registers: 32, Bits: 64, ReadPorts: 4, WritePorts: 0},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("Validate accepted %+v", bad)
		}
	}
}

func TestAreaQuadraticInPorts(t *testing.T) {
	base := File{Registers: 64, Bits: 64, ReadPorts: 4, WritePorts: 2}
	doubled := File{Registers: 64, Bits: 64, ReadPorts: 8, WritePorts: 4}
	if got := doubled.Area() / base.Area(); got != 4 {
		t.Fatalf("doubling ports must quadruple area, got factor %v", got)
	}
	moreRegs := File{Registers: 128, Bits: 64, ReadPorts: 4, WritePorts: 2}
	if got := moreRegs.Area() / base.Area(); got != 2 {
		t.Fatalf("doubling registers must double area, got factor %v", got)
	}
}

func TestAccessTimeLogarithmic(t *testing.T) {
	a := File{Registers: 32, Bits: 64, ReadPorts: 4, WritePorts: 2}
	b := File{Registers: 64, Bits: 64, ReadPorts: 4, WritePorts: 2}
	if diff := b.AccessTime() - a.AccessTime(); diff != 1 {
		t.Fatalf("doubling registers must add exactly 1 (log2), got %v", diff)
	}
	c := File{Registers: 32, Bits: 64, ReadPorts: 8, WritePorts: 2}
	if diff := c.AccessTime() - a.AccessTime(); diff != 1 {
		t.Fatalf("doubling read ports must add exactly 1 (log2), got %v", diff)
	}
}

// TestDualBeatsUnifiedOnAccessTime reproduces the section 3.2 argument:
// splitting into two subfiles with half the read ports each is faster
// than one big file, at the same capacity.
func TestDualBeatsUnifiedOnAccessTime(t *testing.T) {
	const regs, bits, units = 64, 64, 6
	uni := Unified(regs, bits, units)
	dual := ConsistentDual(regs, bits, units)
	if !(dual.AccessTime() < uni.AccessTime()) {
		t.Fatalf("dual access %v !< unified %v", dual.AccessTime(), uni.AccessTime())
	}
}

// TestNCDRFCheaperThanDoubling reproduces the section 6 claim: the
// non-consistent dual file with R registers per subfile is cheaper in
// area and faster in access than a unified file with 2R registers, while
// offering comparable capacity.
func TestNCDRFCheaperThanDoubling(t *testing.T) {
	const regs, bits, units = 32, 64, 6
	ncdrf := NonConsistentDual(regs, bits, units)
	doubled := Unified(2*regs, bits, units)
	if !(ncdrf.TotalArea() < doubled.TotalArea()) {
		t.Fatalf("NCDRF area %v !< doubled unified %v", ncdrf.TotalArea(), doubled.TotalArea())
	}
	if !(ncdrf.AccessTime() < doubled.AccessTime()) {
		t.Fatalf("NCDRF access %v !< doubled unified %v", ncdrf.AccessTime(), doubled.AccessTime())
	}
	if ncdrf.Capacity != 2*regs {
		t.Fatalf("NCDRF capacity = %d, want %d", ncdrf.Capacity, 2*regs)
	}
}

// TestNCDRFSameCostAsConsistent verifies the core selling point: the
// non-consistent organization costs exactly what the consistent dual
// costs (same structure), but holds up to twice the values.
func TestNCDRFSameCostAsConsistent(t *testing.T) {
	const regs, bits, units = 32, 64, 6
	cons := ConsistentDual(regs, bits, units)
	ncdrf := NonConsistentDual(regs, bits, units)
	if cons.TotalArea() != ncdrf.TotalArea() {
		t.Fatal("area must match the consistent dual")
	}
	if cons.AccessTime() != ncdrf.AccessTime() {
		t.Fatal("access time must match the consistent dual")
	}
	if ncdrf.Capacity != 2*cons.Capacity {
		t.Fatalf("capacity %d, want twice %d", ncdrf.Capacity, cons.Capacity)
	}
}

func TestOrganizationShapes(t *testing.T) {
	uni := Unified(64, 64, 4)
	if len(uni.Files) != 1 || uni.Files[0].ReadPorts != 8 || uni.Files[0].WritePorts != 4 {
		t.Fatalf("unified shape wrong: %+v", uni)
	}
	dual := ConsistentDual(64, 64, 4)
	if len(dual.Files) != 2 || dual.Files[0].ReadPorts != 4 || dual.Files[0].WritePorts != 4 {
		t.Fatalf("dual shape wrong: %+v", dual)
	}
}
