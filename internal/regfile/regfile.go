// Package regfile implements the VLSI register-file cost models of
// section 3.2: area is linear in the number of registers and bits and
// quadratic in the number of ports (each port adds a wordline and a
// bitline per cell), and access time grows logarithmically with the
// number of registers and of read ports. The absolute scale is
// normalized; only ratios between organizations are meaningful, which is
// all the paper's argument needs.
package regfile

import (
	"fmt"
	"math"
)

// File describes one multiported register subfile.
type File struct {
	// Registers is the number of registers.
	Registers int
	// Bits is the width of each register.
	Bits int
	// ReadPorts and WritePorts are the port counts.
	ReadPorts, WritePorts int
}

// Validate checks the parameters.
func (f File) Validate() error {
	if f.Registers < 1 || f.Bits < 1 || f.ReadPorts < 1 || f.WritePorts < 1 {
		return fmt.Errorf("regfile: invalid file %+v", f)
	}
	return nil
}

// Area returns the normalized silicon area of the file: each storage
// cell's side grows linearly with the ports crossing it, so cell area is
// quadratic in ports, and the file is registers*bits cells.
func (f File) Area() float64 {
	p := float64(f.ReadPorts + f.WritePorts)
	return float64(f.Registers) * float64(f.Bits) * p * p
}

// AccessTime returns the normalized read access time of the file:
// t = 1 + log2(registers) + log2(readPorts), after the logarithmic decoder
// and bitline models the paper cites.
func (f File) AccessTime() float64 {
	return 1 + math.Log2(float64(f.Registers)) + math.Log2(float64(f.ReadPorts))
}

// Organization is a register-file implementation built from one or more
// subfiles.
type Organization struct {
	// Name labels the organization.
	Name string
	// Files are the subfiles (one for unified, two for the duals).
	Files []File
	// Capacity is the number of distinct values the organization can
	// hold (registers for unified/consistent, up to the sum of subfiles
	// for the non-consistent dual).
	Capacity int
}

// TotalArea sums the subfile areas.
func (o Organization) TotalArea() float64 {
	sum := 0.0
	for _, f := range o.Files {
		sum += f.Area()
	}
	return sum
}

// AccessTime returns the slowest subfile's access time (the cycle-time
// limiter).
func (o Organization) AccessTime() float64 {
	worst := 0.0
	for _, f := range o.Files {
		if t := f.AccessTime(); t > worst {
			worst = t
		}
	}
	return worst
}

// Unified builds a single multiported file for a machine with units
// functional units, each needing two read ports and one write port.
func Unified(regs, bits, units int) Organization {
	return Organization{
		Name:     "unified",
		Capacity: regs,
		Files: []File{{
			Registers: regs, Bits: bits,
			ReadPorts: 2 * units, WritePorts: units,
		}},
	}
}

// ConsistentDual builds the POWER2-style implementation: two subfiles
// with identical contents, each serving one cluster's read ports (half
// of the total) but receiving every write.
func ConsistentDual(regs, bits, units int) Organization {
	sub := File{
		Registers: regs, Bits: bits,
		ReadPorts: units, WritePorts: units, // 2*units/2 reads; all writes
	}
	return Organization{Name: "consistent-dual", Capacity: regs, Files: []File{sub, sub}}
}

// NonConsistentDual builds the paper's organization: the same physical
// structure as the consistent dual — so identical area and access time —
// but with independently addressed subfiles, holding up to twice the
// distinct values (globals replicated, locals private).
func NonConsistentDual(regs, bits, units int) Organization {
	o := ConsistentDual(regs, bits, units)
	o.Name = "non-consistent-dual"
	o.Capacity = 2 * regs // upper bound: all values local
	return o
}
