package experiment

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ncdrf/internal/core"
	"ncdrf/internal/loops"
	"ncdrf/internal/machine"
	"ncdrf/internal/perf"
	"ncdrf/internal/pipeline"
)

// TestCurveMatchesPerfAggregates pins the curve projections to the
// perf-package aggregates computed from the same evaluations: the curve
// is a different bookkeeping of identical sums, so relative
// performance, traffic density and spilled-loop counts must match
// exactly — this is what lets Fig8and9 rebase onto the curve without
// moving a single figure value.
func TestCurveMatchesPerfAggregates(t *testing.T) {
	corpus := loops.Kernels()[:12]
	m := machine.Eval(6)
	const regs = 32
	eng := testEng()

	curve, err := PerfCurve(ctx0, eng, corpus, m, []int{regs})
	if err != nil {
		t.Fatal(err)
	}
	if err := curve.Err(); err != nil {
		t.Fatal(err)
	}
	ideal, err := ModelRuns(ctx0, eng, corpus, m, core.Ideal, regs)
	if err != nil {
		t.Fatal(err)
	}
	ports := m.CountOfKind(machine.MemPort)
	for _, model := range core.Models {
		runs := ideal
		if model != core.Ideal {
			if runs, err = ModelRuns(ctx0, eng, corpus, m, model, regs); err != nil {
				t.Fatal(err)
			}
		}
		wantRel, err := perf.RelPerformance(ideal, runs)
		if err != nil {
			t.Fatal(err)
		}
		wantDens, err := perf.TrafficDensity(runs, ports)
		if err != nil {
			t.Fatal(err)
		}
		pt, ok := curve.Point(m.Name(), model.String(), regs)
		if !ok {
			t.Fatalf("curve missing %v point", model)
		}
		rel, ok := curve.RelPerformance(m.Name(), model.String(), regs)
		if !ok || rel != wantRel {
			t.Fatalf("%v: curve rel perf = %v (ok=%v), perf package says %v", model, rel, ok, wantRel)
		}
		if d := pt.Density(ports); d != wantDens {
			t.Fatalf("%v: curve density = %v, perf package says %v", model, d, wantDens)
		}
		if got, want := pt.SpillLoops(), perf.SpilledLoops(runs); got != want {
			t.Fatalf("%v: curve spilled loops = %d, perf package says %d", model, got, want)
		}
		if got, want := pt.Cycles, perf.TotalCycles(runs); got != want {
			t.Fatalf("%v: curve cycles = %d, perf package says %d", model, got, want)
		}
	}
}

// TestBuildCurveAggregation drives BuildCurve over hand-made rows:
// axis ordering, point sums, spill-op and fit projections, and the
// failure accounting.
func TestBuildCurveAggregation(t *testing.T) {
	rows := []pipeline.Row{
		{Loop: "a", Machine: "m1", Model: "ideal", Regs: 16, II: 2, Trips: 10, MemOps: 2},
		{Loop: "b", Machine: "m1", Model: "ideal", Regs: 16, II: 3, Trips: 10, MemOps: 1},
		{Loop: "a", Machine: "m1", Model: "swapped", Regs: 16, II: 2, Trips: 10, MemOps: 4, Spilled: 1},
		{Loop: "b", Machine: "m1", Model: "swapped", Regs: 16, II: 3, Trips: 10, MemOps: 1},
		{Loop: "a", Machine: "m1", Model: "ideal", Regs: 8, II: 2, Trips: 10, MemOps: 2},
		{Loop: "b", Machine: "m1", Model: "ideal", Regs: 8, II: 3, Trips: 10, MemOps: 1},
		{Loop: "a", Machine: "m1", Model: "swapped", Regs: 8, II: 4, Trips: 10, MemOps: 6, Spilled: 2},
		{Loop: "b", Machine: "m1", Model: "swapped", Regs: 8, Error: "does not converge"},
	}
	c := BuildCurve(rows)
	if got := c.Regs; len(got) != 2 || got[0] != 8 || got[1] != 16 {
		t.Fatalf("regs axis = %v, want ascending [8 16]", got)
	}
	if got := c.Models; len(got) != 2 || got[0] != "ideal" || got[1] != "swapped" {
		t.Fatalf("models axis = %v", got)
	}
	p, ok := c.Point("m1", "swapped", 16)
	if !ok || p.Loops != 2 || p.FitLoops != 1 || p.SpilledValues != 1 {
		t.Fatalf("swapped@16 point wrong: %+v ok=%v", p, ok)
	}
	if pct := p.FitPct(); pct != 50 {
		t.Fatalf("fit%% = %v, want 50", pct)
	}
	if ops, ok := c.SpillOps("m1", "swapped", 16); !ok || ops != 2 {
		t.Fatalf("spill ops = %d ok=%v, want 2 (5 mem ops vs 3 ideal)", ops, ok)
	}
	rel, ok := c.RelPerformance("m1", "swapped", 16)
	if !ok || rel != 1.0 {
		t.Fatalf("rel perf @16 = %v ok=%v, want exactly 1.0 (same IIs)", rel, ok)
	}
	// The failed cell: counted, excluded from sums, reported by Err.
	p8, _ := c.Point("m1", "swapped", 8)
	if p8.Failed != 1 || p8.Loops != 2 || p8.FitLoops != 0 || p8.SpillLoops() != 1 {
		t.Fatalf("swapped@8 failure accounting wrong: %+v", p8)
	}
	// Baseline-relative metrics compare matched populations: only loop
	// "a" survived swapped@8, so the ideal baseline is restricted to
	// loop "a" (20 cycles, 2 mem ops) — NOT the full-corpus baseline,
	// which would credit the failed loop as saved cycles and report the
	// broken cell as faster than ideal.
	if rel, ok := c.RelPerformance("m1", "swapped", 8); !ok || rel != 0.5 {
		t.Fatalf("swapped@8 rel perf = %v ok=%v, want 0.5 (20 ideal cycles / 40 model cycles)", rel, ok)
	}
	if ops, ok := c.SpillOps("m1", "swapped", 8); !ok || ops != 4 {
		t.Fatalf("swapped@8 spill ops = %d ok=%v, want 4 (6 mem ops vs loop a's 2 ideal)", ops, ok)
	}
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "does not converge") {
		t.Fatalf("Err() = %v, want the row failure", err)
	}
	// Without Ideal rows there is no baseline at all: the relative
	// metrics must report not-ok instead of guessing.
	noIdeal := BuildCurve(rows[2:4])
	if _, ok := noIdeal.RelPerformance("m1", "swapped", 16); ok {
		t.Fatal("rel perf without an ideal baseline must not be ok")
	}
	if _, ok := noIdeal.SpillOps("m1", "swapped", 16); ok {
		t.Fatal("spill ops without an ideal baseline must not be ok")
	}
	// No ideal baseline for a cell that only exists under one model.
	if _, ok := c.RelPerformance("m1", "swapped", 99); ok {
		t.Fatal("rel perf of a missing cell must not be ok")
	}
	if !math.IsNaN(p8.Density(0)) {
		t.Fatal("density with no ports must be NaN")
	}
}

// TestCurveRenderForms smoke-tests the three renderers over a real
// (small) sweep.
func TestCurveRenderForms(t *testing.T) {
	corpus := loops.Kernels()[:6]
	curve, err := PerfCurve(ctx0, testEng(), corpus, machine.Eval(3), []int{16, 32, 64})
	if err != nil {
		t.Fatal(err)
	}
	var tb bytes.Buffer
	if err := curve.Render(&tb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"register sensitivity (eval-L3, 6 loops): % of loops allocatable without spilling",
		"spill memory ops per iteration",
		"performance relative to ideal",
		"swapped",
	} {
		if !strings.Contains(tb.String(), want) {
			t.Fatalf("table render missing %q:\n%s", want, tb.String())
		}
	}
	var csv bytes.Buffer
	if err := curve.RenderCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "machine,model,regs,") {
		t.Fatalf("csv header wrong:\n%s", csv.String())
	}
	var ch bytes.Buffer
	if err := curve.RenderChart(&ch); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ch.String(), "legend:") {
		t.Fatalf("chart missing legend:\n%s", ch.String())
	}
}

// TestCurveCSVGolden pins the curve CSV over the curated kernels to a
// golden file, the same way the Figure 6/7 CSVs are pinned — the curve
// subsystem provably reproduces the paper-corpus numbers byte for byte.
func TestCurveCSVGolden(t *testing.T) {
	curve, err := PerfCurve(ctx0, testEng(), loops.Kernels(), machine.Eval(3), []int{16, 32, 48, 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := curve.Err(); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := curve.RenderCSV(&got); err != nil {
		t.Fatal(err)
	}
	name := filepath.Join("testdata", "curve_kernels_lat3.csv")
	want, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("curve CSV drifted from golden %s\ngot:\n%s\nwant:\n%s", name, got.Bytes(), want)
	}
}
