package experiment

import (
	"bytes"
	"testing"

	"ncdrf/internal/core"
	"ncdrf/internal/loops"
	"ncdrf/internal/machine"
	"ncdrf/internal/pipeline"
	"ncdrf/internal/sweep"
)

// This file pins the monotonicity property the frontier executor's
// dominance pruning rests on, over the real kernels corpus: per (loop,
// machine, model) series along an ascending register axis,
//
//   - fit is monotone — a loop that allocates without spill code at R
//     registers does so at every R' > R;
//   - fit results are budget-independent — every fit row of a series is
//     identical except for the Regs column;
//   - spill traffic is monotone — Spilled and MemOps never increase as
//     the file grows;
//   - failure is monotone — a cell never fails above a compiling cell.
//
// If a pipeline change ever breaks one of these, this test localizes
// the violating series; the frontier executor itself would also catch
// it at run time (guards + dense fallback), so curve output stays
// correct either way — but the eval-count win would silently erode,
// which is why the property is pinned here as well.

// denseSeries evaluates the grid densely and groups its rows per
// (loop, machine, model) in ascending-regs order.
func denseSeries(t *testing.T, grid sweep.Grid) map[[3]string][]pipeline.Row {
	t.Helper()
	rows, err := testEng().Rows(ctx0, grid)
	if err != nil {
		t.Fatal(err)
	}
	series := map[[3]string][]pipeline.Row{}
	for _, r := range rows {
		k := [3]string{r.Loop, r.Machine, r.Model}
		series[k] = append(series[k], r)
	}
	for k, s := range series {
		if len(s) != len(grid.Regs) {
			t.Fatalf("series %v has %d rows, want %d", k, len(s), len(grid.Regs))
		}
		for i := 1; i < len(s); i++ {
			if s[i].Regs <= s[i-1].Regs {
				t.Fatalf("series %v rows not ascending in regs", k)
			}
		}
	}
	return series
}

// sameModuloRegs compares two rows ignoring the register budget.
func sameModuloRegs(a, b pipeline.Row) bool {
	a.Regs, b.Regs = 0, 0
	return a == b
}

// TestCorpusMonotonicity checks the dominance relations over the whole
// kernels corpus, both evaluation machines, all four models and a
// register axis spanning heavy spill pressure through comfortable fit.
func TestCorpusMonotonicity(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus-wide sweep")
	}
	grid := sweep.Grid{
		Corpus:   loops.Kernels(),
		Machines: []*machine.Config{machine.Eval(3), machine.Eval(6)},
		Models:   core.Models[:],
		Regs:     []int{4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128},
	}
	for k, s := range denseSeries(t, grid) {
		fitAt := -1 // index of the first fit row
		lastOK := -1
		for i, r := range s {
			if r.Error != "" {
				if lastOK >= 0 {
					t.Errorf("series %v: fails at %d regs but compiles at %d regs", k, r.Regs, s[lastOK].Regs)
				}
				continue
			}
			if lastOK >= 0 {
				if r.Spilled > s[lastOK].Spilled {
					t.Errorf("series %v: spilled values rise %d -> %d going %d -> %d regs",
						k, s[lastOK].Spilled, r.Spilled, s[lastOK].Regs, r.Regs)
				}
				if r.MemOps > s[lastOK].MemOps {
					t.Errorf("series %v: mem ops rise %d -> %d going %d -> %d regs",
						k, s[lastOK].MemOps, r.MemOps, s[lastOK].Regs, r.Regs)
				}
			}
			lastOK = i
			if r.Spilled == 0 {
				if fitAt < 0 {
					fitAt = i
				}
				if !sameModuloRegs(r, s[fitAt]) {
					t.Errorf("series %v: fit rows differ between %d and %d regs:\n  %+v\n  %+v",
						k, s[fitAt].Regs, r.Regs, s[fitAt], r)
				}
			} else if fitAt >= 0 {
				t.Errorf("series %v: spills %d values at %d regs after fitting at %d regs",
					k, r.Spilled, r.Regs, s[fitAt].Regs)
			}
		}
	}
}

// TestFrontierCurveMatchesDense is the end-to-end equivalence of the
// curve subsystem's two executors: FrontierCurve and PerfCurve over the
// same configuration must render byte-identical tables and CSV —
// implied rows are indistinguishable from computed ones downstream.
func TestFrontierCurveMatchesDense(t *testing.T) {
	corpus := loops.Kernels()[:16]
	m := machine.Eval(6)
	regs := []int{4, 8, 12, 16, 24, 32, 48, 64, 96, 128}

	dense, err := PerfCurve(ctx0, testEng(), corpus, m, regs)
	if err != nil {
		t.Fatal(err)
	}
	var violations []sweep.FrontierViolation
	frontier, err := FrontierCurve(ctx0, testEng(), corpus, m, regs, func(v sweep.FrontierViolation) {
		violations = append(violations, v)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range violations {
		t.Errorf("unexpected dense fallback for %s/%s (%s): %s", v.Loop, v.Model, v.Machine, v.Detail)
	}

	render := func(c *Curve, f func(*Curve, *bytes.Buffer) error) []byte {
		var buf bytes.Buffer
		if err := f(c, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	csvOf := func(c *Curve, buf *bytes.Buffer) error { return c.RenderCSV(buf) }
	tabOf := func(c *Curve, buf *bytes.Buffer) error { return c.Render(buf) }
	if d, f := render(dense, csvOf), render(frontier, csvOf); !bytes.Equal(d, f) {
		t.Fatalf("frontier curve CSV differs from dense:\ndense:\n%s\nfrontier:\n%s", d, f)
	}
	if d, f := render(dense, tabOf), render(frontier, tabOf); !bytes.Equal(d, f) {
		t.Fatalf("frontier curve tables differ from dense:\ndense:\n%s\nfrontier:\n%s", d, f)
	}
}

// TestFrontierCurveMemoized pins the memo contract FrontierCurve
// documents: the second call with the same configuration replays the
// memoized curve — same pointer, no second sweep (the eval-miss counter
// does not move), and no replayed violation callbacks.
func TestFrontierCurveMemoized(t *testing.T) {
	corpus := loops.Kernels()[:4]
	m := machine.Eval(3)
	regs := []int{8, 16, 32, 64}
	eng := testEng()

	first, err := FrontierCurve(ctx0, eng, corpus, m, regs, nil)
	if err != nil {
		t.Fatal(err)
	}
	misses := eng.StageStats().Eval.Misses
	calls := 0
	second, err := FrontierCurve(ctx0, eng, corpus, m, regs, func(sweep.FrontierViolation) { calls++ })
	if err != nil {
		t.Fatal(err)
	}
	if second != first {
		t.Fatal("memo replay returned a different curve")
	}
	if got := eng.StageStats().Eval.Misses; got != misses {
		t.Fatalf("memo replay computed %d extra evals", got-misses)
	}
	if calls != 0 {
		t.Fatalf("memo replay fired %d violation callbacks", calls)
	}
}
