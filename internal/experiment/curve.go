package experiment

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"ncdrf/internal/core"
	"ncdrf/internal/ddg"
	"ncdrf/internal/machine"
	"ncdrf/internal/pipeline"
	"ncdrf/internal/report"
	"ncdrf/internal/sweep"
)

// This file is the register-sensitivity curve subsystem: the paper's
// central question — how does each register-file organization degrade
// as the file shrinks (Figures 8/9 are four samples of that curve) —
// generalized to a dense axis. BuildCurve aggregates sweep result rows
// into per-(machine, model, regs) points; the Curve projections derive
// the figure metrics (fit %, spill ops, relative performance) from the
// point sums, and Fig8and9 is a thin projection over the same curve.

// CurvePoint aggregates every result row of one (machine, model, regs)
// grid cell over the corpus. Fields are raw sums so projections (and
// merges of independently built curves) stay exact; the derived metrics
// are methods.
type CurvePoint struct {
	Machine string
	Model   string
	Regs    int

	// Loops counts rows aggregated, Failed those carrying a compile
	// error, FitLoops those allocated without any spill code.
	Loops, Failed, FitLoops int

	// SpilledValues sums values pushed to memory to make loops fit.
	SpilledValues int
	// MemOps sums static memory operations per iteration, spill code
	// included.
	MemOps int
	// IISum sums achieved initiation intervals.
	IISum int
	// Cycles sums steady-state execution cycles (II × trips).
	Cycles int64
	// MemAccesses sums dynamic memory accesses (mem ops × trips).
	MemAccesses int64

	// The Ideal-model baseline restricted to this point's surviving
	// loops: failed loops contribute nothing to Cycles/MemOps above, so
	// comparing against the full corpus baseline would invert the
	// metrics exactly where the file is smallest (a model that fails
	// 80% of the corpus would look faster than ideal). BaselineLoops
	// counts the surviving loops that had an ideal row; the
	// baseline-relative projections require it to cover them all.
	BaselineLoops  int
	BaselineCycles int64
	BaselineMemOps int
}

// SpillLoops counts loops that needed spill code.
func (p CurvePoint) SpillLoops() int { return p.Loops - p.Failed - p.FitLoops }

// FitPct is the percentage of the cell's loops allocated without
// spilling (failed loops count against it).
func (p CurvePoint) FitPct() float64 {
	if p.Loops == 0 {
		return math.NaN()
	}
	return 100 * float64(p.FitLoops) / float64(p.Loops)
}

// MeanII is the average achieved initiation interval.
func (p CurvePoint) MeanII() float64 {
	if n := p.Loops - p.Failed; n > 0 {
		return float64(p.IISum) / float64(n)
	}
	return math.NaN()
}

// Density is the average fraction of memory-port bandwidth used per
// cycle — the Figure 9 metric, same formula as perf.TrafficDensity.
func (p CurvePoint) Density(memPorts int) float64 {
	if memPorts < 1 || p.Cycles <= 0 {
		return math.NaN()
	}
	return float64(p.MemAccesses) / (float64(p.Cycles) * float64(memPorts))
}

type curveKey struct {
	machine, model string
	regs           int
}

// Curve is a set of register-sensitivity points over one result-row
// stream, indexed by (machine, model, regs) with the axes kept in
// presentation order (machines and models by first appearance, regs
// ascending).
type Curve struct {
	Machines []string
	Models   []string
	Regs     []int

	points map[curveKey]*CurvePoint

	// failures records per-row compile errors, capped like the worker
	// pool's error aggregation; failCount is the uncapped total.
	failures  []string
	failCount int
}

// maxCurveFailures bounds the failure messages Err reports.
const maxCurveFailures = 16

// BuildCurve aggregates result rows — an `ncdrf sweep`/`curve` stream,
// a merged shard set, or Engine.Rows output — into a curve. Rows may
// arrive in any order; failed rows are counted (see Err) but still
// contribute their cell to the axes.
func BuildCurve(rows []pipeline.Row) *Curve {
	// First pass: the Ideal rows, keyed per loop, so each model point
	// can accumulate a baseline over exactly its own surviving loops.
	type loopKey struct {
		machine, loop string
		regs          int
	}
	idealRows := map[loopKey]pipeline.Row{}
	idealName := core.Ideal.String()
	for _, r := range rows {
		if r.Model == idealName && r.Error == "" {
			idealRows[loopKey{machine: r.Machine, loop: r.Loop, regs: r.Regs}] = r
		}
	}

	c := &Curve{points: map[curveKey]*CurvePoint{}}
	seenM := map[string]bool{}
	seenMod := map[string]bool{}
	seenR := map[int]bool{}
	for _, r := range rows {
		if !seenM[r.Machine] {
			seenM[r.Machine] = true
			c.Machines = append(c.Machines, r.Machine)
		}
		if !seenMod[r.Model] {
			seenMod[r.Model] = true
			c.Models = append(c.Models, r.Model)
		}
		if !seenR[r.Regs] {
			seenR[r.Regs] = true
			c.Regs = append(c.Regs, r.Regs)
		}
		k := curveKey{machine: r.Machine, model: r.Model, regs: r.Regs}
		p := c.points[k]
		if p == nil {
			p = &CurvePoint{Machine: r.Machine, Model: r.Model, Regs: r.Regs}
			c.points[k] = p
		}
		p.Loops++
		if r.Error != "" {
			p.Failed++
			c.failCount++
			if len(c.failures) < maxCurveFailures {
				c.failures = append(c.failures,
					fmt.Sprintf("%s/%s (%s, %d regs): %s", r.Loop, r.Model, r.Machine, r.Regs, r.Error))
			}
			continue
		}
		if r.Spilled == 0 {
			p.FitLoops++
		}
		p.SpilledValues += r.Spilled
		p.MemOps += r.MemOps
		p.IISum += r.II
		p.Cycles += int64(r.II) * r.Trips
		p.MemAccesses += int64(r.MemOps) * r.Trips
		if ideal, ok := idealRows[loopKey{machine: r.Machine, loop: r.Loop, regs: r.Regs}]; ok {
			p.BaselineLoops++
			p.BaselineCycles += int64(ideal.II) * ideal.Trips
			p.BaselineMemOps += ideal.MemOps
		}
	}
	sort.Ints(c.Regs)
	return c
}

// Err reports the per-row compile failures the curve absorbed, joined
// (capped at maxCurveFailures messages plus a count), or nil.
func (c *Curve) Err() error {
	if c.failCount == 0 {
		return nil
	}
	errs := make([]error, 0, len(c.failures)+1)
	for _, f := range c.failures {
		errs = append(errs, errors.New(f))
	}
	if c.failCount > len(c.failures) {
		errs = append(errs, fmt.Errorf("... and %d more failed cells", c.failCount-len(c.failures)))
	}
	return errors.Join(errs...)
}

// Point returns the aggregate of one (machine, model, regs) cell.
func (c *Curve) Point(machineName, model string, regs int) (CurvePoint, bool) {
	p, ok := c.points[curveKey{machine: machineName, model: model, regs: regs}]
	if !ok {
		return CurvePoint{}, false
	}
	return *p, true
}

// baselined returns the point when its Ideal baseline covers every
// surviving loop — the precondition of every baseline-relative metric.
// A partial baseline (the stream had no Ideal rows, or an ideal row is
// itself missing/failed for a surviving loop) makes the comparison
// meaningless, so the projections report not-ok and render as "-".
func (c *Curve) baselined(machineName, model string, regs int) (CurvePoint, bool) {
	p, ok := c.Point(machineName, model, regs)
	if !ok || p.BaselineLoops != p.Loops-p.Failed {
		return CurvePoint{}, false
	}
	return p, true
}

// RelPerformance is the Figure 8 metric at one cell: aggregate
// performance relative to the Ideal baseline of the same machine and
// register size (baseline cycles / model cycles; 1.0 = no loss). The
// baseline is restricted to the cell's own surviving loops, so a cell
// with failed loops compares matched populations instead of crediting
// the failures as saved cycles. ok is false when the stream carried no
// usable Ideal baseline or the cell has no surviving cycles.
func (c *Curve) RelPerformance(machineName, model string, regs int) (float64, bool) {
	p, ok := c.baselined(machineName, model, regs)
	if !ok || p.BaselineCycles <= 0 || p.Cycles <= 0 {
		return math.NaN(), false
	}
	return float64(p.BaselineCycles) / float64(p.Cycles), true
}

// SpillOps is the static spill traffic at one cell: memory operations
// per iteration summed over the surviving loops, minus the Ideal
// baseline's (spill-free) memory operations for the same loops — i.e.
// exactly the loads and stores the spiller inserted. ok is false
// without a covering Ideal baseline.
func (c *Curve) SpillOps(machineName, model string, regs int) (int, bool) {
	p, ok := c.baselined(machineName, model, regs)
	if !ok {
		return 0, false
	}
	return p.MemOps - p.BaselineMemOps, true
}

// series builds one rendering series per model for machine m.
func (c *Curve) series(machineName string, value func(model string, regs int) float64) []report.CurveSeries {
	markers := map[string]byte{}
	for _, model := range c.Models {
		marker := byte('?')
		if model != "" {
			marker = model[0]
		}
		markers[model] = marker
	}
	var out []report.CurveSeries
	for _, model := range c.Models {
		vals := make([]float64, len(c.Regs))
		for i, regs := range c.Regs {
			vals[i] = value(model, regs)
		}
		out = append(out, report.CurveSeries{Name: model, Marker: markers[model], Values: vals})
	}
	return out
}

// curveMetric is one renderable projection of the curve.
type curveMetric struct {
	name   string
	format func(float64) string
	value  func(c *Curve, machineName, model string, regs int) float64
}

func curveMetrics() []curveMetric {
	return []curveMetric{
		{
			name:   "% of loops allocatable without spilling",
			format: report.Pct,
			value: func(c *Curve, m, model string, regs int) float64 {
				p, ok := c.Point(m, model, regs)
				if !ok {
					return math.NaN()
				}
				return p.FitPct()
			},
		},
		{
			name:   "spill memory ops per iteration (corpus total)",
			format: report.Int,
			value: func(c *Curve, m, model string, regs int) float64 {
				v, ok := c.SpillOps(m, model, regs)
				if !ok {
					return math.NaN()
				}
				return float64(v)
			},
		},
		{
			name:   "performance relative to ideal",
			format: report.F2,
			value: func(c *Curve, m, model string, regs int) float64 {
				v, ok := c.RelPerformance(m, model, regs)
				if !ok {
					return math.NaN()
				}
				return v
			},
		},
	}
}

// reportCurve assembles the generic renderer for one machine + metric.
func (c *Curve) reportCurve(machineName string, met curveMetric) *report.Curve {
	loops := 0
	if p, ok := c.Point(machineName, c.Models[0], c.Regs[0]); ok {
		loops = p.Loops
	}
	return &report.Curve{
		Title:   fmt.Sprintf("register sensitivity (%s, %d loops): %s", machineName, loops, met.name),
		XHeader: "regs",
		Format:  met.format,
		Xs:      c.Regs,
		Series: c.series(machineName, func(model string, regs int) float64 {
			return met.value(c, machineName, model, regs)
		}),
	}
}

// Render writes the curve as aligned tables: per machine, one table per
// metric (fit %, spill ops, relative performance), one row per register
// size, one column per model — the tabular form of Figures 8/9's axis.
func (c *Curve) Render(w io.Writer) error {
	if len(c.Regs) == 0 || len(c.Models) == 0 {
		return fmt.Errorf("experiment: empty curve (no result rows)")
	}
	for mi, m := range c.Machines {
		for ti, met := range curveMetrics() {
			if mi+ti > 0 {
				if _, err := fmt.Fprintln(w); err != nil {
					return err
				}
			}
			if err := c.reportCurve(m, met).Render(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// RenderChart draws, per machine, the fit-% and relative-performance
// curves as ASCII charts (both are natural percentages).
func (c *Curve) RenderChart(w io.Writer) error {
	if len(c.Regs) == 0 || len(c.Models) == 0 {
		return fmt.Errorf("experiment: empty curve (no result rows)")
	}
	for mi, m := range c.Machines {
		if mi > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		mets := curveMetrics()
		fit := c.reportCurve(m, mets[0])
		if err := fit.RenderChart(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		rel := c.reportCurve(m, mets[2])
		rel.Title = fmt.Sprintf("register sensitivity (%s): performance relative to ideal, %%", m)
		for si := range rel.Series {
			for vi, v := range rel.Series[si].Values {
				rel.Series[si].Values[vi] = 100 * v
			}
		}
		if err := rel.RenderChart(w); err != nil {
			return err
		}
	}
	return nil
}

// RenderCSV writes one flat CSV over every cell: identity columns plus
// the raw sums and derived metrics, machine-major then model then regs.
// Cells without an Ideal baseline leave the baseline-relative columns
// empty.
func (c *Curve) RenderCSV(w io.Writer) error {
	tb := &report.Table{
		Headers: []string{
			"machine", "model", "regs", "loops", "failed",
			"fit_pct", "spilled_loops", "spilled_values", "spill_ops",
			"mean_ii", "cycles", "rel_perf",
		},
	}
	ff := func(v float64, format func(float64) string) string {
		if math.IsNaN(v) {
			return ""
		}
		return format(v)
	}
	for _, m := range c.Machines {
		for _, model := range c.Models {
			for _, regs := range c.Regs {
				p, ok := c.Point(m, model, regs)
				if !ok {
					continue
				}
				spillOps, rel := "", ""
				if v, ok := c.SpillOps(m, model, regs); ok {
					spillOps = fmt.Sprintf("%d", v)
				}
				if v, ok := c.RelPerformance(m, model, regs); ok {
					rel = fmt.Sprintf("%.4f", v)
				}
				tb.Add(m, model, fmt.Sprintf("%d", regs),
					fmt.Sprintf("%d", p.Loops), fmt.Sprintf("%d", p.Failed),
					ff(p.FitPct(), func(v float64) string { return fmt.Sprintf("%.1f", v) }),
					fmt.Sprintf("%d", p.SpillLoops()),
					fmt.Sprintf("%d", p.SpilledValues),
					spillOps,
					ff(p.MeanII(), func(v float64) string { return fmt.Sprintf("%.2f", v) }),
					fmt.Sprintf("%d", p.Cycles),
					rel)
			}
		}
	}
	return tb.CSV(w)
}

// PerfCurve evaluates corpus × all models × regs on machine m with the
// base-major sweep executor and aggregates the rows into a curve. The
// whole result set is memoized on the engine (like RegisterSweep), so
// projections sharing a configuration — Figure 8, Figure 9, repeated
// CLI metrics — pay for the sweep once.
func PerfCurve(ctx context.Context, eng *sweep.Engine, corpus []*ddg.Graph, m *machine.Config, regs []int) (*Curve, error) {
	key := eng.CorpusKey(fmt.Sprintf("curve/%v", regs), corpus, m)
	v, err := eng.Memo(ctx, key, func() (any, error) {
		grid := sweep.Grid{
			Corpus:   corpus,
			Machines: []*machine.Config{m},
			Models:   core.Models[:],
			Regs:     regs,
		}
		rows, err := eng.Rows(ctx, grid)
		if err != nil {
			return nil, err
		}
		return BuildCurve(rows), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*Curve), nil
}

// FrontierCurve is PerfCurve with the dominance-pruned frontier
// executor: same grid, same aggregation, the same *Curve out — so the
// figure projections, report tables, CSV and charts are oblivious to
// which executor produced the rows — but only O(log regs) cells per
// (loop, model) series are evaluated beyond the spill regions. The axis
// must satisfy the frontier contract (finite, strictly ascending; see
// sweep.SweepFrontier).
//
// onViolation receives each series that contradicted the dominance
// assumptions and fell back to dense evaluation; may be nil. The result
// set is memoized on the engine under its own key (a frontier curve and
// a dense curve of the same configuration are separate memo entries,
// though their rows are identical), so onViolation only fires when the
// sweep actually runs — a memo hit replays no violations.
func FrontierCurve(ctx context.Context, eng *sweep.Engine, corpus []*ddg.Graph, m *machine.Config, regs []int, onViolation func(sweep.FrontierViolation)) (*Curve, error) {
	key := eng.CorpusKey(fmt.Sprintf("curve-frontier/%v", regs), corpus, m)
	v, err := eng.Memo(ctx, key, func() (any, error) {
		grid := sweep.Grid{
			Corpus:   corpus,
			Machines: []*machine.Config{m},
			Models:   core.Models[:],
			Regs:     regs,
		}
		var rows []pipeline.Row
		err := eng.SweepFrontier(ctx, grid, func(r sweep.Result) {
			rows = append(rows, r)
		}, sweep.FrontierOptions{OnViolation: onViolation})
		if err != nil {
			return nil, err
		}
		return BuildCurve(rows), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*Curve), nil
}
