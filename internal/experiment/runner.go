// Package experiment wires the staged pipeline (internal/pipeline) into
// the paper's evaluation runners: Table 1 and Figures 6, 7, 8 and 9.
// Every runner executes on a shared sweep.Engine — a cancellable worker
// pool over a stage-granular, content-addressed cache — so the base
// stage (modulo schedule + lifetimes) of each (loop, machine) pair is
// computed once and shared by every model, figure and register size.
package experiment

import (
	"context"
	"fmt"

	"ncdrf/internal/core"
	"ncdrf/internal/ddg"
	"ncdrf/internal/loopgen"
	"ncdrf/internal/loops"
	"ncdrf/internal/machine"
	"ncdrf/internal/perf"
	"ncdrf/internal/sweep"
	"ncdrf/internal/vm"
)

// Corpus assembles the evaluation workload: the curated kernels plus the
// synthetic Perfect-Club-shaped corpus.
func Corpus(p loopgen.Params) []*ddg.Graph {
	out := loops.Kernels()
	out = append(out, loopgen.Generate(p)...)
	return out
}

// DefaultCorpus returns the corpus with the calibrated defaults.
func DefaultCorpus() []*ddg.Graph { return Corpus(loopgen.Defaults()) }

// Requirements holds the unlimited-register requirement of one loop under
// every model, plus the scheduling facts shared by all models.
type Requirements struct {
	Name  string
	Trips int64
	II    int
	Ops   int
	Regs  [core.NumModels]int
}

// RegisterSweep schedules every loop once (registers unlimited) and
// computes the register requirement under each model. This produces the
// data behind Figures 6 and 7, which differ only in how they weight the
// same sweep — so the whole result set is memoized on the engine and the
// second figure (or a Table 1 config reusing the machine) pays nothing.
func RegisterSweep(ctx context.Context, eng *sweep.Engine, corpus []*ddg.Graph, m *machine.Config) ([]Requirements, error) {
	v, err := eng.Memo(ctx, eng.CorpusKey("register-sweep", corpus, m), func() (any, error) {
		return registerSweep(ctx, eng, corpus, m)
	})
	if err != nil {
		return nil, err
	}
	return v.([]Requirements), nil
}

func registerSweep(ctx context.Context, eng *sweep.Engine, corpus []*ddg.Graph, m *machine.Config) ([]Requirements, error) {
	out := make([]Requirements, len(corpus))
	err := eng.ForEach(ctx, len(corpus), func(i int) error {
		g := corpus[i]
		b, err := eng.Base(ctx, g, m)
		if err != nil {
			return fmt.Errorf("%s: %w", g.LoopName, err)
		}
		r := Requirements{Name: g.LoopName, Trips: g.TripsOrOne(), II: b.Sched.II, Ops: g.NumNodes()}
		for _, model := range core.Models {
			req, _, err := b.Requirement(model)
			if err != nil {
				return fmt.Errorf("%s/%v: %w", g.LoopName, model, err)
			}
			r.Regs[model] = req
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CompileLoop runs the staged limited-register pipeline for one loop
// under one model: spill until the allocation fits, then report the run.
func CompileLoop(ctx context.Context, eng *sweep.Engine, g *ddg.Graph, m *machine.Config, model core.Model, regs int) (perf.LoopRun, error) {
	res, err := eng.Compile(ctx, g, m, model, regs)
	if err != nil {
		return perf.LoopRun{}, fmt.Errorf("%s/%v: %w", g.LoopName, model, err)
	}
	return perf.LoopRun{
		Name:    g.LoopName,
		Trips:   g.TripsOrOne(),
		II:      res.Sched.II,
		MemOps:  res.MemOps(),
		Spilled: res.SpilledValues,
	}, nil
}

// ModelRuns compiles the whole corpus under one model with the given
// register-file size. Results are memoized on the engine; the Ideal
// model ignores the register size, so every size shares one run.
func ModelRuns(ctx context.Context, eng *sweep.Engine, corpus []*ddg.Graph, m *machine.Config, model core.Model, regs int) ([]perf.LoopRun, error) {
	if model == core.Ideal {
		regs = 0
	}
	key := eng.CorpusKey(fmt.Sprintf("model-runs/%v/%d", model, regs), corpus, m)
	v, err := eng.Memo(ctx, key, func() (any, error) {
		return modelRuns(ctx, eng, corpus, m, model, regs)
	})
	if err != nil {
		return nil, err
	}
	return v.([]perf.LoopRun), nil
}

func modelRuns(ctx context.Context, eng *sweep.Engine, corpus []*ddg.Graph, m *machine.Config, model core.Model, regs int) ([]perf.LoopRun, error) {
	out := make([]perf.LoopRun, len(corpus))
	err := eng.ForEach(ctx, len(corpus), func(i int) error {
		run, err := CompileLoop(ctx, eng, corpus[i], m, model, regs)
		if err != nil {
			return err
		}
		out[i] = run
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// VerifySample functionally verifies a sample of the corpus: every
// stride-th loop is compiled under every non-ideal model and executed on
// the simulated rotating register files, checking the store stream
// bit-for-bit against the sequential reference. It returns the number of
// loop/model combinations verified.
func VerifySample(ctx context.Context, eng *sweep.Engine, corpus []*ddg.Graph, m *machine.Config, regs, iters, stride int) (int, error) {
	if stride < 1 {
		stride = 1
	}
	var sample []*ddg.Graph
	for i := 0; i < len(corpus); i += stride {
		sample = append(sample, corpus[i])
	}
	models := []core.Model{core.Unified, core.Partitioned, core.Swapped}
	count := len(sample) * len(models)
	err := eng.ForEach(ctx, len(sample), func(i int) error {
		for _, model := range models {
			if err := vm.VerifyModelWith(ctx, eng, sample[i], m, model, regs, iters); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return count, nil
}
