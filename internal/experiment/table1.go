package experiment

import (
	"context"
	"io"

	"ncdrf/internal/core"
	"ncdrf/internal/ddg"
	"ncdrf/internal/machine"
	"ncdrf/internal/report"
	"ncdrf/internal/sweep"
)

// Table1Row is one configuration row of Table 1: the percentage of loops
// whose unified register requirement fits in 16/32/64 registers, and the
// percentage of execution cycles those loops represent.
type Table1Row struct {
	Config string
	// PctLoops[i] and PctCycles[i] correspond to Sizes[i].
	PctLoops  [3]float64
	PctCycles [3]float64
}

// Table1Sizes are the register-file sizes of Table 1.
var Table1Sizes = [3]int{16, 32, 64}

// Table1Result is the full table.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 reproduces Table 1: for each PxLy configuration, schedule every
// loop with a unified register file and unlimited registers, then report
// how many loops (and how much of the dynamic time) fit in 16, 32 and 64
// registers without spilling.
func Table1(ctx context.Context, eng *sweep.Engine, corpus []*ddg.Graph) (*Table1Result, error) {
	res := &Table1Result{}
	for _, m := range machine.Table1Configs() {
		reqs, err := RegisterSweep(ctx, eng, corpus, m)
		if err != nil {
			return nil, err
		}
		row := Table1Row{Config: m.Name()}
		var totalLoops, totalCycles float64
		var fitLoops, fitCycles [3]float64
		for _, r := range reqs {
			cycles := float64(r.II) * float64(r.Trips)
			totalLoops++
			totalCycles += cycles
			for i, size := range Table1Sizes {
				if r.Regs[core.Unified] <= size {
					fitLoops[i]++
					fitCycles[i] += cycles
				}
			}
		}
		for i := range Table1Sizes {
			row.PctLoops[i] = 100 * fitLoops[i] / totalLoops
			row.PctCycles[i] = 100 * fitCycles[i] / totalCycles
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func (t *Table1Result) table() *report.Table {
	tb := &report.Table{
		Title: "Table 1: % of loops (and % of cycles) allocatable without spilling, unified file",
		Headers: []string{"config",
			"loops<=16", "cycles<=16",
			"loops<=32", "cycles<=32",
			"loops<=64", "cycles<=64"},
	}
	for _, row := range t.Rows {
		tb.Add(row.Config,
			report.Pct(row.PctLoops[0]), report.Pct(row.PctCycles[0]),
			report.Pct(row.PctLoops[1]), report.Pct(row.PctCycles[1]),
			report.Pct(row.PctLoops[2]), report.Pct(row.PctCycles[2]))
	}
	return tb
}

// Render writes the table in the paper's layout.
func (t *Table1Result) Render(w io.Writer) error { return t.table().Render(w) }

// RenderCSV writes the table as CSV.
func (t *Table1Result) RenderCSV(w io.Writer) error { return t.table().CSV(w) }
