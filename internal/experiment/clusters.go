package experiment

import (
	"context"
	"fmt"
	"io"

	"ncdrf/internal/core"
	"ncdrf/internal/ddg"
	"ncdrf/internal/machine"
	"ncdrf/internal/report"
	"ncdrf/internal/sweep"
)

// ClusterScalingRow is one machine width in the cluster-scaling
// extension study.
type ClusterScalingRow struct {
	Clusters int
	AvgII    float64
	// AvgRegs[model] is the mean per-(sub)file register requirement.
	AvgRegs [core.NumModels]float64
}

// ClusterScalingResult is the full extension table.
type ClusterScalingResult struct {
	Latency int
	Rows    []ClusterScalingRow
}

// EvalN builds an n-cluster machine of {1 adder, 1 multiplier, 1 memory
// port} per cluster — the evaluation machine generalized beyond the
// paper's two clusters, for the future-work direction of section 6
// (the organization "could be applied to other processor
// implementations").
func EvalN(n, lat int) *machine.Config {
	if n == 2 {
		// Identical to the paper's evaluation machine; returning it by
		// its canonical name keeps the name-keyed schedule cache shared
		// between the cluster study and the figure runners.
		return machine.Eval(lat)
	}
	specs := make([]machine.ClusterSpec, n)
	for i := range specs {
		specs[i] = machine.ClusterSpec{Adders: 1, Multipliers: 1, MemPorts: 1}
	}
	return machine.MustNew(fmt.Sprintf("eval%dc-L%d", n, lat), specs, lat, lat, 1)
}

// ClusterScaling evaluates the register-file models while the machine
// widens from one to several clusters: more clusters mean more
// parallelism (lower II) but also more cross-cluster consumers, testing
// how far the non-consistent organization's advantage extends.
func ClusterScaling(ctx context.Context, eng *sweep.Engine, corpus []*ddg.Graph, lat int, clusterCounts []int) (*ClusterScalingResult, error) {
	if len(clusterCounts) == 0 {
		clusterCounts = []int{1, 2, 4}
	}
	res := &ClusterScalingResult{Latency: lat}
	for _, nc := range clusterCounts {
		m := EvalN(nc, lat)
		row := ClusterScalingRow{Clusters: nc}
		type acc struct {
			ii   int
			regs [core.NumModels]int
		}
		accs := make([]acc, len(corpus))
		err := eng.ForEach(ctx, len(corpus), func(i int) error {
			g := corpus[i]
			b, err := eng.Base(ctx, g, m)
			if err != nil {
				return fmt.Errorf("%s on %s: %w", g.LoopName, m.Name(), err)
			}
			a := acc{ii: b.Sched.II}
			for _, model := range core.Models {
				req, _, err := b.Requirement(model)
				if err != nil {
					return err
				}
				a.regs[model] = req
			}
			accs[i] = a
			return nil
		})
		if err != nil {
			return nil, err
		}
		n := float64(len(corpus))
		for _, a := range accs {
			row.AvgII += float64(a.ii) / n
			for _, model := range core.Models {
				row.AvgRegs[model] += float64(a.regs[model]) / n
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render writes the extension table.
func (c *ClusterScalingResult) Render(w io.Writer) error {
	tb := &report.Table{
		Title: fmt.Sprintf("Extension: cluster scaling at latency %d (mean per-subfile registers)", c.Latency),
		Headers: []string{"clusters", "avg II", "unified", "partitioned", "swapped",
			"partitioned/unified"},
	}
	for _, row := range c.Rows {
		ratio := 0.0
		if row.AvgRegs[core.Unified] > 0 {
			ratio = row.AvgRegs[core.Partitioned] / row.AvgRegs[core.Unified]
		}
		tb.Add(fmt.Sprintf("%d", row.Clusters),
			report.F2(row.AvgII),
			report.F2(row.AvgRegs[core.Unified]),
			report.F2(row.AvgRegs[core.Partitioned]),
			report.F2(row.AvgRegs[core.Swapped]),
			report.F2(ratio))
	}
	return tb.Render(w)
}
