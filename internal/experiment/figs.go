package experiment

import (
	"context"
	"fmt"
	"io"
	"math"

	"ncdrf/internal/core"
	"ncdrf/internal/ddg"
	"ncdrf/internal/machine"
	"ncdrf/internal/report"
	"ncdrf/internal/sweep"
)

// cdfModels are the models plotted in Figures 6 and 7 (Ideal has no
// register requirement).
var cdfModels = []core.Model{core.Unified, core.Partitioned, core.Swapped}

// FigXAxis is the register axis used for the cumulative plots, matching
// the paper's 16..128 range.
var FigXAxis = []int{8, 16, 24, 32, 40, 48, 56, 64, 80, 96, 112, 128}

// CDFResult holds one latency's cumulative distributions for Figures 6/7.
type CDFResult struct {
	Latency int
	Dynamic bool // false: Figure 6 (loops), true: Figure 7 (cycles)
	// Series[model] is the percentage of loops (or cycles) allocatable
	// with at most x registers, for each x in FigXAxis.
	Series map[core.Model][]float64
	// P90[model] is the smallest register count covering 90% of the
	// loops (or cycles).
	P90 map[core.Model]int
}

// Fig6 computes the static cumulative distribution of loops over their
// register requirements for one latency (3 or 6), on the section 5.2
// two-cluster evaluation machine.
func Fig6(ctx context.Context, eng *sweep.Engine, corpus []*ddg.Graph, latency int) (*CDFResult, error) {
	return figCDF(ctx, eng, corpus, latency, false)
}

// Fig7 is Fig6 weighted by executed cycles (II * trips): the dynamic
// cumulative distribution.
func Fig7(ctx context.Context, eng *sweep.Engine, corpus []*ddg.Graph, latency int) (*CDFResult, error) {
	return figCDF(ctx, eng, corpus, latency, true)
}

func figCDF(ctx context.Context, eng *sweep.Engine, corpus []*ddg.Graph, latency int, dynamic bool) (*CDFResult, error) {
	m := machine.Eval(latency)
	reqs, err := RegisterSweep(ctx, eng, corpus, m)
	if err != nil {
		return nil, err
	}
	res := &CDFResult{
		Latency: latency,
		Dynamic: dynamic,
		Series:  map[core.Model][]float64{},
		P90:     map[core.Model]int{},
	}
	for _, model := range cdfModels {
		samples := make([]report.Sample, 0, len(reqs))
		for _, r := range reqs {
			w := 1.0
			if dynamic {
				w = float64(r.II) * float64(r.Trips)
			}
			samples = append(samples, report.Sample{Value: r.Regs[model], Weight: w})
		}
		cdf := report.NewCDF(samples)
		res.Series[model] = cdf.Series(FigXAxis)
		res.P90[model] = cdf.Percentile(0.9)
	}
	return res, nil
}

// Render writes the CDF as a table with one row per register count.
func (c *CDFResult) Render(w io.Writer) error { return c.table().Render(w) }

// RenderCSV writes the CDF table as CSV.
func (c *CDFResult) RenderCSV(w io.Writer) error { return c.table().CSV(w) }

func (c *CDFResult) table() *report.Table {
	fig, unit := "Figure 6", "% of loops"
	if c.Dynamic {
		fig, unit = "Figure 7", "% of cycles"
	}
	tb := &report.Table{
		Title:   fmt.Sprintf("%s (latency %d): cumulative %s allocatable with <= R registers", fig, c.Latency, unit),
		Headers: []string{"registers", "unified", "partitioned", "swapped"},
	}
	for i, x := range FigXAxis {
		tb.Add(fmt.Sprintf("%d", x),
			report.Pct(c.Series[core.Unified][i]),
			report.Pct(c.Series[core.Partitioned][i]),
			report.Pct(c.Series[core.Swapped][i]))
	}
	tb.Add("p90",
		fmt.Sprintf("%d regs", c.P90[core.Unified]),
		fmt.Sprintf("%d regs", c.P90[core.Partitioned]),
		fmt.Sprintf("%d regs", c.P90[core.Swapped]))
	return tb
}

// RenderChart draws the CDF as an ASCII line chart (the figures in the
// paper are line plots; the table form is better for diffing, the chart
// for eyeballing).
func (c *CDFResult) RenderChart(w io.Writer) error {
	fig, unit := "Figure 6", "% of loops"
	if c.Dynamic {
		fig, unit = "Figure 7", "% of cycles"
	}
	chart := &report.Chart{
		Title:  fmt.Sprintf("%s (latency %d): cumulative %s vs registers", fig, c.Latency, unit),
		XLabel: "registers",
	}
	markers := map[core.Model]byte{core.Unified: 'u', core.Partitioned: 'p', core.Swapped: 's'}
	for _, model := range cdfModels {
		if err := chart.AddSeries(model.String(), markers[model], FigXAxis, c.Series[model]); err != nil {
			return err
		}
	}
	return chart.Render(w)
}

// PerfConfig identifies one bar group of Figures 8/9.
type PerfConfig struct {
	Latency int
	Regs    int
}

// PerfConfigs are the four configurations of Figures 8 and 9, in the
// paper's order.
var PerfConfigs = []PerfConfig{{3, 32}, {6, 32}, {3, 64}, {6, 64}}

// PerfResult holds Figure 8 (relative performance) and Figure 9 (density
// of memory traffic) data for every configuration and model.
type PerfResult struct {
	Configs []PerfConfig
	// Performance[ci][model]: aggregate performance relative to Ideal.
	Performance [][core.NumModels]float64
	// Density[ci][model]: average memory-port bandwidth fraction used.
	Density [][core.NumModels]float64
	// SpilledLoops[ci][model]: number of loops that needed spill code.
	SpilledLoops [][core.NumModels]int
}

// Fig8and9 runs the full limited-register pipeline over the corpus for
// every configuration and model, producing both figures at once. It is
// a thin projection over the register-sensitivity curve subsystem: each
// configuration is one point of the (memoized, base-major) PerfCurve,
// and the figure metrics are the curve's projections.
func Fig8and9(ctx context.Context, eng *sweep.Engine, corpus []*ddg.Graph, configs []PerfConfig) (*PerfResult, error) {
	if len(configs) == 0 {
		configs = PerfConfigs
	}
	res := &PerfResult{Configs: configs}
	for _, cfg := range configs {
		m := machine.Eval(cfg.Latency)
		curve, err := PerfCurve(ctx, eng, corpus, m, []int{cfg.Regs})
		if err != nil {
			return nil, err
		}
		// The figures have no column for broken cells: a loop that cannot
		// compile fails the whole figure, as the pre-curve runner did.
		if err := curve.Err(); err != nil {
			return nil, err
		}
		memPorts := m.CountOfKind(machine.MemPort)
		var perfRow [core.NumModels]float64
		var densRow [core.NumModels]float64
		var spillRow [core.NumModels]int
		for _, model := range core.Models {
			pt, ok := curve.Point(m.Name(), model.String(), cfg.Regs)
			if !ok {
				return nil, fmt.Errorf("experiment: curve missing cell %s/%v/%d", m.Name(), model, cfg.Regs)
			}
			rel, ok := curve.RelPerformance(m.Name(), model.String(), cfg.Regs)
			if !ok {
				return nil, fmt.Errorf("experiment: no ideal baseline for %s at %d regs", m.Name(), cfg.Regs)
			}
			d := pt.Density(memPorts)
			if math.IsNaN(d) {
				return nil, fmt.Errorf("experiment: degenerate traffic density for %s/%v/%d", m.Name(), model, cfg.Regs)
			}
			perfRow[model] = rel
			densRow[model] = d
			spillRow[model] = pt.SpillLoops()
		}
		res.Performance = append(res.Performance, perfRow)
		res.Density = append(res.Density, densRow)
		res.SpilledLoops = append(res.SpilledLoops, spillRow)
	}
	return res, nil
}

// RenderFig8 writes the relative-performance table (Figure 8).
func (p *PerfResult) RenderFig8(w io.Writer) error {
	tb := &report.Table{
		Title:   "Figure 8: performance relative to ideal (infinite registers)",
		Headers: []string{"config", "ideal", "unified", "partitioned", "swapped"},
	}
	for i, cfg := range p.Configs {
		tb.Add(fmt.Sprintf("L=%d,R=%d", cfg.Latency, cfg.Regs),
			report.F2(p.Performance[i][core.Ideal]),
			report.F2(p.Performance[i][core.Unified]),
			report.F2(p.Performance[i][core.Partitioned]),
			report.F2(p.Performance[i][core.Swapped]))
	}
	return tb.Render(w)
}

// RenderFig9 writes the traffic-density table (Figure 9).
func (p *PerfResult) RenderFig9(w io.Writer) error {
	tb := &report.Table{
		Title:   "Figure 9: density of memory traffic (bus bandwidth fraction per cycle)",
		Headers: []string{"config", "ideal", "unified", "partitioned", "swapped"},
	}
	for i, cfg := range p.Configs {
		tb.Add(fmt.Sprintf("L=%d,R=%d", cfg.Latency, cfg.Regs),
			report.F2(p.Density[i][core.Ideal]),
			report.F2(p.Density[i][core.Unified]),
			report.F2(p.Density[i][core.Partitioned]),
			report.F2(p.Density[i][core.Swapped]))
	}
	return tb.Render(w)
}
