package experiment

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ncdrf/internal/loops"
	"ncdrf/internal/machine"
)

// TestFigCSVGolden pins the Figure 6/7 CSV output on the curated kernel
// corpus to golden files captured from the pre-sweep-engine pipeline, so
// the cached engine provably preserves the paper's numbers byte for byte.
func TestFigCSVGolden(t *testing.T) {
	corpus := loops.Kernels()
	eng := testEng()
	for _, lat := range []int{3, 6} {
		for _, dyn := range []bool{false, true} {
			fig := 6
			if dyn {
				fig = 7
			}
			name := fmt.Sprintf("fig%d_kernels_lat%d.csv", fig, lat)
			t.Run(name, func(t *testing.T) {
				var res *CDFResult
				var err error
				if dyn {
					res, err = Fig7(ctx0, eng, corpus, lat)
				} else {
					res, err = Fig6(ctx0, eng, corpus, lat)
				}
				if err != nil {
					t.Fatal(err)
				}
				var got bytes.Buffer
				if err := res.RenderCSV(&got); err != nil {
					t.Fatal(err)
				}
				want, err := os.ReadFile(filepath.Join("testdata", name))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got.Bytes(), want) {
					t.Fatalf("output drifted from golden %s\ngot:\n%s\nwant:\n%s", name, got.Bytes(), want)
				}
			})
		}
	}
}

// TestPaperPipelineCacheSharing runs the paper's whole pipeline shape
// (Table 1, Figures 6-9, verification) on one shared engine and asserts
// the acceptance property of the staged pipeline: the base stage
// (schedule + lifetimes) is computed once per (loop, machine) and shared
// by every model, figure and register size. Since the base-major sweep
// executor, the figure runs share the base at the *plan* level — one
// request per (loop, machine) group — so total base requests scale with
// groups (roughly 10x the corpus here), not with evaluated units (the
// pre-grouping pipeline made one request per eval miss, 20x+).
func TestPaperPipelineCacheSharing(t *testing.T) {
	corpus := loops.Kernels()
	eng := testEng()
	if _, err := Table1(ctx0, eng, corpus); err != nil {
		t.Fatal(err)
	}
	for _, lat := range []int{3, 6} {
		if _, err := Fig6(ctx0, eng, corpus, lat); err != nil {
			t.Fatal(err)
		}
		if _, err := Fig7(ctx0, eng, corpus, lat); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Fig8and9(ctx0, eng, corpus, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifySample(ctx0, eng, corpus, machine.Eval(6), 0, 8, 5); err != nil {
		t.Fatal(err)
	}
	st := eng.Cache().StageStats()
	if st.Base.Requests() == 0 {
		t.Fatal("pipeline made no base-stage requests")
	}
	if st.Base.Requests() > 12*uint64(len(corpus)) {
		t.Fatalf("base-stage requests scale with units, not groups: %d requests for %d loops",
			st.Base.Requests(), len(corpus))
	}
	// Exactly one base artifact per (loop, machine) pair touched by the
	// exhibits: 4 Table 1 configs + eval machines at latency 3 and 6.
	if want := uint64(len(corpus) * 6); st.Base.Misses != want {
		t.Fatalf("base stage computed %d artifacts, want one per loop x machine = %d",
			st.Base.Misses, want)
	}
	t.Logf("stage stats:\n%s", st)
}
