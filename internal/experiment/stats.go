package experiment

import (
	"fmt"
	"io"
	"sort"

	"ncdrf/internal/ddg"
	"ncdrf/internal/report"
)

// CorpusStats summarizes a workload: size and operation mix, the
// single-use property of section 3.3 (most register instances are read
// exactly once — the premise that makes most values cluster-local), and
// recurrence density.
type CorpusStats struct {
	Loops int
	// Operation mix.
	Ops, Loads, Stores, Arith int
	// Value read counts (flow out-edges per value-producing node).
	Values, SingleUse, MultiUse, Dead int
	// RecurrentLoops counts loops with at least one loop-carried edge.
	RecurrentLoops int
	// Size percentiles (operations per loop).
	SizeP50, SizeP90, SizeMax int
	// Trip-count percentiles.
	TripsP50, TripsP90 int64
}

// SingleUseFrac returns the fraction of consumed values read exactly
// once.
func (s *CorpusStats) SingleUseFrac() float64 {
	consumed := s.SingleUse + s.MultiUse
	if consumed == 0 {
		return 0
	}
	return float64(s.SingleUse) / float64(consumed)
}

// Stats computes corpus statistics.
func Stats(corpus []*ddg.Graph) *CorpusStats {
	st := &CorpusStats{Loops: len(corpus)}
	var sizes []int
	var trips []int64
	for _, g := range corpus {
		sizes = append(sizes, g.NumNodes())
		trips = append(trips, g.TripsOrOne())
		recurrent := false
		for _, e := range g.Edges() {
			if e.Distance > 0 {
				recurrent = true
				break
			}
		}
		if recurrent {
			st.RecurrentLoops++
		}
		for _, n := range g.Nodes() {
			st.Ops++
			switch {
			case n.Op == ddg.LOAD:
				st.Loads++
			case n.Op == ddg.STORE:
				st.Stores++
			default:
				st.Arith++
			}
			if !n.Op.ProducesValue() {
				continue
			}
			st.Values++
			reads := 0
			for _, e := range g.OutEdges(n.ID) {
				if e.Kind == ddg.Flow {
					reads++
				}
			}
			switch {
			case reads == 0:
				st.Dead++
			case reads == 1:
				st.SingleUse++
			default:
				st.MultiUse++
			}
		}
	}
	sort.Ints(sizes)
	sort.Slice(trips, func(i, j int) bool { return trips[i] < trips[j] })
	if len(sizes) > 0 {
		st.SizeP50 = sizes[len(sizes)/2]
		st.SizeP90 = sizes[len(sizes)*9/10]
		st.SizeMax = sizes[len(sizes)-1]
		st.TripsP50 = trips[len(trips)/2]
		st.TripsP90 = trips[len(trips)*9/10]
	}
	return st
}

// Render writes the statistics table.
func (s *CorpusStats) Render(w io.Writer) error {
	tb := &report.Table{
		Title:   "Corpus statistics",
		Headers: []string{"metric", "value"},
	}
	add := func(k, v string) { tb.Add(k, v) }
	add("loops", fmt.Sprintf("%d", s.Loops))
	add("operations", fmt.Sprintf("%d", s.Ops))
	add("  loads", fmt.Sprintf("%d (%.1f%%)", s.Loads, 100*float64(s.Loads)/float64(s.Ops)))
	add("  stores", fmt.Sprintf("%d (%.1f%%)", s.Stores, 100*float64(s.Stores)/float64(s.Ops)))
	add("  arithmetic", fmt.Sprintf("%d (%.1f%%)", s.Arith, 100*float64(s.Arith)/float64(s.Ops)))
	add("values", fmt.Sprintf("%d", s.Values))
	add("  read exactly once", fmt.Sprintf("%d (%.1f%% of consumed)", s.SingleUse, 100*s.SingleUseFrac()))
	add("  read more than once", fmt.Sprintf("%d", s.MultiUse))
	add("  never read in loop", fmt.Sprintf("%d", s.Dead))
	add("loops with recurrences", fmt.Sprintf("%d (%.1f%%)", s.RecurrentLoops, 100*float64(s.RecurrentLoops)/float64(s.Loops)))
	add("loop size p50/p90/max", fmt.Sprintf("%d / %d / %d ops", s.SizeP50, s.SizeP90, s.SizeMax))
	add("trip count p50/p90", fmt.Sprintf("%d / %d", s.TripsP50, s.TripsP90))
	return tb.Render(w)
}
