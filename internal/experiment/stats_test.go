package experiment

import (
	"bytes"
	"strings"
	"testing"

	"ncdrf/internal/core"
	"ncdrf/internal/ddg"
	"ncdrf/internal/loops"
)

func TestStatsOnPaperExample(t *testing.T) {
	st := Stats([]*ddg.Graph{loops.PaperExample()})
	if st.Loops != 1 || st.Ops != 7 {
		t.Fatalf("loops/ops = %d/%d", st.Loops, st.Ops)
	}
	if st.Loads != 2 || st.Stores != 1 || st.Arith != 4 {
		t.Fatalf("mix = %d/%d/%d", st.Loads, st.Stores, st.Arith)
	}
	// Values: L1 read twice (M3, A6); L2, M3, A4, M5, A6 read once.
	if st.Values != 6 || st.SingleUse != 5 || st.MultiUse != 1 || st.Dead != 0 {
		t.Fatalf("reads = %d/%d/%d/%d", st.Values, st.SingleUse, st.MultiUse, st.Dead)
	}
	if got := st.SingleUseFrac(); got < 0.83 || got > 0.84 {
		t.Fatalf("single-use fraction = %v, want 5/6", got)
	}
	if st.RecurrentLoops != 0 {
		t.Fatal("paper example has no recurrences")
	}
	if st.SizeP50 != 7 || st.SizeMax != 7 {
		t.Fatalf("size percentiles = %d/%d", st.SizeP50, st.SizeMax)
	}
}

func TestStatsSingleUseDominatesCorpus(t *testing.T) {
	// The section 3.3 premise: most register instances are read once.
	st := Stats(smallCorpus())
	if frac := st.SingleUseFrac(); frac < 0.55 {
		t.Fatalf("single-use fraction = %.2f; the corpus no longer supports the paper's premise", frac)
	}
	var buf bytes.Buffer
	if err := st.Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Corpus statistics", "read exactly once", "recurrences"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("render missing %q:\n%s", want, buf.String())
		}
	}
}

func TestStatsEmptyValues(t *testing.T) {
	g := ddg.New("dead", 1)
	g.AddNode(ddg.FMUL, "M")
	st := Stats([]*ddg.Graph{g})
	if st.Dead != 1 || st.SingleUseFrac() != 0 {
		t.Fatalf("dead handling wrong: %+v", st)
	}
}

func TestClusterScaling(t *testing.T) {
	corpus := smallCorpus()[:20]
	res, err := ClusterScaling(ctx0, testEng(), corpus, 6, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	one, two := res.Rows[0], res.Rows[1]
	// With a single cluster everything is local: partitioned == unified.
	if one.AvgRegs[core.Partitioned] != one.AvgRegs[core.Unified] {
		t.Fatalf("1-cluster partitioned %v != unified %v",
			one.AvgRegs[core.Partitioned], one.AvgRegs[core.Unified])
	}
	// Two clusters halve (or better) nothing exactly, but must help on
	// average and II must not increase with more resources.
	if two.AvgRegs[core.Partitioned] >= two.AvgRegs[core.Unified] {
		t.Fatalf("2-cluster partitioned %v !< unified %v",
			two.AvgRegs[core.Partitioned], two.AvgRegs[core.Unified])
	}
	if two.AvgII > one.AvgII {
		t.Fatalf("II grew with more clusters: %v -> %v", one.AvgII, two.AvgII)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cluster scaling") {
		t.Fatal("render missing title")
	}
}

func TestEvalN(t *testing.T) {
	m := EvalN(4, 3)
	if m.NumClusters() != 4 || m.NumUnits() != 12 {
		t.Fatalf("EvalN shape: %s", m)
	}
	if m.Latency(0) != 3 {
		t.Fatal("latency wrong")
	}
}

func TestFigP90Summary(t *testing.T) {
	res, err := Fig6(ctx0, testEng(), smallCorpus(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.P90[core.Unified] < res.P90[core.Partitioned] {
		t.Fatalf("p90 unified %d < partitioned %d", res.P90[core.Unified], res.P90[core.Partitioned])
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "p90") {
		t.Fatal("render missing p90 summary")
	}
}
