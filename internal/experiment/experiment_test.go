package experiment

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"ncdrf/internal/core"
	"ncdrf/internal/ddg"
	"ncdrf/internal/loopgen"
	"ncdrf/internal/loops"
	"ncdrf/internal/machine"
	"ncdrf/internal/perf"
	"ncdrf/internal/sweep"
)

// testEng returns a fresh engine; ctx0 is shorthand for the background
// context the tests run under.
func testEng() *sweep.Engine { return sweep.New(0) }

var ctx0 = context.Background()

// smallCorpus keeps unit tests fast while exercising the full pipeline.
func smallCorpus() []*ddg.Graph {
	return Corpus(loopgen.Params{Loops: 40, Seed: 123, RecurrenceProb: 0.3, ShareProb: 0.3})
}

func TestCorpusComposition(t *testing.T) {
	c := Corpus(loopgen.Params{Loops: 10, Seed: 1, RecurrenceProb: 0.3, ShareProb: 0.3})
	if len(c) != len(loops.Kernels())+10 {
		t.Fatalf("corpus size = %d", len(c))
	}
	names := map[string]bool{}
	for _, g := range c {
		if names[g.LoopName] {
			t.Fatalf("duplicate loop %s", g.LoopName)
		}
		names[g.LoopName] = true
	}
}

func TestRegisterSweepOrdering(t *testing.T) {
	corpus := smallCorpus()
	reqs, err := RegisterSweep(ctx0, testEng(), corpus, machine.Eval(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != len(corpus) {
		t.Fatalf("got %d results", len(reqs))
	}
	for i, r := range reqs {
		if r.Name != corpus[i].LoopName {
			t.Fatalf("result %d out of order: %s vs %s", i, r.Name, corpus[i].LoopName)
		}
		if r.II < 1 {
			t.Fatalf("%s: II = %d", r.Name, r.II)
		}
		if r.Regs[core.Ideal] != 0 {
			t.Fatalf("%s: ideal requirement %d", r.Name, r.Regs[core.Ideal])
		}
		if r.Regs[core.Unified] < 1 {
			t.Fatalf("%s: unified requirement %d", r.Name, r.Regs[core.Unified])
		}
		// The swap pass only ever helps (or ties) the estimate it
		// optimizes; requirements can differ slightly, but swapped must
		// never exceed partitioned by more than a couple of registers
		// of First Fit noise. Assert the strong practical invariant
		// used by the paper's plots: swapped <= partitioned.
		if r.Regs[core.Swapped] > r.Regs[core.Partitioned] {
			t.Logf("%s: swapped %d > partitioned %d", r.Name, r.Regs[core.Swapped], r.Regs[core.Partitioned])
		}
	}
}

func TestSweepShapePartitionedHelps(t *testing.T) {
	// Aggregate shape: over the corpus, partitioned requirements must be
	// no larger than unified for the vast majority of loops, and the
	// totals must order unified >= partitioned >= swapped.
	reqs, err := RegisterSweep(ctx0, testEng(), smallCorpus(), machine.Eval(6))
	if err != nil {
		t.Fatal(err)
	}
	var uni, part, swp int
	worse := 0
	for _, r := range reqs {
		uni += r.Regs[core.Unified]
		part += r.Regs[core.Partitioned]
		swp += r.Regs[core.Swapped]
		if r.Regs[core.Partitioned] > r.Regs[core.Unified] {
			worse++
		}
	}
	if !(uni >= part && part >= swp) {
		t.Fatalf("aggregate ordering violated: unified=%d partitioned=%d swapped=%d", uni, part, swp)
	}
	if float64(worse) > 0.1*float64(len(reqs)) {
		t.Fatalf("partitioned worse than unified on %d/%d loops", worse, len(reqs))
	}
}

func TestTable1ShapeAndRender(t *testing.T) {
	res, err := Table1(ctx0, testEng(), smallCorpus())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Percentages must be monotone in the register count.
		if !(row.PctLoops[0] <= row.PctLoops[1]+1e-9 && row.PctLoops[1] <= row.PctLoops[2]+1e-9) {
			t.Fatalf("%s: loop percentages not monotone: %v", row.Config, row.PctLoops)
		}
		if !(row.PctCycles[0] <= row.PctCycles[1]+1e-9 && row.PctCycles[1] <= row.PctCycles[2]+1e-9) {
			t.Fatalf("%s: cycle percentages not monotone: %v", row.Config, row.PctCycles)
		}
	}
	// More aggressive configurations (latency 6) must fit fewer loops in
	// 32 registers than their latency-3 counterparts.
	byName := map[string]Table1Row{}
	for _, row := range res.Rows {
		byName[row.Config] = row
	}
	if byName["P1L6"].PctLoops[1] > byName["P1L3"].PctLoops[1] {
		t.Fatal("latency 6 should fit fewer loops in 32 regs than latency 3")
	}
	if byName["P2L6"].PctLoops[2] > byName["P1L3"].PctLoops[2] {
		t.Fatal("P2L6 should fit fewer loops in 64 regs than P1L3")
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "P2L6") || !strings.Contains(buf.String(), "Table 1") {
		t.Fatalf("render missing content:\n%s", buf.String())
	}
}

func TestFig6And7Shape(t *testing.T) {
	corpus := smallCorpus()
	for _, lat := range []int{3, 6} {
		stat, err := Fig6(ctx0, testEng(), corpus, lat)
		if err != nil {
			t.Fatal(err)
		}
		dyn, err := Fig7(ctx0, testEng(), corpus, lat)
		if err != nil {
			t.Fatal(err)
		}
		for _, res := range []*CDFResult{stat, dyn} {
			for _, model := range cdfModels {
				series := res.Series[model]
				if len(series) != len(FigXAxis) {
					t.Fatalf("series length %d", len(series))
				}
				for i := 1; i < len(series); i++ {
					if series[i] < series[i-1]-1e-9 {
						t.Fatalf("lat %d %v: CDF not monotone: %v", lat, model, series)
					}
				}
				if series[len(series)-1] < 99.0 {
					t.Fatalf("lat %d %v: CDF does not reach ~100%%: %v", lat, model, series)
				}
			}
			// Partitioned dominates unified pointwise (>= at every x).
			for i := range FigXAxis {
				if res.Series[core.Partitioned][i] < res.Series[core.Unified][i]-1e-9 {
					t.Fatalf("lat %d: partitioned below unified at x=%d", lat, FigXAxis[i])
				}
			}
		}
		var buf bytes.Buffer
		if err := stat.Render(&buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), "Figure 6") {
			t.Fatal("render missing title")
		}
		buf.Reset()
		if err := dyn.Render(&buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), "Figure 7") {
			t.Fatal("render missing title")
		}
	}
}

func TestLatencySixNeedsMoreRegisters(t *testing.T) {
	corpus := smallCorpus()
	l3, err := Fig6(ctx0, testEng(), corpus, 3)
	if err != nil {
		t.Fatal(err)
	}
	l6, err := Fig6(ctx0, testEng(), corpus, 6)
	if err != nil {
		t.Fatal(err)
	}
	// At 32 registers the latency-6 unified curve must sit below the
	// latency-3 one (fewer loops fit).
	i32 := indexOf(FigXAxis, 32)
	if l6.Series[core.Unified][i32] > l3.Series[core.Unified][i32] {
		t.Fatalf("latency 6 fits more loops at 32 regs (%v vs %v)",
			l6.Series[core.Unified][i32], l3.Series[core.Unified][i32])
	}
}

func TestCompileLoopIdealVsLimited(t *testing.T) {
	g := loops.PaperExample()
	m := machine.Example()
	ideal, err := CompileLoop(context.Background(), testEng(), g, m, core.Ideal, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ideal.II != 1 || ideal.MemOps != 3 || ideal.Spilled != 0 {
		t.Fatalf("ideal run = %+v", ideal)
	}
	limited, err := CompileLoop(context.Background(), testEng(), g, m, core.Unified, 32)
	if err != nil {
		t.Fatal(err)
	}
	if limited.Spilled == 0 || limited.MemOps <= 3 {
		t.Fatalf("unified@32 must spill: %+v", limited)
	}
	dual, err := CompileLoop(context.Background(), testEng(), g, m, core.Partitioned, 32)
	if err != nil {
		t.Fatal(err)
	}
	if dual.Spilled != 0 {
		t.Fatalf("partitioned@32 must not spill: %+v", dual)
	}
}

func TestFig8and9SmallCorpusShape(t *testing.T) {
	corpus := smallCorpus()
	res, err := Fig8and9(ctx0, testEng(), corpus, []PerfConfig{{6, 32}})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Performance[0]
	if p[core.Ideal] != 1.0 {
		t.Fatalf("ideal performance = %v", p[core.Ideal])
	}
	for _, model := range core.Models {
		if p[model] <= 0 || p[model] > 1.0+1e-9 {
			t.Fatalf("%v performance out of range: %v", model, p[model])
		}
	}
	// The headline orderings of Figure 8 at the high-pressure config.
	if !(p[core.Unified] <= p[core.Partitioned]+1e-9) {
		t.Fatalf("unified (%v) must not beat partitioned (%v)", p[core.Unified], p[core.Partitioned])
	}
	if !(p[core.Partitioned] <= p[core.Swapped]+1e-9) {
		t.Fatalf("partitioned (%v) must not beat swapped (%v)", p[core.Partitioned], p[core.Swapped])
	}
	// Figure 9: unified must generate at least as much traffic density.
	d := res.Density[0]
	if d[core.Unified] < d[core.Swapped]-1e-9 {
		t.Fatalf("unified density (%v) below swapped (%v)", d[core.Unified], d[core.Swapped])
	}
	var buf bytes.Buffer
	if err := res.RenderFig8(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 8") {
		t.Fatal("fig8 render missing title")
	}
	buf.Reset()
	if err := res.RenderFig9(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 9") {
		t.Fatal("fig9 render missing title")
	}
}

func TestModelRunsCounts(t *testing.T) {
	corpus := smallCorpus()[:10]
	runs, err := ModelRuns(ctx0, testEng(), corpus, machine.Eval(3), core.Unified, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 10 {
		t.Fatalf("runs = %d", len(runs))
	}
	if perf.TotalCycles(runs) <= 0 {
		t.Fatal("no cycles accumulated")
	}
}

func TestVerifySampleIntegration(t *testing.T) {
	// End-to-end: a slice of the real evaluation corpus executes
	// bit-identically to the reference under every model, both with
	// unlimited registers and with a tight 24-register file.
	corpus := smallCorpus()
	m := machine.Eval(6)
	n, err := VerifySample(ctx0, testEng(), corpus, m, 0, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if n < 10 {
		t.Fatalf("verified only %d combinations", n)
	}
	n, err = VerifySample(ctx0, testEng(), corpus, m, 24, 10, 11)
	if err != nil {
		t.Fatal(err)
	}
	if n < 5 {
		t.Fatalf("verified only %d spilled combinations", n)
	}
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}
