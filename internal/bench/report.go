package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"

	"ncdrf/internal/core"
	"ncdrf/internal/loops"
	"ncdrf/internal/machine"
	"ncdrf/internal/sweep"
)

// SchemaVersion identifies the BENCH_*.json layout. Bump it only when a
// field changes meaning or disappears; adding fields is backward
// compatible and needs no bump.
const SchemaVersion = 1

// SuiteResult is one measured suite in the report.
type SuiteResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	Unit        string  `json:"unit"`
	UnitsPerOp  int     `json:"units_per_op"`
	UnitsPerSec float64 `json:"units_per_sec"`
}

// Report is the full BENCH_<n>.json document.
type Report struct {
	// Schema is SchemaVersion; readers reject documents they don't know.
	Schema int `json:"ncdrf_bench"`
	// Go/GOOS/GOARCH/CPUs describe the measuring toolchain and host —
	// timings are only comparable within a similar host class, which is
	// why the CI gate prefers allocation counts (host-independent) and
	// applies a generous tolerance to rates.
	Go     string `json:"go"`
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	CPUs   int    `json:"cpus"`
	// Quick marks reduced-benchtime runs (CI smoke); trajectory analysis
	// should prefer full runs.
	Quick  bool          `json:"quick,omitempty"`
	Suites []SuiteResult `json:"suites"`
	// Counters are the pipeline stage counters of one deterministic
	// kernels-corpus sweep (see Counters): cache requests/computes per
	// stage, pinning how much work the sweep architecture avoids.
	Counters map[string]uint64 `json:"counters,omitempty"`
	// Baseline optionally embeds the suite results this report was
	// measured against (e.g. BENCH_1.json carries the pre-optimization
	// scheduler's numbers measured on the same host), making the first
	// trajectory point self-contained.
	Baseline *Baseline `json:"baseline,omitempty"`
}

// Baseline is an embedded reference measurement.
type Baseline struct {
	Note   string        `json:"note,omitempty"`
	Suites []SuiteResult `json:"suites"`
}

// NewReport assembles a report around measured suites.
func NewReport(suites []SuiteResult, counters map[string]uint64, quick bool) *Report {
	return &Report{
		Schema:   SchemaVersion,
		Go:       runtime.Version(),
		GOOS:     runtime.GOOS,
		GOARCH:   runtime.GOARCH,
		CPUs:     runtime.NumCPU(),
		Quick:    quick,
		Suites:   suites,
		Counters: counters,
	}
}

// Suite returns the named suite result, or nil.
func (r *Report) Suite(name string) *SuiteResult {
	for i := range r.Suites {
		if r.Suites[i].Name == name {
			return &r.Suites[i]
		}
	}
	return nil
}

// Write emits the report as indented JSON, newline-terminated.
func (r *Report) Write(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Load reads and validates a report file.
func Load(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("%s: schema %d, this build reads %d", path, r.Schema, SchemaVersion)
	}
	if len(r.Suites) == 0 {
		return nil, fmt.Errorf("%s: no suites", path)
	}
	return &r, nil
}

// NextPath returns the first free BENCH_<n>.json name under dir,
// starting at 1 — the default output of `ncdrf bench`, so each recorded
// run appends the next trajectory point without clobbering history.
func NextPath(dir string) (string, error) {
	for n := 1; n < 10000; n++ {
		p := fmt.Sprintf("%s/BENCH_%d.json", dir, n)
		if _, err := os.Stat(p); os.IsNotExist(err) {
			return p, nil
		} else if err != nil {
			return "", err
		}
	}
	return "", fmt.Errorf("bench: no free BENCH_<n>.json under %s", dir)
}

// Compare checks cur against base and returns an error describing every
// suite whose throughput (units_per_sec) regressed by more than
// maxRegressPct percent or whose allocations per op grew by more than
// maxRegressPct percent. Suites present on only one side are ignored —
// the trajectory may gain or retire suites over time.
func Compare(cur, base *Report, maxRegressPct float64) error {
	var bad []string
	tol := 1 - maxRegressPct/100
	for _, b := range base.Suites {
		c := cur.Suite(b.Name)
		if c == nil {
			continue
		}
		if b.UnitsPerSec > 0 && c.UnitsPerSec < b.UnitsPerSec*tol {
			bad = append(bad, fmt.Sprintf(
				"%s: %s/sec fell %.0f -> %.0f (more than %.0f%% regression)",
				b.Name, b.Unit, b.UnitsPerSec, c.UnitsPerSec, maxRegressPct))
		}
		if b.AllocsPerOp > 0 && c.AllocsPerOp > b.AllocsPerOp*(1+maxRegressPct/100) {
			bad = append(bad, fmt.Sprintf(
				"%s: allocs/op grew %.0f -> %.0f (more than %.0f%%)",
				b.Name, b.AllocsPerOp, c.AllocsPerOp, maxRegressPct))
		}
	}
	if len(bad) > 0 {
		msg := "bench: regression against baseline:"
		for _, s := range bad {
			msg += "\n  " + s
		}
		return fmt.Errorf("%s", msg)
	}
	return nil
}

// Counters runs one deterministic kernels-corpus sweep on a fresh
// engine and snapshots the per-stage cache counters: how many
// schedule/base/eval computations the grid actually costs. It then
// races the frontier executor against the dense one over a dense
// register axis (fresh engine each) and records both eval counts plus
// the axis shape, pinning the dominance-pruning claim as
// host-independent numbers: frontier_eval_computed must stay within
// curve_series x (ceil(log2 curve_axis_points) + spill region) while
// dense_eval_computed is curve_series x curve_axis_points. quick
// shrinks the grids (CI smoke); both variants are fully deterministic,
// so counter drift in a report diff is a real architecture change.
func Counters(ctx context.Context, quick bool) (map[string]uint64, error) {
	ks := loops.Kernels()
	regs := []int{16, 32, 64}
	if quick {
		regs = []int{32}
	}
	grid := sweep.Grid{
		Corpus:   ks,
		Machines: []*machine.Config{machine.Eval(3), machine.Eval(6)},
		Models:   core.Models[:],
		Regs:     regs,
	}
	eng := sweep.New(0)
	if err := eng.Sweep(ctx, grid, func(sweep.Result) {}); err != nil {
		return nil, err
	}
	st := eng.Cache().StageStats()
	out := map[string]uint64{}
	for _, s := range []struct {
		name string
		cs   sweep.CacheStats
	}{{"schedule", st.Schedule}, {"base", st.Base}, {"eval", st.Eval}} {
		out["stage_"+s.name+"_requests"] = s.cs.Requests()
		out["stage_"+s.name+"_computed"] = s.cs.Misses
		out["stage_"+s.name+"_memory_hits"] = s.cs.Hits
	}

	// Frontier vs dense over a register-axis curve grid. The full axis
	// (8:128:4, 31 points, both machines) spans heavy spill pressure
	// through comfortable fit; quick keeps one machine and a short axis.
	curveGrid := sweep.Grid{
		Corpus:   ks,
		Machines: []*machine.Config{machine.Eval(3), machine.Eval(6)},
		Models:   core.Models[:],
		Regs:     regsRange(8, 128, 4),
	}
	if quick {
		curveGrid.Machines = []*machine.Config{machine.Eval(6)}
		curveGrid.Regs = regsRange(16, 64, 8)
	}
	feng := sweep.New(0)
	if err := feng.SweepFrontier(ctx, curveGrid, func(sweep.Result) {}, sweep.FrontierOptions{}); err != nil {
		return nil, err
	}
	fst := feng.StageStats()
	deng := sweep.New(0)
	if err := deng.Sweep(ctx, curveGrid, func(sweep.Result) {}); err != nil {
		return nil, err
	}
	out["curve_axis_points"] = uint64(len(curveGrid.Regs))
	out["curve_series"] = uint64(len(ks) * len(curveGrid.Machines) * len(curveGrid.Models))
	out["frontier_eval_computed"] = fst.Eval.Misses
	out["frontier_rows_computed"] = fst.RowsComputed
	out["frontier_rows_implied"] = fst.RowsImplied
	out["dense_eval_computed"] = deng.StageStats().Eval.Misses
	return out, nil
}
