package bench

import (
	"context"
	"encoding/json"
	"math/bits"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestMeasureReportsSaneNumbers runs one tiny suite through the
// calibration loop and sanity-checks every derived field.
func TestMeasureReportsSaneNumbers(t *testing.T) {
	calls := 0
	s := Suite{
		Name: "spin", Unit: "spins", Units: 3,
		Run: func(n int) error {
			calls += n
			x := 0
			for i := 0; i < n*1000; i++ {
				x += i
			}
			if x < 0 {
				t.Fatal("unreachable")
			}
			return nil
		},
	}
	r, err := measure(s, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "spin" || r.Unit != "spins" || r.UnitsPerOp != 3 {
		t.Fatalf("identity fields wrong: %+v", r)
	}
	if r.Iterations < 1 || calls < r.Iterations {
		t.Fatalf("iterations=%d calls=%d", r.Iterations, calls)
	}
	if r.NsPerOp <= 0 || r.UnitsPerSec <= 0 {
		t.Fatalf("non-positive rates: %+v", r)
	}
	if r.AllocsPerOp < 0 || r.BytesPerOp < 0 {
		t.Fatalf("negative alloc counters: %+v", r)
	}
}

// TestSuitesRunQuick executes every standard suite for a minimal
// benchtime: the harness must complete and produce all suites in order.
func TestSuitesRunQuick(t *testing.T) {
	suites, err := Suites(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunSuites(suites, time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"modulo-schedule", "first-fit-alloc", "spill-pipeline", "row-encode", "curve-dense", "curve-frontier"}
	if len(results) != len(want) {
		t.Fatalf("got %d suites, want %d", len(results), len(want))
	}
	for i, r := range results {
		if r.Name != want[i] {
			t.Fatalf("suite %d = %s, want %s", i, r.Name, want[i])
		}
		if r.NsPerOp <= 0 {
			t.Fatalf("%s: ns_per_op = %v", r.Name, r.NsPerOp)
		}
	}
}

// TestReportRoundTrip pins the document schema: Write then Load must
// reproduce the report, and the schema marker gates Load.
func TestReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rep := NewReport([]SuiteResult{
		{Name: "modulo-schedule", Iterations: 10, NsPerOp: 1000, AllocsPerOp: 5,
			BytesPerOp: 100, Unit: "schedules", UnitsPerOp: 44, UnitsPerSec: 44e6},
	}, map[string]uint64{"stage_schedule_requests": 7}, true)
	rep.Baseline = &Baseline{Note: "seed", Suites: rep.Suites}

	path := filepath.Join(dir, "BENCH_1.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Write(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != SchemaVersion || len(got.Suites) != 1 || got.Suites[0].Name != "modulo-schedule" {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if got.Counters["stage_schedule_requests"] != 7 {
		t.Fatalf("counters lost: %+v", got.Counters)
	}
	if got.Baseline == nil || got.Baseline.Note != "seed" {
		t.Fatalf("baseline lost: %+v", got.Baseline)
	}

	// An unknown schema version must be rejected.
	raw, _ := os.ReadFile(path)
	bad := strings.Replace(string(raw), `"ncdrf_bench": 1`, `"ncdrf_bench": 99`, 1)
	badPath := filepath.Join(dir, "bad.json")
	os.WriteFile(badPath, []byte(bad), 0o644)
	if _, err := Load(badPath); err == nil {
		t.Fatal("Load accepted an unknown schema version")
	}
}

// TestCommittedBaselineParses guards the repository's committed
// trajectory point: BENCH_1.json must stay loadable by this code and
// keep its headline suite and embedded pre-optimization baseline.
func TestCommittedBaselineParses(t *testing.T) {
	rep, err := Load("../../BENCH_1.json")
	if err != nil {
		t.Fatal(err)
	}
	ms := rep.Suite("modulo-schedule")
	if ms == nil {
		t.Fatal("BENCH_1.json lost the modulo-schedule suite")
	}
	if rep.Baseline == nil || len(rep.Baseline.Suites) == 0 {
		t.Fatal("BENCH_1.json lost the embedded pre-optimization baseline")
	}
	// The acceptance claim of the optimization PR, kept machine-checked:
	// >= 1.5x schedules/sec or >= 40% fewer allocs/op vs the baseline.
	var base *SuiteResult
	for i := range rep.Baseline.Suites {
		if rep.Baseline.Suites[i].Name == "modulo-schedule" {
			base = &rep.Baseline.Suites[i]
		}
	}
	if base == nil {
		t.Fatal("baseline lacks modulo-schedule")
	}
	speedup := ms.UnitsPerSec / base.UnitsPerSec
	allocDrop := 1 - ms.AllocsPerOp/base.AllocsPerOp
	if speedup < 1.5 && allocDrop < 0.40 {
		t.Fatalf("recorded point no longer beats the baseline: %.2fx, %.0f%% fewer allocs",
			speedup, allocDrop*100)
	}
}

// TestCommittedFrontierPoint guards the second committed trajectory
// point: BENCH_2.json must stay loadable and keep the frontier PR's
// acceptance claims machine-checked in host-independent counters — the
// frontier executor's computed evals within series x (ceil(log2 axis) +
// C), at least 2x below the dense count, with dominance-implied rows
// making up exactly the difference. The suite rates are host-bound, but
// both executors were measured in the same run on the same host, so
// their ratio must favor the frontier.
func TestCommittedFrontierPoint(t *testing.T) {
	rep, err := Load("../../BENCH_2.json")
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Counters
	series, axis := c["curve_series"], c["curve_axis_points"]
	if series == 0 || axis < 2 {
		t.Fatalf("BENCH_2.json lost the curve grid shape: series=%d axis=%d", series, axis)
	}
	logAxis := uint64(bits.Len64(axis - 1)) // ceil(log2 axis)
	const spillC = 8                        // bound on the corpus' per-series spill regions
	if bound := series * (logAxis + spillC); c["frontier_eval_computed"] > bound {
		t.Fatalf("frontier computed %d evals over %d series x %d axis points, above series x (log2 axis + %d) = %d",
			c["frontier_eval_computed"], series, axis, spillC, bound)
	}
	if c["dense_eval_computed"] < 2*c["frontier_eval_computed"] {
		t.Fatalf("eval reduction claim lost: dense %d vs frontier %d computed evals",
			c["dense_eval_computed"], c["frontier_eval_computed"])
	}
	if c["frontier_rows_implied"] == 0 {
		t.Fatal("BENCH_2.json records no dominance-implied rows")
	}
	if got := c["frontier_rows_computed"] + c["frontier_rows_implied"]; got != series*axis {
		t.Fatalf("rows %d computed + %d implied != %d grid cells",
			c["frontier_rows_computed"], c["frontier_rows_implied"], series*axis)
	}
	dense, frontier := rep.Suite("curve-dense"), rep.Suite("curve-frontier")
	if dense == nil || frontier == nil {
		t.Fatal("BENCH_2.json lost the curve suites")
	}
	if frontier.UnitsPerSec <= dense.UnitsPerSec {
		t.Fatalf("recorded frontier rate %.0f rows/sec does not beat dense %.0f",
			frontier.UnitsPerSec, dense.UnitsPerSec)
	}
}

// TestCommittedAllocatorPoint guards the third committed trajectory
// point: BENCH_3.json must stay loadable and keep the allocator PR's
// acceptance claims machine-checked against the previous point — the
// bitmap-circle fit engine makes first-fit-alloc at least 2x faster in
// ns/op and at least 3x leaner in allocs/op than BENCH_2.json, and the
// downstream consumers of the allocator (the spill pipeline and the
// dense curve executor, which call it per candidate R) allocate less
// too. Both points were measured on their own hosts, but ns ratios this
// large and alloc counts (host-independent) survive host variance.
func TestCommittedAllocatorPoint(t *testing.T) {
	prev, err := Load("../../BENCH_2.json")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Load("../../BENCH_3.json")
	if err != nil {
		t.Fatal(err)
	}
	base, cur := prev.Suite("first-fit-alloc"), rep.Suite("first-fit-alloc")
	if base == nil || cur == nil {
		t.Fatal("trajectory lost the first-fit-alloc suite")
	}
	if speedup := base.NsPerOp / cur.NsPerOp; speedup < 2 {
		t.Fatalf("first-fit-alloc speedup = %.2fx, acceptance claims >= 2x", speedup)
	}
	if drop := base.AllocsPerOp / cur.AllocsPerOp; drop < 3 {
		t.Fatalf("first-fit-alloc allocs/op ratio = %.2fx, acceptance claims >= 3x", drop)
	}
	for _, name := range []string{"spill-pipeline", "curve-dense"} {
		b, c := prev.Suite(name), rep.Suite(name)
		if b == nil || c == nil {
			t.Fatalf("trajectory lost the %s suite", name)
		}
		if c.AllocsPerOp >= b.AllocsPerOp {
			t.Fatalf("%s allocs/op %.0f did not improve on %.0f", name, c.AllocsPerOp, b.AllocsPerOp)
		}
	}
}

// TestCompare exercises the CI gate in both directions.
func TestCompare(t *testing.T) {
	base := &Report{Schema: SchemaVersion, Suites: []SuiteResult{
		{Name: "modulo-schedule", Unit: "schedules", UnitsPerSec: 1000, AllocsPerOp: 100},
		{Name: "retired-suite", Unit: "x", UnitsPerSec: 50, AllocsPerOp: 5},
	}}
	ok := &Report{Schema: SchemaVersion, Suites: []SuiteResult{
		// 15% slower and 10% more allocs: inside a 20% tolerance.
		{Name: "modulo-schedule", Unit: "schedules", UnitsPerSec: 850, AllocsPerOp: 110},
		{Name: "new-suite", Unit: "y", UnitsPerSec: 1, AllocsPerOp: 1},
	}}
	if err := Compare(ok, base, 20); err != nil {
		t.Fatalf("tolerant compare failed: %v", err)
	}
	slow := &Report{Schema: SchemaVersion, Suites: []SuiteResult{
		{Name: "modulo-schedule", Unit: "schedules", UnitsPerSec: 700, AllocsPerOp: 100},
	}}
	if err := Compare(slow, base, 20); err == nil {
		t.Fatal("25% throughput regression passed a 20% gate")
	}
	leaky := &Report{Schema: SchemaVersion, Suites: []SuiteResult{
		{Name: "modulo-schedule", Unit: "schedules", UnitsPerSec: 1000, AllocsPerOp: 130},
	}}
	if err := Compare(leaky, base, 20); err == nil {
		t.Fatal("30% allocation growth passed a 20% gate")
	}
}

// TestNextPath allocates trajectory filenames without clobbering.
func TestNextPath(t *testing.T) {
	dir := t.TempDir()
	p, err := NextPath(dir)
	if err != nil || filepath.Base(p) != "BENCH_1.json" {
		t.Fatalf("first point = %q, err %v", p, err)
	}
	os.WriteFile(filepath.Join(dir, "BENCH_1.json"), []byte("{}"), 0o644)
	os.WriteFile(filepath.Join(dir, "BENCH_2.json"), []byte("{}"), 0o644)
	p, err = NextPath(dir)
	if err != nil || filepath.Base(p) != "BENCH_3.json" {
		t.Fatalf("third point = %q, err %v", p, err)
	}
}

// TestCountersDeterministic runs the counters sweep twice: identical
// maps both times, or a report diff would flag phantom drift.
func TestCountersDeterministic(t *testing.T) {
	a, err := Counters(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Counters(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatalf("counters not deterministic:\n%s\n%s", aj, bj)
	}
	if a["stage_schedule_requests"] == 0 || a["stage_eval_requests"] == 0 {
		t.Fatalf("counters empty: %v", a)
	}
}
