// Package bench is the in-process benchmark-trajectory harness behind
// `ncdrf bench`: it times the pipeline's hot stages with testing.B-style
// calibrated loops and emits a schema-versioned report (BENCH_<n>.json)
// so every PR appends a point to the repository's performance curve and
// CI can fail a regression against the committed baseline.
//
// The harness runs outside `go test`, so it measures with the ambient
// clock and the runtime's allocation counters directly. Wall-clock reads
// are confined to nowMono below and never reach a cache key, artifact or
// result row — timing is the product here, not a contaminant.
package bench

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"ncdrf/internal/core"
	"ncdrf/internal/lifetime"
	"ncdrf/internal/loops"
	"ncdrf/internal/machine"
	"ncdrf/internal/pipeline"
	"ncdrf/internal/regalloc"
	"ncdrf/internal/sched"
	"ncdrf/internal/spill"
	"ncdrf/internal/sweep"
)

// Suite is one named timing loop: Run executes n iterations of the
// workload; Units is the number of work items one iteration completes
// (e.g. kernels scheduled), letting the report derive a rate
// (units_per_sec) that stays comparable when the loop body changes
// shape.
type Suite struct {
	Name  string
	Unit  string // what Units counts: "schedules", "rows", ...
	Units int
	Run   func(n int) error
}

// nowMono reads the monotonic clock for interval measurement.
func nowMono() time.Time {
	//lint:allow wallclock -- benchmark timing is the harness's product; never keyed, persisted values are durations
	return time.Now()
}

// measure runs the suite's loop with testing.B-style calibration: grow
// the iteration count until one timed run lasts at least benchtime,
// then report per-op time and per-op allocation deltas from the
// runtime's counters.
func measure(s Suite, benchtime time.Duration) (SuiteResult, error) {
	res := SuiteResult{Name: s.Name, Unit: s.Unit, UnitsPerOp: s.Units}
	n := 1
	for {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		t0 := nowMono()
		if err := s.Run(n); err != nil {
			return res, fmt.Errorf("bench %s: %w", s.Name, err)
		}
		elapsed := nowMono().Sub(t0)
		runtime.ReadMemStats(&after)

		if elapsed >= benchtime || n >= 1e9 {
			res.Iterations = n
			res.NsPerOp = float64(elapsed.Nanoseconds()) / float64(n)
			res.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(n)
			res.BytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / float64(n)
			if res.NsPerOp > 0 {
				res.UnitsPerSec = float64(s.Units) * 1e9 / res.NsPerOp
			}
			return res, nil
		}
		// Predict the iteration count that lands past benchtime, growing
		// at least 2x and at most 100x per round (testing.B's discipline,
		// which keeps one mispredicted round from running for minutes).
		next := n * 100
		if elapsed > 0 {
			predicted := int(float64(n) * 1.2 * float64(benchtime) / float64(elapsed))
			if predicted < next {
				next = predicted
			}
		}
		if next < n*2 {
			next = n * 2
		}
		n = next
	}
}

// regsRange expands lo..hi inclusive by step — the bench grids' dense
// register axes (same shape `ncdrf curve -regs lo:hi:step` produces).
func regsRange(lo, hi, step int) []int {
	var out []int
	for r := lo; r <= hi; r += step {
		out = append(out, r)
	}
	return out
}

// Suites builds the standard suite list over the curated kernel corpus.
// Every suite is self-contained: setup (scheduling inputs, preparing
// lifetimes) happens here, outside the timed loop. ctx bounds the
// sweep-engine suites (curve-dense, curve-frontier).
func Suites(ctx context.Context) ([]Suite, error) {
	ks := loops.Kernels()
	m := machine.Eval(6)

	// first-fit-alloc input: the kernels' lifetimes at their schedules.
	type allocJob struct {
		lts []lifetime.Lifetime
		ii  int
	}
	var jobs []allocJob
	for _, g := range ks {
		s, err := sched.Run(g, m, sched.Options{})
		if err != nil {
			return nil, fmt.Errorf("bench setup: %s: %w", g.LoopName, err)
		}
		jobs = append(jobs, allocJob{lifetime.Compute(s), s.II})
	}

	spillG, ok := loops.KernelByName("lfk7-eos")
	if !ok {
		return nil, fmt.Errorf("bench setup: kernel lfk7-eos missing")
	}

	row := pipeline.Row{Loop: "daxpy", Machine: "eval-L6", Model: "swapped",
		Regs: 32, II: 2, Stages: 5, Trips: 100, MemOps: 3}

	// The curve suites race the two executors over one register-axis
	// grid: same corpus, machine, models and axis, so rows/sec compares
	// the dense O(axis) evaluation against the frontier's dominance
	// pruning directly. The axis starts at 16 registers — every kernel
	// converges there, so the suites measure executor cost, not
	// non-convergent spill divergence. Each iteration runs on a fresh
	// engine: a warm cache would make every iteration after the first
	// nearly free and the calibration meaningless.
	curveGrid := sweep.Grid{
		Corpus:   ks,
		Machines: []*machine.Config{m},
		Models:   core.Models[:],
		Regs:     regsRange(16, 64, 4),
	}
	curveCells := len(curveGrid.Plan())

	return []Suite{
		{
			// The headline suite: the CI regression gate and the
			// acceptance criteria key on its units_per_sec
			// (schedules/sec) and allocs_per_op.
			Name: "modulo-schedule", Unit: "schedules", Units: len(ks),
			Run: func(n int) error {
				for i := 0; i < n; i++ {
					for _, g := range ks {
						if _, err := sched.Run(g, m, sched.Options{}); err != nil {
							return err
						}
					}
				}
				return nil
			},
		},
		{
			Name: "first-fit-alloc", Unit: "allocations", Units: len(jobs),
			Run: func(n int) error {
				for i := 0; i < n; i++ {
					for _, j := range jobs {
						if _, err := regalloc.FirstFit(j.lts, j.ii); err != nil {
							return err
						}
					}
				}
				return nil
			},
		},
		{
			Name: "spill-pipeline", Unit: "pipelines", Units: 1,
			Run: func(n int) error {
				for i := 0; i < n; i++ {
					res, err := spill.Run(spillG, m, 24, core.Fit(core.Unified), sched.Options{})
					if err != nil {
						return err
					}
					if res.SpilledValues == 0 {
						return fmt.Errorf("spill-pipeline: expected spilling")
					}
				}
				return nil
			},
		},
		{
			Name: "row-encode", Unit: "rows", Units: 1,
			Run: func(n int) error {
				for i := 0; i < n; i++ {
					if err := pipeline.EncodeRow(io.Discard, row); err != nil {
						return err
					}
				}
				return nil
			},
		},
		{
			Name: "curve-dense", Unit: "rows", Units: curveCells,
			Run: func(n int) error {
				for i := 0; i < n; i++ {
					eng := sweep.New(0)
					if err := eng.Sweep(ctx, curveGrid, func(sweep.Result) {}); err != nil {
						return err
					}
				}
				return nil
			},
		},
		{
			Name: "curve-frontier", Unit: "rows", Units: curveCells,
			Run: func(n int) error {
				for i := 0; i < n; i++ {
					eng := sweep.New(0)
					err := eng.SweepFrontier(ctx, curveGrid, func(sweep.Result) {}, sweep.FrontierOptions{})
					if err != nil {
						return err
					}
				}
				return nil
			},
		},
	}, nil
}

// RunSuites measures every suite at the given benchtime, in order.
func RunSuites(suites []Suite, benchtime time.Duration, progress func(SuiteResult)) ([]SuiteResult, error) {
	var out []SuiteResult
	for _, s := range suites {
		r, err := measure(s, benchtime)
		if err != nil {
			return nil, err
		}
		if progress != nil {
			progress(r)
		}
		out = append(out, r)
	}
	return out, nil
}
