package pipeline

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"ncdrf/internal/core"
	"ncdrf/internal/ddg"
	"ncdrf/internal/loops"
	"ncdrf/internal/machine"
	"ncdrf/internal/sched"
)

// canonical returns the graph's canonical text encoding, the content
// identity the whole cache layer keys on.
func canonical(t *testing.T, g *ddg.Graph) string {
	t.Helper()
	var b bytes.Buffer
	if err := g.Encode(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestScheduleCodecRoundTrip pins the round-trip equivalence guarantee
// for base schedules across the whole kernel corpus: decode(encode(s))
// is content-identical to s on both machines of the paper.
func TestScheduleCodecRoundTrip(t *testing.T) {
	corpus := append(loops.Kernels(), loops.PaperExample())
	for _, m := range []*machine.Config{machine.Eval(3), machine.Eval(6)} {
		for _, g := range corpus {
			b, err := NewBase(g, m, sched.Options{})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := EncodeSchedule(&buf, b.Sched); err != nil {
				t.Fatal(err)
			}
			got, err := DecodeSchedule(bytes.NewReader(buf.Bytes()), m)
			if err != nil {
				t.Fatalf("%s on %s: decode: %v", g.LoopName, m.Name(), err)
			}
			if got.II != b.Sched.II {
				t.Fatalf("%s: II %d != %d", g.LoopName, got.II, b.Sched.II)
			}
			for id := range got.Start {
				if got.Start[id] != b.Sched.Start[id] || got.FU[id] != b.Sched.FU[id] {
					t.Fatalf("%s: node %d placement differs", g.LoopName, id)
				}
			}
			if canonical(t, got.Graph) != canonical(t, b.Sched.Graph) {
				t.Fatalf("%s: decoded graph content differs", g.LoopName)
			}
			if got.Graph == b.Sched.Graph {
				t.Fatalf("%s: decoded schedule aliases the source graph", g.LoopName)
			}
		}
	}
}

// TestModelResultCodecRoundTrip checks the per-model artifacts: every
// kernel under every model, with a register budget small enough to force
// spilling on part of the corpus, must decode to a result equivalent to
// the in-memory one — same counters, same schedule, same canonical graph
// (including spill-slot marks), and the same recomputed register
// requirement.
func TestModelResultCodecRoundTrip(t *testing.T) {
	m := machine.Eval(6)
	ctx := context.Background()
	spilled := 0
	for _, g := range loops.Kernels() {
		b, err := NewBase(g, m, sched.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, model := range core.Models {
			res, err := Evaluate(ctx, nil, b, model, 16)
			if err != nil {
				t.Fatal(err)
			}
			if res.SpilledValues > 0 {
				spilled++
			}
			var buf bytes.Buffer
			if err := EncodeModelResult(&buf, res); err != nil {
				t.Fatal(err)
			}
			got, err := DecodeModelResult(bytes.NewReader(buf.Bytes()), m)
			if err != nil {
				t.Fatalf("%s/%v: decode: %v", g.LoopName, model, err)
			}
			if got.Model != res.Model ||
				got.SpilledValues != res.SpilledValues ||
				got.SpillStores != res.SpillStores ||
				got.SpillLoads != res.SpillLoads ||
				got.IIBumps != res.IIBumps ||
				got.Iterations != res.Iterations {
				t.Fatalf("%s/%v: counters differ: %+v vs %+v", g.LoopName, model, got, res)
			}
			if got.Sched.II != res.Sched.II || got.MemOps() != res.MemOps() {
				t.Fatalf("%s/%v: schedule shape differs", g.LoopName, model)
			}
			if canonical(t, got.Graph) != canonical(t, res.Graph) {
				t.Fatalf("%s/%v: decoded graph content differs", g.LoopName, model)
			}
			// Spill-slot marks are not part of the canonical text
			// encoding, so pin them explicitly: the vm and codegen
			// layers depend on them.
			for id := 0; id < res.Graph.NumNodes(); id++ {
				if got.Graph.Node(id).SpillSlot != res.Graph.Node(id).SpillSlot {
					t.Fatalf("%s/%v: node %d spill slot differs", g.LoopName, model, id)
				}
			}
			wantReq, _, err1 := res.Requirement()
			gotReq, _, err2 := got.Requirement()
			if err1 != nil || err2 != nil || wantReq != gotReq {
				t.Fatalf("%s/%v: requirement %d,%v != %d,%v", g.LoopName, model, gotReq, err2, wantReq, err1)
			}
			if len(got.Lifetimes) != len(res.Lifetimes) {
				t.Fatalf("%s/%v: lifetime count differs", g.LoopName, model)
			}
			for i := range got.Lifetimes {
				if got.Lifetimes[i] != res.Lifetimes[i] {
					t.Fatalf("%s/%v: lifetime %d differs", g.LoopName, model, i)
				}
			}
		}
	}
	if spilled == 0 {
		t.Fatal("test corpus exercised no spilling result; tighten the register budget")
	}
}

// TestCodecRejectsDamage checks that damaged artifacts decode to errors,
// never to panics or plausible results: truncation at every line, field
// corruption, and machine mismatch.
func TestCodecRejectsDamage(t *testing.T) {
	m := machine.Eval(3)
	g, ok := loops.KernelByName("daxpy")
	if !ok {
		t.Fatal("missing kernel")
	}
	b, err := NewBase(g, m, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(context.Background(), nil, b, core.Unified, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeModelResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	art := buf.String()

	// Truncation after every line must error, not panic.
	lines := strings.SplitAfter(art, "\n")
	for i := 0; i < len(lines)-1; i++ {
		prefix := strings.Join(lines[:i], "")
		if _, err := DecodeModelResult(strings.NewReader(prefix), m); err == nil {
			t.Fatalf("truncation after %d lines decoded successfully", i)
		}
	}
	// Wrong machine: the artifact records eval-L3.
	if _, err := DecodeModelResult(strings.NewReader(art), machine.Eval(6)); err == nil {
		t.Fatal("machine mismatch not detected")
	}
	// Corrupt an issue cycle: the decoded schedule must fail verification.
	broken := strings.Replace(art, "\nop ", "\nop 9999", 1)
	if _, err := DecodeModelResult(strings.NewReader(broken), m); err == nil {
		t.Fatal("corrupted placement not detected")
	}
	// Unknown directive in place of the model line.
	if _, err := DecodeModelResult(strings.NewReader("bogus x\n"+art), m); err == nil {
		t.Fatal("leading garbage not detected")
	}
}
