package pipeline

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"ncdrf/internal/core"
	"ncdrf/internal/ddg"
	"ncdrf/internal/lifetime"
	"ncdrf/internal/loops"
	"ncdrf/internal/machine"
	"ncdrf/internal/sched"
	"ncdrf/internal/spill"
)

// TestEvaluateMatchesMonolithicPath checks stage-for-stage equivalence
// with the pre-staged pipeline: spill.Run from scratch followed by a
// requirement measurement must agree with Evaluate over a shared Base,
// for every model and a spread of register budgets.
func TestEvaluateMatchesMonolithicPath(t *testing.T) {
	g := loops.PaperExample()
	m := machine.Example()
	b, err := NewBase(g, m, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range core.Models {
		for _, regs := range []int{0, 64, 32, 23, 16} {
			mono, err := spill.Run(g, m, regsFor(model, regs), core.Fit(model), sched.Options{})
			if err != nil {
				t.Fatalf("%v/%d: %v", model, regs, err)
			}
			monoReq, monoFinal := 0, mono.Sched
			if model != core.Ideal {
				monoReq, monoFinal, err = core.Requirement(model, mono.Sched, lifetime.Compute(mono.Sched))
				if err != nil {
					t.Fatalf("%v/%d: %v", model, regs, err)
				}
			}
			staged, err := Evaluate(context.Background(), nil, b, model, regs)
			if err != nil {
				t.Fatalf("%v/%d: %v", model, regs, err)
			}
			stagedReq, stagedFinal, err := staged.Requirement()
			if err != nil {
				t.Fatalf("%v/%d: %v", model, regs, err)
			}
			if stagedReq != monoReq || stagedFinal.II != monoFinal.II ||
				staged.SpilledValues != mono.SpilledValues ||
				staged.IIBumps != mono.IIBumps ||
				staged.MemOps() != mono.MemOps() {
				t.Fatalf("%v/%d: staged (req=%d II=%d spilled=%d) != monolithic (req=%d II=%d spilled=%d)",
					model, regs, stagedReq, stagedFinal.II, staged.SpilledValues,
					monoReq, monoFinal.II, mono.SpilledValues)
			}
		}
	}
}

// TestBaseIsImmutable asserts the artifact ownership rule: evaluating
// models — including ones that spill and swap — must leave the shared
// Base (graph, schedule, lifetimes) bit-identical.
func TestBaseIsImmutable(t *testing.T) {
	g := loops.PaperExample()
	m := machine.Example()
	b, err := NewBase(g, m, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var before bytes.Buffer
	if err := g.Encode(&before); err != nil {
		t.Fatal(err)
	}
	startBefore := append([]int(nil), b.Sched.Start...)
	fuBefore := append([]int(nil), b.Sched.FU...)
	ltsBefore := append([]lifetime.Lifetime(nil), b.Lifetimes...)

	if _, err := EvaluateAll(context.Background(), nil, b, 16); err != nil {
		t.Fatal(err)
	}

	var after bytes.Buffer
	if err := g.Encode(&after); err != nil {
		t.Fatal(err)
	}
	if before.String() != after.String() {
		t.Fatal("evaluation mutated the base graph")
	}
	for i := range startBefore {
		if b.Sched.Start[i] != startBefore[i] || b.Sched.FU[i] != fuBefore[i] {
			t.Fatal("evaluation mutated the base schedule")
		}
	}
	for i := range ltsBefore {
		if b.Lifetimes[i] != ltsBefore[i] {
			t.Fatal("evaluation mutated the base lifetimes")
		}
	}
}

// TestEvaluateAllSharesBaseSchedule checks that evaluating all four
// models over one base re-enters the scheduler only for post-spill
// rounds — never for the base schedule the models share.
func TestEvaluateAllSharesBaseSchedule(t *testing.T) {
	g := loops.PaperExample()
	m := machine.Example()
	counter := &countingScheduler{}
	b, err := NewBaseWith(counter, g, m, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if counter.calls != 1 {
		t.Fatalf("base stage made %d scheduler calls, want 1", counter.calls)
	}
	// 64 registers: every model fits the base schedule, so the four
	// evaluations must not schedule anything.
	if _, err := EvaluateAll(context.Background(), counter, b, 64); err != nil {
		t.Fatal(err)
	}
	if counter.calls != 1 {
		t.Fatalf("no-spill EvaluateAll grew scheduler calls to %d, want still 1", counter.calls)
	}
	// 32 registers: only Unified (needs 42) spills; the scheduler runs
	// for its respill rounds only.
	if _, err := EvaluateAll(context.Background(), counter, b, 32); err != nil {
		t.Fatal(err)
	}
	if counter.calls < 2 {
		t.Fatal("spilling evaluation should re-enter the scheduler")
	}
}

type countingScheduler struct{ calls int }

func (c *countingScheduler) Schedule(g *ddg.Graph, m *machine.Config, opts sched.Options) (*sched.Schedule, error) {
	c.calls++
	return sched.Run(g, m, opts)
}

// TestCompileAllCancellation checks context threading through the
// stages: a cancelled context aborts CompileAll with ctx's error.
func TestCompileAllCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := CompileAll(ctx, nil, loops.PaperExample(), machine.Example(), 16)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestEvaluateCancellation checks the per-model stage chain honours the
// context between spill rounds.
func TestEvaluateCancellation(t *testing.T) {
	b, err := NewBase(loops.PaperExample(), machine.Example(), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Evaluate(ctx, nil, b, core.Unified, 16); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
