package pipeline

import (
	"bytes"
	"testing"
)

// TestRowCodecRoundTrip pins the byte-stability contract the shard
// workflow rests on: decode(encode(r)) == r, and re-encoding a decoded
// line reproduces the original bytes — so `ncdrf merge` can re-emit
// parsed rows and still match an unsharded stream byte-for-byte.
func TestRowCodecRoundTrip(t *testing.T) {
	rows := []Row{
		{Loop: "daxpy", Machine: "eval-L3", Model: "unified", Regs: 32,
			II: 2, Stages: 5, Trips: 100, MemOps: 3, Spilled: 1, IIBumps: 1, Rounds: 4},
		{Loop: "syn0001", Machine: "eval-L6", Model: "ideal", Regs: 0, II: 1, Stages: 13, Trips: 1},
		{Loop: "impossible", Machine: "add-only", Model: "swapped", Regs: 16,
			Error: "sched: no memory port"},
	}
	for _, r := range rows {
		var buf bytes.Buffer
		if err := EncodeRow(&buf, r); err != nil {
			t.Fatal(err)
		}
		line := buf.Bytes()
		if line[len(line)-1] != '\n' || bytes.IndexByte(line[:len(line)-1], '\n') >= 0 {
			t.Fatalf("not a single NDJSON line: %q", line)
		}
		got, err := DecodeRow(line)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got != r {
			t.Fatalf("round trip changed the row:\n got %+v\nwant %+v", got, r)
		}
		var again bytes.Buffer
		if err := EncodeRow(&again, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(again.Bytes(), line) {
			t.Fatalf("re-encode not byte-identical:\n got %q\nwant %q", again.Bytes(), line)
		}
	}
}

// TestDecodeRowRejectsForeignLines checks the strictness DecodeRow
// promises: unknown fields, non-JSON, trailing data and identity-less
// rows all fail instead of decaying into zero rows.
func TestDecodeRowRejectsForeignLines(t *testing.T) {
	for _, bad := range []string{
		``,
		`not json`,
		`{"loop":"a","machine":"m","model":"ideal","regs":0,"bogus":1}`,
		`{"loop":"a","machine":"m","model":"ideal","regs":0} trailing`,
		`{"loop":"","machine":"m","model":"ideal","regs":0}`,
		`{"ncdrf_shard":1,"of":3,"units":8,"grid":"x","format":1}`,
	} {
		if _, err := DecodeRow([]byte(bad)); err == nil {
			t.Fatalf("DecodeRow accepted %q", bad)
		}
	}
}
