package pipeline

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestRowCodecRoundTrip pins the byte-stability contract the shard
// workflow rests on: decode(encode(r)) == r, and re-encoding a decoded
// line reproduces the original bytes — so `ncdrf merge` can re-emit
// parsed rows and still match an unsharded stream byte-for-byte.
func TestRowCodecRoundTrip(t *testing.T) {
	rows := []Row{
		{Loop: "daxpy", Machine: "eval-L3", Model: "unified", Regs: 32,
			II: 2, Stages: 5, Trips: 100, MemOps: 3, Spilled: 1, IIBumps: 1, Rounds: 4},
		{Loop: "syn0001", Machine: "eval-L6", Model: "ideal", Regs: 0, II: 1, Stages: 13, Trips: 1},
		{Loop: "impossible", Machine: "add-only", Model: "swapped", Regs: 16,
			Error: "sched: no memory port"},
	}
	for _, r := range rows {
		var buf bytes.Buffer
		if err := EncodeRow(&buf, r); err != nil {
			t.Fatal(err)
		}
		line := buf.Bytes()
		if line[len(line)-1] != '\n' || bytes.IndexByte(line[:len(line)-1], '\n') >= 0 {
			t.Fatalf("not a single NDJSON line: %q", line)
		}
		got, err := DecodeRow(line)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got != r {
			t.Fatalf("round trip changed the row:\n got %+v\nwant %+v", got, r)
		}
		var again bytes.Buffer
		if err := EncodeRow(&again, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(again.Bytes(), line) {
			t.Fatalf("re-encode not byte-identical:\n got %q\nwant %q", again.Bytes(), line)
		}
	}
}

// TestEncodeRowMatchesJSONEncoder pins the pooled encoder to the exact
// bytes a fresh json.Encoder produces — compact JSON, HTML-escaped,
// newline-terminated — including for the characters the escaper
// rewrites, so swapping the pool in could not move a single persisted
// or streamed byte.
func TestEncodeRowMatchesJSONEncoder(t *testing.T) {
	rows := []Row{
		{Loop: "daxpy", Machine: "eval-L3", Model: "unified", Regs: 32, II: 2},
		{Loop: "a<b>&c", Machine: "m", Model: "ideal", Regs: 0, Error: "x < y & z"},
		{Loop: strings.Repeat("long", 64), Machine: "m", Model: "swapped", Regs: 128, Trips: 1 << 40},
	}
	for _, r := range rows {
		var want bytes.Buffer
		if err := json.NewEncoder(&want).Encode(r); err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		if err := EncodeRow(&got, r); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("pooled encoding diverged:\n got %q\nwant %q", got.Bytes(), want.Bytes())
		}
	}
}

// TestEncodeRowConcurrent hammers the pool from many goroutines; run
// under -race in CI, it catches any buffer sharing between concurrent
// emitters (each encode must reach the writer as one self-contained
// line).
func TestEncodeRowConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			r := Row{Loop: "loop", Machine: "m", Model: "ideal", Regs: n}
			var want bytes.Buffer
			if err := json.NewEncoder(&want).Encode(r); err != nil {
				t.Error(err)
				return
			}
			for j := 0; j < 200; j++ {
				var got bytes.Buffer
				if err := EncodeRow(&got, r); err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(got.Bytes(), want.Bytes()) {
					t.Errorf("concurrent encode corrupted a row: %q", got.Bytes())
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

// TestEncodeRowAllocs documents the point of the pool: steady-state row
// encoding holds at one allocation per row (encoding/json's own marshal
// scratch) with no per-row encoder or buffer growth. The sweep emit
// path, unlike this microbenchmark, also writes through interfaces that
// make a non-pooled encoder escape — the pool keeps that cost flat.
func TestEncodeRowAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation adds allocations; the bound only holds un-instrumented")
	}
	r := Row{Loop: "daxpy", Machine: "eval-L3", Model: "unified", Regs: 32, II: 2}
	var sink bytes.Buffer
	per := testing.AllocsPerRun(200, func() {
		sink.Reset()
		if err := EncodeRow(&sink, r); err != nil {
			t.Fatal(err)
		}
	})
	if per > 1 {
		t.Fatalf("pooled encoder allocates %.1f/row, want <= 1", per)
	}
}

// TestDecodeRowRejectsForeignLines checks the strictness DecodeRow
// promises: unknown fields, non-JSON, trailing data and identity-less
// rows all fail instead of decaying into zero rows.
func TestDecodeRowRejectsForeignLines(t *testing.T) {
	for _, bad := range []string{
		``,
		`not json`,
		`{"loop":"a","machine":"m","model":"ideal","regs":0,"bogus":1}`,
		`{"loop":"a","machine":"m","model":"ideal","regs":0} trailing`,
		`{"loop":"","machine":"m","model":"ideal","regs":0}`,
		`{"ncdrf_shard":1,"of":3,"units":8,"grid":"x","format":1}`,
	} {
		if _, err := DecodeRow([]byte(bad)); err == nil {
			t.Fatalf("DecodeRow accepted %q", bad)
		}
	}
}
