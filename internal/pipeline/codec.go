// Artifact codec: canonical, deterministic text (de)serialization of the
// cacheable pipeline artifacts, used by the persistent artifact store
// (internal/store) to carry stage results across processes.
//
// The format is line-oriented and versioned externally: the store stamps
// every artifact with store.FormatVersion, so this codec never needs to
// read old shapes — a format change here must bump that constant.
//
// A schedule artifact is self-contained: it embeds the dependence graph
// the schedule was computed on (cached schedules are computed on private
// clones, and a spilled result's graph differs from the caller's input),
// so decoding rebuilds an equivalent graph instead of borrowing the
// caller's. The embedded graph IS the canonical ddg text encoding — the
// same bytes the cache keys digest — framed by a byte count, so there is
// exactly one graph grammar in the repository; the codec only adds what
// that encoding lacks (spill-slot marks, machine binding, the schedule
// itself). Only the machine is resolved by reference: the caller passes
// the *machine.Config the store key was derived from, and the artifact
// records its name for verification.
//
// Round-trip guarantee: DecodeModelResult(EncodeModelResult(r)) yields a
// result content-equivalent to r — same canonical graph encoding, same
// spill-slot marks, same II / issue cycles / unit bindings, same spill
// counters, and hence the same lifetimes and register requirements,
// which are recomputed deterministically. Decoded schedules are
// re-verified (sched.Verify), so a damaged artifact decodes to an error,
// never to a plausible-but-wrong schedule.
package pipeline

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"

	"ncdrf/internal/core"
	"ncdrf/internal/ddg"
	"ncdrf/internal/lifetime"
	"ncdrf/internal/machine"
	"ncdrf/internal/sched"
)

// maxGraphBytes bounds the framed graph section, so a corrupted length
// field cannot provoke a huge allocation. The store's own checksum makes
// this nearly unreachable; it guards hand-damaged files.
const maxGraphBytes = 8 << 20

// EncodeSchedule writes s (embedded graph, spill-slot marks, II, issue
// cycles, unit bindings) in the canonical artifact format.
func EncodeSchedule(w io.Writer, s *sched.Schedule) error {
	bw := bufio.NewWriter(w)
	if err := writeSchedule(bw, s); err != nil {
		return err
	}
	return bw.Flush()
}

func writeSchedule(bw *bufio.Writer, s *sched.Schedule) error {
	g := s.Graph
	fmt.Fprintf(bw, "machine %s\n", s.Mach.Name())
	var gbuf bytes.Buffer
	if err := g.Encode(&gbuf); err != nil {
		return err
	}
	fmt.Fprintf(bw, "graph %d\n", gbuf.Len())
	bw.Write(gbuf.Bytes())
	// Spill-slot marks are not part of the canonical graph encoding
	// (they are allocation metadata, not dependence structure), so they
	// ride in their own section: one line per marked node, in ID order.
	marked := 0
	for _, n := range g.Nodes() {
		if n.SpillSlot >= 0 {
			marked++
		}
	}
	fmt.Fprintf(bw, "slots %d\n", marked)
	for _, n := range g.Nodes() {
		if n.SpillSlot >= 0 {
			fmt.Fprintf(bw, "slot %d %d\n", n.ID, n.SpillSlot)
		}
	}
	fmt.Fprintf(bw, "ii %d\n", s.II)
	for id := range s.Start {
		fmt.Fprintf(bw, "op %d %d\n", s.Start[id], s.FU[id])
	}
	return nil
}

// lineReader yields whitespace-split fields line by line with positional
// error context; the framed graph section is read through it too, so
// line numbers stay meaningful across sections.
type lineReader struct {
	r    *bufio.Reader
	line int
}

func (lr *lineReader) next(directive string, nFields int) ([]string, error) {
	s, err := lr.r.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("pipeline codec: truncated artifact, want %q at line %d", directive, lr.line+1)
	}
	lr.line++
	f := strings.Fields(s)
	if len(f) != nFields || f[0] != directive {
		return nil, fmt.Errorf("pipeline codec line %d: want %d-field %q, got %q", lr.line, nFields, directive, strings.TrimSuffix(s, "\n"))
	}
	return f, nil
}

// atoi is strconv.Atoi: strict decimal, no trailing garbage — a mangled
// field must decode to an error, never to a plausible number.
func atoi(s string) (int, error) { return strconv.Atoi(s) }

// DecodeSchedule parses one schedule artifact produced by EncodeSchedule
// and rebinds it to m, which must be the configuration the artifact was
// computed on (the store key guarantees it; the embedded machine name is
// verified as a second line of defence). The decoded schedule owns a
// fresh graph and passes sched.Verify before it is returned.
func DecodeSchedule(r io.Reader, m *machine.Config) (*sched.Schedule, error) {
	return decodeSchedule(&lineReader{r: bufio.NewReader(r)}, m)
}

func decodeSchedule(lr *lineReader, m *machine.Config) (*sched.Schedule, error) {
	f, err := lr.next("machine", 2)
	if err != nil {
		return nil, err
	}
	if f[1] != m.Name() {
		return nil, fmt.Errorf("pipeline codec: artifact computed on machine %q, want %q", f[1], m.Name())
	}

	if f, err = lr.next("graph", 2); err != nil {
		return nil, err
	}
	size, err := atoi(f[1])
	if err != nil || size < 0 || size > maxGraphBytes {
		return nil, fmt.Errorf("pipeline codec line %d: bad graph size %q", lr.line, f[1])
	}
	raw := make([]byte, size)
	if _, err := io.ReadFull(lr.r, raw); err != nil {
		return nil, fmt.Errorf("pipeline codec: truncated graph section: %v", err)
	}
	lr.line += bytes.Count(raw, []byte{'\n'})
	g, err := ddg.Decode(bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("pipeline codec: embedded graph: %v", err)
	}

	if f, err = lr.next("slots", 2); err != nil {
		return nil, err
	}
	marked, err := atoi(f[1])
	if err != nil || marked < 0 || marked > g.NumNodes() {
		return nil, fmt.Errorf("pipeline codec line %d: bad slot count %q", lr.line, f[1])
	}
	for i := 0; i < marked; i++ {
		if f, err = lr.next("slot", 3); err != nil {
			return nil, err
		}
		id, err1 := atoi(f[1])
		slot, err2 := atoi(f[2])
		if err1 != nil || err2 != nil || id < 0 || id >= g.NumNodes() || slot < 0 {
			return nil, fmt.Errorf("pipeline codec line %d: bad spill-slot mark", lr.line)
		}
		g.Node(id).SpillSlot = slot
	}

	if f, err = lr.next("ii", 2); err != nil {
		return nil, err
	}
	ii, err := atoi(f[1])
	if err != nil {
		return nil, fmt.Errorf("pipeline codec line %d: bad II: %v", lr.line, err)
	}
	s := &sched.Schedule{
		Graph: g,
		Mach:  m,
		II:    ii,
		Start: make([]int, g.NumNodes()),
		FU:    make([]int, g.NumNodes()),
	}
	for id := range s.Start {
		if f, err = lr.next("op", 3); err != nil {
			return nil, err
		}
		if s.Start[id], err = atoi(f[1]); err != nil {
			return nil, fmt.Errorf("pipeline codec line %d: bad issue cycle: %v", lr.line, err)
		}
		if s.FU[id], err = atoi(f[2]); err != nil {
			return nil, fmt.Errorf("pipeline codec line %d: bad unit binding: %v", lr.line, err)
		}
	}
	if err := s.Verify(); err != nil {
		return nil, fmt.Errorf("pipeline codec: decoded schedule invalid: %w", err)
	}
	return s, nil
}

// EncodeModelResult writes r in the canonical artifact format: the model,
// the spill counters, and the final schedule with its embedded graph.
// The lazy requirement measurement is not serialized; it is recomputed
// deterministically on demand after decoding.
func EncodeModelResult(w io.Writer, r *ModelResult) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "model %s\n", r.Model)
	fmt.Fprintf(bw, "spill %d %d %d %d %d\n",
		r.SpilledValues, r.SpillStores, r.SpillLoads, r.IIBumps, r.Iterations)
	// r.Graph and r.Sched.Graph are content-identical by the pipeline's
	// ownership rules (the final schedule is always a schedule OF the
	// final graph, possibly via a private clone), so one embedded graph
	// serves both fields on decode.
	if err := writeSchedule(bw, r.Sched); err != nil {
		return err
	}
	return bw.Flush()
}

// DecodeModelResult parses one per-model stage artifact produced by
// EncodeModelResult, rebinding it to m. Lifetimes are recomputed from
// the decoded schedule — they are a deterministic function of it — and
// the result's graph is the schedule's embedded graph.
func DecodeModelResult(r io.Reader, m *machine.Config) (*ModelResult, error) {
	lr := &lineReader{r: bufio.NewReader(r)}

	f, err := lr.next("model", 2)
	if err != nil {
		return nil, err
	}
	model, err := core.ParseModel(f[1])
	if err != nil {
		return nil, fmt.Errorf("pipeline codec line %d: %v", lr.line, err)
	}
	if f, err = lr.next("spill", 6); err != nil {
		return nil, err
	}
	var counters [5]int
	for i := range counters {
		if counters[i], err = atoi(f[i+1]); err != nil {
			return nil, fmt.Errorf("pipeline codec line %d: bad spill counter: %v", lr.line, err)
		}
	}
	s, err := decodeSchedule(lr, m)
	if err != nil {
		return nil, err
	}
	return &ModelResult{
		Model:         model,
		Sched:         s,
		Graph:         s.Graph,
		Lifetimes:     lifetime.Compute(s),
		SpilledValues: counters[0],
		SpillStores:   counters[1],
		SpillLoads:    counters[2],
		IIBumps:       counters[3],
		Iterations:    counters[4],
	}, nil
}
