// Package pipeline decomposes loop compilation into explicit, immutable,
// individually cacheable stages:
//
//	Parsed (ddg.Graph)
//	   └─ BaseSchedule + Lifetimes  (one per loop × machine × options)
//	         └─ per model: Classified → Allocated → Spilled
//
// The base schedule and its lifetimes are shared by every register-file
// model: the paper's four organizations (Ideal, Unified, Partitioned,
// Swapped) are evaluated over the *same* modulo schedule — only
// classification, allocation and spilling differ — so the scheduler and
// the lifetime analysis run once per (loop, machine) and each model's
// evaluation starts from the shared Base artifact instead of re-entering
// the scheduler from scratch.
//
// Artifacts are immutable after construction (see DESIGN.md for the
// ownership rules): a Base is never modified by any model stage, and a
// ModelResult's schedule is either the shared base schedule or a fresh
// one produced by spilling/swapping — never an in-place rewrite of the
// base. This is what makes the stages safe to cache and share across
// concurrent consumers (internal/sweep does exactly that).
package pipeline

import (
	"context"
	"fmt"
	"sync"

	"ncdrf/internal/core"
	"ncdrf/internal/ddg"
	"ncdrf/internal/lifetime"
	"ncdrf/internal/machine"
	"ncdrf/internal/sched"
	"ncdrf/internal/spill"
)

// Scheduler abstracts sched.Run so every stage can be driven through a
// shared schedule cache; it is the same seam the spill loop uses.
type Scheduler = spill.Scheduler

// Base is the model-independent stage of the pipeline: the parsed loop,
// its modulo schedule on one machine, and the value lifetimes of that
// schedule. A Base is immutable after construction and shared — possibly
// concurrently — by every model evaluated on top of it.
type Base struct {
	// Graph is the parsed loop. Stages never mutate it; spilling works on
	// a private clone.
	Graph *ddg.Graph
	// Machine is the target configuration.
	Machine *machine.Config
	// Opts are the scheduling options the base schedule was computed with.
	Opts sched.Options
	// Sched is the base modulo schedule. Read-only; the swap pass copies
	// before rebalancing.
	Sched *sched.Schedule
	// Lifetimes are the value lifetimes of Sched, in node-ID order.
	// Lifetimes depend only on issue cycles, so they also hold for any
	// swap-rebalanced variant of the base schedule.
	Lifetimes []lifetime.Lifetime
}

// NewBase computes the base stage directly with sched.Run.
func NewBase(g *ddg.Graph, m *machine.Config, opts sched.Options) (*Base, error) {
	return NewBaseWith(nil, g, m, opts)
}

// NewBaseWith is NewBase with the scheduling request routed through sr
// (e.g. a shared schedule cache); a nil sr schedules directly.
func NewBaseWith(sr Scheduler, g *ddg.Graph, m *machine.Config, opts sched.Options) (*Base, error) {
	schedule := sched.Run
	if sr != nil {
		schedule = sr.Schedule
	}
	s, err := schedule(g, m, opts)
	if err != nil {
		return nil, err
	}
	return &Base{Graph: g, Machine: m, Opts: opts, Sched: s, Lifetimes: lifetime.Compute(s)}, nil
}

// Requirement runs the unlimited-register Classified → Allocated stages
// for one model on the shared base artifacts: the per-(sub)file register
// requirement and the (possibly swap-rebalanced) schedule it was measured
// on. Ideal requires 0 registers.
func (b *Base) Requirement(model core.Model) (int, *sched.Schedule, error) {
	return core.Requirement(model, b.Sched, b.Lifetimes)
}

// seed converts the base artifacts into the spill loop's first-round
// schedule, so evaluating a model does not re-enter the scheduler for
// work the base stage already did.
func (b *Base) seed() *spill.Seed {
	return &spill.Seed{Sched: b.Sched, Lifetimes: b.Lifetimes}
}

// ModelResult is the outcome of the per-model stage chain (Classified →
// Allocated → Spilled) for one register-file size. Like every pipeline
// artifact it is immutable after construction (the lazy measurement
// below is an idempotent cached accessor, safe for concurrent use).
type ModelResult struct {
	// Model is the register-file organization evaluated.
	Model core.Model
	// Sched is the final fitting schedule from the spill loop: the shared
	// base schedule when the loop fits untouched, otherwise a fresh
	// spilled and/or swap-rebalanced schedule.
	Sched *sched.Schedule
	// Graph is the final dependence graph including spill code; it is the
	// base graph itself when nothing was spilled.
	Graph *ddg.Graph
	// Lifetimes are the value lifetimes of the final schedule.
	Lifetimes []lifetime.Lifetime
	// SpilledValues counts values pushed to memory to make the loop fit.
	SpilledValues int
	// SpillStores and SpillLoads count inserted memory operations.
	SpillStores, SpillLoads int
	// IIBumps counts forced initiation-interval increases.
	IIBumps int
	// Iterations is the number of schedule/allocate rounds executed.
	Iterations int

	measure struct {
		once  sync.Once
		req   int
		sched *sched.Schedule
		err   error
	}
}

// MemOps returns the final number of memory operations per iteration,
// including spill code.
func (r *ModelResult) MemOps() int { return r.Graph.MemOps() }

// Requirement measures the register requirement of the final schedule
// under the model (per subfile for the dual organizations; 0 for Ideal)
// and returns the — possibly swap-rebalanced — schedule it was measured
// on. Measurement is the one per-model stage that is lazy: for the
// Swapped model it runs the greedy swap descent, which figure runners
// evaluating thousands of (loop, regs) cells never need. The result is
// computed once and cached; concurrent callers share it.
func (r *ModelResult) Requirement() (int, *sched.Schedule, error) {
	r.measure.once.Do(func() {
		if r.Model == core.Ideal {
			r.measure.sched = r.Sched
			return
		}
		r.measure.req, r.measure.sched, r.measure.err = core.Requirement(r.Model, r.Sched, r.Lifetimes)
	})
	return r.measure.req, r.measure.sched, r.measure.err
}

// regsFor normalizes the register budget: the Ideal model's file is
// unlimited regardless of the requested size.
func regsFor(model core.Model, regs int) int {
	if model == core.Ideal {
		return 0
	}
	return regs
}

// Evaluate runs the per-model stage chain on top of a shared base:
// classify and allocate the base schedule under the model, and spill (on
// a private clone of the base graph) until the allocation fits in regs
// registers per (sub)file (regs <= 0 = unlimited). The base artifacts
// are consumed read-only; the scheduler only runs for post-spill rounds,
// never for the base schedule itself. The requirement measurement is
// deferred to ModelResult.Requirement.
func Evaluate(ctx context.Context, sr Scheduler, b *Base, model core.Model, regs int) (*ModelResult, error) {
	res, err := spill.RunSeeded(ctx, sr, b.Graph, b.Machine, regsFor(model, regs), core.Fit(model), b.Opts, b.seed())
	if err != nil {
		return nil, err
	}
	return &ModelResult{
		Model:         model,
		Sched:         res.Sched,
		Graph:         res.Graph,
		Lifetimes:     res.Lifetimes,
		SpilledValues: res.SpilledValues,
		SpillStores:   res.SpillStores,
		SpillLoads:    res.SpillLoads,
		IIBumps:       res.IIBumps,
		Iterations:    res.Iterations,
	}, nil
}

// EvaluateAll evaluates every model over one shared base, in the paper's
// presentation order. The base schedule and lifetimes are computed once
// (by the caller, building b) and reused by all four models.
func EvaluateAll(ctx context.Context, sr Scheduler, b *Base, regs int) ([core.NumModels]*ModelResult, error) {
	var out [core.NumModels]*ModelResult
	for _, model := range core.Models {
		r, err := Evaluate(ctx, sr, b, model, regs)
		if err != nil {
			return out, fmt.Errorf("%s/%v: %w", b.Graph.LoopName, model, err)
		}
		out[model] = r
	}
	return out, nil
}

// CompileAll is the one-call form of the staged pipeline for a single
// loop: build the base stage, then evaluate every model on it.
func CompileAll(ctx context.Context, sr Scheduler, g *ddg.Graph, m *machine.Config, regs int) ([core.NumModels]*ModelResult, error) {
	var zero [core.NumModels]*ModelResult
	if err := ctx.Err(); err != nil {
		return zero, err
	}
	b, err := NewBaseWith(sr, g, m, sched.Options{})
	if err != nil {
		return zero, err
	}
	return EvaluateAll(ctx, sr, b, regs)
}
