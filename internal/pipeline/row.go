package pipeline

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Row is the streaming result record of one evaluated grid cell: the
// cell's identity (loop, machine, model, register budget) plus the
// measured metrics, shaped for NDJSON output — one canonical JSON
// object per line. It is the row format `ncdrf sweep` emits, shard
// output files carry, and `ncdrf merge` splices back together, so its
// encoding must be byte-stable: EncodeRow(DecodeRow(line)) reproduces
// line exactly (pinned by TestRowCodecRoundTrip).
//
// A cell that fails to compile carries its error in Error with the
// metrics zero; Error and the omitempty metrics are mutually exclusive
// in practice but the codec does not enforce it.
type Row struct {
	Loop    string `json:"loop"`
	Machine string `json:"machine"`
	Model   string `json:"model"`
	Regs    int    `json:"regs"`
	II      int    `json:"ii,omitempty"`
	Stages  int    `json:"stages,omitempty"`
	Trips   int64  `json:"trips,omitempty"`
	MemOps  int    `json:"mem_ops,omitempty"`
	Spilled int    `json:"spilled,omitempty"`
	IIBumps int    `json:"ii_bumps,omitempty"`
	Rounds  int    `json:"rounds,omitempty"`
	Error   string `json:"error,omitempty"`
}

// Fill copies the measured metrics of res into r, leaving the identity
// fields alone. It is the one place the row shape meets the artifact
// shape, so a new metric is added in exactly two places: the Row field
// and this copy.
func (r *Row) Fill(res *ModelResult) {
	r.II = res.Sched.II
	r.Stages = res.Sched.Stages()
	r.MemOps = res.MemOps()
	r.Spilled = res.SpilledValues
	r.IIBumps = res.IIBumps
	r.Rounds = res.Iterations
}

// rowEncoder is a reusable buffer with a json.Encoder bound to it; the
// pool amortizes both across every row a sweep emits instead of
// allocating a fresh encoder (plus its internal state) per row.
type rowEncoder struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var rowEncoders = sync.Pool{
	New: func() any {
		re := &rowEncoder{}
		re.enc = json.NewEncoder(&re.buf)
		return re
	},
}

// EncodeRow writes r's canonical single-line encoding: compact JSON in
// struct field order, terminated by a newline — the same bytes
// json.Encoder produces, so streamed output and re-encoded shard rows
// are interchangeable. The encoding runs through a pooled encoder and
// reaches w in a single Write, so concurrent emitters interleave whole
// lines, never fragments.
func EncodeRow(w io.Writer, r Row) error {
	re := rowEncoders.Get().(*rowEncoder)
	re.buf.Reset()
	if err := re.enc.Encode(r); err != nil {
		rowEncoders.Put(re)
		return err
	}
	_, err := w.Write(re.buf.Bytes())
	rowEncoders.Put(re)
	return err
}

// DecodeRow parses one NDJSON line into a Row, strictly: unknown
// fields, trailing data and rows without a cell identity are rejected,
// so a shard file assembled from the wrong stream fails loudly at merge
// time instead of producing a silently wrong table.
func DecodeRow(line []byte) (Row, error) {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	var r Row
	if err := dec.Decode(&r); err != nil {
		return Row{}, fmt.Errorf("pipeline: bad result row: %w", err)
	}
	if dec.More() {
		return Row{}, fmt.Errorf("pipeline: trailing data after result row")
	}
	if r.Loop == "" || r.Machine == "" || r.Model == "" {
		return Row{}, fmt.Errorf("pipeline: result row missing cell identity: %q", line)
	}
	return r, nil
}
